// Quickstart: build a paper-default environment, shed half the position
// update load with LIRA, and compare the query-result accuracy against the
// naive Random Drop policy.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"lira"
)

func main() {
	// A reduced environment so the example runs in seconds: a 7 km × 7 km
	// synthetic road map with 2 000 cars. DefaultEnvConfig() gives the
	// paper's full ≈200 km² / 10 000-car setup.
	envCfg := lira.DefaultEnvConfig()
	envCfg.Net.Side = 7000
	envCfg.Net.GridStep = 350
	envCfg.Nodes = 2000
	envCfg.CalibNodes = 500
	envCfg.CalibTicks = 120

	fmt.Println("building road network, trace, and update-reduction curve f(Δ)...")
	env, err := lira.NewEnv(envCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("calibrated f(Δ): f(%.0fm)=1.00 → f(%.0fm)=%.2f\n\n",
		env.Curve.MinDelta(), env.Curve.MaxDelta(), env.Curve.Eval(env.Curve.MaxDelta()))

	cfg := lira.DefaultRunConfig() // Table 2 defaults: z=0.5, Δ⇔=50m, m/n=0.01, w=1000m
	cfg.L = 100
	cfg.DurationTicks = 420

	for _, strategy := range []lira.Strategy{lira.StrategyLira, lira.StrategyRandomDrop} {
		cfg.Strategy = strategy
		res, err := lira.Run(env, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12v kept %4.1f%% of updates → containment error %.4f, position error %6.2f m\n",
			strategy, 100*res.AchievedFraction,
			res.Metrics.MeanContainment, res.Metrics.MeanPosition)
	}
	fmt.Println("\nBoth policies honor the same update budget; LIRA chooses *where* to")
	fmt.Println("lose resolution, Random Drop loses it uniformly at random.")
}

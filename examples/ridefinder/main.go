// Ridefinder: the paper's motivating application (Google Ride Finder) —
// riders run continual range queries that monitor nearby taxis. This
// example drives the LIRA layers directly through the public API instead
// of the experiment harness: it builds a server, feeds it taxi positions,
// registers rider queries, runs one adaptation cycle, and shows the
// resulting region-dependent update throttlers and a live query answer.
//
// Run with: go run ./examples/ridefinder
package main

import (
	"fmt"
	"log"

	"lira"
)

func main() {
	const taxis = 1200

	// City and taxi fleet.
	net := lira.GenerateRoadNetwork(lira.RoadConfig{
		Side: 6000, GridStep: 300, Centers: 2, CenterRadius: 1200, Seed: 7,
	})
	fleet := lira.NewTraceSource(net, lira.TraceConfig{N: taxis, Seed: 8})
	curve := lira.Hyperbolic(5, 100, 95)

	srv, err := lira.NewServer(lira.ServerConfig{
		Space: net.Space,
		Nodes: taxis,
		L:     49,
		Curve: curve,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Warm the fleet and feed the statistics grid.
	speeds := make([]float64, taxis)
	for tick := 0; tick < 60; tick++ {
		fleet.Step(1)
		if tick%10 == 0 {
			for i, v := range fleet.Velocities() {
				speeds[i] = v.Len()
			}
			srv.ObserveStatistics(fleet.Positions(), speeds)
		}
	}

	// Riders watch 800 m squares around downtown street corners.
	queries, err := lira.GenerateQueries(net.Space, fleet.Positions(), lira.QueryConfig{
		Count: 12, SideLength: 800, Distribution: lira.Proportional, Seed: 9,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv.RegisterQueries(queries)

	// One LIRA adaptation at a 60% update budget.
	ad, err := srv.Adapt(0.6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adaptation took %v for %d shedding regions\n",
		ad.Elapsed.Round(10_000), len(ad.Partitioning.Regions))

	minD, maxD := ad.Deltas[0], ad.Deltas[0]
	for _, d := range ad.Deltas {
		if d < minD {
			minD = d
		}
		if d > maxD {
			maxD = d
		}
	}
	fmt.Printf("update throttlers span %.0f m (rider-dense areas) to %.0f m (empty roads)\n", minD, maxD)

	// Distribute through base stations and drive the taxis with
	// region-aware dead reckoning for a minute of city time.
	stations, err := lira.PlaceDensityAware(net.Space, fleet.Positions(), 60, 300, 6000)
	if err != nil {
		log.Fatal(err)
	}
	deploy, err := lira.NewDeployment(stations, ad.Partitioning, ad.Deltas)
	if err != nil {
		log.Fatal(err)
	}
	compiled := make([]*lira.CompiledAssignment, len(deploy.Assignments))
	for i, a := range deploy.Assignments {
		compiled[i] = lira.CompileAssignment(a)
	}
	fmt.Printf("%d base stations broadcast %.1f regions (%.0f bytes) each on average\n",
		len(stations), deploy.MeanRegionsPerStation(), deploy.MeanBroadcastBytes())

	nodes := make([]*lira.Node, taxis)
	pos, vel := fleet.Positions(), fleet.Velocities()
	for i := range nodes {
		nodes[i] = lira.NewNode(i)
		if st := lira.StationFor(stations, pos[i]); st >= 0 {
			nodes[i].Install(st, compiled[st])
		}
		srv.Apply(lira.Update{Node: i, Report: nodes[i].Start(pos[i], vel[i], 60)})
	}
	sent := int64(0)
	for tick := 61; tick <= 120; tick++ {
		fleet.Step(1)
		pos, vel = fleet.Positions(), fleet.Velocities()
		for i, nd := range nodes {
			if rep, send := nd.Observe(pos[i], vel[i], float64(tick), curve.MinDelta()); send {
				srv.Apply(lira.Update{Node: i, Report: rep})
				sent++
			}
		}
	}
	fmt.Printf("taxis sent %d updates over 60 s (%.2f per taxi-second at full rate this would be ≫)\n",
		sent, float64(sent)/float64(taxis)/60)

	// Answer one rider's query.
	results := srv.Evaluate(120)
	fmt.Printf("rider query %v sees %d taxis nearby\n", queries[0], len(results[0]))
}

// Timetravel: snapshot and historic queries over the report history — the
// workload LIRA's fairness threshold Δ⇔ exists for. A tracking server
// keeps every received report; hours later an analyst asks "who was near
// the depot at 10:02?" Because the fairness threshold bounds every
// region's update throttler within Δ⇔ of the minimum, the reconstructed
// positions are accurate everywhere — even in areas that had no continual
// queries at the time.
//
// Run with: go run ./examples/timetravel
package main

import (
	"fmt"
	"log"

	"lira"
)

func main() {
	net := lira.GenerateRoadNetwork(lira.RoadConfig{
		Side: 5000, GridStep: 250, Centers: 2, CenterRadius: 1000, Seed: 41,
	})
	const n = 800
	src := lira.NewTraceSource(net, lira.TraceConfig{N: n, Seed: 42})
	curve := lira.Hyperbolic(5, 100, 95)

	srv, err := lira.NewServer(lira.ServerConfig{
		Space:          net.Space,
		Nodes:          n,
		L:              49,
		Curve:          curve,
		Fairness:       25, // tight: keeps historic accuracy within 30 m everywhere
		HistoryPerNode: 4096,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Warm statistics, register live queries, adapt at a 50% budget.
	speeds := make([]float64, n)
	for tick := 0; tick < 60; tick++ {
		src.Step(1)
	}
	for i, v := range src.Velocities() {
		speeds[i] = v.Len()
	}
	srv.ObserveStatistics(src.Positions(), speeds)
	queries, err := lira.GenerateQueries(net.Space, src.Positions(), lira.QueryConfig{
		Count: 8, SideLength: 800, Distribution: lira.Proportional, Seed: 43,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv.RegisterQueries(queries)
	ad, err := srv.Adapt(0.5)
	if err != nil {
		log.Fatal(err)
	}
	station := lira.Station{ID: 0, Center: net.Space.Center(), Radius: net.Space.Width()}
	deploy, err := lira.NewDeployment([]lira.Station{station}, ad.Partitioning, ad.Deltas)
	if err != nil {
		log.Fatal(err)
	}
	compiled := lira.CompileAssignment(deploy.Assignments[0])

	// Ten simulated minutes of shedded tracking.
	nodes := make([]*lira.Node, n)
	pos, vel := src.Positions(), src.Velocities()
	for i := range nodes {
		nodes[i] = lira.NewNode(i)
		nodes[i].Install(0, compiled)
		srv.Apply(lira.Update{Node: i, Report: nodes[i].Start(pos[i], vel[i], 60)})
	}
	var truth602 []lira.Point // ground truth at t = 10 min + 2 s, kept for checking
	for tick := 61; tick <= 660; tick++ {
		src.Step(1)
		now := float64(tick)
		pos, vel = src.Positions(), src.Velocities()
		for i, nd := range nodes {
			if rep, send := nd.Observe(pos[i], vel[i], now, curve.MinDelta()); send {
				srv.Apply(lira.Update{Node: i, Report: rep})
			}
		}
		if tick == 602 {
			truth602 = append([]lira.Point(nil), pos...)
		}
	}

	// The analyst's historic question, asked after the fact.
	hist := srv.History()
	depot := lira.Square(lira.Point{X: 2500, Y: 2500}, 1200)
	const when = 602.0
	ids := hist.Snapshot(depot, when)
	fmt.Printf("snapshot query: %d vehicles were near the depot at t=%.0fs\n", len(ids), when)

	// Verify the reconstruction quality against ground truth.
	var worst, sum float64
	for _, id := range ids {
		p, _ := hist.PositionAt(id, when)
		d := p.Dist(truth602[id])
		sum += d
		if d > worst {
			worst = d
		}
	}
	if len(ids) > 0 {
		fmt.Printf("historic position error: mean %.1f m, worst %.1f m (Δ⇔ = 25 m bounds the spread)\n",
			sum/float64(len(ids)), worst)
	}

	// A trajectory question: replay vehicle ids[0]'s reports around that time.
	if len(ids) > 0 {
		tr := hist.Trajectory(ids[0], when-60, when+60)
		fmt.Printf("vehicle %d transmitted %d reports in the surrounding two minutes\n", ids[0], len(tr))
	}
}

// Fairtrack: the fairness threshold Δ⇔ in action. A tracking provider
// supports historic and snapshot queries, so even regions with no active
// continual queries must keep reasonable position resolution — otherwise
// GREEDYINCREMENT parks them at the maximum inaccuracy Δ⊣. This example
// sweeps Δ⇔ and shows the trade-off the paper's Figures 10–11 quantify:
// tighter fairness narrows the spread of update throttlers at the cost of
// a higher update volume (or, at fixed budget, higher error in the
// query-heavy regions).
//
// Run with: go run ./examples/fairtrack
package main

import (
	"fmt"
	"log"
	"sort"

	"lira"
)

func main() {
	net := lira.GenerateRoadNetwork(lira.RoadConfig{
		Side: 6000, GridStep: 300, Centers: 2, CenterRadius: 1200, Seed: 31,
	})
	const n = 1500
	src := lira.NewTraceSource(net, lira.TraceConfig{N: n, Seed: 32})
	curve := lira.Hyperbolic(5, 100, 95)

	// Statistics from a warmed fleet.
	speeds := make([]float64, n)
	for tick := 0; tick < 60; tick++ {
		src.Step(1)
	}
	for i, v := range src.Velocities() {
		speeds[i] = v.Len()
	}

	fmt.Println("fairness Δ⇔ |  min Δ |  max Δ | spread | inaccuracy Σm·Δ | budget met")
	fmt.Println("------------+--------+--------+--------+-----------------+-----------")
	for _, fairness := range []float64{5, 10, 25, 50, 95} {
		srv, err := lira.NewServer(lira.ServerConfig{
			Space:    net.Space,
			Nodes:    n,
			L:        49,
			Curve:    curve,
			Fairness: fairness,
		})
		if err != nil {
			log.Fatal(err)
		}
		srv.ObserveStatistics(src.Positions(), speeds)
		queries, err := lira.GenerateQueries(net.Space, src.Positions(), lira.QueryConfig{
			Count: 15, SideLength: 1000, Distribution: lira.Proportional, Seed: 33,
		})
		if err != nil {
			log.Fatal(err)
		}
		srv.RegisterQueries(queries)

		ad, err := srv.Adapt(0.5)
		if err != nil {
			log.Fatal(err)
		}
		deltas := append([]float64(nil), ad.Deltas...)
		sort.Float64s(deltas)
		minD, maxD := deltas[0], deltas[len(deltas)-1]
		inacc := 0.0
		for i, reg := range ad.Partitioning.Regions {
			inacc += reg.M * ad.Deltas[i]
		}
		fmt.Printf("%9.0f m | %4.0f m | %4.0f m | %4.0f m | %15.1f | %v\n",
			fairness, minD, maxD, maxD-minD, inacc, ad.BudgetMet)
	}
	fmt.Println("\nsmall Δ⇔ keeps every region trackable (snapshot/historic queries stay")
	fmt.Println("usable everywhere) but may make the update budget unreachable; large")
	fmt.Println("Δ⇔ recovers the unconstrained optimum.")
}

// Fleetmonitor: closed-loop overload control with THROTLOOP. A logistics
// fleet reports positions to an under-provisioned server whose input queue
// can only absorb a fraction of the full update stream. Without shedding,
// the queue overflows and updates are dropped at random. With THROTLOOP
// the server measures its utilization each period, lowers the throttle
// fraction z, and re-runs the LIRA adaptation — the update stream shrinks
// at the source until the queue stabilizes.
//
// Run with: go run ./examples/fleetmonitor
package main

import (
	"fmt"
	"log"

	"lira"
)

const (
	vehicles  = 1500
	queueSize = 100
	// serviceRate is the updates/second the under-provisioned server can
	// integrate — about half of what the fleet generates at full
	// resolution.
	serviceRate = 120
	period      = 30 // seconds between THROTLOOP observations
)

func main() {
	net := lira.GenerateRoadNetwork(lira.RoadConfig{
		Side: 6000, GridStep: 300, Centers: 2, CenterRadius: 1200, Seed: 21,
	})
	fleet := lira.NewTraceSource(net, lira.TraceConfig{N: vehicles, Seed: 22})
	curve := lira.Hyperbolic(5, 100, 95)

	srv, err := lira.NewServer(lira.ServerConfig{
		Space:     net.Space,
		Nodes:     vehicles,
		L:         49,
		QueueSize: queueSize,
		Curve:     curve,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Warm statistics and register dispatcher queries.
	speeds := make([]float64, vehicles)
	for tick := 0; tick < 60; tick++ {
		fleet.Step(1)
		if tick%10 == 0 {
			for i, v := range fleet.Velocities() {
				speeds[i] = v.Len()
			}
			srv.ObserveStatistics(fleet.Positions(), speeds)
		}
	}
	queries, err := lira.GenerateQueries(net.Space, fleet.Positions(), lira.QueryConfig{
		Count: 15, SideLength: 1000, Distribution: lira.Proportional, Seed: 23,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv.RegisterQueries(queries)

	// Start at z=1 (no shedding) and let the loop find the feasible z.
	ad, err := srv.Adapt(1)
	if err != nil {
		log.Fatal(err)
	}
	policy := compile(net, ad)

	nodes := make([]*lira.Node, vehicles)
	pos, vel := fleet.Positions(), fleet.Velocities()
	for i := range nodes {
		nodes[i] = lira.NewNode(i)
		nodes[i].Install(0, policy)
		srv.Ingest(lira.Update{Node: i, Report: nodes[i].Start(pos[i], vel[i], 60)})
	}

	fmt.Println("period |     z | offered/s | served/s | dropped | queue")
	fmt.Println("-------+-------+-----------+----------+---------+------")
	lastDropped := srv.Queue().Dropped()
	for p := 1; p <= 8; p++ {
		offered := int64(0)
		for t := 0; t < period; t++ {
			fleet.Step(1)
			now := float64(60 + (p-1)*period + t + 1)
			pos, vel = fleet.Positions(), fleet.Velocities()
			for i, nd := range nodes {
				if rep, send := nd.Observe(pos[i], vel[i], now, curve.MinDelta()); send {
					srv.Ingest(lira.Update{Node: i, Report: rep})
					offered++
				}
			}
			// The server can integrate only serviceRate updates/second.
			n := srv.Drain(serviceRate)
			srv.Queue().ObserveBusy(float64(n) / serviceRate)
		}
		dropped := srv.Queue().Dropped() - lastDropped
		lastDropped = srv.Queue().Dropped()
		served := srv.Queue().Served()

		// THROTLOOP: observe utilization, adapt, redistribute.
		ad, err = srv.AdaptAuto(period)
		if err != nil {
			log.Fatal(err)
		}
		policy = compile(net, ad)
		for _, nd := range nodes {
			nd.Install(0, policy) // single logical station for brevity
		}
		_ = served
		fmt.Printf("%6d | %.3f | %9.1f | %8d | %7d | %5d\n",
			p, ad.Z, float64(offered)/period, serviceRate, dropped, srv.Queue().Len())
	}
	fmt.Println("\nthe throttle fraction settles where the offered load matches the")
	fmt.Println("service rate and queue drops collapse — shedding moved from the")
	fmt.Println("server's input queue to the vehicles themselves.")
}

// compile flattens an adaptation into one node-side assignment (this
// example keeps a single logical base station covering the whole fleet).
func compile(net *lira.RoadNetwork, ad *lira.Adaptation) *lira.CompiledAssignment {
	station := lira.Station{ID: 0, Center: net.Space.Center(),
		Radius: net.Space.Width()} // covers everything
	deploy, err := lira.NewDeployment([]lira.Station{station}, ad.Partitioning, ad.Deltas)
	if err != nil {
		log.Fatal(err)
	}
	return lira.CompileAssignment(deploy.Assignments[0])
}

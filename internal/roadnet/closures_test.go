package roadnet

import (
	"testing"

	"lira/internal/rng"
)

// TestTopVolumeEdges: returns even twin ids, sorted by volume descending,
// deterministically.
func TestTopVolumeEdges(t *testing.T) {
	net := Generate(Config{Seed: 7})
	top := net.TopVolumeEdges(10)
	if len(top) != 10 {
		t.Fatalf("got %d ids, want 10", len(top))
	}
	for i, id := range top {
		if id%2 != 0 {
			t.Errorf("id %d at rank %d is an odd twin", id, i)
		}
		if i > 0 && net.Edges[top[i-1]].Volume < net.Edges[id].Volume {
			t.Errorf("rank %d volume %v > rank %d volume %v", i,
				net.Edges[id].Volume, i-1, net.Edges[top[i-1]].Volume)
		}
	}
	again := net.TopVolumeEdges(10)
	for i := range top {
		if top[i] != again[i] {
			t.Fatalf("TopVolumeEdges not deterministic at rank %d: %d vs %d", i, top[i], again[i])
		}
	}
	if got := net.TopVolumeEdges(len(net.Edges) * 2); len(got) != len(net.Edges)/2 {
		t.Errorf("oversized k returned %d ids, want %d", len(got), len(net.Edges)/2)
	}
}

// TestWithClosures: the clone zeroes both twins of each closed road,
// leaves the original untouched, keeps geometry identical, and routing on
// the clone never picks a closed edge except as a forced U-turn.
func TestWithClosures(t *testing.T) {
	net := Generate(Config{Seed: 7})
	closedIDs := net.TopVolumeEdges(5)
	closed := net.WithClosures(closedIDs)

	for _, id := range closedIDs {
		if closed.Edges[id].Volume != 0 || closed.Edges[closed.Edges[id].Reverse].Volume != 0 {
			t.Errorf("edge %d or its twin still has volume on the clone", id)
		}
		if net.Edges[id].Volume == 0 {
			t.Errorf("original edge %d was mutated", id)
		}
	}
	if len(closed.Edges) != len(net.Edges) || len(closed.Nodes) != len(net.Nodes) {
		t.Fatal("clone changed topology size")
	}
	for i := range closed.Edges {
		if closed.Edges[i].From != net.Edges[i].From ||
			closed.Edges[i].To != net.Edges[i].To ||
			closed.Edges[i].Length != net.Edges[i].Length {
			t.Fatalf("edge %d geometry differs between clone and original", i)
		}
	}

	isClosed := make(map[int]bool, 2*len(closedIDs))
	for _, id := range closedIDs {
		isClosed[id] = true
		isClosed[closed.Edges[id].Reverse] = true
	}
	r := rng.New(3)
	for trial := 0; trial < 2000; trial++ {
		e := closed.SampleEdge(r)
		if isClosed[e] {
			t.Fatalf("SampleEdge drew closed edge %d", e)
		}
		next := closed.NextEdge(e, r)
		if isClosed[next] && next != closed.Edges[e].Reverse {
			t.Fatalf("NextEdge chose closed edge %d from %d (not a forced U-turn)", next, e)
		}
		if ml := closed.MostLikelyNext(e); isClosed[ml] && ml != closed.Edges[e].Reverse {
			t.Fatalf("MostLikelyNext chose closed edge %d from %d", ml, e)
		}
	}

	// Closing the busiest roads must change at least one deterministic
	// routing decision — that divergence is what breaks dead-reckoning
	// predictions in the rush-hour scenario.
	same := true
	for e := 0; e < len(net.Edges); e++ {
		if net.MostLikelyNext(e) != closed.MostLikelyNext(e) {
			same = false
			break
		}
	}
	if same {
		t.Error("closing the top-5 roads changed no routing decision anywhere")
	}
}

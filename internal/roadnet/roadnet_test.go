package roadnet

import (
	"math"
	"testing"

	"lira/internal/rng"
)

func testNet(t *testing.T) *Network {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Side = 4000
	cfg.GridStep = 250
	cfg.Centers = 2
	cfg.CenterRadius = 800
	return Generate(cfg)
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultConfig())
	b := Generate(DefaultConfig())
	if len(a.Edges) != len(b.Edges) || len(a.Nodes) != len(b.Nodes) {
		t.Fatalf("same seed produced different sizes: %d/%d vs %d/%d",
			len(a.Nodes), len(a.Edges), len(b.Nodes), len(b.Edges))
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestSeedChangesNetwork(t *testing.T) {
	cfg := DefaultConfig()
	a := Generate(cfg)
	cfg.Seed = 99
	b := Generate(cfg)
	if len(a.Edges) == len(b.Edges) {
		same := true
		for i := range a.Edges {
			if a.Edges[i].Volume != b.Edges[i].Volume {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical networks")
		}
	}
}

func TestNodesInsideSpace(t *testing.T) {
	n := testNet(t)
	for i, node := range n.Nodes {
		p := node.Pos
		// Jitter may push a node slightly past the boundary; allow one
		// jitter radius of slack.
		if p.X < -100 || p.X > n.Space.MaxX+100 || p.Y < -100 || p.Y > n.Space.MaxY+100 {
			t.Fatalf("node %d far outside space: %v", i, p)
		}
	}
}

func TestEdgeTwins(t *testing.T) {
	n := testNet(t)
	for i, e := range n.Edges {
		rev := n.Edges[e.Reverse]
		if rev.Reverse != i {
			t.Fatalf("edge %d reverse pairing broken", i)
		}
		if rev.From != e.To || rev.To != e.From {
			t.Fatalf("edge %d twin endpoints mismatched", i)
		}
		if rev.Volume != e.Volume || rev.Class != e.Class {
			t.Fatalf("edge %d twin attributes differ", i)
		}
	}
}

func TestAllClassesPresent(t *testing.T) {
	n := testNet(t)
	var have [numClasses]bool
	for _, e := range n.Edges {
		have[e.Class] = true
	}
	for c := Collector; c < numClasses; c++ {
		if !have[c] {
			t.Errorf("network has no %v edges", c)
		}
	}
}

func TestClassSpeedsOrdered(t *testing.T) {
	if !(Collector.Speed() < Arterial.Speed() && Arterial.Speed() < Expressway.Speed()) {
		t.Error("class speeds are not strictly increasing with hierarchy")
	}
}

func TestArterialGridConnected(t *testing.T) {
	// Every node with at least one outgoing edge must reach a large
	// connected component; collectors can dead-end but the arterial grid
	// spans the space. Check: ≥95% of edge-having nodes are in one BFS
	// component.
	n := testNet(t)
	start := -1
	withEdges := 0
	for i := range n.Nodes {
		if len(n.Nodes[i].Out) > 0 {
			withEdges++
			if start == -1 {
				start = i
			}
		}
	}
	if start == -1 {
		t.Fatal("no edges at all")
	}
	seen := make([]bool, len(n.Nodes))
	queue := []int{start}
	seen[start] = true
	reached := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, e := range n.Nodes[v].Out {
			to := n.Edges[e].To
			if !seen[to] {
				seen[to] = true
				reached++
				queue = append(queue, to)
			}
		}
	}
	if float64(reached) < 0.95*float64(withEdges) {
		t.Errorf("connected component covers %d of %d noded intersections", reached, withEdges)
	}
}

func TestSampleEdgeFollowsVolume(t *testing.T) {
	n := testNet(t)
	r := rng.New(5)
	counts := make(map[Class]float64)
	const draws = 50000
	for i := 0; i < draws; i++ {
		e := n.SampleEdge(r)
		counts[n.Edges[e].Class]++
	}
	// Expressways are few but high-volume: their per-edge draw frequency
	// must exceed collectors' by a wide margin.
	classEdges := make(map[Class]float64)
	for _, e := range n.Edges {
		classEdges[e.Class]++
	}
	// Collectors only exist inside urban cores (where density is high),
	// so the per-edge contrast is moderated; expressways must still be
	// clearly busier per edge.
	exp := counts[Expressway] / classEdges[Expressway]
	col := counts[Collector] / classEdges[Collector]
	if exp < 2*col {
		t.Errorf("expressway per-edge draw rate %.4f not ≫ collector %.4f", exp, col)
	}
}

func TestNextEdgeAvoidsUTurn(t *testing.T) {
	n := testNet(t)
	r := rng.New(7)
	uturns, total := 0, 0
	for i := 0; i < 5000; i++ {
		e := n.SampleEdge(r)
		node := n.Edges[e].To
		if len(n.Nodes[node].Out) < 2 {
			continue // dead end: U-turn is forced, not counted
		}
		next := n.NextEdge(e, r)
		if next == n.Edges[e].Reverse {
			uturns++
		}
		total++
	}
	if total == 0 {
		t.Fatal("no samples")
	}
	if float64(uturns)/float64(total) > 0.01 {
		t.Errorf("U-turn rate %.3f at non-dead-ends, want ~0", float64(uturns)/float64(total))
	}
}

func TestPointAlong(t *testing.T) {
	n := testNet(t)
	e := 0
	a := n.Nodes[n.Edges[e].From].Pos
	b := n.Nodes[n.Edges[e].To].Pos
	if got := n.PointAlong(e, 0); got != a {
		t.Errorf("PointAlong(0) = %v, want %v", got, a)
	}
	if got := n.PointAlong(e, 1); got != b {
		t.Errorf("PointAlong(1) = %v, want %v", got, b)
	}
	mid := n.PointAlong(e, 0.5)
	if math.Abs(mid.Dist(a)-mid.Dist(b)) > 1e-9 {
		t.Errorf("midpoint not equidistant: %v", mid)
	}
}

func TestDirectionUnit(t *testing.T) {
	n := testNet(t)
	for e := 0; e < len(n.Edges); e += 97 {
		if n.Edges[e].Length == 0 {
			continue
		}
		d := n.Direction(e)
		if math.Abs(d.Len()-1) > 1e-9 {
			t.Fatalf("Direction(%d) not unit: %v", e, d.Len())
		}
	}
}

func TestStats(t *testing.T) {
	n := testNet(t)
	s := n.Stats()
	if s.Nodes != len(n.Nodes) || s.Edges != len(n.Edges) {
		t.Errorf("Stats counts wrong: %+v", s)
	}
	if s.ExpressKm <= 0 || s.ArterialKm <= 0 || s.CollectorKm <= 0 {
		t.Errorf("Stats lengths should all be positive: %+v", s)
	}
	if s.ArterialKm < s.ExpressKm {
		t.Errorf("arterial length %.1f should exceed expressway %.1f", s.ArterialKm, s.ExpressKm)
	}
}

func TestUrbanDensitySkew(t *testing.T) {
	// Collector edges should concentrate: the densest quarter of the space
	// must hold well more than a quarter of the collector length.
	n := testNet(t)
	half := n.Space.MaxX / 2
	quadLen := [4]float64{}
	total := 0.0
	for i, e := range n.Edges {
		if i%2 != 0 || e.Class != Collector {
			continue
		}
		mid := n.PointAlong(i, 0.5)
		q := 0
		if mid.X >= half {
			q |= 1
		}
		if mid.Y >= half {
			q |= 2
		}
		quadLen[q] += e.Length
		total += e.Length
	}
	if total == 0 {
		t.Fatal("no collector edges")
	}
	max := 0.0
	for _, l := range quadLen {
		if l > max {
			max = l
		}
	}
	if max/total < 0.3 {
		t.Errorf("collector density too uniform: max quadrant share %.2f", max/total)
	}
}

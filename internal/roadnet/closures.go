package roadnet

import "sort"

// TopVolumeEdges returns the ids of the k highest-volume roads, one id per
// road (the even-numbered twin of each directed pair). Ties break toward
// the lower id, so the result is deterministic for a given network. The
// scenario catalog uses it to pick which arteries a closure event severs.
func (n *Network) TopVolumeEdges(k int) []int {
	ids := make([]int, 0, len(n.Edges)/2)
	for i := 0; i < len(n.Edges); i += 2 {
		ids = append(ids, i)
	}
	sort.Slice(ids, func(a, b int) bool {
		va, vb := n.Edges[ids[a]].Volume, n.Edges[ids[b]].Volume
		if va != vb {
			return va > vb
		}
		return ids[a] < ids[b]
	})
	if k > len(ids) {
		k = len(ids)
	}
	if k < 0 {
		k = 0
	}
	return ids[:k]
}

// WithClosures returns a clone of the network with the given roads closed:
// each listed edge and its reverse twin get zero traffic volume, so routing
// (NextEdge, MostLikelyNext, SampleEdge) steers around them while the
// geometry stays identical — edge ids, node positions, and lengths are
// unchanged. Cars already on a closed edge finish it and divert at the next
// intersection; a node whose every exit is closed forces a U-turn, exactly
// like a real roadblock. The receiver is not modified. Out-of-range ids are
// ignored.
func (n *Network) WithClosures(ids []int) *Network {
	closed := &Network{
		Space: n.Space,
		Nodes: n.Nodes, // geometry and adjacency are shared, never mutated
		Edges: make([]Edge, len(n.Edges)),
	}
	copy(closed.Edges, n.Edges)
	for _, id := range ids {
		if id < 0 || id >= len(closed.Edges) {
			continue
		}
		closed.Edges[id].Volume = 0
		closed.Edges[closed.Edges[id].Reverse].Volume = 0
	}
	closed.buildCDF()
	return closed
}

// Package roadnet generates the synthetic road network over which the
// mobile-node traces are simulated.
//
// The paper evaluates LIRA on a trace generated from the USGS road map of
// the Chamblee region of Georgia (≈200 km², "a rich mixture of expressways,
// arterial roads, and collector roads") with real traffic-volume data. That
// map and the volume data are not available here, so this package builds
// the closest synthetic equivalent (see DESIGN.md §4): a hierarchical
// network of the same three road classes over the same-sized space, with
// heavy-tailed per-edge traffic volumes concentrated around a small number
// of urban centers. What the experiments actually depend on — spatially
// skewed node density, per-region speed differences, and road-constrained
// motion — are all reproduced.
package roadnet

import (
	"fmt"
	"math"

	"lira/internal/geo"
	"lira/internal/rng"
)

// Class identifies the road hierarchy level of an edge.
type Class uint8

const (
	// Collector roads are slow local streets, present mainly near urban
	// centers.
	Collector Class = iota
	// Arterial roads form a mid-speed grid across the whole space.
	Arterial
	// Expressway roads are the sparse high-speed backbone.
	Expressway
	numClasses
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Collector:
		return "collector"
	case Arterial:
		return "arterial"
	case Expressway:
		return "expressway"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Speed returns the free-flow speed of the class in meters per second.
func (c Class) Speed() float64 {
	switch c {
	case Collector:
		return 8.3 // ≈30 km/h
	case Arterial:
		return 16.7 // ≈60 km/h
	case Expressway:
		return 27.8 // ≈100 km/h
	}
	return 8.3
}

// Node is a road intersection.
type Node struct {
	Pos geo.Point
	// Out lists the ids of edges leaving this node.
	Out []int
}

// Edge is a directed road segment between two intersections. Every road is
// represented by a pair of opposite directed edges.
type Edge struct {
	From, To int
	Class    Class
	Length   float64
	// Volume is the relative traffic volume of the edge; trip starts and
	// routing decisions are drawn proportionally to it.
	Volume float64
	// Reverse is the id of the opposite-direction twin edge.
	Reverse int
}

// Network is an immutable road network.
type Network struct {
	Space geo.Rect
	Nodes []Node
	Edges []Edge

	totalVolume float64
	volumeCDF   []float64 // prefix sums over Edges for O(log E) sampling
}

// Config controls network generation.
type Config struct {
	// Side is the side length of the square space in meters.
	// The default (14142 m) gives the paper's ≈200 km².
	Side float64
	// GridStep is the intersection spacing of the base grid in meters.
	GridStep float64
	// ArterialEvery selects every k-th grid line as an arterial.
	ArterialEvery int
	// ExpresswayEvery selects every k-th grid line as an expressway.
	// Must be a multiple of ArterialEvery to keep the hierarchy nested.
	ExpresswayEvery int
	// Centers is the number of urban centers around which collector roads
	// (and traffic volume) concentrate.
	Centers int
	// CenterRadius is the e-folding radius, in meters, of the urban
	// density around each center.
	CenterRadius float64
	// Seed drives all randomness in generation.
	Seed uint64
}

// DefaultConfig returns the generation parameters used by the experiment
// harness: a ≈200 km² space matching the paper's Chamblee extract.
func DefaultConfig() Config {
	return Config{
		Side:            14142,
		GridStep:        442, // 32 grid lines per side
		ArterialEvery:   4,
		ExpresswayEvery: 16,
		Centers:         3,
		CenterRadius:    2200,
		Seed:            1,
	}
}

func (c *Config) fillDefaults() {
	d := DefaultConfig()
	if c.Side <= 0 {
		c.Side = d.Side
	}
	if c.GridStep <= 0 {
		c.GridStep = d.GridStep
	}
	if c.ArterialEvery <= 0 {
		c.ArterialEvery = d.ArterialEvery
	}
	if c.ExpresswayEvery <= 0 {
		c.ExpresswayEvery = d.ExpresswayEvery
	}
	if c.Centers <= 0 {
		c.Centers = d.Centers
	}
	if c.CenterRadius <= 0 {
		c.CenterRadius = d.CenterRadius
	}
}

// Generate builds a network from cfg. Generation is deterministic in
// cfg.Seed.
func Generate(cfg Config) *Network {
	cfg.fillDefaults()
	r := rng.New(cfg.Seed)

	lines := int(math.Round(cfg.Side/cfg.GridStep)) + 1
	if lines < 2 {
		lines = 2
	}
	step := cfg.Side / float64(lines-1)

	// Urban centers: traffic volume and collector-road presence decay
	// exponentially with distance from the nearest center. Center weights
	// are skewed so one center dominates, like a real downtown.
	centers := make([]geo.Point, cfg.Centers)
	weights := make([]float64, cfg.Centers)
	for i := range centers {
		centers[i] = geo.Point{
			X: r.Range(0.2, 0.8) * cfg.Side,
			Y: r.Range(0.2, 0.8) * cfg.Side,
		}
		weights[i] = 1 / float64(i+1)
	}
	urban := func(p geo.Point) float64 {
		d := 0.0
		for i, c := range centers {
			d += weights[i] * math.Exp(-p.Dist(c)/cfg.CenterRadius)
		}
		return d
	}

	net := &Network{Space: geo.Rect{MinX: 0, MinY: 0, MaxX: cfg.Side, MaxY: cfg.Side}}

	// Grid intersections with positional jitter (no jitter on expressway
	// lines, which stay straight).
	idx := func(i, j int) int { return i*lines + j }
	net.Nodes = make([]Node, lines*lines)
	classOf := func(k int) Class {
		switch {
		case k%cfg.ExpresswayEvery == 0:
			return Expressway
		case k%cfg.ArterialEvery == 0:
			return Arterial
		default:
			return Collector
		}
	}
	for i := 0; i < lines; i++ {
		for j := 0; j < lines; j++ {
			x := float64(i) * step
			y := float64(j) * step
			jitter := step * 0.15
			if classOf(i) == Collector {
				x += r.Range(-jitter, jitter)
			}
			if classOf(j) == Collector {
				y += r.Range(-jitter, jitter)
			}
			net.Nodes[idx(i, j)] = Node{Pos: geo.Point{X: x, Y: y}}
		}
	}

	// Edge class is the lower of the two line classes it connects along;
	// a segment along line k has class classOf(k).
	addRoad := func(a, b int, class Class) {
		// Collector segments exist only where urban density supports them.
		if class == Collector {
			mid := geo.Point{
				X: (net.Nodes[a].Pos.X + net.Nodes[b].Pos.X) / 2,
				Y: (net.Nodes[a].Pos.Y + net.Nodes[b].Pos.Y) / 2,
			}
			if !r.Bool(math.Min(1, urban(mid)*2.5)) {
				return
			}
		}
		length := net.Nodes[a].Pos.Dist(net.Nodes[b].Pos)
		mid := geo.Point{
			X: (net.Nodes[a].Pos.X + net.Nodes[b].Pos.X) / 2,
			Y: (net.Nodes[a].Pos.Y + net.Nodes[b].Pos.Y) / 2,
		}
		// Volume: class base × urban boost × heavy-tailed noise.
		base := 1.0
		switch class {
		case Arterial:
			base = 6
		case Expressway:
			base = 30
		}
		// Traffic volume: class base × squared urban proximity × noise.
		// The tiny floor keeps rural roads technically trafficked while
		// preserving the real-world property that genuinely rural areas
		// carry almost no vehicles — the density contrast LIRA's
		// region-awareness exploits.
		u := urban(mid)
		vol := base * (0.005 + u*u) * math.Exp(r.Norm(0, 0.5))

		e1 := len(net.Edges)
		e2 := e1 + 1
		net.Edges = append(net.Edges,
			Edge{From: a, To: b, Class: class, Length: length, Volume: vol, Reverse: e2},
			Edge{From: b, To: a, Class: class, Length: length, Volume: vol, Reverse: e1},
		)
		net.Nodes[a].Out = append(net.Nodes[a].Out, e1)
		net.Nodes[b].Out = append(net.Nodes[b].Out, e2)
	}

	for i := 0; i < lines; i++ {
		for j := 0; j < lines; j++ {
			if i+1 < lines { // horizontal segment along line y=j
				addRoad(idx(i, j), idx(i+1, j), classOf(j))
			}
			if j+1 < lines { // vertical segment along line x=i
				addRoad(idx(i, j), idx(i, j+1), classOf(i))
			}
		}
	}

	net.buildCDF()
	return net
}

func (n *Network) buildCDF() {
	n.volumeCDF = make([]float64, len(n.Edges))
	sum := 0.0
	for i, e := range n.Edges {
		sum += e.Volume
		n.volumeCDF[i] = sum
	}
	n.totalVolume = sum
}

// SampleEdge draws an edge id with probability proportional to its traffic
// volume.
func (n *Network) SampleEdge(r *rng.Rand) int {
	u := r.Float64() * n.totalVolume
	lo, hi := 0, len(n.volumeCDF)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if n.volumeCDF[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// PointAlong returns the point a fraction t ∈ [0,1] of the way along edge e.
func (n *Network) PointAlong(e int, t float64) geo.Point {
	edge := n.Edges[e]
	a, b := n.Nodes[edge.From].Pos, n.Nodes[edge.To].Pos
	return geo.Point{X: a.X + (b.X-a.X)*t, Y: a.Y + (b.Y-a.Y)*t}
}

// Direction returns the unit direction vector of edge e.
func (n *Network) Direction(e int) geo.Vector {
	edge := n.Edges[e]
	return n.Nodes[edge.To].Pos.Sub(n.Nodes[edge.From].Pos).Unit()
}

// NextEdge picks the edge a vehicle arriving at the To node of edge e
// continues on. Choices are weighted by volume, with a strong preference
// for not making an immediate U-turn; dead ends force a U-turn.
func (n *Network) NextEdge(e int, r *rng.Rand) int {
	node := n.Edges[e].To
	out := n.Nodes[node].Out
	rev := n.Edges[e].Reverse
	total := 0.0
	for _, cand := range out {
		if cand == rev {
			continue
		}
		total += n.Edges[cand].Volume
	}
	if total == 0 {
		return rev // dead end
	}
	u := r.Float64() * total
	for _, cand := range out {
		if cand == rev {
			continue
		}
		u -= n.Edges[cand].Volume
		if u <= 0 {
			return cand
		}
	}
	// Floating-point slack: fall back to the last non-reverse edge.
	for i := len(out) - 1; i >= 0; i-- {
		if out[i] != rev {
			return out[i]
		}
	}
	return rev
}

// MostLikelyNext returns the deterministic most-probable continuation of
// edge e: the highest-volume outgoing edge at e's head, excluding the
// U-turn (which is returned only at dead ends). Road-network-aware motion
// models use it to predict a vehicle's path without randomness.
func (n *Network) MostLikelyNext(e int) int {
	node := n.Edges[e].To
	rev := n.Edges[e].Reverse
	best, bestVol := -1, -1.0
	for _, cand := range n.Nodes[node].Out {
		if cand == rev {
			continue
		}
		if v := n.Edges[cand].Volume; v > bestVol {
			best, bestVol = cand, v
		}
	}
	if best == -1 {
		return rev
	}
	return best
}

// Stats summarizes a network for logging and tests.
type Stats struct {
	Nodes, Edges                       int
	CollectorKm, ArterialKm, ExpressKm float64
}

// Stats returns summary statistics of the network. Lengths count each road
// once (not per directed twin).
func (n *Network) Stats() Stats {
	s := Stats{Nodes: len(n.Nodes), Edges: len(n.Edges)}
	for i, e := range n.Edges {
		if i%2 != 0 { // skip reverse twins
			continue
		}
		switch e.Class {
		case Collector:
			s.CollectorKm += e.Length / 1000
		case Arterial:
			s.ArterialKm += e.Length / 1000
		case Expressway:
			s.ExpressKm += e.Length / 1000
		}
	}
	return s
}

package workload

import (
	"lira/internal/geo"
	"lira/internal/rng"
)

func init() {
	RegisterScenario(ScenarioSpec{
		Name:  "query-churn",
		About: "steady report load while the registered query set is replaced repeatedly — overload lands on re-registration, not ingest",
		Build: newQueryChurn,
	})
}

// Query-churn timeline: report load holds flat at the baseline rate the
// whole run; the stress is control-plane-shaped instead. During the storm
// window the entire query set is re-registered every churnPeriod ticks at
// double the resting size — the pattern of a dashboard fleet redeploying
// or an operator mass-editing geofences. Engines pay for it in query
// (re)installation and partition rebuilds, which is exactly the cost axis
// the other scenarios leave idle.
const (
	churnTicks      = 80
	churnStormStart = 30
	churnStormEnd   = 55
	churnPeriod     = 3
	churnStormScale = 2
)

type churnScenario struct {
	space   geo.Rect
	walk    *walkers
	beat    int
	seed    uint64
	baseQs  []geo.Rect
	queries int
}

func newQueryChurn(space geo.Rect, nodes int, rate float64, seed uint64) (Scenario, error) {
	root := rng.New(seed)
	qs, err := GenerateQueries(space, nil, QueryConfig{
		Count:      scenarioQueryCount(nodes),
		SideLength: space.Width() / 16,
		Seed:       seed + 0xc4be,
	})
	if err != nil {
		return nil, err
	}
	return &churnScenario{
		space:   space,
		walk:    newWalkers(space, nodes, space.Width()/100, root),
		beat:    heartbeatEvery(nodes, rate),
		seed:    seed,
		baseQs:  qs,
		queries: scenarioQueryCount(nodes),
	}, nil
}

func (s *churnScenario) Name() string { return "query-churn" }
func (s *churnScenario) Nodes() int   { return len(s.walk.pos) }
func (s *churnScenario) Ticks() int   { return churnTicks }

func (s *churnScenario) Emit(now float64, emit func(int, geo.Point, geo.Vector)) {
	tick := int(now)
	for i := 0; i < len(s.walk.pos); i++ {
		if (tick+i)%s.beat == 0 {
			pos, vel := s.walk.at(i, tick)
			emit(i, pos, vel)
		}
	}
}

// Motions implements MotionSource; see blackoutScenario.Motions for why
// the eager walker advance is emission-safe.
func (s *churnScenario) Motions(tick int, visit func(int, geo.Point, geo.Vector)) {
	for i := 0; i < len(s.walk.pos); i++ {
		pos, vel := s.walk.at(i, tick)
		visit(i, pos, vel)
	}
}

func (s *churnScenario) Queries(tick int) ([]geo.Rect, bool) {
	switch {
	case tick == 0:
		return s.baseQs, true
	case tick >= churnStormStart && tick < churnStormEnd && (tick-churnStormStart)%churnPeriod == 0:
		// Each storm wave is an entirely fresh, larger set, deterministic
		// in (seed, tick) so replays churn identically.
		qs, err := GenerateQueries(s.space, nil, QueryConfig{
			Count:      s.queries * churnStormScale,
			SideLength: s.space.Width() / 16,
			Seed:       s.seed + 0x5708 + uint64(tick),
		})
		if err != nil {
			return nil, false // unreachable: config is validated at build
		}
		return qs, true
	case tick == churnStormEnd:
		return s.baseQs, true // storm over: settle back to the resting set
	}
	return nil, false
}

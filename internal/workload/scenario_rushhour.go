package workload

import (
	"lira/internal/geo"
	"lira/internal/roadnet"
	"lira/internal/routemodel"
	"lira/internal/trace"
)

func init() {
	RegisterScenario(ScenarioSpec{
		Name:  "rush-hour-closure",
		About: "road-following fleet; closing the busiest roads mid-run breaks route predictions and triggers a report storm",
		Build: newRushHour,
	})
}

// Rush-hour timeline and calibration constants. The closure lands a third
// of the way in so the planner sees a calm baseline, a developing storm,
// and a long closed-network tail.
const (
	rushHourTicks   = 90
	rushHourCloseAt = rushHourTicks / 3
	// rushHourClosureFrac closes the busiest fraction of roads — the
	// arteries that carry (and whose volumes steer) most of the fleet, so
	// stale predictions keep routing into roads real traffic now avoids.
	rushHourClosureFrac = 0.15
	// rushHourDelta is the route-model suppression threshold in meters:
	// small enough that closure-induced mispredictions fire within ~10
	// ticks at arterial speeds, large enough that ordinary probabilistic
	// branching stays mostly suppressed.
	rushHourDelta = 200
)

// rushHourScenario drives a trace.Source fleet over a generated road
// network while each car runs a client-side routemodel.Reckoner that keeps
// predicting on the ORIGINAL network. At rushHourCloseAt the source swaps
// to a WithClosures clone — traffic diverts around the closed arteries,
// the stale predictions walk off the real trajectories, and suppression
// failures surge into a report storm that decays as reckoners refresh.
type rushHourScenario struct {
	space   geo.Rect
	source  *trace.Source
	closed  *roadnet.Network
	recks   []*routemodel.Reckoner
	started bool
	beat    int
	ticks   int
	queries []geo.Rect
}

func newRushHour(space geo.Rect, nodes int, rate float64, seed uint64) (Scenario, error) {
	side := space.Width()
	if space.Height() < side {
		side = space.Height()
	}
	net := roadnet.Generate(roadnet.Config{
		Side:            side,
		GridStep:        side / 24,
		ArterialEvery:   4,
		ExpresswayEvery: 8,
		Centers:         3,
		CenterRadius:    side / 6,
		Seed:            seed + 0xad,
	})
	source := trace.NewSource(net, trace.Config{N: nodes, Seed: seed + 0xcab})
	pred := routemodel.NewPredictor(net) // predictions stay on the pre-closure network
	recks := make([]*routemodel.Reckoner, nodes)
	for i := range recks {
		recks[i] = routemodel.NewReckoner(pred)
	}
	qs, err := GenerateQueries(space, source.Positions(), QueryConfig{
		Count:        scenarioQueryCount(nodes),
		SideLength:   side / 16,
		Distribution: Proportional,
		Seed:         seed + 0x9e37,
	})
	if err != nil {
		return nil, err
	}
	closures := int(float64(len(net.Edges)/2) * rushHourClosureFrac)
	if closures < 4 {
		closures = 4
	}
	return &rushHourScenario{
		space:   space,
		source:  source,
		closed:  net.WithClosures(net.TopVolumeEdges(closures)),
		recks:   recks,
		beat:    heartbeatEvery(nodes, rate),
		ticks:   rushHourTicks,
		queries: qs,
	}, nil
}

func (s *rushHourScenario) Name() string { return "rush-hour-closure" }
func (s *rushHourScenario) Nodes() int   { return s.source.N() }
func (s *rushHourScenario) Ticks() int   { return s.ticks }

func (s *rushHourScenario) Emit(now float64, emit func(int, geo.Point, geo.Vector)) {
	tick := s.source.Tick()
	if !s.started {
		// Tick 0: every car transmits its initial route-model report.
		s.started = true
		for i := range s.recks {
			edge, offset := s.source.EdgeState(i)
			s.recks[i].Start(edge, offset, s.source.Speed(i), now)
			emit(i, s.source.Positions()[i], s.source.Velocities()[i])
		}
		s.source.Step(1)
		return
	}
	if tick == rushHourCloseAt {
		s.source.SetNetwork(s.closed)
	}
	pos, vel := s.source.Positions(), s.source.Velocities()
	for i := range s.recks {
		edge, offset := s.source.EdgeState(i)
		if _, send := s.recks[i].Observe(edge, offset, s.source.Speed(i), pos[i], now, rushHourDelta); send {
			emit(i, pos[i], vel[i])
			continue
		}
		if (tick+i)%s.beat == 0 { // staggered keep-alive baseline
			emit(i, pos[i], vel[i])
		}
	}
	s.source.Step(1)
}

// Motions implements MotionSource. The source steps at the end of Emit,
// so the dense read is one tick ahead of the emitted reports; it is
// internally consistent across Steps, which is all the traffic adapter
// needs — the adapter discards the report stream entirely.
func (s *rushHourScenario) Motions(tick int, visit func(int, geo.Point, geo.Vector)) {
	pos, vel := s.source.Positions(), s.source.Velocities()
	for i := 0; i < s.source.N(); i++ {
		visit(i, pos[i], vel[i])
	}
}

func (s *rushHourScenario) Queries(tick int) ([]geo.Rect, bool) {
	if tick == 0 {
		return s.queries, true
	}
	return nil, false
}

package workload

import "fmt"

// Phase is one linear segment of a rate envelope: over Ticks ticks the
// aggregate report rate moves linearly from From to To (updates per
// emitted tick). A flat segment has From == To.
type Phase struct {
	From, To float64
	Ticks    int
}

// Envelope is a piecewise-linear aggregate-rate schedule — the shape of
// an overload. It generalizes the flash crowd's hard-coded
// base → ramp → peak-hold → decay profile so the scenario catalog can
// express variants (double peaks, cliffs, slow burns) purely in config,
// with no new generator code. Rate is a pure function of the phase list,
// so two generators sharing an envelope and a seed emit byte-identical
// schedules.
type Envelope []Phase

// Validate checks that every phase has a positive length and non-negative
// rates.
func (e Envelope) Validate() error {
	if len(e) == 0 {
		return fmt.Errorf("workload: empty envelope")
	}
	for i, p := range e {
		if p.Ticks <= 0 {
			return fmt.Errorf("workload: envelope phase %d has non-positive length %d", i, p.Ticks)
		}
		if p.From < 0 || p.To < 0 {
			return fmt.Errorf("workload: envelope phase %d has negative rate", i)
		}
	}
	return nil
}

// Ticks returns the total envelope length (the sum of phase lengths).
func (e Envelope) Ticks() int {
	total := 0
	for _, p := range e {
		total += p.Ticks
	}
	return total
}

// Base returns the rate before the first phase begins (the first phase's
// starting rate), or 0 for an empty envelope.
func (e Envelope) Base() float64 {
	if len(e) == 0 {
		return 0
	}
	return e[0].From
}

// Peak returns the highest rate the envelope reaches.
func (e Envelope) Peak() float64 {
	peak := 0.0
	for _, p := range e {
		if p.From > peak {
			peak = p.From
		}
		if p.To > peak {
			peak = p.To
		}
	}
	return peak
}

// Rate returns the aggregate rate at tick t: Base before the envelope
// starts, linear interpolation inside each phase (phase p spanning ticks
// (start, start+p.Ticks] reaches p.To exactly at its last tick), and the
// final phase's To rate after the envelope ends.
func (e Envelope) Rate(t int) float64 {
	if len(e) == 0 {
		return 0
	}
	if t <= 0 {
		return e[0].From
	}
	start := 0
	for _, p := range e {
		if t <= start+p.Ticks {
			return p.From + (p.To-p.From)*float64(t-start)/float64(p.Ticks)
		}
		start += p.Ticks
	}
	return e[len(e)-1].To
}

// RampHoldDecay builds the canonical flash-crowd envelope: a linear climb
// from base to peak over ramp ticks, a hold at peak for hold ticks, and a
// linear decay back to base over decay ticks.
func RampHoldDecay(base, peak float64, ramp, hold, decay int) Envelope {
	return Envelope{
		{From: base, To: peak, Ticks: ramp},
		{From: peak, To: peak, Ticks: hold},
		{From: peak, To: base, Ticks: decay},
	}
}

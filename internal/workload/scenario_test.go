package workload

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"testing"

	"lira/internal/geo"
)

func scenarioSpace() geo.Rect {
	return geo.Rect{MinX: 0, MinY: 0, MaxX: 6000, MaxY: 6000}
}

// runScenario drives a scenario through its full contract and returns an
// FNV-1a digest of everything it produced: every query rectangle on every
// changed tick and every (tick, node, pos, vel) report, in order.
func runScenario(t *testing.T, name string, seed uint64) (digest uint64, reports []int) {
	t.Helper()
	s, err := BuildScenario(name, scenarioSpace(), 400, 40, seed)
	if err != nil {
		t.Fatalf("BuildScenario(%q): %v", name, err)
	}
	h := fnv.New64a()
	word := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	f := func(v float64) { word(math.Float64bits(v)) }
	reports = make([]int, s.Ticks())
	for tick := 0; tick < s.Ticks(); tick++ {
		if qs, ok := s.Queries(tick); ok {
			word(uint64(tick))
			word(uint64(len(qs)))
			for _, q := range qs {
				f(q.MinX)
				f(q.MinY)
				f(q.MaxX)
				f(q.MaxY)
			}
		} else if qs != nil {
			t.Fatalf("%s: Queries(%d) returned a set with ok=false", name, tick)
		}
		s.Emit(float64(tick), func(node int, pos geo.Point, vel geo.Vector) {
			reports[tick]++
			word(uint64(tick))
			word(uint64(node))
			f(pos.X)
			f(pos.Y)
			f(vel.X)
			f(vel.Y)
			if node < 0 || node >= s.Nodes() {
				t.Fatalf("%s: node id %d outside [0,%d)", name, node, s.Nodes())
			}
			if !scenarioSpace().ContainsClosed(pos) {
				t.Fatalf("%s: position %v outside the space", name, pos)
			}
		})
	}
	return h.Sum64(), reports
}

// TestScenarioCatalogComplete: the catalog holds the six named scenarios in
// sorted order and rejects unknown names and bad arguments.
func TestScenarioCatalogComplete(t *testing.T) {
	want := []string{
		"blackout", "flash-crowd", "flash-crowd-double",
		"mixed-fleet", "query-churn", "rush-hour-closure",
	}
	got := CatalogNames()
	if len(got) != len(want) {
		t.Fatalf("catalog = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("catalog = %v, want %v", got, want)
		}
	}
	for _, spec := range Catalog() {
		if spec.About == "" {
			t.Errorf("scenario %q has no About line", spec.Name)
		}
	}
	if _, err := BuildScenario("no-such", scenarioSpace(), 10, 1, 1); err == nil {
		t.Error("unknown scenario name did not error")
	}
	if _, err := BuildScenario("blackout", scenarioSpace(), 0, 1, 1); err == nil {
		t.Error("zero population did not error")
	}
	if _, err := BuildScenario("blackout", scenarioSpace(), 10, 0, 1); err == nil {
		t.Error("zero rate did not error")
	}
}

// TestScenarioDeterminism: for every catalog scenario and three seeds, two
// independently built instances produce byte-identical report and query
// streams, and a different seed produces a different stream.
func TestScenarioDeterminism(t *testing.T) {
	for _, spec := range Catalog() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			var digests []uint64
			for _, seed := range []uint64{1, 42, 31337} {
				d1, _ := runScenario(t, spec.Name, seed)
				d2, _ := runScenario(t, spec.Name, seed)
				if d1 != d2 {
					t.Fatalf("seed %d: replay digest %x != %x", seed, d2, d1)
				}
				digests = append(digests, d1)
			}
			if digests[0] == digests[1] && digests[1] == digests[2] {
				t.Error("all three seeds produced identical streams — seed is ignored")
			}
		})
	}
}

// TestScenarioShapes: each scenario's report-rate profile has the overload
// shape its catalog entry promises.
func TestScenarioShapes(t *testing.T) {
	sum := func(r []int, lo, hi int) int {
		total := 0
		for t := lo; t < hi && t < len(r); t++ {
			total += r[t]
		}
		return total
	}
	mean := func(r []int, lo, hi int) float64 {
		if hi > len(r) {
			hi = len(r)
		}
		if hi <= lo {
			return 0
		}
		return float64(sum(r, lo, hi)) / float64(hi-lo)
	}

	t.Run("rush-hour-closure", func(t *testing.T) {
		_, r := runScenario(t, "rush-hour-closure", 7)
		calm := mean(r, 10, rushHourCloseAt)
		storm := mean(r, rushHourCloseAt+5, rushHourCloseAt+25)
		// The keep-alive heartbeat floor is common to both windows; the
		// storm is the sustained excess above it. Over the 20-tick window
		// the closures must force an extra report from a sizeable fraction
		// of the 400-car fleet.
		if extra := (storm - calm) * 20; extra < 0.15*400 {
			t.Errorf("closure storm adds only %.0f reports over 20 ticks (calm %.1f/tick, storm %.1f/tick)",
				extra, calm, storm)
		}
	})
	t.Run("blackout", func(t *testing.T) {
		_, r := runScenario(t, "blackout", 7)
		before := mean(r, 5, blackoutStart)
		dark := mean(r, blackoutStart, blackoutEnd)
		flush := mean(r, blackoutEnd, blackoutEnd+blackoutFlushTicks)
		if dark >= before*(1-blackoutAffectedFrac/2) {
			t.Errorf("outage rate %.1f/tick did not drop from baseline %.1f/tick", dark, before)
		}
		if flush < 2*before {
			t.Errorf("reconnect herd %.1f/tick not clearly above baseline %.1f/tick", flush, before)
		}
	})
	t.Run("flash-crowd-double", func(t *testing.T) {
		s, err := BuildScenario("flash-crowd-double", scenarioSpace(), 400, 40, 7)
		if err != nil {
			t.Fatal(err)
		}
		fc := s.(*flashCrowdScenario)
		peak1, trough, peak2 := fc.crowd.Rate(15), fc.crowd.Rate(25), fc.crowd.Rate(40)
		if !(peak1 > trough && peak2 > peak1) {
			t.Errorf("double-peak envelope broken: %v, %v, %v", peak1, trough, peak2)
		}
	})
	t.Run("query-churn", func(t *testing.T) {
		s, err := BuildScenario("query-churn", scenarioSpace(), 400, 40, 7)
		if err != nil {
			t.Fatal(err)
		}
		changes := 0
		for tick := 0; tick < s.Ticks(); tick++ {
			qs, ok := s.Queries(tick)
			if !ok {
				continue
			}
			changes++
			if tick >= churnStormStart && tick < churnStormEnd && len(qs) != churnStormScale*scenarioQueryCount(400) {
				t.Errorf("storm tick %d set has %d queries, want %d", tick, len(qs), churnStormScale*scenarioQueryCount(400))
			}
			if (tick < churnStormStart || tick >= churnStormEnd) && tick != 0 && tick != churnStormEnd {
				t.Errorf("query set changed outside the storm at tick %d", tick)
			}
		}
		if changes < 5 {
			t.Errorf("only %d query-set changes across the run; storm missing", changes)
		}
	})
	t.Run("mixed-fleet", func(t *testing.T) {
		s, err := BuildScenario("mixed-fleet", scenarioSpace(), 400, 40, 7)
		if err != nil {
			t.Fatal(err)
		}
		fleet := s.(*mixedFleetScenario)
		droneReports, total := 0, 0
		for tick := 0; tick < s.Ticks(); tick++ {
			s.Queries(tick)
			s.Emit(float64(tick), func(node int, _ geo.Point, _ geo.Vector) {
				total++
				if node >= fleet.pedN+fleet.carN {
					droneReports++
				}
			})
		}
		droneFrac := float64(fleet.droneN) / float64(s.Nodes())
		if got := float64(droneReports) / float64(total); got < 2*droneFrac {
			t.Errorf("drones are %.0f%% of the fleet but only %.0f%% of reports; surge bias missing",
				droneFrac*100, got*100)
		}
	})
}

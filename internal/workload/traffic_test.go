package workload

import (
	"testing"

	"lira/internal/geo"
)

func trafficSpace() geo.Rect { return geo.NewRect(0, 0, 4000, 4000) }

// TestTrafficDeterministicReplay pins the adapter's trace.Source
// contract for every catalog scenario: Reset replays the identical
// trajectory, and two adapters built with equal arguments agree.
func TestTrafficDeterministicReplay(t *testing.T) {
	for _, name := range CatalogNames() {
		t.Run(name, func(t *testing.T) {
			a, err := NewTraffic(name, trafficSpace(), 120, 12, 9)
			if err != nil {
				t.Fatal(err)
			}
			b, err := NewTraffic(name, trafficSpace(), 120, 12, 9)
			if err != nil {
				t.Fatal(err)
			}
			const ticks = 30
			trajA := make([]geo.Point, 0, ticks*120)
			for k := 0; k < ticks; k++ {
				a.Step(1)
				b.Step(1)
				pa, pb := a.Positions(), b.Positions()
				va, vb := a.Velocities(), b.Velocities()
				for i := range pa {
					if pa[i] != pb[i] || va[i] != vb[i] {
						t.Fatalf("tick %d node %d: twin adapters diverged", k, i)
					}
					trajA = append(trajA, pa[i])
				}
			}
			a.Reset()
			at := 0
			for k := 0; k < ticks; k++ {
				a.Step(1)
				for _, p := range a.Positions() {
					if p != trajA[at] {
						t.Fatalf("tick %d: Reset replay diverged", k)
					}
					at++
				}
			}
		})
	}
}

// TestTrafficDoesNotPerturbEmission pins the MotionSource no-randomness
// contract: a scenario driven with dense Motions reads interleaved emits
// the byte-identical report stream of one driven without them.
func TestTrafficDoesNotPerturbEmission(t *testing.T) {
	type report struct {
		node int
		pos  geo.Point
	}
	for _, name := range CatalogNames() {
		t.Run(name, func(t *testing.T) {
			build := func() MotionSource {
				sc, err := BuildScenario(name, trafficSpace(), 120, 12, 9)
				if err != nil {
					t.Fatal(err)
				}
				ms, ok := sc.(MotionSource)
				if !ok {
					t.Fatalf("scenario %q lacks dense motion", name)
				}
				return ms
			}
			plain, dense := build(), build()
			for tick := 0; tick < plain.Ticks(); tick++ {
				var a, b []report
				plain.Emit(float64(tick), func(n int, p geo.Point, _ geo.Vector) {
					a = append(a, report{n, p})
				})
				dense.Emit(float64(tick), func(n int, p geo.Point, _ geo.Vector) {
					b = append(b, report{n, p})
				})
				dense.Motions(tick, func(int, geo.Point, geo.Vector) {})
				if len(a) != len(b) {
					t.Fatalf("tick %d: report counts diverged: %d vs %d", tick, len(a), len(b))
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("tick %d report %d: dense reads perturbed emission", tick, i)
					}
				}
			}
		})
	}
}

package workload

import (
	"lira/internal/geo"
)

func init() {
	RegisterScenario(ScenarioSpec{
		Name:  "flash-crowd",
		About: "canonical ramp-hold-decay surge converging on one hotspot (stadium letting out)",
		Build: func(space geo.Rect, nodes int, rate float64, seed uint64) (Scenario, error) {
			return newFlashCrowdScenario("flash-crowd", space, nodes, rate, seed, nil)
		},
	})
	RegisterScenario(ScenarioSpec{
		Name:  "flash-crowd-double",
		About: "two back-to-back surges with a deceptive trough between them, pure envelope config",
		Build: func(space geo.Rect, nodes int, rate float64, seed uint64) (Scenario, error) {
			// The trough tempts the controller into relaxing early; the
			// second, taller peak punishes it. Expressed entirely as an
			// Envelope — no generator code beyond the canonical FlashCrowd.
			env := Envelope{
				{From: rate, To: 4 * rate, Ticks: 15},
				{From: 4 * rate, To: 1.5 * rate, Ticks: 10},
				{From: 1.5 * rate, To: 5 * rate, Ticks: 15},
				{From: 5 * rate, To: 5 * rate, Ticks: 10},
				{From: 5 * rate, To: rate, Ticks: 20},
			}
			return newFlashCrowdScenario("flash-crowd-double", space, nodes, rate, seed, env)
		},
	})
}

// flashCrowdScenario adapts FlashCrowd to the catalog interface: the crowd
// generator supplies motion and load; the query set is fixed at tick 0.
type flashCrowdScenario struct {
	name    string
	crowd   *FlashCrowd
	queries []geo.Rect
}

func newFlashCrowdScenario(name string, space geo.Rect, nodes int, rate float64, seed uint64, env Envelope) (Scenario, error) {
	crowd, err := NewFlashCrowd(space, FlashCrowdConfig{
		Nodes:    nodes,
		BaseRate: rate,
		PeakRate: 4 * rate,
		Envelope: env,
		Seed:     seed,
	})
	if err != nil {
		return nil, err
	}
	qs, err := GenerateQueries(space, nil, QueryConfig{
		Count:      scenarioQueryCount(nodes),
		SideLength: space.Width() / 16,
		Seed:       seed + 0x71a5,
	})
	if err != nil {
		return nil, err
	}
	return &flashCrowdScenario{name: name, crowd: crowd, queries: qs}, nil
}

func (s *flashCrowdScenario) Name() string { return s.name }
func (s *flashCrowdScenario) Nodes() int   { return s.crowd.cfg.Nodes }
func (s *flashCrowdScenario) Ticks() int   { return s.crowd.Ticks() }

func (s *flashCrowdScenario) Emit(now float64, emit func(int, geo.Point, geo.Vector)) {
	s.crowd.Emit(now, emit)
}

// Motions implements MotionSource: the crowd generator's positions
// advance only on emission draws, so the dense read is the last-emitted
// state and consumes no randomness.
func (s *flashCrowdScenario) Motions(tick int, visit func(int, geo.Point, geo.Vector)) {
	s.crowd.Motions(visit)
}

func (s *flashCrowdScenario) Queries(tick int) ([]geo.Rect, bool) {
	if tick == 0 {
		return s.queries, true
	}
	return nil, false
}

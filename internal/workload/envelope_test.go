package workload

import (
	"testing"

	"lira/internal/geo"
)

// TestEnvelopeRate: the piecewise-linear schedule interpolates inside
// phases, holds flat segments, and clamps to the boundary rates outside
// the envelope.
func TestEnvelopeRate(t *testing.T) {
	e := RampHoldDecay(10, 40, 10, 5, 20)
	if got := e.Rate(-3); got != 10 {
		t.Errorf("Rate(-3) = %v, want base 10", got)
	}
	if got := e.Rate(5); got != 25 {
		t.Errorf("Rate(5) = %v, want mid-ramp 25", got)
	}
	if got := e.Rate(12); got != 40 {
		t.Errorf("Rate(12) = %v, want hold 40", got)
	}
	if got := e.Rate(25); got != 25 {
		t.Errorf("Rate(25) = %v, want mid-decay 25", got)
	}
	if got := e.Rate(99); got != 10 {
		t.Errorf("Rate(99) = %v, want trailing base 10", got)
	}
	if got := e.Ticks(); got != 35 {
		t.Errorf("Ticks = %d, want 35", got)
	}
	if got := e.Base(); got != 10 {
		t.Errorf("Base = %v, want 10", got)
	}
	if got := e.Peak(); got != 40 {
		t.Errorf("Peak = %v, want 40", got)
	}
}

// TestEnvelopeValidate: empty envelopes, non-positive phase lengths, and
// negative rates are rejected.
func TestEnvelopeValidate(t *testing.T) {
	if err := (Envelope{}).Validate(); err == nil {
		t.Error("empty envelope should fail validation")
	}
	if err := (Envelope{{From: 1, To: 2, Ticks: 0}}).Validate(); err == nil {
		t.Error("zero-length phase should fail validation")
	}
	if err := (Envelope{{From: -1, To: 2, Ticks: 5}}).Validate(); err == nil {
		t.Error("negative rate should fail validation")
	}
	if err := RampHoldDecay(1, 4, 2, 2, 2).Validate(); err != nil {
		t.Errorf("canonical envelope failed validation: %v", err)
	}
}

// TestFlashCrowdCustomEnvelope: a double-peak profile expressed purely in
// config drives the generator — no new code per variant — and the
// emission counts track the schedule.
func TestFlashCrowdCustomEnvelope(t *testing.T) {
	space := geo.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	env := Envelope{
		{From: 10, To: 40, Ticks: 5},
		{From: 40, To: 10, Ticks: 5},
		{From: 10, To: 40, Ticks: 5},
		{From: 40, To: 10, Ticks: 5},
	}
	f, err := NewFlashCrowd(space, FlashCrowdConfig{Nodes: 100, Envelope: env, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Ticks(); got != env.Ticks()+2 {
		t.Fatalf("Ticks = %d, want %d", got, env.Ticks()+2)
	}
	if got := f.Rate(5); got != 40 {
		t.Errorf("Rate(5) = %v, want first peak 40", got)
	}
	if got := f.Rate(10); got != 10 {
		t.Errorf("Rate(10) = %v, want trough 10", got)
	}
	if got := f.Rate(15); got != 40 {
		t.Errorf("Rate(15) = %v, want second peak 40", got)
	}
	counts := make([]int, f.Ticks())
	for tick := 0; tick < f.Ticks(); tick++ {
		f.Emit(float64(tick), func(int, geo.Point, geo.Vector) { counts[tick]++ })
	}
	// Emission counts are round(Rate(t)).
	for _, tk := range []int{5, 10, 15} {
		if want := int(f.Rate(tk) + 0.5); counts[tk] != want {
			t.Errorf("tick %d emitted %d reports, want %d", tk, counts[tk], want)
		}
	}
	// A malformed explicit envelope is rejected at construction.
	if _, err := NewFlashCrowd(space, FlashCrowdConfig{
		Nodes: 10, Envelope: Envelope{{From: 1, To: 1, Ticks: -1}},
	}); err == nil {
		t.Error("NewFlashCrowd accepted a malformed envelope")
	}
}

package workload

import (
	"fmt"

	"lira/internal/geo"
	"lira/internal/rng"
)

// FlashCrowdConfig parameterizes the seeded overload scenario the
// admission controller is chaos-tested and benchmarked against: a
// population of nodes reporting at a base rate, with a hotspot fraction
// that converges on one region of the space while the aggregate report
// rate ramps to a peak, holds, and decays back — the canonical
// flash-crowd shape (a stadium letting out, an incident on a highway).
type FlashCrowdConfig struct {
	// Nodes is the population size.
	Nodes int
	// HotspotFrac is the fraction of the population that belongs to the
	// crowd (drawn toward the hotspot center); the rest roam uniformly.
	// Zero selects 0.8.
	HotspotFrac float64
	// BaseRate and PeakRate are aggregate report rates in updates per
	// emitted tick, before and at the height of the crowd. BaseRate zero
	// selects Nodes/10; PeakRate zero selects 4×BaseRate.
	BaseRate, PeakRate float64
	// RampTicks, HoldTicks, DecayTicks shape the default envelope: rate
	// climbs linearly from BaseRate to PeakRate over RampTicks, holds at
	// PeakRate for HoldTicks, then decays linearly back over DecayTicks.
	// Zeros select 20/20/30. Ignored when Envelope is set explicitly.
	RampTicks, HoldTicks, DecayTicks int
	// Envelope overrides the canonical ramp-hold-decay profile with an
	// arbitrary piecewise-linear rate schedule, so catalog variants
	// (double peaks, cliffs, slow burns) are pure config. Empty selects
	// RampHoldDecay(BaseRate, PeakRate, RampTicks, HoldTicks, DecayTicks).
	Envelope Envelope
	// Speed is the node speed magnitude (units per second). Zero selects
	// one percent of the space diagonal per second.
	Speed float64
	// Seed drives every random choice; two generators with equal configs
	// emit identical sequences.
	Seed uint64
}

func (c *FlashCrowdConfig) fillDefaults(space geo.Rect) {
	if c.HotspotFrac <= 0 || c.HotspotFrac > 1 {
		c.HotspotFrac = 0.8
	}
	if c.BaseRate <= 0 {
		c.BaseRate = float64(c.Nodes) / 10
		if c.BaseRate < 1 {
			c.BaseRate = 1
		}
	}
	if c.PeakRate <= 0 {
		c.PeakRate = 4 * c.BaseRate
	}
	if c.RampTicks <= 0 {
		c.RampTicks = 20
	}
	if c.HoldTicks <= 0 {
		c.HoldTicks = 20
	}
	if c.DecayTicks <= 0 {
		c.DecayTicks = 30
	}
	if c.Speed <= 0 {
		diag := geo.Point{X: space.MinX, Y: space.MinY}.
			Dist(geo.Point{X: space.MaxX, Y: space.MaxY})
		c.Speed = diag / 100
	}
	if len(c.Envelope) == 0 {
		c.Envelope = RampHoldDecay(c.BaseRate, c.PeakRate,
			c.RampTicks, c.HoldTicks, c.DecayTicks)
	}
}

// FlashCrowd is a deterministic overload generator. Each call to Emit
// advances one tick: the envelope decides how many reports this tick
// carries, and each report comes from either a crowd node (position
// pulled toward the hotspot as the crowd phase progresses) or a roamer.
// All state is derived from the seed, so two generators with identical
// configs emit byte-identical update sequences — the reproducibility
// contract the admission chaos tests and BENCH_PR7 lean on.
type FlashCrowd struct {
	cfg     FlashCrowdConfig
	space   geo.Rect
	hotspot geo.Point
	r       *rng.Rand
	tick    int

	pos []geo.Point // current position per node
	vel []geo.Vector
}

// NewFlashCrowd builds a generator over space. It returns an error when
// the population is non-positive or an explicit envelope is malformed.
func NewFlashCrowd(space geo.Rect, cfg FlashCrowdConfig) (*FlashCrowd, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("workload: flash crowd needs a positive population, got %d", cfg.Nodes)
	}
	cfg.fillDefaults(space)
	if err := cfg.Envelope.Validate(); err != nil {
		return nil, err
	}
	f := &FlashCrowd{
		cfg:   cfg,
		space: space,
		r:     rng.New(cfg.Seed),
		pos:   make([]geo.Point, cfg.Nodes),
		vel:   make([]geo.Vector, cfg.Nodes),
	}
	// The hotspot sits somewhere in the central half of the space.
	f.hotspot = geo.Point{
		X: f.r.Range(space.MinX+space.Width()/4, space.MaxX-space.Width()/4),
		Y: f.r.Range(space.MinY+space.Height()/4, space.MaxY-space.Height()/4),
	}
	for i := range f.pos {
		f.pos[i] = geo.Point{
			X: f.r.Range(space.MinX, space.MaxX),
			Y: f.r.Range(space.MinY, space.MaxY),
		}
	}
	return f, nil
}

// Hotspot returns the crowd's convergence point.
func (f *FlashCrowd) Hotspot() geo.Point { return f.hotspot }

// Motions visits every node's current position and velocity. It reads
// the motion arrays without touching the generator's rng stream, so a
// dense read between Emit calls cannot perturb the emitted sequence —
// the property the scenario traffic adapters rely on.
func (f *FlashCrowd) Motions(visit func(node int, pos geo.Point, vel geo.Vector)) {
	for i := range f.pos {
		visit(i, f.pos[i], f.vel[i])
	}
}

// Ticks returns the total envelope length, plus one leading and one
// trailing baseline tick.
func (f *FlashCrowd) Ticks() int {
	return f.cfg.Envelope.Ticks() + 2
}

// Rate returns the envelope's aggregate report rate at tick t: the
// envelope's base before it starts, the piecewise-linear schedule inside
// it, and its final rate after.
func (f *FlashCrowd) Rate(t int) float64 {
	return f.cfg.Envelope.Rate(t)
}

// Emit advances one tick and calls emit once per report this tick
// carries: node id, clamped position, and velocity. now is the model
// time stamped on the reports (the caller owns the clock). Crowd members
// drift toward the hotspot while the envelope is above base rate;
// roamers random-walk. The emission count is round(Rate(tick)).
func (f *FlashCrowd) Emit(now float64, emit func(node int, pos geo.Point, vel geo.Vector)) {
	t := f.tick
	f.tick++
	rate := f.Rate(t)
	n := int(rate + 0.5)
	crowdN := int(float64(f.cfg.Nodes) * f.cfg.HotspotFrac)
	surge := rate > f.cfg.Envelope.Base()
	for i := 0; i < n; i++ {
		var node int
		if surge && crowdN > 0 && f.r.Bool(f.cfg.HotspotFrac) {
			node = f.r.Intn(crowdN) // crowd members report disproportionately
		} else {
			node = f.r.Intn(f.cfg.Nodes)
		}
		var v geo.Vector
		if surge && node < crowdN {
			// Head toward the hotspot at full speed, with a little jitter.
			v = f.hotspot.Sub(f.pos[node]).Unit().Scale(f.cfg.Speed)
			v.X += f.r.Range(-f.cfg.Speed/4, f.cfg.Speed/4)
			v.Y += f.r.Range(-f.cfg.Speed/4, f.cfg.Speed/4)
		} else {
			v = geo.Vector{
				X: f.r.Range(-f.cfg.Speed, f.cfg.Speed),
				Y: f.r.Range(-f.cfg.Speed, f.cfg.Speed),
			}
		}
		f.pos[node] = f.space.ClampPoint(f.pos[node].Add(v))
		f.vel[node] = v
		emit(node, f.pos[node], v)
	}
}

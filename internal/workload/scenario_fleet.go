package workload

import (
	"math"

	"lira/internal/geo"
	"lira/internal/rng"
	"lira/internal/roadnet"
	"lira/internal/trace"
)

func init() {
	RegisterScenario(ScenarioSpec{
		Name:  "mixed-fleet",
		About: "pedestrians, road-bound cars, and fast drones share one server; a drone-heavy surge skews load toward the fastest movers",
		Build: newMixedFleet,
	})
}

// Mixed-fleet population split and dynamics. Pedestrians random-walk
// slowly, cars follow the road network, drones fly straight lines and
// bounce off the space boundary at many times road speed. During the
// surge, report selection skews toward drones — fast movers defeat
// dead-reckoning suppression first, so they dominate real overloads.
const (
	fleetPedFrac   = 0.5
	fleetCarFrac   = 0.4
	fleetPedSpeed  = 1.4  // m/s, walking pace
	fleetDroneMin  = 15.0 // m/s
	fleetDroneMax  = 30.0
	fleetSurgeBias = 0.6 // fraction of surge reports drawn from drones
)

type mixedFleetScenario struct {
	space geo.Rect
	env   Envelope
	r     *rng.Rand
	tick  int

	peds   *walkers
	cars   *trace.Source
	pedN   int
	carN   int
	droneN int

	dronePos []geo.Point
	droneVel []geo.Vector

	queries []geo.Rect
}

func newMixedFleet(space geo.Rect, nodes int, rate float64, seed uint64) (Scenario, error) {
	pedN := int(float64(nodes) * fleetPedFrac)
	carN := int(float64(nodes) * fleetCarFrac)
	droneN := nodes - pedN - carN
	if pedN < 1 || carN < 1 || droneN < 1 {
		pedN, carN, droneN = 1, 1, nodes-2
		if droneN < 1 {
			droneN = 1
			pedN = nodes - 2*droneN
			if pedN < 1 {
				pedN, carN, droneN = nodes, 0, 0
			}
		}
	}
	root := rng.New(seed)
	side := space.Width()
	if space.Height() < side {
		side = space.Height()
	}
	var cars *trace.Source
	if carN > 0 {
		net := roadnet.Generate(roadnet.Config{
			Side:            side,
			GridStep:        side / 24,
			ArterialEvery:   4,
			ExpresswayEvery: 8,
			Centers:         2,
			CenterRadius:    side / 6,
			Seed:            seed + 0xf1ee,
		})
		cars = trace.NewSource(net, trace.Config{N: carN, Seed: seed + 0xca5})
	}
	droneR := root.Split(2)
	dronePos := make([]geo.Point, droneN)
	droneVel := make([]geo.Vector, droneN)
	for i := range dronePos {
		dronePos[i] = geo.Point{
			X: droneR.Range(space.MinX, space.MaxX),
			Y: droneR.Range(space.MinY, space.MaxY),
		}
		speed := droneR.Range(fleetDroneMin, fleetDroneMax)
		dir := droneR.Range(0, 2*math.Pi)
		droneVel[i] = geo.Vector{X: speed * math.Cos(dir), Y: speed * math.Sin(dir)}
	}
	env := Envelope{
		{From: rate, To: rate, Ticks: 15},
		{From: rate, To: 3 * rate, Ticks: 20},
		{From: 3 * rate, To: 3 * rate, Ticks: 15},
		{From: 3 * rate, To: rate, Ticks: 15},
	}
	s := &mixedFleetScenario{
		space:    space,
		env:      env,
		r:        root.Split(3),
		peds:     newWalkers(space, pedN, fleetPedSpeed, root),
		cars:     cars,
		pedN:     pedN,
		carN:     carN,
		droneN:   droneN,
		dronePos: dronePos,
		droneVel: droneVel,
	}
	var positions []geo.Point
	if cars != nil {
		positions = cars.Positions()
	}
	qs, err := GenerateQueries(space, positions, QueryConfig{
		Count:        scenarioQueryCount(nodes),
		SideLength:   side / 16,
		Distribution: Proportional,
		Seed:         seed + 0xd0e,
	})
	if err != nil {
		return nil, err
	}
	s.queries = qs
	return s, nil
}

func (s *mixedFleetScenario) Name() string { return "mixed-fleet" }
func (s *mixedFleetScenario) Nodes() int   { return s.pedN + s.carN + s.droneN }
func (s *mixedFleetScenario) Ticks() int   { return s.env.Ticks() + 2 }

func (s *mixedFleetScenario) Emit(now float64, emit func(int, geo.Point, geo.Vector)) {
	t := s.tick
	s.tick++
	if s.cars != nil {
		s.cars.Step(1)
	}
	for i := range s.dronePos {
		p := s.dronePos[i].Add(s.droneVel[i])
		// Reflect off the boundary so drones stay in the space.
		if p.X < s.space.MinX || p.X > s.space.MaxX {
			s.droneVel[i].X = -s.droneVel[i].X
		}
		if p.Y < s.space.MinY || p.Y > s.space.MaxY {
			s.droneVel[i].Y = -s.droneVel[i].Y
		}
		s.dronePos[i] = s.space.ClampPoint(s.dronePos[i].Add(s.droneVel[i]))
	}

	rate := s.env.Rate(t)
	n := int(rate + 0.5)
	surge := rate > s.env.Base()
	for k := 0; k < n; k++ {
		var node int
		switch {
		case surge && s.droneN > 0 && s.r.Bool(fleetSurgeBias):
			node = s.pedN + s.carN + s.r.Intn(s.droneN)
		default:
			node = s.r.Intn(s.Nodes())
		}
		switch {
		case node < s.pedN:
			pos, vel := s.peds.at(node, t)
			emit(node, pos, vel)
		case node < s.pedN+s.carN:
			i := node - s.pedN
			emit(node, s.cars.Positions()[i], s.cars.Velocities()[i])
		default:
			i := node - s.pedN - s.carN
			emit(node, s.dronePos[i], s.droneVel[i])
		}
	}
}

// Motions implements MotionSource: pedestrians advance through their
// private walker streams, while cars and drones are already dense — Emit
// steps them every tick regardless of who reports.
func (s *mixedFleetScenario) Motions(tick int, visit func(int, geo.Point, geo.Vector)) {
	for i := 0; i < s.pedN; i++ {
		pos, vel := s.peds.at(i, tick)
		visit(i, pos, vel)
	}
	if s.cars != nil {
		pos, vel := s.cars.Positions(), s.cars.Velocities()
		for i := 0; i < s.carN; i++ {
			visit(s.pedN+i, pos[i], vel[i])
		}
	}
	for i := 0; i < s.droneN; i++ {
		visit(s.pedN+s.carN+i, s.dronePos[i], s.droneVel[i])
	}
}

func (s *mixedFleetScenario) Queries(tick int) ([]geo.Rect, bool) {
	if tick == 0 {
		return s.queries, true
	}
	return nil, false
}

// Package workload generates the continuous-query workloads of §4.2:
// range CQs with side lengths drawn from [w/2, w] and centers placed by
// one of three distributions — Proportional (following the mobile-node
// distribution), Inverse (following its inverse), and Random (uniform).
package workload

import (
	"fmt"

	"lira/internal/geo"
	"lira/internal/rng"
)

// Distribution selects how query centers relate to the node distribution.
type Distribution int

const (
	// Proportional places queries where the nodes are.
	Proportional Distribution = iota
	// Inverse places queries where the nodes are not.
	Inverse
	// Random places queries uniformly over the space.
	Random
)

// String implements fmt.Stringer.
func (d Distribution) String() string {
	switch d {
	case Proportional:
		return "proportional"
	case Inverse:
		return "inverse"
	case Random:
		return "random"
	}
	return fmt.Sprintf("Distribution(%d)", int(d))
}

// QueryConfig parameterizes query generation.
type QueryConfig struct {
	// Count is the number of queries (the paper sets it via m/n).
	Count int
	// SideLength is the parameter w: sides are drawn from [w/2, w].
	SideLength float64
	// Distribution places the query centers.
	Distribution Distribution
	// Seed drives the generation.
	Seed uint64
}

// GenerateQueries builds range CQs over space. nodePositions provides the
// node distribution for the Proportional and Inverse placements (a warmed
// snapshot is fine); it may be empty, in which case those distributions
// degrade to Random.
func GenerateQueries(space geo.Rect, nodePositions []geo.Point, cfg QueryConfig) ([]geo.Rect, error) {
	if cfg.Count < 0 {
		return nil, fmt.Errorf("workload: negative query count %d", cfg.Count)
	}
	if cfg.SideLength <= 0 {
		return nil, fmt.Errorf("workload: non-positive side length %v", cfg.SideLength)
	}
	r := rng.New(cfg.Seed)
	queries := make([]geo.Rect, 0, cfg.Count)

	var density *densityGrid
	if cfg.Distribution == Inverse && len(nodePositions) > 0 {
		density = newDensityGrid(space, 16, nodePositions)
	}

	for len(queries) < cfg.Count {
		var c geo.Point
		switch {
		case cfg.Distribution == Proportional && len(nodePositions) > 0:
			c = nodePositions[r.Intn(len(nodePositions))]
			// Small jitter so co-located nodes do not produce identical
			// queries.
			c.X += r.Range(-cfg.SideLength/4, cfg.SideLength/4)
			c.Y += r.Range(-cfg.SideLength/4, cfg.SideLength/4)
		case cfg.Distribution == Inverse && density != nil:
			c = density.sampleInverse(r)
		default:
			c = geo.Point{X: r.Range(space.MinX, space.MaxX), Y: r.Range(space.MinY, space.MaxY)}
		}
		side := r.Range(cfg.SideLength/2, cfg.SideLength)
		q := geo.Square(space.ClampPoint(c), side)
		if q.Intersect(space).Empty() {
			continue
		}
		queries = append(queries, q)
	}
	return queries, nil
}

// densityGrid is a coarse histogram of node positions used for inverse
// sampling.
type densityGrid struct {
	space  geo.Rect
	side   int
	counts []float64
	max    float64
}

func newDensityGrid(space geo.Rect, side int, positions []geo.Point) *densityGrid {
	g := &densityGrid{space: space, side: side, counts: make([]float64, side*side)}
	for _, p := range positions {
		i := clampInt(int((p.X-space.MinX)/space.Width()*float64(side)), 0, side-1)
		j := clampInt(int((p.Y-space.MinY)/space.Height()*float64(side)), 0, side-1)
		g.counts[j*side+i]++
	}
	for _, c := range g.counts {
		if c > g.max {
			g.max = c
		}
	}
	return g
}

// sampleInverse draws a point with probability proportional to
// (max − density): rejection sampling over the grid.
func (g *densityGrid) sampleInverse(r *rng.Rand) geo.Point {
	for tries := 0; tries < 1000; tries++ {
		p := geo.Point{
			X: r.Range(g.space.MinX, g.space.MaxX),
			Y: r.Range(g.space.MinY, g.space.MaxY),
		}
		i := clampInt(int((p.X-g.space.MinX)/g.space.Width()*float64(g.side)), 0, g.side-1)
		j := clampInt(int((p.Y-g.space.MinY)/g.space.Height()*float64(g.side)), 0, g.side-1)
		weight := (g.max - g.counts[j*g.side+i]) / g.max
		if g.max == 0 || r.Bool(weight) {
			return p
		}
	}
	// Pathological density (every cell at max): fall back to uniform.
	return geo.Point{
		X: r.Range(g.space.MinX, g.space.MaxX),
		Y: r.Range(g.space.MinY, g.space.MaxY),
	}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

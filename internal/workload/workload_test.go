package workload

import (
	"testing"

	"lira/internal/geo"
	"lira/internal/rng"
)

func space() geo.Rect { return geo.Rect{MinX: 0, MinY: 0, MaxX: 10000, MaxY: 10000} }

// clusteredNodes puts 90% of nodes in the SW 2000×2000 corner.
func clusteredNodes(n int) []geo.Point {
	r := rng.New(13)
	pts := make([]geo.Point, n)
	for i := range pts {
		if i < n*9/10 {
			pts[i] = geo.Point{X: r.Range(0, 2000), Y: r.Range(0, 2000)}
		} else {
			pts[i] = geo.Point{X: r.Range(0, 10000), Y: r.Range(0, 10000)}
		}
	}
	return pts
}

func swShare(qs []geo.Rect) float64 {
	in := 0
	for _, q := range qs {
		c := q.Center()
		if c.X < 2500 && c.Y < 2500 {
			in++
		}
	}
	return float64(in) / float64(len(qs))
}

func TestValidation(t *testing.T) {
	if _, err := GenerateQueries(space(), nil, QueryConfig{Count: -1, SideLength: 100}); err == nil {
		t.Error("negative count should error")
	}
	if _, err := GenerateQueries(space(), nil, QueryConfig{Count: 5, SideLength: 0}); err == nil {
		t.Error("zero side should error")
	}
}

func TestCountAndSides(t *testing.T) {
	qs, err := GenerateQueries(space(), clusteredNodes(1000), QueryConfig{
		Count: 200, SideLength: 1000, Distribution: Proportional, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 200 {
		t.Fatalf("got %d queries", len(qs))
	}
	for _, q := range qs {
		if q.Width() < 500-1e-9 || q.Width() > 1000+1e-9 {
			t.Errorf("side %v outside [w/2, w]", q.Width())
		}
		if diff := q.Width() - q.Height(); diff > 1e-9 || diff < -1e-9 {
			t.Errorf("queries must be square: %v", q)
		}
		if q.Intersect(space()).Empty() {
			t.Errorf("query %v misses the space entirely", q)
		}
	}
}

func TestProportionalFollowsNodes(t *testing.T) {
	qs, err := GenerateQueries(space(), clusteredNodes(1000), QueryConfig{
		Count: 400, SideLength: 500, Distribution: Proportional, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if share := swShare(qs); share < 0.7 {
		t.Errorf("proportional SW share = %v, want ≳0.9", share)
	}
}

func TestInverseAvoidsNodes(t *testing.T) {
	qs, err := GenerateQueries(space(), clusteredNodes(1000), QueryConfig{
		Count: 400, SideLength: 500, Distribution: Inverse, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The SW corner is ~6% of the area; inverse placement should give it
	// no more than that.
	if share := swShare(qs); share > 0.1 {
		t.Errorf("inverse SW share = %v, want ≲0.06", share)
	}
}

func TestRandomIsUniform(t *testing.T) {
	qs, err := GenerateQueries(space(), clusteredNodes(1000), QueryConfig{
		Count: 1000, SideLength: 500, Distribution: Random, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// SW 2500×2500 corner is 6.25% of the area.
	if share := swShare(qs); share < 0.02 || share > 0.12 {
		t.Errorf("random SW share = %v, want ≈0.0625", share)
	}
}

func TestEmptyNodesFallsBackToRandom(t *testing.T) {
	for _, d := range []Distribution{Proportional, Inverse, Random} {
		qs, err := GenerateQueries(space(), nil, QueryConfig{
			Count: 50, SideLength: 500, Distribution: d, Seed: 5,
		})
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if len(qs) != 50 {
			t.Errorf("%v: got %d queries", d, len(qs))
		}
	}
}

func TestDeterministic(t *testing.T) {
	nodes := clusteredNodes(500)
	cfg := QueryConfig{Count: 100, SideLength: 800, Distribution: Proportional, Seed: 9}
	a, _ := GenerateQueries(space(), nodes, cfg)
	b, _ := GenerateQueries(space(), nodes, cfg)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("query %d differs between identical configs", i)
		}
	}
}

func TestDistributionString(t *testing.T) {
	if Proportional.String() != "proportional" || Inverse.String() != "inverse" || Random.String() != "random" {
		t.Error("Distribution.String broken")
	}
	if Distribution(99).String() == "" {
		t.Error("unknown distribution should still print")
	}
}

package workload

import (
	"testing"

	"lira/internal/geo"
	"lira/internal/rng"
)

func space() geo.Rect { return geo.Rect{MinX: 0, MinY: 0, MaxX: 10000, MaxY: 10000} }

// clusteredNodes puts 90% of nodes in the SW 2000×2000 corner.
func clusteredNodes(n int) []geo.Point {
	r := rng.New(13)
	pts := make([]geo.Point, n)
	for i := range pts {
		if i < n*9/10 {
			pts[i] = geo.Point{X: r.Range(0, 2000), Y: r.Range(0, 2000)}
		} else {
			pts[i] = geo.Point{X: r.Range(0, 10000), Y: r.Range(0, 10000)}
		}
	}
	return pts
}

func swShare(qs []geo.Rect) float64 {
	in := 0
	for _, q := range qs {
		c := q.Center()
		if c.X < 2500 && c.Y < 2500 {
			in++
		}
	}
	return float64(in) / float64(len(qs))
}

func TestValidation(t *testing.T) {
	if _, err := GenerateQueries(space(), nil, QueryConfig{Count: -1, SideLength: 100}); err == nil {
		t.Error("negative count should error")
	}
	if _, err := GenerateQueries(space(), nil, QueryConfig{Count: 5, SideLength: 0}); err == nil {
		t.Error("zero side should error")
	}
}

func TestCountAndSides(t *testing.T) {
	qs, err := GenerateQueries(space(), clusteredNodes(1000), QueryConfig{
		Count: 200, SideLength: 1000, Distribution: Proportional, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 200 {
		t.Fatalf("got %d queries", len(qs))
	}
	for _, q := range qs {
		if q.Width() < 500-1e-9 || q.Width() > 1000+1e-9 {
			t.Errorf("side %v outside [w/2, w]", q.Width())
		}
		if diff := q.Width() - q.Height(); diff > 1e-9 || diff < -1e-9 {
			t.Errorf("queries must be square: %v", q)
		}
		if q.Intersect(space()).Empty() {
			t.Errorf("query %v misses the space entirely", q)
		}
	}
}

func TestProportionalFollowsNodes(t *testing.T) {
	qs, err := GenerateQueries(space(), clusteredNodes(1000), QueryConfig{
		Count: 400, SideLength: 500, Distribution: Proportional, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if share := swShare(qs); share < 0.7 {
		t.Errorf("proportional SW share = %v, want ≳0.9", share)
	}
}

func TestInverseAvoidsNodes(t *testing.T) {
	qs, err := GenerateQueries(space(), clusteredNodes(1000), QueryConfig{
		Count: 400, SideLength: 500, Distribution: Inverse, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The SW corner is ~6% of the area; inverse placement should give it
	// no more than that.
	if share := swShare(qs); share > 0.1 {
		t.Errorf("inverse SW share = %v, want ≲0.06", share)
	}
}

func TestRandomIsUniform(t *testing.T) {
	qs, err := GenerateQueries(space(), clusteredNodes(1000), QueryConfig{
		Count: 1000, SideLength: 500, Distribution: Random, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// SW 2500×2500 corner is 6.25% of the area.
	if share := swShare(qs); share < 0.02 || share > 0.12 {
		t.Errorf("random SW share = %v, want ≈0.0625", share)
	}
}

func TestEmptyNodesFallsBackToRandom(t *testing.T) {
	for _, d := range []Distribution{Proportional, Inverse, Random} {
		qs, err := GenerateQueries(space(), nil, QueryConfig{
			Count: 50, SideLength: 500, Distribution: d, Seed: 5,
		})
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if len(qs) != 50 {
			t.Errorf("%v: got %d queries", d, len(qs))
		}
	}
}

func TestDeterministic(t *testing.T) {
	nodes := clusteredNodes(500)
	cfg := QueryConfig{Count: 100, SideLength: 800, Distribution: Proportional, Seed: 9}
	a, _ := GenerateQueries(space(), nodes, cfg)
	b, _ := GenerateQueries(space(), nodes, cfg)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("query %d differs between identical configs", i)
		}
	}
}

func TestDistributionString(t *testing.T) {
	if Proportional.String() != "proportional" || Inverse.String() != "inverse" || Random.String() != "random" {
		t.Error("Distribution.String broken")
	}
	if Distribution(99).String() == "" {
		t.Error("unknown distribution should still print")
	}
}

// TestFlashCrowdDeterministic: two generators with equal configs emit
// byte-identical report sequences — the reproducibility contract the
// admission chaos runs and BENCH_PR7 lean on.
func TestFlashCrowdDeterministic(t *testing.T) {
	space := geo.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	cfg := FlashCrowdConfig{Nodes: 50, Seed: 7}
	type report struct {
		node int
		pos  geo.Point
		vel  geo.Vector
	}
	run := func() []report {
		f, err := NewFlashCrowd(space, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var out []report
		for tick := 0; tick < f.Ticks(); tick++ {
			f.Emit(float64(tick), func(n int, p geo.Point, v geo.Vector) {
				out = append(out, report{n, p, v})
			})
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs emitted %d vs %d reports", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("report %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestFlashCrowdEnvelope: the rate profile is the documented piecewise
// shape — base, linear ramp, hold at peak, linear decay, base — and the
// emitted positions stay inside the space.
func TestFlashCrowdEnvelope(t *testing.T) {
	space := geo.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	f, err := NewFlashCrowd(space, FlashCrowdConfig{
		Nodes: 100, BaseRate: 10, PeakRate: 40,
		RampTicks: 10, HoldTicks: 5, DecayTicks: 20, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Rate(0); got != 10 {
		t.Errorf("Rate(0) = %v, want base 10", got)
	}
	if got := f.Rate(5); got != 25 {
		t.Errorf("Rate(5) = %v, want mid-ramp 25", got)
	}
	for _, tk := range []int{10, 12, 15} {
		if got := f.Rate(tk); got != 40 {
			t.Errorf("Rate(%d) = %v, want peak 40", tk, got)
		}
	}
	if got := f.Rate(25); got != 25 {
		t.Errorf("Rate(25) = %v, want mid-decay 25", got)
	}
	if got := f.Rate(100); got != 10 {
		t.Errorf("Rate(100) = %v, want base after decay", got)
	}
	// Monotone ramp, monotone decay.
	for tk := 1; tk <= 10; tk++ {
		if f.Rate(tk) < f.Rate(tk-1) {
			t.Errorf("ramp not monotone at tick %d", tk)
		}
	}
	for tk := 16; tk <= 35; tk++ {
		if f.Rate(tk) > f.Rate(tk-1) {
			t.Errorf("decay not monotone at tick %d", tk)
		}
	}
	if _, err := NewFlashCrowd(space, FlashCrowdConfig{}); err == nil {
		t.Error("NewFlashCrowd accepted a zero population")
	}
	for tick := 0; tick < f.Ticks(); tick++ {
		f.Emit(float64(tick), func(n int, p geo.Point, v geo.Vector) {
			if n < 0 || n >= 100 {
				t.Fatalf("tick %d: node %d out of range", tick, n)
			}
			if !space.ContainsClosed(p) {
				t.Fatalf("tick %d: position %v escapes the space", tick, p)
			}
		})
	}
}

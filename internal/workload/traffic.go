package workload

import (
	"fmt"

	"lira/internal/geo"
)

// MotionSource is the dense-motion facet a catalog scenario may expose:
// after a tick's Emit, Motions reports every node's position and
// velocity at that tick. Implementations must not consume any emission
// randomness — a dense read between Emit calls cannot perturb the
// emitted report sequence. All catalog scenarios implement it.
type MotionSource interface {
	Scenario
	// Motions visits every node's position and velocity at tick. The
	// call is idempotent and must be made with non-decreasing ticks.
	Motions(tick int, visit func(node int, pos geo.Point, vel geo.Vector))
}

// Traffic adapts a catalog scenario into the trace.Source-shaped motion
// interface the experiment harness consumes: Reset / Step / Positions /
// Velocities. Each Step runs one scenario tick's Emit (discarding the
// report stream — the harness's dead-reckoners decide reporting) and
// snapshots the dense motion state, so the nodes move exactly as they
// do under the scenario's own overload shape. Scenario ticks are one
// second; Step's dt is ignored, so drive it with Dt = 1. Stepping past
// the scenario's nominal Ticks() is allowed: generators keep their
// final-phase behavior, which lets a fixed-length measurement interval
// run over any catalog entry.
type Traffic struct {
	name  string
	space geo.Rect
	nodes int
	rate  float64
	seed  uint64

	src  MotionSource
	tick int
	pos  []geo.Point
	vel  []geo.Vector
}

// NewTraffic builds the named catalog scenario as a motion source.
// Rebuilding with equal arguments — or calling Reset — reproduces the
// identical trajectory, the same contract trace.Source honors.
func NewTraffic(name string, space geo.Rect, nodes int, rate float64, seed uint64) (*Traffic, error) {
	t := &Traffic{name: name, space: space, nodes: nodes, rate: rate, seed: seed}
	if err := t.rebuild(); err != nil {
		return nil, err
	}
	return t, nil
}

func (t *Traffic) rebuild() error {
	sc, err := BuildScenario(t.name, t.space, t.nodes, t.rate, t.seed)
	if err != nil {
		return err
	}
	ms, ok := sc.(MotionSource)
	if !ok {
		return fmt.Errorf("workload: scenario %q does not expose dense motion", t.name)
	}
	t.src = ms
	t.tick = 0
	t.pos = make([]geo.Point, sc.Nodes())
	t.vel = make([]geo.Vector, sc.Nodes())
	// Initial placement, before any Emit: tick 0 with no draws consumed.
	ms.Motions(0, t.record)
	return nil
}

func (t *Traffic) record(node int, pos geo.Point, vel geo.Vector) {
	t.pos[node] = pos
	t.vel[node] = vel
}

// Name returns the catalog name the traffic was built from.
func (t *Traffic) Name() string { return t.name }

// Scenario returns the underlying catalog scenario instance.
func (t *Traffic) Scenario() Scenario { return t.src }

// Reset rebuilds the scenario from its construction arguments; because
// scenarios are pure functions of (space, nodes, rate, seed), the replay
// is byte-identical.
func (t *Traffic) Reset() {
	if err := t.rebuild(); err != nil {
		// rebuild succeeded at construction with the same arguments, so
		// it cannot fail here.
		panic(fmt.Sprintf("workload: traffic reset: %v", err))
	}
}

// Step advances one scenario tick. dt is ignored (ticks are one second).
func (t *Traffic) Step(dt float64) {
	t.src.Emit(float64(t.tick), func(int, geo.Point, geo.Vector) {})
	t.src.Motions(t.tick, t.record)
	t.tick++
}

// Positions returns every node's current position. The slice is reused
// across Steps, matching trace.Source.
func (t *Traffic) Positions() []geo.Point { return t.pos }

// Velocities returns every node's current velocity, aliased like
// Positions.
func (t *Traffic) Velocities() []geo.Vector { return t.vel }

package workload

import (
	"lira/internal/geo"
	"lira/internal/rng"
)

func init() {
	RegisterScenario(ScenarioSpec{
		Name:  "blackout",
		About: "citywide outage silences most of the fleet, then a reconnect herd floods the server",
		Build: newBlackout,
	})
}

// Blackout timeline: steady heartbeats, then an outage window during which
// the affected fraction goes dark (they keep moving — the server just
// stops hearing from them), then a reconnect flush where every affected
// node transmits its buffered state within a few ticks. The flush is the
// overload: affectedFrac·nodes/flushTicks reports per tick on top of the
// recovered baseline — the thundering-herd shape a faultnet-style
// transport partition produces when connectivity returns.
const (
	blackoutTicks        = 80
	blackoutStart        = 25
	blackoutEnd          = 45
	blackoutFlushTicks   = 2
	blackoutAffectedFrac = 0.6
)

type blackoutScenario struct {
	walk      *walkers
	beat      int
	affectedN int
	queries   []geo.Rect
}

func newBlackout(space geo.Rect, nodes int, rate float64, seed uint64) (Scenario, error) {
	root := rng.New(seed)
	speed := space.Width() / 100
	qs, err := GenerateQueries(space, nil, QueryConfig{
		Count:      scenarioQueryCount(nodes),
		SideLength: space.Width() / 16,
		Seed:       seed + 0xb1ac,
	})
	if err != nil {
		return nil, err
	}
	return &blackoutScenario{
		walk:      newWalkers(space, nodes, speed, root),
		beat:      heartbeatEvery(nodes, rate),
		affectedN: int(float64(nodes) * blackoutAffectedFrac),
		queries:   qs,
	}, nil
}

func (s *blackoutScenario) Name() string { return "blackout" }
func (s *blackoutScenario) Nodes() int   { return len(s.walk.pos) }
func (s *blackoutScenario) Ticks() int   { return blackoutTicks }

// OutageWindow reports the ticks during which affected nodes are dark —
// exported for tests and docs so the timeline is not a magic number.
func (s *blackoutScenario) OutageWindow() (start, end int) {
	return blackoutStart, blackoutEnd
}

func (s *blackoutScenario) Emit(now float64, emit func(int, geo.Point, geo.Vector)) {
	tick := int(now)
	dark := tick >= blackoutStart && tick < blackoutEnd
	flushing := tick >= blackoutEnd && tick < blackoutEnd+blackoutFlushTicks
	for i := 0; i < len(s.walk.pos); i++ {
		affected := i < s.affectedN
		switch {
		case affected && dark:
			continue // node keeps moving; walkers advance it lazily on reconnect
		case affected && flushing:
			// Reconnect herd: node i flushes in slot i mod flushTicks.
			if i%blackoutFlushTicks == tick-blackoutEnd {
				pos, vel := s.walk.at(i, tick)
				emit(i, pos, vel)
			}
		default:
			if (tick+i)%s.beat == 0 {
				pos, vel := s.walk.at(i, tick)
				emit(i, pos, vel)
			}
		}
	}
}

// Motions implements MotionSource. Eagerly advancing a walker is safe:
// each node draws from its private rng stream, so the catch-up consumes
// exactly the draws a lazy reconnect would have — dark nodes keep moving
// identically whether or not anyone watches them.
func (s *blackoutScenario) Motions(tick int, visit func(int, geo.Point, geo.Vector)) {
	for i := 0; i < len(s.walk.pos); i++ {
		pos, vel := s.walk.at(i, tick)
		visit(i, pos, vel)
	}
}

func (s *blackoutScenario) Queries(tick int) ([]geo.Rect, bool) {
	if tick == 0 {
		return s.queries, true
	}
	return nil, false
}

package workload

import (
	"fmt"
	"sort"

	"lira/internal/geo"
	"lira/internal/rng"
)

// Scenario is one named, seeded overload shape from the catalog: a closed
// generator of position reports plus the continuous-query set they are
// evaluated against. Every scenario is a pure function of
// (space, nodes, rate, seed) — two instances built with equal arguments
// emit byte-identical report and query sequences, the same reproducibility
// contract every other subsystem honors. The driving contract: call Emit
// exactly Ticks() times with now = float64(tick), tick = 0,1,2,…; one tick
// models one second. Call Queries(tick) once per tick before Emit; it
// returns (set, true) on ticks where the registered query set changes
// (always at tick 0) and (nil, false) otherwise.
type Scenario interface {
	// Name returns the catalog name the scenario was built under.
	Name() string
	// Nodes returns the population size (node ids are 0..Nodes()-1).
	Nodes() int
	// Ticks returns the scenario length in ticks.
	Ticks() int
	// Emit produces this tick's position reports.
	Emit(now float64, emit func(node int, pos geo.Point, vel geo.Vector))
	// Queries returns the query set taking effect at tick, or ok=false
	// when the set is unchanged from the previous tick.
	Queries(tick int) (qs []geo.Rect, ok bool)
}

// BuildFunc constructs a scenario instance over an origin-anchored square
// space. rate is the target baseline aggregate report rate in updates per
// tick; each scenario shapes its overload relative to it. seed drives all
// randomness.
type BuildFunc func(space geo.Rect, nodes int, rate float64, seed uint64) (Scenario, error)

// ScenarioSpec is one catalog entry.
type ScenarioSpec struct {
	// Name is the stable catalog key (used by liraplan flags and docs).
	Name string
	// About is a one-line description of the overload shape.
	About string
	// Build constructs an instance.
	Build BuildFunc
}

var catalog = map[string]ScenarioSpec{}

// RegisterScenario adds a scenario to the catalog. It panics on duplicate
// or empty names — registration happens in init, so a collision is a
// programming error, not a runtime condition.
func RegisterScenario(spec ScenarioSpec) {
	if spec.Name == "" || spec.Build == nil {
		panic("workload: scenario registration needs a name and a builder")
	}
	if _, dup := catalog[spec.Name]; dup {
		panic("workload: duplicate scenario " + spec.Name)
	}
	catalog[spec.Name] = spec
}

// Catalog returns every registered scenario, sorted by name so iteration
// order is deterministic.
func Catalog() []ScenarioSpec {
	specs := make([]ScenarioSpec, 0, len(catalog))
	for _, s := range catalog {
		specs = append(specs, s)
	}
	sort.Slice(specs, func(a, b int) bool { return specs[a].Name < specs[b].Name })
	return specs
}

// BuildScenario instantiates the named catalog scenario.
func BuildScenario(name string, space geo.Rect, nodes int, rate float64, seed uint64) (Scenario, error) {
	spec, ok := catalog[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown scenario %q (catalog: %v)", name, CatalogNames())
	}
	if nodes <= 0 {
		return nil, fmt.Errorf("workload: scenario %q needs a positive population, got %d", name, nodes)
	}
	if rate <= 0 {
		return nil, fmt.Errorf("workload: scenario %q needs a positive rate, got %v", name, rate)
	}
	return spec.Build(space, nodes, rate, seed)
}

// CatalogNames returns the sorted catalog names.
func CatalogNames() []string {
	names := make([]string, 0, len(catalog))
	for name := range catalog {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// heartbeatEvery converts a target aggregate rate into a per-node
// heartbeat interval: with nodes reporting every h ticks (staggered by
// node id), the aggregate is nodes/h ≈ rate.
func heartbeatEvery(nodes int, rate float64) int {
	h := int(float64(nodes)/rate + 0.5)
	if h < 1 {
		h = 1
	}
	return h
}

// walkers is a population of random-walking nodes with lazy position
// advance: a node's position is only rolled forward when it is observed,
// consuming exactly (tick − lastObserved) draws from that node's private
// rng stream. Observation order therefore cannot perturb trajectories —
// the trick that keeps blackout reconnect herds byte-reproducible no
// matter which nodes stayed silent.
type walkers struct {
	space geo.Rect
	speed float64
	pos   []geo.Point
	vel   []geo.Vector
	last  []int
	rs    []*rng.Rand
}

func newWalkers(space geo.Rect, n int, speed float64, root *rng.Rand) *walkers {
	w := &walkers{
		space: space,
		speed: speed,
		pos:   make([]geo.Point, n),
		vel:   make([]geo.Vector, n),
		last:  make([]int, n),
		rs:    make([]*rng.Rand, n),
	}
	place := root.Split(1)
	for i := range w.pos {
		w.pos[i] = geo.Point{
			X: place.Range(space.MinX, space.MaxX),
			Y: place.Range(space.MinY, space.MaxY),
		}
		w.rs[i] = root.Split(uint64(1000 + i))
	}
	return w
}

// at advances node i to tick and returns its position and velocity there.
func (w *walkers) at(i, tick int) (geo.Point, geo.Vector) {
	for w.last[i] < tick {
		w.last[i]++
		v := geo.Vector{
			X: w.rs[i].Range(-w.speed, w.speed),
			Y: w.rs[i].Range(-w.speed, w.speed),
		}
		w.pos[i] = w.space.ClampPoint(w.pos[i].Add(v))
		w.vel[i] = v
	}
	return w.pos[i], w.vel[i]
}

// scenarioQueryCount sizes the registered query set relative to the
// population, floored so tiny smoke-test populations still exercise
// evaluation.
func scenarioQueryCount(nodes int) int {
	m := nodes / 25
	if m < 8 {
		m = 8
	}
	return m
}

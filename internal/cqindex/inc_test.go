package cqindex

import (
	"sort"
	"testing"

	"lira/internal/geo"
	"lira/internal/rng"
)

// collect returns the sorted id set an index reports for r.
func collectIDs(idx interface {
	Query(geo.Rect, func(int))
}, r geo.Rect) []int {
	var ids []int
	idx.Query(r, func(id int) { ids = append(ids, id) })
	sort.Ints(ids)
	return ids
}

func equalIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestIncMatchesRebuild is the incremental-vs-full-rebuild equivalence
// property test: after any sequence of Put/Delete/Compact deltas, Inc
// must report exactly the id set a freshly rebuilt Grid (and the Linear
// reference) reports over the same surviving points.
func TestIncMatchesRebuild(t *testing.T) {
	space := geo.NewRect(0, 0, 1000, 800)
	for _, seed := range []uint64{1, 7, 42} {
		r := rng.New(seed)
		const n = 400
		inc := NewInc(space, 16, n)
		points := make([]geo.Point, n)
		alive := make([]bool, n)

		randPoint := func() geo.Point {
			return geo.Point{X: r.Range(0, 1000), Y: r.Range(0, 800)}
		}
		check := func(step int) {
			grid := NewGrid(space, 16)
			grid.Rebuild(points, alive)
			lin := NewLinear()
			lin.Rebuild(points, alive)
			for q := 0; q < 8; q++ {
				rect := geo.NewRect(r.Range(-50, 900), r.Range(-50, 700),
					r.Range(0, 1100), r.Range(0, 900))
				if rect.Empty() {
					continue
				}
				want := collectIDs(grid, rect)
				got := collectIDs(inc, rect)
				if !equalIDs(got, want) {
					t.Fatalf("seed %d step %d: inc %v != rebuild %v for %v",
						seed, step, got, want, rect)
				}
				if ref := collectIDs(lin, rect); !equalIDs(want, ref) {
					t.Fatalf("seed %d step %d: grid %v != linear %v", seed, step, want, ref)
				}
			}
		}

		for step := 0; step < 30; step++ {
			// A burst of random deltas: inserts, small drifts (mostly
			// same-bucket), long jumps (cross-bucket moves), deletes.
			for op := 0; op < 120; op++ {
				id := int(r.Intn(n))
				switch {
				case !alive[id] || r.Bool(0.15):
					points[id] = randPoint()
					alive[id] = true
					inc.Put(id, points[id])
				case r.Bool(0.1):
					alive[id] = false
					inc.Delete(id)
				case r.Bool(0.5):
					p := points[id]
					points[id] = space.ClampPoint(geo.Point{X: p.X + r.Range(-3, 3), Y: p.Y + r.Range(-3, 3)})
					inc.Put(id, points[id])
				default:
					points[id] = randPoint()
					inc.Put(id, points[id])
				}
			}
			if step%7 == 3 {
				inc.Compact()
				if inc.Debt() != 0 {
					t.Fatalf("Compact left debt %d", inc.Debt())
				}
			}
			check(step)
		}
	}
}

func TestIncDebtAccounting(t *testing.T) {
	space := geo.NewRect(0, 0, 100, 100)
	inc := NewInc(space, 10, 4)
	if inc.Len() != 0 || inc.Debt() != 0 {
		t.Fatal("fresh index should be empty and debt-free")
	}
	inc.Put(0, geo.Point{X: 5, Y: 5}) // insert
	if inc.Len() != 1 || inc.Debt() != 1 {
		t.Fatalf("after insert: len %d debt %d", inc.Len(), inc.Debt())
	}
	inc.Put(0, geo.Point{X: 6, Y: 6}) // same bucket: free refresh
	if inc.Debt() != 1 {
		t.Fatalf("same-bucket refresh should not add debt, got %d", inc.Debt())
	}
	inc.Put(0, geo.Point{X: 95, Y: 95}) // cross-bucket move
	if inc.Debt() != 2 {
		t.Fatalf("cross-bucket move debt = %d, want 2", inc.Debt())
	}
	inc.Delete(0)
	if inc.Len() != 0 || inc.Debt() != 3 {
		t.Fatalf("after delete: len %d debt %d", inc.Len(), inc.Debt())
	}
	inc.Delete(0) // absent: no-op
	if inc.Debt() != 3 {
		t.Fatalf("deleting an absent id changed debt: %d", inc.Debt())
	}
	inc.Compact()
	if inc.Debt() != 0 {
		t.Fatalf("debt after Compact = %d", inc.Debt())
	}
}

// TestIncBoundaryQuery mirrors Grid.Query's convention for queries that
// only touch the space boundary: a node clamped onto the space edge must
// be found by a degenerate rect sitting exactly on that edge.
func TestIncBoundaryQuery(t *testing.T) {
	space := geo.NewRect(0, 0, 100, 100)
	inc := NewInc(space, 8, 2)
	inc.Put(0, geo.Point{X: 100, Y: 50}) // on the closed max edge
	inc.Put(1, geo.Point{X: 10, Y: 10})
	got := collectIDs(inc, geo.NewRect(100, 0, 100, 100))
	if !equalIDs(got, []int{0}) {
		t.Fatalf("degenerate edge query = %v, want [0]", got)
	}
}

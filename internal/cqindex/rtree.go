package cqindex

import (
	"math"
	"sort"

	"lira/internal/geo"
)

// RTree is a Sort-Tile-Recursive (STR) bulk-loaded R-tree over a point
// set — the index family (R-tree / TPR-tree) the paper positions LIRA
// alongside (§1, §5). Unlike the uniform Grid it adapts its structure to
// skewed node distributions: leaf pages tile the *data*, not the space,
// so a downtown with thousands of nodes gets many small pages while empty
// country costs nothing.
//
// The tree is rebuilt wholesale per evaluation round (bulk loading is
// O(n log n) and cache-friendly), matching how the CQ server uses its
// indexes. The zero value is unusable; construct with NewRTree.
type RTree struct {
	fanout int

	points []geo.Point
	// Nodes are stored in a flat array, children referenced by index
	// range; leaves hold point ids.
	nodes []rnode
	root  int
}

type rnode struct {
	bounds geo.Rect
	// For internal nodes: children [childStart, childEnd) in nodes.
	// For leaves: ids of the indexed points.
	childStart, childEnd int
	ids                  []int32
}

// NewRTree returns an empty R-tree with the given fanout (entries per
// node). Fanouts below 2 are raised to the customary 16.
func NewRTree(fanout int) *RTree {
	if fanout < 2 {
		fanout = 16
	}
	return &RTree{fanout: fanout, root: -1}
}

// Rebuild bulk-loads the tree from points using the STR packing: sort by
// x, slice into vertical strips, sort each strip by y, and cut leaves;
// repeat upward until one node remains. active may be nil.
func (t *RTree) Rebuild(points []geo.Point, active []bool) {
	if active != nil && len(active) != len(points) {
		panic("cqindex: active mask length mismatch")
	}
	t.points = points
	t.nodes = t.nodes[:0]
	t.root = -1

	ids := make([]int32, 0, len(points))
	for i := range points {
		if active != nil && !active[i] {
			continue
		}
		ids = append(ids, int32(i))
	}
	if len(ids) == 0 {
		return
	}

	// Leaf level: STR tiling of the point ids.
	sort.Slice(ids, func(a, b int) bool { return points[ids[a]].X < points[ids[b]].X })
	leafCount := (len(ids) + t.fanout - 1) / t.fanout
	stripCount := int(math.Ceil(math.Sqrt(float64(leafCount))))
	perStrip := stripCount * t.fanout

	level := make([]int, 0, leafCount)
	for s := 0; s < len(ids); s += perStrip {
		e := s + perStrip
		if e > len(ids) {
			e = len(ids)
		}
		strip := ids[s:e]
		sort.Slice(strip, func(a, b int) bool { return points[strip[a]].Y < points[strip[b]].Y })
		for ls := 0; ls < len(strip); ls += t.fanout {
			le := ls + t.fanout
			if le > len(strip) {
				le = len(strip)
			}
			leafIDs := append([]int32(nil), strip[ls:le]...)
			t.nodes = append(t.nodes, rnode{bounds: pointBounds(points, leafIDs), ids: leafIDs})
			level = append(level, len(t.nodes)-1)
		}
	}

	// Pack upward until a single root remains.
	for len(level) > 1 {
		next := make([]int, 0, (len(level)+t.fanout-1)/t.fanout)
		for s := 0; s < len(level); s += t.fanout {
			e := s + t.fanout
			if e > len(level) {
				e = len(level)
			}
			// Children of one internal node must be contiguous in the
			// node array; the packing above emits them in order.
			start, end := level[s], level[e-1]+1
			b := t.nodes[start].bounds
			for _, ci := range level[s+1 : e] {
				b = union(b, t.nodes[ci].bounds)
			}
			t.nodes = append(t.nodes, rnode{bounds: b, childStart: start, childEnd: end})
			next = append(next, len(t.nodes)-1)
		}
		level = next
	}
	t.root = level[0]
}

func pointBounds(points []geo.Point, ids []int32) geo.Rect {
	b := geo.Rect{
		MinX: math.Inf(1), MinY: math.Inf(1),
		MaxX: math.Inf(-1), MaxY: math.Inf(-1),
	}
	for _, id := range ids {
		p := points[id]
		if p.X < b.MinX {
			b.MinX = p.X
		}
		if p.Y < b.MinY {
			b.MinY = p.Y
		}
		if p.X > b.MaxX {
			b.MaxX = p.X
		}
		if p.Y > b.MaxY {
			b.MaxY = p.Y
		}
	}
	return b
}

func union(a, b geo.Rect) geo.Rect {
	return geo.Rect{
		MinX: math.Min(a.MinX, b.MinX),
		MinY: math.Min(a.MinY, b.MinY),
		MaxX: math.Max(a.MaxX, b.MaxX),
		MaxY: math.Max(a.MaxY, b.MaxY),
	}
}

// intersectsClosed reports whether rectangles a and b share any point,
// treating both as closed (bounding boxes of points are degenerate-safe).
func intersectsClosed(a, b geo.Rect) bool {
	return a.MinX <= b.MaxX && b.MinX <= a.MaxX && a.MinY <= b.MaxY && b.MinY <= a.MaxY
}

// Query implements Index: it calls fn for every indexed id whose point
// lies inside r (closed containment).
func (t *RTree) Query(r geo.Rect, fn func(id int)) {
	if t.root < 0 {
		return
	}
	t.query(t.root, r, fn)
}

func (t *RTree) query(ni int, r geo.Rect, fn func(id int)) {
	n := &t.nodes[ni]
	if !intersectsClosed(n.bounds, r) {
		return
	}
	if n.ids != nil {
		for _, id := range n.ids {
			if r.ContainsClosed(t.points[id]) {
				fn(int(id))
			}
		}
		return
	}
	for ci := n.childStart; ci < n.childEnd; ci++ {
		t.query(ci, r, fn)
	}
}

// Depth returns the height of the tree (0 when empty, 1 for a single
// leaf), for tests and diagnostics.
func (t *RTree) Depth() int {
	if t.root < 0 {
		return 0
	}
	d := 1
	ni := t.root
	for t.nodes[ni].ids == nil {
		ni = t.nodes[ni].childStart
		d++
	}
	return d
}

package cqindex

import (
	"runtime"
	"testing"

	"lira/internal/geo"
	"lira/internal/rng"
)

func randomPoints(n int) []geo.Point {
	r := rng.New(5)
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{X: r.Range(0, 1000), Y: r.Range(0, 1000)}
	}
	return pts
}

// scanAll drains the whole index through Query over the full space; the
// visit sequence exposes the CSR layout (buckets in order, ids in bucket
// order).
func scanAll(g *Grid, space geo.Rect) []int {
	var out []int
	g.Query(space, func(id int) { out = append(out, id) })
	return out
}

// TestRebuildShardedMatchesSerialLayout verifies the parallel counting
// sort reproduces the serial CSR layout exactly: a large rebuild (sharded)
// must visit ids in the same sequence as a test-side serial bucket sort.
func TestRebuildShardedMatchesSerialLayout(t *testing.T) {
	const n = 3*rebuildChunk + 77
	space := geo.Rect{MaxX: 1000, MaxY: 1000}
	pts := randomPoints(n)
	active := make([]bool, n)
	for i := range active {
		active[i] = i%7 != 0
	}
	const cells = 16
	g := NewGrid(space, cells)
	g.Rebuild(pts, active)

	// Serial reference layout: ids per bucket in increasing index order.
	buckets := make([][]int, cells*cells)
	for i, p := range pts {
		if !active[i] {
			continue
		}
		ci, cj := g.cellOf(p)
		b := cj*cells + ci
		buckets[b] = append(buckets[b], i)
	}
	var want []int
	for _, b := range buckets {
		want = append(want, b...)
	}
	got := scanAll(g, space)
	if len(got) != len(want) {
		t.Fatalf("scan length %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("id sequence diverges at %d: got %d, want %d", i, got[i], want[i])
		}
	}
}

// TestRebuildShardedDeterministicAcrossWorkers rebuilds the same point set
// at GOMAXPROCS 1 and 8 and requires identical scan sequences.
func TestRebuildShardedDeterministicAcrossWorkers(t *testing.T) {
	const n = 2*rebuildChunk + 311
	space := geo.Rect{MaxX: 1000, MaxY: 1000}
	pts := randomPoints(n)
	run := func(workers int) []int {
		prev := runtime.GOMAXPROCS(workers)
		defer runtime.GOMAXPROCS(prev)
		g := NewGrid(space, 32)
		g.Rebuild(pts, nil)
		g.Rebuild(pts, nil) // second round reuses shard scratch
		return scanAll(g, space)
	}
	a, b := run(1), run(8)
	if len(a) != len(b) {
		t.Fatalf("scan lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("layouts diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

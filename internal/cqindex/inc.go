package cqindex

import (
	"fmt"
	"slices"

	"lira/internal/geo"
)

// Inc is an incrementally maintained bucketed grid index. Where Grid is
// rebuilt wholesale each evaluation round, Inc is kept current by
// insert/delete/move deltas: a point that stays inside its bucket between
// rounds costs one comparison, a point that crosses a bucket boundary
// costs one O(1) swap-delete plus one append, and untouched points cost
// nothing at all. That is the index-maintenance profile the sharded CQ
// server wants — between consecutive evaluations most dead-reckoned
// positions drift within one bucket, so the per-round work is
// proportional to the number of bucket crossings, not to the population.
//
// Incremental maintenance trades layout quality for speed: swap-deletes
// scramble the in-bucket id order and appends can leave buckets with
// slack capacity. Inc therefore tracks a delta debt — the number of
// structural mutations (cross-bucket moves, inserts, deletes) since the
// last compaction — and callers fall back to Compact, the full-rebuild
// equivalent, once the debt exceeds their threshold (the shard server
// uses debt > factor·size). Query results are independent of layout:
// Inc reports the same id set as a fresh Grid over the same points, in
// unspecified order, and the CQ servers canonicalize result order
// downstream.
//
// Inc is not safe for concurrent mutation; the sharded server gives each
// shard its own Inc and mutates it only from that shard's evaluation
// slot. Query is safe concurrently with other Queries.
type Inc struct {
	space geo.Rect
	cells int

	buckets [][]int32

	// Per-id bookkeeping, indexed by dense node id: the bucket holding the
	// id (-1 when absent), the id's slot within that bucket, and the
	// indexed point.
	bucketOf []int32
	slotOf   []int32
	points   []geo.Point

	size int
	debt int
}

// NewInc returns an empty incremental index over space with cells buckets
// per side, sized for ids in [0, maxID).
func NewInc(space geo.Rect, cells, maxID int) *Inc {
	if cells <= 0 {
		panic(fmt.Sprintf("cqindex: non-positive cell count %d", cells))
	}
	if space.Empty() {
		panic("cqindex: empty space")
	}
	if maxID < 0 {
		panic("cqindex: negative id capacity")
	}
	x := &Inc{
		space:    space,
		cells:    cells,
		buckets:  make([][]int32, cells*cells),
		bucketOf: make([]int32, maxID),
		slotOf:   make([]int32, maxID),
		points:   make([]geo.Point, maxID),
	}
	for i := range x.bucketOf {
		x.bucketOf[i] = -1
	}
	return x
}

// Len returns the number of indexed points.
func (x *Inc) Len() int { return x.size }

// Debt returns the number of structural mutations (inserts, deletes,
// cross-bucket moves) accumulated since the last Compact. Same-bucket
// position refreshes are free: they never degrade the layout.
func (x *Inc) Debt() int { return x.debt }

func (x *Inc) bucketIndex(p geo.Point) int32 {
	i := int((p.X - x.space.MinX) / x.space.Width() * float64(x.cells))
	j := int((p.Y - x.space.MinY) / x.space.Height() * float64(x.cells))
	return int32(clampInt(j, 0, x.cells-1)*x.cells + clampInt(i, 0, x.cells-1))
}

// Put installs or refreshes id at point p: an insert when id is absent, a
// move when its bucket changes, and a point refresh otherwise.
func (x *Inc) Put(id int, p geo.Point) {
	b := x.bucketIndex(p)
	cur := x.bucketOf[id]
	if cur == b {
		x.points[id] = p
		return
	}
	if cur >= 0 {
		x.removeFromBucket(id, cur)
	} else {
		x.size++
	}
	x.slotOf[id] = int32(len(x.buckets[b]))
	x.buckets[b] = append(x.buckets[b], int32(id))
	x.bucketOf[id] = b
	x.points[id] = p
	x.debt++
}

// Delete removes id from the index; absent ids are a no-op.
func (x *Inc) Delete(id int) {
	b := x.bucketOf[id]
	if b < 0 {
		return
	}
	x.removeFromBucket(id, b)
	x.bucketOf[id] = -1
	x.size--
	x.debt++
}

// removeFromBucket swap-deletes id out of bucket b in O(1), fixing the
// displaced id's slot.
func (x *Inc) removeFromBucket(id int, b int32) {
	bucket := x.buckets[b]
	slot := x.slotOf[id]
	last := int32(len(bucket) - 1)
	moved := bucket[last]
	bucket[slot] = moved
	x.slotOf[moved] = slot
	x.buckets[b] = bucket[:last]
}

// Compact is the full-rebuild fallback: it restores the canonical layout
// an offline rebuild would produce — ids ascending within each bucket,
// bucket capacity trimmed to at most twice its population — and clears
// the delta debt. O(n log n) worst case; call it when Debt crosses the
// caller's threshold.
func (x *Inc) Compact() {
	for b, bucket := range x.buckets {
		if len(bucket) == 0 {
			if cap(bucket) > 0 {
				x.buckets[b] = nil
			}
			continue
		}
		if cap(bucket) > 2*len(bucket) {
			trimmed := make([]int32, len(bucket))
			copy(trimmed, bucket)
			bucket = trimmed
			x.buckets[b] = bucket
		}
		slices.Sort(bucket) // zero-alloc, unlike a sort.Slice closure per bucket
		for slot, id := range bucket {
			x.slotOf[id] = int32(slot)
		}
	}
	x.debt = 0
}

// Query calls fn for every indexed id whose point lies inside r (closed
// containment, matching Grid.Query). Degenerate rects — zero width or
// height, as produced by closed-intersecting a query with a shard-cell
// boundary — still match points exactly on them. Order is unspecified.
func (x *Inc) Query(r geo.Rect, fn func(id int)) {
	x.QueryIn(r, r, fn)
}

// QueryIn is Query with a narrowed bucket scan: only buckets touching
// bounds (inflated by one bucket on each side to absorb boundary
// rounding) are visited, while containment is still tested against r.
// The sharded CQ server passes the query's shard-cell fragment as bounds
// and the original query as r, so a cross-shard query scans each shard's
// slice of the bucket grid yet keeps the exact closed-containment
// semantics of the unsharded evaluator.
func (x *Inc) QueryIn(bounds, r geo.Rect, fn func(id int)) {
	clip := bounds.Intersect(x.space)
	if clip.Empty() {
		// Same boundary convention as Grid.Query: a rect that only touches
		// the space (or is degenerate) clips empty under the half-open
		// convention; fall back to the raw corners for cell selection.
		clip = bounds
	}
	b0 := x.bucketIndex(geo.Point{X: clip.MinX, Y: clip.MinY})
	b1 := x.bucketIndex(geo.Point{X: clip.MaxX, Y: clip.MaxY})
	i0, j0 := int(b0)%x.cells, int(b0)/x.cells
	i1, j1 := int(b1)%x.cells, int(b1)/x.cells
	i0, j0 = clampInt(i0-1, 0, x.cells-1), clampInt(j0-1, 0, x.cells-1)
	i1, j1 = clampInt(i1+1, 0, x.cells-1), clampInt(j1+1, 0, x.cells-1)
	for cj := j0; cj <= j1; cj++ {
		for ci := i0; ci <= i1; ci++ {
			for _, id := range x.buckets[cj*x.cells+ci] {
				if r.ContainsClosed(x.points[id]) {
					fn(int(id))
				}
			}
		}
	}
}

// QueryInAppend is QueryIn with the matches appended to a caller-owned
// buffer instead of delivered through a callback, for the
// zero-allocation evaluate path. Visit order matches QueryIn's.
func (x *Inc) QueryInAppend(bounds, r geo.Rect, dst []int) []int {
	clip := bounds.Intersect(x.space)
	if clip.Empty() {
		clip = bounds
	}
	b0 := x.bucketIndex(geo.Point{X: clip.MinX, Y: clip.MinY})
	b1 := x.bucketIndex(geo.Point{X: clip.MaxX, Y: clip.MaxY})
	i0, j0 := int(b0)%x.cells, int(b0)/x.cells
	i1, j1 := int(b1)%x.cells, int(b1)/x.cells
	i0, j0 = clampInt(i0-1, 0, x.cells-1), clampInt(j0-1, 0, x.cells-1)
	i1, j1 = clampInt(i1+1, 0, x.cells-1), clampInt(j1+1, 0, x.cells-1)
	for cj := j0; cj <= j1; cj++ {
		for ci := i0; ci <= i1; ci++ {
			for _, id := range x.buckets[cj*x.cells+ci] {
				if r.ContainsClosed(x.points[id]) {
					dst = append(dst, int(id))
				}
			}
		}
	}
	return dst
}

package cqindex

import (
	"sort"
	"testing"
	"testing/quick"

	"lira/internal/geo"
	"lira/internal/motion"
	"lira/internal/rng"
)

func randomReports(r *rng.Rand, n int) []motion.Report {
	reports := make([]motion.Report, n)
	for i := range reports {
		reports[i] = motion.Report{
			Pos:  geo.Point{X: r.Range(50, 950), Y: r.Range(50, 950)},
			Vel:  geo.Vector{X: r.Range(-20, 20), Y: r.Range(-20, 20)},
			Time: 0,
		}
	}
	return reports
}

// bruteQuery is the reference: predict every active report and test.
func bruteQuery(reports []motion.Report, active []bool, r geo.Rect, t float64) []int {
	var out []int
	for i, rep := range reports {
		if active != nil && !active[i] {
			continue
		}
		if r.ContainsClosed(rep.Predict(t)) {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}

func collectTPR(g *TPRGrid, r geo.Rect, t float64) []int {
	var out []int
	g.Query(r, t, func(id int) { out = append(out, id) })
	sort.Ints(out)
	return out
}

func TestTPRAtBuildTime(t *testing.T) {
	r := rng.New(1)
	reports := randomReports(r, 200)
	g := NewTPRGrid(space(), 8)
	g.Rebuild(reports, nil, 0)
	if g.BuildTime() != 0 {
		t.Fatalf("BuildTime = %v", g.BuildTime())
	}
	q := geo.NewRect(200, 200, 600, 600)
	got := collectTPR(g, q, 0)
	want := bruteQuery(reports, nil, q, 0)
	if len(got) != len(want) {
		t.Fatalf("got %d ids, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestTPRAfterTimePasses(t *testing.T) {
	r := rng.New(2)
	reports := randomReports(r, 300)
	g := NewTPRGrid(space(), 8)
	g.Rebuild(reports, nil, 10)
	for _, dt := range []float64{0, 1, 5, 20} {
		q := geo.NewRect(300, 300, 700, 700)
		got := collectTPR(g, q, 10+dt)
		want := bruteQuery(reports, nil, q, 10+dt)
		if len(got) != len(want) {
			t.Fatalf("dt=%v: got %d ids, want %d", dt, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("dt=%v: mismatch at %d", dt, i)
			}
		}
	}
}

func TestTPRActiveMask(t *testing.T) {
	r := rng.New(3)
	reports := randomReports(r, 100)
	active := make([]bool, 100)
	for i := range active {
		active[i] = i%2 == 0
	}
	g := NewTPRGrid(space(), 4)
	g.Rebuild(reports, active, 0)
	got := collectTPR(g, space(), 5)
	for _, id := range got {
		if id%2 != 0 {
			t.Fatalf("masked id %d returned", id)
		}
	}
	want := bruteQuery(reports, active, space(), 5)
	if len(got) != len(want) {
		t.Fatalf("got %d ids, want %d", len(got), len(want))
	}
}

func TestTPRStaleness(t *testing.T) {
	r := rng.New(4)
	reports := randomReports(r, 50)
	g := NewTPRGrid(space(), 4)
	g.Rebuild(reports, nil, 100)
	if got := g.Staleness(100); got != 0 {
		t.Errorf("staleness at build = %v", got)
	}
	if got := g.Staleness(90); got != 0 {
		t.Errorf("staleness before build = %v", got)
	}
	s1 := g.Staleness(105)
	s2 := g.Staleness(110)
	if !(s1 > 0 && s2 > s1) {
		t.Errorf("staleness not growing: %v, %v", s1, s2)
	}
}

func TestTPRPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewTPRGrid(space(), 0) },
		func() { NewTPRGrid(geo.Rect{}, 4) },
		func() {
			g := NewTPRGrid(space(), 4)
			g.Rebuild(make([]motion.Report, 3), make([]bool, 2), 0)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// Property: TPR queries exactly match the brute-force prediction for any
// report set, mask, query, and elapsed time within the space.
func TestTPRMatchesBruteForceProperty(t *testing.T) {
	f := func(seed uint64, nRaw, dtRaw uint8) bool {
		r := rng.New(seed)
		n := int(nRaw)%200 + 1
		reports := randomReports(r, n)
		var active []bool
		if r.Bool(0.5) {
			active = make([]bool, n)
			for i := range active {
				active[i] = r.Bool(0.8)
			}
		}
		g := NewTPRGrid(space(), 1+int(seed%12))
		g.Rebuild(reports, active, 0)
		dt := float64(dtRaw % 25)
		q := geo.Square(geo.Point{X: r.Range(0, 1000), Y: r.Range(0, 1000)}, r.Range(10, 400))
		got := collectTPR(g, q, dt)
		want := bruteQuery(reports, active, q, dt)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// BenchmarkTPRVsRebuild quantifies the TPR trade-off: querying a stale
// TPR index vs re-bucketing a plain grid before each evaluation round.
func BenchmarkTPRVsRebuild(b *testing.B) {
	r := rng.New(7)
	const n = 10000
	reports := randomReports(r, n)
	queries := make([]geo.Rect, 100)
	for i := range queries {
		queries[i] = geo.Square(geo.Point{X: r.Range(0, 1000), Y: r.Range(0, 1000)}, 100)
	}
	b.Run("tpr-stale-5s", func(b *testing.B) {
		g := NewTPRGrid(space(), 32)
		g.Rebuild(reports, nil, 0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, q := range queries {
				g.Query(q, 5, func(int) {})
			}
		}
	})
	b.Run("grid-rebuild-every-round", func(b *testing.B) {
		g := NewGrid(space(), 32)
		pts := make([]geo.Point, n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j, rep := range reports {
				pts[j] = rep.Predict(5)
			}
			g.Rebuild(pts, nil)
			for _, q := range queries {
				g.Query(q, func(int) {})
			}
		}
	})
}

package cqindex

import (
	"lira/internal/geo"
	"lira/internal/motion"
)

// TPRGrid is a time-parameterized grid index over motion reports, in the
// spirit of the TPR-tree family the paper names as LIRA's natural
// companion index (§1, §5): instead of re-bucketing dead-reckoned
// positions before every evaluation, nodes are bucketed once by their
// reported positions, each bucket tracks the maximum speed of its members,
// and a range query at time t probes every bucket whose time-expanded
// extent intersects the query. Evaluations between rebuilds thus cost
// only the candidate probes, at the price of growing bucket extents —
// exactly the TPR-tree trade-off.
//
// The zero value is unusable; construct with NewTPRGrid.
type TPRGrid struct {
	space geo.Rect
	cells int

	buildTime float64
	start     []int32
	ids       []int32
	counts    []int32
	maxSpeed  []float64 // per bucket
	reports   []motion.Report
	active    []bool
}

// NewTPRGrid returns a time-parameterized grid index over space with
// cells buckets per side.
func NewTPRGrid(space geo.Rect, cells int) *TPRGrid {
	if cells <= 0 {
		panic("cqindex: non-positive cell count")
	}
	if space.Empty() {
		panic("cqindex: empty space")
	}
	return &TPRGrid{
		space:    space,
		cells:    cells,
		start:    make([]int32, cells*cells+1),
		counts:   make([]int32, cells*cells),
		maxSpeed: make([]float64, cells*cells),
	}
}

func (g *TPRGrid) cellOf(p geo.Point) (int, int) {
	i := int((p.X - g.space.MinX) / g.space.Width() * float64(g.cells))
	j := int((p.Y - g.space.MinY) / g.space.Height() * float64(g.cells))
	return clampInt(i, 0, g.cells-1), clampInt(j, 0, g.cells-1)
}

// Rebuild re-buckets the index from the given motion reports as of time
// t0. active[i] == false excludes id i; active may be nil.
func (g *TPRGrid) Rebuild(reports []motion.Report, active []bool, t0 float64) {
	if active != nil && len(active) != len(reports) {
		panic("cqindex: active mask length mismatch")
	}
	g.reports = reports
	g.active = active
	g.buildTime = t0
	for b := range g.counts {
		g.counts[b] = 0
		g.maxSpeed[b] = 0
	}
	for i := range reports {
		if active != nil && !active[i] {
			continue
		}
		ci, cj := g.cellOf(reports[i].Predict(t0))
		b := cj*g.cells + ci
		g.counts[b]++
		if s := reports[i].Vel.Len(); s > g.maxSpeed[b] {
			g.maxSpeed[b] = s
		}
	}
	total := int32(0)
	for b, c := range g.counts {
		g.start[b] = total
		total += c
	}
	g.start[len(g.counts)] = total
	if cap(g.ids) < int(total) {
		g.ids = make([]int32, total)
	} else {
		g.ids = g.ids[:total]
	}
	for b := range g.counts {
		g.counts[b] = g.start[b]
	}
	for i := range reports {
		if active != nil && !active[i] {
			continue
		}
		ci, cj := g.cellOf(reports[i].Predict(t0))
		b := cj*g.cells + ci
		g.ids[g.counts[b]] = int32(i)
		g.counts[b]++
	}
}

// BuildTime returns the t0 of the last Rebuild.
func (g *TPRGrid) BuildTime() float64 { return g.buildTime }

// Query calls fn for every indexed id whose dead-reckoned position at
// time t lies inside r (closed containment). t must be ≥ the build time;
// querying the past would need reverse expansion and is not supported.
func (g *TPRGrid) Query(r geo.Rect, t float64, fn func(id int)) {
	dt := t - g.buildTime
	if dt < 0 {
		dt = 0
	}
	w := g.space.Width() / float64(g.cells)
	h := g.space.Height() / float64(g.cells)
	// Conservative outer loop bound: expand the query by the global max
	// speed; per-bucket expansion prunes the rest.
	var globalMax float64
	for _, s := range g.maxSpeed {
		if s > globalMax {
			globalMax = s
		}
	}
	reach := globalMax * dt
	i0, j0 := g.cellOf(geo.Point{X: r.MinX - reach, Y: r.MinY - reach})
	i1, j1 := g.cellOf(geo.Point{X: r.MaxX + reach, Y: r.MaxY + reach})
	for cj := j0; cj <= j1; cj++ {
		for ci := i0; ci <= i1; ci++ {
			b := cj*g.cells + ci
			if g.start[b] == g.start[b+1] {
				continue
			}
			// Time-expanded bucket extent: the cell grown by the bucket's
			// own max displacement.
			grow := g.maxSpeed[b] * dt
			cell := geo.Rect{
				MinX: g.space.MinX + float64(ci)*w - grow,
				MinY: g.space.MinY + float64(cj)*h - grow,
				MaxX: g.space.MinX + float64(ci+1)*w + grow,
				MaxY: g.space.MinY + float64(cj+1)*h + grow,
			}
			if !cell.Intersects(r) && !r.Intersects(cell) {
				continue
			}
			for _, id := range g.ids[g.start[b]:g.start[b+1]] {
				if r.ContainsClosed(g.reports[id].Predict(t)) {
					fn(int(id))
				}
			}
		}
	}
}

// Staleness returns how much the largest bucket extent has grown since
// the last rebuild at time t — a rebuild trigger for callers that want to
// bound probe amplification.
func (g *TPRGrid) Staleness(t float64) float64 {
	dt := t - g.buildTime
	if dt < 0 {
		return 0
	}
	var globalMax float64
	for _, s := range g.maxSpeed {
		if s > globalMax {
			globalMax = s
		}
	}
	return globalMax * dt
}

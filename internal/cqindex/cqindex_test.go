package cqindex

import (
	"sort"
	"testing"
	"testing/quick"

	"lira/internal/geo"
	"lira/internal/rng"
)

func space() geo.Rect { return geo.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000} }

func collect(ix Index, r geo.Rect) []int {
	var out []int
	ix.Query(r, func(id int) { out = append(out, id) })
	sort.Ints(out)
	return out
}

func TestNewGridPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewGrid(space(), 0) },
		func() { NewGrid(geo.Rect{}, 8) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestGridBasicQuery(t *testing.T) {
	g := NewGrid(space(), 8)
	pts := []geo.Point{
		{X: 100, Y: 100},
		{X: 500, Y: 500},
		{X: 900, Y: 900},
		{X: 200, Y: 150},
	}
	g.Rebuild(pts, nil)
	got := collect(g, geo.NewRect(50, 50, 250, 250))
	want := []int{0, 3}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("Query = %v, want %v", got, want)
	}
	if got := collect(g, geo.NewRect(600, 0, 800, 200)); len(got) != 0 {
		t.Errorf("empty range returned %v", got)
	}
}

func TestGridBoundaryInclusive(t *testing.T) {
	g := NewGrid(space(), 8)
	g.Rebuild([]geo.Point{{X: 250, Y: 250}}, nil)
	// Point exactly on the query corner: closed containment includes it.
	if got := collect(g, geo.NewRect(250, 250, 300, 300)); len(got) != 1 {
		t.Errorf("corner point missed: %v", got)
	}
	if got := collect(g, geo.NewRect(200, 200, 250, 250)); len(got) != 1 {
		t.Errorf("max-corner point missed: %v", got)
	}
}

func TestGridActiveMask(t *testing.T) {
	g := NewGrid(space(), 8)
	pts := []geo.Point{{X: 100, Y: 100}, {X: 110, Y: 110}}
	g.Rebuild(pts, []bool{true, false})
	got := collect(g, geo.NewRect(0, 0, 200, 200))
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("masked query = %v, want [0]", got)
	}
}

func TestGridMaskLengthPanics(t *testing.T) {
	g := NewGrid(space(), 8)
	defer func() {
		if recover() == nil {
			t.Error("mask length mismatch should panic")
		}
	}()
	g.Rebuild([]geo.Point{{X: 1, Y: 1}}, []bool{true, false})
}

func TestGridRebuildReplaces(t *testing.T) {
	g := NewGrid(space(), 8)
	g.Rebuild([]geo.Point{{X: 100, Y: 100}}, nil)
	g.Rebuild([]geo.Point{{X: 900, Y: 900}}, nil)
	if got := collect(g, geo.NewRect(0, 0, 200, 200)); len(got) != 0 {
		t.Errorf("stale point survived rebuild: %v", got)
	}
	if got := collect(g, geo.NewRect(800, 800, 1000, 1000)); len(got) != 1 {
		t.Errorf("new point missing: %v", got)
	}
}

func TestGridPointsOutsideSpaceClamped(t *testing.T) {
	// Predicted positions can drift outside the monitored space; the index
	// must still find them in border-cell queries rather than crash.
	g := NewGrid(space(), 8)
	g.Rebuild([]geo.Point{{X: -50, Y: 500}, {X: 1100, Y: 1100}}, nil)
	if got := collect(g, geo.NewRect(-100, 400, 10, 600)); len(got) != 1 || got[0] != 0 {
		t.Errorf("outside-left point: %v", got)
	}
	if got := collect(g, geo.NewRect(1000, 1000, 1200, 1200)); len(got) != 1 || got[1-1] != 1 {
		t.Errorf("outside-top-right point: %v", got)
	}
}

// Property: the grid index agrees exactly with the linear reference for
// random point sets, masks, and query rectangles.
func TestGridMatchesLinearProperty(t *testing.T) {
	f := func(seed uint64, nRaw, qRaw uint8) bool {
		r := rng.New(seed)
		n := int(nRaw)%300 + 1
		pts := make([]geo.Point, n)
		mask := make([]bool, n)
		for i := range pts {
			pts[i] = geo.Point{X: r.Range(0, 1000), Y: r.Range(0, 1000)}
			mask[i] = r.Bool(0.8)
		}
		g := NewGrid(space(), 1+int(seed%16))
		lin := NewLinear()
		g.Rebuild(pts, mask)
		lin.Rebuild(pts, mask)
		for k := 0; k < int(qRaw)%8+1; k++ {
			q := geo.Square(geo.Point{X: r.Range(0, 1000), Y: r.Range(0, 1000)}, r.Range(1, 500))
			a := collect(g, q)
			b := collect(lin, q)
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

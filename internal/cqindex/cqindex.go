// Package cqindex provides the spatial index the CQ server uses to
// evaluate range queries over the predicted positions of mobile nodes.
//
// LIRA is deliberately index-agnostic (§1: it "can be employed in
// conjunction with any CQ systems that employ update-efficient index
// structures"); this package supplies a bucketed uniform grid index —
// the structure used by grid-based mobile CQ systems like SINA and
// Kalashnikov et al.'s query index — plus a linear-scan reference
// implementation for differential testing.
package cqindex

import (
	"fmt"

	"lira/internal/geo"
	"lira/internal/par"
)

// Index answers range queries over a point set identified by dense int
// ids.
type Index interface {
	// Rebuild replaces the indexed point set. active[i] == false excludes
	// id i (e.g. a node that has never reported). active may be nil, in
	// which case all points are indexed.
	Rebuild(points []geo.Point, active []bool)
	// Query calls fn for every indexed id whose point lies inside r
	// (closed containment, so boundary nodes are included). Order is
	// unspecified.
	Query(r geo.Rect, fn func(id int))
}

// Grid is a bucketed uniform grid index. The zero value is unusable;
// construct with NewGrid.
type Grid struct {
	space geo.Rect
	cells int

	// CSR-style bucket storage, rebuilt wholesale each round: ids holds
	// the point ids bucket by bucket; start[b] is the first index of
	// bucket b in ids.
	start  []int32
	ids    []int32
	counts []int32
	points []geo.Point
	active []bool

	// shardCounts holds the per-shard bucket counts (reused as write
	// cursors) of the parallel rebuild, allocated lazily.
	shardCounts [][]int32
}

// rebuildChunk is the fixed shard size of the parallel rebuild. Shard
// boundaries depend only on the point count, and each shard writes its ids
// into a precomputed sub-range of every bucket, so the CSR layout is
// byte-identical to the serial build at any worker count.
const rebuildChunk = 2048

// NewGrid returns a grid index over space with cells buckets per side.
func NewGrid(space geo.Rect, cells int) *Grid {
	if cells <= 0 {
		panic(fmt.Sprintf("cqindex: non-positive cell count %d", cells))
	}
	if space.Empty() {
		panic("cqindex: empty space")
	}
	return &Grid{
		space:  space,
		cells:  cells,
		start:  make([]int32, cells*cells+1),
		counts: make([]int32, cells*cells),
	}
}

func (g *Grid) cellOf(p geo.Point) (int, int) {
	i := int((p.X - g.space.MinX) / g.space.Width() * float64(g.cells))
	j := int((p.Y - g.space.MinY) / g.space.Height() * float64(g.cells))
	return clampInt(i, 0, g.cells-1), clampInt(j, 0, g.cells-1)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Rebuild implements Index. It runs in O(points) with no per-point
// allocation after the first call at a given size. Point sets larger than
// one rebuild chunk are bucketed by a parallel two-pass counting sort that
// reproduces the serial bucket layout exactly.
func (g *Grid) Rebuild(points []geo.Point, active []bool) {
	if active != nil && len(active) != len(points) {
		panic("cqindex: active mask length mismatch")
	}
	g.points = points
	g.active = active
	if shards := par.Chunks(len(points), rebuildChunk); shards > 1 {
		g.rebuildSharded(points, active, shards)
		return
	}
	for b := range g.counts {
		g.counts[b] = 0
	}
	for i, p := range points {
		if active != nil && !active[i] {
			continue
		}
		ci, cj := g.cellOf(p)
		g.counts[cj*g.cells+ci]++
	}
	total := int32(0)
	for b, c := range g.counts {
		g.start[b] = total
		total += c
	}
	g.start[len(g.counts)] = total
	if cap(g.ids) < int(total) {
		g.ids = make([]int32, total)
	} else {
		g.ids = g.ids[:total]
	}
	// Second pass: fill buckets, reusing counts as cursors.
	for b := range g.counts {
		g.counts[b] = g.start[b]
	}
	for i, p := range points {
		if active != nil && !active[i] {
			continue
		}
		ci, cj := g.cellOf(p)
		b := cj*g.cells + ci
		g.ids[g.counts[b]] = int32(i)
		g.counts[b]++
	}
}

// rebuildSharded is the parallel counting sort behind Rebuild. Pass one
// counts each shard's points per bucket; a serial prefix pass turns those
// counts into per-(shard, bucket) write cursors laid out shard-after-shard
// within each bucket; pass two lets every shard fill its own sub-ranges.
// Ids therefore land in increasing global index order within each bucket —
// the exact serial layout.
func (g *Grid) rebuildSharded(points []geo.Point, active []bool, shards int) {
	nb := g.cells * g.cells
	for len(g.shardCounts) < shards {
		g.shardCounts = append(g.shardCounts, make([]int32, nb))
	}
	par.ForChunks(len(points), rebuildChunk, func(shard, lo, hi int) {
		counts := g.shardCounts[shard]
		for b := range counts {
			counts[b] = 0
		}
		for i := lo; i < hi; i++ {
			if active != nil && !active[i] {
				continue
			}
			ci, cj := g.cellOf(points[i])
			counts[cj*g.cells+ci]++
		}
	})
	total := int32(0)
	for b := 0; b < nb; b++ {
		g.start[b] = total
		for s := 0; s < shards; s++ {
			c := g.shardCounts[s][b]
			g.shardCounts[s][b] = total // becomes shard s's cursor for b
			total += c
		}
	}
	g.start[nb] = total
	if cap(g.ids) < int(total) {
		g.ids = make([]int32, total)
	} else {
		g.ids = g.ids[:total]
	}
	par.ForChunks(len(points), rebuildChunk, func(shard, lo, hi int) {
		cursor := g.shardCounts[shard]
		for i := lo; i < hi; i++ {
			if active != nil && !active[i] {
				continue
			}
			ci, cj := g.cellOf(points[i])
			b := cj*g.cells + ci
			g.ids[cursor[b]] = int32(i)
			cursor[b]++
		}
	})
}

// Query implements Index.
func (g *Grid) Query(r geo.Rect, fn func(id int)) {
	clip := r.Intersect(g.space)
	if clip.Empty() {
		// A query touching only the space boundary still clips empty
		// under the half-open convention; fall back to the raw rect
		// corners for cell selection.
		clip = r
	}
	i0, j0 := g.cellOf(geo.Point{X: clip.MinX, Y: clip.MinY})
	i1, j1 := g.cellOf(geo.Point{X: clip.MaxX, Y: clip.MaxY})
	for cj := j0; cj <= j1; cj++ {
		for ci := i0; ci <= i1; ci++ {
			b := cj*g.cells + ci
			for _, id := range g.ids[g.start[b]:g.start[b+1]] {
				if r.ContainsClosed(g.points[id]) {
					fn(int(id))
				}
			}
		}
	}
}

// QueryAppend appends every indexed id whose point lies inside r to dst
// and returns the extended slice, visiting ids in the same order Query
// does. It exists for the zero-allocation evaluate path: a caller-owned
// result buffer replaces the per-query callback closure.
func (g *Grid) QueryAppend(r geo.Rect, dst []int) []int {
	clip := r.Intersect(g.space)
	if clip.Empty() {
		clip = r
	}
	i0, j0 := g.cellOf(geo.Point{X: clip.MinX, Y: clip.MinY})
	i1, j1 := g.cellOf(geo.Point{X: clip.MaxX, Y: clip.MaxY})
	for cj := j0; cj <= j1; cj++ {
		for ci := i0; ci <= i1; ci++ {
			b := cj*g.cells + ci
			for _, id := range g.ids[g.start[b]:g.start[b+1]] {
				if r.ContainsClosed(g.points[id]) {
					dst = append(dst, int(id))
				}
			}
		}
	}
	return dst
}

// Linear is the brute-force reference index used for differential tests
// and tiny workloads.
type Linear struct {
	points []geo.Point
	active []bool
}

// NewLinear returns an empty linear index.
func NewLinear() *Linear { return &Linear{} }

// Rebuild implements Index.
func (l *Linear) Rebuild(points []geo.Point, active []bool) {
	if active != nil && len(active) != len(points) {
		panic("cqindex: active mask length mismatch")
	}
	l.points = points
	l.active = active
}

// Query implements Index.
func (l *Linear) Query(r geo.Rect, fn func(id int)) {
	for i, p := range l.points {
		if l.active != nil && !l.active[i] {
			continue
		}
		if r.ContainsClosed(p) {
			fn(i)
		}
	}
}

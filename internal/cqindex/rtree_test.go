package cqindex

import (
	"testing"
	"testing/quick"

	"lira/internal/geo"
	"lira/internal/rng"
)

func TestRTreeEmpty(t *testing.T) {
	rt := NewRTree(8)
	rt.Rebuild(nil, nil)
	if got := collect(rt, space()); len(got) != 0 {
		t.Errorf("empty tree returned %v", got)
	}
	if rt.Depth() != 0 {
		t.Errorf("empty depth = %d", rt.Depth())
	}
	// All-masked is empty too.
	rt.Rebuild([]geo.Point{{X: 1, Y: 1}}, []bool{false})
	if got := collect(rt, space()); len(got) != 0 {
		t.Errorf("masked tree returned %v", got)
	}
}

func TestRTreeBasic(t *testing.T) {
	rt := NewRTree(4)
	pts := []geo.Point{
		{X: 100, Y: 100}, {X: 500, Y: 500}, {X: 900, Y: 900}, {X: 200, Y: 150},
	}
	rt.Rebuild(pts, nil)
	got := collect(rt, geo.NewRect(50, 50, 250, 250))
	if len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Errorf("Query = %v, want [0 3]", got)
	}
	if rt.Depth() < 1 {
		t.Errorf("Depth = %d", rt.Depth())
	}
}

func TestRTreeDepthGrows(t *testing.T) {
	r := rng.New(3)
	pts := make([]geo.Point, 2000)
	for i := range pts {
		pts[i] = geo.Point{X: r.Range(0, 1000), Y: r.Range(0, 1000)}
	}
	rt := NewRTree(8)
	rt.Rebuild(pts, nil)
	// 2000 points at fanout 8: ≥250 leaves → at least 3 levels.
	if rt.Depth() < 3 {
		t.Errorf("Depth = %d, want ≥3", rt.Depth())
	}
	// Every point must be findable by a point query.
	for i := 0; i < 100; i++ {
		p := pts[i*17%len(pts)]
		found := false
		rt.Query(geo.Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y},
			func(id int) {
				if pts[id] == p {
					found = true
				}
			})
		if !found {
			t.Fatalf("point %v not found", p)
		}
	}
}

func TestRTreeSmallFanoutRaised(t *testing.T) {
	rt := NewRTree(0)
	if rt.fanout != 16 {
		t.Errorf("fanout = %d, want raised to 16", rt.fanout)
	}
}

func TestRTreeMaskPanics(t *testing.T) {
	rt := NewRTree(4)
	defer func() {
		if recover() == nil {
			t.Error("mask length mismatch should panic")
		}
	}()
	rt.Rebuild(make([]geo.Point, 3), make([]bool, 2))
}

// Property: the STR R-tree agrees exactly with the linear reference for
// random points, masks, fanouts, and queries — including points outside
// the nominal space (R-trees have no fixed space).
func TestRTreeMatchesLinearProperty(t *testing.T) {
	f := func(seed uint64, nRaw, fanRaw uint8) bool {
		r := rng.New(seed)
		n := int(nRaw)%400 + 1
		pts := make([]geo.Point, n)
		mask := make([]bool, n)
		for i := range pts {
			pts[i] = geo.Point{X: r.Range(-200, 1200), Y: r.Range(-200, 1200)}
			mask[i] = r.Bool(0.85)
		}
		rt := NewRTree(int(fanRaw)%30 + 2)
		lin := NewLinear()
		rt.Rebuild(pts, mask)
		lin.Rebuild(pts, mask)
		for k := 0; k < 5; k++ {
			q := geo.Square(geo.Point{X: r.Range(-200, 1200), Y: r.Range(-200, 1200)}, r.Range(1, 600))
			a := collect(rt, q)
			b := collect(lin, q)
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestRTreeAdaptsToSkew verifies the structural claim that motivates the
// R-tree: under heavy skew, leaf pages concentrate where the data is, so
// a query over the empty region touches almost nothing.
func TestRTreeAdaptsToSkew(t *testing.T) {
	r := rng.New(9)
	pts := make([]geo.Point, 4000)
	for i := range pts {
		// Everything in the SW 100×100 corner.
		pts[i] = geo.Point{X: r.Range(0, 100), Y: r.Range(0, 100)}
	}
	rt := NewRTree(16)
	rt.Rebuild(pts, nil)
	hits := 0
	rt.Query(geo.NewRect(500, 500, 1000, 1000), func(int) { hits++ })
	if hits != 0 {
		t.Errorf("empty-region query hit %d points", hits)
	}
	got := collect(rt, geo.NewRect(0, 0, 100, 100))
	if len(got) != 4000 {
		t.Errorf("full-cluster query returned %d of 4000", len(got))
	}
}

// BenchmarkIndexComparison pits the three indexes against each other on a
// skewed point set — the trade space the paper's index discussion lives
// in.
func BenchmarkIndexComparison(b *testing.B) {
	r := rng.New(7)
	const n = 10000
	pts := make([]geo.Point, n)
	for i := range pts {
		if i%4 != 0 {
			pts[i] = geo.Point{X: r.Range(0, 250), Y: r.Range(0, 250)} // downtown
		} else {
			pts[i] = geo.Point{X: r.Range(0, 1000), Y: r.Range(0, 1000)}
		}
	}
	queries := make([]geo.Rect, 100)
	for i := range queries {
		queries[i] = geo.Square(geo.Point{X: r.Range(0, 1000), Y: r.Range(0, 1000)}, 100)
	}
	run := func(b *testing.B, ix Index) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ix.Rebuild(pts, nil)
			for _, q := range queries {
				ix.Query(q, func(int) {})
			}
		}
	}
	b.Run("grid-32", func(b *testing.B) { run(b, NewGrid(space(), 32)) })
	b.Run("rtree-16", func(b *testing.B) { run(b, NewRTree(16)) })
	b.Run("linear", func(b *testing.B) { run(b, NewLinear()) })
}

package plan

import (
	"fmt"
	"sort"

	"lira/internal/controlplane"
	"lira/internal/experiment"
)

// MeasuredSLO bounds the *measured* §4.1 accuracy of a full
// reference-vs-candidate simulation, not the capacity model's modeled
// inaccuracy: MaxEC caps the mean containment error (fraction of
// query-result rows wrong against the Δ⊢ reference) and MaxEPM the mean
// position error in meters.
type MeasuredSLO struct {
	MaxEC  float64 `json:"max_ec"`
	MaxEPM float64 `json:"max_ep_m"`
}

// MeasuredPlanConfig parameterizes PlanMeasured. The caller supplies the
// simulation environment (road network + calibrated f curve) and a base
// RunConfig; the planner sweeps Zs × Policies, judging each combo by its
// worst measured error across Workloads.
type MeasuredPlanConfig struct {
	// Env is the experiment environment every cell runs in.
	Env *experiment.Env
	// Base is the per-run template; Policy, Workload, and Z are
	// overridden per cell.
	Base experiment.RunConfig
	// Zs are the throttle fractions to sweep, cheapest (lowest) first:
	// a configuration that meets the SLO while admitting less traffic
	// needs less capacity. Empty selects {0.3, 0.5, 0.7}.
	Zs []float64
	// Policies are registry names; empty selects every registered policy
	// in comparison order.
	Policies []string
	// Workloads name the traffic sources judged against the SLO ("" is
	// the road-network trace). Empty selects {"", "blackout"}.
	Workloads []string
	// Objective is the measured-error SLO.
	Objective MeasuredSLO
	// Parallel is the grid worker count (≤0 selects GOMAXPROCS).
	Parallel int
}

// MeasuredCombo is one (z, policy) candidate with its per-workload
// measured cells and worst-case errors.
type MeasuredCombo struct {
	Z        float64 `json:"z"`
	Policy   string  `json:"policy"`
	Feasible bool    `json:"feasible"`
	// WorstEC / WorstEPM are the combo's worst measured errors across
	// workloads — what the SLO is checked against.
	WorstEC  float64                   `json:"worst_ec"`
	WorstEPM float64                   `json:"worst_ep_m"`
	Cells    []experiment.MeasuredCell `json:"cells"`
}

// MeasuredReport is the liraplan -measured artifact: the full measured
// sweep, the recommendation, and the embedded replay verification.
// Marshaling is deterministic — fixed field order, no maps, no
// wall-clock fields — so equal (seed, config) runs emit byte-identical
// artifacts.
type MeasuredReport struct {
	// Command records the invoking command line (set by liraplan).
	Command string `json:"command"`

	Nodes int    `json:"nodes"`
	Seed  uint64 `json:"seed"`
	L     int    `json:"regions"`

	SLO       MeasuredSLO `json:"slo"`
	Workloads []string    `json:"workloads"`
	Policies  []string    `json:"policies"`
	Zs        []float64   `json:"zs"`

	Combos []*MeasuredCombo `json:"combos"`

	// Feasible reports whether any combo met the SLO on every workload;
	// Recommended is the cheapest such combo (sweep order). Verified is
	// the embedded replay check: every cell of the recommendation was
	// re-simulated and its measured errors matched exactly while still
	// meeting the SLO.
	Feasible    bool           `json:"feasible"`
	Recommended *MeasuredCombo `json:"recommended"`
	Verified    bool           `json:"verified"`
}

// meetsSLO checks one measured cell against the objective.
func (s MeasuredSLO) meetsSLO(c experiment.MeasuredCell) bool {
	return c.EC <= s.MaxEC && c.EP <= s.MaxEPM
}

// PlanMeasured sweeps throttle fraction × policy on *measured* error:
// every cell is one full reference-vs-candidate simulation
// (experiment.Measure), and a combo is feasible when its measured E^C
// and E^P meet the SLO on every workload. The sweep order is
// cheapest-first — z ascending (a config that satisfies the SLO while
// admitting less traffic needs less downstream capacity), then policy
// in controlplane registry order — and the first feasible combo is the
// recommendation, replay-verified like the modeled planner's.
func PlanMeasured(cfg MeasuredPlanConfig) (*MeasuredReport, error) {
	if cfg.Env == nil {
		return nil, fmt.Errorf("plan: measured planning needs an experiment environment")
	}
	if len(cfg.Zs) == 0 {
		cfg.Zs = []float64{0.3, 0.5, 0.7}
	}
	zs := append([]float64(nil), cfg.Zs...)
	sort.Float64s(zs)
	if len(cfg.Policies) == 0 {
		cfg.Policies = controlplane.RegisteredNames()
	}
	if len(cfg.Workloads) == 0 {
		cfg.Workloads = []string{"", "blackout"}
	}

	mc, err := experiment.Measure(cfg.Env, experiment.MeasuredConfig{
		Base:      cfg.Base,
		Zs:        zs,
		Policies:  cfg.Policies,
		Workloads: cfg.Workloads,
		Parallel:  cfg.Parallel,
	})
	if err != nil {
		return nil, err
	}

	rep := &MeasuredReport{
		Nodes:     cfg.Env.Cfg.Nodes,
		Seed:      cfg.Base.Seed,
		L:         cfg.Base.L,
		SLO:       cfg.Objective,
		Workloads: cfg.Workloads,
		Policies:  cfg.Policies,
		Zs:        zs,
	}
	for _, z := range zs {
		for _, pol := range cfg.Policies {
			combo := &MeasuredCombo{Z: z, Policy: pol, Feasible: true}
			for _, w := range cfg.Workloads {
				cell, ok := mc.Cell(w, z, pol)
				if !ok {
					return nil, fmt.Errorf("plan: missing measured cell (%q, %v, %q)", w, z, pol)
				}
				combo.Cells = append(combo.Cells, cell)
				combo.Feasible = combo.Feasible && cfg.Objective.meetsSLO(cell)
				if cell.EC > combo.WorstEC {
					combo.WorstEC = cell.EC
				}
				if cell.EP > combo.WorstEPM {
					combo.WorstEPM = cell.EP
				}
			}
			rep.Combos = append(rep.Combos, combo)
			if combo.Feasible && rep.Recommended == nil {
				rep.Recommended = combo
			}
		}
	}
	rep.Feasible = rep.Recommended != nil

	// Replay verification: re-run every cell of the recommendation
	// through the single-run path and require the measured errors to
	// reproduce exactly while still meeting the SLO.
	if rep.Recommended != nil {
		rep.Verified = true
		for _, cell := range rep.Recommended.Cells {
			run := cfg.Base
			run.Workload = cell.Workload
			run.Z = cell.Z
			run.Policy = cell.Policy
			res, err := experiment.Run(cfg.Env, run)
			if err != nil {
				return nil, err
			}
			if res.Metrics.MeanContainment != cell.EC ||
				res.Metrics.MeanPosition != cell.EP ||
				!cfg.Objective.meetsSLO(cell) {
				rep.Verified = false
			}
		}
	}
	return rep, nil
}

package plan

import (
	"reflect"
	"strings"
	"testing"

	"lira/internal/experiment"
	"lira/internal/roadnet"
)

// measuredEnv builds a small experiment environment for the measured
// planner tests: plumbing fidelity only — the full-scale artifact is
// liraplan's job.
func measuredEnv(t *testing.T) *experiment.Env {
	t.Helper()
	netCfg := roadnet.DefaultConfig()
	netCfg.Side = 3000
	netCfg.GridStep = 400
	netCfg.Centers = 2
	netCfg.CenterRadius = 700
	env, err := experiment.NewEnv(experiment.EnvConfig{
		Net:        netCfg,
		Nodes:      200,
		CalibNodes: 120,
		CalibTicks: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// TestPlanMeasured pins the measured planner: cheapest-first sweep
// order, a replay-verified recommendation that meets the SLO on every
// workload, and a fully deterministic report.
func TestPlanMeasured(t *testing.T) {
	if testing.Short() {
		t.Skip("full-run measured sweep; skipped in -short")
	}
	env := measuredEnv(t)
	base := experiment.DefaultRunConfig()
	base.L = 13
	base.WarmupTicks = 20
	base.DurationTicks = 40
	base.EvalEvery = 20
	cfg := MeasuredPlanConfig{
		Env:       env,
		Base:      base,
		Zs:        []float64{0.7, 0.4},
		Policies:  []string{"single-delta", "lira"},
		Workloads: []string{"", "blackout"},
		// Loose bounds so at least the lightest-shedding combo passes.
		Objective: MeasuredSLO{MaxEC: 0.2, MaxEPM: 50},
	}
	rep, err := PlanMeasured(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Combos) != len(cfg.Zs)*len(cfg.Policies) {
		t.Fatalf("combos = %d, want %d", len(rep.Combos), len(cfg.Zs)*len(cfg.Policies))
	}
	// Sweep order: z ascending, then policy order.
	if rep.Combos[0].Z != 0.4 || rep.Combos[0].Policy != "single-delta" ||
		rep.Combos[1].Policy != "lira" || rep.Combos[2].Z != 0.7 {
		t.Errorf("sweep order wrong: %+v", rep.Combos)
	}
	if !rep.Feasible || rep.Recommended == nil {
		t.Fatal("expected a feasible recommendation under the loose SLO")
	}
	if !rep.Verified {
		t.Error("recommendation did not replay-verify")
	}
	for _, combo := range rep.Combos {
		if combo.Feasible && (combo.WorstEC > cfg.Objective.MaxEC || combo.WorstEPM > cfg.Objective.MaxEPM) {
			t.Errorf("combo z=%v %s marked feasible but violates SLO: %+v", combo.Z, combo.Policy, combo)
		}
		if len(combo.Cells) != len(cfg.Workloads) {
			t.Errorf("combo z=%v %s has %d cells, want %d", combo.Z, combo.Policy, len(combo.Cells), len(cfg.Workloads))
		}
	}
	// The first feasible combo in sweep order is the recommendation.
	for _, combo := range rep.Combos {
		if combo.Feasible {
			if rep.Recommended != combo {
				t.Error("recommendation is not the cheapest feasible combo")
			}
			break
		}
	}

	rep2, err := PlanMeasured(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := rep.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := rep2.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Error("measured plan artifact is not byte-deterministic")
	}
	if !reflect.DeepEqual(rep, rep2) {
		t.Error("measured plan report is not deterministic")
	}

	table := rep.Table()
	for _, want := range []string{"recommended", "SLO (measured)", "blackout", "trace"} {
		if !strings.Contains(table, want) {
			t.Errorf("measured table missing %q:\n%s", want, table)
		}
	}
}

// TestPlanMeasuredValidation pins the error paths.
func TestPlanMeasuredValidation(t *testing.T) {
	if _, err := PlanMeasured(MeasuredPlanConfig{}); err == nil {
		t.Error("nil env accepted")
	}
}

// Package plan is the deterministic capacity planner behind liraplan: it
// replays catalog scenarios (internal/workload) through a closed-loop
// capacity model of the full server stack — engine, admission ladder,
// THROTLOOP, and a controlplane policy — and sweeps shard count K,
// throttle clamp z, and policy to find the cheapest configuration whose
// worst case still meets an operator SLO (p99 Evaluate latency, mean
// inaccuracy, maximum admission rung). Everything is a pure function of
// (seed, config): model-time telemetry, seeded workloads, and a modeled
// latency clock keep the emitted artifact byte-reproducible, so two
// operators running the same plan get the same recommendation.
package plan

import (
	"fmt"
	"hash/fnv"
	"io"
	"math"

	"lira/internal/admission"
	"lira/internal/controlplane"
	"lira/internal/cqserver"
	"lira/internal/engine"
	"lira/internal/fmodel"
	"lira/internal/geo"
	"lira/internal/motion"
	"lira/internal/rng"
	"lira/internal/telemetry"
	"lira/internal/throttler"
	"lira/internal/workload"
)

// Capacity-model constants. Work is measured in update-equivalents (one
// unit = fully processing one admitted report); an Evaluate round's work
// divided by the configured capacity K·ServicePerShard gives its modeled
// latency in ticks (= model seconds). The mix makes every scenario axis
// visible: ingest volume through workApply, standing query load through
// workQuery, result fan-out through workRow, and churn-storm registration
// through workRebuild.
const (
	workApply   = 1.0
	workQuery   = 0.2
	workRow     = 0.02
	workRebuild = 1.0

	evalEvery  = 2 // ticks between Evaluate rounds
	adaptEvery = 5 // ticks between AdaptAuto cycles
)

// latencyBoundsMS is the fixed histogram bucketing for modeled Evaluate
// latency: geometric from sub-millisecond to tens of seconds, so
// Histogram.Quantile reports a deterministic bucket edge at any overload
// severity.
func latencyBoundsMS() []float64 {
	bounds := make([]float64, 0, 16)
	for ms := 0.5; ms <= 17000; ms *= 2 {
		bounds = append(bounds, ms)
	}
	return bounds
}

// SimConfig is one cell of the sweep: a scenario replayed against one
// candidate server configuration.
type SimConfig struct {
	// Scenario is the catalog name (workload.CatalogNames).
	Scenario string
	// Space is the monitored area (origin-anchored square).
	Space geo.Rect
	// Nodes is the fleet size, Rate the scenario's baseline aggregate
	// report rate in updates per tick.
	Nodes int
	Rate  float64
	// Seed drives the scenario and the source-throttle thinning.
	Seed uint64
	// Shards is the candidate K (1 selects the unsharded engine).
	Shards int
	// ZClamp is the candidate throttle ceiling: adaptations may choose any
	// z ≤ ZClamp, and sources thin their reports to the chosen z.
	ZClamp float64
	// Policy is the controlplane policy name (controlplane.Policies).
	Policy string
	// ServicePerShard is the per-shard drain budget in updates per tick;
	// K·ServicePerShard is the modeled total capacity.
	ServicePerShard float64
	// L is the shedding-region count (0 selects 13).
	L int
	// JournalSink, when non-nil, receives the run's telemetry journal as
	// JSONL — the byte stream the determinism tests compare.
	JournalSink io.Writer
}

// Outcome is the measured result of one simulation cell.
type Outcome struct {
	Scenario string  `json:"scenario"`
	Shards   int     `json:"shards"`
	ZClamp   float64 `json:"z_clamp"`
	Policy   string  `json:"policy"`

	// P99LatencyMS is the 99th-percentile modeled Evaluate latency via
	// telemetry.Histogram.Quantile, in milliseconds.
	P99LatencyMS float64 `json:"p99_latency_ms"`
	// MeanInaccuracyM is the query-weighted mean shedding imprecision in
	// meters: the throttler objective Σ mᵢ·Δᵢ normalized by Σ mᵢ,
	// averaged over the run's adaptations.
	MeanInaccuracyM float64 `json:"mean_inaccuracy_m"`
	// MaxRung is the highest admission-ladder state the run reached.
	MaxRung string `json:"max_rung"`

	Arrived     int64  `json:"arrived"`
	Applied     int64  `json:"applied"`
	Dropped     int64  `json:"dropped"`
	PreShed     int64  `json:"pre_shed"`
	SourceThin  int64  `json:"source_thinned"`
	Adaptations int    `json:"adaptations"`
	Evaluations int    `json:"evaluations"`
	ResultHash  string `json:"result_hash"`

	maxRung admission.State
}

// MeetsSLO reports whether the outcome satisfies every axis of the SLO.
func (o *Outcome) MeetsSLO(slo SLO) bool {
	return o.P99LatencyMS <= slo.P99LatencyMS &&
		o.MeanInaccuracyM <= slo.MaxInaccuracyM &&
		o.maxRung <= slo.MaxRung
}

// Simulate replays one scenario against one candidate configuration and
// measures it. The loop models the full production tick: the scenario
// emits, sources thin to the adapted z, the admission ladder gates what
// remains, the engine ingests (shed-oldest), drains at the configured
// capacity, and periodically evaluates and re-adapts. Model time drives
// the telemetry clock, so the journal — and therefore the artifact — is a
// pure function of (seed, config).
func Simulate(cfg SimConfig) (*Outcome, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("plan: shards must be >= 1, got %d", cfg.Shards)
	}
	if cfg.ZClamp <= 0 || cfg.ZClamp > 1 {
		return nil, fmt.Errorf("plan: z clamp must be in (0,1], got %v", cfg.ZClamp)
	}
	if cfg.ServicePerShard <= 0 {
		return nil, fmt.Errorf("plan: non-positive per-shard service rate %v", cfg.ServicePerShard)
	}
	if cfg.L <= 0 {
		cfg.L = 13
	}
	pol, err := policyByName(cfg.Policy)
	if err != nil {
		return nil, err
	}
	scen, err := workload.BuildScenario(cfg.Scenario, cfg.Space, cfg.Nodes, cfg.Rate, cfg.Seed)
	if err != nil {
		return nil, err
	}

	now := 0.0
	hub := telemetry.NewHub(0)
	hub.SetClock(func() float64 { return now })
	if cfg.JournalSink != nil {
		hub.Journal.SetSink(cfg.JournalSink)
	}
	latency := hub.Registry.Histogram("liraplan_eval_latency_ms", latencyBoundsMS())

	queueSize := int(8 * cfg.Rate)
	if queueSize < 4*cfg.Shards {
		queueSize = 4 * cfg.Shards
	}
	eng, err := engine.New(cqserver.Config{
		Space:     cfg.Space,
		Nodes:     cfg.Nodes,
		L:         cfg.L,
		QueueSize: queueSize,
		Curve:     fmodel.Hyperbolic(5, 100, 19),
		Telemetry: hub,
	}, cfg.Shards)
	if err != nil {
		return nil, err
	}
	adm, err := admission.New(admission.Config{
		// Queue occupancy only: the process-health signals would drag wall
		// time into the plan, and the planner must stay seed-pure.
		Thresholds:    admission.Thresholds{QueueFrac: [3]float64{0.50, 0.80, 0.95}},
		EscalateAfter: 2,
		RecoverAfter:  5,
		Actions:       eng,
		Telemetry:     hub,
	})
	if err != nil {
		return nil, err
	}
	zCap := cfg.ZClamp
	eng.ControlPlane().SetZClamp(func(z float64) float64 {
		if z > zCap {
			z = zCap
		}
		return adm.ClampZ(z)
	})
	eng.ControlPlane().SetPolicy(pol)

	out := &Outcome{
		Scenario: cfg.Scenario,
		Shards:   cfg.Shards,
		ZClamp:   cfg.ZClamp,
		Policy:   cfg.Policy,
	}
	capacity := float64(cfg.Shards) * cfg.ServicePerShard
	drainBudget := int(capacity)
	thin := rng.New(cfg.Seed).Split(0x7417)
	resHash := fnv.New64a()
	var hword [8]byte

	zEff := cfg.ZClamp // sources run at the clamp until the first adaptation
	var buf []cqserver.Update
	var positions []geo.Point
	var speeds []float64
	queries := 0
	rebuilds := 0
	appliedAtEval := int64(0)
	inaccSum, inaccN := 0.0, 0
	sawStats := false

	for tick := 0; tick < scen.Ticks(); tick++ {
		now = float64(tick)
		if qs, ok := scen.Queries(tick); ok {
			eng.RegisterQueries(qs)
			queries = len(qs)
			if tick > 0 {
				rebuilds++
			}
		}

		buf = buf[:0]
		scen.Emit(now, func(node int, pos geo.Point, vel geo.Vector) {
			// Source-side throttling: the adapted z is the fraction of the
			// full update expenditure retained, modeled as thinning.
			if zEff < 1 && !thin.Bool(zEff) {
				out.SourceThin++
				return
			}
			buf = append(buf, cqserver.Update{
				Node:   node,
				Report: motion.Report{Pos: pos, Vel: vel, Time: now},
			})
		})

		admit := adm.AdmitN(len(buf))
		admitted := buf[len(buf)-admit:]
		eng.IngestShedOldestBatch(admitted)

		occ := 0.0
		if c := eng.QueueCap(); c > 0 {
			occ = float64(eng.QueueLen()) / float64(c)
		}
		adm.Observe(admission.Signals{QueueFrac: occ})
		if st := adm.State(); st > out.maxRung {
			out.maxRung = st
		}

		drained := eng.Drain(drainBudget)
		eng.ObserveBusy(float64(drained) / capacity)

		if len(admitted) > 0 {
			positions = positions[:0]
			speeds = speeds[:0]
			for _, u := range admitted {
				positions = append(positions, u.Report.Pos)
				speeds = append(speeds, u.Report.Vel.Len())
			}
			eng.ObserveStatistics(positions, speeds)
			sawStats = true
		}

		if tick%evalEvery == 0 {
			results := eng.Evaluate(now)
			rows := 0
			for _, ids := range results {
				rows += len(ids)
				for _, id := range ids {
					putUint64(&hword, uint64(id))
					resHash.Write(hword[:])
				}
				putUint64(&hword, math.MaxUint64) // row separator
				resHash.Write(hword[:])
			}
			applied := eng.Applied()
			work := workApply*float64(applied-appliedAtEval) +
				workQuery*float64(queries) +
				workRow*float64(rows) +
				workRebuild*float64(rebuilds*queries)
			appliedAtEval = applied
			rebuilds = 0
			latency.Observe(work / capacity * 1000) // ticks are model seconds
			out.Evaluations++
		}

		if tick > 0 && tick%adaptEvery == 0 && sawStats {
			ad, err := eng.AdaptAuto(adaptEvery)
			if err != nil {
				return nil, fmt.Errorf("plan: adapt at tick %d: %w", tick, err)
			}
			zEff = ad.Z
			stats := ad.Partitioning.Stats()
			mSum := 0.0
			for _, st := range stats {
				mSum += st.M
			}
			if mSum > 0 {
				inaccSum += throttler.InAccuracy(stats, ad.Deltas) / mSum
				inaccN++
			}
			out.Adaptations++
		}
	}

	out.P99LatencyMS = latency.Quantile(0.99)
	if inaccN > 0 {
		out.MeanInaccuracyM = inaccSum / float64(inaccN)
	}
	out.MaxRung = out.maxRung.String()
	out.Arrived = eng.Arrived()
	out.Applied = eng.Applied()
	out.Dropped = eng.Dropped()
	out.PreShed = adm.PreShed()
	out.ResultHash = fmt.Sprintf("%016x", resHash.Sum64())
	return out, nil
}

func putUint64(b *[8]byte, v uint64) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

func policyByName(name string) (controlplane.Policy, error) {
	for _, pol := range controlplane.Policies() {
		if pol.Name() == name {
			return pol, nil
		}
	}
	return nil, fmt.Errorf("plan: unknown policy %q", name)
}

package plan

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Report is the BENCH_PR9.json artifact: the full measured sweep, the
// recommendation, and the embedded replay verification. Marshaling is
// deterministic — fixed field order, no maps, no wall-clock timestamps —
// so equal (seed, config) runs emit byte-identical artifacts.
type Report struct {
	// Command records the invoking command line (set by liraplan).
	Command string `json:"command"`

	Nodes           int     `json:"nodes"`
	Rate            float64 `json:"rate"`
	ServicePerShard float64 `json:"service_per_shard"`
	SpaceSide       float64 `json:"space_side_m"`
	Seed            uint64  `json:"seed"`
	L               int     `json:"regions"`

	SLO       SLO      `json:"slo"`
	Scenarios []string `json:"scenarios"`

	GridShards   []int     `json:"grid_shards"`
	GridZClamps  []float64 `json:"grid_z_clamps"`
	GridPolicies []string  `json:"grid_policies"`

	Combos []*Combo `json:"combos"`

	// Feasible reports whether any combo met the SLO on every scenario;
	// Recommended is the cheapest such combo (sweep order). Verified is
	// the embedded replay check: the recommendation re-simulated
	// byte-identically and still met the SLO on every scenario.
	Feasible    bool   `json:"feasible"`
	Recommended *Combo `json:"recommended"`
	Verified    bool   `json:"verified"`
}

// Marshal is the artifact encoding: indented JSON with a trailing
// newline. Defined on Report so the schema is a deliberate surface
// (scripts/plan_smoke.sh greps it), not an accident at each call site.
func (r *Report) Marshal() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Marshal is the artifact encoding for the measured-mode report:
// indented JSON with a trailing newline, the same deliberate schema
// surface as Report.Marshal (scripts/measured_smoke.sh greps it).
func (r *MeasuredReport) Marshal() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Table renders the human-readable measured plan: one row per (z,
// policy) combo with its worst measured errors, the recommendation
// marked, followed by the recommended combo's per-workload breakdown.
func (r *MeasuredReport) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "measured capacity plan: %d nodes, L=%d, seed %d\n", r.Nodes, r.L, r.Seed)
	fmt.Fprintf(&b, "SLO (measured): E^C ≤ %.4f, E^P ≤ %.1f m\n", r.SLO.MaxEC, r.SLO.MaxEPM)
	names := make([]string, len(r.Workloads))
	for i, w := range r.Workloads {
		if w == "" {
			w = "trace"
		}
		names[i] = w
	}
	fmt.Fprintf(&b, "workloads: %s\n\n", strings.Join(names, ", "))

	fmt.Fprintf(&b, "%-6s %-14s %10s %12s %-8s\n",
		"z", "policy", "worst EC", "worst EP", "meets")
	for _, c := range r.Combos {
		mark := ""
		if r.Recommended == c {
			mark = "  ← recommended"
		}
		feas := "no"
		if c.Feasible {
			feas = "yes"
		}
		fmt.Fprintf(&b, "%-6.2f %-14s %10.4f %10.1f m %-8s%s\n",
			c.Z, c.Policy, c.WorstEC, c.WorstEPM, feas, mark)
	}

	b.WriteString("\n")
	if r.Recommended == nil {
		b.WriteString("no feasible configuration on this grid — raise z, relax the SLO, or widen the grid\n")
		return b.String()
	}
	c := r.Recommended
	fmt.Fprintf(&b, "recommended: z=%.2f policy=%s (verified=%v)\n", c.Z, c.Policy, r.Verified)
	fmt.Fprintf(&b, "%-22s %10s %12s %10s %-8s\n",
		"workload", "EC", "EP", "achieved", "budget")
	for _, cell := range c.Cells {
		w := cell.Workload
		if w == "" {
			w = "trace"
		}
		fmt.Fprintf(&b, "%-22s %10.4f %10.1f m %10.3f %-8v\n",
			w, cell.EC, cell.EP, cell.AchievedFraction, cell.BudgetMet)
	}
	return b.String()
}

// Table renders the human-readable plan: one row per combo with its
// worst-case measurements, the recommendation marked, followed by the
// recommended combo's per-scenario breakdown.
func (r *Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "capacity plan: %d nodes, %.0f updates/tick baseline, %.0f per-shard service\n",
		r.Nodes, r.Rate, r.ServicePerShard)
	fmt.Fprintf(&b, "SLO: p99 ≤ %.0f ms, inaccuracy ≤ %.0f m, rung ≤ %s\n",
		r.SLO.P99LatencyMS, r.SLO.MaxInaccuracyM, r.SLO.MaxRungName)
	fmt.Fprintf(&b, "scenarios: %s\n\n", strings.Join(r.Scenarios, ", "))

	fmt.Fprintf(&b, "%-4s %-8s %-14s %12s %14s %-10s %-8s\n",
		"K", "z-clamp", "policy", "worst p99", "worst inacc", "worst rung", "meets")
	for _, c := range r.Combos {
		mark := ""
		if r.Recommended == c {
			mark = "  ← recommended"
		}
		feas := "no"
		if c.Feasible {
			feas = "yes"
		}
		fmt.Fprintf(&b, "%-4d %-8.2f %-14s %9.0f ms %12.1f m %-10s %-8s%s\n",
			c.Shards, c.ZClamp, c.Policy,
			c.WorstP99MS, c.WorstInaccuracyM, c.WorstRung, feas, mark)
	}

	b.WriteString("\n")
	if r.Recommended == nil {
		b.WriteString("no feasible configuration on this grid — raise K, relax the SLO, or widen the grid\n")
		return b.String()
	}
	c := r.Recommended
	fmt.Fprintf(&b, "recommended: K=%d z-clamp=%.2f policy=%s (verified=%v)\n",
		c.Shards, c.ZClamp, c.Policy, r.Verified)
	fmt.Fprintf(&b, "%-22s %12s %14s %-10s %10s %10s\n",
		"scenario", "p99", "inaccuracy", "rung", "dropped", "pre-shed")
	for _, o := range c.Outcomes {
		fmt.Fprintf(&b, "%-22s %9.0f ms %12.1f m %-10s %10d %10d\n",
			o.Scenario, o.P99LatencyMS, o.MeanInaccuracyM, o.MaxRung, o.Dropped, o.PreShed)
	}
	return b.String()
}

package plan

import (
	"bytes"
	"strings"
	"testing"

	"lira/internal/admission"
	"lira/internal/geo"
	"lira/internal/workload"
)

func testSpace() geo.Rect {
	return geo.Rect{MinX: 0, MinY: 0, MaxX: 6000, MaxY: 6000}
}

// TestSimulateDeterministic is the catalog-wide byte-determinism check:
// for every scenario, three seeds, and both engines (K=1 unsharded, K=2
// sharded), two simulations produce identical telemetry journals (JSONL
// bytes) and identical outcomes, query results included (ResultHash).
func TestSimulateDeterministic(t *testing.T) {
	for _, scen := range workload.CatalogNames() {
		scen := scen
		t.Run(scen, func(t *testing.T) {
			for _, seed := range []uint64{1, 42, 31337} {
				for _, shards := range []int{1, 2} {
					run := func() (*Outcome, []byte) {
						var journal bytes.Buffer
						o, err := Simulate(SimConfig{
							Scenario:        scen,
							Space:           testSpace(),
							Nodes:           200,
							Rate:            20,
							Seed:            seed,
							Shards:          shards,
							ZClamp:          1,
							Policy:          "lira",
							ServicePerShard: 20,
							JournalSink:     &journal,
						})
						if err != nil {
							t.Fatalf("seed %d K=%d: %v", seed, shards, err)
						}
						return o, journal.Bytes()
					}
					o1, j1 := run()
					o2, j2 := run()
					if *o1 != *o2 {
						t.Fatalf("seed %d K=%d: outcomes differ:\n%+v\n%+v", seed, shards, o1, o2)
					}
					if !bytes.Equal(j1, j2) {
						t.Fatalf("seed %d K=%d: telemetry journals differ (%d vs %d bytes)",
							seed, shards, len(j1), len(j2))
					}
					if len(j1) == 0 {
						t.Fatalf("seed %d K=%d: empty journal — determinism check is vacuous", seed, shards)
					}
				}
			}
		})
	}
}

// TestSimulateValidation: bad cells are rejected with errors, not panics.
func TestSimulateValidation(t *testing.T) {
	base := SimConfig{
		Scenario: "blackout", Space: testSpace(), Nodes: 50, Rate: 5,
		Shards: 1, ZClamp: 1, Policy: "lira", ServicePerShard: 5,
	}
	for name, mutate := range map[string]func(*SimConfig){
		"zero shards":    func(c *SimConfig) { c.Shards = 0 },
		"bad zclamp":     func(c *SimConfig) { c.ZClamp = 1.5 },
		"zero service":   func(c *SimConfig) { c.ServicePerShard = 0 },
		"unknown policy": func(c *SimConfig) { c.Policy = "nope" },
		"unknown scen":   func(c *SimConfig) { c.Scenario = "nope" },
	} {
		cfg := base
		mutate(&cfg)
		if _, err := Simulate(cfg); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func testPlanConfig() Config {
	return Config{
		Nodes:     300,
		Rate:      30,
		Seed:      7,
		Shards:    []int{1, 2},
		ZClamps:   []float64{1.0, 0.5},
		Policies:  []string{"lira"},
		Scenarios: []string{"blackout", "flash-crowd", "query-churn", "rush-hour-closure"},
		Objective: SLO{P99LatencyMS: 5000, MaxInaccuracyM: 12, MaxRung: admission.Shed},
	}
}

// TestPlanRecommendationMeetsSLO: the planner finds a feasible combo on a
// small grid over four scenarios, its embedded replay verification holds,
// and an independent re-simulation of the recommendation meets the SLO on
// every scenario — the acceptance criterion, executed.
func TestPlanRecommendationMeetsSLO(t *testing.T) {
	cfg := testPlanConfig()
	rep, err := Plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Feasible || rep.Recommended == nil {
		t.Fatal("no feasible plan found on the test grid")
	}
	if !rep.Verified {
		t.Fatal("embedded replay verification failed")
	}
	infeasible := 0
	for _, c := range rep.Combos {
		if !c.Feasible {
			infeasible++
		}
	}
	if infeasible == 0 {
		t.Error("every combo met the SLO — the grid exerts no planning tension")
	}
	rec := rep.Recommended
	for i, scen := range cfg.Scenarios {
		o, err := Simulate(SimConfig{
			Scenario:        scen,
			Space:           geo.Rect{MaxX: 6000, MaxY: 6000},
			Nodes:           cfg.Nodes,
			Rate:            cfg.Rate,
			Seed:            cfg.Seed,
			Shards:          rec.Shards,
			ZClamp:          rec.ZClamp,
			Policy:          rec.Policy,
			ServicePerShard: cfg.Rate, // fillDefaults selects Rate
			L:               13,
		})
		if err != nil {
			t.Fatalf("re-simulate %s: %v", scen, err)
		}
		if !o.MeetsSLO(cfg.Objective) {
			t.Errorf("%s: recommendation misses the SLO on re-simulation: p99=%.0f inacc=%.1f rung=%s",
				scen, o.P99LatencyMS, o.MeanInaccuracyM, o.MaxRung)
		}
		if *o != *rec.Outcomes[i] {
			t.Errorf("%s: re-simulated outcome differs from the planned one", scen)
		}
	}
}

// TestPlanArtifactDeterministic: two full planning runs with equal config
// marshal to byte-identical artifacts — the BENCH_PR9 contract.
func TestPlanArtifactDeterministic(t *testing.T) {
	cfg := testPlanConfig()
	cfg.Scenarios = []string{"blackout", "query-churn"} // keep the double run cheap
	run := func() []byte {
		rep, err := Plan(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep.Command = "liraplan -test"
		data, err := rep.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("equal configs produced different artifacts")
	}
	if a[len(a)-1] != '\n' {
		t.Error("artifact missing trailing newline")
	}
	for _, field := range []string{
		`"command"`, `"nodes"`, `"slo"`, `"scenarios"`, `"combos"`,
		`"feasible"`, `"recommended"`, `"verified"`, `"p99_latency_ms"`,
		`"max_inaccuracy_m"`, `"max_rung"`, `"result_hash"`,
	} {
		if !bytes.Contains(a, []byte(field)) {
			t.Errorf("artifact schema is missing %s", field)
		}
	}
}

// TestReportTable: the human-readable plan renders the recommendation and
// one row per combo.
func TestReportTable(t *testing.T) {
	cfg := testPlanConfig()
	cfg.Scenarios = []string{"blackout"}
	rep, err := Plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tbl := rep.Table()
	if !strings.Contains(tbl, "recommended") {
		t.Errorf("table missing recommendation marker:\n%s", tbl)
	}
	for _, combo := range rep.Combos {
		if !strings.Contains(tbl, combo.Policy) {
			t.Errorf("table missing policy %s", combo.Policy)
		}
	}
	if !strings.Contains(tbl, "blackout") {
		t.Errorf("table missing per-scenario breakdown:\n%s", tbl)
	}
}

// TestRungFromName round-trips every ladder rung and rejects junk.
func TestRungFromName(t *testing.T) {
	for st := admission.Healthy; st <= admission.Critical; st++ {
		got, err := RungFromName(st.String())
		if err != nil || got != st {
			t.Errorf("RungFromName(%q) = %v, %v", st.String(), got, err)
		}
	}
	if _, err := RungFromName("meltdown"); err == nil {
		t.Error("unknown rung accepted")
	}
}

package plan

import (
	"fmt"
	"sort"

	"lira/internal/admission"
	"lira/internal/controlplane"
	"lira/internal/geo"
	"lira/internal/workload"
)

// SLO is the operator's service-level objective, one bound per planner
// axis (the internal/slo target kinds).
type SLO struct {
	// P99LatencyMS bounds the 99th-percentile modeled Evaluate latency.
	P99LatencyMS float64 `json:"p99_latency_ms"`
	// MaxInaccuracyM bounds the query-weighted mean shedding imprecision
	// in meters.
	MaxInaccuracyM float64 `json:"max_inaccuracy_m"`
	// MaxRung bounds how far up the admission ladder a run may climb.
	MaxRung admission.State `json:"-"`
	// MaxRungName is MaxRung's string form, for the JSON artifact.
	MaxRungName string `json:"max_rung"`
}

// Config parameterizes one planning run.
type Config struct {
	// Nodes and Rate describe the fleet: population size and baseline
	// aggregate report rate (updates per tick).
	Nodes int
	Rate  float64
	// ServicePerShard is the modeled per-shard drain capacity in updates
	// per tick (0 selects Rate — one shard exactly keeps up with the
	// baseline and the overloads create the planning tension).
	ServicePerShard float64
	// SpaceSide is the side of the monitored square in meters (0 selects
	// 6000).
	SpaceSide float64
	// Seed drives every scenario and thinning decision.
	Seed uint64
	// L is the shedding-region count (0 selects 13).
	L int
	// Shards, ZClamps, Policies, Scenarios define the sweep grid. Empty
	// slices select the defaults: K ∈ {1,2,4}, z ∈ {1.0,0.7,0.4}, every
	// controlplane policy, every catalog scenario.
	Shards    []int
	ZClamps   []float64
	Policies  []string
	Scenarios []string
	// Objective is the SLO candidates are judged against.
	Objective SLO
	// Progress, when non-nil, is called once per completed cell —
	// liraplan points it at stderr.
	Progress func(done, total int, o *Outcome)
}

func (c *Config) fillDefaults() {
	if c.ServicePerShard <= 0 {
		c.ServicePerShard = c.Rate
	}
	if c.SpaceSide <= 0 {
		c.SpaceSide = 6000
	}
	if c.L <= 0 {
		c.L = 13
	}
	if len(c.Shards) == 0 {
		c.Shards = []int{1, 2, 4}
	}
	if len(c.ZClamps) == 0 {
		c.ZClamps = []float64{1.0, 0.7, 0.4}
	}
	if len(c.Policies) == 0 {
		for _, pol := range controlplane.Policies() {
			c.Policies = append(c.Policies, pol.Name())
		}
	}
	if len(c.Scenarios) == 0 {
		c.Scenarios = workload.CatalogNames()
	}
	c.Objective.MaxRungName = c.Objective.MaxRung.String()
}

// Combo is one candidate configuration with its per-scenario outcomes.
type Combo struct {
	Shards   int     `json:"shards"`
	ZClamp   float64 `json:"z_clamp"`
	Policy   string  `json:"policy"`
	Feasible bool    `json:"feasible"`
	// WorstP99MS / WorstInaccuracyM / WorstRung are the combo's worst
	// case across scenarios — what the SLO is checked against.
	WorstP99MS       float64    `json:"worst_p99_ms"`
	WorstInaccuracyM float64    `json:"worst_inaccuracy_m"`
	WorstRung        string     `json:"worst_rung"`
	Outcomes         []*Outcome `json:"outcomes"`
}

// Plan sweeps the grid in cheapest-first order and returns the full
// measured table plus the first (= cheapest) combo feasible on every
// scenario. The order is deliberate and documented (DESIGN.md §5j):
// shards ascending (hardware is the real cost), then z-clamp descending
// (shed as little as possible), then policy in controlplane registry
// order (simplest computation first). Every cell is still simulated, so
// the artifact carries the complete measured curve per policy per
// scenario, not just the winner.
func Plan(cfg Config) (*Report, error) {
	cfg.fillDefaults()
	if cfg.Nodes <= 0 || cfg.Rate <= 0 {
		return nil, fmt.Errorf("plan: need positive nodes and rate, got %d, %v", cfg.Nodes, cfg.Rate)
	}
	zClamps := append([]float64(nil), cfg.ZClamps...)
	sort.Sort(sort.Reverse(sort.Float64Slice(zClamps)))
	shards := append([]int(nil), cfg.Shards...)
	sort.Ints(shards)
	space := geo.Rect{MinX: 0, MinY: 0, MaxX: cfg.SpaceSide, MaxY: cfg.SpaceSide}

	rep := &Report{
		Nodes:           cfg.Nodes,
		Rate:            cfg.Rate,
		ServicePerShard: cfg.ServicePerShard,
		SpaceSide:       cfg.SpaceSide,
		Seed:            cfg.Seed,
		L:               cfg.L,
		SLO:             cfg.Objective,
		Scenarios:       cfg.Scenarios,
		GridShards:      shards,
		GridZClamps:     zClamps,
		GridPolicies:    cfg.Policies,
	}
	total := len(shards) * len(zClamps) * len(cfg.Policies) * len(cfg.Scenarios)
	done := 0
	for _, k := range shards {
		for _, z := range zClamps {
			for _, polName := range cfg.Policies {
				combo := &Combo{Shards: k, ZClamp: z, Policy: polName, Feasible: true, WorstRung: admission.Healthy.String()}
				worstRung := admission.Healthy
				for _, scen := range cfg.Scenarios {
					o, err := Simulate(SimConfig{
						Scenario:        scen,
						Space:           space,
						Nodes:           cfg.Nodes,
						Rate:            cfg.Rate,
						Seed:            cfg.Seed,
						Shards:          k,
						ZClamp:          z,
						Policy:          polName,
						ServicePerShard: cfg.ServicePerShard,
						L:               cfg.L,
					})
					if err != nil {
						return nil, err
					}
					combo.Outcomes = append(combo.Outcomes, o)
					combo.Feasible = combo.Feasible && o.MeetsSLO(cfg.Objective)
					if o.P99LatencyMS > combo.WorstP99MS {
						combo.WorstP99MS = o.P99LatencyMS
					}
					if o.MeanInaccuracyM > combo.WorstInaccuracyM {
						combo.WorstInaccuracyM = o.MeanInaccuracyM
					}
					if o.maxRung > worstRung {
						worstRung = o.maxRung
						combo.WorstRung = worstRung.String()
					}
					done++
					if cfg.Progress != nil {
						cfg.Progress(done, total, o)
					}
				}
				rep.Combos = append(rep.Combos, combo)
				if combo.Feasible && rep.Recommended == nil {
					rep.Recommended = combo
				}
			}
		}
	}
	rep.Feasible = rep.Recommended != nil

	// Replay verification: re-simulate the recommendation on every
	// scenario and require byte-identical outcomes that still meet the
	// SLO — the planner's own determinism check, embedded in the
	// artifact.
	if rep.Recommended != nil {
		rep.Verified = true
		for i, scen := range cfg.Scenarios {
			o, err := Simulate(SimConfig{
				Scenario:        scen,
				Space:           space,
				Nodes:           cfg.Nodes,
				Rate:            cfg.Rate,
				Seed:            cfg.Seed,
				Shards:          rep.Recommended.Shards,
				ZClamp:          rep.Recommended.ZClamp,
				Policy:          rep.Recommended.Policy,
				ServicePerShard: cfg.ServicePerShard,
				L:               cfg.L,
			})
			if err != nil {
				return nil, err
			}
			first := rep.Recommended.Outcomes[i]
			if *o != *first || !o.MeetsSLO(cfg.Objective) {
				rep.Verified = false
			}
		}
	}
	return rep, nil
}

// RungFromName parses an admission-ladder rung name ("healthy",
// "warning", "shed", "critical") for the liraplan CLI.
func RungFromName(name string) (admission.State, error) {
	for st := admission.Healthy; st <= admission.Critical; st++ {
		if st.String() == name {
			return st, nil
		}
	}
	return 0, fmt.Errorf("plan: unknown admission rung %q", name)
}

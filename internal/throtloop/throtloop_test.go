package throtloop

import (
	"math"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(1); err == nil {
		t.Error("B=1 should be rejected")
	}
	c, err := New(100)
	if err != nil {
		t.Fatal(err)
	}
	if c.Z() != 1 {
		t.Errorf("initial z = %v, want 1", c.Z())
	}
}

func TestTargetUtilization(t *testing.T) {
	c, _ := New(100)
	if got := c.TargetUtilization(); math.Abs(got-0.99) > 1e-12 {
		t.Errorf("target = %v, want 0.99", got)
	}
}

func TestOverloadShrinksZ(t *testing.T) {
	c, _ := New(100)
	z := c.Observe(1.98) // utilization double the target
	if math.Abs(z-0.5) > 1e-9 {
		t.Errorf("z after 2x overload = %v, want 0.5", z)
	}
	z = c.Observe(1.98)
	if math.Abs(z-0.25) > 1e-9 {
		t.Errorf("z after second 2x overload = %v, want 0.25", z)
	}
}

func TestUnderloadGrowsZCappedAtOne(t *testing.T) {
	c, _ := New(100)
	c.Observe(1.98) // z = 0.5
	z := c.Observe(0.495)
	if math.Abs(z-1.0) > 1e-9 {
		t.Errorf("z after halved load = %v, want 1", z)
	}
	z = c.Observe(0.1)
	if z != 1 {
		t.Errorf("z must cap at 1, got %v", z)
	}
}

func TestIdlePeriodResetsToOne(t *testing.T) {
	c, _ := New(50)
	c.Observe(3)
	if z := c.Observe(0); z != 1 {
		t.Errorf("idle period should reset z to 1, got %v", z)
	}
}

func TestFloor(t *testing.T) {
	c, _ := New(100)
	c.SetFloor(0.25)
	for i := 0; i < 10; i++ {
		c.Observe(5)
	}
	if c.Z() != 0.25 {
		t.Errorf("z = %v, want floor 0.25", c.Z())
	}
	c.SetFloor(-1)
	c.SetFloor(2)
	if c.Z() != 0.25 {
		t.Errorf("clamped floors should not move z: %v", c.Z())
	}
}

func TestConvergenceUnderConstantOverload(t *testing.T) {
	// A plant whose offered utilization is proportional to z: starting
	// overloaded by 3x, the loop should converge so that the effective
	// utilization equals the target.
	c, _ := New(100)
	offered := 3.0 // utilization at z=1
	var rho float64
	for i := 0; i < 30; i++ {
		rho = offered * c.Z()
		c.Observe(rho)
	}
	target := c.TargetUtilization()
	if math.Abs(rho-target) > 0.02 {
		t.Errorf("converged utilization %v, want ~%v", rho, target)
	}
	if math.Abs(c.Z()-target/offered) > 0.02 {
		t.Errorf("converged z = %v, want ~%v", c.Z(), target/offered)
	}
	if c.Rounds() != 30 {
		t.Errorf("Rounds = %d", c.Rounds())
	}
}

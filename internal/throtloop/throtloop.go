// Package throtloop implements THROTLOOP (§3.4): the feedback controller
// that adapts the throttle fraction z from the observed utilization of the
// position-update input queue.
//
// Under an M/M/1 model, keeping the average queue length within the
// maximum queue size B requires utilization ρ = 1 − 1/B. Each period the
// controller computes u = ρ / (1 − B⁻¹) and scales the throttle fraction:
//
//	z⁽ⁱ⁾ ← min(1, z⁽ⁱ⁻¹⁾ / u)
//
// Overload (u > 1) shrinks z; slack (u < 1) grows it back toward 1.
package throtloop

import "fmt"

// Controller adapts the throttle fraction. The zero value is unusable;
// construct with New.
type Controller struct {
	b        int
	z        float64
	minZ     float64
	rounds   int
	recorder func(rho, z float64, b int)
}

// New returns a controller for a queue of maximum size b. The initial
// throttle fraction is 1 (no shedding), per the paper's initialization.
func New(b int) (*Controller, error) {
	if b < 2 {
		return nil, fmt.Errorf("throtloop: queue size %d must be at least 2", b)
	}
	return &Controller{b: b, z: 1, minZ: 0}, nil
}

// SetFloor sets a lower bound on z. The paper's system converges to
// ∀Δᵢ = Δ⊣ when the budget is unreachable; a floor keeps the controller
// from chasing a budget below the system's minimum expenditure.
func (c *Controller) SetFloor(min float64) {
	if min < 0 {
		min = 0
	}
	if min > 1 {
		min = 1
	}
	c.minZ = min
}

// SetRecorder installs a callback invoked after every Observe with the
// observed utilization, the resulting throttle fraction, and the queue
// size B. It exists for the telemetry decision journal; the controller's
// arithmetic is unaffected. A nil recorder disables recording.
func (c *Controller) SetRecorder(fn func(rho, z float64, b int)) {
	c.recorder = fn
}

// Z returns the current throttle fraction.
func (c *Controller) Z() float64 { return c.z }

// Rounds returns the number of Observe calls so far.
func (c *Controller) Rounds() int { return c.rounds }

// TargetUtilization returns ρ* = 1 − 1/B.
func (c *Controller) TargetUtilization() float64 {
	return 1 - 1/float64(c.b)
}

// Observe folds one period's measured utilization ρ = λ/μ into the
// controller and returns the new throttle fraction. A zero utilization
// (idle period) is treated as maximal slack and pushes z back to 1.
func (c *Controller) Observe(rho float64) float64 {
	c.rounds++
	if rho <= 0 {
		c.z = 1
	} else {
		u := rho / c.TargetUtilization()
		c.z = c.z / u
		if c.z > 1 {
			c.z = 1
		}
		if c.z < c.minZ {
			c.z = c.minZ
		}
	}
	if c.recorder != nil {
		c.recorder(rho, c.z, c.b)
	}
	return c.z
}

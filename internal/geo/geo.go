// Package geo provides the planar geometry primitives used throughout the
// LIRA system: points, vectors, and axis-aligned rectangles with the
// clipping and fractional-overlap operations the statistics grid and the
// partitioning algorithms rely on.
//
// All coordinates are in meters. The monitored space is modeled as a
// rectangle with its origin at the lower-left corner.
package geo

import (
	"fmt"
	"math"
)

// Point is a location in the plane, in meters.
type Point struct {
	X, Y float64
}

// Add returns p translated by v.
func (p Point) Add(v Vector) Point { return Point{p.X + v.X, p.Y + v.Y} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Vector { return Vector{p.X - q.X, p.Y - q.Y} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.1f, %.1f)", p.X, p.Y) }

// Vector is a displacement or velocity in the plane. When used as a
// velocity its unit is meters per second.
type Vector struct {
	X, Y float64
}

// Scale returns v scaled by k.
func (v Vector) Scale(k float64) Vector { return Vector{v.X * k, v.Y * k} }

// Add returns the component-wise sum of v and w.
func (v Vector) Add(w Vector) Vector { return Vector{v.X + w.X, v.Y + w.Y} }

// Len returns the Euclidean length of v.
func (v Vector) Len() float64 { return math.Hypot(v.X, v.Y) }

// Unit returns the unit vector in the direction of v. The zero vector is
// returned unchanged.
func (v Vector) Unit() Vector {
	l := v.Len()
	if l == 0 {
		return v
	}
	return Vector{v.X / l, v.Y / l}
}

// Rect is an axis-aligned rectangle [MinX, MaxX) × [MinY, MaxY).
// The half-open convention makes uniform grid tessellations exact: every
// point of the space belongs to exactly one cell.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// NewRect returns the rectangle with the given corners, normalizing the
// coordinate order.
func NewRect(x0, y0, x1, y1 float64) Rect {
	if x1 < x0 {
		x0, x1 = x1, x0
	}
	if y1 < y0 {
		y0, y1 = y1, y0
	}
	return Rect{MinX: x0, MinY: y0, MaxX: x1, MaxY: y1}
}

// Square returns the axis-aligned square centered at c with the given side
// length.
func Square(c Point, side float64) Rect {
	h := side / 2
	return Rect{MinX: c.X - h, MinY: c.Y - h, MaxX: c.X + h, MaxY: c.Y + h}
}

// Width returns the extent of r along the x axis.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the extent of r along the y axis.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Area returns the area of r. Degenerate rectangles have zero area.
func (r Rect) Area() float64 {
	if r.Empty() {
		return 0
	}
	return r.Width() * r.Height()
}

// Empty reports whether r contains no points.
func (r Rect) Empty() bool { return r.MaxX <= r.MinX || r.MaxY <= r.MinY }

// Center returns the center point of r.
func (r Rect) Center() Point {
	return Point{(r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2}
}

// Contains reports whether p lies inside r, using the half-open convention.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X < r.MaxX && p.Y >= r.MinY && p.Y < r.MaxY
}

// ContainsClosed reports whether p lies inside the closure of r. Range
// queries use the closed convention so that results are insensitive to
// nodes sitting exactly on a query boundary.
func (r Rect) ContainsClosed(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// Intersects reports whether r and s share any area.
func (r Rect) Intersects(s Rect) bool {
	return r.MinX < s.MaxX && s.MinX < r.MaxX && r.MinY < s.MaxY && s.MinY < r.MaxY
}

// Intersect returns the intersection of r and s. The result is empty when
// the rectangles do not overlap.
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		MinX: math.Max(r.MinX, s.MinX),
		MinY: math.Max(r.MinY, s.MinY),
		MaxX: math.Min(r.MaxX, s.MaxX),
		MaxY: math.Min(r.MaxY, s.MaxY),
	}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// OverlapFraction returns the fraction of r's area that lies inside s.
// It returns 0 for a degenerate r. This is the "fractional counting" used
// when a query partially intersects a shedding region.
func (r Rect) OverlapFraction(s Rect) float64 {
	a := r.Area()
	if a == 0 {
		return 0
	}
	return r.Intersect(s).Area() / a
}

// ClampPoint returns the point of r closest to p.
func (r Rect) ClampPoint(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, r.MinX), r.MaxX),
		Y: math.Min(math.Max(p.Y, r.MinY), r.MaxY),
	}
}

// Quadrants splits r into its four equal quadrants in the order
// SW, SE, NW, NE (matching the child order of the region quad-tree).
func (r Rect) Quadrants() [4]Rect {
	cx, cy := (r.MinX+r.MaxX)/2, (r.MinY+r.MaxY)/2
	return [4]Rect{
		{r.MinX, r.MinY, cx, cy},
		{cx, r.MinY, r.MaxX, cy},
		{r.MinX, cy, cx, r.MaxY},
		{cx, cy, r.MaxX, r.MaxY},
	}
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%.1f,%.1f]x[%.1f,%.1f]", r.MinX, r.MaxX, r.MinY, r.MaxY)
}

package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointDist(t *testing.T) {
	p := Point{0, 0}
	q := Point{3, 4}
	if got := p.Dist(q); got != 5 {
		t.Errorf("Dist = %v, want 5", got)
	}
	if got := p.Dist(p); got != 0 {
		t.Errorf("Dist to self = %v, want 0", got)
	}
}

func TestVectorOps(t *testing.T) {
	v := Vector{3, 4}
	if got := v.Len(); got != 5 {
		t.Errorf("Len = %v, want 5", got)
	}
	u := v.Unit()
	if math.Abs(u.Len()-1) > 1e-12 {
		t.Errorf("Unit().Len() = %v, want 1", u.Len())
	}
	if z := (Vector{}).Unit(); z != (Vector{}) {
		t.Errorf("Unit of zero vector = %v, want zero", z)
	}
	if got := v.Scale(2); got != (Vector{6, 8}) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Add(Vector{1, 1}); got != (Vector{4, 5}) {
		t.Errorf("Add = %v", got)
	}
}

func TestNewRectNormalizes(t *testing.T) {
	r := NewRect(10, 20, 0, 5)
	want := Rect{MinX: 0, MinY: 5, MaxX: 10, MaxY: 20}
	if r != want {
		t.Errorf("NewRect = %v, want %v", r, want)
	}
}

func TestSquare(t *testing.T) {
	r := Square(Point{10, 10}, 4)
	if r.Width() != 4 || r.Height() != 4 {
		t.Errorf("Square dims = %v x %v, want 4 x 4", r.Width(), r.Height())
	}
	if r.Center() != (Point{10, 10}) {
		t.Errorf("Square center = %v", r.Center())
	}
}

func TestRectContainsHalfOpen(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{0, 0}, true},
		{Point{5, 5}, true},
		{Point{10, 5}, false}, // max edge excluded
		{Point{5, 10}, false},
		{Point{-0.001, 5}, false},
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !r.ContainsClosed(Point{10, 10}) {
		t.Error("ContainsClosed should include the max corner")
	}
}

func TestRectIntersect(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	b := Rect{5, 5, 15, 15}
	got := a.Intersect(b)
	want := Rect{5, 5, 10, 10}
	if got != want {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	c := Rect{20, 20, 30, 30}
	if !a.Intersect(c).Empty() {
		t.Error("disjoint rects should intersect to empty")
	}
	if a.Intersects(c) {
		t.Error("Intersects should be false for disjoint rects")
	}
	// Touching edges share no area.
	d := Rect{10, 0, 20, 10}
	if a.Intersects(d) {
		t.Error("edge-touching rects should not intersect")
	}
}

func TestOverlapFraction(t *testing.T) {
	q := Rect{0, 0, 10, 10}
	region := Rect{5, 0, 20, 10}
	if got := q.OverlapFraction(region); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("OverlapFraction = %v, want 0.5", got)
	}
	if got := q.OverlapFraction(q); got != 1 {
		t.Errorf("self overlap = %v, want 1", got)
	}
	if got := (Rect{}).OverlapFraction(q); got != 0 {
		t.Errorf("degenerate overlap = %v, want 0", got)
	}
}

func TestQuadrantsPartition(t *testing.T) {
	r := Rect{0, 0, 8, 8}
	qs := r.Quadrants()
	total := 0.0
	for _, q := range qs {
		total += q.Area()
	}
	if math.Abs(total-r.Area()) > 1e-9 {
		t.Errorf("quadrant areas sum to %v, want %v", total, r.Area())
	}
	// SW, SE, NW, NE ordering.
	if qs[0] != (Rect{0, 0, 4, 4}) || qs[3] != (Rect{4, 4, 8, 8}) {
		t.Errorf("quadrant order wrong: %v", qs)
	}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if qs[i].Intersects(qs[j]) {
				t.Errorf("quadrants %d and %d overlap", i, j)
			}
		}
	}
}

func TestClampPoint(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	if got := r.ClampPoint(Point{-5, 5}); got != (Point{0, 5}) {
		t.Errorf("ClampPoint = %v", got)
	}
	if got := r.ClampPoint(Point{3, 30}); got != (Point{3, 10}) {
		t.Errorf("ClampPoint = %v", got)
	}
	if got := r.ClampPoint(Point{3, 4}); got != (Point{3, 4}) {
		t.Errorf("ClampPoint of interior point = %v", got)
	}
}

// Property: every point of a rect lies in exactly one quadrant (half-open
// tessellation).
func TestQuadrantsExactCoverProperty(t *testing.T) {
	f := func(px, py uint16) bool {
		r := Rect{0, 0, 100, 100}
		p := Point{float64(px) / 656.0, float64(py) / 656.0} // within [0,100)
		n := 0
		for _, q := range r.Quadrants() {
			if q.Contains(p) {
				n++
			}
		}
		return n == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: intersection is commutative and contained in both operands.
func TestIntersectProperty(t *testing.T) {
	f := func(a, b, c, d, e, g, h, i int8) bool {
		r := NewRect(float64(a), float64(b), float64(c), float64(d))
		s := NewRect(float64(e), float64(g), float64(h), float64(i))
		x := r.Intersect(s)
		y := s.Intersect(r)
		if x != y {
			return false
		}
		if x.Empty() {
			return true
		}
		return x.Area() <= r.Area()+1e-9 && x.Area() <= s.Area()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Package partition implements GRIDREDUCE (§3.2, Algorithm 1): the
// region-aware partitioning of the monitored space into l shedding
// regions.
//
// Stage I builds a complete quad-tree over the α×α statistics grid and
// aggregates node counts, query counts, and speeds bottom-up. Stage II
// drills down from the root, always splitting the explored region with the
// highest accuracy gain V[t] = E[t] − E_p[t], where E and E_p are the
// optimal inaccuracies of keeping the region whole versus splitting it in
// four — each computed with the GREEDYINCREMENT core. The package also
// provides the uniform l-partitioning used by the Lira-Grid baseline.
package partition

import (
	"fmt"
	"math"

	"lira/internal/container/iheap"
	"lira/internal/fmodel"
	"lira/internal/geo"
	"lira/internal/statgrid"
	"lira/internal/throttler"
)

// Region is one shedding region with its aggregated statistics.
type Region struct {
	Area geo.Rect
	// N is the average number of mobile nodes in the region, M the
	// fractional query count, and S the average node speed.
	N, M, S float64
}

// Stat returns the region's statistics in the optimizer's input form.
func (r Region) Stat() throttler.RegionStat {
	return throttler.RegionStat{N: r.N, M: r.M, S: r.S}
}

// DrillStats summarizes the Stage-II drill-down decisions behind a
// partitioning, for the telemetry decision journal.
type DrillStats struct {
	// SplitsTaken counts gain-driven expansions of a region into its four
	// children; SplitsRejected counts popped regions that turned out to be
	// unsplittable grid-cell leaves; ProtectSplits counts splits spent by
	// the query-protection phase.
	SplitsTaken    int
	SplitsRejected int
	ProtectSplits  int
}

// Partitioning is a disjoint cover of the monitored space by shedding
// regions.
type Partitioning struct {
	Space   geo.Rect
	Regions []Region
	// Drill reports how GridReduce arrived at the regions; zero for the
	// Uniform and Single constructions.
	Drill DrillStats
}

// Stats returns the per-region statistics in the optimizer's input form.
func (p *Partitioning) Stats() []throttler.RegionStat {
	out := make([]throttler.RegionStat, len(p.Regions))
	for i, r := range p.Regions {
		out[i] = r.Stat()
	}
	return out
}

// Locate returns the index of the region containing point pt, or -1 when
// pt is outside the space. Linear scan; the mobile-node side uses
// mobilenode.Index for O(1) lookup instead.
func (p *Partitioning) Locate(pt geo.Point) int {
	for i, r := range p.Regions {
		if r.Area.Contains(pt) {
			return i
		}
	}
	// The half-open convention excludes the space's top and right edges;
	// tolerate boundary points by a closed-containment second pass.
	for i, r := range p.Regions {
		if r.Area.ContainsClosed(pt) {
			return i
		}
	}
	return -1
}

// ValidRegionCount returns the largest region count ≤ l reachable by
// quad-tree drill-down, i.e. the largest value ≤ l with count ≡ 1 (mod 3).
// GRIDREDUCE targets this count; the paper assumes l mod 3 = 1 outright.
func ValidRegionCount(l int) int {
	if l < 1 {
		return 1
	}
	return l - (l-1)%3
}

// Config parameterizes GridReduce.
type Config struct {
	// L is the desired number of shedding regions. It is rounded down to
	// the nearest valid count (≡ 1 mod 3).
	L int
	// Z is the throttle fraction used inside the accuracy-gain
	// computation.
	Z float64
	// Curve is the update reduction function.
	Curve *fmodel.Curve
	// ProtectQueries is an extension beyond the paper (see DESIGN.md
	// §5a): it reserves this fraction of the drill-down splits for the
	// query-bearing regions with the highest node-to-query mass ratio —
	// the regions whose queries the global throttler setting is most
	// likely to sacrifice. Zero (the default) is the paper's exact
	// algorithm.
	ProtectQueries float64
}

// AlphaFor returns the statistics-grid resolution α = 2^⌊log₂(x·√l)⌋ from
// §3.2.5; x = 10 gives the paper's ≈100× area flexibility.
func AlphaFor(l int, x float64) int {
	if l < 1 {
		l = 1
	}
	if x <= 0 {
		x = 10
	}
	e := int(math.Floor(math.Log2(x * math.Sqrt(float64(l)))))
	if e < 0 {
		e = 0
	}
	return 1 << e
}

// quadTree holds the Stage-I aggregation. Level d is a 2^d × 2^d grid of
// regions; level depth equals log2(alpha).
type quadTree struct {
	space geo.Rect
	depth int // leaf level
	// n, m, s indexed by [level][row*side+col]
	n, m, s [][]float64
}

// nodeRef identifies a tree node.
type nodeRef struct {
	level, col, row int
}

func (t *quadTree) side(level int) int { return 1 << level }

func (t *quadTree) idx(r nodeRef) int { return r.row*t.side(r.level) + r.col }

func (t *quadTree) rect(r nodeRef) geo.Rect {
	side := float64(t.side(r.level))
	w := t.space.Width() / side
	h := t.space.Height() / side
	return geo.Rect{
		MinX: t.space.MinX + float64(r.col)*w,
		MinY: t.space.MinY + float64(r.row)*h,
		MaxX: t.space.MinX + float64(r.col+1)*w,
		MaxY: t.space.MinY + float64(r.row+1)*h,
	}
}

func (t *quadTree) children(r nodeRef) [4]nodeRef {
	return [4]nodeRef{
		{r.level + 1, 2 * r.col, 2 * r.row},
		{r.level + 1, 2*r.col + 1, 2 * r.row},
		{r.level + 1, 2 * r.col, 2*r.row + 1},
		{r.level + 1, 2*r.col + 1, 2*r.row + 1},
	}
}

func (t *quadTree) stat(r nodeRef) throttler.RegionStat {
	i := t.idx(r)
	return throttler.RegionStat{N: t.n[r.level][i], M: t.m[r.level][i], S: t.s[r.level][i]}
}

// buildTree aggregates the statistics grid bottom-up (Stage I, O(α²)).
// The grid's alpha must be a power of two.
func buildTree(g *statgrid.Grid) (*quadTree, error) {
	alpha := g.Alpha()
	if alpha&(alpha-1) != 0 {
		return nil, fmt.Errorf("partition: alpha %d is not a power of two", alpha)
	}
	depth := 0
	for 1<<depth < alpha {
		depth++
	}
	t := &quadTree{space: g.Space(), depth: depth}
	t.n = make([][]float64, depth+1)
	t.m = make([][]float64, depth+1)
	t.s = make([][]float64, depth+1)
	for d := 0; d <= depth; d++ {
		side := t.side(d)
		t.n[d] = make([]float64, side*side)
		t.m[d] = make([]float64, side*side)
		t.s[d] = make([]float64, side*side)
	}
	// Leaves from the grid cells.
	for j := 0; j < alpha; j++ {
		for i := 0; i < alpha; i++ {
			n, m, s := g.Cell(i, j)
			c := j*alpha + i
			t.n[depth][c] = n
			t.m[depth][c] = m
			t.s[depth][c] = s
		}
	}
	// Upward aggregation: n and m sum; s is the node-weighted mean.
	for d := depth - 1; d >= 0; d-- {
		side := t.side(d)
		for row := 0; row < side; row++ {
			for col := 0; col < side; col++ {
				ref := nodeRef{d, col, row}
				var n, m, sw float64
				for _, ch := range t.children(ref) {
					ci := t.idx(ch)
					n += t.n[d+1][ci]
					m += t.m[d+1][ci]
					sw += t.n[d+1][ci] * t.s[d+1][ci]
				}
				i := t.idx(ref)
				t.n[d][i] = n
				t.m[d][i] = m
				if n > 0 {
					t.s[d][i] = sw / n
				} else {
					// Preserve a plausible speed for empty regions: plain
					// mean of children.
					var sum float64
					for _, ch := range t.children(ref) {
						sum += t.s[d+1][t.idx(ch)]
					}
					t.s[d][i] = sum / 4
				}
			}
		}
	}
	return t, nil
}

// accuracyGain computes V[t] = E[t] − E_p[t] (CALCERRGAIN in Algorithm 1):
// the reduction in optimal inaccuracy from splitting node ref into its
// four children, under throttle fraction z.
func (t *quadTree) accuracyGain(ref nodeRef, z float64, curve *fmodel.Curve) float64 {
	if ref.level == t.depth {
		return 0 // grid-cell leaf: no further partitioning is possible
	}
	st := t.stat(ref)
	// E: one region. The optimal single Δ is the smallest with
	// f(Δ) ≤ z·f(Δ⊢).
	e := st.M * curve.Invert(z)

	children := t.children(ref)
	stats := make([]throttler.RegionStat, 4)
	for i, ch := range children {
		stats[i] = t.stat(ch)
	}
	res, err := throttler.SetThrottlers(stats, curve, throttler.Options{
		Z:        z,
		Fairness: throttler.NoFairness(curve),
	})
	if err != nil {
		// Options are constructed valid; an error here is a programming
		// bug, not an input condition.
		panic(err)
	}
	ep := res.InAcc
	if gain := e - ep; gain > 0 {
		return gain
	}
	return 0
}

// GridReduce builds the (α,l)-partitioning over the statistics grid.
func GridReduce(g *statgrid.Grid, cfg Config) (*Partitioning, error) {
	if cfg.Curve == nil {
		return nil, fmt.Errorf("partition: nil curve")
	}
	if cfg.Z < 0 || cfg.Z > 1 {
		return nil, fmt.Errorf("partition: throttle fraction %v outside [0,1]", cfg.Z)
	}
	if cfg.L < 1 {
		return nil, fmt.Errorf("partition: non-positive region count %d", cfg.L)
	}
	t, err := buildTree(g)
	if err != nil {
		return nil, err
	}
	target := ValidRegionCount(cfg.L)

	// Stage II: drill down by accuracy gain. The heap holds explored,
	// still-splittable nodes; leaves move to the final list.
	var h iheap.Heap
	refByID := map[int]nodeRef{}
	nextID := 0
	push := func(ref nodeRef) {
		id := nextID
		nextID++
		refByID[id] = ref
		h.Push(id, t.accuracyGain(ref, cfg.Z, cfg.Curve))
	}
	// Reserve a fraction of the splits for the query-protection phase.
	totalSplits := (target - 1) / 3
	protectSplits := 0
	if cfg.ProtectQueries > 0 {
		protectSplits = int(cfg.ProtectQueries * float64(totalSplits))
	}
	mainTarget := target - 3*protectSplits

	var drill DrillStats
	var leaves []nodeRef
	push(nodeRef{0, 0, 0})
	for len(leaves)+h.Len() < mainTarget && h.Len() > 0 {
		id, _ := h.PopMax()
		ref := refByID[id]
		delete(refByID, id)
		if ref.level == t.depth {
			drill.SplitsRejected++
			leaves = append(leaves, ref)
			continue
		}
		drill.SplitsTaken++
		for _, ch := range t.children(ref) {
			push(ch)
		}
	}

	// Protection phase (extension): split the splittable regions whose
	// queries are most exposed — large node mass per unit of query mass.
	if protectSplits > 0 {
		risk := func(ref nodeRef) float64 {
			st := t.stat(ref)
			if st.M <= 0 || ref.level == t.depth {
				return -1
			}
			return st.N * st.S / st.M
		}
		for s := 0; s < protectSplits; s++ {
			bestID, bestRisk := -1, 0.0
			for id, ref := range refByID {
				if r := risk(ref); r > bestRisk {
					bestID, bestRisk = id, r
				}
			}
			if bestID == -1 {
				// Nothing protectable left: spend the split on gain.
				if h.Len() == 0 {
					break
				}
				id, _ := h.PeekMax()
				bestID = id
				if refByID[bestID].level == t.depth {
					break
				}
			}
			ref := refByID[bestID]
			h.Remove(bestID)
			delete(refByID, bestID)
			drill.ProtectSplits++
			for _, ch := range t.children(ref) {
				push(ch)
			}
		}
	}

	p := &Partitioning{Space: t.space, Drill: drill}
	emit := func(ref nodeRef) {
		st := t.stat(ref)
		p.Regions = append(p.Regions, Region{Area: t.rect(ref), N: st.N, M: st.M, S: st.S})
	}
	for _, ref := range leaves {
		emit(ref)
	}
	for h.Len() > 0 {
		id, _ := h.PopMax()
		emit(refByID[id])
	}
	return p, nil
}

// Uniform builds the l-partitioning used by the Lira-Grid baseline:
// ⌊√l⌋ × ⌊√l⌋ equal regions with statistics aggregated from the grid by
// cell-center assignment.
func Uniform(g *statgrid.Grid, l int) (*Partitioning, error) {
	if l < 1 {
		return nil, fmt.Errorf("partition: non-positive region count %d", l)
	}
	k := int(math.Floor(math.Sqrt(float64(l))))
	if k < 1 {
		k = 1
	}
	space := g.Space()
	p := &Partitioning{Space: space}
	w := space.Width() / float64(k)
	h := space.Height() / float64(k)
	type agg struct{ n, m, sw, sn float64 }
	aggs := make([]agg, k*k)
	alpha := g.Alpha()
	for j := 0; j < alpha; j++ {
		for i := 0; i < alpha; i++ {
			n, m, s := g.Cell(i, j)
			c := g.CellRect(i, j).Center()
			ri := clampInt(int((c.X-space.MinX)/w), 0, k-1)
			rj := clampInt(int((c.Y-space.MinY)/h), 0, k-1)
			a := &aggs[rj*k+ri]
			a.n += n
			a.m += m
			a.sw += n * s
			a.sn += s
		}
	}
	cellsPerRegion := float64(alpha*alpha) / float64(k*k)
	for rj := 0; rj < k; rj++ {
		for ri := 0; ri < k; ri++ {
			a := aggs[rj*k+ri]
			s := 0.0
			if a.n > 0 {
				s = a.sw / a.n
			} else if cellsPerRegion > 0 {
				s = a.sn / cellsPerRegion
			}
			p.Regions = append(p.Regions, Region{
				Area: geo.Rect{
					MinX: space.MinX + float64(ri)*w,
					MinY: space.MinY + float64(rj)*h,
					MaxX: space.MinX + float64(ri+1)*w,
					MaxY: space.MinY + float64(rj+1)*h,
				},
				N: a.n, M: a.m, S: s,
			})
		}
	}
	return p, nil
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Single returns the trivial one-region partitioning covering the whole
// space, used by the Uniform Δ baseline.
func Single(g *statgrid.Grid) *Partitioning {
	t := &Partitioning{Space: g.Space()}
	var n, m, sw float64
	alpha := g.Alpha()
	count := 0.0
	var sSum float64
	for j := 0; j < alpha; j++ {
		for i := 0; i < alpha; i++ {
			cn, cm, cs := g.Cell(i, j)
			n += cn
			m += cm
			sw += cn * cs
			sSum += cs
			count++
		}
	}
	s := 0.0
	if n > 0 {
		s = sw / n
	} else if count > 0 {
		s = sSum / count
	}
	t.Regions = []Region{{Area: g.Space(), N: n, M: m, S: s}}
	return t
}

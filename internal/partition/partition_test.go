package partition

import (
	"math"
	"testing"
	"testing/quick"

	"lira/internal/fmodel"
	"lira/internal/geo"
	"lira/internal/rng"
	"lira/internal/statgrid"
)

func space() geo.Rect { return geo.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000} }

func curve() *fmodel.Curve { return fmodel.Hyperbolic(5, 100, 95) }

// skewedGrid builds a grid where nodes cluster in the SW corner and
// queries in the NE corner — maximal heterogeneity, so GRIDREDUCE has a
// real signal to follow.
func skewedGrid(alpha int) *statgrid.Grid {
	g := statgrid.New(space(), alpha)
	r := rng.New(5)
	var pos []geo.Point
	var sp []float64
	for i := 0; i < 2000; i++ {
		pos = append(pos, geo.Point{X: r.Range(0, 400), Y: r.Range(0, 400)})
		sp = append(sp, 20)
	}
	for i := 0; i < 100; i++ {
		pos = append(pos, geo.Point{X: r.Range(0, 1000), Y: r.Range(0, 1000)})
		sp = append(sp, 10)
	}
	g.Observe(pos, sp)
	var queries []geo.Rect
	for i := 0; i < 50; i++ {
		queries = append(queries, geo.Square(geo.Point{X: r.Range(600, 1000), Y: r.Range(600, 1000)}, 50))
	}
	g.SetQueries(queries)
	return g
}

func TestValidRegionCount(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 1, 4: 4, 5: 4, 6: 4, 7: 7, 250: 250, 251: 250, 0: 1, -3: 1}
	for in, want := range cases {
		if got := ValidRegionCount(in); got != want {
			t.Errorf("ValidRegionCount(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestAlphaFor(t *testing.T) {
	// Paper: l=250, x=10 → α = 2^⌊log2(10·√250)⌋ = 2^7 = 128.
	if got := AlphaFor(250, 10); got != 128 {
		t.Errorf("AlphaFor(250, 10) = %d, want 128", got)
	}
	// Paper: l=4000 → α = 512.
	if got := AlphaFor(4000, 10); got != 512 {
		t.Errorf("AlphaFor(4000, 10) = %d, want 512", got)
	}
	if got := AlphaFor(0, 0); got < 1 {
		t.Errorf("AlphaFor degenerate = %d", got)
	}
}

func TestGridReduceValidation(t *testing.T) {
	g := skewedGrid(16)
	if _, err := GridReduce(g, Config{L: 10, Z: 0.5, Curve: nil}); err == nil {
		t.Error("nil curve should error")
	}
	if _, err := GridReduce(g, Config{L: 0, Z: 0.5, Curve: curve()}); err == nil {
		t.Error("l=0 should error")
	}
	if _, err := GridReduce(g, Config{L: 10, Z: 2, Curve: curve()}); err == nil {
		t.Error("z>1 should error")
	}
	bad := statgrid.New(space(), 12) // not a power of two
	if _, err := GridReduce(bad, Config{L: 10, Z: 0.5, Curve: curve()}); err == nil {
		t.Error("non-power-of-two alpha should error")
	}
}

func TestGridReduceRegionCount(t *testing.T) {
	g := skewedGrid(16)
	for _, l := range []int{1, 4, 7, 13, 22, 40} {
		p, err := GridReduce(g, Config{L: l, Z: 0.5, Curve: curve()})
		if err != nil {
			t.Fatal(err)
		}
		if got := len(p.Regions); got != ValidRegionCount(l) {
			t.Errorf("l=%d: got %d regions, want %d", l, got, ValidRegionCount(l))
		}
	}
}

func TestGridReduceCapsAtLeafCount(t *testing.T) {
	g := skewedGrid(4) // 16 leaves max
	p, err := GridReduce(g, Config{L: 100, Z: 0.5, Curve: curve()})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Regions) != 16 {
		t.Errorf("got %d regions, want all 16 leaves", len(p.Regions))
	}
}

func checkCover(t *testing.T, p *Partitioning) {
	t.Helper()
	total := 0.0
	for _, r := range p.Regions {
		total += r.Area.Area()
	}
	if math.Abs(total-p.Space.Area()) > 1e-6*p.Space.Area() {
		t.Errorf("region areas sum to %v, space is %v", total, p.Space.Area())
	}
	for i := range p.Regions {
		for j := i + 1; j < len(p.Regions); j++ {
			if p.Regions[i].Area.Intersects(p.Regions[j].Area) {
				t.Errorf("regions %d and %d overlap: %v %v", i, j,
					p.Regions[i].Area, p.Regions[j].Area)
			}
		}
	}
}

func TestGridReducePartitionIsExactCover(t *testing.T) {
	g := skewedGrid(16)
	p, err := GridReduce(g, Config{L: 22, Z: 0.5, Curve: curve()})
	if err != nil {
		t.Fatal(err)
	}
	checkCover(t, p)
}

func TestGridReduceConservesMass(t *testing.T) {
	g := skewedGrid(16)
	p, err := GridReduce(g, Config{L: 13, Z: 0.5, Curve: curve()})
	if err != nil {
		t.Fatal(err)
	}
	var n, m float64
	for _, r := range p.Regions {
		n += r.N
		m += r.M
	}
	wantN, wantM := g.Totals()
	if math.Abs(n-wantN) > 1e-6*wantN {
		t.Errorf("node mass %v, want %v", n, wantN)
	}
	if math.Abs(m-wantM) > 1e-6*wantM {
		t.Errorf("query mass %v, want %v", m, wantM)
	}
}

func TestGridReduceSplitsWhereItMatters(t *testing.T) {
	// With nodes SW and queries NE, the drill-down should refine those
	// areas more than the empty quadrants: the minimum region size in the
	// busy corners must be smaller than in the dead space.
	g := skewedGrid(32)
	p, err := GridReduce(g, Config{L: 40, Z: 0.5, Curve: curve()})
	if err != nil {
		t.Fatal(err)
	}
	minBusy, minDead := math.Inf(1), math.Inf(1)
	for _, r := range p.Regions {
		c := r.Area.Center()
		busy := (c.X < 500 && c.Y < 500) || (c.X >= 500 && c.Y >= 500)
		if busy {
			minBusy = math.Min(minBusy, r.Area.Area())
		} else {
			minDead = math.Min(minDead, r.Area.Area())
		}
	}
	if !(minBusy < minDead) {
		t.Errorf("busy-corner min area %v should be below dead-corner min %v", minBusy, minDead)
	}
}

func TestLocate(t *testing.T) {
	g := skewedGrid(16)
	p, err := GridReduce(g, Config{L: 13, Z: 0.5, Curve: curve()})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(9)
	for i := 0; i < 500; i++ {
		pt := geo.Point{X: r.Range(0, 1000), Y: r.Range(0, 1000)}
		idx := p.Locate(pt)
		if idx < 0 {
			t.Fatalf("Locate(%v) = -1", pt)
		}
		if !p.Regions[idx].Area.Contains(pt) {
			t.Fatalf("Locate(%v) returned region not containing it", pt)
		}
	}
	// Boundary points resolve via the closed-containment fallback.
	if p.Locate(geo.Point{X: 1000, Y: 1000}) < 0 {
		t.Error("top-right corner should resolve")
	}
	if p.Locate(geo.Point{X: 5000, Y: 5000}) != -1 {
		t.Error("far outside point should return -1")
	}
}

func TestUniformPartitioning(t *testing.T) {
	g := skewedGrid(16)
	p, err := Uniform(g, 250)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Regions) != 15*15 {
		t.Errorf("got %d regions, want 225 (⌊√250⌋²)", len(p.Regions))
	}
	checkCover(t, p)
	var n, m float64
	for _, r := range p.Regions {
		n += r.N
		m += r.M
	}
	wantN, wantM := g.Totals()
	if math.Abs(n-wantN) > 1e-6*wantN || math.Abs(m-wantM) > 1e-6*math.Max(wantM, 1) {
		t.Errorf("mass not conserved: n=%v/%v m=%v/%v", n, wantN, m, wantM)
	}
	if _, err := Uniform(g, 0); err == nil {
		t.Error("l=0 should error")
	}
}

func TestSingle(t *testing.T) {
	g := skewedGrid(16)
	p := Single(g)
	if len(p.Regions) != 1 {
		t.Fatalf("Single returned %d regions", len(p.Regions))
	}
	if p.Regions[0].Area != space() {
		t.Errorf("Single region area %v", p.Regions[0].Area)
	}
	wantN, wantM := g.Totals()
	if math.Abs(p.Regions[0].N-wantN) > 1e-6*wantN {
		t.Errorf("N = %v, want %v", p.Regions[0].N, wantN)
	}
	if math.Abs(p.Regions[0].M-wantM) > 1e-6*wantM {
		t.Errorf("M = %v, want %v", p.Regions[0].M, wantM)
	}
	if p.Regions[0].S <= 0 {
		t.Error("aggregate speed should be positive")
	}
}

// Property: for any observation mix, GridReduce yields a disjoint exact
// cover with conserved node mass.
func TestGridReduceCoverProperty(t *testing.T) {
	f := func(seed uint64, lRaw, nRaw uint8) bool {
		r := rng.New(seed)
		g := statgrid.New(space(), 8)
		n := int(nRaw)%200 + 1
		pos := make([]geo.Point, n)
		sp := make([]float64, n)
		for i := range pos {
			pos[i] = geo.Point{X: r.Range(0, 1000), Y: r.Range(0, 1000)}
			sp[i] = r.Range(5, 30)
		}
		g.Observe(pos, sp)
		var queries []geo.Rect
		for i := 0; i < int(lRaw)%10; i++ {
			queries = append(queries, geo.Square(geo.Point{X: r.Range(0, 1000), Y: r.Range(0, 1000)}, r.Range(10, 200)))
		}
		g.SetQueries(queries)
		l := int(lRaw)%60 + 1
		p, err := GridReduce(g, Config{L: l, Z: r.Range(0.1, 1), Curve: curve()})
		if err != nil {
			return false
		}
		area := 0.0
		var massN float64
		for _, reg := range p.Regions {
			area += reg.Area.Area()
			massN += reg.N
		}
		if math.Abs(area-p.Space.Area()) > 1e-6*p.Space.Area() {
			return false
		}
		return math.Abs(massN-float64(n)) < 1e-6*float64(n)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestProtectQueriesExtension(t *testing.T) {
	// A world engineered to trigger the sacrifice artifact: one lone query
	// deep inside a node-heavy area, plus a strong node/query cluster
	// elsewhere that soaks up all the gain-ranked splits.
	g := statgrid.New(space(), 32)
	r := rng.New(21)
	var pos []geo.Point
	var sp []float64
	for i := 0; i < 3000; i++ { // node mass spread over the north half
		pos = append(pos, geo.Point{X: r.Range(0, 1000), Y: r.Range(500, 1000)})
		sp = append(sp, 15)
	}
	g.Observe(pos, sp)
	queries := []geo.Rect{geo.Square(geo.Point{X: 500, Y: 750}, 40)} // lone query in the node mass
	for i := 0; i < 30; i++ {                                        // query cluster in the empty south
		queries = append(queries, geo.Square(geo.Point{X: r.Range(0, 1000), Y: r.Range(0, 400)}, 60))
	}
	g.SetQueries(queries)

	base, err := GridReduce(g, Config{L: 22, Z: 0.5, Curve: curve()})
	if err != nil {
		t.Fatal(err)
	}
	prot, err := GridReduce(g, Config{L: 22, Z: 0.5, Curve: curve(), ProtectQueries: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	checkCover(t, prot)
	if len(prot.Regions) > len(base.Regions) {
		t.Errorf("protection must not exceed the region budget: %d > %d",
			len(prot.Regions), len(base.Regions))
	}
	// The lone query's containing region must be smaller (better isolated)
	// under protection than under the plain drill-down.
	target := geo.Point{X: 500, Y: 750}
	baseArea := base.Regions[base.Locate(target)].Area.Area()
	protArea := prot.Regions[prot.Locate(target)].Area.Area()
	if protArea > baseArea {
		t.Errorf("protected region area %v should not exceed base %v", protArea, baseArea)
	}
	// Risk of the lone query's region (n·s/m) must not increase.
	baseReg := base.Regions[base.Locate(target)]
	protReg := prot.Regions[prot.Locate(target)]
	if baseReg.M > 0 && protReg.M > 0 {
		baseRisk := baseReg.N * baseReg.S / baseReg.M
		protRisk := protReg.N * protReg.S / protReg.M
		if protRisk > baseRisk {
			t.Errorf("protected risk %v exceeds base %v", protRisk, baseRisk)
		}
	}
}

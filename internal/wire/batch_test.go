package wire

import (
	"bytes"
	"io"
	"math"
	"testing"
	"testing/quick"

	"lira/internal/geo"
	"lira/internal/motion"
	"lira/internal/rng"
)

func randomBatch(r *rng.Rand, n int) *UpdateBatch {
	var b UpdateBatch
	for i := 0; i < n; i++ {
		b.Append(Update{
			Node: uint32(r.Intn(1 << 20)),
			Report: motion.Report{
				Pos:  geo.Point{X: r.Float64()*20000 - 10000, Y: r.Float64()*20000 - 10000},
				Vel:  geo.Vector{X: r.Float64()*60 - 30, Y: r.Float64()*60 - 30},
				Time: r.Float64() * 1e6,
			},
		})
	}
	return &b
}

// Property: encode→decode reproduces the quantized input exactly, for
// arbitrary batch sizes including the 0 and 1 edges.
func TestUpdateBatchRoundTripProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		r := rng.New(seed)
		n := int(nRaw) % 300
		if seed%3 == 0 { // force the edge sizes often
			n = int(seed/3) % 2
		}
		b := randomBatch(r, n)
		frame := AppendUpdateBatch(nil, b)
		typ, payload, err := ReadFrame(bytes.NewReader(frame))
		if err != nil || typ != TypeUpdateBatch {
			return false
		}
		var got UpdateBatch
		if err := DecodeUpdateBatchInto(&got, payload); err != nil {
			return false
		}
		if got.Len() != n {
			return false
		}
		for i := 0; i < n; i++ {
			want := b.Update(i)
			want.Report = QuantizeReport(want.Report)
			if got.Update(i) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Quantized values are fixed points of the wire: encoding an
// already-decoded batch reproduces it bit for bit.
func TestUpdateBatchQuantizationIdempotent(t *testing.T) {
	r := rng.New(77)
	b := randomBatch(r, 64)
	var once UpdateBatch
	if err := DecodeUpdateBatchInto(&once, payloadOf(AppendUpdateBatch(nil, b))); err != nil {
		t.Fatal(err)
	}
	var twice UpdateBatch
	if err := DecodeUpdateBatchInto(&twice, payloadOf(AppendUpdateBatch(nil, &once))); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < once.Len(); i++ {
		if once.Update(i) != twice.Update(i) {
			t.Fatalf("record %d not a fixed point: %+v vs %+v", i, once.Update(i), twice.Update(i))
		}
	}
	// And the quantization helpers describe the wire exactly.
	for i := 0; i < b.Len(); i++ {
		want := b.Update(i)
		want.Report = QuantizeReport(want.Report)
		if once.Update(i) != want {
			t.Fatalf("record %d: decoded %+v, QuantizeReport says %+v", i, once.Update(i), want)
		}
	}
}

func TestUpdateBatchDecodeErrors(t *testing.T) {
	good := payloadOf(AppendUpdateBatch(nil, randomBatch(rng.New(1), 8)))
	var b UpdateBatch
	if err := DecodeUpdateBatchInto(&b, good); err != nil {
		t.Fatalf("good payload rejected: %v", err)
	}
	// Truncations at every prefix must error, never panic.
	for cut := 0; cut < len(good); cut++ {
		if err := DecodeUpdateBatchInto(&b, good[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Trailing garbage is rejected.
	if err := DecodeUpdateBatchInto(&b, append(append([]byte{}, good...), 0)); err == nil {
		t.Error("trailing byte accepted")
	}
	// A count the payload cannot pay for is rejected before allocation.
	if err := DecodeUpdateBatchInto(&b, []byte{0xe8, 0x07, 1, 2, 3}); err == nil {
		t.Error("underfunded count accepted")
	}
	// Counts beyond MaxBatch are rejected outright.
	huge := make([]byte, 10+6*(MaxBatch+1))
	huge[0], huge[1], huge[2] = 0x80, 0x80, 0x02 // uvarint 32768+... > MaxBatch
	if err := DecodeUpdateBatchInto(&b, huge); err == nil {
		t.Error("count beyond MaxBatch accepted")
	}
	// A negative or >uint32 node id (via delta overflow) is rejected.
	neg := binary_appendUvarint([]byte{1}, zigzag(-5))
	neg = append(neg, make([]byte, 5)...)
	if err := DecodeUpdateBatchInto(&b, neg); err == nil {
		t.Error("negative node id accepted")
	}
}

// binary_appendUvarint mirrors binary.AppendUvarint without importing it
// twice; kept tiny and local to the test.
func binary_appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// The decode path must be allocation-free once the batch scratch has
// reached its high-water capacity — this is the per-frame server cost.
func TestDecodeUpdateBatchZeroAlloc(t *testing.T) {
	payload := payloadOf(AppendUpdateBatch(nil, randomBatch(rng.New(9), 256)))
	var b UpdateBatch
	if err := DecodeUpdateBatchInto(&b, payload); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := DecodeUpdateBatchInto(&b, payload); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("DecodeUpdateBatchInto allocates %.1f/op in steady state, want 0", allocs)
	}
}

// Encoding into a reused buffer is likewise allocation-free.
func TestAppendUpdateBatchZeroAllocReused(t *testing.T) {
	b := randomBatch(rng.New(10), 128)
	buf := AppendUpdateBatch(nil, b)
	allocs := testing.AllocsPerRun(200, func() {
		buf = AppendUpdateBatch(buf[:0], b)
	})
	if allocs != 0 {
		t.Errorf("AppendUpdateBatch allocates %.1f/op into a warm buffer, want 0", allocs)
	}
}

// FrameReader reuses its payload buffer: reading a long stream of frames
// allocates nothing after the first (largest) frame.
func TestFrameReaderZeroAlloc(t *testing.T) {
	var stream []byte
	for i := 0; i < 64; i++ {
		stream = AppendUpdateBatch(stream, randomBatch(rng.New(uint64(i)), 64))
	}
	rd := bytes.NewReader(stream)
	fr := NewFrameReader(rd)
	for {
		_, _, err := fr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		rd.Reset(stream)
		for {
			typ, payload, err := fr.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if typ != TypeUpdateBatch || len(payload) == 0 {
				t.Fatal("unexpected frame")
			}
		}
	})
	if allocs != 0 {
		t.Errorf("FrameReader allocates %.1f per 64-frame stream in steady state, want 0", allocs)
	}
}

// FrameReader and ReadFrame must agree on the stream they parse.
func TestFrameReaderMatchesReadFrame(t *testing.T) {
	var stream []byte
	stream = AppendHello(stream, Hello{Node: 3, Pos: geo.Point{X: 5, Y: 6}})
	stream = AppendUpdate(stream, Update{Node: 3})
	stream = AppendUpdateBatch(stream, randomBatch(rng.New(4), 3))
	stream = AppendPing(stream, Ping{Token: 11})

	fr := NewFrameReader(bytes.NewReader(stream))
	legacy := bytes.NewReader(stream)
	for i := 0; ; i++ {
		t1, p1, err1 := fr.Next()
		t2, p2, err2 := ReadFrame(legacy)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("frame %d: err %v vs %v", i, err1, err2)
		}
		if err1 != nil {
			if err1 != io.EOF || err2 != io.EOF {
				t.Fatalf("frame %d: end errors %v vs %v", i, err1, err2)
			}
			break
		}
		if t1 != t2 || !bytes.Equal(p1, p2) {
			t.Fatalf("frame %d: (%v, %d bytes) vs (%v, %d bytes)", i, t1, len(p1), t2, len(p2))
		}
	}
	// An oversized declared length is rejected like ReadFrame rejects it.
	bad := []byte{0xff, 0xff, 0xff, 0xff, byte(TypeUpdate)}
	if _, _, err := NewFrameReader(bytes.NewReader(bad)).Next(); err == nil {
		t.Error("oversized length accepted by FrameReader")
	}
}

func TestQuantizeHelpers(t *testing.T) {
	// Quantization error bounds: coords within 2⁻¹⁷, time within 2⁻²¹.
	for _, v := range []float64{0, 1, -1, 123.456789, -9876.54321, 1e5} {
		if d := math.Abs(QuantizeCoord(v) - v); d > 1.0/(1<<17) {
			t.Errorf("QuantizeCoord(%v) off by %v", v, d)
		}
		if d := math.Abs(QuantizeTime(v) - v); d > 1.0/(1<<21) {
			t.Errorf("QuantizeTime(%v) off by %v", v, d)
		}
	}
	// Idempotence.
	q := QuantizeCoord(math.Pi)
	if QuantizeCoord(q) != q {
		t.Error("QuantizeCoord not idempotent")
	}
	qt := QuantizeTime(math.E)
	if QuantizeTime(qt) != qt {
		t.Error("QuantizeTime not idempotent")
	}
}

// Batched position-update framing: the ingest hot path's wire format.
//
// A single TypeUpdate frame costs 5 header bytes plus a 28-byte payload
// for every report, and the reader allocates a fresh payload buffer per
// frame. At the million-updates-per-second scale the ROADMAP targets,
// that framing — not the evaluation work — becomes the bottleneck.
// TypeUpdateBatch amortizes the header over many updates and encodes the
// records column-major ("vectored"):
//
//	uvarint n                  record count (≤ MaxBatch)
//	n × svarint Δid            node ids, delta vs previous id
//	n × svarint Δqx            fixed-point x, delta vs previous record
//	n × svarint Δqy            fixed-point y
//	n × svarint Δqvx           fixed-point vx
//	n × svarint Δqvy           fixed-point vy
//	n × svarint Δqt            fixed-point time, delta vs previous record
//
// Coordinates and velocities are fixed point at 2⁻¹⁶ m resolution, time
// at 2⁻²⁰ s (≈1 µs); svarint is zigzag varint. One node's consecutive
// reports delta-encode to near-zero ids and small coordinate steps, so a
// steady-state batch record costs a few bytes instead of 33. Because the
// wire carries integers, a decoded batch can never smuggle NaN or ±Inf
// into the motion table — a trust-boundary property the float32
// per-update format lacks.
//
// Decoding is allocation-free: DecodeUpdateBatchInto fills a
// caller-owned UpdateBatch whose column slices are reused across calls,
// and FrameReader reuses one payload buffer across frames. Both are
// bounded by MaxBatch/MaxPayload before any buffer growth, so a corrupt
// length or count cannot balloon memory.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"lira/internal/geo"
	"lira/internal/motion"
)

// TypeUpdateBatch is a vectored batch of position updates (wire v2).
const TypeUpdateBatch Type = 8

// MaxBatch bounds the record count of one update batch. It is far above
// any realistic client flush (clients batch tens of updates) while
// keeping the decoder's worst-case buffer growth small.
const MaxBatch = 1 << 15

// Fixed-point scales. Powers of two make quantize→encode→decode exact
// for every representable value: float64(q)/scale round-trips to q.
const (
	coordScale = 1 << 16 // 2⁻¹⁶ m ≈ 15 µm resolution for positions and velocities
	timeScale  = 1 << 20 // 2⁻²⁰ s ≈ 1 µs resolution for report timestamps
)

// QuantizeCoord rounds a coordinate or velocity component to the batch
// wire resolution. Decoded batches carry exactly these values, so a
// differential harness that quantizes its inputs first sees the wire
// path as the identity.
func QuantizeCoord(v float64) float64 {
	return float64(int64(math.Round(v*coordScale))) / coordScale
}

// QuantizeTime rounds a report timestamp to the batch wire resolution.
func QuantizeTime(v float64) float64 {
	return float64(int64(math.Round(v*timeScale))) / timeScale
}

// QuantizeReport applies the batch wire quantization to every field of a
// report — the exact transformation a report undergoes when it travels
// inside an update batch.
func QuantizeReport(r motion.Report) motion.Report {
	return motion.Report{
		Pos:  geo.Point{X: QuantizeCoord(r.Pos.X), Y: QuantizeCoord(r.Pos.Y)},
		Vel:  geo.Vector{X: QuantizeCoord(r.Vel.X), Y: QuantizeCoord(r.Vel.Y)},
		Time: QuantizeTime(r.Time),
	}
}

// UpdateBatch is a column-major (structure-of-arrays) batch of position
// updates: record i is (Node[i], X[i], Y[i], VX[i], VY[i], T[i]). The
// column slices are owned by the holder and reused across encode/decode
// cycles, which is what makes the decode path allocation-free once the
// capacity high-water mark is reached.
type UpdateBatch struct {
	Node               []uint32
	X, Y, VX, VY, Time []float64
}

// Len returns the number of records in the batch.
func (b *UpdateBatch) Len() int { return len(b.Node) }

// Reset empties the batch, keeping the column capacity.
func (b *UpdateBatch) Reset() {
	b.Node = b.Node[:0]
	b.X, b.Y = b.X[:0], b.Y[:0]
	b.VX, b.VY = b.VX[:0], b.VY[:0]
	b.Time = b.Time[:0]
}

// Append adds one update to the batch. Values are stored as given;
// encoding quantizes them to the wire resolution.
func (b *UpdateBatch) Append(u Update) {
	b.Node = append(b.Node, u.Node)
	b.X = append(b.X, u.Report.Pos.X)
	b.Y = append(b.Y, u.Report.Pos.Y)
	b.VX = append(b.VX, u.Report.Vel.X)
	b.VY = append(b.VY, u.Report.Vel.Y)
	b.Time = append(b.Time, u.Report.Time)
}

// Update reconstructs record i as a per-update message.
func (b *UpdateBatch) Update(i int) Update {
	return Update{
		Node: b.Node[i],
		Report: motion.Report{
			Pos:  geo.Point{X: b.X[i], Y: b.Y[i]},
			Vel:  geo.Vector{X: b.VX[i], Y: b.VY[i]},
			Time: b.Time[i],
		},
	}
}

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// quantize converts v to fixed point at the given scale. Non-finite
// inputs saturate to int64 bounds (Go's float→int conversion), which
// encodes and decodes as an ordinary — merely absurd — finite value.
func quantize(v, scale float64) int64 { return int64(math.Round(v * scale)) }

// appendDeltaColumn appends one column of values as zigzag-varint deltas
// of their fixed-point quantization.
func appendDeltaColumn(dst []byte, vals []float64, scale float64) []byte {
	prev := int64(0)
	for _, v := range vals {
		q := quantize(v, scale)
		dst = binary.AppendUvarint(dst, zigzag(q-prev))
		prev = q
	}
	return dst
}

// AppendUpdateBatch encodes b into a frame appended to dst. The encoding
// quantizes coordinates and times to the fixed-point wire resolution;
// node ids are carried exactly.
func AppendUpdateBatch(dst []byte, b *UpdateBatch) []byte {
	base := len(dst)
	dst = append(dst, 0, 0, 0, 0, byte(TypeUpdateBatch))
	dst = binary.AppendUvarint(dst, uint64(b.Len()))
	prev := int64(0)
	for _, id := range b.Node {
		dst = binary.AppendUvarint(dst, zigzag(int64(id)-prev))
		prev = int64(id)
	}
	dst = appendDeltaColumn(dst, b.X, coordScale)
	dst = appendDeltaColumn(dst, b.Y, coordScale)
	dst = appendDeltaColumn(dst, b.VX, coordScale)
	dst = appendDeltaColumn(dst, b.VY, coordScale)
	dst = appendDeltaColumn(dst, b.Time, timeScale)
	binary.LittleEndian.PutUint32(dst[base:], uint32(len(dst)-base-headerLen))
	return dst
}

// batchReader walks a batch payload varint by varint.
type batchReader struct {
	buf []byte
	off int
}

func (r *batchReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("wire: truncated batch varint at offset %d of %d", r.off, len(r.buf))
	}
	r.off += n
	return v, nil
}

// maxQ bounds the magnitude of any decoded fixed-point value. 2⁵² keeps
// every accepted value exactly representable in float64 — so
// decode→re-encode is the identity — while still covering ±2³⁶ m of
// space and ±2³² s of clock, far beyond any deployment.
const maxQ = 1 << 52

// readDeltaColumn decodes one delta column into dst (pre-sized to n).
// The varint loop is inlined — replicating encoding/binary.Uvarint's
// accept/reject behavior exactly — and walks local copies of the buffer
// and offset: at millions of varints per second, the generic decoder's
// per-call re-slice and the non-inlinable error-wrapping method are what
// the profile shows, not the byte shuffling itself.
func (r *batchReader) readDeltaColumn(dst []float64, scale float64) error {
	buf, off := r.buf, r.off
	inv := 1 / scale // power-of-two scale: multiplying is exact, like dividing
	prev := int64(0)
	for i := range dst {
		var u uint64
		var shift uint
		j := off
		for {
			if j >= len(buf) {
				return fmt.Errorf("wire: truncated batch varint at offset %d of %d", off, len(buf))
			}
			c := buf[j]
			j++
			if c < 0x80 {
				if j-off == binary.MaxVarintLen64 && c > 1 {
					return fmt.Errorf("wire: batch varint overflow at offset %d", off)
				}
				u |= uint64(c) << shift
				break
			}
			if j-off == binary.MaxVarintLen64 {
				return fmt.Errorf("wire: batch varint overflow at offset %d", off)
			}
			u |= uint64(c&0x7f) << shift
			shift += 7
		}
		off = j
		prev += unzigzag(u)
		if prev < -maxQ || prev > maxQ {
			return fmt.Errorf("wire: batch value %d out of range", prev)
		}
		dst[i] = float64(prev) * inv
	}
	r.off = off
	return nil
}

func growU32(s []uint32, n int) []uint32 {
	if cap(s) < n {
		return make([]uint32, n)
	}
	return s[:n]
}

func growF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// DecodeUpdateBatchInto decodes a batch payload into b, reusing b's
// column capacity: once b has seen the largest batch on a connection,
// subsequent decodes allocate nothing. The record count is validated
// against MaxBatch and the payload length (every record costs at least
// six bytes) before any buffer grows, so a hostile count cannot force an
// allocation the payload does not pay for.
func DecodeUpdateBatchInto(b *UpdateBatch, payload []byte) error {
	r := batchReader{buf: payload}
	count, err := r.uvarint()
	if err != nil {
		return err
	}
	if count > MaxBatch {
		return fmt.Errorf("wire: batch count %d exceeds limit %d", count, MaxBatch)
	}
	n := int(count)
	if rest := len(payload) - r.off; rest < 6*n {
		return fmt.Errorf("wire: batch count %d does not fit %d payload bytes", n, rest)
	}
	b.Node = growU32(b.Node, n)
	b.X, b.Y = growF64(b.X, n), growF64(b.Y, n)
	b.VX, b.VY = growF64(b.VX, n), growF64(b.VY, n)
	b.Time = growF64(b.Time, n)
	prev := int64(0)
	buf := r.buf
	for i := 0; i < n; i++ {
		// Same inlined varint as readDeltaColumn (see its comment).
		var u uint64
		var shift uint
		off := r.off
		j := off
		for {
			if j >= len(buf) {
				return fmt.Errorf("wire: truncated batch varint at offset %d of %d", off, len(buf))
			}
			c := buf[j]
			j++
			if c < 0x80 {
				if j-off == binary.MaxVarintLen64 && c > 1 {
					return fmt.Errorf("wire: batch varint overflow at offset %d", off)
				}
				u |= uint64(c) << shift
				break
			}
			if j-off == binary.MaxVarintLen64 {
				return fmt.Errorf("wire: batch varint overflow at offset %d", off)
			}
			u |= uint64(c&0x7f) << shift
			shift += 7
		}
		r.off = j
		prev += unzigzag(u)
		if prev < 0 || prev > math.MaxUint32 {
			return fmt.Errorf("wire: batch node id %d out of range", prev)
		}
		b.Node[i] = uint32(prev)
	}
	for _, col := range [][]float64{b.X, b.Y, b.VX, b.VY} {
		if err := r.readDeltaColumn(col, coordScale); err != nil {
			return err
		}
	}
	if err := r.readDeltaColumn(b.Time, timeScale); err != nil {
		return err
	}
	if r.off != len(payload) {
		return fmt.Errorf("wire: %d trailing bytes in batch", len(payload)-r.off)
	}
	return nil
}

// FrameReader reads length-prefixed frames from one stream into a
// payload buffer it owns and reuses, so a server connection's read loop
// performs zero steady-state allocations. The payload returned by Next
// is valid only until the following Next call.
type FrameReader struct {
	rd  io.Reader
	hdr [headerLen]byte // struct-resident so io.ReadFull cannot heap-escape it
	buf []byte
}

// NewFrameReader returns a frame reader over rd.
func NewFrameReader(rd io.Reader) *FrameReader {
	return &FrameReader{rd: rd}
}

// Next reads one frame and returns its type and payload. The payload
// aliases the reader's internal buffer. Errors match ReadFrame's: io.EOF
// at a clean end of stream, io.ErrUnexpectedEOF mid-frame.
func (fr *FrameReader) Next() (Type, []byte, error) {
	if _, err := io.ReadFull(fr.rd, fr.hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(fr.hdr[:4])
	if n > MaxPayload {
		return 0, nil, fmt.Errorf("wire: payload length %d exceeds limit", n)
	}
	t := Type(fr.hdr[4])
	if cap(fr.buf) < int(n) {
		fr.buf = make([]byte, n)
	}
	payload := fr.buf[:n]
	if _, err := io.ReadFull(fr.rd, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	return t, payload, nil
}

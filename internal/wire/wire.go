// Package wire defines the binary message formats exchanged between the
// three layers of the LIRA architecture, matching the size accounting of
// §4.3.2: a square shedding region is 3 float32s (min-x, min-y, side) and
// an update throttler one float32, so an assignment entry is exactly
// 16 bytes; the paper's average 41-region broadcast is 656 bytes and fits
// one UDP packet.
//
// Framing is length-prefixed: a 5-byte header (uint32 little-endian
// payload length, 1-byte message type) followed by the payload. All
// multi-byte integers are little-endian; floats are IEEE-754 float32 on
// the wire (the paper's "4 byte float"), float64 in memory.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"lira/internal/geo"
	"lira/internal/motion"
)

// Type identifies a message.
type Type uint8

const (
	// TypeHello is a node's first contact: its id and position.
	TypeHello Type = iota + 1
	// TypeUpdate is a position update (dead-reckoning report).
	TypeUpdate
	// TypeAssignment is a station's (region, throttler) broadcast.
	TypeAssignment
	// TypeQuery registers a continual range query.
	TypeQuery
	// TypeResult is one query's current result set.
	TypeResult
	// TypePing is a liveness probe carrying an opaque token; the peer
	// echoes it back as a TypePong. Heartbeats keep read deadlines from
	// tripping on healthy-but-idle links.
	TypePing
	// TypePong answers a ping, echoing its token.
	TypePong
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TypeHello:
		return "hello"
	case TypeUpdate:
		return "update"
	case TypeAssignment:
		return "assignment"
	case TypeQuery:
		return "query"
	case TypeResult:
		return "result"
	case TypePing:
		return "ping"
	case TypePong:
		return "pong"
	case TypeUpdateBatch:
		return "update_batch"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// MaxPayload bounds a single message payload; it comfortably covers the
// largest realistic assignment (a station knowing every one of a few
// thousand regions) while preventing a corrupt length prefix from
// allocating unbounded memory.
const MaxPayload = 1 << 20

// headerLen is the frame header size: 4-byte length + 1-byte type.
const headerLen = 5

// Hello protocol versions. HelloV1 is the original 12-byte payload
// (node id + position); HelloV2 appends a version byte and a capability
// flags byte. A zero-valued Hello encodes as v1, so every pre-existing
// call site stays wire-compatible with old peers.
const (
	HelloV1 uint8 = 1
	HelloV2 uint8 = 2
)

// HelloFlagBatch advertises that the sender accepts TypeUpdateBatch
// frames. The server sets it in the capability hello it echoes back to a
// connecting node; clients that predate the flag ignore the echo (their
// read loops drop unknown frames) and keep sending per-update frames,
// while old servers never echo and new clients fall back likewise.
const HelloFlagBatch uint8 = 1 << 0

// Hello is a node's first contact with the serving infrastructure. The
// server answers a node hello with a hello of its own carrying Version
// HelloV2 and its capability flags.
type Hello struct {
	Node uint32
	Pos  geo.Point
	// Version is the hello format version: HelloV1 for the legacy
	// 12-byte payload (the zero value encodes as v1), HelloV2 when
	// Version and Flags ride along.
	Version uint8
	// Flags carries capability bits (HelloFlag*); v1 hellos decode with
	// Flags 0.
	Flags uint8
}

// Update carries one dead-reckoning report.
type Update struct {
	Node   uint32
	Report motion.Report
}

// AssignmentEntry is one (square region, throttler) pair — 16 bytes on
// the wire.
type AssignmentEntry struct {
	MinX, MinY, Side float64
	Delta            float64
}

// Rect returns the entry's region as a rectangle.
func (e AssignmentEntry) Rect() geo.Rect {
	return geo.Rect{MinX: e.MinX, MinY: e.MinY, MaxX: e.MinX + e.Side, MaxY: e.MinY + e.Side}
}

// EntryFromRect converts a square region to an assignment entry. Regions
// produced by GRIDREDUCE over a square space are exact squares; for a
// non-square rect the longer side is used, which is the conservative
// over-cover.
func EntryFromRect(r geo.Rect, delta float64) AssignmentEntry {
	side := r.Width()
	if r.Height() > side {
		side = r.Height()
	}
	return AssignmentEntry{MinX: r.MinX, MinY: r.MinY, Side: side, Delta: delta}
}

// Assignment is a station broadcast: the shedding regions and throttlers
// of the station's coverage area.
type Assignment struct {
	Station      uint32
	DefaultDelta float64
	Entries      []AssignmentEntry
}

// Query registers a continual range query with an id.
type Query struct {
	ID   uint32
	Rect geo.Rect
}

// Result is the current result set of one query.
type Result struct {
	ID    uint32
	Nodes []uint32
}

// Ping is a liveness probe; Token is echoed back in the answering pong.
type Ping struct {
	Token uint32
}

// Pong answers a ping.
type Pong struct {
	Token uint32
}

// AssignmentWireSize returns the payload size of an assignment with n
// entries: 4 (station) + 4 (default Δ) + 16·n, matching §4.3.2's
// per-region cost.
func AssignmentWireSize(n int) int { return 8 + 16*n }

type writer struct {
	buf []byte
}

func (w *writer) u32(v uint32) {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
}

func (w *writer) f32(v float64) {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, math.Float32bits(float32(v)))
}

// f64 writes a full-precision float: used for report timestamps, where
// float32's 24-bit mantissa would quantize long-running clocks.
func (w *writer) f64(v float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(v))
}

type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) ensure(n int) bool {
	if r.err != nil {
		return false
	}
	if r.off+n > len(r.buf) {
		r.err = fmt.Errorf("wire: truncated payload (need %d bytes at offset %d of %d)", n, r.off, len(r.buf))
		return false
	}
	return true
}

func (r *reader) u32() uint32 {
	if !r.ensure(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *reader) f32() float64 {
	if !r.ensure(4) {
		return 0
	}
	v := math.Float32frombits(binary.LittleEndian.Uint32(r.buf[r.off:]))
	r.off += 4
	return float64(v)
}

func (r *reader) f64() float64 {
	if !r.ensure(8) {
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.off:]))
	r.off += 8
	return v
}

func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("wire: %d trailing bytes", len(r.buf)-r.off)
	}
	return nil
}

// AppendHello encodes h into a frame appended to dst. Hellos with
// Version < HelloV2 encode as the legacy 12-byte payload old peers
// expect; HelloV2 and later append the version and flags bytes.
func AppendHello(dst []byte, h Hello) []byte {
	var w writer
	w.u32(h.Node)
	w.f32(h.Pos.X)
	w.f32(h.Pos.Y)
	if h.Version >= HelloV2 {
		w.buf = append(w.buf, h.Version, h.Flags)
	}
	return appendFrame(dst, TypeHello, w.buf)
}

// AppendUpdate encodes u into a frame appended to dst.
func AppendUpdate(dst []byte, u Update) []byte {
	var w writer
	w.u32(u.Node)
	w.f32(u.Report.Pos.X)
	w.f32(u.Report.Pos.Y)
	w.f32(u.Report.Vel.X)
	w.f32(u.Report.Vel.Y)
	w.f64(u.Report.Time)
	return appendFrame(dst, TypeUpdate, w.buf)
}

// AppendAssignment encodes a into a frame appended to dst.
func AppendAssignment(dst []byte, a Assignment) []byte {
	var w writer
	w.u32(a.Station)
	w.f32(a.DefaultDelta)
	for _, e := range a.Entries {
		w.f32(e.MinX)
		w.f32(e.MinY)
		w.f32(e.Side)
		w.f32(e.Delta)
	}
	return appendFrame(dst, TypeAssignment, w.buf)
}

// AppendQuery encodes q into a frame appended to dst.
func AppendQuery(dst []byte, q Query) []byte {
	var w writer
	w.u32(q.ID)
	w.f32(q.Rect.MinX)
	w.f32(q.Rect.MinY)
	w.f32(q.Rect.MaxX)
	w.f32(q.Rect.MaxY)
	return appendFrame(dst, TypeQuery, w.buf)
}

// AppendResult encodes r into a frame appended to dst.
func AppendResult(dst []byte, res Result) []byte {
	var w writer
	w.u32(res.ID)
	w.u32(uint32(len(res.Nodes)))
	for _, n := range res.Nodes {
		w.u32(n)
	}
	return appendFrame(dst, TypeResult, w.buf)
}

// AppendPing encodes p into a frame appended to dst.
func AppendPing(dst []byte, p Ping) []byte {
	var w writer
	w.u32(p.Token)
	return appendFrame(dst, TypePing, w.buf)
}

// AppendPong encodes p into a frame appended to dst.
func AppendPong(dst []byte, p Pong) []byte {
	var w writer
	w.u32(p.Token)
	return appendFrame(dst, TypePong, w.buf)
}

func appendFrame(dst []byte, t Type, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, byte(t))
	return append(dst, payload...)
}

// DecodeHello decodes a hello payload. A 12-byte payload is a legacy v1
// hello (Version HelloV1, Flags 0); a 14-byte payload must carry a
// version byte ≥ HelloV2, so re-encoding a decoded hello reproduces the
// original bytes for either shape.
func DecodeHello(payload []byte) (Hello, error) {
	r := reader{buf: payload}
	h := Hello{Node: r.u32(), Pos: geo.Point{X: r.f32(), Y: r.f32()}}
	if r.err == nil && r.off < len(payload) {
		if !r.ensure(2) {
			return h, r.err
		}
		h.Version = payload[r.off]
		h.Flags = payload[r.off+1]
		r.off += 2
		if h.Version < HelloV2 {
			return h, fmt.Errorf("wire: hello version %d with v2 payload length", h.Version)
		}
	} else {
		h.Version = HelloV1
	}
	return h, r.done()
}

// DecodeUpdate decodes an update payload.
func DecodeUpdate(payload []byte) (Update, error) {
	r := reader{buf: payload}
	u := Update{Node: r.u32()}
	u.Report.Pos = geo.Point{X: r.f32(), Y: r.f32()}
	u.Report.Vel = geo.Vector{X: r.f32(), Y: r.f32()}
	u.Report.Time = r.f64()
	return u, r.done()
}

// DecodeAssignment decodes an assignment payload.
func DecodeAssignment(payload []byte) (Assignment, error) {
	r := reader{buf: payload}
	a := Assignment{Station: r.u32(), DefaultDelta: r.f32()}
	rest := len(payload) - r.off
	if r.err == nil && rest%16 != 0 {
		return a, fmt.Errorf("wire: assignment entries not a multiple of 16 bytes (%d)", rest)
	}
	n := rest / 16
	a.Entries = make([]AssignmentEntry, 0, n)
	for i := 0; i < n; i++ {
		a.Entries = append(a.Entries, AssignmentEntry{
			MinX: r.f32(), MinY: r.f32(), Side: r.f32(), Delta: r.f32(),
		})
	}
	return a, r.done()
}

// DecodeQuery decodes a query payload.
func DecodeQuery(payload []byte) (Query, error) {
	r := reader{buf: payload}
	q := Query{ID: r.u32()}
	q.Rect = geo.Rect{MinX: r.f32(), MinY: r.f32(), MaxX: r.f32(), MaxY: r.f32()}
	return q, r.done()
}

// DecodeResult decodes a result payload.
func DecodeResult(payload []byte) (Result, error) {
	r := reader{buf: payload}
	res := Result{ID: r.u32()}
	n := r.u32()
	if r.err == nil && int(n)*4 != len(payload)-r.off {
		return res, fmt.Errorf("wire: result count %d does not match payload", n)
	}
	res.Nodes = make([]uint32, 0, n)
	for i := uint32(0); i < n; i++ {
		res.Nodes = append(res.Nodes, r.u32())
	}
	return res, r.done()
}

// DecodePing decodes a ping payload.
func DecodePing(payload []byte) (Ping, error) {
	r := reader{buf: payload}
	p := Ping{Token: r.u32()}
	return p, r.done()
}

// DecodePong decodes a pong payload.
func DecodePong(payload []byte) (Pong, error) {
	r := reader{buf: payload}
	p := Pong{Token: r.u32()}
	return p, r.done()
}

// ReadFrame reads one frame from rd. It returns the message type and
// payload, or an error (io.EOF at a clean end of stream).
func ReadFrame(rd io.Reader) (Type, []byte, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(rd, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > MaxPayload {
		return 0, nil, fmt.Errorf("wire: payload length %d exceeds limit", n)
	}
	t := Type(hdr[4])
	payload := make([]byte, n)
	if _, err := io.ReadFull(rd, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	return t, payload, nil
}

// WriteFrame writes one pre-encoded frame (as produced by the Append
// functions) to w.
func WriteFrame(w io.Writer, frame []byte) error {
	_, err := w.Write(frame)
	return err
}

package wire

import (
	"bytes"
	"io"
	"math"
	"testing"
	"testing/quick"

	"lira/internal/geo"
	"lira/internal/motion"
	"lira/internal/rng"
)

func roundTrip(t *testing.T, frame []byte, wantType Type) []byte {
	t.Helper()
	typ, payload, err := ReadFrame(bytes.NewReader(frame))
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if typ != wantType {
		t.Fatalf("type = %v, want %v", typ, wantType)
	}
	return payload
}

func TestHelloRoundTrip(t *testing.T) {
	h := Hello{Node: 42, Pos: geo.Point{X: 123.5, Y: -7.25}}
	frame := AppendHello(nil, h)
	// A zero-version hello must stay the legacy 12-byte payload so old
	// peers keep decoding it.
	if len(frame) != 5+12 {
		t.Fatalf("v1 hello frame = %d bytes, want 17", len(frame))
	}
	payload := roundTrip(t, frame, TypeHello)
	got, err := DecodeHello(payload)
	if err != nil {
		t.Fatal(err)
	}
	h.Version = HelloV1
	if got != h {
		t.Errorf("got %+v, want %+v", got, h)
	}
}

func TestHelloV2RoundTrip(t *testing.T) {
	h := Hello{Node: 9, Pos: geo.Point{X: 1, Y: 2}, Version: HelloV2, Flags: HelloFlagBatch}
	frame := AppendHello(nil, h)
	if len(frame) != 5+14 {
		t.Fatalf("v2 hello frame = %d bytes, want 19", len(frame))
	}
	got, err := DecodeHello(roundTrip(t, frame, TypeHello))
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("got %+v, want %+v", got, h)
	}
	// A v2-length payload claiming a v1 version byte is malformed: it
	// could not have been produced by AppendHello.
	bad := append([]byte{}, frame[5:]...)
	bad[12] = HelloV1
	if _, err := DecodeHello(bad); err == nil {
		t.Error("v2-length hello with v1 version byte accepted")
	}
	if _, err := DecodeHello(frame[5:18]); err == nil {
		t.Error("13-byte hello accepted")
	}
}

func TestUpdateRoundTrip(t *testing.T) {
	u := Update{
		Node: 7,
		Report: motion.Report{
			Pos:  geo.Point{X: 1000.25, Y: 2000.5},
			Vel:  geo.Vector{X: -3.5, Y: 12.75},
			Time: 86400.125, // float64 on the wire: survives long clocks
		},
	}
	payload := roundTrip(t, AppendUpdate(nil, u), TypeUpdate)
	got, err := DecodeUpdate(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got != u {
		t.Errorf("got %+v, want %+v", got, u)
	}
}

func TestAssignmentRoundTripAndSize(t *testing.T) {
	a := Assignment{
		Station:      3,
		DefaultDelta: 5,
		Entries: []AssignmentEntry{
			{MinX: 0, MinY: 0, Side: 500, Delta: 5},
			{MinX: 500, MinY: 0, Side: 500, Delta: 25},
			{MinX: 0, MinY: 500, Side: 1000, Delta: 100},
		},
	}
	frame := AppendAssignment(nil, a)
	// Frame = 5-byte header + payload; payload follows §4.3.2 sizing.
	if wantPayload := AssignmentWireSize(3); len(frame) != 5+wantPayload {
		t.Errorf("frame size %d, want %d", len(frame), 5+wantPayload)
	}
	payload := roundTrip(t, frame, TypeAssignment)
	got, err := DecodeAssignment(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Station != a.Station || got.DefaultDelta != a.DefaultDelta || len(got.Entries) != 3 {
		t.Fatalf("got %+v", got)
	}
	for i := range a.Entries {
		if got.Entries[i] != a.Entries[i] {
			t.Errorf("entry %d: %+v vs %+v", i, got.Entries[i], a.Entries[i])
		}
	}
}

func TestPaperBroadcastSize(t *testing.T) {
	// The paper's 41-region broadcast: 41·16 = 656 bytes of entries.
	if got := AssignmentWireSize(41) - 8; got != 656 {
		t.Errorf("41 regions = %d entry bytes, want 656", got)
	}
}

func TestQueryAndResultRoundTrip(t *testing.T) {
	q := Query{ID: 9, Rect: geo.Rect{MinX: 1, MinY: 2, MaxX: 3, MaxY: 4}}
	payload := roundTrip(t, AppendQuery(nil, q), TypeQuery)
	gotQ, err := DecodeQuery(payload)
	if err != nil {
		t.Fatal(err)
	}
	if gotQ != q {
		t.Errorf("got %+v, want %+v", gotQ, q)
	}

	res := Result{ID: 9, Nodes: []uint32{1, 5, 100000}}
	payload = roundTrip(t, AppendResult(nil, res), TypeResult)
	gotR, err := DecodeResult(payload)
	if err != nil {
		t.Fatal(err)
	}
	if gotR.ID != res.ID || len(gotR.Nodes) != 3 || gotR.Nodes[2] != 100000 {
		t.Errorf("got %+v", gotR)
	}
	// Empty result set round-trips too.
	payload = roundTrip(t, AppendResult(nil, Result{ID: 1}), TypeResult)
	if gotR, err = DecodeResult(payload); err != nil || len(gotR.Nodes) != 0 {
		t.Errorf("empty result: %+v, %v", gotR, err)
	}
}

func TestEntryRectConversion(t *testing.T) {
	e := AssignmentEntry{MinX: 100, MinY: 200, Side: 50, Delta: 7}
	r := e.Rect()
	want := geo.Rect{MinX: 100, MinY: 200, MaxX: 150, MaxY: 250}
	if r != want {
		t.Errorf("Rect = %v, want %v", r, want)
	}
	// Round-trip through EntryFromRect.
	e2 := EntryFromRect(r, 7)
	if e2 != e {
		t.Errorf("EntryFromRect = %+v, want %+v", e2, e)
	}
	// Non-square rect: longer side wins (conservative over-cover).
	e3 := EntryFromRect(geo.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 30}, 1)
	if e3.Side != 30 {
		t.Errorf("non-square side = %v, want 30", e3.Side)
	}
}

func TestStreamOfFrames(t *testing.T) {
	var buf bytes.Buffer
	frames := AppendHello(nil, Hello{Node: 1, Pos: geo.Point{X: 1, Y: 1}})
	frames = AppendUpdate(frames, Update{Node: 1})
	frames = AppendAssignment(frames, Assignment{Station: 2, DefaultDelta: 5})
	buf.Write(frames)

	want := []Type{TypeHello, TypeUpdate, TypeAssignment}
	for i, w := range want {
		typ, _, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if typ != w {
			t.Fatalf("frame %d type = %v, want %v", i, typ, w)
		}
	}
	if _, _, err := ReadFrame(&buf); err != io.EOF {
		t.Errorf("end of stream error = %v, want io.EOF", err)
	}
}

func TestReadFrameTruncation(t *testing.T) {
	frame := AppendUpdate(nil, Update{Node: 1})
	for cut := 1; cut < len(frame); cut++ {
		_, _, err := ReadFrame(bytes.NewReader(frame[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestReadFrameOversizedPayloadRejected(t *testing.T) {
	frame := []byte{0xff, 0xff, 0xff, 0xff, byte(TypeUpdate)}
	if _, _, err := ReadFrame(bytes.NewReader(frame)); err == nil {
		t.Error("oversized length accepted")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := DecodeHello([]byte{1, 2}); err == nil {
		t.Error("short hello accepted")
	}
	if _, err := DecodeUpdate(make([]byte, 100)); err == nil {
		t.Error("long update accepted")
	}
	if _, err := DecodeAssignment(make([]byte, 8+7)); err == nil {
		t.Error("ragged assignment accepted")
	}
	if _, err := DecodeResult([]byte{1, 0, 0, 0, 9, 0, 0, 0}); err == nil {
		t.Error("result with wrong count accepted")
	}
	if _, err := DecodeQuery(make([]byte, 3)); err == nil {
		t.Error("short query accepted")
	}
}

// Property: assignments round-trip for arbitrary entry sets within
// float32's exact range.
func TestAssignmentRoundTripProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		r := rng.New(seed)
		n := int(nRaw) % 64
		a := Assignment{
			Station:      uint32(r.Intn(1 << 16)),
			DefaultDelta: float64(r.Intn(1000)),
		}
		for i := 0; i < n; i++ {
			a.Entries = append(a.Entries, AssignmentEntry{
				MinX:  float64(r.Intn(1 << 20)),
				MinY:  float64(r.Intn(1 << 20)),
				Side:  float64(r.Intn(1<<14) + 1),
				Delta: float64(r.Intn(100) + 5),
			})
		}
		payload := AppendAssignment(nil, a)[5:]
		got, err := DecodeAssignment(payload)
		if err != nil {
			return false
		}
		if got.Station != a.Station || got.DefaultDelta != a.DefaultDelta || len(got.Entries) != n {
			return false
		}
		for i := range a.Entries {
			if got.Entries[i] != a.Entries[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFloat32Quantization(t *testing.T) {
	// Positions quantize to float32 on the wire: the error must stay far
	// below Δ⊢ = 5 m for coordinates within a metropolitan space.
	x := 14141.87654321
	u := Update{Node: 1, Report: motion.Report{Pos: geo.Point{X: x, Y: x}}}
	payload := AppendUpdate(nil, u)[5:]
	got, err := DecodeUpdate(payload)
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(got.Report.Pos.X - x); diff > 0.01 {
		t.Errorf("float32 quantization error %v m too large", diff)
	}
}

func TestPingPongRoundTrip(t *testing.T) {
	p := Ping{Token: 0xdeadbeef}
	payload := roundTrip(t, AppendPing(nil, p), TypePing)
	gotP, err := DecodePing(payload)
	if err != nil {
		t.Fatal(err)
	}
	if gotP != p {
		t.Errorf("got %+v, want %+v", gotP, p)
	}
	q := Pong{Token: 0xdeadbeef}
	payload = roundTrip(t, AppendPong(nil, q), TypePong)
	gotQ, err := DecodePong(payload)
	if err != nil {
		t.Fatal(err)
	}
	if gotQ != q {
		t.Errorf("got %+v, want %+v", gotQ, q)
	}
	if _, err := DecodePing([]byte{1, 2}); err == nil {
		t.Error("short ping accepted")
	}
	if _, err := DecodePong(make([]byte, 8)); err == nil {
		t.Error("long pong accepted")
	}
}

func TestTypeString(t *testing.T) {
	for _, typ := range []Type{TypeHello, TypeUpdate, TypeAssignment, TypeQuery, TypeResult, TypePing, TypePong} {
		if typ.String() == "" {
			t.Errorf("Type %d has no name", typ)
		}
	}
	if Type(99).String() != "Type(99)" {
		t.Errorf("unknown type string = %q", Type(99).String())
	}
}

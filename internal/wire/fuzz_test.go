// Fuzz targets for every wire decoder plus the framing reader. The
// invariant under fuzzing is uniform: malformed input must produce an
// error — never a panic and never an allocation larger than the input
// justifies. Seed corpora are the valid encodings, so the fuzzer starts
// from well-formed frames and mutates toward the boundaries.
package wire

import (
	"bytes"
	"testing"

	"lira/internal/geo"
	"lira/internal/motion"
)

// payloadOf strips the 5-byte frame header from a freshly encoded frame.
func payloadOf(frame []byte) []byte { return frame[headerLen:] }

func FuzzDecodeHello(f *testing.F) {
	f.Add(payloadOf(AppendHello(nil, Hello{Node: 7, Pos: geo.Point{X: 100, Y: 200}})))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		h, err := DecodeHello(b)
		if err != nil {
			return
		}
		if h != h { // NaN position: decodes, but not comparable
			return
		}
		got, err2 := DecodeHello(payloadOf(AppendHello(nil, h)))
		if err2 != nil || got != h {
			t.Fatalf("re-encode round-trip: %+v vs %+v (%v)", got, h, err2)
		}
	})
}

func FuzzDecodeUpdate(f *testing.F) {
	f.Add(payloadOf(AppendUpdate(nil, Update{
		Node:   3,
		Report: motion.Report{Pos: geo.Point{X: 1, Y: 2}, Vel: geo.Vector{X: 3, Y: 4}, Time: 5},
	})))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		u, err := DecodeUpdate(b)
		if err != nil {
			return
		}
		// NaN payloads survive decoding but do not compare equal; skip the
		// round-trip comparison for them.
		if u != u {
			return
		}
		got, err2 := DecodeUpdate(payloadOf(AppendUpdate(nil, u)))
		if err2 != nil || got != u {
			t.Fatalf("re-encode round-trip: %+v vs %+v (%v)", got, u, err2)
		}
	})
}

func FuzzDecodeAssignment(f *testing.F) {
	f.Add(payloadOf(AppendAssignment(nil, Assignment{
		Station:      1,
		DefaultDelta: 5,
		Entries: []AssignmentEntry{
			{MinX: 0, MinY: 0, Side: 500, Delta: 5},
			{MinX: 500, MinY: 500, Side: 500, Delta: 25},
		},
	})))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		a, err := DecodeAssignment(b)
		if err != nil {
			return
		}
		// The decoder must size the entry slice from the payload it
		// actually received, never from attacker-controlled counts.
		if cap(a.Entries)*16 > len(b) {
			t.Fatalf("over-allocation: cap %d entries from %d payload bytes", cap(a.Entries), len(b))
		}
	})
}

func FuzzDecodeQuery(f *testing.F) {
	f.Add(payloadOf(AppendQuery(nil, Query{ID: 2, Rect: geo.NewRect(0, 0, 100, 100)})))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		q, err := DecodeQuery(b)
		if err != nil {
			return
		}
		if q != q { // NaN rect: decodes, but not comparable
			return
		}
		got, err2 := DecodeQuery(payloadOf(AppendQuery(nil, q)))
		if err2 != nil || got != q {
			t.Fatalf("re-encode round-trip: %+v vs %+v (%v)", got, q, err2)
		}
	})
}

func FuzzDecodeResult(f *testing.F) {
	f.Add(payloadOf(AppendResult(nil, Result{ID: 4, Nodes: []uint32{1, 2, 70000}})))
	f.Add(payloadOf(AppendResult(nil, Result{ID: 5})))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		res, err := DecodeResult(b)
		if err != nil {
			return
		}
		// A huge declared count with a short payload must have errored
		// before allocation.
		if cap(res.Nodes)*4 > len(b) {
			t.Fatalf("over-allocation: cap %d ids from %d payload bytes", cap(res.Nodes), len(b))
		}
	})
}

func FuzzDecodePing(f *testing.F) {
	f.Add(payloadOf(AppendPing(nil, Ping{Token: 99})))
	f.Add(payloadOf(AppendPong(nil, Pong{Token: 7})))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		if p, err := DecodePing(b); err == nil {
			if got, err2 := DecodePing(payloadOf(AppendPing(nil, p))); err2 != nil || got != p {
				t.Fatalf("ping round-trip: %+v vs %+v (%v)", got, p, err2)
			}
		}
		if p, err := DecodePong(b); err == nil {
			if got, err2 := DecodePong(payloadOf(AppendPong(nil, p))); err2 != nil || got != p {
				t.Fatalf("pong round-trip: %+v vs %+v (%v)", got, p, err2)
			}
		}
	})
}

func FuzzDecodeUpdateBatch(f *testing.F) {
	f.Add(payloadOf(AppendUpdateBatch(nil, &UpdateBatch{})))
	one := &UpdateBatch{}
	one.Append(Update{Node: 3, Report: motion.Report{Pos: geo.Point{X: 1, Y: 2}, Vel: geo.Vector{X: 3, Y: 4}, Time: 5}})
	f.Add(payloadOf(AppendUpdateBatch(nil, one)))
	multi := &UpdateBatch{}
	for i := 0; i < 17; i++ {
		multi.Append(Update{Node: uint32(1000 - i), Report: motion.Report{
			Pos: geo.Point{X: float64(i) * 3.25, Y: -float64(i)}, Time: float64(i),
		}})
	}
	f.Add(payloadOf(AppendUpdateBatch(nil, multi)))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		var batch UpdateBatch
		err := DecodeUpdateBatchInto(&batch, b)
		if err != nil {
			return
		}
		// The decoder must size its columns from bytes the payload
		// actually paid for (≥6 per record), never from the raw count.
		if cap(batch.Node)*6 > len(b) && cap(batch.Node) > 0 {
			t.Fatalf("over-allocation: cap %d records from %d payload bytes", cap(batch.Node), len(b))
		}
		// Decoded values are fixed points of the wire quantization, so a
		// re-encode must reproduce the batch exactly.
		var again UpdateBatch
		if err := DecodeUpdateBatchInto(&again, payloadOf(AppendUpdateBatch(nil, &batch))); err != nil {
			t.Fatalf("re-encode failed to decode: %v", err)
		}
		if again.Len() != batch.Len() {
			t.Fatalf("re-encode length %d, want %d", again.Len(), batch.Len())
		}
		for i := 0; i < batch.Len(); i++ {
			if again.Update(i) != batch.Update(i) {
				t.Fatalf("record %d: %+v vs %+v", i, again.Update(i), batch.Update(i))
			}
		}
	})
}

func FuzzReadFrame(f *testing.F) {
	f.Add(AppendHello(nil, Hello{Node: 1, Pos: geo.Point{X: 1, Y: 1}}))
	f.Add(AppendAssignment(nil, Assignment{Station: 0, DefaultDelta: 5}))
	f.Add(AppendResult(nil, Result{ID: 1, Nodes: []uint32{9}}))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 2}) // oversized declared length
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		typ, payload, err := ReadFrame(bytes.NewReader(b))
		if err != nil {
			return
		}
		if len(payload) > MaxPayload {
			t.Fatalf("payload %d exceeds MaxPayload", len(payload))
		}
		if len(payload) > len(b) {
			t.Fatalf("payload %d longer than input %d", len(payload), len(b))
		}
		_ = typ
	})
}

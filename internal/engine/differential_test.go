package engine_test

import (
	"math"
	"testing"

	"lira/internal/controlplane"
	"lira/internal/cqserver"
	"lira/internal/engine"
	"lira/internal/fmodel"
	"lira/internal/geo"
	"lira/internal/motion"
	"lira/internal/partition"
	"lira/internal/queue"
	"lira/internal/rng"
	"lira/internal/shard"
	"lira/internal/statgrid"
	"lira/internal/throtloop"
	"lira/internal/throttler"
)

func space() geo.Rect { return geo.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000} }

func baseConfig() cqserver.Config {
	curve := fmodel.Hyperbolic(5, 100, 95)
	return cqserver.Config{
		Space:     space(),
		Nodes:     120,
		L:         13,
		Curve:     curve,
		QueueSize: 100000,
		Fairness:  throttler.NoFairness(curve),
	}
}

// workload is the deterministic bouncing-node simulation both sides of a
// differential run are fed from.
type workload struct {
	r      *rng.Rand
	pos    []geo.Point
	vel    []geo.Vector
	speeds []float64
}

func newWorkload(seed uint64, nodes int) *workload {
	w := &workload{
		r:      rng.New(seed),
		pos:    make([]geo.Point, nodes),
		vel:    make([]geo.Vector, nodes),
		speeds: make([]float64, nodes),
	}
	sp := space()
	for i := range w.pos {
		w.pos[i] = geo.Point{X: w.r.Range(sp.MinX, sp.MaxX), Y: w.r.Range(sp.MinY, sp.MaxY)}
		w.vel[i] = geo.Vector{X: w.r.Range(-40, 40), Y: w.r.Range(-40, 40)}
		w.speeds[i] = math.Hypot(w.vel[i].X, w.vel[i].Y)
	}
	return w
}

func (w *workload) step(t float64) []cqserver.Update {
	sp := space()
	var ups []cqserver.Update
	for i := range w.pos {
		w.pos[i].X += w.vel[i].X
		w.pos[i].Y += w.vel[i].Y
		if w.pos[i].X < sp.MinX || w.pos[i].X > sp.MaxX {
			w.vel[i].X = -w.vel[i].X
			w.pos[i].X += 2 * w.vel[i].X
		}
		if w.pos[i].Y < sp.MinY || w.pos[i].Y > sp.MaxY {
			w.vel[i].Y = -w.vel[i].Y
			w.pos[i].Y += 2 * w.vel[i].Y
		}
		w.pos[i] = sp.ClampPoint(w.pos[i])
		w.speeds[i] = math.Hypot(w.vel[i].X, w.vel[i].Y)
		if w.r.Bool(0.4) {
			ups = append(ups, cqserver.Update{
				Node:   i,
				Report: motion.Report{Pos: w.pos[i], Vel: w.vel[i], Time: t},
			})
		}
	}
	return ups
}

func testQueries(r *rng.Rand) []geo.Rect {
	sp := space()
	qs := []geo.Rect{sp}
	for i := 0; i < 8; i++ {
		x0, y0 := r.Range(sp.MinX, sp.MaxX), r.Range(sp.MinY, sp.MaxY)
		qs = append(qs, geo.Rect{
			MinX: x0, MinY: y0,
			MaxX: math.Min(sp.MaxX, x0+r.Range(20, 400)),
			MaxY: math.Min(sp.MaxY, y0+r.Range(20, 400)),
		})
	}
	return qs
}

func equalResults(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// legacyPipeline is the pre-refactor adaptation loop, hand-wired exactly
// as the engines used to inline it: a privately owned THROTLOOP
// controller fed from the engine's rate window, followed by direct
// GRIDREDUCE and GREEDYINCREMENT calls over the engine's statistics
// grid. The differential tests drive it next to the control-plane path
// to prove the refactor changed no decision bit.
type legacyPipeline struct {
	cfg   cqserver.Config
	loop  *throtloop.Controller
	rates func(window float64) (lambda, mu float64)
	grid  func() *statgrid.Grid
}

func newLegacyPipeline(t *testing.T, eng engine.Engine, cfg cqserver.Config) *legacyPipeline {
	t.Helper()
	loop, err := throtloop.New(eng.QueueCap())
	if err != nil {
		t.Fatal(err)
	}
	lp := &legacyPipeline{cfg: cfg, loop: loop, grid: eng.StatsGrid}
	switch s := eng.(type) {
	case *cqserver.Server:
		lp.rates = s.Queue().Rates
	case *shard.Server:
		lp.rates = s.Rates
	default:
		t.Fatalf("unknown engine type %T", eng)
	}
	return lp
}

func (lp *legacyPipeline) adaptAuto(window float64) (float64, *throttler.Result, error) {
	lambda, mu := lp.rates(window)
	z := lp.loop.Observe(queue.Utilization(lambda, mu))
	part, err := partition.GridReduce(lp.grid(), partition.Config{
		L: lp.cfg.L, Z: z, Curve: lp.cfg.Curve, ProtectQueries: lp.cfg.ProtectQueries,
	})
	if err != nil {
		return z, nil, err
	}
	res, err := throttler.SetThrottlers(part.Stats(), lp.cfg.Curve, throttler.Options{
		Z:        z,
		Fairness: lp.cfg.Fairness,
		UseSpeed: lp.cfg.UseSpeed,
	})
	return z, res, err
}

// TestControlPlaneMatchesLegacyPipeline is the refactor-equivalence
// suite: for each seed and each engine kind, two identically-fed engines
// adapt side by side — one through the post-refactor control plane
// (AdaptAuto), one through the hand-wired pre-refactor pipeline — and
// every adaptation round's z, Δᵢ table, and BudgetMet must be
// bit-identical, with query results compared at every tick.
func TestControlPlaneMatchesLegacyPipeline(t *testing.T) {
	const (
		nodes  = 120
		ticks  = 24
		every  = 8 // adaptation period in ticks
		window = float64(every)
	)
	for _, seed := range []uint64{1, 2, 3} {
		for _, shards := range []int{1, 4} {
			cfg := baseConfig()
			cand, err := engine.New(cfg, shards)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := engine.New(cfg, shards)
			if err != nil {
				t.Fatal(err)
			}
			legacy := newLegacyPipeline(t, ref, cfg)
			qs := testQueries(rng.New(seed).Split(99))
			cand.RegisterQueries(qs)
			ref.RegisterQueries(qs)
			w := newWorkload(seed, nodes)
			var rounds int
			for tick := 1; tick <= ticks; tick++ {
				now := float64(tick)
				for _, u := range w.step(now) {
					if !cand.Ingest(u) || !ref.Ingest(u) {
						t.Fatalf("seed %d shards %d: overflow in no-overflow regime", seed, shards)
					}
				}
				cand.Drain(-1)
				ref.Drain(-1)
				cand.ObserveStatistics(w.pos, w.speeds)
				ref.ObserveStatistics(w.pos, w.speeds)
				cand.ObserveBusy(0.5)
				ref.ObserveBusy(0.5)
				if !equalResults(cand.Evaluate(now), ref.Evaluate(now)) {
					t.Fatalf("seed %d shards %d tick %d: query results diverged",
						seed, shards, tick)
				}
				if tick%every != 0 {
					continue
				}
				rounds++
				ca, err := cand.AdaptAuto(window)
				if err != nil {
					t.Fatal(err)
				}
				lz, lres, err := legacy.adaptAuto(window)
				if err != nil {
					t.Fatal(err)
				}
				if ca.Z != lz {
					t.Fatalf("seed %d shards %d round %d: z diverged: plane %v, legacy %v",
						seed, shards, rounds, ca.Z, lz)
				}
				if ca.Z != cand.Throttle().Z() {
					t.Fatalf("seed %d shards %d round %d: adaptation z %v != controller z %v",
						seed, shards, rounds, ca.Z, cand.Throttle().Z())
				}
				if len(ca.Deltas) != len(lres.Deltas) {
					t.Fatalf("seed %d shards %d round %d: region count diverged: %d vs %d",
						seed, shards, rounds, len(ca.Deltas), len(lres.Deltas))
				}
				for i := range ca.Deltas {
					if ca.Deltas[i] != lres.Deltas[i] {
						t.Fatalf("seed %d shards %d round %d: Δ[%d] diverged: plane %v, legacy %v",
							seed, shards, rounds, i, ca.Deltas[i], lres.Deltas[i])
					}
				}
				if ca.BudgetMet != lres.BudgetMet {
					t.Fatalf("seed %d shards %d round %d: BudgetMet diverged", seed, shards, rounds)
				}
			}
			if rounds != ticks/every {
				t.Fatalf("expected %d adaptation rounds, ran %d", ticks/every, rounds)
			}
		}
	}
}

// TestShardK1MatchesCqserver re-pins the factory-level K=1 ≡ unsharded
// claim through the engine abstraction: a shard.Server forced to one
// shard and a cqserver.Server fed the identical stream produce identical
// query results, z trajectories, and Δᵢ tables.
func TestShardK1MatchesCqserver(t *testing.T) {
	const nodes, ticks = 120, 20
	cfg := baseConfig()
	un, err := engine.New(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := shard.New(shard.Config{Core: cfg, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	qs := testQueries(rng.New(11).Split(99))
	un.RegisterQueries(qs)
	sh.RegisterQueries(qs)
	w := newWorkload(11, nodes)
	for tick := 1; tick <= ticks; tick++ {
		now := float64(tick)
		for _, u := range w.step(now) {
			if !un.Ingest(u) || !sh.Ingest(u) {
				t.Fatalf("overflow at tick %d", tick)
			}
		}
		un.Drain(-1)
		sh.Drain(-1)
		un.ObserveStatistics(w.pos, w.speeds)
		sh.ObserveStatistics(w.pos, w.speeds)
		un.ObserveBusy(0.5)
		sh.ObserveBusy(0.5)
		if !equalResults(un.Evaluate(now), sh.Evaluate(now)) {
			t.Fatalf("tick %d: query results diverged", tick)
		}
	}
	ua, err := un.AdaptAuto(float64(ticks))
	if err != nil {
		t.Fatal(err)
	}
	sa, err := sh.AdaptAuto(float64(ticks))
	if err != nil {
		t.Fatal(err)
	}
	if ua.Z != sa.Z {
		t.Fatalf("z diverged: unsharded %v, K=1 %v", ua.Z, sa.Z)
	}
	if len(ua.Deltas) != len(sa.Deltas) {
		t.Fatalf("region count diverged: %d vs %d", len(ua.Deltas), len(sa.Deltas))
	}
	for i := range ua.Deltas {
		if ua.Deltas[i] != sa.Deltas[i] {
			t.Fatalf("Δ[%d] diverged: %v vs %v", i, ua.Deltas[i], sa.Deltas[i])
		}
	}
}

// TestPoliciesAgreeAcrossEngines pins engine-independence of the policy
// layer: after identical warmup, every built-in policy produces the same
// partitioning size and bit-identical Δᵢ on the unsharded and the
// sharded engine — the property that makes baseline comparisons on one
// engine transfer to the other.
func TestPoliciesAgreeAcrossEngines(t *testing.T) {
	const nodes, ticks = 120, 15
	cfg := baseConfig()
	warm := func(eng engine.Engine) {
		eng.RegisterQueries(testQueries(rng.New(21).Split(99)))
		w := newWorkload(21, nodes)
		for tick := 1; tick <= ticks; tick++ {
			now := float64(tick)
			for _, u := range w.step(now) {
				eng.Ingest(u)
			}
			eng.Drain(-1)
			eng.ObserveStatistics(w.pos, w.speeds)
		}
	}
	un, err := engine.New(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := engine.New(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	warm(un)
	warm(sh)
	for _, pol := range controlplane.Policies() {
		// Stateful policies (hysteresis) must not be shared between
		// engines: give each its own instance so held state from one
		// engine's adaptations cannot leak into the other's.
		upol, _ := controlplane.NewPolicy(pol.Name())
		spol, _ := controlplane.NewPolicy(pol.Name())
		un.ControlPlane().SetPolicy(upol)
		sh.ControlPlane().SetPolicy(spol)
		for _, z := range []float64{0.7, 0.4} {
			ua, err := un.Adapt(z)
			if err != nil {
				t.Fatalf("%s unsharded: %v", pol.Name(), err)
			}
			sa, err := sh.Adapt(z)
			if err != nil {
				t.Fatalf("%s sharded: %v", pol.Name(), err)
			}
			if len(ua.Deltas) != len(sa.Deltas) {
				t.Fatalf("%s z=%.1f: region count diverged: %d vs %d",
					pol.Name(), z, len(ua.Deltas), len(sa.Deltas))
			}
			for i := range ua.Deltas {
				if ua.Deltas[i] != sa.Deltas[i] {
					t.Fatalf("%s z=%.1f: Δ[%d] diverged: %v vs %v",
						pol.Name(), z, i, ua.Deltas[i], sa.Deltas[i])
				}
			}
			if ua.BudgetMet != sa.BudgetMet {
				t.Fatalf("%s z=%.1f: BudgetMet diverged", pol.Name(), z)
			}
		}
	}
}

// TestFactorySelection pins the engine.New contract: the shard count
// selects the implementation, and each implementation reports its
// concurrency class and introspection identity correctly.
func TestFactorySelection(t *testing.T) {
	cfg := baseConfig()
	un, err := engine.New(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := un.(*cqserver.Server); !ok {
		t.Fatalf("shards=1: want *cqserver.Server, got %T", un)
	}
	if un.ConcurrentIngest() {
		t.Fatal("cqserver must report single-producer ingest")
	}
	if info := un.Introspect(); info.Engine != "cqserver" || info.Shards != 1 {
		t.Fatalf("unexpected unsharded introspection: %+v", info)
	}
	sh, err := engine.New(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sh.(*shard.Server); !ok {
		t.Fatalf("shards=4: want *shard.Server, got %T", sh)
	}
	if !sh.ConcurrentIngest() {
		t.Fatal("shard must report concurrent-safe ingest")
	}
	if info := sh.Introspect(); info.Engine != "shard" || info.Shards != 4 {
		t.Fatalf("unexpected sharded introspection: %+v", info)
	}
}

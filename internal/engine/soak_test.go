package engine_test

import (
	"fmt"
	"runtime"
	"testing"

	"lira/internal/cqserver"
	"lira/internal/engine"
	"lira/internal/geo"
	"lira/internal/motion"
	"lira/internal/rng"
)

// TestSoakFlatHeap is the memory-model acceptance gate at system scale:
// after warmup, a sustained ingest → drain → evaluate load (100k updates
// per engine) must leave the live heap where it found it. The
// AllocsPerRun gates prove the hot paths allocate nothing per operation;
// this soak proves nothing *accumulates* either — no leaked buffers, no
// unbounded index growth, no result-slice churn surviving collection.
func TestSoakFlatHeap(t *testing.T) {
	const (
		nodes      = 1500
		perCycle   = 500
		cycles     = 200
		heapBound  = 1 << 20 // 1 MiB of residual growth tolerated
		warmCycles = 20
	)
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("k=%d", shards), func(t *testing.T) {
			cfg := baseConfig()
			cfg.Nodes = nodes
			cfg.QueueSize = 4096
			eng, err := engine.New(cfg, shards)
			if err != nil {
				t.Fatal(err)
			}
			eng.RegisterQueries(testQueries(rng.New(7).Split(99)))
			r := rng.New(7)
			ups := make([]cqserver.Update, nodes)
			for i := range ups {
				ups[i] = cqserver.Update{Node: i, Report: motion.Report{
					Pos: geo.Point{X: r.Range(0, 1000), Y: r.Range(0, 1000)},
					Vel: geo.Vector{X: r.Range(-10, 10), Y: r.Range(-10, 10)},
				}}
			}
			now, next := 1.0, 0
			cycle := func() {
				for j := 0; j < perCycle; j++ {
					u := ups[next%len(ups)]
					u.Report.Time = now
					next++
					eng.IngestShedOldest(u)
				}
				eng.Drain(-1)
				eng.Evaluate(now)
				now += 0.1
			}
			for i := 0; i < warmCycles; i++ {
				cycle()
			}
			runtime.GC()
			var before runtime.MemStats
			runtime.ReadMemStats(&before)
			for i := 0; i < cycles; i++ {
				cycle()
			}
			runtime.GC()
			var after runtime.MemStats
			runtime.ReadMemStats(&after)
			delta := int64(after.HeapAlloc) - int64(before.HeapAlloc)
			if delta > heapBound {
				t.Errorf("k=%d: heap grew %d bytes over %d updates, bound %d",
					shards, delta, cycles*perCycle, heapBound)
			}
		})
	}
}

// Package engine defines the neutral CQ-engine abstraction every layer
// above the servers programs against: the network service, the experiment
// harness, the simulators, and the benchmark drivers all accept an Engine
// instead of a concrete server type. Two implementations exist — the
// unsharded cqserver.Server and the spatially sharded shard.Server — and
// both promise byte-identical query results over the same ingest sequence,
// so callers treat the choice purely as a concurrency/throughput knob.
//
// The interface was promoted out of internal/netsvc (which keeps a
// deprecated alias) so that engine-generic code need not depend on the
// network layer. Adaptation behavior is uniform by construction: both
// implementations delegate Adapt/AdaptAuto to an internal/controlplane
// Plane, so the GRIDREDUCE → GREEDYINCREMENT wiring and its telemetry
// exist exactly once regardless of which engine runs.
package engine

import (
	"lira/internal/controlplane"
	"lira/internal/cqserver"
	"lira/internal/geo"
	"lira/internal/history"
	"lira/internal/motion"
	"lira/internal/shard"
	"lira/internal/statgrid"
	"lira/internal/throtloop"
)

// Info is a point-in-time engine snapshot for introspection endpoints and
// operator tooling; both engines report the same shape.
type Info = cqserver.EngineInfo

// Engine is a mobile CQ evaluation engine: ingest, drain, evaluate, and
// the LIRA adaptation loop. Methods other than Ingest/IngestShedOldest
// are single-caller (the owner's drive loop); whether ingest tolerates
// concurrent producers is reported by ConcurrentIngest.
type Engine interface {
	// RegisterQueries replaces the registered continuous range queries.
	RegisterQueries(qs []geo.Rect)
	// Queries returns the registered queries.
	Queries() []geo.Rect

	// Ingest offers an update; a full queue drops it (drop-newest).
	Ingest(u cqserver.Update) bool
	// IngestShedOldest enqueues an update, shedding the oldest on
	// overflow; the flag reports whether a shed happened.
	IngestShedOldest(u cqserver.Update) bool
	// IngestShedOldestBatch enqueues a slice of updates in arrival order
	// under the shed-oldest policy and returns how many were shed. A
	// batch of n counts exactly n arrivals — identical to n
	// IngestShedOldest calls — but admission is vectored, which is what
	// the batched wire format feeds.
	IngestShedOldestBatch(us []cqserver.Update) int
	// IngestShedOldestColumns is the columnar variant of
	// IngestShedOldestBatch: records arrive as the parallel column
	// slices a decoded wire batch already holds (all equal length), so
	// survivors scatter straight into ring slots with no intermediate
	// contiguous staging.
	IngestShedOldestColumns(nodes []uint32, xs, ys, vxs, vys, times []float64) int
	// ConcurrentIngest reports whether Ingest/IngestShedOldest are safe
	// for concurrent producers.
	ConcurrentIngest() bool
	// Apply installs an update directly, bypassing the queue (the
	// harness's infinitely provisioned reference path).
	Apply(u cqserver.Update)
	// Drain applies up to limit queued updates (negative: all).
	Drain(limit int) int

	// Evaluate re-evaluates every query at time now, ids ascending.
	Evaluate(now float64) [][]int
	// SetDegradedEval switches Evaluate to prediction-only mode while on
	// (the admission ladder's critical rung): each query's previous
	// members are refreshed by dead reckoning and departures dropped, but
	// no index maintenance or fragment scans run and no new entrants are
	// discovered — accuracy degrades, availability does not. Reversible;
	// both engines produce identical degraded results over the same prior
	// results. Single-caller, like Evaluate.
	SetDegradedEval(on bool)
	// SetCompactionDeferred defers debt-triggered index compaction while
	// on (the admission ladder's shed rung). A no-op on engines that
	// rebuild their index in full each round. Safe to call concurrently
	// with Evaluate's readers.
	SetCompactionDeferred(on bool)
	// PredictedPosition returns the engine's belief about a node.
	PredictedPosition(id int, now float64) (geo.Point, bool)

	// ObserveStatistics folds one sampling round into the statistics grid.
	ObserveStatistics(positions []geo.Point, speeds []float64)
	// ObserveBusy accumulates busy time into the current rate window.
	ObserveBusy(busy float64)
	// StatsGrid returns the grid an adaptation partitions (the merged
	// view when sharded). It implements controlplane.StatsSource.
	StatsGrid() *statgrid.Grid

	// Adapt runs one adaptation cycle at throttle fraction z.
	Adapt(z float64) (*controlplane.Adaptation, error)
	// AdaptAuto measures the window, steps THROTLOOP, and adapts.
	AdaptAuto(window float64) (*controlplane.Adaptation, error)
	// ControlPlane exposes the engine's control plane (policy swaps).
	ControlPlane() *controlplane.Plane
	// Throttle exposes the THROTLOOP controller.
	Throttle() *throtloop.Controller

	// Table exposes the motion table.
	Table() *motion.Table
	// History returns the report history store, or nil when disabled.
	History() *history.Store
	// Applied returns the number of updates integrated so far.
	Applied() int64
	// Arrived returns the number of updates offered to the input queue(s)
	// so far (admitted or shed). Together with Applied, Dropped, and
	// QueueLen it carries the engine's record-conservation invariant:
	// at quiescence Arrived == Applied + Dropped + QueueLen, provided
	// every record entered through the queue (Apply bypasses it and
	// counts only toward Applied).
	Arrived() int64
	// QueueLen and QueueCap describe the input queue, and Dropped counts
	// updates shed or rejected on overflow (each summed across shards
	// when sharded).
	QueueLen() int
	QueueCap() int
	Dropped() int64

	// Introspect returns a point-in-time engine snapshot.
	Introspect() Info
}

// Interface conformance: both servers are Engines.
var (
	_ Engine = (*cqserver.Server)(nil)
	_ Engine = (*shard.Server)(nil)
)

// New builds the engine selected by shards: the spatially sharded server
// for shards > 1, the unsharded server otherwise. cfg is interpreted
// exactly as cqserver.New interprets it (defaults included); when sharded
// it becomes shard.Config.Core, with cfg.QueueSize split across the shard
// rings.
func New(cfg cqserver.Config, shards int) (Engine, error) {
	if shards > 1 {
		return shard.New(shard.Config{Core: cfg, Shards: shards})
	}
	return cqserver.New(cfg)
}

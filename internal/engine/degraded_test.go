package engine_test

import (
	"testing"

	"lira/internal/cqserver"
	"lira/internal/engine"
	"lira/internal/rng"
)

// TestDegradedEvalEnginesAgree is the critical-rung differential: after
// the same warm-up, both engines switched to degraded (prediction-only)
// evaluation must answer every query bit-identically — to each other,
// and to the subset rule "previous result filtered by predicted
// containment". Results may only shrink, and flipping degradation off
// must restore full evaluation.
func TestDegradedEvalEnginesAgree(t *testing.T) {
	for _, seed := range []uint64{1, 7} {
		cfg := baseConfig()
		un, err := engine.New(cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		sh, err := engine.New(cfg, 4)
		if err != nil {
			t.Fatal(err)
		}
		queries := testQueries(rng.New(seed * 11))
		un.RegisterQueries(queries)
		sh.RegisterQueries(queries)

		w := newWorkload(seed, cfg.Nodes)
		feed := func(ups []cqserver.Update) {
			for _, u := range ups {
				un.Ingest(u)
				sh.Ingest(u)
			}
			un.Drain(-1)
			sh.Drain(-1)
		}
		var now float64
		for step := 0; step < 5; step++ {
			now = float64(step)
			feed(w.step(now))
		}
		full := un.Evaluate(now)
		sh.Evaluate(now)

		// Critical rung: prediction-only evaluation at a later time — the
		// nodes have moved (predictively) but no updates were applied.
		un.SetDegradedEval(true)
		sh.SetDegradedEval(true)
		for _, later := range []float64{now + 1, now + 3, now + 9} {
			ru := un.Evaluate(later)
			rs := sh.Evaluate(later)
			if !equalResults(ru, rs) {
				t.Fatalf("seed %d t=%v: degraded engines disagree:\n un=%v\n sh=%v", seed, later, ru, rs)
			}
			for qi := range ru {
				if len(ru[qi]) > len(full[qi]) {
					t.Fatalf("seed %d q%d: degraded result grew: %d > %d", seed, qi, len(ru[qi]), len(full[qi]))
				}
				seen := map[int]bool{}
				for _, id := range full[qi] {
					seen[id] = true
				}
				for _, id := range ru[qi] {
					if !seen[id] {
						t.Fatalf("seed %d q%d: degraded result admitted node %d absent from the full result", seed, qi, id)
					}
				}
			}
			full = ru // the next degraded round filters this one
		}

		// Recovery: degradation off restores normal evaluation, and the
		// engines still agree (the index catches back up).
		un.SetDegradedEval(false)
		sh.SetDegradedEval(false)
		feed(w.step(now + 10))
		ru := un.Evaluate(now + 10)
		rs := sh.Evaluate(now + 10)
		if !equalResults(ru, rs) {
			t.Fatalf("seed %d: engines disagree after recovery:\n un=%v\n sh=%v", seed, ru, rs)
		}
	}
}

// TestCompactionDeferral: deferring compaction must not change results —
// it only postpones index maintenance — and lifting the deferral lets
// the sharded engine compact again.
func TestCompactionDeferral(t *testing.T) {
	cfg := baseConfig()
	normal, err := engine.New(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	deferred, err := engine.New(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	queries := testQueries(rng.New(5))
	normal.RegisterQueries(queries)
	deferred.RegisterQueries(queries)
	deferred.SetCompactionDeferred(true)

	w1, w2 := newWorkload(3, cfg.Nodes), newWorkload(3, cfg.Nodes)
	for step := 0; step < 30; step++ {
		now := float64(step)
		for _, u := range w1.step(now) {
			normal.Ingest(u)
		}
		for _, u := range w2.step(now) {
			deferred.Ingest(u)
		}
		normal.Drain(-1)
		deferred.Drain(-1)
		rn := normal.Evaluate(now)
		rd := deferred.Evaluate(now)
		if !equalResults(rn, rd) {
			t.Fatalf("step %d: compaction deferral changed results:\n normal=%v\n deferred=%v", step, rn, rd)
		}
	}
	deferred.SetCompactionDeferred(false)
	now := 31.0
	for _, u := range w2.step(now) {
		deferred.Ingest(u)
	}
	deferred.Drain(-1)
	deferred.Evaluate(now) // must not panic with maintenance re-enabled
}

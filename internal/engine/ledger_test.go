package engine_test

import (
	"fmt"
	"testing"

	"lira/internal/engine"
	"lira/internal/rng"
)

// TestLedgerConservationDifferential pins the engine half of the record-
// conservation ledger on both engines, sharded and not, across seeds:
// every update offered to the input queue(s) is eventually accounted for
// as exactly one of applied, dropped, or still queued —
//
//	Arrived == Applied + Dropped + QueueLen
//
// — at every observation point in single-caller use, not just at
// quiescence. The workload forces all three fates: a small queue bound
// overflows under bursts (drops), partial drains leave residue (queued),
// and the rest lands in the motion table (applied). Ingest is exercised
// through all three paths the network layer uses (single, batch,
// columnar).
func TestLedgerConservationDifferential(t *testing.T) {
	for _, shards := range []int{1, 4} {
		for _, seed := range []uint64{1, 2, 3} {
			t.Run(fmt.Sprintf("K%d_seed%d", shards, seed), func(t *testing.T) {
				cfg := baseConfig()
				cfg.QueueSize = 64 // small bound: bursts must shed
				eng, err := engine.New(cfg, shards)
				if err != nil {
					t.Fatal(err)
				}
				w := newWorkload(seed, cfg.Nodes)
				r := rng.New(seed).Split(7)

				check := func(where string) {
					t.Helper()
					arrived, applied, dropped := eng.Arrived(), eng.Applied(), eng.Dropped()
					queued := int64(eng.QueueLen())
					if arrived != applied+dropped+queued {
						t.Fatalf("%s: conservation violated: arrived=%d != applied=%d + dropped=%d + queued=%d",
							where, arrived, applied, dropped, queued)
					}
				}

				for round := 0; round < 40; round++ {
					ups := w.step(float64(round))
					switch round % 3 {
					case 0: // single-record path
						for _, u := range ups {
							eng.IngestShedOldest(u)
						}
					case 1: // batch path
						eng.IngestShedOldestBatch(ups)
					case 2: // columnar path (what decoded wire batches feed)
						nodes := make([]uint32, len(ups))
						xs := make([]float64, len(ups))
						ys := make([]float64, len(ups))
						vxs := make([]float64, len(ups))
						vys := make([]float64, len(ups))
						times := make([]float64, len(ups))
						for i, u := range ups {
							nodes[i] = uint32(u.Node)
							xs[i], ys[i] = u.Report.Pos.X, u.Report.Pos.Y
							vxs[i], vys[i] = u.Report.Vel.X, u.Report.Vel.Y
							times[i] = u.Report.Time
						}
						eng.IngestShedOldestColumns(nodes, xs, ys, vxs, vys, times)
					}
					check(fmt.Sprintf("post-ingest round %d", round))
					// Partial drains leave a queued residue some rounds;
					// others drain fully.
					if r.Bool(0.5) {
						eng.Drain(int(r.Intn(20)))
					} else {
						eng.Drain(-1)
					}
					check(fmt.Sprintf("post-drain round %d", round))
				}

				eng.Drain(-1)
				check("quiescence")
				if eng.QueueLen() != 0 {
					t.Fatalf("queue not empty after full drain: %d", eng.QueueLen())
				}
				if eng.Dropped() == 0 {
					t.Fatalf("workload never overflowed the queue; the test lost its teeth")
				}
			})
		}
	}
}

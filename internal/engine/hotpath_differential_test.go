package engine_test

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"lira/internal/cqindex"
	"lira/internal/cqserver"
	"lira/internal/engine"
	"lira/internal/geo"
	"lira/internal/motion"
	"lira/internal/rng"
	"lira/internal/wire"
)

// TestBatchedWirePathMatchesDirect extends the differential matrix to the
// vectored wire path: for each seed and engine kind, a reference engine
// ingests quantized updates directly while a candidate engine receives
// the same updates through AppendUpdateBatch → DecodeUpdateBatchInto.
// The wire's fixed-point scales are powers of two, so quantize → encode →
// decode is an exact identity — query results, z, and the Δᵢ table must
// be byte-identical tick for tick.
func TestBatchedWirePathMatchesDirect(t *testing.T) {
	const nodes, ticks = 120, 20
	for _, seed := range []uint64{1, 2, 3} {
		for _, shards := range []int{1, 4} {
			t.Run(fmt.Sprintf("seed=%d/k=%d", seed, shards), func(t *testing.T) {
				cfg := baseConfig()
				ref, err := engine.New(cfg, shards)
				if err != nil {
					t.Fatal(err)
				}
				cand, err := engine.New(cfg, shards)
				if err != nil {
					t.Fatal(err)
				}
				qs := testQueries(rng.New(seed).Split(99))
				ref.RegisterQueries(qs)
				cand.RegisterQueries(qs)
				w := newWorkload(seed, nodes)
				var batch, decoded wire.UpdateBatch
				var frame []byte
				for tick := 1; tick <= ticks; tick++ {
					now := float64(tick)
					batch.Reset()
					for _, u := range w.step(now) {
						qu := cqserver.Update{Node: u.Node, Report: wire.QuantizeReport(u.Report)}
						if !ref.Ingest(qu) {
							t.Fatal("reference overflow in no-overflow regime")
						}
						batch.Append(wire.Update{Node: uint32(u.Node), Report: u.Report})
					}
					frame = wire.AppendUpdateBatch(frame[:0], &batch)
					typ, payload, err := wire.ReadFrame(bytes.NewReader(frame))
					if err != nil || typ != wire.TypeUpdateBatch {
						t.Fatalf("tick %d: reread frame: type %v err %v", tick, typ, err)
					}
					if err := wire.DecodeUpdateBatchInto(&decoded, payload); err != nil {
						t.Fatalf("tick %d: decode: %v", tick, err)
					}
					if decoded.Len() != batch.Len() {
						t.Fatalf("tick %d: decoded %d records, sent %d", tick, decoded.Len(), batch.Len())
					}
					// Admit through the vectored columnar path — the exact
					// path the batched server and the saturation benchmark
					// drive — and cross-check the shed accounting.
					if shed := cand.IngestShedOldestColumns(
						decoded.Node, decoded.X, decoded.Y, decoded.VX, decoded.VY, decoded.Time); shed != 0 {
						t.Fatalf("tick %d: candidate shed %d in no-overflow regime", tick, shed)
					}
					ref.Drain(-1)
					cand.Drain(-1)
					ref.ObserveStatistics(w.pos, w.speeds)
					cand.ObserveStatistics(w.pos, w.speeds)
					if !equalResults(ref.Evaluate(now), cand.Evaluate(now)) {
						t.Fatalf("tick %d: query results diverged across the wire path", tick)
					}
				}
				ra, err := ref.Adapt(0.5)
				if err != nil {
					t.Fatal(err)
				}
				ca, err := cand.Adapt(0.5)
				if err != nil {
					t.Fatal(err)
				}
				if ra.Z != ca.Z {
					t.Fatalf("z diverged: direct %v, wire %v", ra.Z, ca.Z)
				}
				if len(ra.Deltas) != len(ca.Deltas) {
					t.Fatalf("region count diverged: %d vs %d", len(ra.Deltas), len(ca.Deltas))
				}
				for i := range ra.Deltas {
					if ra.Deltas[i] != ca.Deltas[i] {
						t.Fatalf("Δ[%d] diverged: direct %v, wire %v", i, ra.Deltas[i], ca.Deltas[i])
					}
				}
			})
		}
	}
}

// aosRef is the pre-SoA evaluator, reconstructed locally: per-node
// motion.Report structs, a wholesale-rebuilt grid, callback-driven scans,
// and a per-query sort — exactly the layout the resident columns
// replaced. It is the differential oracle proving the SoA refactor
// changed no result bit.
type aosRef struct {
	space     geo.Rect
	reports   []motion.Report
	known     []bool
	predicted []geo.Point
	active    []bool
	index     *cqindex.Grid
	queries   []geo.Rect
}

func newAosRef(cfg cqserver.Config, qs []geo.Rect) *aosRef {
	return &aosRef{
		space:     cfg.Space,
		reports:   make([]motion.Report, cfg.Nodes),
		known:     make([]bool, cfg.Nodes),
		predicted: make([]geo.Point, cfg.Nodes),
		active:    make([]bool, cfg.Nodes),
		index:     cqindex.NewGrid(cfg.Space, 64), // cqserver's IndexCells default
		queries:   qs,
	}
}

func (a *aosRef) apply(u cqserver.Update) {
	a.reports[u.Node] = u.Report
	a.known[u.Node] = true
}

func (a *aosRef) evaluate(now float64) [][]int {
	for i := range a.reports {
		a.active[i] = a.known[i]
		if a.known[i] {
			a.predicted[i] = a.space.ClampPoint(a.reports[i].Predict(now))
		}
	}
	a.index.Rebuild(a.predicted, a.active)
	out := make([][]int, len(a.queries))
	for qi, q := range a.queries {
		var ids []int
		a.index.Query(q, func(id int) { ids = append(ids, id) })
		sort.Ints(ids)
		out[qi] = ids
	}
	return out
}

// TestSoALayoutMatchesAoSReference runs both engines against the
// struct-of-reports oracle: same updates, same instants, byte-identical
// member lists. Report.Predict and Columns.Predict evaluate the same
// float64 expression, so even the boundary cases (a node exactly on a
// query edge after prediction) must agree bit for bit.
func TestSoALayoutMatchesAoSReference(t *testing.T) {
	const nodes, ticks = 120, 20
	for _, seed := range []uint64{1, 2, 3} {
		for _, shards := range []int{1, 4} {
			t.Run(fmt.Sprintf("seed=%d/k=%d", seed, shards), func(t *testing.T) {
				cfg := baseConfig()
				eng, err := engine.New(cfg, shards)
				if err != nil {
					t.Fatal(err)
				}
				qs := testQueries(rng.New(seed).Split(99))
				eng.RegisterQueries(qs)
				oracle := newAosRef(cfg, qs)
				w := newWorkload(seed, nodes)
				for tick := 1; tick <= ticks; tick++ {
					now := float64(tick)
					for _, u := range w.step(now) {
						if !eng.Ingest(u) {
							t.Fatal("overflow in no-overflow regime")
						}
						oracle.apply(u)
					}
					eng.Drain(-1)
					if !equalResults(eng.Evaluate(now), oracle.evaluate(now)) {
						t.Fatalf("tick %d: SoA engine diverged from AoS oracle", tick)
					}
				}
			})
		}
	}
}

// Package metrics implements the query-result accuracy metrics of §4.1:
// mean containment error E^C_rr, mean position error E^P_rr, and the
// fairness metrics D^C_ev (standard deviation of containment error across
// queries) and C^C_ov (its coefficient of variation).
package metrics

import (
	"math"
	"sort"

	"lira/internal/geo"
)

// ContainmentError returns (|R*∖R| + |R∖R*|) / |R*| for one query at one
// evaluation instant. Both id lists may be in any order and are not
// modified. The second result is false when the correct result set is
// empty (the paper's metric is undefined there; such samples are skipped).
func ContainmentError(result, correct []int) (float64, bool) {
	if len(correct) == 0 {
		return 0, false
	}
	inCorrect := make(map[int]struct{}, len(correct))
	for _, id := range correct {
		inCorrect[id] = struct{}{}
	}
	extra := 0
	for _, id := range result {
		if _, ok := inCorrect[id]; ok {
			delete(inCorrect, id)
		} else {
			extra++
		}
	}
	missing := len(inCorrect)
	return float64(missing+extra) / float64(len(correct)), true
}

// PositionError returns the mean distance between the believed and correct
// positions of the nodes in a query result. positions maps a node id to
// its pair of positions; ids not present in both maps are skipped. The
// second result is false when no node contributed.
func PositionError(result []int, believed, correct func(id int) (geo.Point, bool)) (float64, bool) {
	sum, n := 0.0, 0
	for _, id := range result {
		b, ok1 := believed(id)
		c, ok2 := correct(id)
		if !ok1 || !ok2 {
			continue
		}
		sum += b.Dist(c)
		n++
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// welford accumulates a running mean (numerically stable, single pass).
type welford struct {
	n    int
	mean float64
}

func (w *welford) add(x float64) {
	w.n++
	w.mean += (x - w.mean) / float64(w.n)
}

// Collector accumulates per-query error samples across evaluation
// instants.
type Collector struct {
	perQueryC []welford
	allC      welford
	allP      welford
}

// NewCollector returns a collector for numQueries queries.
func NewCollector(numQueries int) *Collector {
	return &Collector{perQueryC: make([]welford, numQueries)}
}

// RecordContainment records one containment-error sample for query q.
func (c *Collector) RecordContainment(q int, err float64) {
	c.perQueryC[q].add(err)
	c.allC.add(err)
}

// RecordPosition records one position-error sample for query q.
func (c *Collector) RecordPosition(q int, err float64) {
	c.allP.add(err)
}

// Summary holds the final evaluation metrics of one run.
type Summary struct {
	// MeanContainment is E^C_rr and MeanPosition is E^P_rr (meters).
	MeanContainment float64
	MeanPosition    float64
	// StdDevContainment is D^C_ev: the standard deviation of per-query
	// mean containment errors. CovContainment is C^C_ov = D/E.
	StdDevContainment float64
	CovContainment    float64
	// ContainmentSamples and PositionSamples count the (query, instant)
	// samples behind the means.
	ContainmentSamples int
	PositionSamples    int
}

// Summary computes the metrics accumulated so far.
func (c *Collector) Summary() Summary {
	s := Summary{
		MeanContainment:    c.allC.mean,
		MeanPosition:       c.allP.mean,
		ContainmentSamples: c.allC.n,
		PositionSamples:    c.allP.n,
	}
	// D^C_ev across queries that produced at least one sample.
	var means []float64
	for _, w := range c.perQueryC {
		if w.n > 0 {
			means = append(means, w.mean)
		}
	}
	if len(means) > 1 {
		mu := 0.0
		for _, m := range means {
			mu += m
		}
		mu /= float64(len(means))
		varSum := 0.0
		for _, m := range means {
			varSum += (m - mu) * (m - mu)
		}
		s.StdDevContainment = math.Sqrt(varSum / float64(len(means)))
		if mu > 0 {
			s.CovContainment = s.StdDevContainment / mu
		}
	}
	return s
}

// PerQueryContainment returns the per-query mean containment errors
// accumulated so far; queries with no samples report NaN.
func (c *Collector) PerQueryContainment() []float64 {
	out := make([]float64, len(c.perQueryC))
	for i, w := range c.perQueryC {
		if w.n > 0 {
			out[i] = w.mean
		} else {
			out[i] = math.NaN()
		}
	}
	return out
}

// SymmetricDiff returns |a∖b| + |b∖a| for two id sets given as unsorted
// slices. It is exported for tests and ad-hoc analysis.
func SymmetricDiff(a, b []int) int {
	as := append([]int(nil), a...)
	bs := append([]int(nil), b...)
	sort.Ints(as)
	sort.Ints(bs)
	i, j, diff := 0, 0, 0
	for i < len(as) && j < len(bs) {
		switch {
		case as[i] == bs[j]:
			i++
			j++
		case as[i] < bs[j]:
			diff++
			i++
		default:
			diff++
			j++
		}
	}
	return diff + (len(as) - i) + (len(bs) - j)
}

package metrics

import "sync/atomic"

// NetCounters aggregates the deployment layer's degradation counters so
// that fault handling is visible, not silent: every shed frame, tripped
// deadline, and reconnect is accounted, mirroring how the shedding layer
// accounts every dropped update. All fields are atomic; one NetCounters
// may be shared by a server and all of its clients.
type NetCounters struct {
	// Disconnects counts links lost to read/write errors or deadlines.
	Disconnects atomic.Int64
	// Reconnects counts successful client re-dials (a completed
	// backoff → dial → re-Hello cycle).
	Reconnects atomic.Int64
	// DeadlineTrips counts read deadlines that fired on silent links.
	DeadlineTrips atomic.Int64
	// ShedFrames counts input-queue overflows shed oldest-first by the
	// server instead of growing without bound.
	ShedFrames atomic.Int64
	// LostUpdates counts position updates a client had to discard
	// because it was disconnected (the node keeps dead-reckoning at the
	// conservative fallback Δ⊢ meanwhile).
	LostUpdates atomic.Int64
	// Heartbeats counts liveness pings sent.
	Heartbeats atomic.Int64
	// Panics counts per-connection handler panics that were isolated to
	// the offending connection.
	Panics atomic.Int64
}

// NetSnapshot is a plain-value copy of NetCounters for printing and
// assertions.
type NetSnapshot struct {
	Disconnects   int64
	Reconnects    int64
	DeadlineTrips int64
	ShedFrames    int64
	LostUpdates   int64
	Heartbeats    int64
	Panics        int64
}

// Snapshot returns the current counter values.
func (c *NetCounters) Snapshot() NetSnapshot {
	return NetSnapshot{
		Disconnects:   c.Disconnects.Load(),
		Reconnects:    c.Reconnects.Load(),
		DeadlineTrips: c.DeadlineTrips.Load(),
		ShedFrames:    c.ShedFrames.Load(),
		LostUpdates:   c.LostUpdates.Load(),
		Heartbeats:    c.Heartbeats.Load(),
		Panics:        c.Panics.Load(),
	}
}

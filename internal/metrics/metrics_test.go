package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"lira/internal/geo"
	"lira/internal/rng"
)

func TestContainmentError(t *testing.T) {
	cases := []struct {
		result, correct []int
		want            float64
		ok              bool
	}{
		{[]int{1, 2, 3}, []int{1, 2, 3}, 0, true},
		{[]int{1, 2}, []int{1, 2, 3}, 1.0 / 3, true},       // one missing
		{[]int{1, 2, 3, 4}, []int{1, 2, 3}, 1.0 / 3, true}, // one extra
		{[]int{4, 5}, []int{1, 2}, 2, true},                // disjoint: 2 missing + 2 extra over 2
		{nil, []int{1}, 1, true},
		{[]int{1}, nil, 0, false},                 // undefined for empty correct set
		{[]int{3, 1, 2}, []int{2, 3, 1}, 0, true}, // order-insensitive
	}
	for i, c := range cases {
		got, ok := ContainmentError(c.result, c.correct)
		if ok != c.ok || math.Abs(got-c.want) > 1e-12 {
			t.Errorf("case %d: ContainmentError = (%v, %v), want (%v, %v)", i, got, ok, c.want, c.ok)
		}
	}
}

func TestPositionError(t *testing.T) {
	believed := map[int]geo.Point{1: {X: 0, Y: 0}, 2: {X: 10, Y: 0}}
	correct := map[int]geo.Point{1: {X: 3, Y: 4}, 2: {X: 10, Y: 0}}
	lookup := func(m map[int]geo.Point) func(int) (geo.Point, bool) {
		return func(id int) (geo.Point, bool) {
			p, ok := m[id]
			return p, ok
		}
	}
	got, ok := PositionError([]int{1, 2}, lookup(believed), lookup(correct))
	if !ok || math.Abs(got-2.5) > 1e-12 { // (5 + 0) / 2
		t.Errorf("PositionError = (%v, %v), want 2.5", got, ok)
	}
	// Unknown ids are skipped.
	got, ok = PositionError([]int{1, 99}, lookup(believed), lookup(correct))
	if !ok || math.Abs(got-5) > 1e-12 {
		t.Errorf("PositionError with unknown = (%v, %v), want 5", got, ok)
	}
	if _, ok := PositionError([]int{99}, lookup(believed), lookup(correct)); ok {
		t.Error("all-unknown result should report false")
	}
	if _, ok := PositionError(nil, lookup(believed), lookup(correct)); ok {
		t.Error("empty result should report false")
	}
}

func TestCollectorSummary(t *testing.T) {
	c := NewCollector(2)
	// Query 0 is perfect, query 1 is consistently bad.
	for i := 0; i < 10; i++ {
		c.RecordContainment(0, 0)
		c.RecordContainment(1, 0.4)
		c.RecordPosition(0, 2)
		c.RecordPosition(1, 6)
	}
	s := c.Summary()
	if math.Abs(s.MeanContainment-0.2) > 1e-12 {
		t.Errorf("E^C = %v, want 0.2", s.MeanContainment)
	}
	if math.Abs(s.MeanPosition-4) > 1e-12 {
		t.Errorf("E^P = %v, want 4", s.MeanPosition)
	}
	// Per-query means are 0 and 0.4: population stddev = 0.2, cov = 1.
	if math.Abs(s.StdDevContainment-0.2) > 1e-12 {
		t.Errorf("D^C = %v, want 0.2", s.StdDevContainment)
	}
	if math.Abs(s.CovContainment-1) > 1e-12 {
		t.Errorf("C^C = %v, want 1", s.CovContainment)
	}
	if s.ContainmentSamples != 20 || s.PositionSamples != 20 {
		t.Errorf("samples = %d/%d", s.ContainmentSamples, s.PositionSamples)
	}
}

func TestCollectorEmptySummary(t *testing.T) {
	s := NewCollector(3).Summary()
	if s.MeanContainment != 0 || s.StdDevContainment != 0 || s.CovContainment != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSymmetricDiff(t *testing.T) {
	cases := []struct {
		a, b []int
		want int
	}{
		{nil, nil, 0},
		{[]int{1}, nil, 1},
		{[]int{1, 2, 3}, []int{2, 3, 4}, 2},
		{[]int{5, 1, 3}, []int{3, 1, 5}, 0},
	}
	for i, c := range cases {
		if got := SymmetricDiff(c.a, c.b); got != c.want {
			t.Errorf("case %d: SymmetricDiff = %d, want %d", i, got, c.want)
		}
	}
}

// Property: ContainmentError agrees with SymmetricDiff/|correct| and is
// symmetric in missing vs extra.
func TestContainmentMatchesSymmetricDiffProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := r.Intn(30) + 1
		var a, b []int
		for i := 0; i < n; i++ {
			if r.Bool(0.6) {
				a = append(a, i)
			}
			if r.Bool(0.6) {
				b = append(b, i)
			}
		}
		got, ok := ContainmentError(a, b)
		if len(b) == 0 {
			return !ok
		}
		want := float64(SymmetricDiff(a, b)) / float64(len(b))
		return ok && math.Abs(got-want) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

package metrics

import (
	"sync"
	"testing"
)

func TestNetCountersConcurrentSnapshot(t *testing.T) {
	var c NetCounters
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.Disconnects.Add(1)
				c.Reconnects.Add(1)
				c.DeadlineTrips.Add(1)
				c.ShedFrames.Add(1)
				c.LostUpdates.Add(1)
				c.Heartbeats.Add(1)
				c.Panics.Add(1)
			}
		}()
	}
	wg.Wait()
	got := c.Snapshot()
	want := NetSnapshot{800, 800, 800, 800, 800, 800, 800}
	if got != want {
		t.Errorf("Snapshot = %+v, want %+v", got, want)
	}
}

// Package trace simulates the movement of mobile nodes (cars) over a road
// network, standing in for the paper's hour-long USGS/traffic-volume trace.
//
// The Source is a streaming, re-simulable generator: it holds only the
// current per-car state, advances one tick at a time, and Reset restores
// tick zero with bit-identical randomness, so multiple strategies can be
// evaluated against the same trajectories without materializing the full
// trace (10 000 cars × 3 600 s would be hundreds of megabytes).
package trace

import (
	"math"

	"lira/internal/geo"
	"lira/internal/rng"
	"lira/internal/roadnet"
)

// Config parameterizes a trace.
type Config struct {
	// N is the number of mobile nodes.
	N int
	// Seed drives car placement, speeds, and routing decisions.
	Seed uint64
	// SpeedJitter is the stationary standard deviation of the per-car
	// speed factor (0.15 means cars mostly drive within ±15% of the class
	// speed). The factor evolves as an Ornstein–Uhlenbeck process, so a
	// car's speed drifts gradually away from what it last reported — the
	// source of the gradual dead-reckoning deviation that makes the
	// update reduction function f(Δ) steep near Δ⊢ and flat near Δ⊣
	// (Figure 1).
	SpeedJitter float64
	// SpeedTau is the correlation time of the speed factor in seconds.
	SpeedTau float64
}

// DefaultConfig returns the trace parameters used by the experiment
// harness.
func DefaultConfig() Config {
	return Config{N: 10000, Seed: 2, SpeedJitter: 0.15, SpeedTau: 20}
}

type car struct {
	edge   int     // current directed edge
	offset float64 // meters traveled along the edge
	factor float64 // per-car speed multiplier
	r      *rng.Rand
}

// Source generates positions for N cars over a road network.
type Source struct {
	net  *roadnet.Network
	cfg  Config
	cars []car
	tick int

	pos []geo.Point
	vel []geo.Vector
}

// NewSource returns a trace source at tick 0.
func NewSource(net *roadnet.Network, cfg Config) *Source {
	if cfg.N <= 0 {
		panic("trace: non-positive node count")
	}
	if cfg.SpeedJitter <= 0 {
		cfg.SpeedJitter = DefaultConfig().SpeedJitter
	}
	if cfg.SpeedTau <= 0 {
		cfg.SpeedTau = DefaultConfig().SpeedTau
	}
	s := &Source{net: net, cfg: cfg}
	s.Reset()
	return s
}

// Reset restores the source to tick 0. The regenerated trajectories are
// identical to the original ones: position streams are a pure function of
// (network, Config).
func (s *Source) Reset() {
	root := rng.New(s.cfg.Seed)
	s.cars = make([]car, s.cfg.N)
	s.pos = make([]geo.Point, s.cfg.N)
	s.vel = make([]geo.Vector, s.cfg.N)
	s.tick = 0
	place := root.Split(1)
	for i := range s.cars {
		e := s.net.SampleEdge(place)
		c := &s.cars[i]
		c.edge = e
		c.offset = place.Float64() * s.net.Edges[e].Length
		c.factor = clamp(1+place.Norm(0, s.cfg.SpeedJitter), 0.5, 1.5)
		c.r = root.Split(uint64(1000 + i))
		s.refresh(i)
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// N returns the number of cars.
func (s *Source) N() int { return s.cfg.N }

// Config returns the source's (default-filled) configuration. Because
// position streams are a pure function of (network, Config), a new source
// built from the same network and this config replays identical
// trajectories — the basis for running one logical trace on several
// goroutines, each with a private Source.
func (s *Source) Config() Config { return s.cfg }

// Tick returns the number of Step calls since the last Reset.
func (s *Source) Tick() int { return s.tick }

// SetNetwork swaps the road network mid-run — the mechanism behind
// road-closure scenarios, where traffic volumes change (closed roads drop
// to zero) while the geometry stays fixed. The new network must share the
// old one's topology: identical edge ids, endpoints, and lengths (e.g. a
// roadnet.WithClosures clone), otherwise car edge/offset state becomes
// meaningless. Determinism is preserved: the swap consumes no randomness,
// and a re-run swapping at the same tick replays identically.
func (s *Source) SetNetwork(net *roadnet.Network) {
	s.net = net
}

// Positions returns the current car positions. The returned slice is owned
// by the source and is overwritten by Step; callers must not retain it
// across steps.
func (s *Source) Positions() []geo.Point { return s.pos }

// Velocities returns the current car velocities under the same ownership
// rules as Positions.
func (s *Source) Velocities() []geo.Vector { return s.vel }

// Speed returns the current scalar speed of car i in m/s.
func (s *Source) Speed(i int) float64 {
	return s.net.Edges[s.cars[i].edge].Class.Speed() * s.cars[i].factor
}

// EdgeState returns car i's current directed edge and the meters traveled
// along it — the state a road-network-aware motion model reports instead
// of raw coordinates.
func (s *Source) EdgeState(i int) (edge int, offset float64) {
	return s.cars[i].edge, s.cars[i].offset
}

// Step advances the simulation by dt seconds.
func (s *Source) Step(dt float64) {
	// Ornstein–Uhlenbeck parameters for the speed-factor drift.
	decay := math.Exp(-dt / s.cfg.SpeedTau)
	diffuse := s.cfg.SpeedJitter * math.Sqrt(1-decay*decay)
	for i := range s.cars {
		c := &s.cars[i]
		c.factor = clamp(1+(c.factor-1)*decay+c.r.Norm(0, diffuse), 0.5, 1.5)
		remain := s.speedOf(c) * dt
		for remain > 0 {
			edgeLen := s.net.Edges[c.edge].Length
			left := edgeLen - c.offset
			if remain < left {
				c.offset += remain
				break
			}
			remain -= left
			c.edge = s.net.NextEdge(c.edge, c.r)
			c.offset = 0
			if s.net.Edges[c.edge].Length == 0 {
				break // degenerate edge; stay put this tick
			}
		}
		s.refresh(i)
	}
	s.tick++
}

func (s *Source) speedOf(c *car) float64 {
	return s.net.Edges[c.edge].Class.Speed() * c.factor
}

func (s *Source) refresh(i int) {
	c := &s.cars[i]
	edgeLen := s.net.Edges[c.edge].Length
	t := 0.0
	if edgeLen > 0 {
		t = c.offset / edgeLen
	}
	s.pos[i] = s.net.PointAlong(c.edge, t)
	s.vel[i] = s.net.Direction(c.edge).Scale(s.speedOf(c))
}

package trace

import (
	"math"
	"testing"

	"lira/internal/geo"
	"lira/internal/roadnet"
)

func testNet() *roadnet.Network {
	cfg := roadnet.DefaultConfig()
	cfg.Side = 4000
	cfg.GridStep = 250
	cfg.Centers = 2
	cfg.CenterRadius = 800
	return roadnet.Generate(cfg)
}

func TestSourceDeterministicAndResettable(t *testing.T) {
	net := testNet()
	cfg := Config{N: 200, Seed: 3}
	a := NewSource(net, cfg)
	b := NewSource(net, cfg)
	for tick := 0; tick < 50; tick++ {
		pa, pb := a.Positions(), b.Positions()
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("tick %d car %d: %v vs %v", tick, i, pa[i], pb[i])
			}
		}
		a.Step(1)
		b.Step(1)
	}
	// Record the trajectory of car 0, reset, and replay.
	a.Reset()
	if a.Tick() != 0 {
		t.Fatalf("Tick after Reset = %d", a.Tick())
	}
	var replay []geo.Point
	for tick := 0; tick < 50; tick++ {
		replay = append(replay, a.Positions()[0])
		a.Step(1)
	}
	a.Reset()
	for tick := 0; tick < 50; tick++ {
		if a.Positions()[0] != replay[tick] {
			t.Fatalf("replay diverged at tick %d", tick)
		}
		a.Step(1)
	}
}

func TestCarsMove(t *testing.T) {
	net := testNet()
	s := NewSource(net, Config{N: 100, Seed: 4})
	start := append([]geo.Point(nil), s.Positions()...)
	for i := 0; i < 30; i++ {
		s.Step(1)
	}
	moved := 0
	for i, p := range s.Positions() {
		if p.Dist(start[i]) > 1 {
			moved++
		}
	}
	if moved < 95 {
		t.Errorf("only %d/100 cars moved after 30 s", moved)
	}
}

func TestSpeedsArePlausible(t *testing.T) {
	net := testNet()
	s := NewSource(net, Config{N: 500, Seed: 5})
	// Displacement over one tick must not exceed the fastest class speed
	// with the maximum jitter factor.
	maxSpeed := roadnet.Expressway.Speed() * 1.5
	prev := append([]geo.Point(nil), s.Positions()...)
	for tick := 0; tick < 20; tick++ {
		s.Step(1)
		for i, p := range s.Positions() {
			d := p.Dist(prev[i])
			if d > maxSpeed+1e-6 {
				t.Fatalf("tick %d car %d jumped %.1f m in 1 s", tick, i, d)
			}
			prev[i] = p
		}
	}
}

func TestSpeedAccessor(t *testing.T) {
	net := testNet()
	s := NewSource(net, Config{N: 50, Seed: 6})
	for i := 0; i < 50; i++ {
		sp := s.Speed(i)
		if sp < roadnet.Collector.Speed()*0.5-1e-9 || sp > roadnet.Expressway.Speed()*1.5+1e-9 {
			t.Errorf("car %d speed %.1f outside class envelope", i, sp)
		}
		v := s.Velocities()[i]
		if math.Abs(v.Len()-sp) > 1e-9 {
			t.Errorf("car %d |velocity| %.2f != Speed %.2f", i, v.Len(), sp)
		}
	}
}

func TestPositionsStayNearSpace(t *testing.T) {
	net := testNet()
	s := NewSource(net, Config{N: 300, Seed: 7})
	bounds := net.Space
	for tick := 0; tick < 120; tick++ {
		s.Step(1)
	}
	for i, p := range s.Positions() {
		if p.X < bounds.MinX-200 || p.X > bounds.MaxX+200 ||
			p.Y < bounds.MinY-200 || p.Y > bounds.MaxY+200 {
			t.Fatalf("car %d escaped the space: %v", i, p)
		}
	}
}

func TestDensityFollowsVolume(t *testing.T) {
	// Cars should cluster where traffic volume is high: the densest
	// quadrant should hold noticeably more than a quarter of the cars.
	net := testNet()
	s := NewSource(net, Config{N: 4000, Seed: 8})
	for tick := 0; tick < 60; tick++ {
		s.Step(1)
	}
	half := net.Space.MaxX / 2
	var quad [4]int
	for _, p := range s.Positions() {
		q := 0
		if p.X >= half {
			q |= 1
		}
		if p.Y >= half {
			q |= 2
		}
		quad[q]++
	}
	max := 0
	for _, c := range quad {
		if c > max {
			max = c
		}
	}
	if float64(max)/4000 < 0.3 {
		t.Errorf("node density too uniform: max quadrant share %.2f", float64(max)/4000)
	}
}

func TestNewSourcePanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSource with N=0 should panic")
		}
	}()
	NewSource(testNet(), Config{N: 0})
}

// TestSetNetworkDeterministic: swapping in a closure clone mid-run is
// deterministic (two runs swapping at the same tick produce identical
// trajectories) and actually diverts traffic relative to an unswapped run.
func TestSetNetworkDeterministic(t *testing.T) {
	net := roadnet.Generate(roadnet.Config{Seed: 4})
	closed := net.WithClosures(net.TopVolumeEdges(8))
	cfg := Config{N: 200, Seed: 9}

	run := func(swap bool) []geo.Point {
		s := NewSource(net, cfg)
		for tick := 0; tick < 60; tick++ {
			if swap && tick == 20 {
				s.SetNetwork(closed)
			}
			s.Step(5)
		}
		out := make([]geo.Point, s.N())
		copy(out, s.Positions())
		return out
	}

	a, b := run(true), run(true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("car %d diverged between identical swapped runs: %v vs %v", i, a[i], b[i])
		}
	}
	base := run(false)
	diverged := 0
	for i := range a {
		if a[i] != base[i] {
			diverged++
		}
	}
	if diverged == 0 {
		t.Error("closing the 8 busiest roads diverted no car at all")
	}
}

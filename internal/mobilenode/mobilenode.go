// Package mobilenode implements the third layer of the LIRA architecture:
// the mobile node. A node stores the shedding-region subset broadcast by
// its current base station, locates its containing region with a tiny 5×5
// grid index (§4.3.2, "Mobile Node Side Cost"), dead-reckons its position
// with the region's update throttler as the inaccuracy threshold, and
// refreshes its stored subset on hand-off.
package mobilenode

import (
	"lira/internal/basestation"
	"lira/internal/geo"
	"lira/internal/motion"
)

// IndexSide is the side cell count of the node-side region lookup index.
// The paper's nodes use a 5×5 grid.
const IndexSide = 5

// Compiled is a station assignment compiled into the node-side lookup
// index. One Compiled is shared by every node camped on the station.
type Compiled struct {
	assignment *basestation.Assignment
	bounds     geo.Rect
	// cells[c] lists the indices of assignment regions intersecting grid
	// cell c.
	cells [IndexSide * IndexSide][]int32
}

// Compile builds the node-side index for a station assignment.
func Compile(a *basestation.Assignment) *Compiled {
	c := &Compiled{assignment: a}
	if len(a.Regions) == 0 {
		return c
	}
	b := a.Regions[0]
	for _, r := range a.Regions[1:] {
		if r.MinX < b.MinX {
			b.MinX = r.MinX
		}
		if r.MinY < b.MinY {
			b.MinY = r.MinY
		}
		if r.MaxX > b.MaxX {
			b.MaxX = r.MaxX
		}
		if r.MaxY > b.MaxY {
			b.MaxY = r.MaxY
		}
	}
	c.bounds = b
	w := b.Width() / IndexSide
	h := b.Height() / IndexSide
	for j := 0; j < IndexSide; j++ {
		for i := 0; i < IndexSide; i++ {
			cell := geo.Rect{
				MinX: b.MinX + float64(i)*w,
				MinY: b.MinY + float64(j)*h,
				MaxX: b.MinX + float64(i+1)*w,
				MaxY: b.MinY + float64(j+1)*h,
			}
			for ri, r := range a.Regions {
				if r.Intersects(cell) {
					c.cells[j*IndexSide+i] = append(c.cells[j*IndexSide+i], int32(ri))
				}
			}
		}
	}
	return c
}

// RegionCount returns the number of shedding regions the node stores.
func (c *Compiled) RegionCount() int { return len(c.assignment.Regions) }

// DeltaAt returns the update throttler of the shedding region containing
// p, falling back to the assignment's default for positions outside every
// stored region.
func (c *Compiled) DeltaAt(p geo.Point) float64 {
	a := c.assignment
	if len(a.Regions) == 0 {
		return a.DefaultDelta
	}
	cp := c.bounds.ClampPoint(p)
	i := int((cp.X - c.bounds.MinX) / c.bounds.Width() * IndexSide)
	j := int((cp.Y - c.bounds.MinY) / c.bounds.Height() * IndexSide)
	if i >= IndexSide {
		i = IndexSide - 1
	}
	if j >= IndexSide {
		j = IndexSide - 1
	}
	for _, ri := range c.cells[j*IndexSide+i] {
		if a.Regions[ri].Contains(p) {
			return a.Deltas[ri]
		}
	}
	// Closed-boundary second chance for points on shared region edges.
	for _, ri := range c.cells[j*IndexSide+i] {
		if a.Regions[ri].ContainsClosed(p) {
			return a.Deltas[ri]
		}
	}
	return a.DefaultDelta
}

// Node is one mobile node: its dead reckoner plus the region subset of its
// current station.
type Node struct {
	ID int

	reckoner motion.DeadReckoner
	station  int // current station id, -1 when uncovered
	regions  *Compiled

	// Updates counts the position updates the node has sent.
	Updates int64
	// Handoffs counts base-station changes.
	Handoffs int64
}

// NewNode returns a node with no station and no motion model yet.
func NewNode(id int) *Node { return &Node{ID: id, station: -1} }

// Station returns the node's current station id (-1 when uncovered).
func (n *Node) Station() int { return n.station }

// Install sets the node's station and its compiled region subset. It
// serves both paths of §2.2: a reconfiguration broadcast from the current
// station (same id, fresh assignment) and a hand-off to a new station
// (which increments the hand-off counter).
func (n *Node) Install(station int, regions *Compiled) {
	if station != n.station && n.station != -1 {
		n.Handoffs++
	}
	n.station = station
	n.regions = regions
}

// Drop discards the node's station assignment: until a fresh assignment
// is installed, Delta reverts to the conservative fallback Δ⊢ — the same
// state as before the first broadcast arrived (§2.2). A disconnected
// node calls this so its reporting degrades toward more updates, never
// toward silent inaccuracy. The hand-off counter is untouched: a later
// reinstall of the same station is a resync, not a hand-off.
func (n *Node) Drop() {
	n.station = -1
	n.regions = nil
}

// Start records the node's first report (always transmitted) and returns
// it.
func (n *Node) Start(pos geo.Point, vel geo.Vector, t float64) motion.Report {
	n.Updates++
	return n.reckoner.Start(pos, vel, t)
}

// Delta returns the inaccuracy threshold in force at position p: the
// throttler of the containing shedding region, or the fallback when the
// node has no station data.
func (n *Node) Delta(p geo.Point, fallback float64) float64 {
	if n.regions == nil {
		return fallback
	}
	return n.regions.DeltaAt(p)
}

// Observe runs one dead-reckoning check with the region-dependent
// threshold. It returns the new report when one must be sent.
func (n *Node) Observe(pos geo.Point, vel geo.Vector, t, fallback float64) (motion.Report, bool) {
	rep, send := n.reckoner.Observe(pos, vel, t, n.Delta(pos, fallback))
	if send {
		n.Updates++
	}
	return rep, send
}

package mobilenode

import (
	"testing"
	"testing/quick"

	"lira/internal/basestation"
	"lira/internal/geo"
	"lira/internal/rng"
)

// gridAssignment builds a k×k uniform assignment over [0,1000)² with
// deltas 5 + region index.
func gridAssignment(k int) *basestation.Assignment {
	a := &basestation.Assignment{DefaultDelta: 5}
	step := 1000.0 / float64(k)
	for j := 0; j < k; j++ {
		for i := 0; i < k; i++ {
			a.Regions = append(a.Regions, geo.Rect{
				MinX: float64(i) * step, MinY: float64(j) * step,
				MaxX: float64(i+1) * step, MaxY: float64(j+1) * step,
			})
			a.Deltas = append(a.Deltas, 5+float64(j*k+i))
		}
	}
	return a
}

func TestCompiledDeltaLookup(t *testing.T) {
	c := Compile(gridAssignment(4))
	if c.RegionCount() != 16 {
		t.Fatalf("RegionCount = %d", c.RegionCount())
	}
	cases := []struct {
		p    geo.Point
		want float64
	}{
		{geo.Point{X: 10, Y: 10}, 5},    // region 0
		{geo.Point{X: 600, Y: 100}, 7},  // region 2
		{geo.Point{X: 999, Y: 999}, 20}, // region 15
		{geo.Point{X: 250, Y: 0}, 6},    // region boundary x=250 → region 1
	}
	for _, tc := range cases {
		if got := c.DeltaAt(tc.p); got != tc.want {
			t.Errorf("DeltaAt(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestCompiledOutsidePointFallsBack(t *testing.T) {
	a := gridAssignment(2)
	a.DefaultDelta = 42
	c := Compile(a)
	if got := c.DeltaAt(geo.Point{X: 5000, Y: 5000}); got != 42 {
		t.Errorf("outside point Δ = %v, want fallback 42", got)
	}
}

func TestCompileEmptyAssignment(t *testing.T) {
	c := Compile(&basestation.Assignment{DefaultDelta: 7})
	if got := c.DeltaAt(geo.Point{X: 1, Y: 1}); got != 7 {
		t.Errorf("empty assignment Δ = %v, want 7", got)
	}
	if c.RegionCount() != 0 {
		t.Errorf("RegionCount = %d", c.RegionCount())
	}
}

// Property: the 5×5 index always agrees with a linear scan over the
// assignment's regions.
func TestIndexMatchesLinearScanProperty(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		k := int(kRaw)%6 + 1
		a := gridAssignment(k)
		c := Compile(a)
		r := rng.New(seed)
		for trial := 0; trial < 50; trial++ {
			p := geo.Point{X: r.Range(0, 1000), Y: r.Range(0, 1000)}
			want := a.DefaultDelta
			for i, reg := range a.Regions {
				if reg.Contains(p) {
					want = a.Deltas[i]
					break
				}
			}
			if c.DeltaAt(p) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestNodeLifecycle(t *testing.T) {
	n := NewNode(3)
	if n.Station() != -1 {
		t.Fatalf("fresh node station = %d", n.Station())
	}
	rep := n.Start(geo.Point{X: 0, Y: 0}, geo.Vector{X: 10, Y: 0}, 0)
	if rep.Pos != (geo.Point{X: 0, Y: 0}) || n.Updates != 1 {
		t.Fatalf("Start: rep=%+v updates=%d", rep, n.Updates)
	}
	// Without an installed assignment, the fallback Δ applies.
	if got := n.Delta(geo.Point{X: 1, Y: 1}, 9); got != 9 {
		t.Errorf("fallback Δ = %v, want 9", got)
	}
	// Perfectly predicted motion with a generous threshold: silent.
	if _, send := n.Observe(geo.Point{X: 10, Y: 0}, geo.Vector{X: 10, Y: 0}, 1, 5); send {
		t.Error("predicted motion should not report")
	}
	// Large deviation: reports.
	if _, send := n.Observe(geo.Point{X: 100, Y: 100}, geo.Vector{X: 0, Y: 0}, 2, 5); !send {
		t.Error("deviating node should report")
	}
	if n.Updates != 2 {
		t.Errorf("Updates = %d, want 2", n.Updates)
	}
}

func TestNodeHandoffCounting(t *testing.T) {
	n := NewNode(0)
	c1 := Compile(gridAssignment(2))
	c2 := Compile(gridAssignment(3))
	n.Install(0, c1)
	if n.Handoffs != 0 {
		t.Errorf("first install is not a hand-off: %d", n.Handoffs)
	}
	n.Install(0, c2) // reconfiguration broadcast: assignment replaced, no hand-off
	if n.Handoffs != 0 {
		t.Errorf("same-station install counted: %d", n.Handoffs)
	}
	if got := n.Delta(geo.Point{X: 10, Y: 10}, 99); got != c2.DeltaAt(geo.Point{X: 10, Y: 10}) {
		t.Errorf("reconfiguration did not replace the assignment: Δ = %v", got)
	}
	n.Install(1, c1)
	if n.Handoffs != 1 {
		t.Errorf("Handoffs = %d, want 1", n.Handoffs)
	}
	if n.Station() != 1 {
		t.Errorf("Station = %d, want 1", n.Station())
	}
}

func TestNodeDropDegradesToFallback(t *testing.T) {
	n := NewNode(0)
	c1 := Compile(gridAssignment(2))
	n.Install(4, c1)
	p := geo.Point{X: 10, Y: 10}
	if got := n.Delta(p, 99); got == 99 {
		t.Fatal("installed node still using fallback Δ")
	}
	n.Drop()
	if n.Station() != -1 {
		t.Errorf("dropped node station = %d, want -1", n.Station())
	}
	if got := n.Delta(p, 99); got != 99 {
		t.Errorf("dropped node Δ = %v, want fallback 99", got)
	}
	if n.Handoffs != 0 {
		t.Errorf("Drop counted as hand-off: %d", n.Handoffs)
	}
	// Reinstalling the same station after a resync is not a hand-off
	// either: the drop erased the station, so the reinstall looks like
	// the pre-first-assignment state.
	n.Install(4, c1)
	if n.Handoffs != 0 {
		t.Errorf("resync reinstall counted as hand-off: %d", n.Handoffs)
	}
	if got := n.Delta(p, 99); got == 99 {
		t.Error("reinstall did not restore the region Δ")
	}
}

func TestNodeUsesRegionDelta(t *testing.T) {
	n := NewNode(0)
	a := gridAssignment(2) // deltas 5, 6, 7, 8 over quadrants
	n.Install(0, Compile(a))
	n.Start(geo.Point{X: 100, Y: 100}, geo.Vector{}, 0)
	// Deviation of 5.5 m: exceeds region 0's Δ=5.
	if _, send := n.Observe(geo.Point{X: 105.5, Y: 100}, geo.Vector{}, 1, 99); !send {
		t.Error("deviation above region Δ should report")
	}
	// In region 3 (Δ=8), the same deviation is suppressed.
	n.Start(geo.Point{X: 900, Y: 900}, geo.Vector{}, 2)
	if _, send := n.Observe(geo.Point{X: 905.5, Y: 900}, geo.Vector{}, 3, 99); send {
		t.Error("deviation below region Δ should be suppressed")
	}
}

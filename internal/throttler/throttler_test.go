package throttler

import (
	"math"
	"testing"
	"testing/quick"

	"lira/internal/fmodel"
	"lira/internal/rng"
)

func curve() *fmodel.Curve { return fmodel.Hyperbolic(5, 100, 95) }

func defaultOpts() Options {
	return Options{Z: 0.5, Fairness: 95, UseSpeed: true}
}

func eqStats(n int) []RegionStat {
	stats := make([]RegionStat, n)
	for i := range stats {
		stats[i] = RegionStat{N: 100, M: 1, S: 10}
	}
	return stats
}

func TestValidation(t *testing.T) {
	c := curve()
	if _, err := SetThrottlers(nil, nil, defaultOpts()); err == nil {
		t.Error("nil curve should error")
	}
	bad := defaultOpts()
	bad.Z = 1.5
	if _, err := SetThrottlers(eqStats(2), c, bad); err == nil {
		t.Error("z > 1 should error")
	}
	bad = defaultOpts()
	bad.Fairness = -1
	if _, err := SetThrottlers(eqStats(2), c, bad); err == nil {
		t.Error("negative fairness should error")
	}
	bad = defaultOpts()
	bad.Increment = -1
	if _, err := SetThrottlers(eqStats(2), c, bad); err == nil {
		t.Error("negative increment should error")
	}
}

func TestEmptyRegions(t *testing.T) {
	res, err := SetThrottlers(nil, curve(), defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Deltas) != 0 || !res.BudgetMet {
		t.Errorf("empty input: %+v", res)
	}
}

func TestZOneMeansNoShedding(t *testing.T) {
	opts := defaultOpts()
	opts.Z = 1
	res, err := SetThrottlers(eqStats(4), curve(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range res.Deltas {
		if d != 5 {
			t.Errorf("Δ[%d] = %v, want Δ⊢ with z=1", i, d)
		}
	}
	if !res.BudgetMet {
		t.Error("z=1 budget trivially met")
	}
}

func TestBudgetRespected(t *testing.T) {
	c := curve()
	for _, z := range []float64{0.9, 0.75, 0.5, 0.3} {
		opts := defaultOpts()
		opts.Z = z
		stats := []RegionStat{
			{N: 500, M: 0.5, S: 20},
			{N: 100, M: 5, S: 10},
			{N: 50, M: 0, S: 8},
			{N: 1000, M: 1, S: 25},
		}
		res, err := SetThrottlers(stats, c, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !res.BudgetMet {
			t.Errorf("z=%v: budget not met", z)
		}
		got := Expenditure(stats, c, res.Deltas, true)
		if got > res.Budget*(1+1e-6) {
			t.Errorf("z=%v: expenditure %v exceeds budget %v", z, got, res.Budget)
		}
		for i, d := range res.Deltas {
			if d < 5-1e-9 || d > 100+1e-9 {
				t.Errorf("z=%v: Δ[%d]=%v outside [Δ⊢, Δ⊣]", z, i, d)
			}
		}
	}
}

func TestUnreachableBudget(t *testing.T) {
	// f(Δ⊣)=0.05, so z below 0.05 cannot be met: everything maxes out.
	opts := defaultOpts()
	opts.Z = 0.01
	res, err := SetThrottlers(eqStats(3), curve(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.BudgetMet {
		t.Error("budget below f(Δ⊣) should be unreachable")
	}
	for i, d := range res.Deltas {
		if d != 100 {
			t.Errorf("Δ[%d] = %v, want Δ⊣ in the unreachable case", i, d)
		}
	}
}

func TestQueryFreeRegionsShedFirst(t *testing.T) {
	// Region 0 has no queries: it must absorb shedding before region 1,
	// which is query-heavy.
	stats := []RegionStat{
		{N: 500, M: 0, S: 10},
		{N: 500, M: 10, S: 10},
	}
	opts := defaultOpts()
	opts.Z = 0.6
	res, err := SetThrottlers(stats, curve(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deltas[0] <= res.Deltas[1] {
		t.Errorf("query-free region Δ=%v should exceed query-heavy Δ=%v",
			res.Deltas[0], res.Deltas[1])
	}
	if res.InAcc != 10*res.Deltas[1] {
		t.Errorf("InAcc = %v, want %v", res.InAcc, 10*res.Deltas[1])
	}
}

func TestTable1Preferences(t *testing.T) {
	// The paper's Table 1: with n/m (nodes over queries) high, shedding is
	// attractive; with n low and m high it is avoided. Verify the greedy
	// ordering honors the quadrants.
	stats := []RegionStat{
		{N: 1000, M: 0.5, S: 10}, // high n, low m: ✓ shed here
		{N: 10, M: 10, S: 10},    // low n, high m: × avoid
		{N: 1000, M: 10, S: 10},  // high n, high m: middle (>)
		{N: 10, M: 0.5, S: 10},   // low n, low m: middle (<)
	}
	opts := defaultOpts()
	opts.Z = 0.7
	res, err := SetThrottlers(stats, curve(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !(res.Deltas[0] > res.Deltas[2] && res.Deltas[2] >= res.Deltas[1]) {
		t.Errorf("quadrant ordering violated: %v", res.Deltas)
	}
	if !(res.Deltas[0] > res.Deltas[1]) {
		t.Errorf("✓ quadrant should shed more than ×: %v", res.Deltas)
	}
}

func TestFairnessConstraintHolds(t *testing.T) {
	c := curve()
	for _, fair := range []float64{10, 25, 50} {
		stats := []RegionStat{
			{N: 1000, M: 0, S: 20},
			{N: 10, M: 50, S: 5},
			{N: 300, M: 2, S: 10},
		}
		opts := Options{Z: 0.3, Fairness: fair, UseSpeed: true}
		res, err := SetThrottlers(stats, c, opts)
		if err != nil {
			t.Fatal(err)
		}
		for i := range res.Deltas {
			for j := range res.Deltas {
				if diff := math.Abs(res.Deltas[i] - res.Deltas[j]); diff > fair+1e-9 {
					t.Errorf("fairness %v violated: |Δ%d−Δ%d| = %v", fair, i, j, diff)
				}
			}
		}
	}
}

func TestFairnessZeroKeepsAllEqual(t *testing.T) {
	// Δ⇔=0 is the degenerate uniform case: the greedy cannot move any
	// region above the minimum, so everything stays at Δ⊢.
	opts := Options{Z: 0.5, Fairness: 0}
	res, err := SetThrottlers(eqStats(3), curve(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range res.Deltas {
		if d != 5 {
			t.Errorf("Δ[%d] = %v, want Δ⊢ under Δ⇔=0", i, d)
		}
	}
	if res.BudgetMet {
		t.Error("Δ⇔=0 cannot meet a z<1 budget")
	}
}

func TestLooserFairnessNeverHurts(t *testing.T) {
	stats := []RegionStat{
		{N: 800, M: 0.2, S: 15},
		{N: 100, M: 8, S: 10},
		{N: 400, M: 1, S: 20},
		{N: 50, M: 3, S: 8},
	}
	c := curve()
	prev := math.Inf(1)
	for _, fair := range []float64{10, 30, 60, 95} {
		res, err := SetThrottlers(stats, c, Options{Z: 0.4, Fairness: fair, UseSpeed: true})
		if err != nil {
			t.Fatal(err)
		}
		if !res.BudgetMet {
			continue
		}
		if res.InAcc > prev+1e-6 {
			t.Errorf("inaccuracy rose from %v to %v when fairness loosened to %v",
				prev, res.InAcc, fair)
		}
		prev = res.InAcc
	}
}

func TestSpeedFactorShiftsSheddingToFastRegions(t *testing.T) {
	// Two regions identical except speed: the fast region generates more
	// updates per node, so with the speed factor on it should be throttled
	// at least as much.
	stats := []RegionStat{
		{N: 500, M: 1, S: 30},
		{N: 500, M: 1, S: 5},
	}
	res, err := SetThrottlers(stats, curve(), Options{Z: 0.6, Fairness: 95, UseSpeed: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deltas[0] < res.Deltas[1] {
		t.Errorf("fast region should shed at least as much: %v", res.Deltas)
	}
}

// Property: the greedy solution is never worse than random feasible
// assignments (weak form of Theorem 3.1 — the greedy is optimal for the
// piece-wise-linear f, so no sampled feasible point may beat it).
func TestGreedyBeatsRandomFeasibleProperty(t *testing.T) {
	c := fmodel.Hyperbolic(5, 100, 19) // coarse knots so random search hits them
	f := func(seed uint64) bool {
		r := rng.New(seed)
		l := 2 + r.Intn(4)
		stats := make([]RegionStat, l)
		for i := range stats {
			stats[i] = RegionStat{
				N: r.Range(1, 1000),
				M: r.Range(0, 10),
				S: r.Range(5, 30),
			}
		}
		z := r.Range(0.2, 0.95)
		opts := Options{Z: z, Fairness: 95, UseSpeed: true}
		res, err := SetThrottlers(stats, c, opts)
		if err != nil || !res.BudgetMet {
			return true // unreachable budgets carry no optimality claim
		}
		budget := res.Budget
		// Sample random knot-aligned assignments; any feasible one must
		// not beat the greedy objective.
		for trial := 0; trial < 300; trial++ {
			deltas := make([]float64, l)
			for i := range deltas {
				k := r.Intn(c.Segments() + 1)
				deltas[i] = 5 + c.SegmentWidth()*float64(k)
			}
			if Expenditure(stats, c, deltas, true) > budget {
				continue
			}
			if InAccuracy(stats, deltas) < res.InAcc-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: budget constraint and domain constraint hold for arbitrary
// region mixes whenever BudgetMet is reported.
func TestConstraintsProperty(t *testing.T) {
	c := curve()
	f := func(seed uint64) bool {
		r := rng.New(seed)
		l := 1 + r.Intn(30)
		stats := make([]RegionStat, l)
		for i := range stats {
			stats[i] = RegionStat{
				N: math.Floor(r.Range(0, 500)),
				M: math.Floor(r.Range(0, 4)) * r.Float64(),
				S: r.Range(1, 30),
			}
		}
		z := r.Range(0.05, 1)
		fair := r.Range(5, 95)
		res, err := SetThrottlers(stats, c, Options{Z: z, Fairness: fair, UseSpeed: true})
		if err != nil {
			return false
		}
		for _, d := range res.Deltas {
			if d < 5-1e-9 || d > 100+1e-9 {
				return false
			}
		}
		for i := range res.Deltas {
			for j := range res.Deltas {
				if math.Abs(res.Deltas[i]-res.Deltas[j]) > fair+1e-9 {
					return false
				}
			}
		}
		if res.BudgetMet {
			if Expenditure(stats, c, res.Deltas, true) > res.Budget*(1+1e-6)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestNoFairness(t *testing.T) {
	if got := NoFairness(curve()); got != 95 {
		t.Errorf("NoFairness = %v, want 95", got)
	}
}

// TestGreedyExactOptimality is Theorem 3.1 verified by exhaustion: for
// small instances with a coarse piece-wise-linear f, enumerate every
// knot-aligned assignment and confirm no feasible one beats the greedy.
// (Unlike the sampling property test above, this one is exact: with
// c_Δ-aligned steps the greedy's optimum lies on the knot lattice except
// for its final budget-exact partial step, which only lowers expenditure,
// never the objective ranking.)
func TestGreedyExactOptimality(t *testing.T) {
	c := fmodel.Hyperbolic(5, 100, 4) // 5 knots: 5, 28.75, 52.5, 76.25, 100
	knots := make([]float64, c.Segments()+1)
	for i := range knots {
		knots[i], _ = c.Knot(i)
	}
	r := rng.New(31)
	for trial := 0; trial < 50; trial++ {
		l := 2 + r.Intn(2) // 2..3 regions → at most 125 assignments
		stats := make([]RegionStat, l)
		for i := range stats {
			stats[i] = RegionStat{
				N: float64(1 + r.Intn(500)),
				M: float64(r.Intn(5)),
				S: 1 + float64(r.Intn(20)),
			}
		}
		z := 0.15 + 0.8*r.Float64()
		res, err := SetThrottlers(stats, c, Options{Z: z, Fairness: 95, UseSpeed: true})
		if err != nil {
			t.Fatal(err)
		}
		if !res.BudgetMet {
			continue
		}
		// Exhaustive search over the knot lattice.
		best := math.Inf(1)
		assign := make([]float64, l)
		var walk func(i int)
		walk = func(i int) {
			if i == l {
				if Expenditure(stats, c, assign, true) <= res.Budget*(1+1e-9) {
					if v := InAccuracy(stats, assign); v < best {
						best = v
					}
				}
				return
			}
			for _, k := range knots {
				assign[i] = k
				walk(i + 1)
			}
		}
		walk(0)
		if res.InAcc > best+1e-6 {
			t.Errorf("trial %d: greedy InAcc %v beaten by lattice optimum %v (stats %+v, z=%v)",
				trial, res.InAcc, best, stats, z)
		}
	}
}

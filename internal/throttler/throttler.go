// Package throttler implements GREEDYINCREMENT (§3.3, Algorithm 2): given
// the shedding regions produced by GRIDREDUCE, it sets the update
// throttlers Δᵢ so the query-result inaccuracy Σ mᵢ·Δᵢ is minimized while
// the update budget constraint Σ nᵢ·(sᵢ/ŝ)·f(Δᵢ) ≤ z·n·f(Δ⊢) and the
// fairness constraint ∀i,j |Δᵢ − Δⱼ| ≤ Δ⇔ hold.
//
// The algorithm greedily raises the throttler with the highest update gain
// Sᵢ = (nᵢ/mᵢ)·sᵢ·r(Δᵢ) — the reduction in update expenditure per unit of
// added query inaccuracy — one increment c_Δ at a time, aligned to the
// knots of the piece-wise-linear f so every step stays inside one linear
// segment. Per Theorem 3.1 this is optimal for that approximation when
// c_Δ equals the segment width.
package throttler

import (
	"fmt"
	"math"

	"lira/internal/container/iheap"
	"lira/internal/container/treap"
	"lira/internal/fmodel"
)

// RegionStat summarizes a shedding region for the optimizer: node count N,
// fractional query count M, and average node speed S.
type RegionStat struct {
	N, M, S float64
}

// Options configures GREEDYINCREMENT.
type Options struct {
	// Z is the throttle fraction z ∈ [0, 1]: the fraction of the full
	// update expenditure to retain.
	Z float64
	// Increment is c_Δ. Zero selects the curve's segment width, for which
	// the result is optimal (Theorem 3.1).
	Increment float64
	// Fairness is Δ⇔, the maximum allowed difference between any two
	// throttlers. Zero means the strict uniform-Δ degenerate case; use
	// NoFairness for the unconstrained original formulation.
	Fairness float64
	// UseSpeed enables the §3.1.2 speed factor: region expenditure is
	// weighted by sᵢ/ŝ. Without it all speeds are treated as equal.
	UseSpeed bool
}

// NoFairness is a Fairness value that never constrains: Δ⊣ − Δ⊢ (the
// paper's degenerate case recovering the original formulation).
func NoFairness(curve *fmodel.Curve) float64 {
	return curve.MaxDelta() - curve.MinDelta()
}

// Result is the output of SetThrottlers.
type Result struct {
	// Deltas holds the update throttler Δᵢ per region.
	Deltas []float64
	// Expenditure is the modeled update expenditure after throttling,
	// in the same unit as Budget.
	Expenditure float64
	// Budget is z times the full expenditure.
	Budget float64
	// BudgetMet reports whether the expenditure was reduced to the
	// budget. False means the budget is unreachable even at ∀i Δᵢ = Δ⊣
	// (or unreachable without violating fairness).
	BudgetMet bool
	// InAcc is the objective value Σ mᵢ·Δᵢ.
	InAcc float64
	// Gains holds the final update gain Sᵢ = (wᵢ/mᵢ)·r(Δᵢ) per region at
	// the assigned Δᵢ (+Inf for query-free regions with expenditure left).
	Gains []float64
	// FairnessClamps counts greedy steps parked at the fairness limit Δ⇔,
	// including re-parks after re-admission.
	FairnessClamps int
}

// SetThrottlers runs GREEDYINCREMENT over the given regions. It returns an
// error for invalid options. An empty region list yields an empty result.
func SetThrottlers(stats []RegionStat, curve *fmodel.Curve, opts Options) (*Result, error) {
	if curve == nil {
		return nil, fmt.Errorf("throttler: nil curve")
	}
	if opts.Z < 0 || opts.Z > 1 {
		return nil, fmt.Errorf("throttler: throttle fraction %v outside [0,1]", opts.Z)
	}
	if opts.Fairness < 0 {
		return nil, fmt.Errorf("throttler: negative fairness threshold %v", opts.Fairness)
	}
	inc := opts.Increment
	if inc == 0 {
		inc = curve.SegmentWidth()
	}
	if inc < 0 {
		return nil, fmt.Errorf("throttler: negative increment %v", inc)
	}

	l := len(stats)
	dl, dh := curve.MinDelta(), curve.MaxDelta()
	res := &Result{Deltas: make([]float64, l)}
	for i := range res.Deltas {
		res.Deltas[i] = dl
	}
	if l == 0 {
		res.BudgetMet = true
		return res, nil
	}

	// Region expenditure weight wᵢ: nᵢ·sᵢ/ŝ with the speed factor, nᵢ
	// without. Using sᵢ/ŝ (rather than raw sᵢ) keeps the expenditure in
	// "updates" units; the constraint is equivalent.
	w := make([]float64, l)
	var totalN, totalNS float64
	for _, st := range stats {
		totalN += st.N
		totalNS += st.N * st.S
	}
	for i, st := range stats {
		if opts.UseSpeed && totalNS > 0 {
			w[i] = st.N * st.S * totalN / totalNS
		} else {
			w[i] = st.N
		}
	}

	// gain returns the update gain Sᵢ at the region's current Δ. Regions
	// with no queries have unbounded gain (+Inf): shedding there is free.
	gain := func(i int) float64 {
		st := stats[i]
		r := curve.Rate(res.Deltas[i])
		if st.M == 0 {
			if w[i]*r > 0 {
				return math.Inf(1)
			}
			// No queries and no expenditure to recover: harmless but
			// pointless; keep it at the bottom of the heap.
			return 0
		}
		return w[i] / st.M * r
	}
	finalGains := func() []float64 {
		out := make([]float64, l)
		for i := range out {
			out[i] = gain(i)
		}
		return out
	}

	fAtMin := curve.Eval(dl) // == 1 by construction
	u := totalN * fAtMin
	budget := opts.Z * u
	res.Budget = budget
	if u <= budget {
		// Nothing to shed.
		res.Expenditure = u
		res.BudgetMet = true
		res.InAcc = inAcc(stats, res.Deltas)
		res.Gains = finalGains()
		return res, nil
	}

	var h iheap.Heap
	var deltas treap.Multiset
	for i := 0; i < l; i++ {
		h.Push(i, gain(i))
		deltas.Insert(res.Deltas[i])
	}
	// blocked holds regions parked at the fairness limit Δ⊵ + Δ⇔.
	var blocked []int

	const eps = 1e-9
	for u > budget+eps*budget && h.Len() > 0 {
		i, _ := h.PopMax()
		old := res.Deltas[i]
		oldMin, _ := deltas.Min()

		// Step to the next knot of f (relative to Δ⊢) but never past the
		// fairness limit, the budget-exact point, or Δ⊣.
		nextKnot := dl + inc*(math.Floor((old-dl)/inc+1))
		limit := math.Min(nextKnot, oldMin+opts.Fairness)
		// w[i] already carries the speed factor when enabled, so the
		// expenditure-decrease rate is w[i]·r(Δ) in both modes.
		rate := w[i] * curve.Rate(old)
		if rate > 0 {
			exact := old + (u-budget)/rate
			limit = math.Min(limit, exact)
		}
		next := math.Min(limit, dh)
		if next <= old {
			// Fairness pins this region at the current minimum (Δ⇔ = 0
			// with everything equal, or it is already at the limit).
			// Park it; it re-enters when the minimum moves.
			blocked = append(blocked, i)
			res.FairnessClamps++
			continue
		}

		res.Deltas[i] = next
		u -= (next - old) * rate
		deltas.Replace(old, next)
		newMin, _ := deltas.Min()

		switch {
		case next-newMin >= opts.Fairness-eps && next < dh:
			blocked = append(blocked, i)
			res.FairnessClamps++
		case next < dh:
			h.Push(i, gain(i))
		}

		if newMin != oldMin {
			// Re-admit blocked regions that are no longer at the limit.
			kept := blocked[:0]
			for _, j := range blocked {
				if res.Deltas[j]-newMin < opts.Fairness-eps && res.Deltas[j] < dh {
					h.Push(j, gain(j))
				} else {
					kept = append(kept, j)
				}
			}
			blocked = kept
		}
	}

	res.Expenditure = u
	res.BudgetMet = u <= budget+eps*budget+eps
	res.InAcc = inAcc(stats, res.Deltas)
	res.Gains = finalGains()
	return res, nil
}

func inAcc(stats []RegionStat, deltas []float64) float64 {
	total := 0.0
	for i, st := range stats {
		total += st.M * deltas[i]
	}
	return total
}

// InAccuracy returns the objective Σ mᵢ·Δᵢ for an arbitrary assignment —
// exported for tests and for GRIDREDUCE's accuracy-gain computation.
func InAccuracy(stats []RegionStat, deltas []float64) float64 {
	return inAcc(stats, deltas)
}

// Expenditure returns the modeled update expenditure Σ wᵢ·f(Δᵢ) for an
// arbitrary assignment, with the same speed weighting as SetThrottlers.
func Expenditure(stats []RegionStat, curve *fmodel.Curve, deltas []float64, useSpeed bool) float64 {
	var totalN, totalNS float64
	for _, st := range stats {
		totalN += st.N
		totalNS += st.N * st.S
	}
	total := 0.0
	for i, st := range stats {
		w := st.N
		if useSpeed && totalNS > 0 {
			w = st.N * st.S * totalN / totalNS
		}
		total += w * curve.Eval(deltas[i])
	}
	return total
}

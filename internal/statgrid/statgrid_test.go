package statgrid

import (
	"math"
	"testing"
	"testing/quick"

	"lira/internal/geo"
	"lira/internal/rng"
)

func space() geo.Rect { return geo.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100} }

func TestNewPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { New(space(), 0) },
		func() { New(geo.Rect{}, 8) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestCellIndexAndRect(t *testing.T) {
	g := New(space(), 4) // 25x25 cells
	cases := []struct {
		p    geo.Point
		i, j int
	}{
		{geo.Point{X: 0, Y: 0}, 0, 0},
		{geo.Point{X: 24.9, Y: 24.9}, 0, 0},
		{geo.Point{X: 25, Y: 0}, 1, 0},
		{geo.Point{X: 99.9, Y: 99.9}, 3, 3},
		{geo.Point{X: 100, Y: 100}, 3, 3}, // clamped
		{geo.Point{X: -5, Y: 120}, 0, 3},  // clamped both axes
		{geo.Point{X: 50, Y: 75}, 2, 3},   // exact boundaries
	}
	for _, c := range cases {
		i, j := g.CellIndex(c.p)
		if i != c.i || j != c.j {
			t.Errorf("CellIndex(%v) = (%d,%d), want (%d,%d)", c.p, i, j, c.i, c.j)
		}
	}
	r := g.CellRect(1, 2)
	want := geo.Rect{MinX: 25, MinY: 50, MaxX: 50, MaxY: 75}
	if r != want {
		t.Errorf("CellRect = %v, want %v", r, want)
	}
}

func TestObserveAveragesAcrossRounds(t *testing.T) {
	g := New(space(), 2)
	// Round 1: two nodes in cell (0,0), speeds 10 and 20.
	g.Observe(
		[]geo.Point{{X: 10, Y: 10}, {X: 20, Y: 20}},
		[]float64{10, 20},
	)
	// Round 2: no nodes in cell (0,0), one in (1,1) with speed 30.
	g.Observe(
		[]geo.Point{{X: 80, Y: 80}},
		[]float64{30},
	)
	n, _, s := g.Cell(0, 0)
	if n != 1 { // (2+0)/2 rounds
		t.Errorf("n(0,0) = %v, want 1", n)
	}
	if s != 15 {
		t.Errorf("s(0,0) = %v, want 15", s)
	}
	n, _, s = g.Cell(1, 1)
	if n != 0.5 {
		t.Errorf("n(1,1) = %v, want 0.5", n)
	}
	if s != 30 {
		t.Errorf("s(1,1) = %v, want 30", s)
	}
	// Never-observed cell falls back to the global mean speed (10+20+30)/3.
	_, _, s = g.Cell(0, 1)
	if s != 20 {
		t.Errorf("fallback speed = %v, want 20", s)
	}
	if g.Samples() != 2 {
		t.Errorf("Samples = %d", g.Samples())
	}
}

func TestObserveLengthMismatchPanics(t *testing.T) {
	g := New(space(), 2)
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	g.Observe([]geo.Point{{X: 1, Y: 1}}, nil)
}

func TestSetQueriesFractional(t *testing.T) {
	g := New(space(), 2) // 50x50 cells
	// A 50x50 query centered at (50,50) covers one quarter of each cell.
	g.SetQueries([]geo.Rect{geo.Square(geo.Point{X: 50, Y: 50}, 50)})
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			_, m, _ := g.Cell(i, j)
			if math.Abs(m-0.25) > 1e-12 {
				t.Errorf("m(%d,%d) = %v, want 0.25", i, j, m)
			}
		}
	}
	_, totalM := g.Totals()
	if math.Abs(totalM-1) > 1e-12 {
		t.Errorf("total m = %v, want 1", totalM)
	}
	// Replacing the census clears the previous one.
	g.SetQueries([]geo.Rect{geo.Square(geo.Point{X: 25, Y: 25}, 10)})
	_, m, _ := g.Cell(1, 1)
	if m != 0 {
		t.Errorf("stale query mass remained: %v", m)
	}
	_, m, _ = g.Cell(0, 0)
	if math.Abs(m-1) > 1e-12 {
		t.Errorf("contained query m = %v, want 1", m)
	}
}

func TestQueryOutsideSpaceIgnored(t *testing.T) {
	g := New(space(), 4)
	g.SetQueries([]geo.Rect{geo.Square(geo.Point{X: 500, Y: 500}, 10)})
	if _, m := g.Totals(); m != 0 {
		t.Errorf("outside query contributed %v", m)
	}
	// Degenerate query contributes nothing and does not panic.
	g.SetQueries([]geo.Rect{{}})
	if _, m := g.Totals(); m != 0 {
		t.Errorf("degenerate query contributed %v", m)
	}
}

func TestQueryStraddlingBoundaryCountsInsidePortion(t *testing.T) {
	g := New(space(), 4)
	// Half of this query hangs off the left edge of the space.
	g.SetQueries([]geo.Rect{geo.NewRect(-10, 40, 10, 60)})
	_, m := g.Totals()
	if math.Abs(m-0.5) > 1e-12 {
		t.Errorf("straddling query mass = %v, want 0.5", m)
	}
}

func TestResetObservationsKeepsQueries(t *testing.T) {
	g := New(space(), 2)
	g.Observe([]geo.Point{{X: 10, Y: 10}}, []float64{5})
	g.SetQueries([]geo.Rect{geo.Square(geo.Point{X: 25, Y: 25}, 10)})
	g.ResetObservations()
	n, m, _ := g.Cell(0, 0)
	if n != 0 {
		t.Errorf("n after reset = %v", n)
	}
	if math.Abs(m-1) > 1e-12 {
		t.Errorf("m after reset = %v, want 1 (census kept)", m)
	}
	if g.Samples() != 0 {
		t.Errorf("Samples after reset = %d", g.Samples())
	}
}

// Property: total query mass equals the summed in-space fractions of the
// queries, for arbitrary query placements.
func TestQueryMassConservationProperty(t *testing.T) {
	f := func(seed uint64, count uint8) bool {
		r := rng.New(seed)
		g := New(space(), 8)
		n := int(count%20) + 1
		queries := make([]geo.Rect, n)
		want := 0.0
		for i := range queries {
			c := geo.Point{X: r.Range(-20, 120), Y: r.Range(-20, 120)}
			side := r.Range(1, 40)
			queries[i] = geo.Square(c, side)
			want += queries[i].OverlapFraction(space())
		}
		g.SetQueries(queries)
		_, got := g.Totals()
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: total node mass is conserved: Totals() n equals the number of
// positions per round.
func TestNodeMassConservationProperty(t *testing.T) {
	f := func(seed uint64, count uint8) bool {
		r := rng.New(seed)
		g := New(space(), 8)
		n := int(count%50) + 1
		for round := 0; round < 3; round++ {
			pos := make([]geo.Point, n)
			sp := make([]float64, n)
			for i := range pos {
				pos[i] = geo.Point{X: r.Range(0, 100), Y: r.Range(0, 100)}
				sp[i] = r.Range(1, 30)
			}
			g.Observe(pos, sp)
		}
		got, _ := g.Totals()
		return math.Abs(got-float64(n)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

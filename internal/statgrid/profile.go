package statgrid

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"lira/internal/geo"
)

// This file implements the two alternative maintenance modes of §3.2.1:
//
//   - sampling: "all of the updates need not be processed, since the
//     statistics can easily be approximated using sampling" —
//     ObserveSampled folds in a thinned observation round, scaling counts
//     by the inverse sampling rate;
//   - off-line profiles: "the average number of mobile nodes and average
//     node speeds can be pre-computed for different times of the day
//     based on historic data, in which case the maintenance cost is close
//     to zero" — Profile stores per-time-slot grids with a compact binary
//     serialization.

// ObserveSampled folds one observation round in which only a rate
// fraction of the node population was inspected; per-cell node counts are
// scaled by 1/rate so the grid still estimates the full population. It
// panics if rate is outside (0, 1].
func (g *Grid) ObserveSampled(positions []geo.Point, speeds []float64, rate float64) {
	if rate <= 0 || rate > 1 {
		panic(fmt.Sprintf("statgrid: sampling rate %v outside (0, 1]", rate))
	}
	if len(positions) != len(speeds) {
		panic("statgrid: positions and speeds length mismatch")
	}
	inv := 1 / rate
	for k, p := range positions {
		i, j := g.CellIndex(p)
		c := j*g.alpha + i
		g.sumCount[c] += inv
		g.sumSpeed[c] += speeds[k]
		g.obsNodes[c]++
		g.sumAllSp += speeds[k]
		g.obsAll++
	}
	g.samples++
	g.totalN = float64(len(positions)) * inv
	if g.obsAll > 0 {
		g.meanSpeed = g.sumAllSp / g.obsAll
	}
}

// profileMagic identifies serialized profiles ("LIRP" + version 1).
var profileMagic = [4]byte{'L', 'I', 'R', 'P'}

const profileVersion = 1

// Profile holds pre-computed statistics grids for recurring time slots
// (e.g. 24 hourly grids). Lookup is O(1) and maintenance at serving time
// is zero: the server selects the slot grid for the current time of day.
type Profile struct {
	space      geo.Rect
	alpha      int
	slotLength float64 // seconds per slot
	slots      []*Grid
}

// NewProfile returns a profile with the given number of time slots, each
// covering slotLength seconds of the recurring period.
func NewProfile(space geo.Rect, alpha, slots int, slotLength float64) (*Profile, error) {
	if slots <= 0 {
		return nil, fmt.Errorf("statgrid: non-positive slot count %d", slots)
	}
	if slotLength <= 0 {
		return nil, fmt.Errorf("statgrid: non-positive slot length %v", slotLength)
	}
	p := &Profile{space: space, alpha: alpha, slotLength: slotLength}
	for i := 0; i < slots; i++ {
		p.slots = append(p.slots, New(space, alpha))
	}
	return p, nil
}

// Slots returns the number of time slots.
func (p *Profile) Slots() int { return len(p.slots) }

// SlotFor returns the slot index covering time t (seconds); the profile
// period wraps.
func (p *Profile) SlotFor(t float64) int {
	period := p.slotLength * float64(len(p.slots))
	t = math.Mod(t, period)
	if t < 0 {
		t += period
	}
	idx := int(t / p.slotLength)
	if idx >= len(p.slots) {
		idx = len(p.slots) - 1
	}
	return idx
}

// Grid returns the statistics grid of the given slot, for both folding in
// historic observations and serving.
func (p *Profile) Grid(slot int) *Grid { return p.slots[slot] }

// GridFor returns the grid covering time t.
func (p *Profile) GridFor(t float64) *Grid { return p.slots[p.SlotFor(t)] }

// WriteTo serializes the profile. The format is little-endian: magic,
// version, geometry, slot parameters, then per slot the raw accumulator
// arrays — no floats are rounded, so a round trip is exact.
func (p *Profile) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	write := func(vs ...interface{}) error {
		for _, v := range vs {
			if err := binary.Write(cw, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		return nil
	}
	if err := write(profileMagic, uint32(profileVersion),
		p.space.MinX, p.space.MinY, p.space.MaxX, p.space.MaxY,
		uint32(p.alpha), uint32(len(p.slots)), p.slotLength); err != nil {
		return cw.n, err
	}
	for _, g := range p.slots {
		if err := write(uint64(g.samples), g.totalM, g.sumAllSp, g.obsAll,
			g.sumCount, g.sumSpeed, g.obsNodes, g.queries); err != nil {
			return cw.n, err
		}
	}
	return cw.n, nil
}

// ReadProfile deserializes a profile written by WriteTo.
func ReadProfile(r io.Reader) (*Profile, error) {
	read := func(vs ...interface{}) error {
		for _, v := range vs {
			if err := binary.Read(r, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		return nil
	}
	var magic [4]byte
	var version uint32
	if err := read(&magic, &version); err != nil {
		return nil, fmt.Errorf("statgrid: reading profile header: %w", err)
	}
	if magic != profileMagic {
		return nil, fmt.Errorf("statgrid: bad profile magic %q", magic)
	}
	if version != profileVersion {
		return nil, fmt.Errorf("statgrid: unsupported profile version %d", version)
	}
	var space geo.Rect
	var alpha, slots uint32
	var slotLength float64
	if err := read(&space.MinX, &space.MinY, &space.MaxX, &space.MaxY,
		&alpha, &slots, &slotLength); err != nil {
		return nil, err
	}
	if alpha == 0 || alpha > 1<<14 || slots == 0 || slots > 1<<16 {
		return nil, fmt.Errorf("statgrid: implausible profile geometry (alpha=%d slots=%d)", alpha, slots)
	}
	p, err := NewProfile(space, int(alpha), int(slots), slotLength)
	if err != nil {
		return nil, err
	}
	for _, g := range p.slots {
		var samples uint64
		if err := read(&samples, &g.totalM, &g.sumAllSp, &g.obsAll,
			g.sumCount, g.sumSpeed, g.obsNodes, g.queries); err != nil {
			return nil, err
		}
		g.samples = int(samples)
		if g.obsAll > 0 {
			g.meanSpeed = g.sumAllSp / g.obsAll
		}
	}
	return p, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// Package statgrid implements the α×α statistics grid of §3.2.1 — the only
// data structure the LIRA load shedder maintains.
//
// For each grid cell c_{i,j} the grid stores the average number of mobile
// nodes n_{i,j}, the (fractionally counted) number of queries m_{i,j}, and
// the average node speed s_{i,j}. The grid is populated either from full
// position streams or from samples; per the paper, maintenance is O(1) per
// observed update.
package statgrid

import (
	"fmt"

	"lira/internal/geo"
	"lira/internal/par"
)

// Grid is the statistics grid. It accumulates node observations over any
// number of sampling rounds and holds the current query census.
type Grid struct {
	space geo.Rect
	alpha int

	samples   int       // number of Observe rounds folded in
	sumCount  []float64 // Σ over rounds of node count per cell
	sumSpeed  []float64 // Σ over all observed nodes of speed per cell
	obsNodes  []float64 // total node observations per cell
	queries   []float64 // fractional query count per cell
	totalN    float64   // nodes in the most recent round (for Totals)
	totalM    float64   // Σ queries (fractional, inside the space)
	meanSpeed float64   // global mean observed speed, fallback for empty cells
	sumAllSp  float64
	obsAll    float64

	// fold holds the per-shard accumulators of the parallel Observe path,
	// allocated lazily and reused across rounds.
	fold []foldShard
}

// foldShard is one shard's partial of a parallel Observe round. The dense
// count/speed arrays are kept zeroed between rounds via the touched list,
// so a round costs O(points/shard) regardless of α.
type foldShard struct {
	count, speed []float64
	touched      []int32
	sumSp, obs   float64
}

// observeChunk is the fixed shard size of the parallel Observe fold. The
// decomposition depends only on the input length (see package par), so the
// fold is bit-reproducible at any worker count; inputs of at most one chunk
// take the historical serial path.
const observeChunk = 4096

// New returns an empty grid with alpha cells per side over space. alpha
// must be positive; the paper uses powers of two so the quad-tree in
// GRIDREDUCE nests exactly, but the grid itself accepts any positive alpha.
func New(space geo.Rect, alpha int) *Grid {
	if alpha <= 0 {
		panic(fmt.Sprintf("statgrid: non-positive alpha %d", alpha))
	}
	if space.Empty() {
		panic("statgrid: empty space")
	}
	cells := alpha * alpha
	return &Grid{
		space:    space,
		alpha:    alpha,
		sumCount: make([]float64, cells),
		sumSpeed: make([]float64, cells),
		obsNodes: make([]float64, cells),
		queries:  make([]float64, cells),
	}
}

// Alpha returns the number of cells per side.
func (g *Grid) Alpha() int { return g.alpha }

// Space returns the monitored space.
func (g *Grid) Space() geo.Rect { return g.space }

// CellIndex returns the (column, row) of the cell containing p. Points
// outside the space are clamped to the border cells.
func (g *Grid) CellIndex(p geo.Point) (int, int) {
	i := int((p.X - g.space.MinX) / g.space.Width() * float64(g.alpha))
	j := int((p.Y - g.space.MinY) / g.space.Height() * float64(g.alpha))
	return clampInt(i, 0, g.alpha-1), clampInt(j, 0, g.alpha-1)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// CellRect returns the rectangle of cell (i, j).
func (g *Grid) CellRect(i, j int) geo.Rect {
	w := g.space.Width() / float64(g.alpha)
	h := g.space.Height() / float64(g.alpha)
	return geo.Rect{
		MinX: g.space.MinX + float64(i)*w,
		MinY: g.space.MinY + float64(j)*h,
		MaxX: g.space.MinX + float64(i+1)*w,
		MaxY: g.space.MinY + float64(j+1)*h,
	}
}

// Observe folds one sampling round of node positions and speeds into the
// grid. positions and speeds must have equal length. Cell node counts are
// averaged across rounds; speeds are averaged across all observations.
//
// Rounds larger than one fold chunk are sharded across goroutines with
// per-shard accumulators merged in shard order, so the result is a pure
// function of the inputs — identical at any GOMAXPROCS.
func (g *Grid) Observe(positions []geo.Point, speeds []float64) {
	if len(positions) != len(speeds) {
		panic("statgrid: positions and speeds length mismatch")
	}
	if shards := par.Chunks(len(positions), observeChunk); shards > 1 {
		g.observeSharded(positions, speeds, shards)
	} else {
		for k, p := range positions {
			i, j := g.CellIndex(p)
			c := j*g.alpha + i
			g.sumCount[c]++
			g.sumSpeed[c] += speeds[k]
			g.obsNodes[c]++
			g.sumAllSp += speeds[k]
			g.obsAll++
		}
	}
	g.samples++
	g.totalN = float64(len(positions))
	if g.obsAll > 0 {
		g.meanSpeed = g.sumAllSp / g.obsAll
	}
}

// observeSharded is the parallel Observe fold: each shard accumulates a
// private partial over its fixed index range, then partials merge into the
// grid in shard order. Within a shard speeds sum in index order and each
// cell receives one contribution per shard, so the summation tree depends
// only on the input length — never on scheduling.
func (g *Grid) observeSharded(positions []geo.Point, speeds []float64, shards int) {
	for len(g.fold) < shards {
		cells := g.alpha * g.alpha
		g.fold = append(g.fold, foldShard{
			count: make([]float64, cells),
			speed: make([]float64, cells),
		})
	}
	par.ForChunks(len(positions), observeChunk, func(shard, lo, hi int) {
		f := &g.fold[shard]
		f.sumSp, f.obs = 0, 0
		f.touched = f.touched[:0]
		for k := lo; k < hi; k++ {
			i, j := g.CellIndex(positions[k])
			c := int32(j*g.alpha + i)
			if f.count[c] == 0 {
				f.touched = append(f.touched, c)
			}
			f.count[c]++
			f.speed[c] += speeds[k]
			f.sumSp += speeds[k]
			f.obs++
		}
	})
	for s := 0; s < shards; s++ {
		f := &g.fold[s]
		for _, c := range f.touched {
			g.sumCount[c] += f.count[c]
			g.sumSpeed[c] += f.speed[c]
			g.obsNodes[c] += f.count[c]
			f.count[c], f.speed[c] = 0, 0
		}
		g.sumAllSp += f.sumSp
		g.obsAll += f.obs
	}
}

// MergeObservations replaces dst's node statistics with the cell-wise sum
// of the srcs' node statistics, leaving dst's query census untouched. It
// is the reduction step of the sharded CQ server: each shard folds only
// the nodes resident in its cells into a private grid, and the adaptation
// cycle merges those grids into one global view for GRIDREDUCE and
// GREEDYINCREMENT.
//
// All grids must share dst's geometry (space and alpha) and the srcs must
// have folded the same number of Observe rounds — each shard observes
// every sampling round, possibly with zero nodes. Because spatial routing
// sends every observation of a cell to exactly one shard, each cell's
// sums arrive from a single src and merging is exact: the merged per-cell
// statistics are bit-identical to a single grid observing the undivided
// stream. The cross-shard scalar partials (global speed sum, observation
// count, round population) are added in src order, so the merged global
// mean speed is a pure function of the inputs — and, with one src, equals
// the unsharded value bit-for-bit.
func MergeObservations(dst *Grid, srcs []*Grid) {
	dst.ResetObservations()
	for si, src := range srcs {
		if src.alpha != dst.alpha || src.space != dst.space {
			panic("statgrid: merge geometry mismatch")
		}
		if si > 0 && src.samples != srcs[0].samples {
			panic(fmt.Sprintf("statgrid: merge sample mismatch: shard %d has %d rounds, shard 0 has %d",
				si, src.samples, srcs[0].samples))
		}
		for c := range dst.sumCount {
			dst.sumCount[c] += src.sumCount[c]
			dst.sumSpeed[c] += src.sumSpeed[c]
			dst.obsNodes[c] += src.obsNodes[c]
		}
		dst.sumAllSp += src.sumAllSp
		dst.obsAll += src.obsAll
		dst.totalN += src.totalN
	}
	if len(srcs) > 0 {
		dst.samples = srcs[0].samples
	}
	if dst.obsAll > 0 {
		dst.meanSpeed = dst.sumAllSp / dst.obsAll
	}
}

// ResetObservations clears the node statistics (but not the query census),
// starting a fresh measurement window.
func (g *Grid) ResetObservations() {
	for i := range g.sumCount {
		g.sumCount[i] = 0
		g.sumSpeed[i] = 0
		g.obsNodes[i] = 0
	}
	g.samples = 0
	g.totalN = 0
	g.sumAllSp = 0
	g.obsAll = 0
	g.meanSpeed = 0
}

// SetQueries replaces the query census. Queries partially intersecting a
// cell are counted fractionally by the share of the query's area inside
// the cell, per §3.1. Queries wholly outside the space contribute nothing.
func (g *Grid) SetQueries(queries []geo.Rect) {
	for i := range g.queries {
		g.queries[i] = 0
	}
	g.totalM = 0
	w := g.space.Width() / float64(g.alpha)
	h := g.space.Height() / float64(g.alpha)
	for _, q := range queries {
		if q.Area() == 0 {
			continue
		}
		clip := q.Intersect(g.space)
		if clip.Empty() {
			continue
		}
		i0 := clampInt(int((clip.MinX-g.space.MinX)/w), 0, g.alpha-1)
		i1 := clampInt(int((clip.MaxX-g.space.MinX)/w), 0, g.alpha-1)
		j0 := clampInt(int((clip.MinY-g.space.MinY)/h), 0, g.alpha-1)
		j1 := clampInt(int((clip.MaxY-g.space.MinY)/h), 0, g.alpha-1)
		for i := i0; i <= i1; i++ {
			for j := j0; j <= j1; j++ {
				frac := q.OverlapFraction(g.CellRect(i, j))
				if frac > 0 {
					g.queries[j*g.alpha+i] += frac
					g.totalM += frac
				}
			}
		}
	}
}

// Cell returns the statistics of cell (i, j): average node count per
// round, fractional query count, and average node speed. Cells that never
// saw a node report the grid-wide mean speed so downstream consumers never
// divide by a meaningless zero speed.
func (g *Grid) Cell(i, j int) (n, m, s float64) {
	c := j*g.alpha + i
	if g.samples > 0 {
		n = g.sumCount[c] / float64(g.samples)
	}
	m = g.queries[c]
	if g.obsNodes[c] > 0 {
		s = g.sumSpeed[c] / g.obsNodes[c]
	} else {
		s = g.meanSpeed
	}
	return n, m, s
}

// Totals returns the total average node count and total fractional query
// count across the grid.
func (g *Grid) Totals() (n, m float64) {
	if g.samples == 0 {
		return 0, g.totalM
	}
	var sum float64
	for _, c := range g.sumCount {
		sum += c
	}
	return sum / float64(g.samples), g.totalM
}

// Samples returns the number of Observe rounds folded in.
func (g *Grid) Samples() int { return g.samples }

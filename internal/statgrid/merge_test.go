package statgrid

import (
	"testing"

	"lira/internal/geo"
	"lira/internal/rng"
)

// TestMergeObservationsMatchesUnsharded routes the same observation
// stream (a) into one grid and (b) into K per-shard grids split by
// vertical bands, then merges the shards and checks every cell statistic
// and global aggregate is bit-identical to the unsharded grid.
func TestMergeObservationsMatchesUnsharded(t *testing.T) {
	space := geo.NewRect(0, 0, 1000, 1000)
	const alpha = 16
	for _, k := range []int{1, 2, 4, 8} {
		whole := New(space, alpha)
		shards := make([]*Grid, k)
		for i := range shards {
			shards[i] = New(space, alpha)
		}
		bandOf := func(p geo.Point) int {
			col := int(p.X / 1000 * alpha)
			if col >= alpha {
				col = alpha - 1
			}
			return col * k / alpha
		}
		r := rng.New(99)
		for round := 0; round < 3; round++ {
			var pos []geo.Point
			var spd []float64
			for i := 0; i < 500; i++ {
				pos = append(pos, geo.Point{X: r.Range(0, 1000), Y: r.Range(0, 1000)})
				spd = append(spd, r.Range(1, 30))
			}
			whole.Observe(pos, spd)
			parts := make([][]geo.Point, k)
			speeds := make([][]float64, k)
			for i, p := range pos {
				b := bandOf(p)
				parts[b] = append(parts[b], p)
				speeds[b] = append(speeds[b], spd[i])
			}
			for s := 0; s < k; s++ {
				shards[s].Observe(parts[s], speeds[s]) // every shard, every round
			}
		}
		queries := []geo.Rect{geo.NewRect(100, 100, 400, 400), geo.NewRect(600, 50, 950, 800)}
		whole.SetQueries(queries)

		merged := New(space, alpha)
		merged.SetQueries(queries)
		MergeObservations(merged, shards)

		if merged.Samples() != whole.Samples() {
			t.Fatalf("k=%d: samples %d != %d", k, merged.Samples(), whole.Samples())
		}
		wn, wm := whole.Totals()
		mn, mm := merged.Totals()
		if wn != mn || wm != mm {
			t.Fatalf("k=%d: totals (%v,%v) != (%v,%v)", k, mn, mm, wn, wm)
		}
		for j := 0; j < alpha; j++ {
			for i := 0; i < alpha; i++ {
				n0, m0, s0 := whole.Cell(i, j)
				n1, m1, s1 := merged.Cell(i, j)
				if n0 != n1 || m0 != m1 {
					t.Fatalf("k=%d cell (%d,%d): n/m (%v,%v) != (%v,%v)", k, i, j, n1, m1, n0, m0)
				}
				// Empty cells fall back to the global mean speed, whose
				// cross-shard sum order differs from the point order at
				// k>1; occupied cells must match exactly at any k.
				if s0 != s1 && (k == 1 || whole.obsNodes[j*alpha+i] > 0) {
					t.Fatalf("k=%d cell (%d,%d): speed %v != %v", k, i, j, s1, s0)
				}
			}
		}
	}
}

func TestMergeObservationsGeometryMismatch(t *testing.T) {
	space := geo.NewRect(0, 0, 100, 100)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on geometry mismatch")
		}
	}()
	MergeObservations(New(space, 8), []*Grid{New(space, 4)})
}

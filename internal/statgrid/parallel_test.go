package statgrid

import (
	"runtime"
	"testing"

	"lira/internal/geo"
	"lira/internal/rng"
)

// syntheticRound builds a round large enough to engage the sharded fold
// (n > observeChunk).
func syntheticRound(n int) ([]geo.Point, []float64) {
	r := rng.New(11)
	pos := make([]geo.Point, n)
	sp := make([]float64, n)
	for i := range pos {
		pos[i] = geo.Point{X: r.Range(0, 1000), Y: r.Range(0, 1000)}
		sp[i] = r.Range(0, 30)
	}
	return pos, sp
}

// TestObserveShardedMatchesSerialReference checks the sharded fold against
// a cell-by-cell serial reference: counts are exact, speed sums agree to
// floating-point reassociation tolerance.
func TestObserveShardedMatchesSerialReference(t *testing.T) {
	const n = 3*observeChunk + 517
	pos, sp := syntheticRound(n)
	const alpha = 32
	g := New(geo.Rect{MaxX: 1000, MaxY: 1000}, alpha)
	g.Observe(pos, sp)

	refCount := make([]float64, alpha*alpha)
	refSpeed := make([]float64, alpha*alpha)
	for k, p := range pos {
		i, j := g.CellIndex(p)
		refCount[j*alpha+i]++
		refSpeed[j*alpha+i] += sp[k]
	}
	for j := 0; j < alpha; j++ {
		for i := 0; i < alpha; i++ {
			cn, _, cs := g.Cell(i, j)
			c := j*alpha + i
			if cn != refCount[c] {
				t.Fatalf("cell (%d,%d): count %v, want %v", i, j, cn, refCount[c])
			}
			if refCount[c] > 0 {
				want := refSpeed[c] / refCount[c]
				if diff := cs - want; diff > 1e-9 || diff < -1e-9 {
					t.Fatalf("cell (%d,%d): speed %v, want %v", i, j, cs, want)
				}
			}
		}
	}
	gotN, _ := g.Totals()
	if gotN != float64(n) {
		t.Errorf("total node mass %v, want %d", gotN, n)
	}
}

// TestObserveShardedDeterministicAcrossWorkers is the concurrency
// contract: the fold is bit-identical at GOMAXPROCS 1 and 8, including
// over repeated rounds reusing the shard scratch.
func TestObserveShardedDeterministicAcrossWorkers(t *testing.T) {
	const n = 2*observeChunk + 911
	pos, sp := syntheticRound(n)
	const alpha = 64
	run := func(workers int) *Grid {
		prev := runtime.GOMAXPROCS(workers)
		defer runtime.GOMAXPROCS(prev)
		g := New(geo.Rect{MaxX: 1000, MaxY: 1000}, alpha)
		for round := 0; round < 3; round++ {
			g.Observe(pos, sp)
		}
		return g
	}
	a, b := run(1), run(8)
	for j := 0; j < alpha; j++ {
		for i := 0; i < alpha; i++ {
			an, am, as := a.Cell(i, j)
			bn, bm, bs := b.Cell(i, j)
			if an != bn || am != bm || as != bs {
				t.Fatalf("cell (%d,%d) diverged across worker counts: (%v,%v,%v) vs (%v,%v,%v)",
					i, j, an, am, as, bn, bm, bs)
			}
		}
	}
}

package statgrid

import (
	"bytes"
	"math"
	"testing"

	"lira/internal/geo"
	"lira/internal/rng"
)

func TestObserveSampledScalesCounts(t *testing.T) {
	full := New(space(), 4)
	sampled := New(space(), 4)
	r := rng.New(5)
	const n = 4000
	pos := make([]geo.Point, n)
	sp := make([]float64, n)
	for i := range pos {
		pos[i] = geo.Point{X: r.Range(0, 100), Y: r.Range(0, 100)}
		sp[i] = r.Range(5, 25)
	}
	full.Observe(pos, sp)
	// Thin to 25%.
	var tpos []geo.Point
	var tsp []float64
	for i := range pos {
		if r.Bool(0.25) {
			tpos = append(tpos, pos[i])
			tsp = append(tsp, sp[i])
		}
	}
	sampled.ObserveSampled(tpos, tsp, 0.25)

	fn, _ := full.Totals()
	sn, _ := sampled.Totals()
	if math.Abs(sn-fn)/fn > 0.1 {
		t.Errorf("sampled total %v deviates from full %v", sn, fn)
	}
	// Per-cell estimates must agree within sampling noise.
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			fN, _, fS := full.Cell(i, j)
			sN, _, sS := sampled.Cell(i, j)
			if fN > 50 && math.Abs(sN-fN)/fN > 0.35 {
				t.Errorf("cell (%d,%d): sampled n %v vs full %v", i, j, sN, fN)
			}
			if fN > 50 && math.Abs(sS-fS)/fS > 0.2 {
				t.Errorf("cell (%d,%d): sampled speed %v vs full %v", i, j, sS, fS)
			}
		}
	}
}

func TestObserveSampledPanics(t *testing.T) {
	g := New(space(), 2)
	for _, rate := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("rate %v should panic", rate)
				}
			}()
			g.ObserveSampled(nil, nil, rate)
		}()
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	g.ObserveSampled(make([]geo.Point, 2), make([]float64, 1), 0.5)
}

func TestProfileSlotSelection(t *testing.T) {
	p, err := NewProfile(space(), 4, 24, 3600)
	if err != nil {
		t.Fatal(err)
	}
	if p.Slots() != 24 {
		t.Fatalf("Slots = %d", p.Slots())
	}
	cases := []struct {
		t    float64
		slot int
	}{
		{0, 0},
		{3599, 0},
		{3600, 1},
		{23*3600 + 1800, 23},
		{24 * 3600, 0},      // wraps
		{25 * 3600, 1},      // wraps
		{-1800, 23},         // negative wraps backwards
		{48*3600 + 7200, 2}, // many periods later
	}
	for _, c := range cases {
		if got := p.SlotFor(c.t); got != c.slot {
			t.Errorf("SlotFor(%v) = %d, want %d", c.t, got, c.slot)
		}
	}
	if p.GridFor(3600) != p.Grid(1) {
		t.Error("GridFor and Grid disagree")
	}
}

func TestNewProfileValidation(t *testing.T) {
	if _, err := NewProfile(space(), 4, 0, 3600); err == nil {
		t.Error("zero slots should error")
	}
	if _, err := NewProfile(space(), 4, 24, 0); err == nil {
		t.Error("zero slot length should error")
	}
}

func TestProfileSerializationRoundTrip(t *testing.T) {
	p, err := NewProfile(space(), 8, 4, 900)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(9)
	for slot := 0; slot < 4; slot++ {
		g := p.Grid(slot)
		for round := 0; round < slot+1; round++ {
			n := 100 * (slot + 1)
			pos := make([]geo.Point, n)
			sp := make([]float64, n)
			for i := range pos {
				pos[i] = geo.Point{X: r.Range(0, 100), Y: r.Range(0, 100)}
				sp[i] = r.Range(5, 25)
			}
			g.Observe(pos, sp)
		}
		g.SetQueries([]geo.Rect{geo.Square(geo.Point{X: 50, Y: 50}, float64(10*(slot+1)))})
	}

	var buf bytes.Buffer
	n, err := p.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}

	got, err := ReadProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Slots() != p.Slots() {
		t.Fatalf("slots = %d", got.Slots())
	}
	for slot := 0; slot < 4; slot++ {
		a, b := p.Grid(slot), got.Grid(slot)
		if a.Samples() != b.Samples() {
			t.Errorf("slot %d samples %d vs %d", slot, a.Samples(), b.Samples())
		}
		for i := 0; i < 8; i++ {
			for j := 0; j < 8; j++ {
				an, am, as := a.Cell(i, j)
				bn, bm, bs := b.Cell(i, j)
				if an != bn || am != bm || as != bs {
					t.Fatalf("slot %d cell (%d,%d): (%v,%v,%v) vs (%v,%v,%v)",
						slot, i, j, an, am, as, bn, bm, bs)
				}
			}
		}
		an, am := a.Totals()
		bn, bm := b.Totals()
		if an != bn || am != bm {
			t.Errorf("slot %d totals (%v,%v) vs (%v,%v)", slot, an, am, bn, bm)
		}
	}
}

func TestReadProfileRejectsGarbage(t *testing.T) {
	if _, err := ReadProfile(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadProfile(bytes.NewReader([]byte("XXXX1234567890"))); err == nil {
		t.Error("bad magic accepted")
	}
	// Valid header, truncated body.
	p, _ := NewProfile(space(), 4, 2, 60)
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadProfile(bytes.NewReader(data[:len(data)-8])); err == nil {
		t.Error("truncated profile accepted")
	}
}

// Package spans is a deterministic, causally linked span tracer for the
// LIRA pipeline: every stage of the ingest → admit → drain → adapt →
// evaluate path can open a span, attach key/value arguments, and close
// it, producing a parent/child tree that explains *why* a record was
// admitted, shed, or answered late. It is deliberately named spans, not
// trace — internal/trace is the paper's mobility trace.
//
// Determinism contract (the property the 3-seed byte-identity test
// enforces): span ids are derived from the tracer seed and a montonic
// counter — never the wall clock, never math/rand — and timestamps come
// from the tracer's installed clock. Under a simulation clock (model
// time) two identically seeded runs therefore export byte-identical
// trace files; under netsvc's wall clock the ids stay deterministic and
// only the timestamps are physical. Callers on deterministic paths must
// create spans from a single coordinator goroutine (the evaluation
// driver, the adaptation cycle) so counter assignment order is itself
// reproducible; parallel phase *workers* are attributed with
// runtime/pprof labels instead of spans for exactly this reason.
//
// Cost model: a disabled tracer ((*Tracer)(nil), or an unsampled root)
// costs one nil/flag check per operation and allocates nothing, keeping
// the telemetry passivity budget intact. An enabled span costs one
// atomic counter increment at Start and one short mutex hold at End
// (ring append). Storage is a fixed-capacity ring: the newest spans win,
// and evictions are counted, never silent.
//
// Export is Chrome trace-event JSON ("ph":"X" complete events), directly
// loadable in Perfetto or chrome://tracing: one lane (tid) per category,
// parent ids in args, microsecond timestamps scaled from the clock's
// seconds.
package spans

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Clock supplies timestamps in seconds. Simulation installs model time
// (via telemetry.Hub.SetSpans); daemons leave the wall clock.
type Clock func() float64

// maxArgs bounds the per-span argument list; setters beyond it are
// dropped (spans are summaries, not logs).
const maxArgs = 6

// Arg is one key/value argument attached to a span. Either Num or Str is
// meaningful, per IsStr.
type Arg struct {
	Key   string
	Num   float64
	Str   string
	IsStr bool
}

// Span is one completed operation: a named interval with a category
// lane, causal parent, and bounded argument list. Times are in the
// tracer clock's seconds.
type Span struct {
	ID     uint64
	Parent uint64 // 0 for roots
	Name   string
	Cat    string
	Start  float64
	Dur    float64
	Args   [maxArgs]Arg
	NArgs  int
}

// Config parameterizes a Tracer.
type Config struct {
	// Capacity is the span ring size; 0 selects 8192.
	Capacity int
	// Sample keeps 1 of every Sample root spans (children inherit the
	// root's verdict — head-based sampling). 0 and 1 keep everything.
	Sample int
	// Seed is folded into every span id, so traces from differently
	// seeded runs never alias.
	Seed uint64
	// Clock supplies timestamps; nil selects a zero clock (callers
	// normally install one via SetClock / telemetry.Hub.SetSpans).
	Clock Clock
}

// Tracer records completed spans into a fixed ring. All methods are
// goroutine-safe and nil-safe: every operation on a nil *Tracer is a
// cheap no-op, so instrumented code needs no tracing-enabled branches.
type Tracer struct {
	seed    uint64
	sample  uint64
	counter atomic.Uint64 // span id counter
	roots   atomic.Uint64 // root count, drives head sampling
	evicted atomic.Int64

	mu    sync.Mutex
	clock Clock
	buf   []Span
	start int
	size  int
}

// New returns a Tracer with the given configuration.
func New(cfg Config) *Tracer {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 8192
	}
	if cfg.Sample < 1 {
		cfg.Sample = 1
	}
	clock := cfg.Clock
	if clock == nil {
		clock = func() float64 { return 0 }
	}
	return &Tracer{
		seed:   cfg.Seed,
		sample: uint64(cfg.Sample),
		clock:  clock,
		buf:    make([]Span, cfg.Capacity),
	}
}

// SetClock installs the timestamp source (no-op on nil).
func (t *Tracer) SetClock(c Clock) {
	if t == nil || c == nil {
		return
	}
	t.mu.Lock()
	t.clock = c
	t.mu.Unlock()
}

func (t *Tracer) now() float64 {
	t.mu.Lock()
	c := t.clock
	t.mu.Unlock()
	return c()
}

// nextID derives a deterministic span id: the tracer seed in the high
// bits, the monotone counter in the low. No wall clock, no rand.
func (t *Tracer) nextID() uint64 {
	return t.seed<<32 + t.counter.Add(1)
}

// Ctx is a live span handle. The zero Ctx (and any Ctx from a disabled
// or unsampled Start) is inert: Child returns another inert Ctx, the
// argument setters and End do nothing. Ctx is a value type — copy it
// freely, but call End exactly once per recorded span.
type Ctx struct {
	t      *Tracer
	id     uint64
	parent uint64
	name   string
	cat    string
	start  float64
	args   [maxArgs]Arg
	nargs  int
}

// Start opens a root span. The head-sampling decision happens here: an
// unsampled root returns an inert Ctx whose whole subtree is skipped.
func (t *Tracer) Start(name, cat string) Ctx {
	if t == nil {
		return Ctx{}
	}
	if r := t.roots.Add(1); t.sample > 1 && (r-1)%t.sample != 0 {
		return Ctx{}
	}
	return Ctx{t: t, id: t.nextID(), name: name, cat: cat, start: t.now()}
}

// Enabled reports whether the span is live (sampled and recording).
func (c Ctx) Enabled() bool { return c.t != nil }

// Child opens a sub-span causally under c.
func (c Ctx) Child(name, cat string) Ctx {
	if c.t == nil {
		return Ctx{}
	}
	return Ctx{t: c.t, id: c.t.nextID(), parent: c.id, name: name, cat: cat, start: c.t.now()}
}

// Num attaches a numeric argument, returning the updated handle.
func (c Ctx) Num(key string, v float64) Ctx {
	if c.t == nil || c.nargs >= maxArgs {
		return c
	}
	c.args[c.nargs] = Arg{Key: key, Num: v}
	c.nargs++
	return c
}

// Str attaches a string argument, returning the updated handle.
func (c Ctx) Str(key, v string) Ctx {
	if c.t == nil || c.nargs >= maxArgs {
		return c
	}
	c.args[c.nargs] = Arg{Key: key, Str: v, IsStr: true}
	c.nargs++
	return c
}

// End closes the span and commits it to the ring.
func (c Ctx) End() {
	if c.t == nil {
		return
	}
	t := c.t
	end := t.now()
	sp := Span{ID: c.id, Parent: c.parent, Name: c.name, Cat: c.cat, Start: c.start, Dur: end - c.start, Args: c.args, NArgs: c.nargs}
	t.mu.Lock()
	if t.size < len(t.buf) {
		t.buf[(t.start+t.size)%len(t.buf)] = sp
		t.size++
	} else {
		t.buf[t.start] = sp
		t.start = (t.start + 1) % len(t.buf)
		t.evicted.Add(1)
	}
	t.mu.Unlock()
}

// Len returns the number of retained spans (0 on nil).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.size
}

// Evicted returns how many spans the ring overwrote (0 on nil).
func (t *Tracer) Evicted() int64 {
	if t == nil {
		return 0
	}
	return t.evicted.Load()
}

// Roots returns how many root spans were started, sampled or not (0 on
// nil). The sampled fraction is Roots/Sample rounded up.
func (t *Tracer) Roots() uint64 {
	if t == nil {
		return 0
	}
	return t.roots.Load()
}

// Snapshot copies the retained spans, oldest first (nil on nil tracer).
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, t.size)
	for i := 0; i < t.size; i++ {
		out[i] = t.buf[(t.start+i)%len(t.buf)]
	}
	return out
}

// Reset drops every retained span and restarts the id and sampling
// counters (no-op on nil). Tests use it between measured sections.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.start, t.size = 0, 0
	t.mu.Unlock()
	t.counter.Store(0)
	t.roots.Store(0)
	t.evicted.Store(0)
}

// WriteJSON renders the retained spans as a Chrome trace-event file
// (the {"traceEvents": [...]} wrapper, "ph":"X" complete events),
// loadable in Perfetto. Output is deterministic: spans appear in ring
// order, categories get stable lane (tid) numbers in first-appearance
// order, and floats use the shortest round-trip formatting. Timestamps
// are scaled to microseconds as the format requires.
func (t *Tracer) WriteJSON(w io.Writer) error {
	spans := t.Snapshot()
	lanes := map[string]int{}
	for _, sp := range spans {
		if _, ok := lanes[sp.Cat]; !ok {
			lanes[sp.Cat] = len(lanes) + 1
		}
	}
	if _, err := io.WriteString(w, `{"traceEvents":[`); err != nil {
		return err
	}
	for i, sp := range spans {
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		if err := writeEvent(w, sp, lanes[sp.Cat]); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, `],"displayTimeUnit":"ms"}`+"\n")
	return err
}

func writeEvent(w io.Writer, sp Span, tid int) error {
	if _, err := fmt.Fprintf(w, `{"name":%s,"cat":%s,"ph":"X","ts":%s,"dur":%s,"pid":1,"tid":%d,"id":"0x%x"`,
		quote(sp.Name), quote(sp.Cat), num(sp.Start*1e6), num(sp.Dur*1e6), tid, sp.ID); err != nil {
		return err
	}
	if sp.NArgs > 0 || sp.Parent != 0 {
		if _, err := io.WriteString(w, `,"args":{`); err != nil {
			return err
		}
		first := true
		if sp.Parent != 0 {
			if _, err := fmt.Fprintf(w, `"parent":"0x%x"`, sp.Parent); err != nil {
				return err
			}
			first = false
		}
		for i := 0; i < sp.NArgs; i++ {
			a := sp.Args[i]
			if !first {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			first = false
			v := num(a.Num)
			if a.IsStr {
				v = quote(a.Str)
			}
			if _, err := fmt.Fprintf(w, "%s:%s", quote(a.Key), v); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "}"); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "}")
	return err
}

// num formats a float deterministically for JSON (no exponent surprises
// across runs: shortest round-trip form, NaN/Inf mapped to 0 — the
// trace format has no tokens for them).
func num(v float64) string {
	if v != v || v > 1e308 || v < -1e308 {
		return "0"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// quote renders a JSON string literal. Span names and categories are
// code-chosen identifiers, but args may carry arbitrary values, so the
// escaping is complete for the control and quote characters.
func quote(s string) string {
	buf := make([]byte, 0, len(s)+2)
	buf = append(buf, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			buf = append(buf, '\\', c)
		case c == '\n':
			buf = append(buf, '\\', 'n')
		case c == '\t':
			buf = append(buf, '\\', 't')
		case c < 0x20:
			buf = append(buf, []byte(fmt.Sprintf(`\u%04x`, c))...)
		default:
			buf = append(buf, c)
		}
	}
	return string(append(buf, '"'))
}

// ByCategory returns retained span counts per category, sorted by
// category name — the shape /debug/lira/spans reports alongside the
// trace for quick sanity checks.
func (t *Tracer) ByCategory() []CatCount {
	counts := map[string]int{}
	for _, sp := range t.Snapshot() {
		counts[sp.Cat]++
	}
	out := make([]CatCount, 0, len(counts))
	for cat, n := range counts {
		out = append(out, CatCount{Cat: cat, N: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Cat < out[j].Cat })
	return out
}

// CatCount is one category's retained span count.
type CatCount struct {
	Cat string `json:"cat"`
	N   int    `json:"n"`
}

package spans

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestNilTracerIsInert proves the nil-safety contract: every operation
// on a nil *Tracer (and on the inert Ctx it hands out) is a no-op.
func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("x", "y")
	if sp.Enabled() {
		t.Fatal("nil tracer produced an enabled span")
	}
	sp = sp.Num("k", 1).Str("s", "v")
	child := sp.Child("c", "y")
	if child.Enabled() {
		t.Fatal("child of inert span is enabled")
	}
	child.End()
	sp.End()
	if tr.Len() != 0 || tr.Evicted() != 0 || tr.Roots() != 0 {
		t.Fatal("nil tracer accumulated state")
	}
	if got := tr.Snapshot(); got != nil {
		t.Fatalf("nil tracer snapshot = %v, want nil", got)
	}
	tr.SetClock(func() float64 { return 1 })
	tr.Reset()
}

// TestDeterministicIDs proves ids depend only on seed and call order.
func TestDeterministicIDs(t *testing.T) {
	mk := func(seed uint64) []uint64 {
		tr := New(Config{Seed: seed, Capacity: 16})
		root := tr.Start("root", "c")
		a := root.Child("a", "c")
		b := root.Child("b", "c")
		a.End()
		b.End()
		root.End()
		ids := []uint64{}
		for _, sp := range tr.Snapshot() {
			ids = append(ids, sp.ID, sp.Parent)
		}
		return ids
	}
	one, two := mk(7), mk(7)
	for i := range one {
		if one[i] != two[i] {
			t.Fatalf("run divergence at %d: %x vs %x", i, one[i], two[i])
		}
	}
	other := mk(8)
	if one[0] == other[0] {
		t.Fatal("different seeds produced identical span ids")
	}
}

// TestParentLinkage checks the causal chain root → child → grandchild.
func TestParentLinkage(t *testing.T) {
	tr := New(Config{Seed: 1, Capacity: 16})
	root := tr.Start("root", "c")
	child := root.Child("child", "c")
	grand := child.Child("grand", "c")
	grand.End()
	child.End()
	root.End()
	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("len = %d, want 3", len(spans))
	}
	byName := map[string]Span{}
	for _, sp := range spans {
		byName[sp.Name] = sp
	}
	if byName["root"].Parent != 0 {
		t.Errorf("root parent = %x, want 0", byName["root"].Parent)
	}
	if byName["child"].Parent != byName["root"].ID {
		t.Errorf("child parent = %x, want %x", byName["child"].Parent, byName["root"].ID)
	}
	if byName["grand"].Parent != byName["child"].ID {
		t.Errorf("grand parent = %x, want %x", byName["grand"].Parent, byName["child"].ID)
	}
}

// TestHeadSampling: with Sample=3, roots 1, 4, 7, … are kept and the
// children of an unsampled root are skipped wholesale.
func TestHeadSampling(t *testing.T) {
	tr := New(Config{Seed: 1, Capacity: 64, Sample: 3})
	kept := 0
	for i := 0; i < 9; i++ {
		root := tr.Start("r", "c")
		if root.Enabled() {
			kept++
			root.Child("ch", "c").End()
		} else if root.Child("ch", "c").Enabled() {
			t.Fatal("child of unsampled root is enabled")
		}
		root.End()
	}
	if kept != 3 {
		t.Fatalf("kept %d of 9 roots at Sample=3, want 3", kept)
	}
	if tr.Len() != 6 { // 3 roots + 3 children
		t.Fatalf("retained %d spans, want 6", tr.Len())
	}
	if tr.Roots() != 9 {
		t.Fatalf("Roots() = %d, want 9 (sampling must not hide demand)", tr.Roots())
	}
}

// TestRingEviction: the ring keeps the newest spans and counts evictions.
func TestRingEviction(t *testing.T) {
	tr := New(Config{Seed: 1, Capacity: 4})
	for i := 0; i < 10; i++ {
		tr.Start("s", "c").End()
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Evicted() != 6 {
		t.Fatalf("Evicted = %d, want 6", tr.Evicted())
	}
	spans := tr.Snapshot()
	// Newest-wins: the retained ids are the last four allocated.
	for i := 1; i < len(spans); i++ {
		if spans[i].ID != spans[i-1].ID+1 {
			t.Fatalf("ring order broken: %x after %x", spans[i].ID, spans[i-1].ID)
		}
	}
}

// TestClock: timestamps come from the installed clock, durations from
// its delta.
func TestClock(t *testing.T) {
	now := 10.0
	tr := New(Config{Seed: 1, Capacity: 4, Clock: func() float64 { return now }})
	sp := tr.Start("s", "c")
	now = 12.5
	sp.End()
	got := tr.Snapshot()[0]
	if got.Start != 10 || got.Dur != 2.5 {
		t.Fatalf("span time = (%v, %v), want (10, 2.5)", got.Start, got.Dur)
	}
}

// TestWriteJSONShape: the export parses as standard JSON, carries the
// traceEvents wrapper, complete-event phase, per-category lanes, and
// hex-linked parents, and is byte-identical across repeated exports.
func TestWriteJSONShape(t *testing.T) {
	tr := New(Config{Seed: 3, Capacity: 16})
	root := tr.Start("evaluate", "engine").Num("k", 4)
	child := root.Child("phase1_predict", "engine").Str("mode", "full")
	child.End()
	root.End()
	tr.Start("adapt", "controlplane").End()

	var a, b bytes.Buffer
	if err := tr.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("repeated exports differ")
	}

	var doc struct {
		TraceEvents []struct {
			Name string                 `json:"name"`
			Cat  string                 `json:"cat"`
			Ph   string                 `json:"ph"`
			Tid  int                    `json:"tid"`
			ID   string                 `json:"id"`
			Args map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, a.String())
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("events = %d, want 3", len(doc.TraceEvents))
	}
	lanes := map[string]int{}
	var rootID string
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %q ph = %q, want X", ev.Name, ev.Ph)
		}
		if !strings.HasPrefix(ev.ID, "0x") {
			t.Errorf("event %q id = %q, want 0x-prefixed", ev.Name, ev.ID)
		}
		if prev, ok := lanes[ev.Cat]; ok && prev != ev.Tid {
			t.Errorf("category %q spread over lanes %d and %d", ev.Cat, prev, ev.Tid)
		}
		lanes[ev.Cat] = ev.Tid
		if ev.Name == "evaluate" {
			rootID = ev.ID
		}
	}
	if lanes["engine"] == lanes["controlplane"] {
		t.Error("distinct categories share a lane")
	}
	for _, ev := range doc.TraceEvents {
		if ev.Name == "phase1_predict" {
			if ev.Args["parent"] != rootID {
				t.Errorf("child parent arg = %v, want %v", ev.Args["parent"], rootID)
			}
			if ev.Args["mode"] != "full" {
				t.Errorf("string arg lost: %v", ev.Args)
			}
		}
		if ev.Name == "evaluate" && ev.Args["k"] != 4.0 {
			t.Errorf("numeric arg lost: %v", ev.Args)
		}
	}
}

// TestQuoteEscapes: arbitrary argument strings survive JSON encoding.
func TestQuoteEscapes(t *testing.T) {
	tr := New(Config{Seed: 1, Capacity: 4})
	tr.Start("s", "c").Str("v", "a\"b\\c\nd\te\x01f").End()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("escaping broke JSON: %v\n%s", err, buf.String())
	}
	ev := doc["traceEvents"].([]interface{})[0].(map[string]interface{})
	if got := ev["args"].(map[string]interface{})["v"]; got != "a\"b\\c\nd\te\x01f" {
		t.Fatalf("round-trip = %q", got)
	}
}

// TestArgOverflowDropped: setters beyond maxArgs are dropped, not
// panicking or reallocating.
func TestArgOverflowDropped(t *testing.T) {
	tr := New(Config{Seed: 1, Capacity: 4})
	sp := tr.Start("s", "c")
	for i := 0; i < maxArgs+3; i++ {
		sp = sp.Num("k", float64(i))
	}
	sp.End()
	if got := tr.Snapshot()[0].NArgs; got != maxArgs {
		t.Fatalf("NArgs = %d, want %d", got, maxArgs)
	}
}

// TestConcurrentEnd: ring appends from many goroutines race-cleanly
// (ordering is the caller's concern; integrity is the tracer's).
func TestConcurrentEnd(t *testing.T) {
	tr := New(Config{Seed: 1, Capacity: 128})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Start("s", "c").End()
			}
		}()
	}
	wg.Wait()
	if tr.Len() != 128 {
		t.Fatalf("Len = %d, want 128", tr.Len())
	}
	if tr.Evicted() != 800-128 {
		t.Fatalf("Evicted = %d, want %d", tr.Evicted(), 800-128)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("concurrent export is invalid JSON")
	}
}

// TestByCategory: counts group by category, sorted.
func TestByCategory(t *testing.T) {
	tr := New(Config{Seed: 1, Capacity: 16})
	tr.Start("a", "zeta").End()
	tr.Start("b", "alpha").End()
	tr.Start("c", "alpha").End()
	got := tr.ByCategory()
	if len(got) != 2 || got[0].Cat != "alpha" || got[0].N != 2 || got[1].Cat != "zeta" || got[1].N != 1 {
		t.Fatalf("ByCategory = %+v", got)
	}
}

// Package slo tracks service-level objectives for the LIRA pipeline with
// multi-window burn-rate alerting, the SRE-workbook scheme adapted to
// model time: each SLO is an indicator sampled once per control tick
// (Evaluate p99 latency, modeled inaccuracy, admission-ladder rung),
// a bound the sample must meet, and an objective — the fraction of ticks
// that must meet it over the long window. The burn rate is how fast the
// error budget (1 − objective) is being spent: 1.0 means exactly on
// budget, 2.0 means the budget will be gone in half the window. An SLO
// alerts only when BOTH windows burn hot — the long window proves the
// problem is material, the short window proves it is still happening —
// which is what keeps one transient Evaluate spike from paging.
//
// Like every observability component here, the tracker is passive and
// deterministic: it consumes caller-supplied samples (never the wall
// clock), exposes per-SLO gauges through the telemetry registry, and
// journals KindSLO records on alert transitions plus a sparse heartbeat
// — never every tick, so it cannot crowd bounded journals.
package slo

import (
	"fmt"
	"sync"

	"lira/internal/telemetry"
)

// Target declares one SLO.
type Target struct {
	// Name identifies the SLO in metrics, journal records, and views.
	// It must be a valid metric-name fragment ([a-z0-9_]).
	Name string
	// Bound is the per-tick threshold: a tick is good when the sampled
	// indicator is <= Bound.
	Bound float64
	// Objective is the required good-tick fraction over the long window,
	// in (0, 1) — e.g. 0.99 tolerates 1% bad ticks.
	Objective float64
}

// Config parameterizes a Tracker.
type Config struct {
	// Targets are the tracked SLOs, observed in declaration order.
	Targets []Target
	// Window is the long window in ticks (<= 0 selects 240 — 8 minutes
	// at lirad's default 2s evaluation tick).
	Window int
	// ShortWindow is the fast window in ticks (<= 0 selects Window/12,
	// minimum 1).
	ShortWindow int
	// BurnAlert is the burn-rate threshold both windows must exceed to
	// alert (<= 0 selects 2: budget gone in half the window).
	BurnAlert float64
	// JournalEvery emits a heartbeat KindSLO record per target every N
	// observations (<= 0 selects 64); alert transitions always journal.
	JournalEvery int
	// Telemetry receives per-SLO gauges and the KindSLO journal records;
	// nil disables both (the tracker still computes, for Views).
	Telemetry *telemetry.Hub
}

// sloState is one target's ring of tick outcomes plus its pre-resolved
// metrics.
type sloState struct {
	t    Target
	ring []bool // true = bad tick
	head int
	size int
	bad  int // bad count over the ring

	ticks     uint64
	lastValue float64
	lastGood  bool
	burnS     float64
	burnL     float64
	alerting  bool

	gBurnShort *telemetry.Gauge   // lira_slo_<name>_burn_short
	gBurnLong  *telemetry.Gauge   // lira_slo_<name>_burn_long
	gGood      *telemetry.Gauge   // lira_slo_<name>_good
	gAlerting  *telemetry.Gauge   // lira_slo_<name>_alerting
	cAlerts    *telemetry.Counter // lira_slo_<name>_alerts_total
}

// Tracker evaluates a set of SLOs tick by tick. Observe is single-caller
// (the serving layer's background tick); Views may be called from any
// goroutine.
type Tracker struct {
	mu    sync.Mutex
	cfg   Config
	slos  []*sloState
	hub   *telemetry.Hub
	short int
}

// New validates cfg and returns a Tracker.
func New(cfg Config) (*Tracker, error) {
	if len(cfg.Targets) == 0 {
		return nil, fmt.Errorf("slo: no targets")
	}
	if cfg.Window <= 0 {
		cfg.Window = 240
	}
	if cfg.ShortWindow <= 0 {
		cfg.ShortWindow = cfg.Window / 12
	}
	if cfg.ShortWindow < 1 {
		cfg.ShortWindow = 1
	}
	if cfg.ShortWindow > cfg.Window {
		return nil, fmt.Errorf("slo: short window %d exceeds window %d", cfg.ShortWindow, cfg.Window)
	}
	if cfg.BurnAlert <= 0 {
		cfg.BurnAlert = 2
	}
	if cfg.JournalEvery <= 0 {
		cfg.JournalEvery = 64
	}
	t := &Tracker{cfg: cfg, hub: cfg.Telemetry, short: cfg.ShortWindow}
	seen := map[string]bool{}
	for _, target := range cfg.Targets {
		if target.Name == "" {
			return nil, fmt.Errorf("slo: unnamed target")
		}
		if seen[target.Name] {
			return nil, fmt.Errorf("slo: duplicate target %q", target.Name)
		}
		seen[target.Name] = true
		if target.Objective <= 0 || target.Objective >= 1 {
			return nil, fmt.Errorf("slo %q: objective %v outside (0, 1)", target.Name, target.Objective)
		}
		st := &sloState{t: target, ring: make([]bool, cfg.Window)}
		if h := cfg.Telemetry; h != nil {
			r := h.Registry
			st.gBurnShort = r.Gauge("lira_slo_" + target.Name + "_burn_short")
			st.gBurnLong = r.Gauge("lira_slo_" + target.Name + "_burn_long")
			st.gGood = r.Gauge("lira_slo_" + target.Name + "_good")
			st.gAlerting = r.Gauge("lira_slo_" + target.Name + "_alerting")
			st.cAlerts = r.Counter("lira_slo_" + target.Name + "_alerts_total")
		}
		t.slos = append(t.slos, st)
	}
	return t, nil
}

// Observe feeds one tick of indicator samples, in Targets order (len
// must match). It updates the windows, burn rates, gauges, and alert
// state, journaling KindSLO records on alert transitions and on the
// sparse heartbeat. Nil-safe: a nil Tracker ignores the call.
func (t *Tracker) Observe(values []float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(values) != len(t.slos) {
		return // caller bug; fail closed rather than misattribute samples
	}
	for i, st := range t.slos {
		v := values[i]
		bad := v > st.t.Bound
		st.ticks++
		st.lastValue, st.lastGood = v, !bad

		// Slide the long window.
		if st.size == len(st.ring) {
			if st.ring[st.head] {
				st.bad--
			}
		} else {
			st.size++
		}
		st.ring[st.head] = bad
		if bad {
			st.bad++
		}
		st.head = (st.head + 1) % len(st.ring)

		// Short-window bad count: walk the most recent short ticks. The
		// short window is small (Window/12) and Observe runs once per
		// control tick, so the walk is cheap and keeps one ring.
		shortN := t.short
		if shortN > st.size {
			shortN = st.size
		}
		shortBad := 0
		for j := 1; j <= shortN; j++ {
			if st.ring[(st.head-j+len(st.ring))%len(st.ring)] {
				shortBad++
			}
		}

		budget := 1 - st.t.Objective
		st.burnL = burn(st.bad, st.size, budget)
		st.burnS = burn(shortBad, shortN, budget)
		// Multi-window verdict: alert only once the short window is
		// fully formed — a single bad first tick is not a page.
		alerting := shortN >= t.short &&
			st.burnS >= t.cfg.BurnAlert && st.burnL >= t.cfg.BurnAlert
		entered := alerting && !st.alerting
		exited := !alerting && st.alerting
		st.alerting = alerting

		if st.gBurnShort != nil {
			st.gBurnShort.Set(st.burnS)
			st.gBurnLong.Set(st.burnL)
			st.gGood.Set(b2f(!bad))
			st.gAlerting.Set(b2f(alerting))
			if entered {
				st.cAlerts.Inc()
			}
		}
		if t.hub != nil && (entered || exited || st.ticks%uint64(t.cfg.JournalEvery) == 1) {
			t.hub.Record(telemetry.Record{
				Kind: telemetry.KindSLO,
				SLO: &telemetry.SLOEvent{
					Name:      st.t.Name,
					Value:     v,
					Target:    st.t.Bound,
					Good:      !bad,
					BurnShort: st.burnS,
					BurnLong:  st.burnL,
					Alerting:  alerting,
				},
			})
		}
	}
}

// burn is the burn rate: the bad fraction over a window divided by the
// error budget. An empty window burns 0; a zero budget cannot happen
// (Objective is validated inside (0, 1)).
func burn(bad, n int, budget float64) float64 {
	if n == 0 {
		return 0
	}
	return float64(bad) / float64(n) / budget
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// View is one SLO's current state, shaped for introspection endpoints.
type View struct {
	Name      string  `json:"name"`
	Bound     float64 `json:"bound"`
	Objective float64 `json:"objective"`
	Value     float64 `json:"value"`
	Good      bool    `json:"good"`
	BurnShort float64 `json:"burn_short"`
	BurnLong  float64 `json:"burn_long"`
	Alerting  bool    `json:"alerting"`
	Ticks     uint64  `json:"ticks"`
}

// Views returns every SLO's current state, in Targets order (nil on a
// nil Tracker).
func (t *Tracker) Views() []View {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]View, len(t.slos))
	for i, st := range t.slos {
		out[i] = View{
			Name:      st.t.Name,
			Bound:     st.t.Bound,
			Objective: st.t.Objective,
			Value:     st.lastValue,
			Good:      st.lastGood,
			BurnShort: st.burnS,
			BurnLong:  st.burnL,
			Alerting:  st.alerting,
			Ticks:     st.ticks,
		}
	}
	return out
}

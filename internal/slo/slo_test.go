package slo

import (
	"testing"

	"lira/internal/telemetry"
)

func mustNew(t *testing.T, cfg Config) *Tracker {
	t.Helper()
	tr, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return tr
}

func TestNilTrackerIsInert(t *testing.T) {
	var tr *Tracker
	tr.Observe([]float64{1, 2})
	if v := tr.Views(); v != nil {
		t.Fatalf("nil tracker Views = %v, want nil", v)
	}
}

func TestValidation(t *testing.T) {
	cases := []Config{
		{},
		{Targets: []Target{{Name: "", Bound: 1, Objective: 0.9}}},
		{Targets: []Target{{Name: "a", Bound: 1, Objective: 0}}},
		{Targets: []Target{{Name: "a", Bound: 1, Objective: 1}}},
		{Targets: []Target{
			{Name: "a", Bound: 1, Objective: 0.9},
			{Name: "a", Bound: 2, Objective: 0.9},
		}},
		{Targets: []Target{{Name: "a", Bound: 1, Objective: 0.9}}, Window: 10, ShortWindow: 20},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: New accepted invalid config %+v", i, cfg)
		}
	}
}

func TestBurnRatesAndAlerting(t *testing.T) {
	// Objective 0.9 => budget 0.1. Window 12, short 3, alert at burn >= 2
	// (bad fraction >= 0.2 in both windows).
	tr := mustNew(t, Config{
		Targets:     []Target{{Name: "lat", Bound: 10, Objective: 0.9}},
		Window:      12,
		ShortWindow: 3,
		BurnAlert:   2,
	})

	// 6 good ticks: no burn, no alert.
	for i := 0; i < 6; i++ {
		tr.Observe([]float64{1})
	}
	v := tr.Views()[0]
	if v.BurnLong != 0 || v.BurnShort != 0 || v.Alerting || !v.Good {
		t.Fatalf("after good ticks: %+v", v)
	}

	// 3 bad ticks: short window all bad (burn 10), long 3/9 (burn ~3.33).
	for i := 0; i < 3; i++ {
		tr.Observe([]float64{99})
	}
	v = tr.Views()[0]
	if !v.Alerting {
		t.Fatalf("want alerting after sustained bad ticks: %+v", v)
	}
	if v.BurnShort < 9.99 || v.BurnShort > 10.01 {
		t.Fatalf("BurnShort = %v, want 10", v.BurnShort)
	}
	wantLong := (3.0 / 9.0) / 0.1
	if diff := v.BurnLong - wantLong; diff < -1e-9 || diff > 1e-9 {
		t.Fatalf("BurnLong = %v, want %v", v.BurnLong, wantLong)
	}

	// Recovery: 3 good ticks empty the short window; alert clears even
	// though the long window still carries the bad ticks.
	for i := 0; i < 3; i++ {
		tr.Observe([]float64{1})
	}
	v = tr.Views()[0]
	if v.Alerting {
		t.Fatalf("alert should clear once the short window is clean: %+v", v)
	}
	if v.BurnLong == 0 {
		t.Fatalf("long window should still remember bad ticks: %+v", v)
	}

	// Slide the long window clean: 12 more good ticks evict all bad.
	for i := 0; i < 12; i++ {
		tr.Observe([]float64{1})
	}
	v = tr.Views()[0]
	if v.BurnLong != 0 || v.Ticks != 24 {
		t.Fatalf("after full slide: %+v", v)
	}
}

func TestShortWindowWarmup(t *testing.T) {
	// A single terrible first tick must not alert: the short window is
	// not formed yet.
	tr := mustNew(t, Config{
		Targets:     []Target{{Name: "lat", Bound: 1, Objective: 0.5}},
		Window:      8,
		ShortWindow: 4,
	})
	tr.Observe([]float64{1e9})
	if tr.Views()[0].Alerting {
		t.Fatal("alerted before short window warmed up")
	}
}

func TestMetricsAndJournal(t *testing.T) {
	hub := telemetry.NewHub(64)
	// Objective 0.75 => budget 0.25; burn >= 2 means bad fraction >= 0.5.
	tr := mustNew(t, Config{
		Targets:      []Target{{Name: "rung", Bound: 2, Objective: 0.75}},
		Window:       4,
		ShortWindow:  2,
		JournalEvery: 1000, // heartbeat effectively off: only tick 1 + transitions
		Telemetry:    hub,
	})
	tr.Observe([]float64{0}) // heartbeat (tick 1), good
	tr.Observe([]float64{5}) // bad: short 1/2, long 1/2 -> alert enters
	tr.Observe([]float64{5}) // bad: still alerting
	tr.Observe([]float64{0}) // short 1/2 still burns 2; long 3/4 -> alerting
	tr.Observe([]float64{0}) // short window clean -> alert exits

	snap := hub.Registry.Snapshot()
	if got := snap.Counters["lira_slo_rung_alerts_total"]; got != 1 {
		t.Fatalf("alerts_total = %v, want 1", got)
	}
	if got := snap.Gauges["lira_slo_rung_alerting"]; got != 0 {
		t.Fatalf("alerting gauge = %v, want 0 after recovery", got)
	}
	if got := snap.Gauges["lira_slo_rung_good"]; got != 1 {
		t.Fatalf("good gauge = %v, want 1", got)
	}

	var sloRecs []telemetry.Record
	for _, rec := range hub.Journal.Tail(hub.Journal.Len()) {
		if rec.Kind == telemetry.KindSLO {
			sloRecs = append(sloRecs, rec)
		}
	}
	// tick 1 heartbeat + alert enter + alert exit = 3.
	if len(sloRecs) != 3 {
		t.Fatalf("KindSLO records = %d, want 3: %+v", len(sloRecs), sloRecs)
	}
	if sloRecs[1].SLO == nil || !sloRecs[1].SLO.Alerting {
		t.Fatalf("second SLO record should be the alert entry: %+v", sloRecs[1])
	}
	if sloRecs[2].SLO == nil || sloRecs[2].SLO.Alerting {
		t.Fatalf("third SLO record should be the alert exit: %+v", sloRecs[2])
	}
}

func TestObserveLengthMismatchIgnored(t *testing.T) {
	tr := mustNew(t, Config{Targets: []Target{{Name: "a", Bound: 1, Objective: 0.9}}})
	tr.Observe([]float64{1, 2})
	if tr.Views()[0].Ticks != 0 {
		t.Fatal("mismatched Observe should be ignored")
	}
}

package controlplane

// Registration is one entry of the canonical policy registry — the single
// source of truth for every policy ordering the codebase exposes. Both
// Policies() (the engine-enactable policies) and shedding.Kinds() (the
// legacy strategy enum's comparison order, derived through LegacyKind)
// are views of this one list, so the two can never drift apart.
type Registration struct {
	// Name is the registry key; it equals Policy.Name() of instances the
	// entry constructs.
	Name string
	// LegacyKind is the shedding.Kind string this entry backs in the
	// paper's original four-strategy comparison, or "" for policies that
	// postdate the legacy enum. Note the paper's "uniform-delta" strategy
	// maps to the single-delta policy (one space-wide threshold); the
	// policy named "uniform-delta" (per-region copies of that threshold)
	// has no legacy counterpart.
	LegacyKind string
	// New constructs a fresh policy instance. Policies may be stateful
	// across adaptations (hysteresis holds its previous partitioning), so
	// every consumer gets a private instance; for the stateless built-ins
	// the constructor returns a zero-size value at no cost.
	New func() Policy
}

// registry lists every policy in the paper's §4 comparison order:
// region-oblivious baselines first, the full region-aware system after
// them, post-paper extensions last.
var registry = []Registration{
	{Name: "random-drop", LegacyKind: "random-drop", New: func() Policy { return RandomDropPolicy{} }},
	{Name: "single-delta", LegacyKind: "uniform-delta", New: func() Policy { return SingleDeltaPolicy{} }},
	{Name: "uniform-delta", New: func() Policy { return UniformDeltaPolicy{} }},
	{Name: "uniform-grid", LegacyKind: "lira-grid", New: func() Policy { return UniformGridPolicy{} }},
	{Name: "lira", LegacyKind: "lira", New: func() Policy { return LiraPolicy{} }},
	{Name: "hysteresis", New: func() Policy { return NewHysteresisPolicy() }},
}

// Registered returns a copy of the canonical registry in comparison
// order. Measured comparisons iterate it directly — unlike Policies() it
// includes the admission-probability policies that cannot be enacted
// through an engine's control plane.
func Registered() []Registration {
	return append([]Registration(nil), registry...)
}

// RegisteredNames returns every registry name in comparison order.
func RegisteredNames() []string {
	names := make([]string, len(registry))
	for i, reg := range registry {
		names[i] = reg.Name
	}
	return names
}

// NewPolicy constructs a fresh instance of the named policy; ok is false
// for names outside the registry.
func NewPolicy(name string) (Policy, bool) {
	for _, reg := range registry {
		if reg.Name == name {
			return reg.New(), true
		}
	}
	return nil, false
}

package controlplane

import (
	"testing"
)

func TestHysteresisHoldsGeometry(t *testing.T) {
	g := warmGrid(5)
	env := testEnv()
	h := NewHysteresisPolicy()

	first, err := h.Partition(g, 0.5, env)
	if err != nil {
		t.Fatal(err)
	}
	// Same grid, same z: zero churn, zero z drift — the held geometry
	// must survive (the returned cover is a rebind, not a fresh drill).
	second, err := h.Partition(g, 0.5, env)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Regions) != len(second.Regions) {
		t.Fatalf("held partitioning changed region count: %d -> %d",
			len(first.Regions), len(second.Regions))
	}
	for i := range first.Regions {
		if first.Regions[i].Area != second.Regions[i].Area {
			t.Fatalf("region %d geometry changed with no churn and no z drift", i)
		}
	}

	// A z move past ZTolerance must adopt a fresh drill-down for the new
	// budget and re-anchor the deadband there.
	if _, err := h.Partition(g, 0.2, env); err != nil {
		t.Fatal(err)
	}
	if h.heldZ != 0.2 {
		t.Fatalf("heldZ = %v after adoption, want 0.2", h.heldZ)
	}

	// A churn overflow must adopt too: with a near-zero churn threshold,
	// any geometry difference against a freshly drilled cover passes
	// through, so the held geometry equals the fresh drill's.
	h2 := &HysteresisPolicy{ZTolerance: 1, ChurnFrac: 0.0001}
	if _, err := h2.Partition(g, 0.5, env); err != nil {
		t.Fatal(err)
	}
	g2 := warmGrid(99)
	got, err := h2.Partition(g2, 0.5, env)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := LiraPolicy{}.Partition(g2, 0.5, env)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Regions) != len(fresh.Regions) {
		t.Fatalf("churn overflow kept a stale cover: %d vs %d regions",
			len(got.Regions), len(fresh.Regions))
	}
	for i := range fresh.Regions {
		if got.Regions[i].Area != fresh.Regions[i].Area {
			t.Fatalf("region %d: churn overflow kept stale geometry", i)
		}
	}

	// Fresh instances never share state.
	if NewHysteresisPolicy().held != nil {
		t.Fatal("new instance holds state")
	}
}

func TestHysteresisRebindTracksGrid(t *testing.T) {
	env := testEnv()
	h := NewHysteresisPolicy()
	g := warmGrid(5)
	if _, err := h.Partition(g, 0.5, env); err != nil {
		t.Fatal(err)
	}
	held, err := h.Partition(g, 0.5, env)
	if err != nil {
		t.Fatal(err)
	}
	// Rebinding over the same grid must conserve total mass: the held
	// cover is disjoint and space-filling, so Σ N over regions equals the
	// grid total.
	var totalN float64
	for _, r := range held.Regions {
		totalN += r.N
	}
	gridN, _ := g.Totals()
	if diff := totalN - gridN; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("rebind lost node mass: regions Σ=%v grid=%v", totalN, gridN)
	}

	// Assign must run GREEDYINCREMENT over the held cover.
	res, err := h.Assign(held, 0.5, env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Deltas) != len(held.Regions) {
		t.Fatalf("%d deltas for %d regions", len(res.Deltas), len(held.Regions))
	}
}

package controlplane

import (
	"lira/internal/partition"
	"lira/internal/statgrid"
	"lira/internal/throttler"
)

// Policy is a pluggable shedding policy: how to partition the space and
// how to assign per-region throttlers under the budget z. Both stages are
// deterministic pure functions of their inputs, which is what keeps
// engine adaptations bit-reproducible under any policy.
type Policy interface {
	// Name identifies the policy in plans, benchmarks, and journals.
	Name() string
	// Partition covers the space with shedding regions for budget z.
	Partition(g *statgrid.Grid, z float64, env Env) (*partition.Partitioning, error)
	// Assign sets the per-region throttlers Δᵢ for budget z.
	Assign(p *partition.Partitioning, z float64, env Env) (*throttler.Result, error)
}

// Policies lists the engine-enactable policies in comparison order: the
// paper's baselines first, the full region-aware system and its
// extensions last. It is a view of the canonical registry that excludes
// AdmitProber policies — random drop sheds at the server, so an engine's
// control plane cannot enact it. Instances are freshly constructed per
// call: stateful policies (hysteresis) must never be shared between
// engines.
func Policies() []Policy {
	var out []Policy
	for _, reg := range registry {
		pol := reg.New()
		if _, serverSide := pol.(AdmitProber); serverSide {
			continue
		}
		out = append(out, pol)
	}
	return out
}

// AdmitProber marks policies that shed by server-side random admission
// instead of source-side throttling: the base-station layer broadcasts
// Δ⊢ everywhere and the server admits each arriving update with the
// probability the policy returns. Configuration paths special-case these
// policies — there is nothing for an engine's adaptation pipeline to
// enact.
type AdmitProber interface {
	// AdmitProbability returns the server-side admission probability at
	// throttle fraction z.
	AdmitProbability(z float64) float64
}

// RandomDropPolicy is the paper's Random Drop baseline expressed on the
// Policy axis: no source-side throttling at all — one space-wide region
// at the curve's minimum threshold Δ⊢, with the server randomly admitting
// a z fraction of the arrivals. It exists so every §4 strategy lives in
// the one canonical registry; engines cannot enact it (see AdmitProber).
type RandomDropPolicy struct{}

// Name implements Policy.
func (RandomDropPolicy) Name() string { return "random-drop" }

// Partition implements Policy: the whole space as one region.
func (RandomDropPolicy) Partition(g *statgrid.Grid, z float64, env Env) (*partition.Partitioning, error) {
	return partition.Single(g), nil
}

// Assign implements Policy: Δ⊢ everywhere. The budget is always met —
// random admission drops exactly the excess fraction by construction —
// so the analytic feasibility check (which would compare f(Δ⊢) = 1
// against z) is overridden.
func (RandomDropPolicy) Assign(p *partition.Partitioning, z float64, env Env) (*throttler.Result, error) {
	res := analyticResult(p.Stats(), []float64{env.Curve.MinDelta()}, z, env)
	res.BudgetMet = true
	return res, nil
}

// AdmitProbability implements AdmitProber: admit a z fraction.
func (RandomDropPolicy) AdmitProbability(z float64) float64 { return z }

// LiraPolicy is the paper's full region-aware pipeline: GRIDREDUCE
// (α,l)-partitioning followed by GREEDYINCREMENT throttler setting.
type LiraPolicy struct{}

// Name implements Policy.
func (LiraPolicy) Name() string { return "lira" }

// Partition implements Policy via GRIDREDUCE.
func (LiraPolicy) Partition(g *statgrid.Grid, z float64, env Env) (*partition.Partitioning, error) {
	return partition.GridReduce(g, partition.Config{
		L: env.L, Z: z, Curve: env.Curve, ProtectQueries: env.ProtectQueries,
	})
}

// Assign implements Policy via GREEDYINCREMENT.
func (LiraPolicy) Assign(p *partition.Partitioning, z float64, env Env) (*throttler.Result, error) {
	return throttler.SetThrottlers(p.Stats(), env.Curve, throttler.Options{
		Z:        z,
		Fairness: env.Fairness,
		UseSpeed: env.UseSpeed,
	})
}

// UniformGridPolicy is the Lira-Grid ablation (§4.2): a uniform
// l-partitioning instead of GRIDREDUCE, still with GREEDYINCREMENT
// setting region-dependent throttlers.
type UniformGridPolicy struct{}

// Name implements Policy.
func (UniformGridPolicy) Name() string { return "uniform-grid" }

// Partition implements Policy via the uniform l-partitioning.
func (UniformGridPolicy) Partition(g *statgrid.Grid, z float64, env Env) (*partition.Partitioning, error) {
	return partition.Uniform(g, env.L)
}

// Assign implements Policy via GREEDYINCREMENT.
func (UniformGridPolicy) Assign(p *partition.Partitioning, z float64, env Env) (*throttler.Result, error) {
	return LiraPolicy{}.Assign(p, z, env)
}

// UniformDeltaPolicy is the uniform-Δ baseline: the uniform
// l-partitioning of Lira-Grid, but with every region assigned the same
// threshold instead of a greedily optimized one. Because all thresholds
// are equal, the (speed-weighted) expenditure Σ wᵢ·f(Δ) factors to
// f(Δ)·Σwᵢ, so the shared threshold that exactly meets the budget is
// Δ = f⁻¹(z) — no greedy optimization is needed. The policy is
// region-aware in its broadcast structure (l regions, per-region
// accounting) yet region-oblivious in assignment, isolating how much of
// LIRA's advantage comes from differentiated thresholds alone.
type UniformDeltaPolicy struct{}

// Name implements Policy.
func (UniformDeltaPolicy) Name() string { return "uniform-delta" }

// Partition implements Policy via the uniform l-partitioning.
func (UniformDeltaPolicy) Partition(g *statgrid.Grid, z float64, env Env) (*partition.Partitioning, error) {
	return partition.Uniform(g, env.L)
}

// Assign implements Policy: Δᵢ = f⁻¹(z) for every region, with the
// accounting fields filled from the region statistics.
func (UniformDeltaPolicy) Assign(p *partition.Partitioning, z float64, env Env) (*throttler.Result, error) {
	stats := p.Stats()
	delta := env.Curve.Invert(z)
	deltas := make([]float64, len(stats))
	for i := range deltas {
		deltas[i] = delta
	}
	return analyticResult(stats, deltas, z, env), nil
}

// SingleDeltaPolicy is the region-oblivious single-Δ baseline (the
// paper's "uniform threshold" comparison strategy): one space-wide
// region whose threshold is read off the inverted reduction curve,
// Δ = f⁻¹(z). No greedy optimization runs at all — this is the cheapest
// possible policy and the floor every region-aware policy must beat.
type SingleDeltaPolicy struct{}

// Name implements Policy.
func (SingleDeltaPolicy) Name() string { return "single-delta" }

// Partition implements Policy: the whole space as one region.
func (SingleDeltaPolicy) Partition(g *statgrid.Grid, z float64, env Env) (*partition.Partitioning, error) {
	return partition.Single(g), nil
}

// Assign implements Policy: Δ = f⁻¹(z), with the result's accounting
// fields (expenditure, budget, objective) filled from the single region's
// statistics so plans are comparable across policies.
func (SingleDeltaPolicy) Assign(p *partition.Partitioning, z float64, env Env) (*throttler.Result, error) {
	return analyticResult(p.Stats(), []float64{env.Curve.Invert(z)}, z, env), nil
}

// analyticResult packages an analytically chosen assignment in the same
// Result shape GREEDYINCREMENT produces, so plans stay comparable across
// policies. Gains are left nil: no greedy step ran. BudgetMet checks the
// shared threshold against the curve (f(Δ) ≤ z up to the curve's knot
// resolution), matching the factored expenditure argument above.
func analyticResult(stats []throttler.RegionStat, deltas []float64, z float64, env Env) *throttler.Result {
	res := &throttler.Result{
		Deltas:      deltas,
		Expenditure: throttler.Expenditure(stats, env.Curve, deltas, env.UseSpeed),
		InAcc:       throttler.InAccuracy(stats, deltas),
		BudgetMet:   len(deltas) == 0 || env.Curve.Eval(deltas[0]) <= z+1e-9,
	}
	var totalN float64
	for _, st := range stats {
		totalN += st.N
	}
	res.Budget = z * totalN * env.Curve.Eval(env.Curve.MinDelta())
	return res
}

package controlplane

import (
	"math"
	"testing"

	"lira/internal/fmodel"
	"lira/internal/geo"
	"lira/internal/rng"
	"lira/internal/statgrid"
	"lira/internal/telemetry"
	"lira/internal/throttler"
)

func testSpace() geo.Rect { return geo.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000} }

func testCurve() *fmodel.Curve { return fmodel.Hyperbolic(5, 100, 95) }

func testEnv() Env {
	c := testCurve()
	return Env{L: 13, Curve: c, Fairness: throttler.NoFairness(c)}
}

// warmGrid builds a statistics grid with a few observation rounds of
// deterministic random density, so partitionings have structure to split.
func warmGrid(seed uint64) *statgrid.Grid {
	sp := testSpace()
	g := statgrid.New(sp, 16)
	g.SetQueries([]geo.Rect{sp, {MinX: 100, MinY: 100, MaxX: 400, MaxY: 400}})
	r := rng.New(seed)
	pos := make([]geo.Point, 200)
	speeds := make([]float64, 200)
	for round := 0; round < 10; round++ {
		for i := range pos {
			pos[i] = geo.Point{X: r.Range(sp.MinX, sp.MaxX), Y: r.Range(sp.MinY, sp.MaxY)}
			speeds[i] = r.Range(0, 30)
		}
		g.Observe(pos, speeds)
	}
	return g
}

// gridStats is a StatsSource stub over a fixed grid.
type gridStats struct{ g *statgrid.Grid }

func (s gridStats) StatsGrid() *statgrid.Grid { return s.g }

// fixedRates is a RateSource stub reporting a constant (λ, μ), with the
// bounded queue's zero-window convention: a non-positive window measures
// nothing and reports (0, 0).
type fixedRates struct{ lambda, mu float64 }

func (r *fixedRates) Rates(window float64) (lambda, mu float64) {
	if window <= 0 {
		return 0, 0
	}
	return r.lambda, r.mu
}

func testPlane(t *testing.T, rates RateSource) *Plane {
	t.Helper()
	p, err := New(Config{
		Env:      testEnv(),
		Stats:    gridStats{warmGrid(1)},
		Rates:    rates,
		QueueCap: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	env := testEnv()
	stats := gridStats{warmGrid(1)}
	rates := &fixedRates{}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"nil stats", Config{Env: env, Rates: rates, QueueCap: 64}},
		{"nil rates", Config{Env: env, Stats: stats, QueueCap: 64}},
		{"nil curve", Config{Env: Env{L: 13}, Stats: stats, Rates: rates, QueueCap: 64}},
		{"tiny queue", Config{Env: env, Stats: stats, Rates: rates, QueueCap: 1}},
	}
	for _, tc := range cases {
		if _, err := New(tc.cfg); err == nil {
			t.Errorf("%s: New accepted an invalid config", tc.name)
		}
	}
}

// TestAdaptAutoZeroWindow pins the zero-length-window edge case: the
// rate source measures nothing, ρ is 0, and THROTLOOP resets to z = 1 —
// even when previous overload had driven z down.
func TestAdaptAutoZeroWindow(t *testing.T) {
	rates := &fixedRates{lambda: 4, mu: 2} // ρ = 2: heavy overload
	p := testPlane(t, rates)
	a, err := p.AdaptAuto(1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Z >= 1 {
		t.Fatalf("overloaded window should shrink z below 1, got %v", a.Z)
	}
	a, err = p.AdaptAuto(0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Z != 1 {
		t.Fatalf("zero-length window must reset z to 1, got %v", a.Z)
	}
	if p.Throttle().Z() != 1 {
		t.Fatalf("controller z not reset: %v", p.Throttle().Z())
	}
}

// TestAdaptAutoIdleWindow pins the no-arrivals case: λ = 0 with a live
// μ means ρ = 0, which is underload — z returns to 1 and the adaptation
// still runs (regions are recomputed for the relaxed budget).
func TestAdaptAutoIdleWindow(t *testing.T) {
	rates := &fixedRates{lambda: 4, mu: 2}
	p := testPlane(t, rates)
	if _, err := p.AdaptAuto(1); err != nil {
		t.Fatal(err)
	}
	rates.lambda = 0
	a, err := p.AdaptAuto(1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Z != 1 {
		t.Fatalf("idle window must reset z to 1, got %v", a.Z)
	}
	if a.Partitioning == nil || len(a.Deltas) == 0 {
		t.Fatal("idle-window adaptation must still produce a configuration")
	}
}

// TestAdaptAutoBackToBack pins repeated closed-loop calls without any
// drain in between: under sustained overload each call divides z by
// u = ρ/ρ* exactly (no hidden state besides the controller's), and the
// returned Z always equals the controller's.
func TestAdaptAutoBackToBack(t *testing.T) {
	rates := &fixedRates{lambda: 3, mu: 2} // ρ = 1.5, constant
	p := testPlane(t, rates)
	u := 1.5 / p.Throttle().TargetUtilization()
	want := 1.0
	for round := 1; round <= 4; round++ {
		a, err := p.AdaptAuto(1)
		if err != nil {
			t.Fatal(err)
		}
		want /= u
		if math.Abs(a.Z-want) > 1e-12 {
			t.Fatalf("round %d: z = %v, want %v", round, a.Z, want)
		}
		if a.Z != p.Throttle().Z() {
			t.Fatalf("round %d: adaptation z %v != controller z %v",
				round, a.Z, p.Throttle().Z())
		}
		if !sorted(a.Deltas) {
			// Not a strict invariant of the optimizer, but Δᵢ must at
			// least be a plausible table: finite and within the curve.
			for _, d := range a.Deltas {
				if math.IsNaN(d) || math.IsInf(d, 0) {
					t.Fatalf("round %d: non-finite Δ %v", round, d)
				}
			}
		}
		if p.Throttle().Rounds() != round {
			t.Fatalf("controller counted %d rounds, want %d", p.Throttle().Rounds(), round)
		}
	}
}

func sorted(xs []float64) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] {
			return false
		}
	}
	return true
}

// TestSetPolicySurvivesThrottleState pins the policy-swap contract: z is
// a property of the load, so swapping policies keeps THROTLOOP state,
// and a nil swap restores the default LIRA policy.
func TestSetPolicySurvivesThrottleState(t *testing.T) {
	p := testPlane(t, &fixedRates{lambda: 3, mu: 2})
	if _, err := p.AdaptAuto(1); err != nil {
		t.Fatal(err)
	}
	z := p.Throttle().Z()
	if z >= 1 {
		t.Fatalf("precondition: overload should have shrunk z, got %v", z)
	}
	p.SetPolicy(SingleDeltaPolicy{})
	if p.Throttle().Z() != z {
		t.Fatalf("policy swap changed z: %v -> %v", z, p.Throttle().Z())
	}
	if p.Policy().Name() != "single-delta" {
		t.Fatalf("policy not swapped: %s", p.Policy().Name())
	}
	a, err := p.Adapt(z)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Deltas) != 1 {
		t.Fatalf("single-delta policy produced %d regions", len(a.Deltas))
	}
	p.SetPolicy(nil)
	if p.Policy().Name() != "lira" {
		t.Fatalf("nil swap must restore lira, got %s", p.Policy().Name())
	}
}

// TestTelemetryPassive pins the telemetry contract at the control-plane
// level: a Plane with a hub makes bit-identical decisions to one
// without, and the migrated metric names are registered.
func TestTelemetryPassive(t *testing.T) {
	hub := telemetry.NewHub(0)
	mk := func(h *telemetry.Hub) *Plane {
		p, err := New(Config{
			Env:       testEnv(),
			Stats:     gridStats{warmGrid(3)},
			Rates:     &fixedRates{lambda: 3, mu: 2},
			QueueCap:  64,
			Telemetry: h,
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	quiet, loud := mk(nil), mk(hub)
	for round := 0; round < 3; round++ {
		qa, err := quiet.AdaptAuto(1)
		if err != nil {
			t.Fatal(err)
		}
		la, err := loud.AdaptAuto(1)
		if err != nil {
			t.Fatal(err)
		}
		if qa.Z != la.Z {
			t.Fatalf("round %d: telemetry changed z: %v vs %v", round, qa.Z, la.Z)
		}
		if len(qa.Deltas) != len(la.Deltas) {
			t.Fatalf("round %d: telemetry changed region count", round)
		}
		for i := range qa.Deltas {
			if qa.Deltas[i] != la.Deltas[i] {
				t.Fatalf("round %d: telemetry changed Δ[%d]", round, i)
			}
		}
	}
	snap := hub.Registry.Snapshot()
	for _, name := range []string{"lira_gridreduce_seconds", "lira_set_throttlers_seconds"} {
		if _, ok := snap.Histograms[name]; !ok {
			t.Errorf("histogram %s not registered by the control plane", name)
		}
	}
	if _, ok := snap.Gauges["lira_throttle_z"]; !ok {
		t.Error("gauge lira_throttle_z not registered by the control plane")
	}
	if _, ok := snap.Counters["lira_adaptations_total"]; !ok {
		t.Error("counter lira_adaptations_total not registered by the control plane")
	}
}

func TestPoliciesCatalog(t *testing.T) {
	want := []string{"single-delta", "uniform-delta", "uniform-grid", "lira", "hysteresis"}
	pols := Policies()
	if len(pols) != len(want) {
		t.Fatalf("got %d policies, want %d", len(pols), len(want))
	}
	for i, pol := range pols {
		if pol.Name() != want[i] {
			t.Errorf("policy %d: got %s, want %s", i, pol.Name(), want[i])
		}
		if _, serverSide := pol.(AdmitProber); serverSide {
			t.Errorf("policy %s: AdmitProber policies are not engine-enactable", pol.Name())
		}
	}
}

func TestRegistryViews(t *testing.T) {
	names := RegisteredNames()
	want := []string{"random-drop", "single-delta", "uniform-delta", "uniform-grid", "lira", "hysteresis"}
	if len(names) != len(want) {
		t.Fatalf("registry = %v, want %v", names, want)
	}
	for i, n := range names {
		if n != want[i] {
			t.Fatalf("registry = %v, want %v", names, want)
		}
	}
	for _, reg := range Registered() {
		pol, ok := NewPolicy(reg.Name)
		if !ok {
			t.Fatalf("NewPolicy(%q) not found", reg.Name)
		}
		if pol.Name() != reg.Name {
			t.Errorf("NewPolicy(%q).Name() = %q", reg.Name, pol.Name())
		}
	}
	if _, ok := NewPolicy("no-such-policy"); ok {
		t.Error("NewPolicy accepted an unknown name")
	}
	// Stateful policies must come out as private instances.
	a, _ := NewPolicy("hysteresis")
	b, _ := NewPolicy("hysteresis")
	if a.(*HysteresisPolicy) == b.(*HysteresisPolicy) {
		t.Error("NewPolicy shared a stateful instance")
	}
}

// TestUniformDeltaAnalytic pins the analytic baseline: every region gets
// the identical threshold Δ = f⁻¹(z), that threshold spends the budget
// exactly (f(Δ) = z up to the curve's knot resolution), and the plan
// reports the budget as met.
func TestUniformDeltaAnalytic(t *testing.T) {
	g := warmGrid(5)
	env := testEnv()
	for _, z := range []float64{0.8, 0.5, 0.25} {
		plan, err := Evaluate(UniformDeltaPolicy{}, g, z, env)
		if err != nil {
			t.Fatal(err)
		}
		if len(plan.Result.Deltas) != len(plan.Partitioning.Regions) {
			t.Fatalf("z=%.2f: %d deltas for %d regions",
				z, len(plan.Result.Deltas), len(plan.Partitioning.Regions))
		}
		d0 := plan.Result.Deltas[0]
		for i, d := range plan.Result.Deltas {
			if d != d0 {
				t.Fatalf("z=%.2f: Δ[%d]=%v differs from Δ[0]=%v", z, i, d, d0)
			}
		}
		if got := env.Curve.Eval(d0); math.Abs(got-z) > 1e-6 {
			t.Fatalf("z=%.2f: f(Δ) = %v, want the budget exactly", z, got)
		}
		if !plan.Result.BudgetMet {
			t.Fatalf("z=%.2f: analytic assignment must meet its budget", z)
		}
	}
}

// TestSingleDeltaOneRegion pins the region-oblivious floor: one
// space-wide region, one threshold, read straight off the inverted curve.
func TestSingleDeltaOneRegion(t *testing.T) {
	g := warmGrid(5)
	env := testEnv()
	plan, err := Evaluate(SingleDeltaPolicy{}, g, 0.5, env)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(plan.Partitioning.Regions); n != 1 {
		t.Fatalf("single-delta produced %d regions", n)
	}
	if n := len(plan.Result.Deltas); n != 1 {
		t.Fatalf("single-delta produced %d deltas", n)
	}
	if want := env.Curve.Invert(0.5); plan.Result.Deltas[0] != want {
		t.Fatalf("Δ = %v, want f⁻¹(z) = %v", plan.Result.Deltas[0], want)
	}
}

// TestEvaluateDefaultsToLira pins the nil-policy convention shared with
// Plane: nil selects the paper's full pipeline.
func TestEvaluateDefaultsToLira(t *testing.T) {
	plan, err := Evaluate(nil, warmGrid(5), 0.5, testEnv())
	if err != nil {
		t.Fatal(err)
	}
	if plan.Policy != "lira" {
		t.Fatalf("nil policy evaluated as %s", plan.Policy)
	}
	if len(plan.Partitioning.Regions) == 0 {
		t.Fatal("empty partitioning")
	}
}

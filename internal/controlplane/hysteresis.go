package controlplane

import (
	"math"

	"lira/internal/geo"
	"lira/internal/partition"
	"lira/internal/statgrid"
	"lira/internal/throttler"
)

// Hysteresis defaults: hold the geometry while the throttle fraction
// stays within ZTolerance of the one it was partitioned for and less than
// ChurnFrac of the freshly drilled regions differ from the held ones.
const (
	defaultZTolerance = 0.1
	defaultChurnFrac  = 0.5
)

// HysteresisPolicy damps region churn between adaptations. Each cycle it
// drills a fresh GRIDREDUCE partitioning, but only adopts it when the
// throttle fraction moved materially or the geometry diverged past a
// churn threshold; otherwise it keeps the held region geometry, rebinding
// its statistics to the current grid so GREEDYINCREMENT still assigns
// thresholds against fresh densities. Damping the geometry keeps
// base-station broadcasts and node-side index recompiles stable across
// consecutive re-adaptations — the cost axis raw GRIDREDUCE ignores.
//
// The policy is stateful across adaptations by design (that is its whole
// point), which is why the registry constructs a private instance per
// consumer. Decisions remain deterministic: the held state is a pure
// function of the adaptation sequence the instance has seen.
type HysteresisPolicy struct {
	// ZTolerance is how far z may drift from the held partitioning's z
	// before a fresh geometry is adopted; ChurnFrac is the fraction of
	// fresh regions that must differ from the held ones to force
	// adoption. Zero values select the defaults.
	ZTolerance float64
	ChurnFrac  float64

	held  *partition.Partitioning
	heldZ float64
}

// NewHysteresisPolicy returns a hysteresis policy with default damping.
func NewHysteresisPolicy() *HysteresisPolicy {
	return &HysteresisPolicy{ZTolerance: defaultZTolerance, ChurnFrac: defaultChurnFrac}
}

// Name implements Policy.
func (h *HysteresisPolicy) Name() string { return "hysteresis" }

// Partition implements Policy: GRIDREDUCE with geometry damping.
func (h *HysteresisPolicy) Partition(g *statgrid.Grid, z float64, env Env) (*partition.Partitioning, error) {
	fresh, err := LiraPolicy{}.Partition(g, z, env)
	if err != nil {
		return nil, err
	}
	zTol, churnMax := h.ZTolerance, h.ChurnFrac
	if zTol <= 0 {
		zTol = defaultZTolerance
	}
	if churnMax <= 0 {
		churnMax = defaultChurnFrac
	}
	if h.held != nil && math.Abs(z-h.heldZ) <= zTol && churnFraction(h.held, fresh) <= churnMax {
		kept := rebindStats(h.held, g)
		h.held = kept
		return kept, nil
	}
	h.held, h.heldZ = fresh, z
	return fresh, nil
}

// Assign implements Policy via GREEDYINCREMENT, like LiraPolicy.
func (h *HysteresisPolicy) Assign(p *partition.Partitioning, z float64, env Env) (*throttler.Result, error) {
	return LiraPolicy{}.Assign(p, z, env)
}

// churnFraction is the fraction of fresh regions whose geometry is absent
// from the held partitioning. GRIDREDUCE rects are quad-tree aligned, so
// exact rect equality is the right identity.
func churnFraction(held, fresh *partition.Partitioning) float64 {
	if len(fresh.Regions) == 0 {
		return 0
	}
	have := make(map[geo.Rect]bool, len(held.Regions))
	for _, r := range held.Regions {
		have[r.Area] = true
	}
	changed := 0
	for _, r := range fresh.Regions {
		if !have[r.Area] {
			changed++
		}
	}
	return float64(changed) / float64(len(fresh.Regions))
}

// rebindStats keeps the held region geometry but recomputes every
// region's (N, M, S) from the current grid, aggregating cells by center
// containment — the same convention partition.Uniform uses.
func rebindStats(held *partition.Partitioning, g *statgrid.Grid) *partition.Partitioning {
	out := &partition.Partitioning{Space: held.Space}
	out.Regions = make([]partition.Region, len(held.Regions))
	for i, r := range held.Regions {
		out.Regions[i] = partition.Region{Area: r.Area}
	}
	type agg struct{ n, m, sw, sn, cells float64 }
	aggs := make([]agg, len(out.Regions))
	alpha := g.Alpha()
	for j := 0; j < alpha; j++ {
		for i := 0; i < alpha; i++ {
			ri := out.Locate(g.CellRect(i, j).Center())
			if ri < 0 {
				continue
			}
			n, m, s := g.Cell(i, j)
			a := &aggs[ri]
			a.n += n
			a.m += m
			a.sw += n * s
			a.sn += s
			a.cells++
		}
	}
	for i := range out.Regions {
		a := aggs[i]
		s := 0.0
		if a.n > 0 {
			s = a.sw / a.n
		} else if a.cells > 0 {
			s = a.sn / a.cells
		}
		out.Regions[i].N, out.Regions[i].M, out.Regions[i].S = a.n, a.m, s
	}
	return out
}

// Package controlplane is the single home of the LIRA adaptation
// pipeline: statistics snapshot → space partitioning → throttler setting
// → THROTLOOP feedback. Every engine (the unsharded cqserver.Server and
// the spatially sharded shard.Server) delegates its Adapt/AdaptAuto body
// to a Plane, so the GRIDREDUCE → GREEDYINCREMENT wiring — and its
// telemetry — exists exactly once in the codebase.
//
// The partitioning/assignment stages are pluggable through Policy. The
// paper's region-aware LIRA policy is the default; the §4-style baselines
// (uniform grid, uniform-Δ, region-oblivious single-Δ) plug into the same
// pipeline, which is what lets experiments compare shedding policies at
// equal throttle fraction without duplicating any wiring.
//
// A Plane is parameterized by two narrow sources instead of a concrete
// server: a StatsSource supplying the statistics grid to partition and a
// RateSource supplying the (λ, μ) window measurements THROTLOOP feeds on.
// The pipeline itself is deterministic — identical grid contents and z
// produce bit-identical Δᵢ tables — so swapping engines under a Plane
// never changes its decisions. Telemetry is passive and optional, exactly
// as in the engines (see the telemetry package's contract).
package controlplane

import (
	"fmt"
	"time"

	"lira/internal/fmodel"
	"lira/internal/partition"
	"lira/internal/queue"
	"lira/internal/spans"
	"lira/internal/statgrid"
	"lira/internal/telemetry"
	"lira/internal/throtloop"
	"lira/internal/throttler"
)

// Env carries the pipeline parameters shared by every policy: the region
// budget, the update reduction function, and the GREEDYINCREMENT knobs.
type Env struct {
	// L is the number of shedding regions.
	L int
	// Curve is the update reduction function f(Δ).
	Curve *fmodel.Curve
	// Fairness is the fairness threshold Δ⇔.
	Fairness float64
	// UseSpeed enables the §3.1.2 speed factor.
	UseSpeed bool
	// ProtectQueries enables the query-protective drill-down extension
	// (see partition.Config.ProtectQueries); 0 is the paper's algorithm.
	ProtectQueries float64
}

// StatsSource supplies the statistics grid an adaptation partitions. The
// unsharded server returns its private grid; the sharded server returns
// the merge of its per-shard grids.
type StatsSource interface {
	StatsGrid() *statgrid.Grid
}

// RateSource supplies the (λ, μ) window measurement THROTLOOP feeds on,
// resetting the window. The unsharded server's bounded queue and the
// sharded server's summed ring counters both satisfy it.
type RateSource interface {
	Rates(window float64) (lambda, mu float64)
}

// Adaptation is the output of one adaptation cycle, ready for the
// base-station layer.
type Adaptation struct {
	Z            float64
	Partitioning *partition.Partitioning
	Deltas       []float64
	// BudgetMet is false when z is below the system's minimum achievable
	// expenditure and every throttler saturated at Δ⊣.
	BudgetMet bool
	// Elapsed is the wall-clock cost of the cycle (partitioning +
	// throttler setting; THROTLOOP is O(1) and included).
	Elapsed time.Duration
}

// Plan is the output of one stateless policy evaluation: the partitioning
// and the full GREEDYINCREMENT result (or its policy-specific
// equivalent), without touching any THROTLOOP state.
type Plan struct {
	// Policy is the evaluating policy's name.
	Policy string
	// Z is the throttle fraction the plan was computed for.
	Z            float64
	Partitioning *partition.Partitioning
	Result       *throttler.Result
}

// Evaluate runs one policy statelessly over a grid: partition, then
// assign. Figure sweeps and policy comparisons use it; engines go through
// a Plane, which adds THROTLOOP and telemetry around the same two stages.
func Evaluate(pol Policy, g *statgrid.Grid, z float64, env Env) (*Plan, error) {
	if pol == nil {
		pol = LiraPolicy{}
	}
	p, err := pol.Partition(g, z, env)
	if err != nil {
		return nil, err
	}
	res, err := pol.Assign(p, z, env)
	if err != nil {
		return nil, err
	}
	return &Plan{Policy: pol.Name(), Z: z, Partitioning: p, Result: res}, nil
}

// Config parameterizes a Plane.
type Config struct {
	// Env carries the pipeline parameters.
	Env Env
	// Policy selects the partition/assign stages; nil selects LiraPolicy.
	Policy Policy
	// Stats supplies the statistics grid each adaptation partitions.
	Stats StatsSource
	// Rates supplies the (λ, μ) measurements for AdaptAuto.
	Rates RateSource
	// QueueCap is the input-queue bound B THROTLOOP targets.
	QueueCap int
	// Telemetry, when non-nil, receives the adaptation stage histograms,
	// the adaptations counter, the throttle-fraction gauge, and a decision
	// record for every THROTLOOP / repartition / assignment action.
	// Telemetry is passive: Plane decisions are identical without it.
	Telemetry *telemetry.Hub
}

// Plane is one engine's control plane: the THROTLOOP controller plus the
// policy-driven adaptation pipeline. Methods are single-caller, like the
// engine drive loops that own them.
type Plane struct {
	cfg    Config
	pol    Policy
	loop   *throtloop.Controller
	zClamp func(float64) float64
	tel    *planeTelemetry
}

// planeTelemetry holds the control plane's pre-resolved metric pointers
// (one registry lookup at construction, one atomic per event afterwards).
// Nil when no Hub is configured.
type planeTelemetry struct {
	hub *telemetry.Hub

	gridReduceHist    *telemetry.Histogram // lira_gridreduce_seconds
	setThrottlersHist *telemetry.Histogram // lira_set_throttlers_seconds
	zGauge            *telemetry.Gauge     // lira_throttle_z
	adapts            *telemetry.Counter   // lira_adaptations_total
}

func newPlaneTelemetry(hub *telemetry.Hub) *planeTelemetry {
	if hub == nil {
		return nil
	}
	r := hub.Registry
	return &planeTelemetry{
		hub:               hub,
		gridReduceHist:    r.Histogram("lira_gridreduce_seconds", nil),
		setThrottlersHist: r.Histogram("lira_set_throttlers_seconds", nil),
		zGauge:            r.Gauge("lira_throttle_z"),
		adapts:            r.Counter("lira_adaptations_total"),
	}
}

// New validates cfg and returns a control plane.
func New(cfg Config) (*Plane, error) {
	if cfg.Stats == nil {
		return nil, fmt.Errorf("controlplane: nil stats source")
	}
	if cfg.Rates == nil {
		return nil, fmt.Errorf("controlplane: nil rate source")
	}
	if cfg.Env.Curve == nil {
		return nil, fmt.Errorf("controlplane: nil update reduction curve")
	}
	loop, err := throtloop.New(cfg.QueueCap)
	if err != nil {
		return nil, err
	}
	p := &Plane{cfg: cfg, pol: cfg.Policy, loop: loop, tel: newPlaneTelemetry(cfg.Telemetry)}
	if p.pol == nil {
		p.pol = LiraPolicy{}
	}
	if p.tel != nil {
		hub := p.tel.hub
		zGauge := p.tel.zGauge
		zGauge.Set(1)
		b := cfg.QueueCap
		loop.SetRecorder(func(rho, z float64, _ int) {
			zGauge.Set(z)
			hub.Record(telemetry.Record{
				Kind:      telemetry.KindThrotloop,
				Throtloop: &telemetry.ThrotloopEvent{Rho: rho, Z: z, B: b},
			})
		})
	}
	return p, nil
}

// Policy returns the active policy.
func (p *Plane) Policy() Policy { return p.pol }

// SetPolicy swaps the partition/assign policy; nil resets to LiraPolicy.
// The THROTLOOP state is kept — z is a property of the load, not of the
// policy spending it.
func (p *Plane) SetPolicy(pol Policy) {
	if pol == nil {
		pol = LiraPolicy{}
	}
	p.pol = pol
}

// Throttle exposes the THROTLOOP controller.
func (p *Plane) Throttle() *throtloop.Controller { return p.loop }

// SetZClamp installs a tightening applied to every throttle fraction
// entering the pipeline — Adapt's explicit z and AdaptAuto's THROTLOOP
// output alike. The admission controller uses it to hand the plane a
// health-capped effective z (warning/shed cap it, critical forces the
// floor); nil removes the clamp. The clamped z is what the partitioning,
// the Δᵢ assignment, and the journal records see: it is the fraction
// actually spent. fn must be safe to call from the plane's caller.
func (p *Plane) SetZClamp(fn func(float64) float64) { p.zClamp = fn }

// spans returns the hub's span tracer (nil without a hub or tracer; the
// returned value is nil-safe either way).
func (p *Plane) spans() *spans.Tracer {
	if p.tel == nil {
		return nil
	}
	return p.tel.hub.Spans()
}

// Adapt runs one adaptation cycle with an explicit throttle fraction z —
// the manually-set budget mode of §2.1. Use AdaptAuto for closed-loop
// control.
func (p *Plane) Adapt(z float64) (*Adaptation, error) {
	root := p.spans().Start("adapt", "controlplane")
	ad, err := p.adapt(z, root)
	if err == nil {
		root = root.Num("z", ad.Z).Num("regions", float64(len(ad.Partitioning.Regions)))
	}
	root.End()
	return ad, err
}

// adapt is the cycle body shared by Adapt and AdaptAuto; sub-spans for
// the GRIDREDUCE and GREEDYINCREMENT stages hang off the caller's root
// span (inert when tracing is off or the root was unsampled).
func (p *Plane) adapt(z float64, root spans.Ctx) (*Adaptation, error) {
	if p.zClamp != nil {
		z = p.zClamp(z)
	}
	start := time.Now()
	sp := root.Child("gridreduce", "controlplane")
	part, err := p.pol.Partition(p.cfg.Stats.StatsGrid(), z, p.cfg.Env)
	if err != nil {
		return nil, err
	}
	sp.Num("z", z).Num("regions", float64(len(part.Regions))).End()
	var mid time.Time
	if p.tel != nil {
		mid = time.Now()
	}
	sp = root.Child("greedyincrement", "controlplane")
	res, err := p.pol.Assign(part, z, p.cfg.Env)
	if err != nil {
		return nil, err
	}
	sp.Num("fairness_clamps", float64(res.FairnessClamps)).End()
	if p.tel != nil {
		end := time.Now()
		p.tel.gridReduceHist.Observe(mid.Sub(start).Seconds())
		p.tel.setThrottlersHist.Observe(end.Sub(mid).Seconds())
		p.tel.adapts.Inc()
		p.tel.hub.Record(telemetry.Record{
			Kind: telemetry.KindRepartition,
			Repartition: &telemetry.RepartitionEvent{
				Z:              z,
				Regions:        len(part.Regions),
				SplitsTaken:    part.Drill.SplitsTaken,
				SplitsRejected: part.Drill.SplitsRejected,
				ProtectSplits:  part.Drill.ProtectSplits,
			},
		})
		p.tel.hub.Record(telemetry.Record{
			Kind: telemetry.KindAssign,
			Assign: &telemetry.AssignEvent{
				Z:              z,
				Regions:        len(part.Regions),
				Deltas:         append([]float64(nil), res.Deltas...),
				Gains:          append([]float64(nil), res.Gains...),
				FairnessClamps: res.FairnessClamps,
				BudgetMet:      res.BudgetMet,
			},
		})
	}
	return &Adaptation{
		Z:            z,
		Partitioning: part,
		Deltas:       res.Deltas,
		BudgetMet:    res.BudgetMet,
		Elapsed:      time.Since(start),
	}, nil
}

// AdaptAuto measures the rate source over the given window, steps
// THROTLOOP, and runs the adaptation cycle at the resulting throttle
// fraction. A non-positive or idle window measures ρ = 0, which resets
// the controller to z = 1 (underload: stop shedding).
func (p *Plane) AdaptAuto(window float64) (*Adaptation, error) {
	root := p.spans().Start("adapt", "controlplane").Str("mode", "auto")
	sp := root.Child("throtloop", "controlplane")
	lambda, mu := p.cfg.Rates.Rates(window)
	rho := queue.Utilization(lambda, mu)
	z := p.loop.Observe(rho)
	sp.Num("rho", rho).Num("z", z).End()
	ad, err := p.adapt(z, root)
	if err == nil {
		root = root.Num("z", ad.Z).Num("regions", float64(len(ad.Partitioning.Regions)))
	}
	root.End()
	return ad, err
}

// Package queue implements the server's bounded position-update input
// queue. It is the component whose overflow behavior motivates LIRA:
// when updates arrive faster than they are served, excess updates are
// dropped from the tail at random admission — the "Random Drop" baseline —
// and the measured utilization ρ = λ/μ drives THROTLOOP.
package queue

// Bounded is a bounded FIFO queue of update identifiers with drop
// accounting and arrival/service rate measurement. It models the paper's
// M/M/1-style input queue with maximum size B.
//
// Bounded is not safe for concurrent use; the simulator is single-threaded
// per run and the server owns its queue.
type Bounded[T any] struct {
	buf        []T
	head, tail int
	size       int

	arrived int64 // total offered
	dropped int64 // total rejected because the queue was full
	served  int64 // total dequeued

	// Windowed counters for rate estimation, reset by Rates.
	winArrived int64
	winServed  int64
	winBusy    float64 // fraction of window the server spent busy
}

// NewBounded returns a queue with capacity b (the paper's B). It panics if
// b <= 0.
func NewBounded[T any](b int) *Bounded[T] {
	if b <= 0 {
		panic("queue: non-positive capacity")
	}
	return &Bounded[T]{buf: make([]T, b)}
}

// Cap returns the maximum queue size B.
func (q *Bounded[T]) Cap() int { return len(q.buf) }

// Len returns the current queue length.
func (q *Bounded[T]) Len() int { return q.size }

// Occupancy returns Len/Cap in [0, 1] — the queue-pressure signal the
// admission controller's degradation ladder samples each control tick.
func (q *Bounded[T]) Occupancy() float64 {
	if len(q.buf) == 0 {
		return 0
	}
	return float64(q.size) / float64(len(q.buf))
}

// Offer attempts to enqueue item. It returns false — and counts a drop —
// when the queue is full.
func (q *Bounded[T]) Offer(item T) bool {
	q.arrived++
	q.winArrived++
	if q.size == len(q.buf) {
		q.dropped++
		return false
	}
	q.buf[q.tail] = item
	if q.tail++; q.tail == len(q.buf) {
		q.tail = 0
	}
	q.size++
	return true
}

// OfferShedOldest enqueues item unconditionally: when the queue is full
// the oldest entry is shed — counted as a drop, not as served work — to
// make room for the freshest. This is the network layer's overflow
// policy: under saturation a stale position report is strictly less
// useful than the report that supersedes it, so the head of the queue is
// the right victim. The returned flag reports whether an entry was shed.
func (q *Bounded[T]) OfferShedOldest(item T) (shed bool) {
	q.arrived++
	q.winArrived++
	if q.size == len(q.buf) {
		if q.head++; q.head == len(q.buf) {
			q.head = 0
		}
		q.size--
		q.dropped++
		shed = true
	}
	q.buf[q.tail] = item
	if q.tail++; q.tail == len(q.buf) {
		q.tail = 0
	}
	q.size++
	return shed
}

// OfferShedOldestBulk enqueues items in arrival order under the
// shed-oldest policy and returns how many entries were shed. It is
// behaviorally identical to calling OfferShedOldest once per item — each
// item counts one arrival, the ring ends holding the freshest Cap()
// entries, and every displaced entry counts one drop — but the loop is
// replaced by at most two copies and O(1) accounting, which is what makes
// the vectored ingest path cheaper than the per-update one.
func (q *Bounded[T]) OfferShedOldestBulk(items []T) (shed int) {
	a, b, shed := q.ReserveShedOldestBulk(len(items))
	items = items[len(items)-len(a)-len(b):]
	copy(a, items)
	copy(b, items[len(a):])
	return shed
}

// ReserveShedOldestBulk makes room for n arrivals under the shed-oldest
// policy and returns up to two writable views — in arrival order — over
// the min(n, Cap()) slots the survivors occupy. The caller must
// immediately fill them with the LAST min(n, Cap()) of its n items; when
// n exceeds capacity the leading overflow counts as shed here, exactly as
// if the items had been offered one at a time. This is the scatter
// variant of OfferShedOldestBulk: a columnar producer writes each record
// directly into its ring slot instead of staging a contiguous batch.
func (q *Bounded[T]) ReserveShedOldestBulk(n int) (a, b []T, shed int) {
	if n == 0 {
		return nil, nil, 0
	}
	q.arrived += int64(n)
	q.winArrived += int64(n)
	capacity := len(q.buf)
	if n >= capacity {
		shed = q.size + n - capacity
		q.head, q.tail, q.size = 0, 0, capacity
		q.dropped += int64(shed)
		return q.buf, nil, shed
	}
	if over := q.size + n - capacity; over > 0 {
		if q.head += over; q.head >= capacity {
			q.head -= capacity
		}
		q.size -= over
		q.dropped += int64(over)
		shed = over
	}
	first := capacity - q.tail
	if first >= n {
		a = q.buf[q.tail : q.tail+n]
		if q.tail += n; q.tail == capacity {
			q.tail = 0
		}
	} else {
		a = q.buf[q.tail:]
		b = q.buf[:n-first]
		q.tail = n - first
	}
	q.size += n
	return a, b, shed
}

// Poll dequeues the oldest item. The second result is false when the queue
// is empty.
func (q *Bounded[T]) Poll() (T, bool) {
	if q.size == 0 {
		var zero T
		return zero, false
	}
	item := q.buf[q.head]
	if q.head++; q.head == len(q.buf) {
		q.head = 0
	}
	q.size--
	q.served++
	q.winServed++
	return item, true
}

// ServeSegments dequeues up to limit items (negative: all) and returns
// them as up to two contiguous views into the ring's backing array,
// oldest first. This is the vectored Poll used by the drain hot path:
// counters advance once per call instead of once per item. The views
// alias the ring's storage and are valid only until the next Offer —
// callers must consume them before enqueuing again.
func (q *Bounded[T]) ServeSegments(limit int) (a, b []T) {
	n := q.size
	if limit >= 0 && limit < n {
		n = limit
	}
	if n == 0 {
		return nil, nil
	}
	first := len(q.buf) - q.head
	if first > n {
		first = n
	}
	a = q.buf[q.head : q.head+first]
	if rest := n - first; rest > 0 {
		b = q.buf[:rest]
	}
	if q.head += n; q.head >= len(q.buf) {
		q.head -= len(q.buf)
	}
	q.size -= n
	q.served += int64(n)
	q.winServed += int64(n)
	return a, b
}

// Arrived returns the total number of updates offered to the queue.
func (q *Bounded[T]) Arrived() int64 { return q.arrived }

// Dropped returns the total number of updates rejected because the queue
// was full.
func (q *Bounded[T]) Dropped() int64 { return q.dropped }

// Served returns the total number of updates dequeued.
func (q *Bounded[T]) Served() int64 { return q.served }

// ObserveBusy accumulates the fraction of the current window during which
// the server was busy processing updates; Utilization divides through by
// the window length.
func (q *Bounded[T]) ObserveBusy(busy float64) { q.winBusy += busy }

// Rates returns the arrival rate λ and service rate μ measured over the
// window of the given duration (in seconds) and resets the window. μ is
// estimated as served work divided by busy time; when the server was never
// busy, μ is reported as +Inf via a zero-λ convention: the caller treats a
// window with no arrivals as underload.
func (q *Bounded[T]) Rates(window float64) (lambda, mu float64) {
	if window <= 0 {
		return 0, 0
	}
	lambda = float64(q.winArrived) / window
	if q.winBusy > 0 {
		mu = float64(q.winServed) / q.winBusy
	}
	q.winArrived, q.winServed, q.winBusy = 0, 0, 0
	return lambda, mu
}

// Utilization returns ρ = λ/μ for the supplied rates, the quantity
// THROTLOOP compares against 1 − 1/B. A zero μ (idle window) yields ρ = 0.
func Utilization(lambda, mu float64) float64 {
	if mu <= 0 {
		return 0
	}
	return lambda / mu
}

// Package queue implements the server's bounded position-update input
// queue. It is the component whose overflow behavior motivates LIRA:
// when updates arrive faster than they are served, excess updates are
// dropped from the tail at random admission — the "Random Drop" baseline —
// and the measured utilization ρ = λ/μ drives THROTLOOP.
package queue

// Bounded is a bounded FIFO queue of update identifiers with drop
// accounting and arrival/service rate measurement. It models the paper's
// M/M/1-style input queue with maximum size B.
//
// Bounded is not safe for concurrent use; the simulator is single-threaded
// per run and the server owns its queue.
type Bounded[T any] struct {
	buf        []T
	head, tail int
	size       int

	arrived int64 // total offered
	dropped int64 // total rejected because the queue was full
	served  int64 // total dequeued

	// Windowed counters for rate estimation, reset by Rates.
	winArrived int64
	winServed  int64
	winBusy    float64 // fraction of window the server spent busy
}

// NewBounded returns a queue with capacity b (the paper's B). It panics if
// b <= 0.
func NewBounded[T any](b int) *Bounded[T] {
	if b <= 0 {
		panic("queue: non-positive capacity")
	}
	return &Bounded[T]{buf: make([]T, b)}
}

// Cap returns the maximum queue size B.
func (q *Bounded[T]) Cap() int { return len(q.buf) }

// Len returns the current queue length.
func (q *Bounded[T]) Len() int { return q.size }

// Offer attempts to enqueue item. It returns false — and counts a drop —
// when the queue is full.
func (q *Bounded[T]) Offer(item T) bool {
	q.arrived++
	q.winArrived++
	if q.size == len(q.buf) {
		q.dropped++
		return false
	}
	q.buf[q.tail] = item
	q.tail = (q.tail + 1) % len(q.buf)
	q.size++
	return true
}

// OfferShedOldest enqueues item unconditionally: when the queue is full
// the oldest entry is shed — counted as a drop, not as served work — to
// make room for the freshest. This is the network layer's overflow
// policy: under saturation a stale position report is strictly less
// useful than the report that supersedes it, so the head of the queue is
// the right victim. The returned flag reports whether an entry was shed.
func (q *Bounded[T]) OfferShedOldest(item T) (shed bool) {
	q.arrived++
	q.winArrived++
	if q.size == len(q.buf) {
		q.head = (q.head + 1) % len(q.buf)
		q.size--
		q.dropped++
		shed = true
	}
	q.buf[q.tail] = item
	q.tail = (q.tail + 1) % len(q.buf)
	q.size++
	return shed
}

// Poll dequeues the oldest item. The second result is false when the queue
// is empty.
func (q *Bounded[T]) Poll() (T, bool) {
	if q.size == 0 {
		var zero T
		return zero, false
	}
	item := q.buf[q.head]
	q.head = (q.head + 1) % len(q.buf)
	q.size--
	q.served++
	q.winServed++
	return item, true
}

// Arrived returns the total number of updates offered to the queue.
func (q *Bounded[T]) Arrived() int64 { return q.arrived }

// Dropped returns the total number of updates rejected because the queue
// was full.
func (q *Bounded[T]) Dropped() int64 { return q.dropped }

// Served returns the total number of updates dequeued.
func (q *Bounded[T]) Served() int64 { return q.served }

// ObserveBusy accumulates the fraction of the current window during which
// the server was busy processing updates; Utilization divides through by
// the window length.
func (q *Bounded[T]) ObserveBusy(busy float64) { q.winBusy += busy }

// Rates returns the arrival rate λ and service rate μ measured over the
// window of the given duration (in seconds) and resets the window. μ is
// estimated as served work divided by busy time; when the server was never
// busy, μ is reported as +Inf via a zero-λ convention: the caller treats a
// window with no arrivals as underload.
func (q *Bounded[T]) Rates(window float64) (lambda, mu float64) {
	if window <= 0 {
		return 0, 0
	}
	lambda = float64(q.winArrived) / window
	if q.winBusy > 0 {
		mu = float64(q.winServed) / q.winBusy
	}
	q.winArrived, q.winServed, q.winBusy = 0, 0, 0
	return lambda, mu
}

// Utilization returns ρ = λ/μ for the supplied rates, the quantity
// THROTLOOP compares against 1 − 1/B. A zero μ (idle window) yields ρ = 0.
func Utilization(lambda, mu float64) float64 {
	if mu <= 0 {
		return 0
	}
	return lambda / mu
}

package queue

import (
	"math"
	"testing"
)

func TestFIFOOrder(t *testing.T) {
	q := NewBounded[int64](4)
	for i := int64(1); i <= 4; i++ {
		if !q.Offer(i) {
			t.Fatalf("Offer(%d) failed below capacity", i)
		}
	}
	for i := int64(1); i <= 4; i++ {
		id, ok := q.Poll()
		if !ok || id != i {
			t.Fatalf("Poll = (%d, %v), want %d", id, ok, i)
		}
	}
	if _, ok := q.Poll(); ok {
		t.Error("Poll on empty queue should report false")
	}
}

func TestOfferShedOldest(t *testing.T) {
	q := NewBounded[int64](3)
	for i := int64(1); i <= 3; i++ {
		if q.OfferShedOldest(i) {
			t.Fatalf("OfferShedOldest(%d) shed below capacity", i)
		}
	}
	// Saturated: each further offer evicts the head, keeping the freshest.
	if !q.OfferShedOldest(4) || !q.OfferShedOldest(5) {
		t.Fatal("OfferShedOldest at capacity must shed")
	}
	if q.Len() != 3 {
		t.Fatalf("Len = %d, want 3", q.Len())
	}
	for want := int64(3); want <= 5; want++ {
		got, ok := q.Poll()
		if !ok || got != want {
			t.Fatalf("Poll = (%d, %v), want %d (oldest-first shedding)", got, ok, want)
		}
	}
	// Sheds are drops (they feed the overload signal), not served work.
	if q.Dropped() != 2 {
		t.Errorf("Dropped = %d, want 2", q.Dropped())
	}
	if q.Served() != 3 {
		t.Errorf("Served = %d, want 3", q.Served())
	}
	if q.Arrived() != 5 {
		t.Errorf("Arrived = %d, want 5", q.Arrived())
	}
}

func TestDropWhenFull(t *testing.T) {
	q := NewBounded[int64](2)
	q.Offer(1)
	q.Offer(2)
	if q.Offer(3) {
		t.Error("Offer should fail when full")
	}
	if q.Dropped() != 1 {
		t.Errorf("Dropped = %d, want 1", q.Dropped())
	}
	if q.Arrived() != 3 {
		t.Errorf("Arrived = %d, want 3", q.Arrived())
	}
	q.Poll()
	if !q.Offer(4) {
		t.Error("Offer should succeed after Poll frees a slot")
	}
}

func TestWrapAround(t *testing.T) {
	q := NewBounded[int64](3)
	for round := 0; round < 10; round++ {
		for i := int64(0); i < 3; i++ {
			if !q.Offer(int64(round)*3 + i) {
				t.Fatal("Offer failed")
			}
		}
		for i := int64(0); i < 3; i++ {
			id, ok := q.Poll()
			if !ok || id != int64(round)*3+i {
				t.Fatalf("round %d: Poll = (%d, %v)", round, id, ok)
			}
		}
	}
	if q.Served() != 30 {
		t.Errorf("Served = %d, want 30", q.Served())
	}
}

func TestNewBoundedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewBounded[int64](0) should panic")
		}
	}()
	NewBounded[int64](0)
}

func TestRates(t *testing.T) {
	q := NewBounded[int64](100)
	for i := int64(0); i < 50; i++ {
		q.Offer(i)
	}
	for i := 0; i < 30; i++ {
		q.Poll()
	}
	q.ObserveBusy(5) // server busy 5 s out of the 10 s window
	lambda, mu := q.Rates(10)
	if lambda != 5 {
		t.Errorf("lambda = %v, want 5", lambda)
	}
	if mu != 6 {
		t.Errorf("mu = %v, want 6 (30 served / 5 busy seconds)", mu)
	}
	// Window counters reset.
	lambda, mu = q.Rates(10)
	if lambda != 0 || mu != 0 {
		t.Errorf("after reset: lambda=%v mu=%v", lambda, mu)
	}
}

func TestUtilization(t *testing.T) {
	if rho := Utilization(5, 10); rho != 0.5 {
		t.Errorf("Utilization = %v, want 0.5", rho)
	}
	if rho := Utilization(5, 0); rho != 0 {
		t.Errorf("Utilization with idle server = %v, want 0", rho)
	}
	if rho := Utilization(15, 10); math.Abs(rho-1.5) > 1e-12 {
		t.Errorf("overload Utilization = %v, want 1.5", rho)
	}
}

func TestRatesZeroWindow(t *testing.T) {
	q := NewBounded[int64](1)
	lambda, mu := q.Rates(0)
	if lambda != 0 || mu != 0 {
		t.Errorf("zero window: lambda=%v mu=%v", lambda, mu)
	}
}

// TestBulkMatchesPerItem drives a bulk queue and a per-item reference
// through the same randomized schedule of offers and drains and demands
// identical observable behavior: dequeued sequences, shed counts, and
// every counter. This is the contract that lets the vectored ingest path
// substitute OfferShedOldestBulk/ServeSegments for the per-item calls.
func TestBulkMatchesPerItem(t *testing.T) {
	for _, capacity := range []int{1, 3, 8, 64} {
		// Deterministic xorshift so failures reproduce.
		seed := uint64(0x9e3779b97f4a7c15)
		next := func(n int) int {
			seed ^= seed << 13
			seed ^= seed >> 7
			seed ^= seed << 17
			return int(seed % uint64(n))
		}
		bulk := NewBounded[int64](capacity)
		ref := NewBounded[int64](capacity)
		id := int64(0)
		for step := 0; step < 500; step++ {
			if next(3) < 2 { // offer a batch, possibly larger than capacity
				n := next(2*capacity + 3)
				items := make([]int64, n)
				for i := range items {
					id++
					items[i] = id
				}
				var shedBulk int
				if next(2) == 0 {
					shedBulk = bulk.OfferShedOldestBulk(items)
				} else {
					// The scatter variant: reserve slots, fill by hand with
					// the trailing survivors.
					a, b, shed := bulk.ReserveShedOldestBulk(n)
					rest := items[n-len(a)-len(b):]
					copy(a, rest)
					copy(b, rest[len(a):])
					shedBulk = shed
				}
				shedRef := 0
				for _, it := range items {
					if ref.OfferShedOldest(it) {
						shedRef++
					}
				}
				if shedBulk != shedRef {
					t.Fatalf("cap=%d step=%d: bulk shed %d, per-item shed %d", capacity, step, shedBulk, shedRef)
				}
			} else { // drain a prefix
				limit := next(capacity+2) - 1 // occasionally -1: drain all
				a, b := bulk.ServeSegments(limit)
				for _, seg := range [2][]int64{a, b} {
					for _, got := range seg {
						want, ok := ref.Poll()
						if !ok || got != want {
							t.Fatalf("cap=%d step=%d: segment item %d, reference (%d, %v)", capacity, step, got, want, ok)
						}
					}
				}
				if extra := len(a) + len(b); limit >= 0 && extra > limit {
					t.Fatalf("cap=%d step=%d: ServeSegments(%d) returned %d items", capacity, step, limit, extra)
				}
			}
			if bulk.Len() != ref.Len() || bulk.Arrived() != ref.Arrived() ||
				bulk.Dropped() != ref.Dropped() || bulk.Served() != ref.Served() {
				t.Fatalf("cap=%d step=%d: counters diverged: bulk len=%d arr=%d drop=%d srv=%d, ref len=%d arr=%d drop=%d srv=%d",
					capacity, step, bulk.Len(), bulk.Arrived(), bulk.Dropped(), bulk.Served(),
					ref.Len(), ref.Arrived(), ref.Dropped(), ref.Served())
			}
		}
		// Drain both to the bottom and confirm the tails agree too.
		a, b := bulk.ServeSegments(-1)
		for _, seg := range [2][]int64{a, b} {
			for _, got := range seg {
				want, ok := ref.Poll()
				if !ok || got != want {
					t.Fatalf("cap=%d final drain: got %d, reference (%d, %v)", capacity, got, want, ok)
				}
			}
		}
		if _, ok := ref.Poll(); ok {
			t.Fatalf("cap=%d: reference still has items after full bulk drain", capacity)
		}
	}
}

// TestOccupancy pins the admission controller's queue-pressure signal:
// Len/Cap across fill, overflow (capped at 1), and drain.
func TestOccupancy(t *testing.T) {
	q := NewBounded[int](4)
	if got := q.Occupancy(); got != 0 {
		t.Errorf("empty occupancy = %v, want 0", got)
	}
	q.Offer(1)
	if got := q.Occupancy(); got != 0.25 {
		t.Errorf("1/4 occupancy = %v, want 0.25", got)
	}
	for i := 0; i < 10; i++ {
		q.OfferShedOldest(i)
	}
	if got := q.Occupancy(); got != 1 {
		t.Errorf("overflowed occupancy = %v, want 1 (never above)", got)
	}
	q.Poll()
	q.Poll()
	if got := q.Occupancy(); got != 0.5 {
		t.Errorf("half-drained occupancy = %v, want 0.5", got)
	}
}

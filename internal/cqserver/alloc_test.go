package cqserver

import (
	"runtime"
	"testing"

	"lira/internal/fmodel"
	"lira/internal/geo"
	"lira/internal/motion"
	"lira/internal/rng"
)

// pinSerial forces GOMAXPROCS=1 for the test so par.ForChunks takes its
// serial fast path: the allocation gates measure the hot path's own
// behavior, not the goroutine-spawn cost of the parallel decomposition
// (which is amortized away at scale and absent on a loaded single core).
func pinSerial(t *testing.T) {
	t.Helper()
	prev := runtime.GOMAXPROCS(1)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

// allocServer is a server sized like a realistic deployment slice, with
// queries registered and a fully warmed motion table.
func allocServer(t *testing.T) (*Server, []Update) {
	t.Helper()
	s, err := New(Config{
		Space:     space(),
		Nodes:     1500,
		L:         13,
		QueueSize: 4096,
		Curve:     fmodel.Hyperbolic(5, 100, 95),
	})
	if err != nil {
		t.Fatal(err)
	}
	s.RegisterQueries([]geo.Rect{
		geo.NewRect(0, 0, 400, 400),
		geo.NewRect(300, 300, 700, 700),
		geo.NewRect(600, 100, 950, 500),
		geo.NewRect(100, 600, 500, 950),
	})
	r := rng.New(42)
	ups := make([]Update, 1500)
	for i := range ups {
		ups[i] = Update{Node: i, Report: motion.Report{
			Pos:  geo.Point{X: r.Float64() * 1000, Y: r.Float64() * 1000},
			Vel:  geo.Vector{X: r.Float64()*20 - 10, Y: r.Float64()*20 - 10},
			Time: 0,
		}}
	}
	for _, u := range ups {
		s.Apply(u)
	}
	return s, ups
}

// Steady-state ingest + drain must not allocate: the queue ring, motion
// table, and history-free apply path are all fixed-size.
func TestAllocsIngestDrain(t *testing.T) {
	pinSerial(t)
	s, ups := allocServer(t)
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		u := ups[i%len(ups)]
		i++
		if !s.Ingest(u) {
			t.Fatal("queue full")
		}
		if s.Drain(-1) != 1 {
			t.Fatal("drain miscount")
		}
	})
	if allocs != 0 {
		t.Errorf("Ingest+Drain allocates %.1f/op in steady state, want 0", allocs)
	}
}

// The shed-oldest admission path is equally allocation-free, including
// when the queue overflows and sheds.
func TestAllocsIngestShedOldest(t *testing.T) {
	pinSerial(t)
	s, ups := allocServer(t)
	i := 0
	allocs := testing.AllocsPerRun(8192, func() {
		u := ups[i%len(ups)]
		i++
		s.IngestShedOldest(u) // at 8192 runs the 4096-queue overflows: sheds too
	})
	if allocs != 0 {
		t.Errorf("IngestShedOldest allocates %.1f/op in steady state, want 0", allocs)
	}
}

// The columnar vectored admission must be allocation-free too — it is
// the path every decoded wire batch takes, overflow sheds included.
func TestAllocsIngestShedOldestColumns(t *testing.T) {
	pinSerial(t)
	s, ups := allocServer(t)
	const batch = 64
	nodes := make([]uint32, batch)
	xs, ys := make([]float64, batch), make([]float64, batch)
	vxs, vys := make([]float64, batch), make([]float64, batch)
	times := make([]float64, batch)
	for j := 0; j < batch; j++ {
		u := ups[j%len(ups)]
		nodes[j] = uint32(u.Node)
		xs[j], ys[j] = u.Report.Pos.X, u.Report.Pos.Y
		vxs[j], vys[j] = u.Report.Vel.X, u.Report.Vel.Y
		times[j] = u.Report.Time
	}
	allocs := testing.AllocsPerRun(256, func() { // 256×64 overflows the 4096-queue: sheds too
		s.IngestShedOldestColumns(nodes, xs, ys, vxs, vys, times)
	})
	if allocs != 0 {
		t.Errorf("IngestShedOldestColumns allocates %.1f/batch in steady state, want 0", allocs)
	}
}

func TestAllocsApply(t *testing.T) {
	pinSerial(t)
	s, ups := allocServer(t)
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		u := ups[i%len(ups)]
		i++
		s.Apply(u)
	})
	if allocs != 0 {
		t.Errorf("Apply allocates %.1f/op in steady state, want 0", allocs)
	}
}

// Evaluate may allocate at most once per call in steady state (the gate
// tolerates a stray runtime allocation); after the first rounds have
// grown the result buffers and index to their working size, the predict
// sweep, rebuild, scans, and sorts all run in pooled memory.
func TestAllocsEvaluate(t *testing.T) {
	pinSerial(t)
	s, _ := allocServer(t)
	now := 1.0
	for i := 0; i < 3; i++ { // warm result buffers and index
		s.Evaluate(now)
		now += 0.5
	}
	allocs := testing.AllocsPerRun(100, func() {
		s.Evaluate(now)
		now += 0.5
	})
	if allocs > 1 {
		t.Errorf("Evaluate allocates %.1f/op in steady state, want ≤1", allocs)
	}
}

// Package cqserver implements the first layer of the LIRA architecture:
// the mobile CQ server. The server ingests position updates through a
// bounded input queue, maintains the motion table and the statistics grid,
// evaluates registered range CQs over dead-reckoned positions, and runs
// the LIRA adaptation cycle — THROTLOOP to pick the throttle fraction,
// GRIDREDUCE to partition the space, and GREEDYINCREMENT to set the update
// throttlers — publishing the result to the base-station layer.
package cqserver

import (
	"fmt"
	"sort"
	"time"

	"lira/internal/controlplane"
	"lira/internal/cqindex"
	"lira/internal/fmodel"
	"lira/internal/geo"
	"lira/internal/history"
	"lira/internal/motion"
	"lira/internal/par"
	"lira/internal/partition"
	"lira/internal/queue"
	"lira/internal/spans"
	"lira/internal/statgrid"
	"lira/internal/telemetry"
	"lira/internal/throtloop"
	"lira/internal/throttler"
)

// Update is one position-update message from a mobile node.
type Update struct {
	Node   int
	Report motion.Report
}

// Config parameterizes a server.
type Config struct {
	// Space is the monitored area.
	Space geo.Rect
	// Nodes is the number of mobile nodes the server tracks.
	Nodes int
	// Alpha is the statistics-grid resolution. Zero selects the paper's
	// rule α = 2^⌊log₂(10·√L)⌋.
	Alpha int
	// L is the number of shedding regions.
	L int
	// QueueSize is the input queue bound B.
	QueueSize int
	// IndexCells is the side cell count of the query-evaluation index.
	// Zero selects a density-appropriate default.
	IndexCells int
	// Curve is the update reduction function used by the optimizer.
	Curve *fmodel.Curve
	// Fairness is the fairness threshold Δ⇔.
	Fairness float64
	// UseSpeed enables the §3.1.2 speed factor.
	UseSpeed bool
	// HistoryPerNode enables the report history for snapshot/historic
	// queries — the workload the fairness threshold exists for (§3.1.1).
	// It bounds retained reports per node; 0 disables history.
	HistoryPerNode int
	// ProtectQueries enables the query-protective drill-down extension
	// (see partition.Config.ProtectQueries); 0 is the paper's algorithm.
	ProtectQueries float64
	// Telemetry, when non-nil, receives hot-path metrics (Evaluate stage
	// latencies, queue depth, adaptation timings) and decision-journal
	// records for every THROTLOOP / GRIDREDUCE / GREEDYINCREMENT action.
	// Telemetry is passive: server behavior and output are identical with
	// or without it.
	Telemetry *telemetry.Hub
}

// Server is a mobile CQ server.
type Server struct {
	cfg     Config
	table   *motion.Table
	grid    *statgrid.Grid
	input   *queue.Bounded[Update]
	index   *cqindex.Grid
	plane   *controlplane.Plane
	queries []geo.Rect

	// Scratch buffers for query evaluation, reused across rounds: the
	// predicted positions, the active mask, and the per-query result
	// slices (whose backing arrays persist between Evaluate calls).
	predicted []geo.Point
	active    []bool
	results   [][]int

	// Hot-path state hoisted out of Evaluate so the steady state performs
	// zero allocations: the motion table's column view, the evaluation
	// timestamp the chunk workers read, and the chunk-worker funcs bound
	// once at construction (a closure literal inside Evaluate would
	// allocate on every call).
	cols      motion.Columns
	evalNow   float64
	predictFn func(shard, lo, hi int)
	scanFn    func(shard, lo, hi int)

	history *history.Store
	applied int64

	// degradedEval switches Evaluate to the prediction-only refresh (the
	// admission ladder's critical rung). Single-caller, like Evaluate.
	degradedEval bool

	tel *serverTelemetry
}

// serverTelemetry holds the server's pre-resolved metric pointers so hot
// paths pay one nil check plus one atomic per event, never a registry
// lookup. Nil when no Hub is configured.
type serverTelemetry struct {
	hub *telemetry.Hub

	evalHist    *telemetry.Histogram // lira_evaluate_seconds
	predictHist *telemetry.Histogram // lira_evaluate_predict_seconds
	scanHist    *telemetry.Histogram // lira_evaluate_scan_seconds

	queueDepth  *telemetry.Gauge // lira_queue_depth
	gridNodes   *telemetry.Gauge // lira_statgrid_nodes
	gridQueries *telemetry.Gauge // lira_statgrid_queries

	dropped       *telemetry.Counter // lira_queue_dropped_total
	applied       *telemetry.Counter // lira_updates_applied_total
	evals         *telemetry.Counter // lira_evaluations_total
	degradedEvals *telemetry.Counter // lira_evaluate_degraded_total
}

func newServerTelemetry(hub *telemetry.Hub) *serverTelemetry {
	if hub == nil {
		return nil
	}
	r := hub.Registry
	return &serverTelemetry{
		hub:           hub,
		evalHist:      r.Histogram("lira_evaluate_seconds", nil),
		predictHist:   r.Histogram("lira_evaluate_predict_seconds", nil),
		scanHist:      r.Histogram("lira_evaluate_scan_seconds", nil),
		queueDepth:    r.Gauge("lira_queue_depth"),
		gridNodes:     r.Gauge("lira_statgrid_nodes"),
		gridQueries:   r.Gauge("lira_statgrid_queries"),
		dropped:       r.Counter("lira_queue_dropped_total"),
		applied:       r.Counter("lira_updates_applied_total"),
		evals:         r.Counter("lira_evaluations_total"),
		degradedEvals: r.Counter("lira_evaluate_degraded_total"),
	}
}

// Evaluate's fixed shard sizes: nodes per predict shard and queries per
// scan shard. Both decompositions depend only on the input sizes, so
// evaluation is deterministic at any worker count.
const (
	predictChunk = 2048
	queryChunk   = 8
)

// New validates cfg and returns a server.
func New(cfg Config) (*Server, error) {
	if cfg.Space.Empty() {
		return nil, fmt.Errorf("cqserver: empty space")
	}
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("cqserver: non-positive node count %d", cfg.Nodes)
	}
	if cfg.L <= 0 {
		return nil, fmt.Errorf("cqserver: non-positive region count %d", cfg.L)
	}
	if cfg.Curve == nil {
		return nil, fmt.Errorf("cqserver: nil update reduction curve")
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = partition.AlphaFor(cfg.L, 10)
	}
	if cfg.QueueSize == 0 {
		cfg.QueueSize = 1000
	}
	if cfg.IndexCells == 0 {
		cfg.IndexCells = 64
	}
	if cfg.Fairness == 0 {
		cfg.Fairness = throttler.NoFairness(cfg.Curve)
	}
	var hist *history.Store
	var err error
	if cfg.HistoryPerNode > 0 {
		hist, err = history.NewStore(cfg.Nodes, cfg.HistoryPerNode)
		if err != nil {
			return nil, err
		}
	}
	s := &Server{
		history:   hist,
		cfg:       cfg,
		table:     motion.NewTable(cfg.Nodes),
		grid:      statgrid.New(cfg.Space, cfg.Alpha),
		input:     queue.NewBounded[Update](cfg.QueueSize),
		index:     cqindex.NewGrid(cfg.Space, cfg.IndexCells),
		predicted: make([]geo.Point, cfg.Nodes),
		active:    make([]bool, cfg.Nodes),
		tel:       newServerTelemetry(cfg.Telemetry),
	}
	s.plane, err = controlplane.New(controlplane.Config{
		Env: controlplane.Env{
			L:              cfg.L,
			Curve:          cfg.Curve,
			Fairness:       cfg.Fairness,
			UseSpeed:       cfg.UseSpeed,
			ProtectQueries: cfg.ProtectQueries,
		},
		Stats:     s,
		Rates:     s.input,
		QueueCap:  cfg.QueueSize,
		Telemetry: cfg.Telemetry,
	})
	if err != nil {
		return nil, err
	}
	s.cols = s.table.Columns()
	s.predictFn = s.predictRange
	s.scanFn = s.scanRange
	return s, nil
}

// Grid exposes the statistics grid (read-mostly; the experiment harness
// feeds it samples).
func (s *Server) Grid() *statgrid.Grid { return s.grid }

// StatsGrid implements controlplane.StatsSource: the grid an adaptation
// partitions. It is the same grid Grid returns; the second name exists so
// both engines satisfy the control plane with one spelling.
func (s *Server) StatsGrid() *statgrid.Grid { return s.grid }

// Table exposes the server's motion table.
func (s *Server) Table() *motion.Table { return s.table }

// Queue exposes the input queue for rate accounting.
func (s *Server) Queue() *queue.Bounded[Update] { return s.input }

// Throttle exposes the THROTLOOP controller.
func (s *Server) Throttle() *throtloop.Controller { return s.plane.Throttle() }

// ControlPlane exposes the server's control plane, e.g. to swap the
// shedding policy.
func (s *Server) ControlPlane() *controlplane.Plane { return s.plane }

// RegisterQueries replaces the registered continuous range queries and
// refreshes the statistics grid's query census.
func (s *Server) RegisterQueries(qs []geo.Rect) {
	s.queries = append(s.queries[:0], qs...)
	s.grid.SetQueries(qs)
	// Resize the result table, keeping per-query backing arrays alive.
	for len(s.results) < len(qs) {
		s.results = append(s.results, nil)
	}
	s.results = s.results[:len(qs)]
}

// Queries returns the registered queries.
func (s *Server) Queries() []geo.Rect { return s.queries }

// Ingest offers an update to the input queue; a full queue drops it.
func (s *Server) Ingest(u Update) bool {
	ok := s.input.Offer(u)
	if s.tel != nil {
		if !ok {
			s.tel.dropped.Inc()
		}
		s.tel.queueDepth.Set(float64(s.input.Len()))
	}
	return ok
}

// Drain applies up to limit queued updates to the motion table and
// returns the number applied. A negative limit drains everything.
func (s *Server) Drain(limit int) int {
	a, b := s.input.ServeSegments(limit)
	for _, seg := range [2][]Update{a, b} {
		for i := range seg {
			s.table.Apply(seg[i].Node, seg[i].Report)
			if s.history != nil {
				_ = s.history.Append(seg[i].Node, seg[i].Report)
			}
		}
	}
	applied := len(a) + len(b)
	s.applied += int64(applied)
	if s.tel != nil {
		s.tel.applied.Add(int64(applied))
		s.tel.queueDepth.Set(float64(s.input.Len()))
	}
	return applied
}

// Apply installs an update directly, bypassing the queue (used by the
// harness's reference run, which models an infinitely provisioned server).
func (s *Server) Apply(u Update) {
	s.table.Apply(u.Node, u.Report)
	if s.history != nil {
		// Ignore out-of-order reports: a reconnecting node may replay an
		// old report, which the live table tolerates but history rejects.
		_ = s.history.Append(u.Node, u.Report)
	}
	s.applied++
}

// History returns the report history store, or nil when history is
// disabled. Use it to answer snapshot and historic range queries.
func (s *Server) History() *history.Store { return s.history }

// Applied returns the number of updates integrated into the motion table.
func (s *Server) Applied() int64 { return s.applied }

// ObserveStatistics folds one sample of node positions and speeds into the
// statistics grid. In a deployment this is derived from the update stream
// or a grid-based index; the harness samples ground truth, which the paper
// also permits ("the statistics can easily be approximated using
// sampling").
func (s *Server) ObserveStatistics(positions []geo.Point, speeds []float64) {
	s.grid.Observe(positions, speeds)
	if s.tel != nil {
		// Gauges are stored here (single-writer) rather than registered as
		// funcs: the grid is not goroutine-safe, so scrape-time evaluation
		// would race with Observe.
		n, m := s.grid.Totals()
		s.tel.gridNodes.Set(n)
		s.tel.gridQueries.Set(m)
	}
}

// Evaluate re-evaluates every registered query at time now against the
// dead-reckoned node positions. results[q] lists node ids in ascending
// order; the backing arrays are reused across calls, so callers must copy
// what they keep.
//
// Ascending node-id order is the canonical result order shared by every
// LIRA evaluator: it is independent of the index structure's internal
// layout, which is what lets the sharded server (internal/shard) promise
// results byte-identical to this one at any shard count, and the
// incremental index reuse buckets freely.
//
// The prediction pass is chunked across goroutines, and the per-query
// index scans run concurrently over the rebuilt CSR grid (which is
// read-only during scanning). Each query writes only its own result slot
// and each scan visits buckets in the serial order, so the output is
// byte-identical at any worker count.
func (s *Server) Evaluate(now float64) [][]int {
	if s.degradedEval {
		return s.evaluateDegraded(now)
	}
	// Wall-clock stamps are taken only with telemetry attached; durations
	// feed latency histograms and never the simulation state, preserving
	// determinism (see the telemetry package's contract). Spans likewise:
	// they are created only from this single-caller coordinator (never
	// inside the par workers), so span ids assign in deterministic order.
	var t0, t1, t2 time.Time
	var root, sp spans.Ctx
	if s.tel != nil {
		t0 = time.Now()
		root = s.tel.hub.Spans().Start("evaluate", "engine").Num("nodes", float64(s.cfg.Nodes)).Num("queries", float64(len(s.queries)))
		sp = root.Child("predict", "engine")
	}
	s.evalNow = now
	par.ForChunks(s.cfg.Nodes, predictChunk, s.predictFn)
	if s.tel != nil {
		t1 = time.Now()
		sp.End()
		sp = root.Child("scan", "engine")
	}
	s.index.Rebuild(s.predicted, s.active)
	par.ForChunks(len(s.queries), queryChunk, s.scanFn)
	if s.tel != nil {
		t2 = time.Now()
		sp.End()
		root.End()
		s.tel.predictHist.Observe(t1.Sub(t0).Seconds())
		s.tel.scanHist.Observe(t2.Sub(t1).Seconds())
		s.tel.evalHist.Observe(t2.Sub(t0).Seconds())
		s.tel.evals.Inc()
	}
	return s.results
}

// predictRange is the predict-phase chunk worker: it streams the motion
// table's columns — five contiguous float64 slices — instead of loading
// per-node report structs, and writes the clamped dead-reckoned position
// plus the active mask for [lo, hi). The arithmetic is exactly
// Report.Predict's, so results are bit-identical to the per-id path.
func (s *Server) predictRange(_, lo, hi int) {
	now := s.evalNow
	cols := s.cols
	for i := lo; i < hi; i++ {
		ok := cols.Known[i]
		s.active[i] = ok
		if ok {
			s.predicted[i] = s.cfg.Space.ClampPoint(cols.Predict(i, now))
		}
	}
}

// scanRange is the scan-phase chunk worker: each query in [lo, hi) fills
// its own pooled result slice via the index's append API — no per-query
// callback closure, no per-round allocation once the backing arrays have
// grown to their working size.
func (s *Server) scanRange(_, lo, hi int) {
	for qi := lo; qi < hi; qi++ {
		ids := s.index.QueryAppend(s.queries[qi], s.results[qi][:0])
		sort.Ints(ids)
		s.results[qi] = ids
	}
}

// SetDegradedEval switches Evaluate to prediction-only mode (see
// evaluateDegraded). Single-caller, like Evaluate.
func (s *Server) SetDegradedEval(on bool) { s.degradedEval = on }

// SetCompactionDeferred is a no-op on the unsharded server: its index is
// rebuilt in full every evaluation round, so there is no compaction debt
// to defer. It exists so both engines expose the admission ladder's shed
// seam.
func (s *Server) SetCompactionDeferred(bool) {}

// evaluateDegraded is the critical-rung Evaluate: each query's previous
// members are re-tested against the query rect at their dead-reckoned
// positions — departures drop out, but no index rebuild and no scans run,
// so no new entrants are discovered. Accuracy degrades (results can only
// shrink between normal rounds); availability and result ordering do not.
// The containment test (clamped prediction, closed rect) matches the
// index scan's exactly, and ascending id order is preserved by in-place
// filtering, so the path answers bit-identically to a full evaluation
// whenever no node entered a query since the last normal round — and both
// engines produce identical degraded results over the same prior results.
func (s *Server) evaluateDegraded(now float64) [][]int {
	var t0 time.Time
	if s.tel != nil {
		t0 = time.Now()
	}
	for qi := range s.results {
		q := s.queries[qi]
		ids := s.results[qi]
		kept := ids[:0]
		for _, id := range ids {
			if p, ok := s.table.Predict(id, now); ok && q.ContainsClosed(s.cfg.Space.ClampPoint(p)) {
				kept = append(kept, id)
			}
		}
		s.results[qi] = kept
	}
	if s.tel != nil {
		s.tel.evalHist.Observe(time.Since(t0).Seconds())
		s.tel.evals.Inc()
		s.tel.degradedEvals.Inc()
	}
	return s.results
}

// PredictedPosition returns the server's belief about a node's position.
func (s *Server) PredictedPosition(id int, now float64) (geo.Point, bool) {
	return s.table.Predict(id, now)
}

// Adaptation is the output of one LIRA adaptation cycle, ready for the
// base-station layer. It is the control plane's adaptation record; the
// alias keeps the historical cqserver.Adaptation name compiling.
type Adaptation = controlplane.Adaptation

// Adapt runs one adaptation cycle with an explicit throttle fraction z —
// the manually-set budget mode of §2.1. Use AdaptAuto for closed-loop
// control. The pipeline itself (GRIDREDUCE → GREEDYINCREMENT under the
// active policy) lives in internal/controlplane.
func (s *Server) Adapt(z float64) (*Adaptation, error) {
	return s.plane.Adapt(z)
}

// AdaptAuto measures the queue over the given window, steps THROTLOOP, and
// runs the adaptation cycle at the resulting throttle fraction.
func (s *Server) AdaptAuto(window float64) (*Adaptation, error) {
	return s.plane.AdaptAuto(window)
}

// IngestShedOldest enqueues an update, shedding the oldest on overflow to
// make room for the freshest; the flag reports whether a shed happened.
// This is the network layer's saturation policy — see
// queue.Bounded.OfferShedOldest.
func (s *Server) IngestShedOldest(u Update) bool {
	shed := s.input.OfferShedOldest(u)
	if s.tel != nil {
		if shed {
			s.tel.dropped.Inc()
		}
		s.tel.queueDepth.Set(float64(s.input.Len()))
	}
	return shed
}

// IngestShedOldestBatch enqueues a slice of updates in arrival order
// under the shed-oldest policy and returns how many entries were shed. A
// batch of n counts exactly n arrivals in the λ accounting THROTLOOP
// watches — identical to n IngestShedOldest calls — but admission costs
// two copies instead of n ring operations. This is the vectored hot path
// the batched wire format feeds.
func (s *Server) IngestShedOldestBatch(us []Update) int {
	shed := s.input.OfferShedOldestBulk(us)
	if s.tel != nil {
		if shed > 0 {
			s.tel.dropped.Add(int64(shed))
		}
		s.tel.queueDepth.Set(float64(s.input.Len()))
	}
	return shed
}

// IngestShedOldestColumns is the columnar variant of
// IngestShedOldestBatch: records arrive as the parallel column slices a
// decoded wire batch already holds, and each survivor is scattered
// directly into its ring slot — one write per record, no intermediate
// contiguous staging. All slices must have equal length; behavior and λ
// accounting are identical to offering the records one at a time.
func (s *Server) IngestShedOldestColumns(nodes []uint32, xs, ys, vxs, vys, times []float64) int {
	n := len(nodes)
	a, b, shed := s.input.ReserveShedOldestBulk(n)
	// When n exceeds the ring, only the trailing len(a)+len(b) records
	// survive admission; the reservation already counted the rest as shed.
	i := n - len(a) - len(b)
	for _, seg := range [2][]Update{a, b} {
		for j := range seg {
			seg[j] = Update{Node: int(nodes[i]), Report: motion.Report{
				Pos:  geo.Point{X: xs[i], Y: ys[i]},
				Vel:  geo.Vector{X: vxs[i], Y: vys[i]},
				Time: times[i],
			}}
			i++
		}
	}
	if s.tel != nil {
		if shed > 0 {
			s.tel.dropped.Add(int64(shed))
		}
		s.tel.queueDepth.Set(float64(s.input.Len()))
	}
	return shed
}

// Arrived returns the total number of updates ever offered to the input
// queue (admitted or shed) — the record-conservation ledger's engine-side
// arrival count: Arrived == Applied + Dropped + QueueLen at quiescence,
// provided every update entered through the queue (Apply bypasses it and
// counts only toward Applied).
func (s *Server) Arrived() int64 { return s.input.Arrived() }

// QueueLen returns the current input-queue length.
func (s *Server) QueueLen() int { return s.input.Len() }

// QueueCap returns the input-queue bound B.
func (s *Server) QueueCap() int { return s.input.Cap() }

// Dropped counts updates shed or rejected on queue overflow.
func (s *Server) Dropped() int64 { return s.input.Dropped() }

// ObserveBusy accumulates busy time into the current rate window; see
// queue.Bounded.ObserveBusy.
func (s *Server) ObserveBusy(busy float64) { s.input.ObserveBusy(busy) }

// ConcurrentIngest reports whether Ingest/IngestShedOldest may be called
// from concurrent producers. The unsharded server's bounded queue is
// single-writer, so callers must serialize ingest.
func (s *Server) ConcurrentIngest() bool { return false }

// EngineInfo is a point-in-time engine snapshot for introspection
// endpoints and operator tooling. Both engines report the same shape.
type EngineInfo struct {
	// Engine is the implementation name: "cqserver" or "shard".
	Engine string `json:"engine"`
	// Shards is the shard count (1 for the unsharded server).
	Shards int `json:"shards"`
	// QueueLen and QueueCap describe the input queue (summed/min across
	// shards when sharded).
	QueueLen int `json:"queue_len"`
	QueueCap int `json:"queue_cap"`
	// Dropped and Applied count shed and integrated updates.
	Dropped int64 `json:"dropped"`
	Applied int64 `json:"applied"`
	// Queries is the number of registered continuous queries.
	Queries int `json:"queries"`
	// Z is the current throttle fraction.
	Z float64 `json:"z"`
}

// Introspect returns a point-in-time engine snapshot.
func (s *Server) Introspect() EngineInfo {
	return EngineInfo{
		Engine:   "cqserver",
		Shards:   1,
		QueueLen: s.input.Len(),
		QueueCap: s.input.Cap(),
		Dropped:  s.input.Dropped(),
		Applied:  s.applied,
		Queries:  len(s.queries),
		Z:        s.plane.Throttle().Z(),
	}
}

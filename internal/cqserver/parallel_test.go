package cqserver

import (
	"runtime"
	"testing"

	"lira/internal/fmodel"
	"lira/internal/geo"
	"lira/internal/motion"
	"lira/internal/rng"
)

// bigServer populates a server with enough nodes and queries to engage
// every sharded path in Evaluate (predict chunks, parallel rebuild,
// concurrent query scans).
func bigServer(t testing.TB) *Server {
	t.Helper()
	n := 3*predictChunk + 421
	s, err := New(Config{
		Space: space(),
		Nodes: n,
		L:     13,
		Curve: fmodel.Hyperbolic(5, 100, 95),
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	for i := 0; i < n; i++ {
		s.Apply(Update{Node: i, Report: motion.Report{
			Pos: geo.Point{X: r.Range(0, 1000), Y: r.Range(0, 1000)},
			Vel: geo.Vector{X: r.Range(-20, 20), Y: r.Range(-20, 20)},
		}})
	}
	qs := make([]geo.Rect, 40)
	for i := range qs {
		qs[i] = geo.Square(geo.Point{X: r.Range(100, 900), Y: r.Range(100, 900)}, 150)
	}
	s.RegisterQueries(qs)
	return s
}

// TestEvaluateReusesResultBuffers is the allocation-churn fix: repeated
// Evaluate calls must hand back the same outer result table and grow no
// per-query backing arrays once warm.
func TestEvaluateReusesResultBuffers(t *testing.T) {
	s := bigServer(t)
	first := s.Evaluate(1)
	caps := make([]int, len(first))
	for i, ids := range first {
		caps[i] = cap(ids)
	}
	second := s.Evaluate(1)
	if &first[0] != &second[0] {
		t.Error("outer result table reallocated between calls")
	}
	for i, ids := range second {
		if cap(ids) != caps[i] {
			t.Errorf("query %d backing array reallocated: cap %d -> %d", i, caps[i], cap(ids))
		}
	}
	allocs := testing.AllocsPerRun(10, func() { s.Evaluate(2) })
	// The only remaining allocations are incidental (closure headers);
	// per-query and per-node allocation must be gone.
	if allocs > 50 {
		t.Errorf("Evaluate allocates %v objects per round; buffers are not being reused", allocs)
	}
}

// TestEvaluateDeterministicAcrossWorkers builds two identical servers and
// evaluates one at GOMAXPROCS 1 and the other at 8: the result tables must
// match element for element.
func TestEvaluateDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) [][]int {
		prev := runtime.GOMAXPROCS(workers)
		defer runtime.GOMAXPROCS(prev)
		s := bigServer(t)
		res := s.Evaluate(5)
		out := make([][]int, len(res))
		for i, ids := range res {
			out[i] = append([]int(nil), ids...)
		}
		return out
	}
	a, b := run(1), run(8)
	if len(a) != len(b) {
		t.Fatalf("query counts differ: %d vs %d", len(a), len(b))
	}
	for q := range a {
		if len(a[q]) != len(b[q]) {
			t.Fatalf("query %d sizes differ: %d vs %d", q, len(a[q]), len(b[q]))
		}
		for i := range a[q] {
			if a[q][i] != b[q][i] {
				t.Fatalf("query %d diverges at %d: %d vs %d", q, i, a[q][i], b[q][i])
			}
		}
	}
}

// TestRegisterQueriesResizesResults shrinks and regrows the query set,
// checking the result table tracks it.
func TestRegisterQueriesResizesResults(t *testing.T) {
	s := testServer(t)
	s.Apply(Update{Node: 0, Report: motion.Report{Pos: geo.Point{X: 50, Y: 50}}})
	s.RegisterQueries([]geo.Rect{space(), space(), space()})
	if res := s.Evaluate(0); len(res) != 3 {
		t.Fatalf("3 queries, %d results", len(res))
	}
	s.RegisterQueries([]geo.Rect{space()})
	if res := s.Evaluate(0); len(res) != 1 {
		t.Fatalf("1 query, %d results", len(res))
	}
	s.RegisterQueries([]geo.Rect{space(), space()})
	res := s.Evaluate(0)
	if len(res) != 2 {
		t.Fatalf("2 queries, %d results", len(res))
	}
	for q, ids := range res {
		if len(ids) != 1 || ids[0] != 0 {
			t.Errorf("query %d = %v, want [0]", q, ids)
		}
	}
}

package cqserver

import (
	"testing"

	"lira/internal/fmodel"
	"lira/internal/geo"
	"lira/internal/motion"
	"lira/internal/rng"
)

func space() geo.Rect { return geo.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000} }

func testServer(t *testing.T) *Server {
	t.Helper()
	s, err := New(Config{
		Space: space(),
		Nodes: 100,
		L:     13,
		Curve: fmodel.Hyperbolic(5, 100, 95),
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	c := fmodel.Hyperbolic(5, 100, 95)
	cases := []Config{
		{Space: geo.Rect{}, Nodes: 10, L: 4, Curve: c},
		{Space: space(), Nodes: 0, L: 4, Curve: c},
		{Space: space(), Nodes: 10, L: 0, Curve: c},
		{Space: space(), Nodes: 10, L: 4, Curve: nil},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	s := testServer(t)
	if s.cfg.Alpha != 32 { // 2^⌊log2(10·√13)⌋ = 32
		t.Errorf("default alpha = %d, want 32", s.cfg.Alpha)
	}
	if s.Queue().Cap() != 1000 {
		t.Errorf("default queue size = %d", s.Queue().Cap())
	}
}

func TestIngestDrainApply(t *testing.T) {
	s := testServer(t)
	rep := motion.Report{Pos: geo.Point{X: 10, Y: 10}, Vel: geo.Vector{X: 1, Y: 0}, Time: 0}
	if !s.Ingest(Update{Node: 3, Report: rep}) {
		t.Fatal("Ingest failed on empty queue")
	}
	if s.Table().Known(3) {
		t.Error("queued update should not be applied yet")
	}
	if got := s.Drain(-1); got != 1 {
		t.Fatalf("Drain = %d", got)
	}
	p, ok := s.PredictedPosition(3, 5)
	if !ok || p != (geo.Point{X: 15, Y: 10}) {
		t.Errorf("PredictedPosition = (%v, %v)", p, ok)
	}
	s.Apply(Update{Node: 4, Report: rep})
	if !s.Table().Known(4) {
		t.Error("Apply should bypass the queue")
	}
	if s.Applied() != 2 {
		t.Errorf("Applied = %d", s.Applied())
	}
}

func TestDrainLimit(t *testing.T) {
	s := testServer(t)
	for i := 0; i < 10; i++ {
		s.Ingest(Update{Node: i, Report: motion.Report{}})
	}
	if got := s.Drain(4); got != 4 {
		t.Fatalf("Drain(4) = %d", got)
	}
	if s.Queue().Len() != 6 {
		t.Errorf("queue length = %d, want 6", s.Queue().Len())
	}
}

func TestEvaluate(t *testing.T) {
	s := testServer(t)
	s.RegisterQueries([]geo.Rect{
		geo.NewRect(0, 0, 200, 200),
		geo.NewRect(800, 800, 1000, 1000),
	})
	s.Apply(Update{Node: 0, Report: motion.Report{Pos: geo.Point{X: 50, Y: 50}}})
	s.Apply(Update{Node: 1, Report: motion.Report{Pos: geo.Point{X: 900, Y: 900}}})
	s.Apply(Update{Node: 2, Report: motion.Report{Pos: geo.Point{X: 100, Y: 100}, Vel: geo.Vector{X: 100, Y: 100}, Time: 0}})
	res := s.Evaluate(0)
	if len(res) != 2 {
		t.Fatalf("results for %d queries", len(res))
	}
	if len(res[0]) != 2 { // nodes 0 and 2
		t.Errorf("query 0 = %v", res[0])
	}
	if len(res[1]) != 1 || res[1][0] != 1 {
		t.Errorf("query 1 = %v", res[1])
	}
	// At t=8 node 2's predicted position (900, 900) moves to query 1.
	res = s.Evaluate(8)
	if len(res[0]) != 1 {
		t.Errorf("query 0 at t=8 = %v", res[0])
	}
	if len(res[1]) != 2 {
		t.Errorf("query 1 at t=8 = %v", res[1])
	}
}

func TestEvaluateIgnoresUnreportedNodes(t *testing.T) {
	s := testServer(t)
	s.RegisterQueries([]geo.Rect{space()})
	s.Apply(Update{Node: 7, Report: motion.Report{Pos: geo.Point{X: 1, Y: 1}}})
	res := s.Evaluate(0)
	if len(res[0]) != 1 || res[0][0] != 7 {
		t.Errorf("only node 7 has reported: %v", res[0])
	}
}

func TestAdaptProducesConsistentAssignment(t *testing.T) {
	s := testServer(t)
	r := rng.New(21)
	pos := make([]geo.Point, 100)
	speeds := make([]float64, 100)
	for i := range pos {
		pos[i] = geo.Point{X: r.Range(0, 500), Y: r.Range(0, 500)}
		speeds[i] = 15
	}
	s.ObserveStatistics(pos, speeds)
	s.RegisterQueries([]geo.Rect{geo.NewRect(600, 600, 900, 900)})
	ad, err := s.Adapt(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ad.Deltas) != len(ad.Partitioning.Regions) {
		t.Fatalf("deltas/regions mismatch: %d/%d", len(ad.Deltas), len(ad.Partitioning.Regions))
	}
	if len(ad.Partitioning.Regions) != 13 {
		t.Errorf("regions = %d, want 13", len(ad.Partitioning.Regions))
	}
	if !ad.BudgetMet {
		t.Error("z=0.5 should be achievable")
	}
	if ad.Elapsed <= 0 {
		t.Error("Elapsed should be measured")
	}
	// The node-dense query-free SW corner should be throttled harder than
	// the query area.
	var swDelta, queryDelta float64 = 0, 0
	for i, reg := range ad.Partitioning.Regions {
		c := reg.Area.Center()
		if c.X < 500 && c.Y < 500 && reg.N > 0 {
			if ad.Deltas[i] > swDelta {
				swDelta = ad.Deltas[i]
			}
		}
		if reg.M > 0 {
			if ad.Deltas[i] > queryDelta {
				queryDelta = ad.Deltas[i]
			}
		}
	}
	if swDelta <= queryDelta {
		t.Errorf("node-dense query-free Δ %v should exceed query-region Δ %v", swDelta, queryDelta)
	}
}

func TestAdaptAutoUsesThrotloop(t *testing.T) {
	s := testServer(t)
	pos := make([]geo.Point, 100)
	speeds := make([]float64, 100)
	r := rng.New(5)
	for i := range pos {
		pos[i] = geo.Point{X: r.Range(0, 1000), Y: r.Range(0, 1000)}
		speeds[i] = 10
	}
	s.ObserveStatistics(pos, speeds)
	// Simulate an overloaded window: many arrivals, slow service.
	for i := 0; i < 500; i++ {
		s.Ingest(Update{Node: i % 100, Report: motion.Report{}})
		s.Drain(1)
	}
	s.Queue().ObserveBusy(10) // 500 served in 10 busy-seconds → μ=50, λ=50/s over window
	ad, err := s.AdaptAuto(10)
	if err != nil {
		t.Fatal(err)
	}
	// ρ = 50/50 = 1 > target 0.999 ⇒ z must drop below 1.
	if ad.Z >= 1 {
		t.Errorf("overloaded window should shrink z, got %v", ad.Z)
	}
}

func TestHistoryCapture(t *testing.T) {
	s, err := New(Config{
		Space:          space(),
		Nodes:          10,
		L:              4,
		Curve:          fmodel.Hyperbolic(5, 100, 19),
		HistoryPerNode: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.History() == nil {
		t.Fatal("history enabled but nil")
	}
	s.Apply(Update{Node: 2, Report: motion.Report{Pos: geo.Point{X: 100, Y: 100}, Time: 5}})
	s.Ingest(Update{Node: 2, Report: motion.Report{Pos: geo.Point{X: 200, Y: 100}, Time: 15}})
	s.Drain(-1)
	p, ok := s.History().PositionAt(2, 10)
	if !ok || p != (geo.Point{X: 100, Y: 100}) {
		t.Errorf("historic position = (%v, %v)", p, ok)
	}
	snap := s.History().Snapshot(geo.NewRect(150, 50, 250, 150), 15)
	if len(snap) != 1 || snap[0] != 2 {
		t.Errorf("snapshot = %v", snap)
	}
	// History disabled by default.
	s2 := testServer(t)
	if s2.History() != nil {
		t.Error("history should be nil when disabled")
	}
}

func TestAccessors(t *testing.T) {
	s := testServer(t)
	if s.Grid() == nil || s.Throttle() == nil {
		t.Error("accessors returned nil")
	}
	s.RegisterQueries([]geo.Rect{space()})
	if len(s.Queries()) != 1 {
		t.Errorf("Queries = %v", s.Queries())
	}
}

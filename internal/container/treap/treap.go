// Package treap implements an ordered multiset of float64 keys as a
// randomized balanced binary search tree. GREEDYINCREMENT keeps the current
// update throttlers Δᵢ in such a multiset so the minimum throttler — which
// anchors the fairness constraint |Δᵢ − Δⱼ| ≤ Δ⇔ — can be maintained in
// O(log l) per insert, remove, and update (footnote 2 of the paper).
package treap

// Multiset is an ordered multiset of float64 keys. The zero value is an
// empty multiset ready to use.
type Multiset struct {
	root  *node
	state uint64 // deterministic priority stream
	size  int
}

type node struct {
	key         float64
	prio        uint64
	count       int // multiplicity of key
	subtreeSize int // total multiplicity in this subtree
	left, right *node
}

func (n *node) recompute() {
	n.subtreeSize = n.count
	if n.left != nil {
		n.subtreeSize += n.left.subtreeSize
	}
	if n.right != nil {
		n.subtreeSize += n.right.subtreeSize
	}
}

// Len returns the number of keys (counting multiplicity).
func (m *Multiset) Len() int { return m.size }

func (m *Multiset) nextPrio() uint64 {
	// xorshift64*: deterministic yet well-mixed priorities keep the treap
	// balanced with high probability without importing randomness.
	m.state = m.state*6364136223846793005 + 1442695040888963407
	x := m.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	return x * 0x2545F4914F6CDD1D
}

// Insert adds one occurrence of key.
func (m *Multiset) Insert(key float64) {
	m.root = m.insert(m.root, key)
	m.size++
}

func (m *Multiset) insert(n *node, key float64) *node {
	if n == nil {
		nn := &node{key: key, prio: m.nextPrio(), count: 1}
		nn.recompute()
		return nn
	}
	switch {
	case key == n.key:
		n.count++
	case key < n.key:
		n.left = m.insert(n.left, key)
		if n.left.prio > n.prio {
			n = rotateRight(n)
		}
	default:
		n.right = m.insert(n.right, key)
		if n.right.prio > n.prio {
			n = rotateLeft(n)
		}
	}
	n.recompute()
	return n
}

// Remove deletes one occurrence of key. It reports whether the key was
// present.
func (m *Multiset) Remove(key float64) bool {
	var removed bool
	m.root, removed = m.remove(m.root, key)
	if removed {
		m.size--
	}
	return removed
}

func (m *Multiset) remove(n *node, key float64) (*node, bool) {
	if n == nil {
		return nil, false
	}
	var removed bool
	switch {
	case key < n.key:
		n.left, removed = m.remove(n.left, key)
	case key > n.key:
		n.right, removed = m.remove(n.right, key)
	default:
		removed = true
		if n.count > 1 {
			n.count--
		} else {
			n = merge(n.left, n.right)
		}
	}
	if n != nil {
		n.recompute()
	}
	return n, removed
}

// Replace atomically removes old and inserts new — the D.UPDATE(Δ′, Δ)
// operation from Algorithm 2. It reports whether old was present (new is
// inserted either way).
func (m *Multiset) Replace(old, new float64) bool {
	removed := m.Remove(old)
	m.Insert(new)
	return removed
}

// Min returns the smallest key. The second result is false when the
// multiset is empty.
func (m *Multiset) Min() (float64, bool) {
	n := m.root
	if n == nil {
		return 0, false
	}
	for n.left != nil {
		n = n.left
	}
	return n.key, true
}

// Max returns the largest key. The second result is false when the
// multiset is empty.
func (m *Multiset) Max() (float64, bool) {
	n := m.root
	if n == nil {
		return 0, false
	}
	for n.right != nil {
		n = n.right
	}
	return n.key, true
}

// Count returns the multiplicity of key.
func (m *Multiset) Count(key float64) int {
	n := m.root
	for n != nil {
		switch {
		case key < n.key:
			n = n.left
		case key > n.key:
			n = n.right
		default:
			return n.count
		}
	}
	return 0
}

// Kth returns the k-th smallest key, 0-indexed, counting multiplicity.
// The second result is false when k is out of range.
func (m *Multiset) Kth(k int) (float64, bool) {
	if k < 0 || k >= m.size {
		return 0, false
	}
	n := m.root
	for n != nil {
		leftSize := 0
		if n.left != nil {
			leftSize = n.left.subtreeSize
		}
		switch {
		case k < leftSize:
			n = n.left
		case k < leftSize+n.count:
			return n.key, true
		default:
			k -= leftSize + n.count
			n = n.right
		}
	}
	return 0, false
}

// Ascend calls fn for each distinct key in increasing order, with its
// multiplicity, stopping early if fn returns false.
func (m *Multiset) Ascend(fn func(key float64, count int) bool) {
	ascend(m.root, fn)
}

func ascend(n *node, fn func(float64, int) bool) bool {
	if n == nil {
		return true
	}
	if !ascend(n.left, fn) {
		return false
	}
	if !fn(n.key, n.count) {
		return false
	}
	return ascend(n.right, fn)
}

func rotateRight(n *node) *node {
	l := n.left
	n.left = l.right
	l.right = n
	n.recompute()
	l.recompute()
	return l
}

func rotateLeft(n *node) *node {
	r := n.right
	n.right = r.left
	r.left = n
	n.recompute()
	r.recompute()
	return r
}

func merge(a, b *node) *node {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if a.prio > b.prio {
		a.right = merge(a.right, b)
		a.recompute()
		return a
	}
	b.left = merge(a, b.left)
	b.recompute()
	return b
}

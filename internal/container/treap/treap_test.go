package treap

import (
	"sort"
	"testing"
	"testing/quick"

	"lira/internal/rng"
)

func TestInsertMinMax(t *testing.T) {
	var m Multiset
	if _, ok := m.Min(); ok {
		t.Error("Min of empty multiset should report false")
	}
	if _, ok := m.Max(); ok {
		t.Error("Max of empty multiset should report false")
	}
	for _, k := range []float64{5, 3, 9, 1, 7} {
		m.Insert(k)
	}
	if min, _ := m.Min(); min != 1 {
		t.Errorf("Min = %v, want 1", min)
	}
	if max, _ := m.Max(); max != 9 {
		t.Errorf("Max = %v, want 9", max)
	}
	if m.Len() != 5 {
		t.Errorf("Len = %d, want 5", m.Len())
	}
}

func TestMultiplicity(t *testing.T) {
	var m Multiset
	m.Insert(2)
	m.Insert(2)
	m.Insert(2)
	if m.Count(2) != 3 {
		t.Errorf("Count = %d, want 3", m.Count(2))
	}
	if !m.Remove(2) {
		t.Fatal("Remove failed")
	}
	if m.Count(2) != 2 || m.Len() != 2 {
		t.Errorf("after one removal: count=%d len=%d", m.Count(2), m.Len())
	}
	m.Remove(2)
	m.Remove(2)
	if m.Count(2) != 0 || m.Len() != 0 {
		t.Errorf("after full removal: count=%d len=%d", m.Count(2), m.Len())
	}
	if m.Remove(2) {
		t.Error("Remove of absent key should return false")
	}
}

func TestReplace(t *testing.T) {
	var m Multiset
	m.Insert(5)
	m.Insert(10)
	if !m.Replace(5, 7) {
		t.Error("Replace should report old key present")
	}
	if min, _ := m.Min(); min != 7 {
		t.Errorf("Min after Replace = %v, want 7", min)
	}
	if m.Replace(99, 1) {
		t.Error("Replace of absent key should report false")
	}
	if min, _ := m.Min(); min != 1 {
		t.Errorf("Min = %v, want 1 (new key inserted regardless)", min)
	}
}

func TestKth(t *testing.T) {
	var m Multiset
	keys := []float64{4, 1, 3, 1, 2}
	for _, k := range keys {
		m.Insert(k)
	}
	sorted := append([]float64(nil), keys...)
	sort.Float64s(sorted)
	for i, want := range sorted {
		got, ok := m.Kth(i)
		if !ok || got != want {
			t.Errorf("Kth(%d) = (%v, %v), want %v", i, got, ok, want)
		}
	}
	if _, ok := m.Kth(-1); ok {
		t.Error("Kth(-1) should report false")
	}
	if _, ok := m.Kth(5); ok {
		t.Error("Kth(len) should report false")
	}
}

func TestAscendOrder(t *testing.T) {
	var m Multiset
	r := rng.New(1)
	for i := 0; i < 100; i++ {
		m.Insert(float64(r.Intn(20)))
	}
	var prev float64 = -1
	total := 0
	m.Ascend(func(k float64, c int) bool {
		if k <= prev {
			t.Fatalf("Ascend out of order: %v after %v", k, prev)
		}
		prev = k
		total += c
		return true
	})
	if total != 100 {
		t.Errorf("Ascend visited %d items, want 100", total)
	}
}

func TestAscendEarlyStop(t *testing.T) {
	var m Multiset
	for i := 0; i < 10; i++ {
		m.Insert(float64(i))
	}
	visits := 0
	m.Ascend(func(k float64, c int) bool {
		visits++
		return visits < 3
	})
	if visits != 3 {
		t.Errorf("Ascend visited %d after early stop, want 3", visits)
	}
}

// Property: the treap agrees with a sorted-slice model under random
// insert/remove/min workloads (this is exactly the Δᵢ tracking pattern of
// GREEDYINCREMENT).
func TestModelEquivalenceProperty(t *testing.T) {
	f := func(seed uint64, ops []uint8) bool {
		r := rng.New(seed)
		var m Multiset
		var model []float64
		for _, op := range ops {
			switch op % 3 {
			case 0:
				k := float64(r.Intn(50))
				m.Insert(k)
				model = append(model, k)
				sort.Float64s(model)
			case 1:
				if len(model) > 0 {
					i := r.Intn(len(model))
					k := model[i]
					if !m.Remove(k) {
						return false
					}
					model = append(model[:i], model[i+1:]...)
				}
			case 2:
				if len(model) > 0 {
					min, ok := m.Min()
					if !ok || min != model[0] {
						return false
					}
					max, ok := m.Max()
					if !ok || max != model[len(model)-1] {
						return false
					}
				}
			}
			if m.Len() != len(model) {
				return false
			}
		}
		for i, want := range model {
			got, ok := m.Kth(i)
			if !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLargeBalance(t *testing.T) {
	var m Multiset
	const n = 100000
	for i := 0; i < n; i++ {
		m.Insert(float64(i)) // adversarial sorted insertion
	}
	if m.Len() != n {
		t.Fatalf("Len = %d", m.Len())
	}
	// If the treap degenerated to a list this would be O(n²) and time out;
	// with priorities it is fast. Also verify a few order statistics.
	for _, k := range []int{0, n / 2, n - 1} {
		got, ok := m.Kth(k)
		if !ok || got != float64(k) {
			t.Errorf("Kth(%d) = (%v, %v)", k, got, ok)
		}
	}
}

package iheap

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"lira/internal/rng"
)

func TestPushPopOrder(t *testing.T) {
	var h Heap
	h.Push(1, 3.0)
	h.Push(2, 5.0)
	h.Push(3, 1.0)
	h.Push(4, 4.0)
	want := []int{2, 4, 1, 3}
	for _, w := range want {
		id, _ := h.PopMax()
		if id != w {
			t.Fatalf("PopMax = %d, want %d", id, w)
		}
	}
	if h.Len() != 0 {
		t.Errorf("Len = %d after draining", h.Len())
	}
}

func TestDuplicatePushPanics(t *testing.T) {
	var h Heap
	h.Push(1, 1.0)
	defer func() {
		if recover() == nil {
			t.Error("duplicate Push should panic")
		}
	}()
	h.Push(1, 2.0)
}

func TestPopEmptyPanics(t *testing.T) {
	var h Heap
	defer func() {
		if recover() == nil {
			t.Error("PopMax on empty heap should panic")
		}
	}()
	h.PopMax()
}

func TestUpdate(t *testing.T) {
	var h Heap
	h.Push(1, 1.0)
	h.Push(2, 2.0)
	h.Push(3, 3.0)
	if !h.Update(1, 10.0) {
		t.Fatal("Update reported id missing")
	}
	if id, p := h.PeekMax(); id != 1 || p != 10.0 {
		t.Errorf("PeekMax = (%d, %v), want (1, 10)", id, p)
	}
	if !h.Update(1, 0.5) {
		t.Fatal("Update reported id missing")
	}
	if id, _ := h.PeekMax(); id != 3 {
		t.Errorf("PeekMax = %d, want 3 after demotion", id)
	}
	if h.Update(99, 1.0) {
		t.Error("Update of absent id should return false")
	}
}

func TestRemove(t *testing.T) {
	var h Heap
	for i := 0; i < 10; i++ {
		h.Push(i, float64(i))
	}
	if !h.Remove(9) {
		t.Fatal("Remove reported id missing")
	}
	if h.Remove(9) {
		t.Error("double Remove should return false")
	}
	if id, _ := h.PopMax(); id != 8 {
		t.Errorf("PopMax after Remove = %d, want 8", id)
	}
	if h.Contains(9) {
		t.Error("Contains(9) after removal")
	}
	if !h.Contains(5) {
		t.Error("Contains(5) should hold")
	}
}

func TestPriorityLookup(t *testing.T) {
	var h Heap
	h.Push(7, 3.25)
	if p, ok := h.Priority(7); !ok || p != 3.25 {
		t.Errorf("Priority = (%v, %v)", p, ok)
	}
	if _, ok := h.Priority(8); ok {
		t.Error("Priority of absent id should report false")
	}
}

func TestInfinitePriority(t *testing.T) {
	var h Heap
	h.Push(1, 100)
	h.Push(2, math.Inf(1))
	h.Push(3, math.Inf(1))
	// Both infinities beat the finite; tie broken by insertion order.
	if id, _ := h.PopMax(); id != 2 {
		t.Errorf("first pop = %d, want 2", id)
	}
	if id, _ := h.PopMax(); id != 3 {
		t.Errorf("second pop = %d, want 3", id)
	}
}

func TestTieBreakDeterministic(t *testing.T) {
	var h Heap
	for i := 0; i < 5; i++ {
		h.Push(i, 1.0)
	}
	for i := 0; i < 5; i++ {
		id, _ := h.PopMax()
		if id != i {
			t.Fatalf("tie order: got %d at position %d", id, i)
		}
	}
}

// Property: popping everything yields priorities in non-increasing order,
// regardless of interleaved updates and removals.
func TestHeapOrderProperty(t *testing.T) {
	f := func(seed uint64, opsRaw []uint8) bool {
		r := rng.New(seed)
		var h Heap
		next := 0
		live := map[int]bool{}
		for _, op := range opsRaw {
			switch op % 4 {
			case 0, 1:
				h.Push(next, r.Float64()*100)
				live[next] = true
				next++
			case 2:
				if len(live) > 0 {
					for id := range live {
						h.Update(id, r.Float64()*100)
						break
					}
				}
			case 3:
				if len(live) > 0 {
					for id := range live {
						h.Remove(id)
						delete(live, id)
						break
					}
				}
			}
		}
		var drained []float64
		for h.Len() > 0 {
			_, p := h.PopMax()
			drained = append(drained, p)
		}
		if len(drained) != len(live) {
			return false
		}
		return sort.SliceIsSorted(drained, func(i, j int) bool { return drained[i] > drained[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

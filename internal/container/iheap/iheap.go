// Package iheap implements an indexed binary max-heap keyed by float64
// priorities. Unlike container/heap it tracks each item's position so a
// priority can be updated or an item removed in O(log n) without a scan,
// which is what the GREEDYINCREMENT blocked-list re-admission and the
// GRIDREDUCE drill-down both need.
package iheap

// Heap is an indexed max-heap of items identified by a caller-chosen
// integer id. Priorities compare as float64; +Inf is a valid priority and
// sorts above everything else (used for query-free shedding regions whose
// update gain is unbounded).
//
// The zero value is an empty heap ready to use.
type Heap struct {
	ids  []int       // heap order: ids[0] has the max priority
	pri  []float64   // parallel to ids
	pos  map[int]int // id -> index in ids
	tie  []int64     // parallel to ids: tie-breaker, lower wins
	next int64
}

// Len returns the number of items in the heap.
func (h *Heap) Len() int { return len(h.ids) }

// Push inserts id with the given priority. Pushing an id that is already
// present panics; use Update instead.
func (h *Heap) Push(id int, priority float64) {
	if h.pos == nil {
		h.pos = make(map[int]int)
	}
	if _, ok := h.pos[id]; ok {
		panic("iheap: duplicate id")
	}
	h.ids = append(h.ids, id)
	h.pri = append(h.pri, priority)
	h.tie = append(h.tie, h.next)
	h.next++
	h.pos[id] = len(h.ids) - 1
	h.up(len(h.ids) - 1)
}

// PopMax removes and returns the id with the highest priority. Ties break
// by insertion order (earlier wins) so results are deterministic.
func (h *Heap) PopMax() (id int, priority float64) {
	if len(h.ids) == 0 {
		panic("iheap: PopMax on empty heap")
	}
	id, priority = h.ids[0], h.pri[0]
	h.removeAt(0)
	return id, priority
}

// PeekMax returns the id and priority at the top of the heap without
// removing it.
func (h *Heap) PeekMax() (id int, priority float64) {
	if len(h.ids) == 0 {
		panic("iheap: PeekMax on empty heap")
	}
	return h.ids[0], h.pri[0]
}

// Update changes the priority of id, restoring heap order. It reports
// whether the id was present.
func (h *Heap) Update(id int, priority float64) bool {
	i, ok := h.pos[id]
	if !ok {
		return false
	}
	old := h.pri[i]
	h.pri[i] = priority
	if priority > old {
		h.up(i)
	} else if priority < old {
		h.down(i)
	}
	return true
}

// Remove deletes id from the heap. It reports whether the id was present.
func (h *Heap) Remove(id int) bool {
	i, ok := h.pos[id]
	if !ok {
		return false
	}
	h.removeAt(i)
	return true
}

// Contains reports whether id is in the heap.
func (h *Heap) Contains(id int) bool {
	_, ok := h.pos[id]
	return ok
}

// Priority returns the current priority of id and whether it is present.
func (h *Heap) Priority(id int) (float64, bool) {
	i, ok := h.pos[id]
	if !ok {
		return 0, false
	}
	return h.pri[i], true
}

func (h *Heap) removeAt(i int) {
	last := len(h.ids) - 1
	if i != last {
		h.swap(i, last)
	}
	delete(h.pos, h.ids[last])
	h.ids = h.ids[:last]
	h.pri = h.pri[:last]
	h.tie = h.tie[:last]
	if i < last {
		h.down(i)
		h.up(i)
	}
}

// less reports whether item i should sort above item j in the max-heap.
func (h *Heap) less(i, j int) bool {
	if h.pri[i] != h.pri[j] {
		return h.pri[i] > h.pri[j]
	}
	return h.tie[i] < h.tie[j]
}

func (h *Heap) swap(i, j int) {
	h.ids[i], h.ids[j] = h.ids[j], h.ids[i]
	h.pri[i], h.pri[j] = h.pri[j], h.pri[i]
	h.tie[i], h.tie[j] = h.tie[j], h.tie[i]
	h.pos[h.ids[i]] = i
	h.pos[h.ids[j]] = j
}

func (h *Heap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *Heap) down(i int) {
	n := len(h.ids)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && h.less(l, best) {
			best = l
		}
		if r < n && h.less(r, best) {
			best = r
		}
		if best == i {
			return
		}
		h.swap(i, best)
		i = best
	}
}

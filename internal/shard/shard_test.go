package shard

import (
	"testing"

	"lira/internal/cqserver"
	"lira/internal/fmodel"
	"lira/internal/geo"
	"lira/internal/motion"
)

func space() geo.Rect { return geo.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000} }

func baseConfig() Config {
	return Config{
		Core: cqserver.Config{
			Space: space(),
			Nodes: 120,
			L:     13,
			Curve: fmodel.Hyperbolic(5, 100, 95),
		},
	}
}

func testSharded(t *testing.T, k int, mutate func(*Config)) *Server {
	t.Helper()
	cfg := baseConfig()
	cfg.Shards = k
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	for _, k := range []int{-1, 33} { // alpha defaults to 32 for L=13
		cfg := baseConfig()
		cfg.Shards = k
		if _, err := New(cfg); err == nil {
			t.Errorf("Shards=%d: expected error", k)
		}
	}
	cfg := baseConfig()
	cfg.Core.Curve = nil
	if _, err := New(cfg); err == nil {
		t.Error("nil curve: expected error")
	}
}

func TestGeometryTiling(t *testing.T) {
	for _, k := range []int{1, 2, 3, 4, 8, 32} {
		g, err := NewGeometry(space(), 32, k)
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		if g.Cell(0).MinX != space().MinX || g.Cell(k-1).MaxX != space().MaxX {
			t.Errorf("K=%d: cells do not span the space", k)
		}
		for s := 1; s < k; s++ {
			if g.Cell(s).MinX != g.Cell(s-1).MaxX && s != k-1 {
				t.Errorf("K=%d: gap between cell %d and %d", k, s-1, s)
			}
			// A point on the shared boundary belongs to the right-hand shard
			// and lies inside that shard's cell under closed containment.
			p := geo.Point{X: g.Cell(s).MinX, Y: 500}
			if got := g.ShardFor(p); got != s {
				t.Errorf("K=%d: boundary point of shard %d routed to %d", k, s, got)
			}
			if !g.Cell(s).ContainsClosed(p) {
				t.Errorf("K=%d: boundary point outside owning cell %d", k, s)
			}
		}
		// Outside-space points clamp to the border shards.
		if g.ShardFor(geo.Point{X: -5, Y: 0}) != 0 {
			t.Errorf("K=%d: left outlier not routed to shard 0", k)
		}
		if g.ShardFor(geo.Point{X: 2000, Y: 0}) != k-1 {
			t.Errorf("K=%d: right outlier not routed to shard %d", k, k-1)
		}
	}
}

func TestGeometryFragment(t *testing.T) {
	g, err := NewGeometry(space(), 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Shard 1 spans x ∈ [250, 500].
	if _, ok := g.Fragment(1, geo.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}); ok {
		t.Error("disjoint rect produced a fragment")
	}
	f, ok := g.Fragment(1, geo.Rect{MinX: 100, MinY: 100, MaxX: 600, MaxY: 200})
	if !ok || f.MinX != g.Cell(1).MinX || f.MaxX != g.Cell(1).MaxX {
		t.Errorf("spanning rect fragment = %+v, %v", f, ok)
	}
	// A rect that only touches the cell boundary keeps a degenerate
	// fragment: closed evaluation can still match nodes sitting on it.
	f, ok = g.Fragment(1, geo.Rect{MinX: 0, MinY: 0, MaxX: g.Cell(1).MinX, MaxY: 100})
	if !ok || f.MinX != f.MaxX {
		t.Errorf("touching rect fragment = %+v, %v (want degenerate)", f, ok)
	}
}

func TestResidencyFollowsReports(t *testing.T) {
	s := testSharded(t, 4, nil)
	rep := motion.Report{Pos: geo.Point{X: 100, Y: 500}, Time: 0}
	s.Apply(cqserver.Update{Node: 7, Report: rep})
	if s.shardOf[7] != 0 {
		t.Fatalf("node 7 resident in shard %d, want 0", s.shardOf[7])
	}
	// A fresher report in another band moves residency and cleans the old
	// shard's index.
	s.Apply(cqserver.Update{Node: 7, Report: motion.Report{Pos: geo.Point{X: 900, Y: 500}, Time: 1}})
	if s.shardOf[7] != 3 {
		t.Fatalf("node 7 resident in shard %d, want 3", s.shardOf[7])
	}
	if len(s.shards[0].residents) != 0 || s.shards[0].index.Len() != 0 {
		t.Error("old shard retained the node")
	}
}

func TestStaleArrivalSuperseded(t *testing.T) {
	// Two reports for one node drain from different rings in "wrong"
	// order: the later arrival must win regardless of drain order.
	s := testSharded(t, 2, nil)
	early := cqserver.Update{Node: 3, Report: motion.Report{Pos: geo.Point{X: 900, Y: 10}, Time: 0}}
	late := cqserver.Update{Node: 3, Report: motion.Report{Pos: geo.Point{X: 100, Y: 10}, Time: 1}}
	if !s.Ingest(early) || !s.Ingest(late) {
		t.Fatal("ingest failed")
	}
	// Drain applies shard 0 (late, x=100) before shard 1 (early, x=900).
	s.Drain(-1)
	rep, ok := s.Table().Report(3)
	if !ok || rep.Pos.X != 100 {
		t.Fatalf("table kept report at x=%v, want the later arrival (x=100)", rep.Pos.X)
	}
	if s.shardOf[3] != 0 {
		t.Errorf("node 3 resident in shard %d, want 0", s.shardOf[3])
	}
}

func TestEvaluateMigratesDriftingNode(t *testing.T) {
	s := testSharded(t, 4, nil)
	s.RegisterQueries([]geo.Rect{space()})
	// Node starts in shard 1 moving right at 100 units/s.
	s.Apply(cqserver.Update{Node: 0, Report: motion.Report{
		Pos: geo.Point{X: 300, Y: 500}, Vel: geo.Vector{X: 100}, Time: 0,
	}})
	res := s.Evaluate(0)
	if len(res[0]) != 1 || s.shardOf[0] != 1 {
		t.Fatalf("t=0: results %v, shard %d", res[0], s.shardOf[0])
	}
	// By t=4 the dead-reckoned position x=700 is shard 2's band.
	res = s.Evaluate(4)
	if len(res[0]) != 1 || res[0][0] != 0 {
		t.Fatalf("t=4: results %v, want [0]", res[0])
	}
	if s.shardOf[0] != 2 {
		t.Errorf("t=4: node resident in shard %d, want 2", s.shardOf[0])
	}
	if s.shards[1].index.Len() != 0 || s.shards[2].index.Len() != 1 {
		t.Error("index residency did not follow the migration")
	}
}

func TestDebtTriggersCompaction(t *testing.T) {
	s := testSharded(t, 1, func(c *Config) { c.DebtFactor = 0.25 })
	s.RegisterQueries([]geo.Rect{space()})
	for i := 0; i < 40; i++ {
		s.Apply(cqserver.Update{Node: i, Report: motion.Report{
			Pos: geo.Point{X: float64(i*25 + 10), Y: 500}, Vel: geo.Vector{X: 200}, Time: 0,
		}})
	}
	s.Evaluate(0)
	// Inserting 40 nodes left debt 40 > 0.25·40, so the first evaluation
	// already compacted.
	if got := s.shards[0].index.Debt(); got != 0 {
		t.Fatalf("debt after first evaluation = %d, want 0 (compacted)", got)
	}
	// Dead-reckoned drift of 200 units crosses bucket boundaries (buckets
	// are 1000/64 ≈ 15.6 wide), rebuilding debt until the next compaction.
	s.Evaluate(1)
	s.Evaluate(2)
	if got := s.shards[0].index.Debt(); got != 0 {
		t.Fatalf("debt after drifting evaluations = %d, want 0 (threshold crossed)", got)
	}
}

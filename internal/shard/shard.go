// Package shard implements the spatially sharded mobile CQ server: K
// shard cells aligned to the α×α statistics grid, each with a lock-free
// batched ingest ring, a private statistics grid, and an incrementally
// maintained query index, behind one global LIRA adaptation loop.
//
// The unsharded cqserver.Server is a single logical evaluator: one
// mutex-guarded input queue, one full index rebuild per evaluation. This
// package splits the monitored space into K vertical bands (Geometry),
// routes each position update to its band's ring without locks (Ring),
// drains rings in batches into a shared motion table whose per-node
// last-writer is decided by a global arrival sequence number, and keeps
// each shard's cqindex.Inc current with insert/delete/move deltas —
// falling back to a full compaction only when a shard's delta debt
// exceeds DebtFactor times its population. Cross-shard queries are
// clipped into per-shard fragments; per-shard result lists are merged in
// shard order and canonicalized to ascending node id, the same order
// cqserver.Evaluate reports.
//
// # Determinism contract
//
// For one ingest sequence, query results are a pure function of the
// inputs and are byte-identical to the unsharded server's at every shard
// count: residency assigns each node to exactly one shard, fragments
// cover each query exactly once per shard, and the ascending-id merge
// erases shard layout from the output. THROTLOOP sees one global (λ, μ)
// summed over the shard rings, so z is exact at any K. The adaptation's
// Δᵢ values are bit-identical to the unsharded server at K = 1 (the
// merged statistics reduce in shard order, degenerating to the identity)
// and seed-stable at any fixed K; at K > 1 they may differ from K = 1 in
// final ulps because cross-shard scalar sums reassociate floating-point
// addition. Concurrency never changes results: producers only contend on
// the rings, and every parallel evaluation phase writes per-shard state
// merged in shard order (see package par).
package shard

import (
	"context"
	"fmt"
	"runtime/pprof"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"lira/internal/controlplane"
	"lira/internal/cqindex"
	"lira/internal/cqserver"
	"lira/internal/geo"
	"lira/internal/history"
	"lira/internal/motion"
	"lira/internal/par"
	"lira/internal/partition"
	"lira/internal/spans"
	"lira/internal/statgrid"
	"lira/internal/throtloop"
	"lira/internal/throttler"
)

// Config parameterizes a sharded server.
type Config struct {
	// Core carries the LIRA pipeline parameters, interpreted exactly as
	// cqserver.New interprets them (defaults included). Core.QueueSize is
	// the global bound B, split evenly across the shard rings.
	Core cqserver.Config
	// Shards is the shard count K ∈ [1, α]; zero selects 1. Shard cells
	// are vertical bands of statistics-grid columns, so K may not exceed
	// the grid resolution.
	Shards int
	// DebtFactor is the incremental-index rebuild threshold: a shard
	// compacts its index when accumulated structural deltas exceed
	// DebtFactor × residents. Zero selects 0.5; negative compacts every
	// evaluation (the always-rebuild reference mode).
	DebtFactor float64
}

// shardState is the per-shard slice of the server: the shard's cell, its
// ingest ring, private statistics grid, incremental index, resident
// list, query fragments, and evaluation scratch.
type shardState struct {
	cell  geo.Rect
	ring  *Ring
	grid  *statgrid.Grid
	index *cqindex.Inc

	residents []int32

	// Structure-of-arrays mirror of the residents' reports, parallel to
	// residents slot for slot (dense, swap-removed in lockstep). The
	// phase-1 dead-reckoning sweep streams these contiguous columns
	// instead of gathering 40-byte report structs from the shared table
	// by node id — the shard-order gather is what made the old loop
	// cache-hostile. The mirror is updated wherever the table is (under
	// the same last-writer seq check), so its values are bit-identical
	// to the table's.
	resX, resY   []float64
	resVX, resVY []float64
	resT         []float64

	frags []frag
	// fragBuf[i] collects the ids frag i matched this evaluation round;
	// backing arrays are reused across rounds.
	fragBuf [][]int

	// outbox collects residents whose predicted position left the cell
	// this round; migrations apply serially in shard order.
	outbox []migration

	// Observation-routing scratch, reused across rounds.
	obsPos []geo.Point
	obsSpd []float64
}

// frag is one per-shard fragment of a registered query: the query index
// and the closed clip of its rect to the shard cell (used to narrow the
// bucket scan; containment is tested against the original rect).
type frag struct {
	q      int32
	bounds geo.Rect
}

type migration struct {
	id int32
	p  geo.Point
}

// Server is a spatially sharded mobile CQ server. Ingest and
// IngestShedOldest are safe for concurrent use by any number of
// producers; all other methods are single-caller (the owner's drive
// loop), concurrent only with producers.
type Server struct {
	cfg  Config
	geom *Geometry
	k    int

	shards []*shardState

	table   *motion.Table
	lastSeq []int64 // per node: arrival seq of the applied report, -1 none
	seq     atomic.Int64

	// shardOf/resSlot are the residency maps: the shard currently owning
	// each node (-1 until its first report) and the node's slot in that
	// shard's resident list.
	shardOf []int32
	resSlot []int32

	merged  *statgrid.Grid // merge target; also holds the query census
	plane   *controlplane.Plane
	history *history.Store

	queries []geo.Rect
	results [][]int

	applied int64
	winBusy float64

	// Hot-path state hoisted out of Evaluate/ObserveStatistics so the
	// steady state performs zero allocations: the evaluation timestamp
	// the phase workers read, the per-phase worker funcs bound once at
	// construction (closure literals inside Evaluate would allocate every
	// call), and the compaction tally phase 3 accumulates.
	evalNow     float64
	phase1Fn    func(shard, lo, hi int)
	phase3Fn    func(shard, lo, hi int)
	obsFn       func(shard, lo, hi int)
	compactions atomic.Int64

	// Admission-ladder seams: deferCompact suppresses phase 3's
	// debt-triggered compaction (atomic — the phase workers read it);
	// degraded switches Evaluate to the prediction-only refresh
	// (single-caller, like Evaluate itself).
	deferCompact atomic.Bool
	degraded     bool

	tel *shardTelemetry

	// Pre-built runtime/pprof label contexts, one per shard per phase
	// (lira_phase=predict|scan, lira_shard=<i>), plus the clearing
	// context. Built once at construction when telemetry is attached;
	// SetGoroutineLabels with a pre-built context allocates nothing, so
	// the phase workers stay on the zero-alloc hot-path budget.
	lblPredict []context.Context
	lblScan    []context.Context
	lblClear   context.Context
}

// evaluate decomposes shards one per par chunk.
const shardChunk = 1

// New validates cfg and returns a sharded server.
func New(cfg Config) (*Server, error) {
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	core := cfg.Core
	if core.Space.Empty() {
		return nil, fmt.Errorf("shard: empty space")
	}
	if core.Nodes <= 0 {
		return nil, fmt.Errorf("shard: non-positive node count %d", core.Nodes)
	}
	if core.L <= 0 {
		return nil, fmt.Errorf("shard: non-positive region count %d", core.L)
	}
	if core.Curve == nil {
		return nil, fmt.Errorf("shard: nil update reduction curve")
	}
	if core.Alpha == 0 {
		core.Alpha = partition.AlphaFor(core.L, 10)
	}
	if core.QueueSize == 0 {
		core.QueueSize = 1000
	}
	if core.IndexCells == 0 {
		core.IndexCells = 64
	}
	if core.Fairness == 0 {
		core.Fairness = throttler.NoFairness(core.Curve)
	}
	if cfg.DebtFactor == 0 {
		cfg.DebtFactor = 0.5
	}
	cfg.Core = core
	geom, err := NewGeometry(core.Space, core.Alpha, cfg.Shards)
	if err != nil {
		return nil, err
	}
	var hist *history.Store
	if core.HistoryPerNode > 0 {
		hist, err = history.NewStore(core.Nodes, core.HistoryPerNode)
		if err != nil {
			return nil, err
		}
	}
	k := cfg.Shards
	ringCap := (core.QueueSize + k - 1) / k
	s := &Server{
		cfg:     cfg,
		geom:    geom,
		k:       k,
		shards:  make([]*shardState, k),
		table:   motion.NewTable(core.Nodes),
		lastSeq: make([]int64, core.Nodes),
		shardOf: make([]int32, core.Nodes),
		resSlot: make([]int32, core.Nodes),
		merged:  statgrid.New(core.Space, core.Alpha),
		history: hist,
	}
	for i := range s.lastSeq {
		s.lastSeq[i] = -1
		s.shardOf[i] = -1
	}
	for i := 0; i < k; i++ {
		s.shards[i] = &shardState{
			cell:  geom.Cell(i),
			ring:  NewRing(ringCap),
			grid:  statgrid.New(core.Space, core.Alpha),
			index: cqindex.NewInc(core.Space, core.IndexCells, core.Nodes),
		}
	}
	s.tel = newShardTelemetry(core.Telemetry, k)
	if s.tel != nil {
		s.lblClear = context.Background()
		s.lblPredict = make([]context.Context, k)
		s.lblScan = make([]context.Context, k)
		for i := 0; i < k; i++ {
			si := strconv.Itoa(i)
			s.lblPredict[i] = pprof.WithLabels(s.lblClear, pprof.Labels("lira_phase", "predict", "lira_shard", si))
			s.lblScan[i] = pprof.WithLabels(s.lblClear, pprof.Labels("lira_phase", "scan", "lira_shard", si))
		}
	}
	s.plane, err = controlplane.New(controlplane.Config{
		Env: controlplane.Env{
			L:              core.L,
			Curve:          core.Curve,
			Fairness:       core.Fairness,
			UseSpeed:       core.UseSpeed,
			ProtectQueries: core.ProtectQueries,
		},
		Stats:     s,
		Rates:     s,
		QueueCap:  core.QueueSize,
		Telemetry: core.Telemetry,
	})
	if err != nil {
		return nil, err
	}
	s.phase1Fn = s.predictShard
	s.phase3Fn = s.scanShard
	s.obsFn = s.observeShard
	return s, nil
}

// Shards returns the shard count K.
func (s *Server) Shards() int { return s.k }

// Geometry returns the shard geometry.
func (s *Server) Geometry() *Geometry { return s.geom }

// Table exposes the shared motion table.
func (s *Server) Table() *motion.Table { return s.table }

// Throttle exposes the global THROTLOOP controller.
func (s *Server) Throttle() *throtloop.Controller { return s.plane.Throttle() }

// ControlPlane exposes the server's control plane, e.g. to swap the
// shedding policy.
func (s *Server) ControlPlane() *controlplane.Plane { return s.plane }

// History returns the report history store, or nil when disabled.
func (s *Server) History() *history.Store { return s.history }

// Applied returns the number of updates drained or applied directly.
func (s *Server) Applied() int64 { return s.applied }

// Queries returns the registered queries.
func (s *Server) Queries() []geo.Rect { return s.queries }

// QueueLen returns the summed length of the shard rings.
func (s *Server) QueueLen() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.ring.Len()
	}
	return n
}

// QueueCap returns the summed logical capacity of the shard rings.
func (s *Server) QueueCap() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.ring.Cap()
	}
	return n
}

// Dropped returns the total updates shed or rejected across all rings.
func (s *Server) Dropped() int64 {
	var n int64
	for _, sh := range s.shards {
		n += sh.ring.Dropped()
	}
	return n
}

// Arrived returns the total updates offered across all rings.
func (s *Server) Arrived() int64 {
	var n int64
	for _, sh := range s.shards {
		n += sh.ring.Arrived()
	}
	return n
}

// route returns the shard ring owning u's report position.
func (s *Server) route(u cqserver.Update) *shardState {
	return s.shards[s.geom.ShardFor(s.cfg.Core.Space.ClampPoint(u.Report.Pos))]
}

// stamp assigns u its global arrival sequence number.
func (s *Server) stamp(u cqserver.Update) entry {
	return entry{u: u, seq: s.seq.Add(1) - 1}
}

// Ingest offers an update to its shard's ring; a full ring drops it.
// This is the drop-newest admission cqserver.Ingest uses. Safe for
// concurrent use.
func (s *Server) Ingest(u cqserver.Update) bool {
	sh := s.route(u)
	ok := sh.ring.Offer(s.stamp(u))
	if s.tel != nil {
		if !ok {
			s.tel.dropped.Inc()
		}
		s.tel.queueDepth.Set(float64(s.QueueLen()))
	}
	return ok
}

// IngestShedOldest enqueues an update unconditionally: a full ring sheds
// its oldest entry — counted as a drop in the same λ-side accounting
// THROTLOOP watches — to admit the freshest. This is the network layer's
// overflow policy. Safe for concurrent use.
func (s *Server) IngestShedOldest(u cqserver.Update) (shed bool) {
	sh := s.route(u)
	shed = sh.ring.OfferShedOldest(s.stamp(u))
	if s.tel != nil {
		if shed {
			s.tel.dropped.Inc()
		}
		s.tel.queueDepth.Set(float64(s.QueueLen()))
	}
	return shed
}

// IngestShedOldestBatch enqueues a slice of updates in arrival order
// under the shed-oldest policy and returns how many entries were shed.
// Each record is stamped and routed to its shard ring exactly as
// IngestShedOldest would — a batch of n counts n arrivals — but
// interface dispatch and telemetry cost once per batch instead of once
// per record. Safe for concurrent use.
func (s *Server) IngestShedOldestBatch(us []cqserver.Update) int {
	shed := 0
	for i := range us {
		sh := s.route(us[i])
		if sh.ring.OfferShedOldest(s.stamp(us[i])) {
			shed++
		}
	}
	if s.tel != nil {
		if shed > 0 {
			s.tel.dropped.Add(int64(shed))
		}
		s.tel.queueDepth.Set(float64(s.QueueLen()))
	}
	return shed
}

// IngestShedOldestColumns is the columnar variant of
// IngestShedOldestBatch: records arrive as parallel column slices and
// each is stamped and routed to its shard ring. Safe for concurrent use.
func (s *Server) IngestShedOldestColumns(nodes []uint32, xs, ys, vxs, vys, times []float64) int {
	shed := 0
	for i := range nodes {
		u := cqserver.Update{Node: int(nodes[i]), Report: motion.Report{
			Pos:  geo.Point{X: xs[i], Y: ys[i]},
			Vel:  geo.Vector{X: vxs[i], Y: vys[i]},
			Time: times[i],
		}}
		if s.route(u).ring.OfferShedOldest(s.stamp(u)) {
			shed++
		}
	}
	if s.tel != nil {
		if shed > 0 {
			s.tel.dropped.Add(int64(shed))
		}
		s.tel.queueDepth.Set(float64(s.QueueLen()))
	}
	return shed
}

// Drain applies up to limit queued updates to the motion table and
// returns the number applied. A negative limit drains everything. Rings
// drain in shard order; the arrival sequence number decides each node's
// last writer, so the final table state matches a single global FIFO's
// regardless of how updates were distributed across rings.
func (s *Server) Drain(limit int) int {
	applied := 0
	for _, sh := range s.shards {
		for limit < 0 || applied < limit {
			e, ok := sh.ring.Poll()
			if !ok {
				break
			}
			s.applyEntry(e)
			applied++
		}
	}
	s.applied += int64(applied)
	if s.tel != nil {
		s.tel.applied.Add(int64(applied))
		s.tel.queueDepth.Set(float64(s.QueueLen()))
		// Refresh the per-shard gauges here as well as in Evaluate:
		// a deployment with no registered queries drains without ever
		// evaluating, and residency still moves with the reports.
		for si, sh := range s.shards {
			s.tel.shardResidents[si].Set(float64(len(sh.residents)))
			s.tel.shardDepth[si].Set(float64(sh.ring.Len()))
		}
	}
	return applied
}

// Apply installs an update directly, bypassing the rings (the harness's
// infinitely provisioned reference path). Not safe concurrently with
// producers of the same node.
func (s *Server) Apply(u cqserver.Update) {
	s.applyEntry(s.stamp(u))
	s.applied++
}

func (s *Server) applyEntry(e entry) {
	id := e.u.Node
	if s.history != nil {
		// History orders by report time and rejects regressions itself.
		_ = s.history.Append(id, e.u.Report)
	}
	if e.seq < s.lastSeq[id] {
		return // superseded by a later arrival drained from another ring
	}
	s.lastSeq[id] = e.seq
	s.table.Apply(id, e.u.Report)
	// Residency follows the report position; Evaluate re-homes the node
	// if its dead-reckoned position later drifts across a shard boundary.
	target := int32(s.geom.ShardFor(s.cfg.Core.Space.ClampPoint(e.u.Report.Pos)))
	cur := s.shardOf[id]
	if cur == target {
		s.setResidentReport(cur, int32(id), e.u.Report)
		return
	}
	if cur >= 0 {
		s.removeResident(cur, int32(id))
		s.shards[cur].index.Delete(id)
		if s.tel != nil {
			s.tel.migrations.Inc()
		}
	}
	s.addResident(target, int32(id), e.u.Report)
}

// setResidentReport refreshes the SoA mirror slot of an already-resident
// node after its table report changed.
func (s *Server) setResidentReport(shard, id int32, rep motion.Report) {
	sh := s.shards[shard]
	slot := s.resSlot[id]
	sh.resX[slot], sh.resY[slot] = rep.Pos.X, rep.Pos.Y
	sh.resVX[slot], sh.resVY[slot] = rep.Vel.X, rep.Vel.Y
	sh.resT[slot] = rep.Time
}

func (s *Server) addResident(shard, id int32, rep motion.Report) {
	sh := s.shards[shard]
	s.resSlot[id] = int32(len(sh.residents))
	sh.residents = append(sh.residents, id)
	sh.resX, sh.resY = append(sh.resX, rep.Pos.X), append(sh.resY, rep.Pos.Y)
	sh.resVX, sh.resVY = append(sh.resVX, rep.Vel.X), append(sh.resVY, rep.Vel.Y)
	sh.resT = append(sh.resT, rep.Time)
	s.shardOf[id] = shard
}

func (s *Server) removeResident(shard, id int32) {
	sh := s.shards[shard]
	slot := s.resSlot[id]
	last := int32(len(sh.residents) - 1)
	moved := sh.residents[last]
	sh.residents[slot] = moved
	s.resSlot[moved] = slot
	sh.residents = sh.residents[:last]
	sh.resX[slot], sh.resY[slot] = sh.resX[last], sh.resY[last]
	sh.resVX[slot], sh.resVY[slot] = sh.resVX[last], sh.resVY[last]
	sh.resT[slot] = sh.resT[last]
	sh.resX, sh.resY = sh.resX[:last], sh.resY[:last]
	sh.resVX, sh.resVY = sh.resVX[:last], sh.resVY[:last]
	sh.resT = sh.resT[:last]
}

// RegisterQueries replaces the registered continuous range queries,
// refreshes the merged grid's query census, and recomputes the per-shard
// query fragments.
func (s *Server) RegisterQueries(qs []geo.Rect) {
	s.queries = append(s.queries[:0], qs...)
	s.merged.SetQueries(qs)
	for len(s.results) < len(qs) {
		s.results = append(s.results, nil)
	}
	s.results = s.results[:len(qs)]
	for si, sh := range s.shards {
		sh.frags = sh.frags[:0]
		for qi, q := range qs {
			if bounds, ok := s.geom.Fragment(si, q); ok {
				sh.frags = append(sh.frags, frag{q: int32(qi), bounds: bounds})
			}
		}
		for len(sh.fragBuf) < len(sh.frags) {
			sh.fragBuf = append(sh.fragBuf, nil)
		}
		sh.fragBuf = sh.fragBuf[:len(sh.frags)]
	}
}

// ObserveStatistics routes one sampling round of node positions and
// speeds into the per-shard statistics grids. Every shard folds a round
// every call — possibly an empty one — so the grids stay merge-compatible
// (statgrid.MergeObservations requires equal round counts).
func (s *Server) ObserveStatistics(positions []geo.Point, speeds []float64) {
	if len(positions) != len(speeds) {
		panic("shard: positions and speeds length mismatch")
	}
	for _, sh := range s.shards {
		sh.obsPos = sh.obsPos[:0]
		sh.obsSpd = sh.obsSpd[:0]
	}
	for i, p := range positions {
		sh := s.shards[s.geom.ShardFor(p)]
		sh.obsPos = append(sh.obsPos, p)
		sh.obsSpd = append(sh.obsSpd, speeds[i])
	}
	par.ForChunks(s.k, shardChunk, s.obsFn)
	if s.tel != nil {
		var totalN, totalM float64
		for si, sh := range s.shards {
			n, m := sh.grid.Totals()
			s.tel.shardNodes[si].Set(n)
			totalN += n
			totalM += m
		}
		s.tel.gridNodes.Set(totalN)
		s.tel.gridQueries.Set(totalM)
	}
}

// Evaluate re-evaluates every registered query at time now against the
// dead-reckoned node positions. results[q] lists node ids in ascending
// order — byte-identical to cqserver.Evaluate over the same ingest
// sequence at any shard count; the backing arrays are reused across
// calls, so callers must copy what they keep.
//
// The round has four phases: (1) each shard, in parallel, dead-reckons
// its residents and refreshes its incremental index in place, collecting
// boundary-crossers into an outbox; (2) migrations apply serially in
// shard order; (3) each shard, in parallel, compacts its index if the
// delta debt crossed the threshold and scans its query fragments; (4)
// per-shard fragment results merge in shard order and sort ascending.
// Phases 1 and 3 write only per-shard state, so the output is identical
// at any worker count.
func (s *Server) Evaluate(now float64) [][]int {
	if s.degraded {
		return s.evaluateDegraded(now)
	}
	// Wall stamps and spans exist only with telemetry attached. Spans are
	// created solely from this coordinator goroutine — never inside the
	// par phase workers, whose scheduling order is nondeterministic — so
	// span ids assign in a reproducible order; the workers are attributed
	// via runtime/pprof labels instead (lira_phase / lira_shard).
	var t0, t1, t2 time.Time
	var root, sp spans.Ctx
	if s.tel != nil {
		t0 = time.Now()
		root = s.tel.hub.Spans().Start("evaluate", "engine").Num("k", float64(s.k)).Num("queries", float64(len(s.queries)))
		sp = root.Child("phase1_predict", "engine")
	}
	s.evalNow = now
	// Phase 1: per-shard dead reckoning + in-place index refresh.
	par.ForChunks(s.k, shardChunk, s.phase1Fn)
	if s.tel != nil {
		sp.End()
		sp = root.Child("phase2_migrate", "engine")
	}
	// Phase 2: serial cross-shard migrations, in shard order. The moved
	// node's report is read back from the motion table: migration only
	// re-homes residency, the report itself is unchanged.
	migrated := 0
	for si, sh := range s.shards {
		for _, m := range sh.outbox {
			s.removeResident(int32(si), m.id)
			sh.index.Delete(int(m.id))
			target := int32(s.geom.ShardFor(m.p))
			rep, _ := s.table.Report(int(m.id))
			s.addResident(target, m.id, rep)
			s.shards[target].index.Put(int(m.id), m.p)
			migrated++
		}
	}
	if s.tel != nil {
		t1 = time.Now()
		sp.Num("migrated", float64(migrated)).End()
		sp = root.Child("phase3_scan", "engine")
		if migrated > 0 {
			s.tel.migrations.Add(int64(migrated))
		}
	}
	// Phase 3: debt-triggered compaction + fragment scans.
	s.compactions.Store(0)
	par.ForChunks(s.k, shardChunk, s.phase3Fn)
	if s.tel != nil {
		sp.End()
		sp = root.Child("phase4_merge", "engine")
	}
	// Phase 4: deterministic merge — shard order, then ascending ids.
	for qi := range s.results {
		s.results[qi] = s.results[qi][:0]
	}
	for _, sh := range s.shards {
		for fi, f := range sh.frags {
			s.results[f.q] = append(s.results[f.q], sh.fragBuf[fi]...)
		}
	}
	for qi := range s.results {
		sort.Ints(s.results[qi])
	}
	if s.tel != nil {
		t2 = time.Now()
		sp.End()
		root.End()
		if c := s.compactions.Load(); c > 0 {
			s.tel.compactions.Add(c)
		}
		s.tel.predictHist.Observe(t1.Sub(t0).Seconds())
		s.tel.scanHist.Observe(t2.Sub(t1).Seconds())
		s.tel.evalHist.Observe(t2.Sub(t0).Seconds())
		s.tel.evals.Inc()
		for si, sh := range s.shards {
			s.tel.shardResidents[si].Set(float64(len(sh.residents)))
			s.tel.shardDepth[si].Set(float64(sh.ring.Len()))
		}
	}
	return s.results
}

// predictShard is the phase-1 worker for one shard: it dead-reckons the
// shard's residents by streaming the SoA mirror columns (the arithmetic
// is exactly Report.Predict's, and the mirror holds the table's bits, so
// predictions are bit-identical to the table path), refreshes the
// incremental index in place, and collects boundary-crossers into the
// shard's outbox.
func (s *Server) predictShard(shard, _, _ int) {
	// Attribute this worker's CPU samples by phase and shard. The labels
	// are pre-built contexts (no allocation) and cleared on return so a
	// pooled par worker never leaks a stale label to its next chunk.
	if s.tel != nil {
		pprof.SetGoroutineLabels(s.lblPredict[shard])
		defer pprof.SetGoroutineLabels(s.lblClear)
	}
	sh := s.shards[shard]
	space := s.cfg.Core.Space
	now := s.evalNow
	sh.outbox = sh.outbox[:0]
	for si, id := range sh.residents {
		dt := now - sh.resT[si]
		p := space.ClampPoint(geo.Point{
			X: sh.resX[si] + sh.resVX[si]*dt,
			Y: sh.resY[si] + sh.resVY[si]*dt,
		})
		if s.geom.ShardFor(p) == shard {
			sh.index.Put(int(id), p)
		} else {
			sh.outbox = append(sh.outbox, migration{id: id, p: p})
		}
	}
}

// scanShard is the phase-3 worker for one shard: debt-triggered index
// compaction, then each query fragment fills its pooled buffer via the
// index's append API — no per-fragment callback closure.
func (s *Server) scanShard(shard, _, _ int) {
	if s.tel != nil {
		pprof.SetGoroutineLabels(s.lblScan[shard])
		defer pprof.SetGoroutineLabels(s.lblClear)
	}
	sh := s.shards[shard]
	// The admission ladder's shed rung defers compaction: the incremental
	// index stays exact (deltas keep applying in place), debt just
	// accumulates until the flag clears and the next scan pays it off.
	if !s.deferCompact.Load() && float64(sh.index.Debt()) > s.cfg.DebtFactor*float64(len(sh.residents)) {
		sh.index.Compact()
		s.compactions.Add(1)
	}
	for fi, f := range sh.frags {
		sh.fragBuf[fi] = sh.index.QueryInAppend(f.bounds, s.queries[f.q], sh.fragBuf[fi][:0])
	}
}

// observeShard folds one shard's routed observation sample into its
// private statistics grid.
func (s *Server) observeShard(shard, _, _ int) {
	sh := s.shards[shard]
	sh.grid.Observe(sh.obsPos, sh.obsSpd)
}

// SetDegradedEval switches Evaluate to prediction-only mode (see
// evaluateDegraded). Single-caller, like Evaluate.
func (s *Server) SetDegradedEval(on bool) { s.degraded = on }

// SetCompactionDeferred defers phase 3's debt-triggered index compaction
// while on (the admission ladder's shed rung). Safe to call concurrently
// with the phase workers.
func (s *Server) SetCompactionDeferred(on bool) { s.deferCompact.Store(on) }

// evaluateDegraded is the critical-rung Evaluate: it filters each query's
// previous merged result by dead reckoning against the query rect — the
// same clamped-prediction, closed-rect containment the fragment scans
// apply — touching neither the per-shard indexes nor residency. Results
// can only shrink until normal evaluation resumes (no new entrants are
// discovered), which is the deliberate trade: accuracy degrades,
// availability does not. The filter reads the shared motion table, so it
// is bit-identical to the unsharded engine's degraded path over the same
// prior results; ascending id order is preserved by in-place filtering.
// Residency and the indexes re-converge on the next normal round: phase 1
// re-Puts every resident and migrations re-home movers.
func (s *Server) evaluateDegraded(now float64) [][]int {
	var t0 time.Time
	if s.tel != nil {
		t0 = time.Now()
	}
	space := s.cfg.Core.Space
	for qi := range s.results {
		q := s.queries[qi]
		ids := s.results[qi]
		kept := ids[:0]
		for _, id := range ids {
			if p, ok := s.table.Predict(id, now); ok && q.ContainsClosed(space.ClampPoint(p)) {
				kept = append(kept, id)
			}
		}
		s.results[qi] = kept
	}
	if s.tel != nil {
		s.tel.evalHist.Observe(time.Since(t0).Seconds())
		s.tel.evals.Inc()
		s.tel.degradedEvals.Inc()
	}
	return s.results
}

// PredictedPosition returns the server's belief about a node's position.
func (s *Server) PredictedPosition(id int, now float64) (geo.Point, bool) {
	return s.table.Predict(id, now)
}

// MergedGrid merges the per-shard statistics grids and returns the
// global view (valid until the next merge). The merge runs on every
// Adapt; expose it for introspection and tests.
func (s *Server) MergedGrid() *statgrid.Grid {
	grids := make([]*statgrid.Grid, s.k)
	for i, sh := range s.shards {
		grids[i] = sh.grid
	}
	statgrid.MergeObservations(s.merged, grids)
	return s.merged
}

// StatsGrid implements controlplane.StatsSource: each adaptation
// partitions the merge of the per-shard statistics grids.
func (s *Server) StatsGrid() *statgrid.Grid { return s.MergedGrid() }

// Adapt runs one LIRA adaptation cycle at throttle fraction z over the
// merged shard statistics, through the shared control plane. At K = 1 the
// output is bit-identical to cqserver.Adapt.
func (s *Server) Adapt(z float64) (*cqserver.Adaptation, error) {
	return s.plane.Adapt(z)
}

// ObserveBusy accumulates the fraction of the current measurement window
// the drain/evaluate loop spent busy; AdaptAuto divides through by the
// window length (the same μ estimation queue.Bounded provides).
func (s *Server) ObserveBusy(busy float64) { s.winBusy += busy }

// Rates returns the global arrival rate λ and service rate μ measured
// over the window (seconds) by summing the shard rings' windowed
// counters, and resets the window. Each ingested update contributes to
// exactly one ring's window exactly once, so the sum is the true offered
// load — see the Ring accounting contract.
func (s *Server) Rates(window float64) (lambda, mu float64) {
	if window <= 0 {
		return 0, 0
	}
	var arrived, served int64
	for _, sh := range s.shards {
		a, sv := sh.ring.takeWindow()
		arrived += a
		served += sv
	}
	lambda = float64(arrived) / window
	if s.winBusy > 0 {
		mu = float64(served) / s.winBusy
	}
	s.winBusy = 0
	return lambda, mu
}

// AdaptAuto measures the summed ring signals over the window, steps the
// global THROTLOOP, and adapts at the resulting throttle fraction —
// through the shared control plane, whose rate source is Rates.
func (s *Server) AdaptAuto(window float64) (*cqserver.Adaptation, error) {
	return s.plane.AdaptAuto(window)
}

// ConcurrentIngest reports whether Ingest/IngestShedOldest may be called
// from concurrent producers. The shard rings are lock-free multi-producer
// queues, so they may.
func (s *Server) ConcurrentIngest() bool { return true }

// Introspect returns a point-in-time engine snapshot.
func (s *Server) Introspect() cqserver.EngineInfo {
	return cqserver.EngineInfo{
		Engine:   "shard",
		Shards:   s.k,
		QueueLen: s.QueueLen(),
		QueueCap: s.QueueCap(),
		Dropped:  s.Dropped(),
		Applied:  s.applied,
		Queries:  len(s.queries),
		Z:        s.plane.Throttle().Z(),
	}
}

package shard

import (
	"bytes"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"lira/internal/cqserver"
	"lira/internal/geo"
	"lira/internal/motion"
	"lira/internal/telemetry"
)

// TestEvaluateWorkerLabelContexts pins the pre-built pprof label
// contexts: with telemetry attached every shard gets a predict and a
// scan context carrying lira_phase and lira_shard, and without telemetry
// none are built (the hot path must not pay for unused labels).
func TestEvaluateWorkerLabelContexts(t *testing.T) {
	const k = 4
	s := testSharded(t, k, func(cfg *Config) {
		cfg.Core.Telemetry = telemetry.NewHub(0)
	})
	if len(s.lblPredict) != k || len(s.lblScan) != k {
		t.Fatalf("label contexts: predict %d, scan %d, want %d each", len(s.lblPredict), len(s.lblScan), k)
	}
	for i := 0; i < k; i++ {
		if v, ok := pprof.Label(s.lblPredict[i], "lira_phase"); !ok || v != "predict" {
			t.Errorf("shard %d predict lira_phase = %q, %v", i, v, ok)
		}
		if v, ok := pprof.Label(s.lblScan[i], "lira_phase"); !ok || v != "scan" {
			t.Errorf("shard %d scan lira_phase = %q, %v", i, v, ok)
		}
		if v, ok := pprof.Label(s.lblPredict[i], "lira_shard"); !ok || v != strconv.Itoa(i) {
			t.Errorf("shard %d predict lira_shard = %q, %v", i, v, ok)
		}
		if v, ok := pprof.Label(s.lblScan[i], "lira_shard"); !ok || v != strconv.Itoa(i) {
			t.Errorf("shard %d scan lira_shard = %q, %v", i, v, ok)
		}
	}

	bare := testSharded(t, k, nil)
	if bare.lblPredict != nil || bare.lblScan != nil {
		t.Error("label contexts built without telemetry attached")
	}
}

// TestEvaluateWorkerLabelsVisible drives Evaluate in a loop on a
// background goroutine and polls the goroutine profile until a worker
// shows up labeled lira_phase=predict|scan with a lira_shard tag —
// proving the labels are actually applied during the phases, not just
// constructed. The phases are microseconds long, so this samples until
// it catches one; with Evaluate running back-to-back the labeled
// fraction of wall time is large and the poll converges immediately in
// practice.
func TestEvaluateWorkerLabelsVisible(t *testing.T) {
	s := testSharded(t, 4, func(cfg *Config) {
		cfg.Core.Telemetry = telemetry.NewHub(0)
		cfg.Core.Nodes = 4000
	})
	// Populate every shard so predict and scan have real work.
	for i := 0; i < 4000; i++ {
		x := float64(i%100) * 10
		y := float64(i/100) * 25
		s.Ingest(cqserver.Update{
			Node:   i,
			Report: motion.Report{Pos: geo.Point{X: x, Y: y}, Vel: geo.Vector{X: 1, Y: 1}, Time: 0},
		})
	}
	s.Drain(-1)
	s.RegisterQueries([]geo.Rect{
		geo.NewRect(0, 0, 500, 500),
		geo.NewRect(250, 250, 900, 900),
		geo.NewRect(600, 100, 1000, 600),
	})

	var stop atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		now := 1.0
		for !stop.Load() {
			s.Evaluate(now)
			now += 0.1
		}
	}()
	defer func() { stop.Store(true); <-done }()

	prof := pprof.Lookup("goroutine")
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var buf bytes.Buffer
		if err := prof.WriteTo(&buf, 1); err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(buf.String(), "\n") {
			if !strings.Contains(line, `"lira_phase":"predict"`) &&
				!strings.Contains(line, `"lira_phase":"scan"`) {
				continue
			}
			if !strings.Contains(line, `"lira_shard":`) {
				t.Fatalf("labeled worker missing lira_shard: %s", line)
			}
			return // caught a worker mid-phase with both labels
		}
	}
	t.Fatal("no goroutine carrying lira_phase=predict|scan labels observed")
}

package shard

import (
	"runtime"
	"testing"

	"lira/internal/cqserver"
	"lira/internal/fmodel"
	"lira/internal/geo"
	"lira/internal/motion"
	"lira/internal/rng"
)

// pinSerial forces GOMAXPROCS=1 so par.ForChunks runs its serial fast
// path: the gates measure the evaluation pipeline's own allocations,
// not goroutine-spawn overhead.
func pinSerial(t *testing.T) {
	t.Helper()
	prev := runtime.GOMAXPROCS(1)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

func allocSharded(t *testing.T, k int) (*Server, []cqserver.Update) {
	t.Helper()
	s, err := New(Config{
		Core: cqserver.Config{
			Space:     space(),
			Nodes:     1500,
			L:         13,
			QueueSize: 4096,
			Curve:     fmodel.Hyperbolic(5, 100, 95),
		},
		Shards: k,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.RegisterQueries([]geo.Rect{
		geo.NewRect(0, 0, 400, 400),
		geo.NewRect(300, 300, 700, 700),
		geo.NewRect(600, 100, 950, 500),
		geo.NewRect(100, 600, 500, 950),
	})
	r := rng.New(42)
	ups := make([]cqserver.Update, 1500)
	for i := range ups {
		ups[i] = cqserver.Update{Node: i, Report: motion.Report{
			Pos:  geo.Point{X: r.Float64() * 1000, Y: r.Float64() * 1000},
			Vel:  geo.Vector{X: r.Float64()*20 - 10, Y: r.Float64()*20 - 10},
			Time: 0,
		}}
	}
	for _, u := range ups {
		s.Apply(u)
	}
	return s, ups
}

// Steady-state ring ingest + drain across K=4 shards must not allocate:
// rings, motion table, residency maps, and SoA mirrors are all
// fixed-size or amortized to their high-water capacity.
func TestAllocsIngestDrain(t *testing.T) {
	pinSerial(t)
	s, ups := allocSharded(t, 4)
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		u := ups[i%len(ups)]
		i++
		if !s.Ingest(u) {
			t.Fatal("ring full")
		}
		if s.Drain(-1) != 1 {
			t.Fatal("drain miscount")
		}
	})
	if allocs != 0 {
		t.Errorf("Ingest+Drain allocates %.1f/op in steady state, want 0", allocs)
	}
}

func TestAllocsIngestShedOldest(t *testing.T) {
	pinSerial(t)
	s, ups := allocSharded(t, 4)
	i := 0
	allocs := testing.AllocsPerRun(8192, func() {
		u := ups[i%len(ups)]
		i++
		s.IngestShedOldest(u) // overflows the rings: the shed path is exercised too
	})
	if allocs != 0 {
		t.Errorf("IngestShedOldest allocates %.1f/op in steady state, want 0", allocs)
	}
}

// The columnar vectored admission must be allocation-free across shard
// rings too, overflow sheds included.
func TestAllocsIngestShedOldestColumns(t *testing.T) {
	pinSerial(t)
	s, ups := allocSharded(t, 4)
	const batch = 64
	nodes := make([]uint32, batch)
	xs, ys := make([]float64, batch), make([]float64, batch)
	vxs, vys := make([]float64, batch), make([]float64, batch)
	times := make([]float64, batch)
	for j := 0; j < batch; j++ {
		u := ups[j%len(ups)]
		nodes[j] = uint32(u.Node)
		xs[j], ys[j] = u.Report.Pos.X, u.Report.Pos.Y
		vxs[j], vys[j] = u.Report.Vel.X, u.Report.Vel.Y
		times[j] = u.Report.Time
	}
	allocs := testing.AllocsPerRun(256, func() { // overflows the rings: the shed path runs too
		s.IngestShedOldestColumns(nodes, xs, ys, vxs, vys, times)
	})
	if allocs != 0 {
		t.Errorf("IngestShedOldestColumns allocates %.1f/batch in steady state, want 0", allocs)
	}
}

func TestAllocsApply(t *testing.T) {
	pinSerial(t)
	s, ups := allocSharded(t, 4)
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		u := ups[i%len(ups)]
		i++
		s.Apply(u)
	})
	if allocs != 0 {
		t.Errorf("Apply allocates %.1f/op in steady state, want 0", allocs)
	}
}

// The four-phase sharded Evaluate — SoA predict sweep, migrations,
// debt-compacted fragment scans, shard-order merge — may allocate at
// most once per call in steady state. The warmup drifts the population
// (bucket crossings, migrations, compactions); the measured rounds then
// evaluate at a fixed instant so the gate captures the machinery's
// per-call cost, not the amortized bucket growth an incremental index
// pays when the population enters cells it has never occupied (that
// growth is a one-time high-water cost per bucket, by design).
func TestAllocsEvaluate(t *testing.T) {
	pinSerial(t)
	for _, k := range []int{1, 4} {
		s, _ := allocSharded(t, k)
		now := 1.0
		for i := 0; i < 5; i++ { // warm buffers, indexes, and mirrors
			s.Evaluate(now)
			now += 0.2
		}
		allocs := testing.AllocsPerRun(100, func() {
			s.Evaluate(now)
		})
		if allocs > 1 {
			t.Errorf("K=%d: Evaluate allocates %.1f/op in steady state, want ≤1", k, allocs)
		}
	}
}

// Under continuous population drift the scan and merge phases stay
// allocation-free; only index bucket growth and compaction trims (both
// amortized structural costs) may allocate. This ceiling catches a
// regression that reintroduces per-tick garbage — a closure, a fresh
// result slice — which would push the drifting cost far above it.
func TestAllocsEvaluateDriftCeiling(t *testing.T) {
	pinSerial(t)
	s, _ := allocSharded(t, 4)
	now := 1.0
	for i := 0; i < 10; i++ {
		s.Evaluate(now)
		now += 0.2
	}
	allocs := testing.AllocsPerRun(100, func() {
		s.Evaluate(now)
		now += 0.2
	})
	if allocs > 200 {
		t.Errorf("Evaluate allocates %.1f/op under drift, ceiling 200 (structural growth only)", allocs)
	}
}

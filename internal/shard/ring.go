package shard

import (
	"fmt"
	"sync/atomic"

	"lira/internal/cqserver"
)

// entry is one queued position update stamped with its global arrival
// sequence number. The stamp makes update application commutative: the
// motion table keeps the entry with the highest sequence per node, so
// rings can be drained in any deterministic order — a node whose
// boundary-crossing reports land in two different shard rings still
// converges to the report that arrived last, exactly as a single FIFO
// queue would.
type entry struct {
	u   cqserver.Update
	seq int64
}

// ringSlot is one cell of the ring's slot array. The sequence field is
// the Vyukov turn counter: slot i is writable when seq == ticket and
// readable when seq == ticket+1.
type ringSlot struct {
	seq atomic.Uint64
	val entry
}

// Ring is the lock-free bounded ingest queue in front of each shard: a
// Vyukov-style MPMC ring buffer carrying the same accounting contract as
// queue.Bounded — total arrived/dropped/served counters plus windowed
// arrival and service counters for THROTLOOP's λ and μ estimation.
//
// Producers (connection goroutines) offer concurrently without locks;
// the drain loop is the only consumer of queued work, but the shed-oldest
// overflow path also dequeues from the producer side, which is why the
// ring is MPMC rather than SPSC.
//
// # Accounting contract (the THROTLOOP λ audit)
//
// Every offered update increments the arrival counters exactly once, at
// the top of Offer/OfferShedOldest — never inside the internal retry or
// shed loops. An update that sheds a victim, races another producer, or
// is re-attempted after its victim's slot was stolen still counts one
// arrival; the shed victim counts one drop and zero services. Summing
// ring windows across shards therefore measures the true offered load,
// not the number of internal queue hops — the double-count failure mode
// the regression tests in ring_test.go pin down.
//
// The logical capacity is enforced exactly under any serialized offer
// sequence (the determinism tests' regime). Racing producers may
// transiently overshoot the logical bound by at most one slot per
// concurrent producer, never past the power-of-two slot array.
type Ring struct {
	slots []ringSlot
	mask  uint64
	cap   int // logical capacity (≤ len(slots))

	enq atomic.Uint64
	deq atomic.Uint64

	arrived atomic.Int64
	dropped atomic.Int64
	served  atomic.Int64

	winArrived atomic.Int64
	winServed  atomic.Int64
}

// NewRing returns a ring with logical capacity b. It panics if b <= 0.
func NewRing(b int) *Ring {
	if b <= 0 {
		panic(fmt.Sprintf("shard: non-positive ring capacity %d", b))
	}
	n := 1
	for n < b {
		n <<= 1
	}
	r := &Ring{slots: make([]ringSlot, n), mask: uint64(n - 1), cap: b}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// Cap returns the logical capacity.
func (r *Ring) Cap() int { return r.cap }

// Len returns the current queue length. It is exact when producers and
// the consumer are quiescent, and a snapshot otherwise.
func (r *Ring) Len() int {
	n := int64(r.enq.Load()) - int64(r.deq.Load())
	if n < 0 {
		n = 0
	}
	if n > int64(r.cap) {
		n = int64(r.cap)
	}
	return int(n)
}

// full reports whether the logical capacity is reached.
func (r *Ring) full() bool {
	return int64(r.enq.Load())-int64(r.deq.Load()) >= int64(r.cap)
}

// Offer attempts to enqueue e, mirroring queue.Bounded.Offer: a full ring
// counts a drop and rejects the newcomer.
func (r *Ring) Offer(e entry) bool {
	r.arrived.Add(1)
	r.winArrived.Add(1)
	if !r.tryEnqueue(e) {
		r.dropped.Add(1)
		return false
	}
	return true
}

// OfferShedOldest enqueues e unconditionally, mirroring
// queue.Bounded.OfferShedOldest: when the ring is full the oldest entry
// is shed — counted as a drop, not as served work — to make room for the
// freshest. The returned flag reports whether an entry was shed.
func (r *Ring) OfferShedOldest(e entry) (shed bool) {
	r.arrived.Add(1)
	r.winArrived.Add(1)
	for {
		if r.tryEnqueue(e) {
			return shed
		}
		// Full: discard the head to admit the freshest. Under races the
		// victim may already be gone, in which case the next enqueue
		// attempt succeeds without a drop.
		if _, ok := r.dequeue(false); ok {
			r.dropped.Add(1)
			shed = true
		}
	}
}

// tryEnqueue claims the next enqueue ticket and writes e; it fails only
// when the ring is at logical capacity.
func (r *Ring) tryEnqueue(e entry) bool {
	for {
		if r.full() {
			return false
		}
		ticket := r.enq.Load()
		slot := &r.slots[ticket&r.mask]
		seq := slot.seq.Load()
		switch {
		case seq == ticket:
			if r.enq.CompareAndSwap(ticket, ticket+1) {
				slot.val = e
				slot.seq.Store(ticket + 1)
				return true
			}
		case seq < ticket:
			// The slot still holds an unconsumed entry a full lap behind:
			// structurally full (possible only under producer overshoot).
			return false
		default:
			// Another producer advanced enq; reload.
		}
	}
}

// Poll dequeues the oldest entry, counting it as served work.
func (r *Ring) Poll() (entry, bool) {
	return r.dequeue(true)
}

func (r *Ring) dequeue(serve bool) (entry, bool) {
	for {
		ticket := r.deq.Load()
		slot := &r.slots[ticket&r.mask]
		seq := slot.seq.Load()
		switch {
		case seq == ticket+1:
			if r.deq.CompareAndSwap(ticket, ticket+1) {
				e := slot.val
				slot.val = entry{}
				slot.seq.Store(ticket + r.mask + 1)
				if serve {
					r.served.Add(1)
					r.winServed.Add(1)
				}
				return e, true
			}
		case seq <= ticket:
			return entry{}, false // empty
		default:
			// Another consumer advanced deq; reload.
		}
	}
}

// Arrived returns the total number of updates offered to the ring.
func (r *Ring) Arrived() int64 { return r.arrived.Load() }

// Dropped returns the total number of updates shed or rejected on a full
// ring.
func (r *Ring) Dropped() int64 { return r.dropped.Load() }

// Served returns the total number of updates drained as work.
func (r *Ring) Served() int64 { return r.served.Load() }

// takeWindow returns and resets the windowed arrival/service counters.
func (r *Ring) takeWindow() (arrived, served int64) {
	return r.winArrived.Swap(0), r.winServed.Swap(0)
}

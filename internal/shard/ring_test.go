package shard

import (
	"sync"
	"testing"

	"lira/internal/cqserver"
	"lira/internal/geo"
	"lira/internal/motion"
	"lira/internal/queue"
)

func ent(node int, seq int64) entry {
	return entry{u: cqserver.Update{Node: node}, seq: seq}
}

func TestRingFIFO(t *testing.T) {
	r := NewRing(4)
	if r.Cap() != 4 {
		t.Fatalf("Cap = %d, want 4", r.Cap())
	}
	for i := 0; i < 4; i++ {
		if !r.Offer(ent(i, int64(i))) {
			t.Fatalf("Offer %d failed below capacity", i)
		}
	}
	if r.Offer(ent(4, 4)) {
		t.Fatal("Offer succeeded on full ring")
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	for i := 0; i < 4; i++ {
		e, ok := r.Poll()
		if !ok || e.u.Node != i {
			t.Fatalf("Poll %d = (%v, %v), want node %d", i, e.u.Node, ok, i)
		}
	}
	if _, ok := r.Poll(); ok {
		t.Fatal("Poll succeeded on empty ring")
	}
	if a, d, s := r.Arrived(), r.Dropped(), r.Served(); a != 5 || d != 1 || s != 4 {
		t.Fatalf("counters arrived=%d dropped=%d served=%d, want 5/1/4", a, d, s)
	}
}

func TestRingNonPow2Capacity(t *testing.T) {
	// Logical capacity 3 over a 4-slot array: the logical bound, not the
	// slot count, must gate admission.
	r := NewRing(3)
	for i := 0; i < 3; i++ {
		if !r.Offer(ent(i, int64(i))) {
			t.Fatalf("Offer %d failed", i)
		}
	}
	if r.Offer(ent(3, 3)) {
		t.Fatal("Offer exceeded logical capacity")
	}
	if shed := r.OfferShedOldest(ent(4, 4)); !shed {
		t.Fatal("OfferShedOldest on full ring must shed")
	}
	want := []int{1, 2, 4}
	for i, w := range want {
		e, ok := r.Poll()
		if !ok || e.u.Node != w {
			t.Fatalf("Poll %d = (%v, %v), want %d", i, e.u.Node, ok, w)
		}
	}
}

// TestRingShedOldestMatchesBounded pins the K=1 overflow-equality claim:
// the same offer/poll trace through a Ring and a queue.Bounded must agree
// on admissions, drain order, and every counter.
func TestRingShedOldestMatchesBounded(t *testing.T) {
	const b = 8
	r := NewRing(b)
	q := queue.NewBounded[cqserver.Update](b)
	rep := func(i int) motion.Report {
		return motion.Report{Pos: geo.Point{X: float64(i), Y: 1}, Time: float64(i)}
	}
	step := 0
	for round := 0; round < 50; round++ {
		// Offer a burst larger than the bound, then drain part of it.
		for i := 0; i < b+3; i++ {
			u := cqserver.Update{Node: step, Report: rep(step)}
			step++
			rs := r.OfferShedOldest(entry{u: u, seq: int64(step)})
			qs := q.OfferShedOldest(u)
			if rs != qs {
				t.Fatalf("round %d offer %d: ring shed=%v, bounded shed=%v", round, i, rs, qs)
			}
		}
		for i := 0; i < b/2; i++ {
			re, rok := r.Poll()
			qe, qok := q.Poll()
			if rok != qok || (rok && re.u.Node != qe.Node) {
				t.Fatalf("round %d poll %d: ring (%v,%v) vs bounded (%v,%v)",
					round, i, re.u.Node, rok, qe.Node, qok)
			}
		}
		if r.Len() != q.Len() {
			t.Fatalf("round %d: ring len %d vs bounded len %d", round, r.Len(), q.Len())
		}
	}
	if r.Arrived() != q.Arrived() || r.Dropped() != q.Dropped() || r.Served() != q.Served() {
		t.Fatalf("counters diverged: ring %d/%d/%d vs bounded %d/%d/%d",
			r.Arrived(), r.Dropped(), r.Served(), q.Arrived(), q.Dropped(), q.Served())
	}
}

// TestRingLambdaSingleCount is the double-count regression test for
// THROTLOOP's λ estimate: an update that triggers shedding — potentially
// looping internally — must contribute exactly one windowed arrival, and
// shed victims must contribute drops, never arrivals or services. A
// shed-oldest path that re-counted arrivals per internal hop would
// inflate λ on exactly the overloaded shards THROTLOOP is trying to
// stabilize, driving z below the true operating point.
func TestRingLambdaSingleCount(t *testing.T) {
	const b, offers = 4, 100
	r := NewRing(b)
	for i := 0; i < offers; i++ {
		r.OfferShedOldest(ent(i, int64(i)))
	}
	arrived, served := r.takeWindow()
	if arrived != offers {
		t.Fatalf("windowed arrivals = %d, want %d (one per offered update)", arrived, offers)
	}
	if served != 0 {
		t.Fatalf("windowed services = %d, want 0 (sheds are not services)", served)
	}
	if r.Dropped() != offers-b {
		t.Fatalf("dropped = %d, want %d", r.Dropped(), offers-b)
	}
	// Conservation at quiescence: every arrival was shed or is queued.
	if got := r.Dropped() + int64(r.Len()); got != offers {
		t.Fatalf("dropped + len = %d, want %d", got, offers)
	}
}

// TestServerLambdaSingleCount runs the same audit end to end: updates
// funnelled through Server.IngestShedOldest count one arrival each in the
// summed Rates window no matter how many sheds they cause or which shard
// they land on.
func TestServerLambdaSingleCount(t *testing.T) {
	s := testSharded(t, 4, func(c *Config) { c.Core.QueueSize = 8 })
	const offers = 200
	for i := 0; i < offers; i++ {
		x := float64(i%100) * 10 // spread across shards
		s.IngestShedOldest(cqserver.Update{
			Node:   i % 100,
			Report: motion.Report{Pos: geo.Point{X: x, Y: 500}, Time: float64(i)},
		})
	}
	s.ObserveBusy(1)
	lambda, _ := s.Rates(1)
	if lambda != offers {
		t.Fatalf("summed λ = %v, want %v (one arrival per ingested update)", lambda, offers)
	}
	if got := s.Dropped() + int64(s.QueueLen()); got != offers {
		t.Fatalf("dropped + queued = %d, want %d", got, offers)
	}
}

func TestRingConcurrent(t *testing.T) {
	const producers, perProducer = 4, 2000
	r := NewRing(64)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if i%2 == 0 {
					r.Offer(ent(p, int64(i)))
				} else {
					r.OfferShedOldest(ent(p, int64(i)))
				}
			}
		}(p)
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	var consumed int64
	go func() {
		defer close(done)
		for {
			if _, ok := r.Poll(); ok {
				consumed++
				continue
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-done
	// Producers are quiescent; drain whatever the concurrent consumer left.
	for {
		if _, ok := r.Poll(); !ok {
			break
		}
		consumed++
	}
	if r.Arrived() != producers*perProducer {
		t.Fatalf("arrived = %d, want %d", r.Arrived(), producers*perProducer)
	}
	if got := r.Served() + r.Dropped(); got != producers*perProducer {
		t.Fatalf("served+dropped = %d, want %d (conservation)", got, producers*perProducer)
	}
	if consumed != r.Served() {
		t.Fatalf("consumer saw %d entries, ring served %d", consumed, r.Served())
	}
}

package shard

import (
	"math"
	"testing"

	"lira/internal/cqserver"
	"lira/internal/geo"
	"lira/internal/motion"
	"lira/internal/rng"
)

// workload is a deterministic mobile-node simulation shared by the
// differential runs: nodes bounce around the space, emitting position
// reports with per-tick probability.
type workload struct {
	r        *rng.Rand
	pos      []geo.Point
	vel      []geo.Vector
	speeds   []float64
	nodes    int
	reportsP float64
}

func newWorkload(seed uint64, nodes int) *workload {
	w := &workload{
		r:        rng.New(seed),
		pos:      make([]geo.Point, nodes),
		vel:      make([]geo.Vector, nodes),
		speeds:   make([]float64, nodes),
		nodes:    nodes,
		reportsP: 0.4,
	}
	sp := space()
	for i := 0; i < nodes; i++ {
		w.pos[i] = geo.Point{X: w.r.Range(sp.MinX, sp.MaxX), Y: w.r.Range(sp.MinY, sp.MaxY)}
		w.vel[i] = geo.Vector{X: w.r.Range(-40, 40), Y: w.r.Range(-40, 40)}
		w.speeds[i] = math.Hypot(w.vel[i].X, w.vel[i].Y)
	}
	return w
}

// step advances all nodes by dt (bouncing off walls) and returns the
// updates emitted this tick.
func (w *workload) step(t, dt float64) []cqserver.Update {
	sp := space()
	var ups []cqserver.Update
	for i := 0; i < w.nodes; i++ {
		w.pos[i].X += w.vel[i].X * dt
		w.pos[i].Y += w.vel[i].Y * dt
		if w.pos[i].X < sp.MinX || w.pos[i].X > sp.MaxX {
			w.vel[i].X = -w.vel[i].X
			w.pos[i].X += 2 * w.vel[i].X * dt
		}
		if w.pos[i].Y < sp.MinY || w.pos[i].Y > sp.MaxY {
			w.vel[i].Y = -w.vel[i].Y
			w.pos[i].Y += 2 * w.vel[i].Y * dt
		}
		w.pos[i] = sp.ClampPoint(w.pos[i])
		w.speeds[i] = math.Hypot(w.vel[i].X, w.vel[i].Y)
		if w.r.Bool(w.reportsP) {
			ups = append(ups, cqserver.Update{
				Node:   i,
				Report: motion.Report{Pos: w.pos[i], Vel: w.vel[i], Time: t},
			})
		}
	}
	return ups
}

// testQueries mixes shard-friendly and shard-hostile shapes: the full
// space, rects spanning several shard bands, a rect aligned exactly on a
// K=4 boundary, and random boxes.
func testQueries(r *rng.Rand) []geo.Rect {
	sp := space()
	qs := []geo.Rect{
		sp,
		{MinX: 100, MinY: 100, MaxX: 900, MaxY: 300},
		{MinX: 250, MinY: 0, MaxX: 500, MaxY: 1000},  // exact shard-1 band at K=4
		{MinX: 499, MinY: 400, MaxX: 501, MaxY: 600}, // straddles the K=2 boundary
	}
	for i := 0; i < 6; i++ {
		x0, y0 := r.Range(sp.MinX, sp.MaxX), r.Range(sp.MinY, sp.MaxY)
		qs = append(qs, geo.Rect{
			MinX: x0, MinY: y0,
			MaxX: math.Min(sp.MaxX, x0+r.Range(20, 400)),
			MaxY: math.Min(sp.MaxY, y0+r.Range(20, 400)),
		})
	}
	return qs
}

func equalResults(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestDifferentialMatrix is the tentpole equivalence test: for every
// (seed, K) cell, the sharded server must report byte-identical query
// results, the identical THROTLOOP z, and (speed factor off) bit-identical
// GREEDYINCREMENT Δᵢ to the unsharded reference over the same
// no-overflow ingest sequence.
func TestDifferentialMatrix(t *testing.T) {
	const (
		nodes  = 120
		ticks  = 25
		dt     = 1.0
		window = ticks * dt
	)
	for _, seed := range []uint64{1, 2, 3} {
		for _, k := range []int{1, 2, 4, 8} {
			ref, err := cqserver.New(cqserver.Config{
				Space: space(), Nodes: nodes, L: 13,
				Curve: baseConfig().Core.Curve, QueueSize: 100000,
			})
			if err != nil {
				t.Fatal(err)
			}
			sh := testSharded(t, k, func(c *Config) {
				c.Core.Nodes = nodes
				c.Core.QueueSize = 100000
			})
			qs := testQueries(rng.New(seed).Split(99))
			ref.RegisterQueries(qs)
			sh.RegisterQueries(qs)
			w := newWorkload(seed, nodes)
			for tick := 1; tick <= ticks; tick++ {
				now := float64(tick) * dt
				for _, u := range w.step(now, dt) {
					if !ref.Ingest(u) || !sh.Ingest(u) {
						t.Fatalf("seed %d K=%d: overflow in no-overflow regime", seed, k)
					}
				}
				ref.Drain(-1)
				sh.Drain(-1)
				ref.ObserveStatistics(w.pos, w.speeds)
				sh.ObserveStatistics(w.pos, w.speeds)
				ref.Queue().ObserveBusy(0.5)
				sh.ObserveBusy(0.5)
				rr := ref.Evaluate(now)
				sr := sh.Evaluate(now)
				if !equalResults(rr, sr) {
					t.Fatalf("seed %d K=%d tick %d: query results diverged", seed, k, tick)
				}
			}
			ra, err := ref.AdaptAuto(window)
			if err != nil {
				t.Fatal(err)
			}
			sa, err := sh.AdaptAuto(window)
			if err != nil {
				t.Fatal(err)
			}
			if ra.Z != sa.Z {
				t.Fatalf("seed %d K=%d: z diverged: ref %v, sharded %v", seed, k, ra.Z, sa.Z)
			}
			if len(ra.Deltas) != len(sa.Deltas) {
				t.Fatalf("seed %d K=%d: region count diverged: %d vs %d",
					seed, k, len(ra.Deltas), len(sa.Deltas))
			}
			for i := range ra.Deltas {
				if ra.Deltas[i] != sa.Deltas[i] {
					t.Fatalf("seed %d K=%d: Δ[%d] diverged: ref %v, sharded %v",
						seed, k, i, ra.Deltas[i], sa.Deltas[i])
				}
			}
			if ra.BudgetMet != sa.BudgetMet {
				t.Fatalf("seed %d K=%d: BudgetMet diverged", seed, k)
			}
		}
	}
}

// TestSeedStability pins run-to-run determinism at K>1: two full drives
// of the same seed produce identical per-tick results and adaptations.
func TestSeedStability(t *testing.T) {
	const nodes, ticks = 120, 20
	run := func() ([][][]int, []float64, float64) {
		sh := testSharded(t, 4, func(c *Config) {
			c.Core.Nodes = nodes
			c.Core.QueueSize = 100000
		})
		sh.RegisterQueries(testQueries(rng.New(7).Split(99)))
		w := newWorkload(7, nodes)
		var history [][][]int
		for tick := 1; tick <= ticks; tick++ {
			now := float64(tick)
			for _, u := range w.step(now, 1) {
				sh.Ingest(u)
			}
			sh.Drain(-1)
			sh.ObserveStatistics(w.pos, w.speeds)
			sh.ObserveBusy(0.5)
			res := sh.Evaluate(now)
			snap := make([][]int, len(res))
			for i, ids := range res {
				snap[i] = append([]int(nil), ids...)
			}
			history = append(history, snap)
		}
		a, err := sh.AdaptAuto(float64(ticks))
		if err != nil {
			t.Fatal(err)
		}
		return history, append([]float64(nil), a.Deltas...), a.Z
	}
	h1, d1, z1 := run()
	h2, d2, z2 := run()
	if z1 != z2 {
		t.Fatalf("z diverged between runs: %v vs %v", z1, z2)
	}
	for tick := range h1 {
		if !equalResults(h1[tick], h2[tick]) {
			t.Fatalf("tick %d: results diverged between identical runs", tick+1)
		}
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("Δ[%d] diverged between identical runs: %v vs %v", i, d1[i], d2[i])
		}
	}
}

// TestOverflowEqualityK1 pins the K=1 overflow claim: under shed-oldest
// pressure the single-ring server admits, sheds, and applies exactly the
// updates queue.Bounded would, ending in the same table state and query
// results as the unsharded server fed through its own shed-oldest path.
func TestOverflowEqualityK1(t *testing.T) {
	const nodes, ticks, b = 120, 25, 16
	ref, err := cqserver.New(cqserver.Config{
		Space: space(), Nodes: nodes, L: 13,
		Curve: baseConfig().Core.Curve, QueueSize: b,
	})
	if err != nil {
		t.Fatal(err)
	}
	sh := testSharded(t, 1, func(c *Config) {
		c.Core.Nodes = nodes
		c.Core.QueueSize = b
	})
	qs := testQueries(rng.New(5).Split(99))
	ref.RegisterQueries(qs)
	sh.RegisterQueries(qs)
	w := newWorkload(5, nodes)
	for tick := 1; tick <= ticks; tick++ {
		now := float64(tick)
		for _, u := range w.step(now, 1) {
			ref.Queue().OfferShedOldest(u)
			sh.IngestShedOldest(u)
		}
		// Drain only part of the backlog so the queues stay saturated.
		ref.Drain(b / 2)
		sh.Drain(b / 2)
		if ref.Queue().Len() != sh.QueueLen() {
			t.Fatalf("tick %d: queue length diverged: ref %d, sharded %d",
				tick, ref.Queue().Len(), sh.QueueLen())
		}
		if !equalResults(ref.Evaluate(now), sh.Evaluate(now)) {
			t.Fatalf("tick %d: results diverged under overflow", tick)
		}
	}
	if ref.Queue().Dropped() != sh.Dropped() {
		t.Fatalf("drop accounting diverged: ref %d, sharded %d",
			ref.Queue().Dropped(), sh.Dropped())
	}
	if ref.Queue().Arrived() != sh.Arrived() {
		t.Fatalf("arrival accounting diverged: ref %d, sharded %d",
			ref.Queue().Arrived(), sh.Arrived())
	}
	if ref.Applied() != sh.Applied() {
		t.Fatalf("applied diverged: ref %d, sharded %d", ref.Applied(), sh.Applied())
	}
}

package shard

import (
	"fmt"

	"lira/internal/geo"
)

// Geometry partitions the monitored space into K shard cells. Cells are
// contiguous vertical bands of statistics-grid columns, so every shard
// boundary coincides with an α×α grid-cell boundary: each statistics
// cell — and therefore each GRIDREDUCE quad-tree leaf — belongs wholly
// to one shard, which is what makes the per-shard statistics grids merge
// exactly (statgrid.MergeObservations) and keeps GRIDREDUCE's region
// math untouched by sharding.
//
// Geometry is immutable after construction and safe for concurrent use.
type Geometry struct {
	space geo.Rect
	alpha int
	k     int

	// colShard maps a statistics-grid column to its shard; colStart[s] is
	// the first column of shard s (len k+1, colStart[k] == alpha).
	colShard []int32
	colStart []int
	cells    []geo.Rect
}

// NewGeometry returns a K-way sharding of space aligned to an alpha×alpha
// statistics grid. K must be in [1, alpha]; columns are distributed as
// evenly as ⌊alpha·s/K⌋ boundaries allow, a pure function of (alpha, K).
func NewGeometry(space geo.Rect, alpha, k int) (*Geometry, error) {
	if space.Empty() {
		return nil, fmt.Errorf("shard: empty space")
	}
	if alpha <= 0 {
		return nil, fmt.Errorf("shard: non-positive alpha %d", alpha)
	}
	if k <= 0 || k > alpha {
		return nil, fmt.Errorf("shard: shard count %d outside [1, alpha=%d]", k, alpha)
	}
	g := &Geometry{
		space:    space,
		alpha:    alpha,
		k:        k,
		colShard: make([]int32, alpha),
		colStart: make([]int, k+1),
		cells:    make([]geo.Rect, k),
	}
	for s := 0; s <= k; s++ {
		g.colStart[s] = alpha * s / k
	}
	w := space.Width() / float64(alpha)
	for s := 0; s < k; s++ {
		for c := g.colStart[s]; c < g.colStart[s+1]; c++ {
			g.colShard[c] = int32(s)
		}
		minX := space.MinX + float64(g.colStart[s])*w
		maxX := space.MinX + float64(g.colStart[s+1])*w
		if s == k-1 {
			maxX = space.MaxX // absorb float error at the far edge
		}
		g.cells[s] = geo.Rect{MinX: minX, MinY: space.MinY, MaxX: maxX, MaxY: space.MaxY}
	}
	return g, nil
}

// K returns the shard count.
func (g *Geometry) K() int { return g.k }

// Space returns the monitored space.
func (g *Geometry) Space() geo.Rect { return g.space }

// Cell returns shard s's cell. Cells tile the space exactly: every point
// of the space belongs to exactly one shard under ShardFor.
func (g *Geometry) Cell(s int) geo.Rect { return g.cells[s] }

// ShardFor returns the shard owning point p. Ownership is defined by the
// very boundary coordinates the cells are built from — the largest s with
// Cell(s).MinX ≤ p.X — never by a re-derived column computation, so a
// point always lies inside its owning cell under closed containment and
// fragment clipping can never miss a boundary node to float rounding.
// Points outside the space are clamped to the border shards, mirroring
// the statistics grid's own clamping, so routing never fails.
func (g *Geometry) ShardFor(p geo.Point) int {
	lo, hi := 0, g.k-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if g.cells[mid].MinX <= p.X {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// Fragment clips rect to shard s's cell under closed intersection:
// degenerate fragments (zero width or height) are kept when rect touches
// the cell exactly on a boundary, because closed-containment evaluation
// — the convention of every LIRA index — can still match nodes sitting
// on that boundary. The second result is false when rect and the cell do
// not even touch.
func (g *Geometry) Fragment(s int, rect geo.Rect) (geo.Rect, bool) {
	c := g.cells[s]
	f := geo.Rect{
		MinX: maxF(rect.MinX, c.MinX),
		MinY: maxF(rect.MinY, c.MinY),
		MaxX: minF(rect.MaxX, c.MaxX),
		MaxY: minF(rect.MaxY, c.MaxY),
	}
	if f.MinX > f.MaxX || f.MinY > f.MaxY {
		return geo.Rect{}, false
	}
	return f, true
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

package shard

import (
	"fmt"

	"lira/internal/telemetry"
)

// shardTelemetry holds the sharded server's pre-resolved metric pointers,
// mirroring cqserver's scheme: hot paths pay one nil check plus one
// atomic per event, never a registry lookup. The global metrics reuse the
// cqserver metric names (one engine owns a hub, so there is no
// collision); per-shard gauges carry the shard index in the metric name
// because the registry is deliberately label-free. Nil when no Hub is
// configured.
type shardTelemetry struct {
	hub *telemetry.Hub

	evalHist    *telemetry.Histogram // lira_evaluate_seconds
	predictHist *telemetry.Histogram // lira_evaluate_predict_seconds
	scanHist    *telemetry.Histogram // lira_evaluate_scan_seconds

	queueDepth  *telemetry.Gauge // lira_queue_depth (summed over rings)
	gridNodes   *telemetry.Gauge // lira_statgrid_nodes (summed over shards)
	gridQueries *telemetry.Gauge // lira_statgrid_queries (summed over shards)

	dropped       *telemetry.Counter // lira_queue_dropped_total
	applied       *telemetry.Counter // lira_updates_applied_total
	evals         *telemetry.Counter // lira_evaluations_total
	degradedEvals *telemetry.Counter // lira_evaluate_degraded_total
	migrations    *telemetry.Counter // lira_shard_migrations_total
	compactions   *telemetry.Counter // lira_shard_compactions_total

	// Per-shard gauges, indexed by shard: lira_shard<N>_…
	shardDepth     []*telemetry.Gauge // ring length
	shardResidents []*telemetry.Gauge // resident count
	shardNodes     []*telemetry.Gauge // statistics-grid node mass
}

func newShardTelemetry(hub *telemetry.Hub, k int) *shardTelemetry {
	if hub == nil {
		return nil
	}
	r := hub.Registry
	t := &shardTelemetry{
		hub:            hub,
		evalHist:       r.Histogram("lira_evaluate_seconds", nil),
		predictHist:    r.Histogram("lira_evaluate_predict_seconds", nil),
		scanHist:       r.Histogram("lira_evaluate_scan_seconds", nil),
		queueDepth:     r.Gauge("lira_queue_depth"),
		gridNodes:      r.Gauge("lira_statgrid_nodes"),
		gridQueries:    r.Gauge("lira_statgrid_queries"),
		dropped:        r.Counter("lira_queue_dropped_total"),
		applied:        r.Counter("lira_updates_applied_total"),
		evals:          r.Counter("lira_evaluations_total"),
		degradedEvals:  r.Counter("lira_evaluate_degraded_total"),
		migrations:     r.Counter("lira_shard_migrations_total"),
		compactions:    r.Counter("lira_shard_compactions_total"),
		shardDepth:     make([]*telemetry.Gauge, k),
		shardResidents: make([]*telemetry.Gauge, k),
		shardNodes:     make([]*telemetry.Gauge, k),
	}
	for i := 0; i < k; i++ {
		t.shardDepth[i] = r.Gauge(fmt.Sprintf("lira_shard%d_queue_depth", i))
		t.shardResidents[i] = r.Gauge(fmt.Sprintf("lira_shard%d_residents", i))
		t.shardNodes[i] = r.Gauge(fmt.Sprintf("lira_shard%d_statgrid_nodes", i))
	}
	return t
}

package telemetry

import (
	"encoding/json"
	"io"
	"math"
	"sync"
)

// Kind tags one decision-journal record.
type Kind string

// The journal record kinds, one per control-loop actor.
const (
	// KindThrotloop is one THROTLOOP observation: the controller read
	// utilization ρ and set the throttle fraction z for a queue of size B.
	KindThrotloop Kind = "throtloop"
	// KindRepartition is one GRIDREDUCE run: the space was re-partitioned
	// into shedding regions by accuracy-gain drill-down.
	KindRepartition Kind = "repartition"
	// KindAssign is one GREEDYINCREMENT run: the per-region throttlers Δᵢ
	// were (re)assigned.
	KindAssign Kind = "assign"
	// KindNet is one deployment-layer degradation event (disconnect,
	// reconnect, panic isolation, reconnect give-up).
	KindNet Kind = "net"
	// KindAdmission is one admission-control tick: the sampled health
	// signals and the degradation-ladder state they produced.
	KindAdmission Kind = "admission"
	// KindSLO is one service-level-objective burn observation: an SLO's
	// multi-window burn rates and alert state (recorded on alert
	// transitions and on a sparse heartbeat, never every tick).
	KindSLO Kind = "slo"
)

// ThrotloopEvent records one feedback-controller observation (ρ, z, B).
type ThrotloopEvent struct {
	Rho float64 `json:"rho"`
	Z   float64 `json:"z"`
	B   int     `json:"b"`
}

// RepartitionEvent records one GRIDREDUCE repartition: the resulting
// region count and the drill-down decisions behind it.
type RepartitionEvent struct {
	Z       float64 `json:"z"`
	Regions int     `json:"regions"`
	// SplitsTaken counts accuracy-gain drill-downs taken (regions split
	// into four); SplitsRejected counts drill-downs rejected because the
	// popped region was an unsplittable grid-cell leaf; ProtectSplits
	// counts splits spent by the query-protection extension.
	SplitsTaken    int `json:"splits_taken"`
	SplitsRejected int `json:"splits_rejected"`
	ProtectSplits  int `json:"protect_splits,omitempty"`
}

// AssignEvent records one GREEDYINCREMENT assignment: the per-region
// throttlers, their final update gains, and the fairness activity.
type AssignEvent struct {
	Z       float64 `json:"z"`
	Regions int     `json:"regions"`
	// Deltas is the assigned throttler Δᵢ per region; Gains the final
	// update gain Sᵢ = (nᵢ/mᵢ)·sᵢ·r(Δᵢ) at the assigned Δᵢ (query-free
	// regions report +Inf, capped to math.MaxFloat64 in JSON output).
	Deltas []float64 `json:"deltas"`
	Gains  []float64 `json:"gains,omitempty"`
	// FairnessClamps counts greedy steps parked at the fairness limit Δ⇔.
	FairnessClamps int  `json:"fairness_clamps"`
	BudgetMet      bool `json:"budget_met"`
}

// NetEvent records one deployment-layer degradation event.
type NetEvent struct {
	// Event is one of "disconnect", "reconnect", "give-up", "panic".
	Event string `json:"event"`
	// Peer identifies the affected endpoint ("node-3", "query", "conn").
	Peer string `json:"peer,omitempty"`
	// Node is the mobile-node id when one is known, else -1.
	Node int64 `json:"node"`
	// Detail carries a short cause ("deadline", "read", "partition").
	Detail string `json:"detail,omitempty"`
}

// AdmissionEvent records one admission-control tick: the per-tick health
// signal vector and the ladder state after the hysteresis-damped walk.
// From is set only on transitions (the rung just left); Demanded is the
// rung the raw signals asked for before damping.
type AdmissionEvent struct {
	State    string `json:"state"`
	From     string `json:"from,omitempty"`
	Demanded string `json:"demanded"`

	QueueFrac  float64 `json:"queue_frac"`
	Goroutines float64 `json:"goroutines"`
	EvalP99    float64 `json:"eval_p99"`
	GCPause    float64 `json:"gc_pause"`
	// ZCap is the effective throttle-fraction ceiling the rung imposes
	// (1 at healthy, the configured floor at critical).
	ZCap float64 `json:"z_cap"`
}

// SLOEvent records one SLO burn observation: the measured value against
// its target, the short- and long-window burn rates (error-budget
// consumption speed: 1.0 = exactly on budget), and whether the
// multi-window alert is firing.
type SLOEvent struct {
	Name string `json:"name"`
	// Value is the sampled indicator; Target its configured bound; Good
	// whether this tick met the objective.
	Value  float64 `json:"value"`
	Target float64 `json:"target"`
	Good   bool    `json:"good"`
	// BurnShort/BurnLong are the burn rates over the two windows;
	// Alerting is the multi-window verdict (both windows over threshold).
	BurnShort float64 `json:"burn_short"`
	BurnLong  float64 `json:"burn_long"`
	Alerting  bool    `json:"alerting"`
}

// Record is one journal entry. Exactly one of the event pointers is
// non-nil, selected by Kind. Seq is assigned by the journal; Tick is the
// simulation time of the decision (never wall clock in simulation mode).
type Record struct {
	Seq  uint64  `json:"seq"`
	Tick float64 `json:"tick"`
	Kind Kind    `json:"kind"`

	Throtloop   *ThrotloopEvent   `json:"throtloop,omitempty"`
	Repartition *RepartitionEvent `json:"repartition,omitempty"`
	Assign      *AssignEvent      `json:"assign,omitempty"`
	Net         *NetEvent         `json:"net,omitempty"`
	Admission   *AdmissionEvent   `json:"admission,omitempty"`
	SLO         *SLOEvent         `json:"slo,omitempty"`
}

// Journal is a bounded in-memory ring of decision records with an
// optional JSONL sink. Appends are goroutine-safe; when the ring is full
// the oldest record is evicted (the sink, if set, has already persisted
// it).
type Journal struct {
	mu      sync.Mutex
	buf     []Record
	start   int
	size    int
	seq     uint64
	sink    io.Writer
	sinkErr error
}

// NewJournal returns a journal retaining the last capacity records
// in memory (<= 0 selects 1024).
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Journal{buf: make([]Record, capacity)}
}

// SetSink directs every subsequent record to w as one JSON object per
// line, in append order. The journal serializes writes; w need not be
// goroutine-safe. The first write error is retained (Err) and disables
// the sink.
func (j *Journal) SetSink(w io.Writer) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.sink = w
	j.sinkErr = nil
}

// Err returns the first sink write error, if any.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.sinkErr
}

// Append assigns the record a sequence number and stores it. Slices
// inside the record are not copied; callers must not mutate them after
// appending.
func (j *Journal) Append(rec Record) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seq++
	rec.Seq = j.seq
	if j.size < len(j.buf) {
		j.buf[(j.start+j.size)%len(j.buf)] = rec
		j.size++
	} else {
		j.buf[j.start] = rec
		j.start = (j.start + 1) % len(j.buf)
	}
	if j.sink != nil && j.sinkErr == nil {
		data, err := json.Marshal(rec)
		if err == nil {
			_, err = j.sink.Write(append(data, '\n'))
		}
		if err != nil {
			j.sinkErr = err
			j.sink = nil
		}
	}
}

// MarshalJSON serializes the record, capping the non-finite update gains
// of query-free regions (Sᵢ = +Inf) to math.MaxFloat64 so the output is
// JSON-legal. The capping is value-preserving for ordering: +Inf gains
// still compare above every finite gain.
func (r Record) MarshalJSON() ([]byte, error) {
	if r.Assign != nil && hasNonFinite(r.Assign.Gains) {
		a := *r.Assign
		gains := make([]float64, len(a.Gains))
		for i, g := range a.Gains {
			switch {
			case math.IsInf(g, 1) || g > math.MaxFloat64:
				g = math.MaxFloat64
			case math.IsInf(g, -1):
				g = -math.MaxFloat64
			case math.IsNaN(g):
				g = 0
			}
			gains[i] = g
		}
		a.Gains = gains
		r.Assign = &a
	}
	type plain Record // drops the MarshalJSON method
	return json.Marshal(plain(r))
}

func hasNonFinite(vs []float64) bool {
	for _, v := range vs {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			return true
		}
	}
	return false
}

// Len returns the number of retained records.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.size
}

// Seq returns the sequence number of the most recent record (0 before
// the first append) — i.e. the total number of records ever appended.
func (j *Journal) Seq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Tail returns the most recent n records, oldest first. n <= 0 or n
// larger than the retained count returns everything retained.
func (j *Journal) Tail(n int) []Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	if n <= 0 || n > j.size {
		n = j.size
	}
	out := make([]Record, n)
	for i := 0; i < n; i++ {
		out[i] = j.buf[(j.start+j.size-n+i)%len(j.buf)]
	}
	return out
}

// CountKind returns how many retained records have the given kind.
func (j *Journal) CountKind(k Kind) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	n := 0
	for i := 0; i < j.size; i++ {
		if j.buf[(j.start+i)%len(j.buf)].Kind == k {
			n++
		}
	}
	return n
}

package telemetry

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"lira/internal/spans"
)

// TestDebugHandlerTailParsing pins the ?tail= override semantics: valid
// values replace the configured default, zero selects the whole retained
// journal (the Snapshot convention), and everything malformed — negative,
// non-numeric, or large enough to overflow int — falls back to the
// default instead of erroring or wrapping. Oversized values clamp to
// maxTail, which still returns the full (smaller) journal here.
func TestDebugHandlerTailParsing(t *testing.T) {
	h := NewHub(32)
	const stored = 10
	for i := 0; i < stored; i++ {
		h.Record(Record{Kind: KindThrotloop, Throtloop: &ThrotloopEvent{Rho: float64(i)}})
	}
	const def = 3
	handler := DebugHandler(h, nil, def)

	cases := []struct {
		query string
		want  int
	}{
		{"", def},
		{"?tail=1", 1},
		{"?tail=7", 7},
		{"?tail=0", stored}, // <= 0 at the snapshot layer means "all"
		{"?tail=-4", def},   // negative: rejected, default kept
		{"?tail=abc", def},
		{"?tail=99999999999999999999999", def}, // overflows int: Atoi rejects
		{"?tail=1000000", stored},              // clamps to maxTail, journal is smaller
		{"?tail=" + "65537", stored},           // one past the clamp
		{"?tail=" + "00000000000000000007", 7}, // leading zeros still parse
	}
	for _, c := range cases {
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/lira"+c.query, nil))
		if rec.Code != 200 {
			t.Errorf("%q: status %d", c.query, rec.Code)
			continue
		}
		var payload struct {
			Journal []Record `json:"journal"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
			t.Errorf("%q: body not JSON: %v", c.query, err)
			continue
		}
		if len(payload.Journal) != c.want {
			t.Errorf("%q: journal tail = %d records, want %d", c.query, len(payload.Journal), c.want)
		}
	}
}

// TestSpansHandler pins the arming contract: without an attached tracer
// the endpoint answers 404 (so scrapers can tell "tracing off" from "no
// spans yet"), and with one it serves parseable Chrome trace-event JSON.
func TestSpansHandler(t *testing.T) {
	h := NewHub(0)
	mux := NewMux(h, nil, false)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/lira/spans", nil))
	if rec.Code != 404 || !strings.Contains(rec.Body.String(), "span tracing not enabled") {
		t.Fatalf("unarmed: %d %q", rec.Code, rec.Body.String())
	}

	tr := spans.New(spans.Config{Seed: 7})
	h.SetSpans(tr)
	root := tr.Start("tick", "netsvc")
	root.Child("drain", "netsvc").Num("applied", 3).End()
	root.End()

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/lira/spans", nil))
	if rec.Code != 200 {
		t.Fatalf("armed: status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("trace not JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Errorf("traceEvents = %d, want 2", len(doc.TraceEvents))
	}

	// Detaching disarms the endpoint again.
	h.SetSpans(nil)
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/lira/spans", nil))
	if rec.Code != 404 {
		t.Errorf("detached: status %d, want 404", rec.Code)
	}
}

// TestHubSnapshotConcurrentJournal drives Snapshot and WritePrometheus
// from reader goroutines while writers append journal records and bump
// registry metrics. Run under -race this pins the lock discipline of the
// snapshot path; the final sequence number checks nothing was lost.
func TestHubSnapshotConcurrentJournal(t *testing.T) {
	h := NewHub(64)
	h.SetClock(func() float64 { return 1 })
	const writers, perW = 4, 500
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := h.Snapshot(8)
				if len(s.Journal) > 8 {
					t.Errorf("snapshot tail = %d records, want <= 8", len(s.Journal))
					return
				}
				_ = h.WritePrometheus(io.Discard)
			}
		}()
	}
	var ww sync.WaitGroup
	for g := 0; g < writers; g++ {
		ww.Add(1)
		go func() {
			defer ww.Done()
			c := h.Registry.Counter("lira_snap_test_total")
			for i := 0; i < perW; i++ {
				h.Record(Record{Kind: KindThrotloop, Throtloop: &ThrotloopEvent{Rho: float64(i)}})
				c.Inc()
			}
		}()
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	if got := h.Journal.Seq(); got != writers*perW {
		t.Errorf("journal seq = %d, want %d", got, writers*perW)
	}
	if got := h.Registry.Counter("lira_snap_test_total").Value(); got != writers*perW {
		t.Errorf("counter = %d, want %d", got, writers*perW)
	}
}

// TestEscapeLabel pins the exposition-format escaping rules for label
// values: backslash, double-quote, and newline are backslash-escaped,
// and clean strings pass through without copying.
func TestEscapeLabel(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},
		{"0.25", "0.25"},
		{"+Inf", "+Inf"},
		{`back\slash`, `back\\slash`},
		{`qu"ote`, `qu\"ote`},
		{"new\nline", `new\nline`},
		{"\\\"\n", `\\\"\n`},
		{`a\b"c` + "\n" + "d", `a\\b\"c\nd`},
	}
	for _, c := range cases {
		if got := escapeLabel(c.in); got != c.want {
			t.Errorf("escapeLabel(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	// A value that escapes must survive a round trip through the
	// exposition encoder's quoting convention (JSON-compatible here).
	var buf bytes.Buffer
	buf.WriteByte('"')
	buf.WriteString(escapeLabel(`le"1\2` + "\n"))
	buf.WriteByte('"')
	var back string
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("escaped label not parseable: %v (%s)", err, buf.String())
	}
	if back != `le"1\2`+"\n" {
		t.Errorf("round trip = %q", back)
	}
}

package telemetry

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"lira/internal/metrics"
	"lira/internal/spans"
)

// Hub bundles one Registry and one Journal with the simulation clock they
// stamp records from, and bridges the deployment layer's metrics.NetCounters
// so a single Snapshot call returns net and shedding counters coherently.
//
// A nil *Hub is valid everywhere a Hub is accepted: instrumented components
// check for nil once and skip telemetry entirely, keeping the disabled cost
// at one predictable branch.
type Hub struct {
	Registry *Registry
	Journal  *Journal

	mu    sync.RWMutex
	clock func() float64
	nc    *metrics.NetCounters

	// tracer is the optional span tracer (see internal/spans). It rides
	// an atomic pointer so hot paths read it with one load, and it is
	// kept off the Hub's public surface: components reach it through
	// Spans(), which is nil-safe like everything else here.
	tracer atomic.Pointer[spans.Tracer]
}

// NewHub returns a hub with an empty registry and a journal retaining the
// last journalCap records (<= 0 selects 1024).
func NewHub(journalCap int) *Hub {
	return &Hub{
		Registry: NewRegistry(),
		Journal:  NewJournal(journalCap),
	}
}

// SetClock installs the tick source used to stamp journal records and
// period series. In simulation mode this must be a closure over the
// simulated time — never the wall clock — so journals reproduce under a
// fixed seed. Passing nil resets to the zero clock.
func (h *Hub) SetClock(fn func() float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.clock = fn
	h.mu.Unlock()
}

// EnsureClock installs fn only if no clock is set yet, so an embedding
// layer (e.g. the experiment runner) wins over a component default.
func (h *Hub) EnsureClock(fn func() float64) {
	if h == nil || fn == nil {
		return
	}
	h.mu.Lock()
	if h.clock == nil {
		h.clock = fn
	}
	h.mu.Unlock()
}

// Now returns the current tick (0 with no clock installed).
func (h *Hub) Now() float64 {
	if h == nil {
		return 0
	}
	h.mu.RLock()
	fn := h.clock
	h.mu.RUnlock()
	if fn == nil {
		return 0
	}
	return fn()
}

// Record appends a journal record stamped with the hub clock. It is the
// one journaling entry point instrumented components use; on a nil hub it
// is a no-op.
func (h *Hub) Record(rec Record) {
	if h == nil {
		return
	}
	rec.Tick = h.Now()
	h.Journal.Append(rec)
}

// SetSpans attaches a span tracer to the hub and slaves the tracer's
// clock to the hub clock, so spans and journal records share one
// timebase (model time in simulation, wall seconds in daemons). Passing
// nil detaches tracing; on a nil hub this is a no-op.
func (h *Hub) SetSpans(t *spans.Tracer) {
	if h == nil {
		return
	}
	t.SetClock(h.Now)
	h.tracer.Store(t)
}

// Spans returns the attached tracer, or nil (also on a nil hub). The
// returned *spans.Tracer is itself nil-safe, so callers may chain
// h.Spans().Start(...) unconditionally.
func (h *Hub) Spans() *spans.Tracer {
	if h == nil {
		return nil
	}
	return h.tracer.Load()
}

// BindNetCounters attaches the deployment layer's counter block. The same
// pointer may be shared by a server and all of its clients; binding twice
// with the same pointer is a no-op, binding a different pointer replaces
// the previous one.
func (h *Hub) BindNetCounters(nc *metrics.NetCounters) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.nc = nc
	h.mu.Unlock()
}

// NetCounters returns the bound counter block, or nil.
func (h *Hub) NetCounters() *metrics.NetCounters {
	if h == nil {
		return nil
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.nc
}

// HubSnapshot is one coherent observation of everything the hub knows:
// the registry, the bridged net-layer counters, and the journal tail.
// Every scalar inside is read with a single atomic load during one pass,
// so no individual value is torn; the set as a whole is as coherent as a
// lock-free system allows (values keep moving while the pass runs).
type HubSnapshot struct {
	Tick     float64              `json:"tick"`
	Registry RegistrySnapshot     `json:"registry"`
	Net      *metrics.NetSnapshot `json:"net,omitempty"`
	Journal  []Record             `json:"journal,omitempty"`
}

// Snapshot gathers the registry, net counters, and the most recent
// journalTail records (<= 0 means the whole retained journal) in one pass.
func (h *Hub) Snapshot(journalTail int) HubSnapshot {
	if h == nil {
		return HubSnapshot{}
	}
	s := HubSnapshot{
		Tick:     h.Now(),
		Registry: h.Registry.Snapshot(),
		Journal:  h.Journal.Tail(journalTail),
	}
	if nc := h.NetCounters(); nc != nil {
		ns := nc.Snapshot()
		s.Net = &ns
	}
	return s
}

// WritePrometheus renders the registry and, when bound, the net-layer
// counters as lira_net_* counter families, in one exposition document.
func (h *Hub) WritePrometheus(w io.Writer) error {
	if h == nil {
		return nil
	}
	if err := h.Registry.WritePrometheus(w); err != nil {
		return err
	}
	nc := h.NetCounters()
	if nc == nil {
		return nil
	}
	ns := nc.Snapshot()
	for _, c := range []struct {
		name string
		v    int64
	}{
		{"lira_net_disconnects_total", ns.Disconnects},
		{"lira_net_reconnects_total", ns.Reconnects},
		{"lira_net_deadline_trips_total", ns.DeadlineTrips},
		{"lira_net_shed_frames_total", ns.ShedFrames},
		{"lira_net_lost_updates_total", ns.LostUpdates},
		{"lira_net_heartbeats_total", ns.Heartbeats},
		{"lira_net_panics_total", ns.Panics},
	} {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", c.name, c.name, c.v); err != nil {
			return err
		}
	}
	return nil
}

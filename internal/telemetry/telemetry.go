// Package telemetry is the observability layer of the LIRA reproduction:
// a lock-cheap metric registry (atomic counters, gauges, fixed-bucket
// histograms, and ring-buffered period series), a structured decision
// journal recording every control-loop action, and HTTP handlers exposing
// both (Prometheus text on /metrics, a JSON snapshot on /debug/lira).
//
// Determinism contract: telemetry is strictly passive. Instrumented code
// paths produce byte-identical simulator output whether a Hub is attached
// or not, and the decision journal of a fixed-seed simulation is itself
// reproducible — journal records carry simulation tick time supplied by
// the Hub's clock, never the wall clock. Wall-clock durations appear only
// in latency histograms, which exist outside the simulation state.
//
// Hot-path cost: every metric write is one atomic operation (histograms:
// a binary search over ≤ ~20 bounds plus two atomics). Registration
// (get-or-create by name) takes a mutex and is meant for setup time;
// instrumented components look their metrics up once and keep the
// pointers.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are a caller bug; counters only grow).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomically settable float64.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add atomically adds d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram with Prometheus cumulative-bucket
// semantics: an observation v lands in the first bucket whose upper bound
// satisfies v <= bound (bounds are inclusive upper edges), and values
// above every bound land in the implicit +Inf bucket.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64
}

// newHistogram returns a histogram over the given ascending upper bounds.
func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v (inclusive upper edge).
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Bounds returns the bucket upper bounds (without the implicit +Inf).
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile returns the q-quantile of the observed values as a bucket
// upper edge: the smallest bound whose cumulative count reaches ⌈q·n⌉.
// The estimate is boundary-exact — an observation equal to a bucket bound
// lands in that bucket (inclusive upper edges), so its own bound is
// reported, never the next one. q is clamped to (0, 1]; rank clamps keep
// q ≤ 0 at the first populated bucket and q ≥ 1 at the last. Mass in the
// implicit +Inf bucket reports the largest finite bound (+Inf would
// poison threshold comparisons); 0 is returned before the first
// observation or when the histogram has no finite bounds. Like Snapshot,
// the read is not atomic across buckets — concurrent observers can skew
// the estimate by at most the in-flight observations.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.count.Load()
	if n == 0 || len(h.bounds) == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.bounds[len(h.bounds)-1]
		}
	}
	// Buckets were mid-update (count ahead of bucket increments): report
	// the largest populated edge.
	return h.bounds[len(h.bounds)-1]
}

// Mean returns Sum/Count, or 0 before the first observation.
func (h *Histogram) Mean() float64 {
	if n := h.Count(); n > 0 {
		return h.Sum() / float64(n)
	}
	return 0
}

// HistogramSnapshot is a plain-value copy of a histogram.
type HistogramSnapshot struct {
	// Bounds are the inclusive bucket upper edges; Counts has one more
	// entry than Bounds (the +Inf bucket) and is per-bucket, not
	// cumulative.
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.buckets)),
		Count:  h.count.Load(),
		Sum:    h.Sum(),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	return s
}

// LatencyBuckets returns the default latency bucket bounds in seconds:
// 10 µs to 2.5 s on a 1-2.5-5 ladder, suiting both the sub-millisecond
// Evaluate hot path and multi-millisecond adaptation cycles.
func LatencyBuckets() []float64 {
	return []float64{
		10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
		1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3,
		0.1, 0.25, 0.5, 1, 2.5,
	}
}

// Point is one sample of a period series.
type Point struct {
	Tick  float64 `json:"tick"`
	Value float64 `json:"value"`
}

// Series is a bounded ring-buffered time series, sampled once per shedding
// period (or any other caller-defined cadence). When full, appending
// overwrites the oldest point. Ticks come from the caller, so a series
// recorded under a fixed seed is deterministic.
type Series struct {
	mu    sync.Mutex
	buf   []Point
	start int
	size  int
}

// newSeries returns a series retaining the last capacity points.
func newSeries(capacity int) *Series {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Series{buf: make([]Point, capacity)}
}

// Append records one sample.
func (s *Series) Append(tick, value float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.size < len(s.buf) {
		s.buf[(s.start+s.size)%len(s.buf)] = Point{tick, value}
		s.size++
		return
	}
	s.buf[s.start] = Point{tick, value}
	s.start = (s.start + 1) % len(s.buf)
}

// Len returns the number of retained points.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// Cap returns the ring capacity.
func (s *Series) Cap() int { return len(s.buf) }

// Points returns the retained points, oldest first.
func (s *Series) Points() []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Point, s.size)
	for i := 0; i < s.size; i++ {
		out[i] = s.buf[(s.start+i)%len(s.buf)]
	}
	return out
}

// Registry is a named metric registry. Get-or-create accessors are
// goroutine-safe; each returns the same instance for the same name, so
// components may share metrics by name. Metric kinds share one namespace:
// requesting an existing name as a different kind panics (a wiring bug).
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]func() float64
	hists      map[string]*Histogram
	series     map[string]*Series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		gaugeFuncs: map[string]func() float64{},
		hists:      map[string]*Histogram{},
		series:     map[string]*Series{},
	}
}

func (r *Registry) assertUnique(name, kind string) {
	if _, ok := r.counters[name]; ok && kind != "counter" {
		panic(fmt.Sprintf("telemetry: %q already registered as counter", name))
	}
	if _, ok := r.gauges[name]; ok && kind != "gauge" {
		panic(fmt.Sprintf("telemetry: %q already registered as gauge", name))
	}
	if _, ok := r.gaugeFuncs[name]; ok && kind != "gaugefunc" {
		panic(fmt.Sprintf("telemetry: %q already registered as gauge func", name))
	}
	if _, ok := r.hists[name]; ok && kind != "histogram" {
		panic(fmt.Sprintf("telemetry: %q already registered as histogram", name))
	}
	if _, ok := r.series[name]; ok && kind != "series" {
		panic(fmt.Sprintf("telemetry: %q already registered as series", name))
	}
}

// Counter returns the counter registered under name, creating it if new.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.assertUnique(name, "counter")
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it if new.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.assertUnique(name, "gauge")
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// GaugeFunc registers fn to be evaluated at scrape/snapshot time under
// name, replacing any previous func of that name. fn must be safe to call
// from the scraping goroutine.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.gaugeFuncs[name]; !ok {
		r.assertUnique(name, "gaugefunc")
	}
	r.gaugeFuncs[name] = fn
}

// Histogram returns the histogram registered under name, creating it with
// the given bounds if new (bounds are ignored on subsequent calls; nil
// selects LatencyBuckets).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	r.assertUnique(name, "histogram")
	if bounds == nil {
		bounds = LatencyBuckets()
	}
	h := newHistogram(bounds)
	r.hists[name] = h
	return h
}

// Series returns the period series registered under name, creating it
// with the given capacity if new (capacity is ignored on subsequent
// calls; <= 0 selects 1024).
func (r *Registry) Series(name string, capacity int) *Series {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.series[name]; ok {
		return s
	}
	r.assertUnique(name, "series")
	s := newSeries(capacity)
	r.series[name] = s
	return s
}

// RegistrySnapshot is a plain-value copy of every registered metric,
// gathered in a single pass (see Hub.Snapshot for the coherence
// guarantee across the registry and the net-layer counters).
type RegistrySnapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Series     map[string][]Point           `json:"series,omitempty"`
}

// Snapshot copies every metric's current value in one pass over the
// registry. Counters and gauges are read with single atomic loads, so no
// individual value is ever torn; gauge funcs are evaluated inline.
func (r *Registry) Snapshot() RegistrySnapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := RegistrySnapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)+len(r.gaugeFuncs)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
		Series:     make(map[string][]Point, len(r.series)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, fn := range r.gaugeFuncs {
		s.Gauges[name] = fn()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	for name, sr := range r.series {
		s.Series[name] = sr.Points()
	}
	return s
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). Series are not exported — they are simulation
// artifacts reachable through Snapshot and /debug/lira — and histograms
// follow the cumulative _bucket/_sum/_count convention.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	defer r.mu.RUnlock()

	var names []string
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, r.counters[n].Value()); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.gaugeFuncs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		var v float64
		if g, ok := r.gauges[n]; ok {
			v = g.Value()
		} else {
			v = r.gaugeFuncs[n]()
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", n, n, formatFloat(v)); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := r.hists[n].Snapshot()
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
			return err
		}
		cum := int64(0)
		for i, b := range h.Bounds {
			cum += h.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", n, escapeLabel(formatFloat(b)), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", n, formatFloat(h.Sum), n, h.Count); err != nil {
			return err
		}
	}
	return nil
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a Prometheus label value per the text exposition
// format: backslash, double-quote, and newline must be backslash-escaped
// (exposition-format spec §"Comments, help text, and type information").
// Today's only label values are formatted floats, which never contain
// those bytes, but every label write goes through here so a future
// label (an SLO name, a shard tag) cannot corrupt the exposition.
func escapeLabel(s string) string {
	needs := false
	for i := 0; i < len(s); i++ {
		if c := s[i]; c == '\\' || c == '"' || c == '\n' {
			needs = true
			break
		}
	}
	if !needs {
		return s
	}
	buf := make([]byte, 0, len(s)+4)
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			buf = append(buf, '\\', '\\')
		case '"':
			buf = append(buf, '\\', '"')
		case '\n':
			buf = append(buf, '\\', 'n')
		default:
			buf = append(buf, c)
		}
	}
	return string(buf)
}

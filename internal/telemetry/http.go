package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// MetricsHandler serves the hub in the Prometheus text exposition format
// (version 0.0.4), including the bridged lira_net_* counter families.
func MetricsHandler(h *Hub) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = h.WritePrometheus(w)
	})
}

// maxTail caps the ?tail= override: journals retain a bounded ring
// anyway, so anything larger only wastes encoder work.
const maxTail = 65536

// DebugHandler serves a JSON introspection snapshot: the hub snapshot
// (registry, net counters, last journalTail journal records) plus, when
// state is non-nil, a pipeline view supplied by the serving layer (current
// z, shedding-region tree, Δᵢ table, …). The ?tail=N query overrides
// journalTail.
func DebugHandler(h *Hub, state func() any, journalTail int) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tail := journalTail
		// strconv.Atoi rejects overflow (a hand-rolled digit loop would
		// silently wrap on huge values and could go negative); maxTail
		// bounds the response size against hostile ?tail= values.
		if q := r.URL.Query().Get("tail"); q != "" {
			if n, err := strconv.Atoi(q); err == nil && n >= 0 {
				if n > maxTail {
					n = maxTail
				}
				tail = n
			}
		}
		payload := struct {
			HubSnapshot
			State any `json:"state,omitempty"`
		}{HubSnapshot: h.Snapshot(tail)}
		if state != nil {
			payload.State = state()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(payload)
	})
}

// SpansHandler serves the hub's attached span tracer as a Chrome
// trace-event JSON document (loadable in Perfetto / chrome://tracing).
// With no tracer attached it answers 404, so scrapers can distinguish
// "tracing off" from "no spans yet" (an attached-but-empty tracer
// serves an empty traceEvents array).
func SpansHandler(h *Hub) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t := h.Spans()
		if t == nil {
			http.Error(w, "span tracing not enabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = t.WriteJSON(w)
	})
}

// NewMux returns an http.ServeMux serving /metrics, /debug/lira, and
// /debug/lira/spans (404 until a tracer is attached via Hub.SetSpans),
// and — only when enablePprof is set — the net/http/pprof handlers under
// /debug/pprof/. state may be nil when no pipeline view is available.
func NewMux(h *Hub, state func() any, enablePprof bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(h))
	mux.Handle("/debug/lira", DebugHandler(h, state, 64))
	mux.Handle("/debug/lira/spans", SpansHandler(h))
	if enablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

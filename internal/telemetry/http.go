package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// MetricsHandler serves the hub in the Prometheus text exposition format
// (version 0.0.4), including the bridged lira_net_* counter families.
func MetricsHandler(h *Hub) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = h.WritePrometheus(w)
	})
}

// DebugHandler serves a JSON introspection snapshot: the hub snapshot
// (registry, net counters, last journalTail journal records) plus, when
// state is non-nil, a pipeline view supplied by the serving layer (current
// z, shedding-region tree, Δᵢ table, …). The ?tail=N query overrides
// journalTail.
func DebugHandler(h *Hub, state func() any, journalTail int) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tail := journalTail
		if q := r.URL.Query().Get("tail"); q != "" {
			var n int
			for _, c := range q {
				if c < '0' || c > '9' {
					n = -1
					break
				}
				n = n*10 + int(c-'0')
			}
			if n >= 0 {
				tail = n
			}
		}
		payload := struct {
			HubSnapshot
			State any `json:"state,omitempty"`
		}{HubSnapshot: h.Snapshot(tail)}
		if state != nil {
			payload.State = state()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(payload)
	})
}

// NewMux returns an http.ServeMux serving /metrics and /debug/lira, and —
// only when enablePprof is set — the net/http/pprof handlers under
// /debug/pprof/. state may be nil when no pipeline view is available.
func NewMux(h *Hub, state func() any, enablePprof bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(h))
	mux.Handle("/debug/lira", DebugHandler(h, state, 64))
	if enablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

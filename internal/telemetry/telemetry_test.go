package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"lira/internal/metrics"
)

func TestHistogramBucketEdges(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	// Values exactly on an edge must land in the bucket whose inclusive
	// upper bound they equal (Prometheus le semantics).
	for _, v := range []float64{1, 2, 4} {
		h.Observe(v)
	}
	h.Observe(0.5) // below first edge → bucket 0
	h.Observe(3)   // between 2 and 4 → bucket 2
	h.Observe(9)   // above all edges → +Inf bucket

	s := h.Snapshot()
	want := []int64{2, 1, 2, 1} // (≤1): 0.5,1  (≤2): 2  (≤4): 3,4  (+Inf): 9
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.Count != 6 {
		t.Errorf("count = %d, want 6", s.Count)
	}
	if got := h.Sum(); got != 0.5+1+2+3+4+9 {
		t.Errorf("sum = %v", got)
	}
}

func TestHistogramCumulativeExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lira_test_seconds", []float64{1, 2})
	h.Observe(1) // on edge → le="1"
	h.Observe(2)
	h.Observe(5)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE lira_test_seconds histogram",
		`lira_test_seconds_bucket{le="1"} 1`,
		`lira_test_seconds_bucket{le="2"} 2`,
		`lira_test_seconds_bucket{le="+Inf"} 3`,
		"lira_test_seconds_sum 8",
		"lira_test_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestSeriesWraparound(t *testing.T) {
	s := newSeries(4)
	for i := 0; i < 10; i++ {
		s.Append(float64(i), float64(i*i))
	}
	if s.Len() != 4 || s.Cap() != 4 {
		t.Fatalf("len=%d cap=%d, want 4/4", s.Len(), s.Cap())
	}
	pts := s.Points()
	for i, p := range pts {
		wantTick := float64(6 + i) // oldest surviving sample is tick 6
		if p.Tick != wantTick || p.Value != wantTick*wantTick {
			t.Errorf("point %d = %+v, want tick %v", i, p, wantTick)
		}
	}
}

func TestRegistryConcurrentWrites(t *testing.T) {
	r := NewRegistry()
	const goroutines, perG = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("c")
			ga := r.Gauge("g")
			h := r.Histogram("h", []float64{0.5})
			se := r.Series("s", 64)
			for i := 0; i < perG; i++ {
				c.Inc()
				ga.Add(1)
				h.Observe(0.25)
				se.Append(float64(i), 1)
				_ = r.Snapshot() // concurrent readers must not race writers
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := r.Gauge("g").Value(); got != goroutines*perG {
		t.Errorf("gauge = %v, want %d", got, goroutines*perG)
	}
	if got := r.Histogram("h", nil).Count(); got != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", got, goroutines*perG)
	}
}

func TestRegistryKindCollisionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on cross-kind name reuse")
		}
	}()
	r := NewRegistry()
	r.Counter("x")
	r.Gauge("x")
}

func TestJournalRingAndTail(t *testing.T) {
	j := NewJournal(3)
	for i := 0; i < 5; i++ {
		j.Append(Record{Kind: KindThrotloop, Tick: float64(i),
			Throtloop: &ThrotloopEvent{Rho: float64(i)}})
	}
	if j.Len() != 3 || j.Seq() != 5 {
		t.Fatalf("len=%d seq=%d, want 3/5", j.Len(), j.Seq())
	}
	tail := j.Tail(2)
	if len(tail) != 2 || tail[0].Seq != 4 || tail[1].Seq != 5 {
		t.Fatalf("tail = %+v", tail)
	}
	if got := j.CountKind(KindThrotloop); got != 3 {
		t.Errorf("CountKind = %d, want 3", got)
	}
}

func TestJournalSinkJSONL(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(2)
	j.SetSink(&buf)
	j.Append(Record{Kind: KindAssign, Assign: &AssignEvent{
		Z:      0.5,
		Deltas: []float64{1, 2},
		Gains:  []float64{3, math.Inf(1)}, // query-free region gain
	}})
	j.Append(Record{Kind: KindNet, Net: &NetEvent{Event: "disconnect", Node: -1}})
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d: %q", len(lines), buf.String())
	}
	var rec Record
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if rec.Assign == nil || rec.Assign.Gains[1] != math.MaxFloat64 {
		t.Errorf("non-finite gain not capped: %+v", rec.Assign)
	}
	if !strings.Contains(lines[1], `"disconnect"`) {
		t.Errorf("line 1 = %s", lines[1])
	}
}

func TestHubSnapshotBridgesNetCounters(t *testing.T) {
	h := NewHub(8)
	tick := 0.0
	h.SetClock(func() float64 { return tick })
	var nc metrics.NetCounters
	h.BindNetCounters(&nc)
	nc.Disconnects.Add(2)
	nc.ShedFrames.Add(7)
	h.Registry.Counter("lira_updates_total").Add(41)
	tick = 12.5
	h.Record(Record{Kind: KindThrotloop, Throtloop: &ThrotloopEvent{Rho: 1.2, Z: 0.8, B: 100}})

	s := h.Snapshot(0)
	if s.Tick != 12.5 {
		t.Errorf("tick = %v", s.Tick)
	}
	if s.Net == nil || s.Net.Disconnects != 2 || s.Net.ShedFrames != 7 {
		t.Errorf("net = %+v", s.Net)
	}
	if s.Registry.Counters["lira_updates_total"] != 41 {
		t.Errorf("registry counters = %+v", s.Registry.Counters)
	}
	if len(s.Journal) != 1 || s.Journal[0].Tick != 12.5 {
		t.Errorf("journal = %+v", s.Journal)
	}

	var buf bytes.Buffer
	if err := h.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"lira_net_disconnects_total 2",
		"lira_net_shed_frames_total 7",
		"lira_updates_total 41",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, buf.String())
		}
	}
}

func TestNilHubIsInert(t *testing.T) {
	var h *Hub
	h.SetClock(func() float64 { return 1 })
	h.EnsureClock(func() float64 { return 1 })
	h.BindNetCounters(nil)
	h.Record(Record{Kind: KindNet})
	if h.Now() != 0 {
		t.Error("nil hub Now != 0")
	}
	if s := h.Snapshot(0); s.Net != nil || len(s.Journal) != 0 {
		t.Errorf("nil hub snapshot = %+v", s)
	}
	if err := h.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Error(err)
	}
}

func TestHTTPEndpoints(t *testing.T) {
	h := NewHub(8)
	h.Registry.Counter("lira_updates_total").Add(3)
	h.Record(Record{Kind: KindThrotloop, Throtloop: &ThrotloopEvent{Rho: 2, Z: 0.5, B: 10}})
	mux := NewMux(h, func() any {
		return map[string]any{"z": 0.5, "deltas": []float64{5, 10}}
	}, true)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "lira_updates_total 3") {
		t.Errorf("/metrics: %d %q", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/lira?tail=1", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/lira: %d", rec.Code)
	}
	var payload map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
		t.Fatalf("debug payload not JSON: %v", err)
	}
	state, _ := payload["state"].(map[string]any)
	if state == nil || state["z"] != 0.5 {
		t.Errorf("state = %+v", payload["state"])
	}
	if _, ok := payload["journal"]; !ok {
		t.Errorf("payload missing journal: %v", payload)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/cmdline", nil))
	if rec.Code != 200 {
		t.Errorf("/debug/pprof/cmdline: %d", rec.Code)
	}
}

// TestHistogramQuantile pins the boundary behavior of the bucketed
// quantile estimate: exact edge ranks, the empty histogram, q clamping,
// and the +Inf bucket reporting the largest finite bound.
func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	if got := h.Quantile(0.99); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}

	// 4 observations, one per bucket (incl. +Inf): cumulative counts are
	// 1, 2, 3, 4 — every rank boundary is exact.
	for _, v := range []float64{0.5, 2, 3, 9} {
		h.Observe(v)
	}
	cases := []struct {
		q    float64
		want float64
	}{
		{0.25, 1},  // rank 1 → first bucket edge
		{0.5, 2},   // rank 2 → second edge (observation exactly on it)
		{0.75, 4},  // rank 3 → third edge
		{0.76, 4},  // rank 4 lands in +Inf → largest finite bound
		{1.0, 4},   // rank n in +Inf → largest finite bound
		{0.0, 1},   // q below 1/n clamps to rank 1
		{-1, 1},    // negative q clamps to rank 1
		{2, 4},     // q above 1 clamps to rank n
		{0.249, 1}, // just below a boundary stays in the lower bucket
		{0.251, 2}, // just above it moves up
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}

	// No finite bounds: always 0, regardless of observations.
	inf := newHistogram(nil)
	inf.Observe(5)
	if got := inf.Quantile(0.5); got != 0 {
		t.Errorf("boundless Quantile = %v, want 0", got)
	}
}

package faultnet

import (
	"bytes"
	"encoding/binary"
	"io"
	"net"
	"reflect"
	"testing"
	"time"
)

// drive writes frames frames through a fabric-wrapped side of a pipe and
// returns the bytes the peer received, the schedule of link "L", and the
// fault counters.
func drive(t *testing.T, seed uint64, cfg Config, frames int) ([]byte, []string, Stats) {
	t.Helper()
	cfg.Record = true
	f := New(seed, cfg)
	a, b := net.Pipe()
	w := f.WrapConn(a, "L")
	got := make(chan []byte, 1)
	go func() {
		data, _ := io.ReadAll(b)
		got <- data
	}()
	for i := 0; i < frames; i++ {
		var frame [16]byte
		binary.LittleEndian.PutUint64(frame[:], uint64(i))
		binary.LittleEndian.PutUint64(frame[8:], seedMix(uint64(i)))
		if _, err := w.Write(frame[:]); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	w.Close()
	b.Close()
	return <-got, f.Schedule("L"), f.Stats()
}

func seedMix(i uint64) uint64 { return i*0x9e3779b97f4a7c15 + 1 }

func TestSameSeedSameSchedule(t *testing.T) {
	cfg := Config{Drop: 0.2, Dup: 0.1, Corrupt: 0.1, Delay: 0.1, MaxDelay: time.Millisecond}
	for _, seed := range []uint64{1, 7, 42} {
		b1, s1, st1 := drive(t, seed, cfg, 150)
		b2, s2, st2 := drive(t, seed, cfg, 150)
		if !reflect.DeepEqual(s1, s2) {
			t.Fatalf("seed %d: schedules differ:\n%v\n%v", seed, s1, s2)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("seed %d: received byte streams differ (%d vs %d bytes)", seed, len(b1), len(b2))
		}
		if st1 != st2 {
			t.Fatalf("seed %d: stats differ: %+v vs %+v", seed, st1, st2)
		}
		if len(s1) == 0 {
			t.Fatalf("seed %d: no faults scheduled across 150 frames at these rates", seed)
		}
	}
}

func TestDistinctSeedsDistinctSchedules(t *testing.T) {
	cfg := Config{Drop: 0.2, Dup: 0.1, Corrupt: 0.1, Delay: 0.1, MaxDelay: time.Millisecond}
	_, s1, _ := drive(t, 1, cfg, 150)
	_, s2, _ := drive(t, 2, cfg, 150)
	if reflect.DeepEqual(s1, s2) {
		t.Fatal("seeds 1 and 2 produced identical 150-frame schedules")
	}
}

func TestCorruptAltersBytesPreservesLength(t *testing.T) {
	cfg := Config{Corrupt: 1}
	f := New(5, cfg)
	a, b := net.Pipe()
	w := f.WrapConn(a, "L")
	frame := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	go func() {
		if n, err := w.Write(frame); err != nil || n != len(frame) {
			t.Errorf("write: n=%d err=%v", n, err)
		}
		w.Close()
	}()
	got, err := io.ReadAll(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(frame) {
		t.Fatalf("corrupted frame length %d, want %d", len(got), len(frame))
	}
	if bytes.Equal(got, frame) {
		t.Fatal("corrupt fault did not alter the frame")
	}
	if f.Stats().Corrupted != 1 {
		t.Fatalf("stats: %+v", f.Stats())
	}
}

func TestResetClosesTransport(t *testing.T) {
	f := New(5, Config{Reset: 1})
	a, b := net.Pipe()
	defer b.Close()
	w := f.WrapConn(a, "L")
	if _, err := w.Write([]byte{1}); err != ErrInjectedReset {
		t.Fatalf("write error = %v, want ErrInjectedReset", err)
	}
	if _, err := b.Read(make([]byte, 1)); err == nil {
		t.Fatal("peer read succeeded after injected reset")
	}
}

func TestPartitionSeversAndHealRestores(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(io.Discard, c)
		}
	}()

	f := New(3, Config{})
	c, err := f.Dial(ln.Addr().String(), "node-0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write([]byte{1, 2, 3}); err != nil {
		t.Fatalf("pre-partition write: %v", err)
	}
	f.Partition()
	if _, err := c.Write([]byte{1}); err == nil {
		t.Fatal("write succeeded across a partition")
	}
	if _, err := f.Dial(ln.Addr().String(), "node-0"); err != ErrPartitioned {
		t.Fatalf("dial during partition = %v, want ErrPartitioned", err)
	}
	f.Heal()
	c2, err := f.Dial(ln.Addr().String(), "node-0")
	if err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	if _, err := c2.Write([]byte{1}); err != nil {
		t.Fatalf("post-heal write: %v", err)
	}
	c2.Close()
}

func TestWrapListenerLabelsInAcceptOrder(t *testing.T) {
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	f := New(9, Config{Drop: 1, Record: true})
	ln := f.WrapListener(raw, "srv")
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2; i++ {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.Write([]byte{1}) // dropped: schedule records under srv#i
			c.Close()
		}
	}()
	for i := 0; i < 2; i++ {
		c, err := net.Dial("tcp", raw.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		// Wait for the server side to process before dialing the next so
		// accept order (and therefore labeling) is deterministic.
		time.Sleep(20 * time.Millisecond)
	}
	<-done
	for _, label := range []string{"srv#0", "srv#1"} {
		if sched := f.Schedule(label); len(sched) != 1 {
			t.Fatalf("schedule[%s] = %v, want one drop", label, sched)
		}
	}
}

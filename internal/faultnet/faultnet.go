// Package faultnet wraps net.Conn and net.Listener with deterministic,
// seed-driven fault injection: frame drop, delay, duplication, byte
// corruption, connection reset, and fabric-wide partitions. It exists so
// that every chaos run of the deployment layer is reproducible the same
// way the simulator is — a fault schedule is a pure function of the
// fabric seed, not of goroutine scheduling or wall-clock time.
//
// # Determinism contract
//
// Every wrapped connection carries a link label. The fault decision for
// the k-th frame written on the i-th connection instance of the link
// labeled L under fabric seed S is a pure function of (S, L, i, k): each
// connection owns an rng stream derived from (S, hash(L+i)) — see
// WrapConn for why instances matter — and exactly six variates are
// drawn per frame regardless
// of which fault (if any) fires, so decisions never depend on earlier
// outcomes' control flow. Two fabrics with the same seed therefore
// produce byte-identical fault schedules for identically labeled links,
// no matter how the runs are scheduled. Partitions are the one
// explicitly non-scheduled fault: they are forced by the test harness
// (Partition/Heal/PartitionFor), which is what "two forced partitions"
// means in the chaos suite.
//
// Faults are applied on the write side, at frame granularity: the wire
// package emits each frame as a single Write call, so one Write is one
// message. Reads pass through untouched — a dropped frame simply never
// reaches the peer, a corrupted one fails wire decoding or framing on
// arrival, and a reset surfaces as a broken connection on both ends.
package faultnet

import (
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"sync"
	"time"

	"lira/internal/rng"
)

// ErrPartitioned is returned by writes and dials while the fabric is
// partitioned.
var ErrPartitioned = errors.New("faultnet: link partitioned")

// ErrInjectedReset is returned by a write whose frame drew the reset
// fault; the underlying transport is closed mid-stream.
var ErrInjectedReset = errors.New("faultnet: connection reset by fault injection")

// Config sets the per-frame fault probabilities applied on the write side
// of every wrapped connection. At most one fault fires per frame; when
// several are drawn the precedence is reset > drop > corrupt > dup >
// delay (a reset beats everything because the link is gone).
type Config struct {
	// Drop swallows the frame: the writer sees success, the peer sees
	// nothing.
	Drop float64
	// Delay holds the frame for a deterministic duration in [0, MaxDelay)
	// before transmitting it.
	Delay float64
	// Dup transmits the frame twice back-to-back.
	Dup float64
	// Corrupt flips one bit of one byte at a deterministic offset.
	Corrupt float64
	// Reset closes the underlying transport instead of writing.
	Reset float64
	// MaxDelay bounds the injected delay; zero selects 20ms.
	MaxDelay time.Duration
	// Record keeps a per-link log of every fault decision (the schedule),
	// retrievable with Fabric.Schedule. Chaos tests use it to assert that
	// two runs with the same seed produce identical schedules.
	Record bool
}

// Stats counts the faults a fabric has injected.
type Stats struct {
	Frames     int64 // frames offered to the fault layer
	Dropped    int64
	Delayed    int64
	Duplicated int64
	Corrupted  int64
	Resets     int64
}

// Fabric is a fault-injection domain: a seed, a fault profile, and the
// set of live connections it can partition.
type Fabric struct {
	seed uint64
	cfg  Config

	mu          sync.Mutex
	partitioned bool
	conns       map[*Conn]struct{}
	accepts     uint64
	instances   map[string]uint64
	stats       Stats
	schedule    map[string][]string
}

// New returns a fabric with the given seed and fault profile.
func New(seed uint64, cfg Config) *Fabric {
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 20 * time.Millisecond
	}
	return &Fabric{
		seed:      seed,
		cfg:       cfg,
		conns:     make(map[*Conn]struct{}),
		instances: make(map[string]uint64),
		schedule:  make(map[string][]string),
	}
}

// stream derives the rng stream of the link labeled label: a pure
// function of (fabric seed, label).
func (f *Fabric) stream(label string) *rng.Rand {
	h := fnv.New64a()
	h.Write([]byte(label))
	return rng.New(f.seed).Split(h.Sum64())
}

// Dial opens a TCP connection to addr and wraps it as the link labeled
// label. While the fabric is partitioned, Dial fails immediately.
func (f *Fabric) Dial(addr, label string) (net.Conn, error) {
	if f.isPartitioned() {
		return nil, ErrPartitioned
	}
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return f.WrapConn(nc, label), nil
}

// WrapConn wraps an existing connection as the link labeled label. The
// returned connection injects faults on writes and is severed by
// Partition.
//
// Re-using a label (a client reconnecting over the same logical link)
// derives a fresh stream per connection instance: the i-th instance of
// label L draws from the stream of "L+i" (the first keeps the bare
// label). Without this, every reconnect would replay the label's
// schedule from frame zero — a schedule with a fatal early prefix (say,
// a reset on frame 1) would then kill every reconnect at the same
// point, a deterministic livelock no backoff can escape. Instance
// numbering is per-label and in wrap order, so the schedule remains a
// pure function of (seed, label, instance, frame).
func (f *Fabric) WrapConn(nc net.Conn, label string) net.Conn {
	f.mu.Lock()
	n := f.instances[label]
	f.instances[label]++
	f.mu.Unlock()
	if n > 0 {
		label = fmt.Sprintf("%s+%d", label, n)
	}
	c := &Conn{Conn: nc, f: f, label: label, stream: f.stream(label)}
	f.mu.Lock()
	f.conns[c] = struct{}{}
	f.mu.Unlock()
	return c
}

// WrapListener wraps a listener so every accepted connection becomes a
// fault-injected link labeled "<prefix>#<n>" in accept order. While the
// fabric is partitioned, accepted connections are closed immediately.
func (f *Fabric) WrapListener(ln net.Listener, prefix string) net.Listener {
	return &Listener{Listener: ln, f: f, prefix: prefix}
}

// Partition severs the fabric: every live wrapped connection is closed
// and, until Heal, writes and dials fail with ErrPartitioned.
func (f *Fabric) Partition() {
	f.mu.Lock()
	f.partitioned = true
	conns := make([]*Conn, 0, len(f.conns))
	for c := range f.conns {
		conns = append(conns, c)
	}
	f.mu.Unlock()
	for _, c := range conns {
		c.Conn.Close()
	}
}

// Heal ends a partition; subsequent dials succeed again.
func (f *Fabric) Heal() {
	f.mu.Lock()
	f.partitioned = false
	f.mu.Unlock()
}

// PartitionFor partitions the fabric now and heals it after d.
func (f *Fabric) PartitionFor(d time.Duration) *time.Timer {
	f.Partition()
	return time.AfterFunc(d, f.Heal)
}

func (f *Fabric) isPartitioned() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.partitioned
}

// Stats returns a snapshot of the fault counters.
func (f *Fabric) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// Schedule returns the recorded fault schedule of the link labeled
// label: one entry per faulted frame, in frame order. Empty unless
// Config.Record is set.
func (f *Fabric) Schedule(label string) []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.schedule[label]...)
}

func (f *Fabric) drop(c *Conn) {
	f.mu.Lock()
	delete(f.conns, c)
	f.mu.Unlock()
}

// fault is one frame's decision.
type fault int

const (
	faultNone fault = iota
	faultDrop
	faultDelay
	faultDup
	faultCorrupt
	faultReset
)

func (ft fault) String() string {
	switch ft {
	case faultDrop:
		return "drop"
	case faultDelay:
		return "delay"
	case faultDup:
		return "dup"
	case faultCorrupt:
		return "corrupt"
	case faultReset:
		return "reset"
	}
	return "none"
}

// Conn is a fault-injected connection. All methods of the embedded
// net.Conn pass through except Write.
type Conn struct {
	net.Conn
	f     *Fabric
	label string

	mu     sync.Mutex
	stream *rng.Rand
	seq    uint64
}

// decide draws this frame's fault. Exactly six variates are consumed per
// frame so the schedule is a pure function of (seed, label, seq); aux is
// the spare variate that parameterizes the chosen fault (delay duration,
// corruption offset).
func (c *Conn) decide() (seq uint64, ft fault, aux float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	seq = c.seq
	c.seq++
	uReset := c.stream.Float64()
	uDrop := c.stream.Float64()
	uCorrupt := c.stream.Float64()
	uDup := c.stream.Float64()
	uDelay := c.stream.Float64()
	aux = c.stream.Float64()
	cfg := &c.f.cfg
	switch {
	case uReset < cfg.Reset:
		ft = faultReset
	case uDrop < cfg.Drop:
		ft = faultDrop
	case uCorrupt < cfg.Corrupt:
		ft = faultCorrupt
	case uDup < cfg.Dup:
		ft = faultDup
	case uDelay < cfg.Delay:
		ft = faultDelay
	}
	return seq, ft, aux
}

func (c *Conn) account(seq uint64, ft fault) {
	f := c.f
	f.mu.Lock()
	f.stats.Frames++
	switch ft {
	case faultDrop:
		f.stats.Dropped++
	case faultDelay:
		f.stats.Delayed++
	case faultDup:
		f.stats.Duplicated++
	case faultCorrupt:
		f.stats.Corrupted++
	case faultReset:
		f.stats.Resets++
	}
	if f.cfg.Record && ft != faultNone {
		f.schedule[c.label] = append(f.schedule[c.label], fmt.Sprintf("%d:%s", seq, ft))
	}
	f.mu.Unlock()
}

// Write injects the frame's scheduled fault and forwards the (possibly
// altered) bytes to the underlying transport.
func (c *Conn) Write(b []byte) (int, error) {
	if c.f.isPartitioned() {
		return 0, ErrPartitioned
	}
	seq, ft, aux := c.decide()
	c.account(seq, ft)
	switch ft {
	case faultDrop:
		return len(b), nil
	case faultReset:
		c.Conn.Close()
		return 0, ErrInjectedReset
	case faultCorrupt:
		cp := append([]byte(nil), b...)
		if len(cp) > 0 {
			i := int(aux * float64(len(cp)))
			if i >= len(cp) {
				i = len(cp) - 1
			}
			cp[i] ^= 1 << (seq % 8)
		}
		return writeLen(c.Conn, cp, len(b))
	case faultDup:
		if n, err := c.Conn.Write(b); err != nil {
			return n, err
		}
		return writeLen(c.Conn, b, len(b))
	case faultDelay:
		time.Sleep(time.Duration(aux * float64(c.f.cfg.MaxDelay)))
	}
	return c.Conn.Write(b)
}

// writeLen writes p but reports success as n bytes (the caller's view of
// its own frame, which may differ from what actually went out).
func writeLen(w net.Conn, p []byte, n int) (int, error) {
	if _, err := w.Write(p); err != nil {
		return 0, err
	}
	return n, nil
}

// Close closes the underlying transport and forgets the link.
func (c *Conn) Close() error {
	c.f.drop(c)
	return c.Conn.Close()
}

// Listener wraps accepted connections into fault-injected links.
type Listener struct {
	net.Listener
	f      *Fabric
	prefix string
}

// Accept waits for the next connection and wraps it. Connections that
// arrive while the fabric is partitioned are closed and skipped.
func (l *Listener) Accept() (net.Conn, error) {
	for {
		nc, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		if l.f.isPartitioned() {
			nc.Close()
			continue
		}
		l.f.mu.Lock()
		n := l.f.accepts
		l.f.accepts++
		l.f.mu.Unlock()
		return l.f.WrapConn(nc, fmt.Sprintf("%s#%d", l.prefix, n)), nil
	}
}

package history

import (
	"math"
	"testing"

	"lira/internal/geo"
	"lira/internal/motion"
	"lira/internal/roadnet"
	"lira/internal/trace"
)

func mustStore(t *testing.T, n, cap int) *Store {
	t.Helper()
	s, err := NewStore(n, cap)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewStoreValidation(t *testing.T) {
	if _, err := NewStore(0, 0); err == nil {
		t.Error("zero nodes should error")
	}
	if _, err := NewStore(1, -1); err == nil {
		t.Error("negative cap should error")
	}
}

func TestAppendAndPositionAt(t *testing.T) {
	s := mustStore(t, 2, 0)
	reps := []motion.Report{
		{Pos: geo.Point{X: 0, Y: 0}, Vel: geo.Vector{X: 10, Y: 0}, Time: 0},
		{Pos: geo.Point{X: 100, Y: 0}, Vel: geo.Vector{X: 0, Y: 10}, Time: 10},
	}
	for _, r := range reps {
		if err := s.Append(0, r); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len(0) != 2 || s.Len(1) != 0 || s.Nodes() != 2 {
		t.Fatalf("store shape wrong: %d/%d", s.Len(0), s.Len(1))
	}
	// Before any report: unknown.
	if _, ok := s.PositionAt(0, -1); ok {
		t.Error("position before first report should be unknown")
	}
	if _, ok := s.PositionAt(1, 100); ok {
		t.Error("reportless node should be unknown")
	}
	// Mid-segment extrapolation from the first report.
	p, ok := s.PositionAt(0, 5)
	if !ok || p != (geo.Point{X: 50, Y: 0}) {
		t.Errorf("PositionAt(5) = (%v, %v)", p, ok)
	}
	// Exactly at the second report.
	p, _ = s.PositionAt(0, 10)
	if p != (geo.Point{X: 100, Y: 0}) {
		t.Errorf("PositionAt(10) = %v", p)
	}
	// After the second report, extrapolated with its velocity.
	p, _ = s.PositionAt(0, 13)
	if p != (geo.Point{X: 100, Y: 30}) {
		t.Errorf("PositionAt(13) = %v", p)
	}
}

func TestAppendRejectsOutOfOrder(t *testing.T) {
	s := mustStore(t, 1, 0)
	if err := s.Append(0, motion.Report{Time: 10}); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(0, motion.Report{Time: 5}); err == nil {
		t.Error("out-of-order append accepted")
	}
	// Equal time is allowed (re-report at the same instant).
	if err := s.Append(0, motion.Report{Time: 10}); err != nil {
		t.Errorf("equal-time append rejected: %v", err)
	}
}

func TestCapDropsOldest(t *testing.T) {
	s := mustStore(t, 1, 10)
	for i := 0; i < 100; i++ {
		if err := s.Append(0, motion.Report{Time: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len(0) > 10 {
		t.Errorf("cap exceeded: %d", s.Len(0))
	}
	// Recent history intact.
	if _, ok := s.PositionAt(0, 99); !ok {
		t.Error("latest report missing")
	}
	// Ancient history gone.
	if _, ok := s.PositionAt(0, 0); ok {
		t.Error("evicted history still answered")
	}
}

func TestSnapshot(t *testing.T) {
	s := mustStore(t, 3, 0)
	s.Append(0, motion.Report{Pos: geo.Point{X: 10, Y: 10}, Time: 0})
	s.Append(1, motion.Report{Pos: geo.Point{X: 500, Y: 500}, Time: 0})
	s.Append(2, motion.Report{Pos: geo.Point{X: 20, Y: 20}, Vel: geo.Vector{X: 100, Y: 0}, Time: 0})
	// At t=0: nodes 0 and 2 are in the corner box.
	got := s.Snapshot(geo.NewRect(0, 0, 50, 50), 0)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("Snapshot(t=0) = %v", got)
	}
	// At t=1 node 2 has moved out.
	got = s.Snapshot(geo.NewRect(0, 0, 50, 50), 1)
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("Snapshot(t=1) = %v", got)
	}
}

func TestTrajectory(t *testing.T) {
	s := mustStore(t, 1, 0)
	for i := 0; i < 10; i++ {
		s.Append(0, motion.Report{Time: float64(i)})
	}
	got := s.Trajectory(0, 2.5, 6)
	if len(got) != 4 || got[0].Time != 3 || got[3].Time != 6 {
		t.Errorf("Trajectory = %v", got)
	}
	if got := s.Trajectory(0, 20, 30); got != nil {
		t.Errorf("empty window = %v", got)
	}
	// The returned slice is a copy: mutating it must not corrupt history.
	got = s.Trajectory(0, 0, 9)
	got[0].Time = 999
	if s.perNode[0][0].Time == 999 {
		t.Error("Trajectory aliases internal storage")
	}
}

// TestHistoricErrorBoundedByFairness is the §3.1.1 motivation made
// concrete: when every report is generated under throttlers within
// [Δ⊢, Δ⊢+Δ⇔], reconstructed historic positions deviate from ground truth
// by at most about that bound (plus one tick of motion).
func TestHistoricErrorBoundedByFairness(t *testing.T) {
	netCfg := roadnet.DefaultConfig()
	netCfg.Side = 4000
	netCfg.GridStep = 250
	net := roadnet.Generate(netCfg)
	src := trace.NewSource(net, trace.Config{N: 200, Seed: 3})
	const delta = 30.0 // a uniform throttler within the fairness band

	store := mustStore(t, 200, 0)
	reck := make([]motion.DeadReckoner, 200)
	pos, vel := src.Positions(), src.Velocities()
	for i := range reck {
		store.Append(i, reck[i].Start(pos[i], vel[i], 0))
	}
	type truth struct {
		t   float64
		pos []geo.Point
	}
	var truths []truth
	for tick := 1; tick <= 120; tick++ {
		src.Step(1)
		now := float64(tick)
		pos, vel = src.Positions(), src.Velocities()
		for i := range reck {
			if rep, send := reck[i].Observe(pos[i], vel[i], now, delta); send {
				if err := store.Append(i, rep); err != nil {
					t.Fatal(err)
				}
			}
		}
		if tick%30 == 0 {
			truths = append(truths, truth{now, append([]geo.Point(nil), pos...)})
		}
	}
	// Historic reconstruction error ≤ Δ + one tick of travel slack.
	maxSpeed := roadnet.Expressway.Speed() * 1.5
	for _, tr := range truths {
		for i, want := range tr.pos {
			got, ok := store.PositionAt(i, tr.t)
			if !ok {
				t.Fatalf("node %d unknown at %v", i, tr.t)
			}
			if d := got.Dist(want); d > delta+maxSpeed {
				t.Errorf("t=%v node %d: historic error %.1f m exceeds bound %.1f",
					tr.t, i, d, delta+maxSpeed)
			}
		}
	}
	if math.IsNaN(float64(len(truths))) || len(truths) == 0 {
		t.Fatal("no truth snapshots")
	}
}

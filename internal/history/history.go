// Package history stores the motion reports the CQ server has received so
// snapshot and historic queries can be answered — the capability for which
// LIRA's fairness threshold Δ⇔ exists (§1, §3.1.1): because every region's
// update throttler stays within Δ⇔ of the minimum, every node's historic
// position is known to bounded inaccuracy, unlike distributed CQ systems
// that receive no updates at all from query-free areas (§5).
package history

import (
	"fmt"
	"sort"

	"lira/internal/geo"
	"lira/internal/motion"
)

// Store holds per-node report histories. Reports must be appended in
// non-decreasing time order per node (the server's ingest order). The
// zero value is unusable; construct with NewStore.
type Store struct {
	perNode [][]motion.Report
	// cap bounds the retained reports per node (0 = unbounded). When the
	// bound is hit the oldest half is dropped, amortizing the copy.
	cap int
}

// NewStore returns a store for n nodes retaining at most perNodeCap
// reports each (0 = unbounded).
func NewStore(n, perNodeCap int) (*Store, error) {
	if n <= 0 {
		return nil, fmt.Errorf("history: non-positive node count %d", n)
	}
	if perNodeCap < 0 {
		return nil, fmt.Errorf("history: negative cap %d", perNodeCap)
	}
	return &Store{perNode: make([][]motion.Report, n), cap: perNodeCap}, nil
}

// Nodes returns the number of node slots.
func (s *Store) Nodes() int { return len(s.perNode) }

// Len returns the number of retained reports for node id.
func (s *Store) Len(id int) int { return len(s.perNode[id]) }

// Append records a report for node id. Out-of-order reports are rejected.
func (s *Store) Append(id int, rep motion.Report) error {
	h := s.perNode[id]
	if len(h) > 0 && rep.Time < h[len(h)-1].Time {
		return fmt.Errorf("history: out-of-order report for node %d (%.3f after %.3f)",
			id, rep.Time, h[len(h)-1].Time)
	}
	if s.cap > 0 && len(h) >= s.cap {
		// Drop the oldest half; keeps amortized O(1) appends without a
		// ring's index gymnastics.
		keep := len(h) / 2
		copy(h, h[len(h)-keep:])
		h = h[:keep]
	}
	s.perNode[id] = append(h, rep)
	return nil
}

// PositionAt returns the node's dead-reckoned position at time t,
// extrapolated from the last report at or before t. The second result is
// false when the node had not reported by t.
func (s *Store) PositionAt(id int, t float64) (geo.Point, bool) {
	h := s.perNode[id]
	// First report strictly after t.
	i := sort.Search(len(h), func(k int) bool { return h[k].Time > t })
	if i == 0 {
		return geo.Point{}, false
	}
	return h[i-1].Predict(t), true
}

// Snapshot answers a historic range query: the ids of nodes whose
// position at time t (as reconstructed from the report history) lies in
// rect, closed containment.
func (s *Store) Snapshot(rect geo.Rect, t float64) []int {
	var out []int
	for id := range s.perNode {
		if p, ok := s.PositionAt(id, t); ok && rect.ContainsClosed(p) {
			out = append(out, id)
		}
	}
	return out
}

// Trajectory returns the node's reports with Time in [t0, t1].
func (s *Store) Trajectory(id int, t0, t1 float64) []motion.Report {
	h := s.perNode[id]
	lo := sort.Search(len(h), func(k int) bool { return h[k].Time >= t0 })
	hi := sort.Search(len(h), func(k int) bool { return h[k].Time > t1 })
	if lo >= hi {
		return nil
	}
	return append([]motion.Report(nil), h[lo:hi]...)
}

// Package routemodel implements the road-network-based motion model the
// paper cites as the "more advanced" alternative to linear dead reckoning
// (§2.1, reference [2]: Civilis, Jensen, Pakalnis). A node reports its
// road edge, offset, and speed; both sides extrapolate *along the road*,
// continuing through intersections onto the most likely (highest-volume)
// edge. Because road-constrained prediction survives turns that break
// linear extrapolation, the same inaccuracy threshold Δ yields fewer
// updates — LIRA is model-agnostic and composes with either (the update
// reduction curve f(Δ) is simply calibrated per model).
package routemodel

import (
	"lira/internal/geo"
	"lira/internal/roadnet"
)

// Report is the motion-model parameter set of the route model.
type Report struct {
	Edge   int32
	Offset float64 // meters along Edge
	Speed  float64 // m/s along the route
	Time   float64
}

// Predictor extrapolates route-model reports over a road network. It is
// stateless and safe for concurrent use.
type Predictor struct {
	net *roadnet.Network
	// maxHops bounds route-following per prediction so a corrupt report
	// cannot loop forever.
	maxHops int
}

// NewPredictor returns a predictor over net.
func NewPredictor(net *roadnet.Network) *Predictor {
	return &Predictor{net: net, maxHops: 64}
}

// Predict returns the dead-reckoned position at time t: the report's
// position advanced Speed·(t−Time) meters along the road, following the
// most likely continuation at each intersection.
func (p *Predictor) Predict(rep Report, t float64) geo.Point {
	edge := int(rep.Edge)
	if edge < 0 || edge >= len(p.net.Edges) {
		return geo.Point{}
	}
	dt := t - rep.Time
	if dt < 0 {
		dt = 0 // backwards queries clamp to the report position
	}
	offset := rep.Offset + rep.Speed*dt
	hops := 0
	for offset > p.net.Edges[edge].Length && hops < p.maxHops {
		offset -= p.net.Edges[edge].Length
		edge = p.net.MostLikelyNext(edge)
		hops++
		if p.net.Edges[edge].Length == 0 {
			break
		}
	}
	length := p.net.Edges[edge].Length
	tfrac := 0.0
	if length > 0 {
		if offset > length {
			offset = length
		}
		tfrac = offset / length
	}
	return p.net.PointAlong(edge, tfrac)
}

// Reckoner is the client-side suppression driver for the route model —
// the analogue of motion.DeadReckoner.
type Reckoner struct {
	pred *Predictor
	last Report
}

// NewReckoner returns a reckoner using the given predictor.
func NewReckoner(pred *Predictor) *Reckoner {
	return &Reckoner{pred: pred}
}

// Start records the node's first report (always transmitted).
func (r *Reckoner) Start(edge int, offset, speed, t float64) Report {
	r.last = Report{Edge: int32(edge), Offset: offset, Speed: speed, Time: t}
	return r.last
}

// Last returns the most recent report.
func (r *Reckoner) Last() Report { return r.last }

// Deviation returns the distance between the route-model prediction and
// the actual position at time t.
func (r *Reckoner) Deviation(actual geo.Point, t float64) float64 {
	return r.pred.Predict(r.last, t).Dist(actual)
}

// Observe checks the node's actual state against the model with threshold
// delta, refreshing the model and returning the new report when the
// deviation exceeds it.
func (r *Reckoner) Observe(edge int, offset, speed float64, actual geo.Point, t, delta float64) (Report, bool) {
	if r.Deviation(actual, t) <= delta {
		return Report{}, false
	}
	r.last = Report{Edge: int32(edge), Offset: offset, Speed: speed, Time: t}
	return r.last, true
}

package routemodel

import (
	"testing"

	"lira/internal/geo"
	"lira/internal/motion"
	"lira/internal/roadnet"
	"lira/internal/trace"
)

func testNet() *roadnet.Network {
	cfg := roadnet.DefaultConfig()
	cfg.Side = 4000
	cfg.GridStep = 250
	cfg.Centers = 2
	cfg.CenterRadius = 800
	return roadnet.Generate(cfg)
}

func TestPredictWithinEdge(t *testing.T) {
	net := testNet()
	p := NewPredictor(net)
	// Pick a reasonably long edge.
	edge := -1
	for i, e := range net.Edges {
		if e.Length > 200 {
			edge = i
			break
		}
	}
	if edge == -1 {
		t.Fatal("no long edge")
	}
	rep := Report{Edge: int32(edge), Offset: 10, Speed: 10, Time: 0}
	// After 5 s the car is at offset 60 on the same edge.
	got := p.Predict(rep, 5)
	want := net.PointAlong(edge, 60/net.Edges[edge].Length)
	if got.Dist(want) > 1e-9 {
		t.Errorf("Predict = %v, want %v", got, want)
	}
	// At the report time, prediction is the reported position.
	got = p.Predict(rep, 0)
	want = net.PointAlong(edge, 10/net.Edges[edge].Length)
	if got.Dist(want) > 1e-9 {
		t.Errorf("Predict at t0 = %v, want %v", got, want)
	}
}

func TestPredictFollowsRoute(t *testing.T) {
	net := testNet()
	p := NewPredictor(net)
	edge := 0
	length := net.Edges[edge].Length
	rep := Report{Edge: int32(edge), Offset: length - 1, Speed: 10, Time: 0}
	// After 3 s the car has crossed onto the most likely next edge.
	next := net.MostLikelyNext(edge)
	got := p.Predict(rep, 3)
	wantOffset := 10.0*3 - 1 // meters onto the next edge
	want := net.PointAlong(next, wantOffset/net.Edges[next].Length)
	if got.Dist(want) > 1e-6 {
		t.Errorf("Predict across intersection = %v, want %v", got, want)
	}
}

func TestPredictDegenerateInputs(t *testing.T) {
	net := testNet()
	p := NewPredictor(net)
	if got := p.Predict(Report{Edge: -1}, 10); got != (geo.Point{}) {
		t.Errorf("negative edge: %v", got)
	}
	if got := p.Predict(Report{Edge: 1 << 30}, 10); got != (geo.Point{}) {
		t.Errorf("out-of-range edge: %v", got)
	}
	// Backwards time clamps to the report position.
	rep := Report{Edge: 0, Offset: 50, Speed: 10, Time: 100}
	a := p.Predict(rep, 90)
	b := p.Predict(rep, 100)
	if a != b {
		t.Errorf("backwards prediction %v, want clamp to %v", a, b)
	}
	// Absurd speed terminates (maxHops bound).
	rep = Report{Edge: 0, Offset: 0, Speed: 1e12, Time: 0}
	_ = p.Predict(rep, 1e6) // must return, not hang
}

func TestReckonerSuppression(t *testing.T) {
	net := testNet()
	p := NewPredictor(net)
	r := NewReckoner(p)
	edge := 0
	r.Start(edge, 0, 10, 0)
	if r.Last().Edge != 0 {
		t.Fatalf("Last = %+v", r.Last())
	}
	// A car exactly following the route at the reported speed is silent.
	length := net.Edges[edge].Length
	for tt := 1.0; tt*10 < length; tt++ {
		actual := net.PointAlong(edge, tt*10/length)
		if _, send := r.Observe(edge, tt*10, 10, actual, tt, 5); send {
			t.Fatalf("route-following car reported at t=%v", tt)
		}
	}
	// A car that turned the "wrong" way deviates and reports.
	rev := net.Edges[edge].Reverse
	far := net.PointAlong(rev, 0.5)
	wrongEdge := rev
	if _, send := r.Observe(wrongEdge, net.Edges[rev].Length/2, 10, far, 500, 5); !send {
		t.Error("deviating car did not report")
	}
	if r.Last().Edge != int32(wrongEdge) {
		t.Errorf("model not refreshed: %+v", r.Last())
	}
}

// TestRouteModelBeatsLinearOnTurns is the extension's headline: at the
// same Δ, road-constrained prediction generates fewer updates than linear
// dead reckoning, because it predicts through intersections.
func TestRouteModelBeatsLinearOnTurns(t *testing.T) {
	net := testNet()
	src := trace.NewSource(net, trace.Config{N: 400, Seed: 5})
	pred := NewPredictor(net)

	const delta = 20.0
	linear := make([]motion.DeadReckoner, src.N())
	route := make([]*Reckoner, src.N())
	pos, vel := src.Positions(), src.Velocities()
	for i := range route {
		route[i] = NewReckoner(pred)
		edge, off := src.EdgeState(i)
		route[i].Start(edge, off, src.Speed(i), 0)
		linear[i].Start(pos[i], vel[i], 0)
	}
	var linUpdates, routeUpdates int
	for tick := 1; tick <= 240; tick++ {
		src.Step(1)
		now := float64(tick)
		pos, vel = src.Positions(), src.Velocities()
		for i := range route {
			if _, send := linear[i].Observe(pos[i], vel[i], now, delta); send {
				linUpdates++
			}
			edge, off := src.EdgeState(i)
			if _, send := route[i].Observe(edge, off, src.Speed(i), pos[i], now, delta); send {
				routeUpdates++
			}
		}
	}
	t.Logf("Δ=%.0f m over 240 s: linear %d updates, route-aware %d updates", delta, linUpdates, routeUpdates)
	if routeUpdates >= linUpdates {
		t.Errorf("route model sent %d updates, linear %d; expected fewer", routeUpdates, linUpdates)
	}
}

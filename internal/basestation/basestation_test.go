package basestation

import (
	"math"
	"testing"

	"lira/internal/fmodel"
	"lira/internal/geo"
	"lira/internal/partition"
	"lira/internal/rng"
	"lira/internal/statgrid"
)

func space() geo.Rect { return geo.Rect{MinX: 0, MinY: 0, MaxX: 10000, MaxY: 10000} }

func testPartitioning(t *testing.T, l int) (*partition.Partitioning, []float64) {
	t.Helper()
	g := statgrid.New(space(), 32)
	r := rng.New(3)
	var pos []geo.Point
	var sp []float64
	for i := 0; i < 3000; i++ {
		// Cluster in the middle-left.
		pos = append(pos, geo.Point{X: r.Range(1000, 4000), Y: r.Range(3000, 7000)})
		sp = append(sp, 15)
	}
	g.Observe(pos, sp)
	var queries []geo.Rect
	for i := 0; i < 40; i++ {
		queries = append(queries, geo.Square(geo.Point{X: r.Range(0, 10000), Y: r.Range(0, 10000)}, 500))
	}
	g.SetQueries(queries)
	p, err := partition.GridReduce(g, partition.Config{L: l, Z: 0.5, Curve: fmodel.Hyperbolic(5, 100, 95)})
	if err != nil {
		t.Fatal(err)
	}
	deltas := make([]float64, len(p.Regions))
	for i := range deltas {
		deltas[i] = 5 + float64(i%20)
	}
	return p, deltas
}

func TestPlaceUniformCoversSpace(t *testing.T) {
	stations, err := PlaceUniform(space(), 2000)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(7)
	for i := 0; i < 1000; i++ {
		p := geo.Point{X: r.Range(0, 10000), Y: r.Range(0, 10000)}
		if StationFor(stations, p) == -1 {
			t.Fatalf("point %v uncovered by uniform placement", p)
		}
	}
	if _, err := PlaceUniform(space(), 0); err == nil {
		t.Error("zero radius should error")
	}
}

func TestPlaceUniformRadiusScalesCount(t *testing.T) {
	small, _ := PlaceUniform(space(), 1000)
	large, _ := PlaceUniform(space(), 4000)
	if len(small) <= len(large) {
		t.Errorf("smaller radius should need more stations: %d vs %d", len(small), len(large))
	}
}

func TestPlaceDensityAware(t *testing.T) {
	r := rng.New(11)
	var nodes []geo.Point
	// Dense downtown cluster plus sparse suburbs.
	for i := 0; i < 5000; i++ {
		nodes = append(nodes, geo.Point{X: r.Range(4000, 5000), Y: r.Range(4000, 5000)})
	}
	for i := 0; i < 200; i++ {
		nodes = append(nodes, geo.Point{X: r.Range(0, 10000), Y: r.Range(0, 10000)})
	}
	stations, err := PlaceDensityAware(space(), nodes, 400, 300, 8000)
	if err != nil {
		t.Fatal(err)
	}
	if len(stations) < 4 {
		t.Fatalf("expected a multi-station deployment, got %d", len(stations))
	}
	// Downtown stations must have smaller radii than the largest suburb
	// station.
	var minDowntown, maxSuburb float64 = math.Inf(1), 0
	for _, s := range stations {
		downtown := s.Center.X >= 4000 && s.Center.X < 5000 && s.Center.Y >= 4000 && s.Center.Y < 5000
		if downtown {
			minDowntown = math.Min(minDowntown, s.Radius)
		} else {
			maxSuburb = math.Max(maxSuburb, s.Radius)
		}
	}
	if !(minDowntown < maxSuburb) {
		t.Errorf("downtown min radius %v should be below suburb max %v", minDowntown, maxSuburb)
	}
	// Every node must be covered.
	for _, p := range nodes {
		if StationFor(stations, p) == -1 {
			t.Fatalf("node %v uncovered", p)
		}
	}
	if _, err := PlaceDensityAware(space(), nodes, 0, 300, 8000); err == nil {
		t.Error("zero target should error")
	}
	if _, err := PlaceDensityAware(space(), nodes, 10, 300, 100); err == nil {
		t.Error("inverted radius range should error")
	}
}

func TestSubsetContainsExactlyIntersectingRegions(t *testing.T) {
	p, deltas := testPartitioning(t, 40)
	st := Station{ID: 0, Center: geo.Point{X: 2500, Y: 5000}, Radius: 1500}
	a, err := Subset(p, deltas, st)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Regions) == 0 || len(a.Regions) == len(p.Regions) {
		t.Fatalf("subset size %d of %d looks wrong", len(a.Regions), len(p.Regions))
	}
	for _, r := range a.Regions {
		if r.ClampPoint(st.Center).Dist(st.Center) > st.Radius {
			t.Errorf("region %v does not intersect coverage", r)
		}
	}
	// Every excluded region must genuinely miss the disk.
	included := make(map[geo.Rect]bool)
	for _, r := range a.Regions {
		included[r] = true
	}
	for _, reg := range p.Regions {
		if !included[reg.Area] {
			if reg.Area.ClampPoint(st.Center).Dist(st.Center) <= st.Radius {
				t.Errorf("region %v intersects but was excluded", reg.Area)
			}
		}
	}
	if a.DefaultDelta != 5 {
		t.Errorf("DefaultDelta = %v, want the global minimum 5", a.DefaultDelta)
	}
}

func TestSubsetValidation(t *testing.T) {
	p, deltas := testPartitioning(t, 13)
	if _, err := Subset(p, deltas[:1], Station{}); err == nil {
		t.Error("mismatched deltas should error")
	}
}

func TestBroadcastBytes(t *testing.T) {
	a := &Assignment{Regions: make([]geo.Rect, 41), Deltas: make([]float64, 41)}
	if got := a.BroadcastBytes(); got != 656 {
		t.Errorf("41 regions broadcast = %d bytes, want 656 (the paper's number)", got)
	}
}

func TestDeploymentMeans(t *testing.T) {
	p, deltas := testPartitioning(t, 40)
	stations, err := PlaceUniform(space(), 2500)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDeployment(stations, p, deltas)
	if err != nil {
		t.Fatal(err)
	}
	mean := d.MeanRegionsPerStation()
	if mean <= 0 || mean > float64(len(p.Regions)) {
		t.Errorf("MeanRegionsPerStation = %v", mean)
	}
	if got := d.MeanBroadcastBytes(); math.Abs(got-mean*RegionBytes) > 1e-9 {
		t.Errorf("MeanBroadcastBytes = %v, want %v", got, mean*RegionBytes)
	}
}

func TestLargerRadiusKnowsMoreRegions(t *testing.T) {
	// Table 3's trend: per-station region count grows with coverage
	// radius.
	p, deltas := testPartitioning(t, 40)
	prev := 0.0
	for _, radius := range []float64{1000, 2000, 4000} {
		stations, err := PlaceUniform(space(), radius)
		if err != nil {
			t.Fatal(err)
		}
		d, err := NewDeployment(stations, p, deltas)
		if err != nil {
			t.Fatal(err)
		}
		mean := d.MeanRegionsPerStation()
		if mean < prev {
			t.Errorf("radius %v: mean regions %v decreased from %v", radius, mean, prev)
		}
		prev = mean
	}
}

func TestStationForPicksNearest(t *testing.T) {
	stations := []Station{
		{ID: 0, Center: geo.Point{X: 0, Y: 0}, Radius: 100},
		{ID: 1, Center: geo.Point{X: 50, Y: 0}, Radius: 100},
	}
	if got := StationFor(stations, geo.Point{X: 40, Y: 0}); got != 1 {
		t.Errorf("StationFor = %d, want 1 (nearest)", got)
	}
	if got := StationFor(stations, geo.Point{X: 500, Y: 500}); got != -1 {
		t.Errorf("uncovered point: got %d", got)
	}
	if !stations[0].Covers(geo.Point{X: 100, Y: 0}) {
		t.Error("boundary point should be covered")
	}
}

// Package basestation implements the second layer of the LIRA
// architecture (§2.2): the base stations that relay shedding regions and
// update throttlers from the CQ server to the mobile nodes.
//
// Each station covers a disk. When the server reconfigures, every station
// broadcasts the subset of (region, throttler) pairs intersecting its
// coverage area; a node entering a new station's area receives that subset
// during hand-off. The package provides the two placement models behind
// the paper's Table 3 — a uniform grid of equal-radius stations, and a
// node-density-dependent placement with small urban and large suburban
// cells — and the broadcast-size accounting of §4.3.2 (a square region is
// 3 floats, a throttler 1 float, 4 bytes each: 16 bytes per region).
package basestation

import (
	"fmt"
	"math"

	"lira/internal/geo"
	"lira/internal/partition"
)

// Station is one base station with a circular coverage area.
type Station struct {
	ID     int
	Center geo.Point
	Radius float64
}

// Covers reports whether p lies within the station's coverage disk.
func (s Station) Covers(p geo.Point) bool {
	return s.Center.Dist(p) <= s.Radius
}

// coverageIntersects reports whether the station's disk intersects rect r.
func (s Station) coverageIntersects(r geo.Rect) bool {
	return r.ClampPoint(s.Center).Dist(s.Center) <= s.Radius
}

// PlaceUniform tiles the space with a square grid of stations of the given
// coverage radius. Station spacing is radius·√2 so the disks cover the
// plane with minimal overlap.
func PlaceUniform(space geo.Rect, radius float64) ([]Station, error) {
	if radius <= 0 {
		return nil, fmt.Errorf("basestation: non-positive radius %v", radius)
	}
	spacing := radius * math.Sqrt2
	nx := int(math.Ceil(space.Width() / spacing))
	ny := int(math.Ceil(space.Height() / spacing))
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	var out []Station
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			out = append(out, Station{
				ID: len(out),
				Center: geo.Point{
					X: space.MinX + (float64(i)+0.5)*space.Width()/float64(nx),
					Y: space.MinY + (float64(j)+0.5)*space.Height()/float64(ny),
				},
				Radius: radius,
			})
		}
	}
	return out, nil
}

// PlaceDensityAware places stations by recursively splitting the space
// until each station serves at most targetPerCell of the given node
// positions, bounded by the radius range [minRadius, maxRadius]. This
// reproduces the real-world pattern the paper cites: small cells downtown,
// large cells in the suburbs.
func PlaceDensityAware(space geo.Rect, nodes []geo.Point, targetPerCell int, minRadius, maxRadius float64) ([]Station, error) {
	if targetPerCell <= 0 {
		return nil, fmt.Errorf("basestation: non-positive target %d", targetPerCell)
	}
	if minRadius <= 0 || maxRadius < minRadius {
		return nil, fmt.Errorf("basestation: invalid radius range [%v, %v]", minRadius, maxRadius)
	}
	var out []Station
	var split func(r geo.Rect, pts []geo.Point)
	split = func(r geo.Rect, pts []geo.Point) {
		// The covering radius of a rect cell is half its diagonal.
		radius := math.Hypot(r.Width(), r.Height()) / 2
		if (len(pts) <= targetPerCell || radius <= minRadius) && radius <= maxRadius {
			out = append(out, Station{
				ID:     len(out),
				Center: r.Center(),
				Radius: math.Max(radius, minRadius),
			})
			return
		}
		for _, q := range r.Quadrants() {
			var sub []geo.Point
			for _, p := range pts {
				if q.Contains(p) {
					sub = append(sub, p)
				}
			}
			split(q, sub)
		}
	}
	split(space, nodes)
	return out, nil
}

// StationFor returns the index of the station covering p — the nearest
// center among covering stations — or -1 when no station covers p.
// A change of the returned index across time is a hand-off.
func StationFor(stations []Station, p geo.Point) int {
	best, bestDist := -1, math.Inf(1)
	for i, s := range stations {
		d := s.Center.Dist(p)
		if d <= s.Radius && d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// Assignment is the (region, throttler) subset a station broadcasts to the
// nodes in its coverage area.
type Assignment struct {
	Regions []geo.Rect
	Deltas  []float64
	// DefaultDelta is used by a node whose position falls outside every
	// assigned region (coverage slop at station borders). It is the
	// minimum inaccuracy threshold, the conservative choice.
	DefaultDelta float64
}

// RegionBytes is the broadcast size of one (region, throttler) pair:
// 3 floats for a square region plus 1 float for the throttler (§4.3.2).
const RegionBytes = (3 + 1) * 4

// BroadcastBytes returns the size of the assignment's broadcast payload.
func (a *Assignment) BroadcastBytes() int { return len(a.Regions) * RegionBytes }

// Subset computes the assignment for one station: the regions of p whose
// area intersects the station's coverage disk, with their throttlers.
// deltas must be parallel to p.Regions.
func Subset(p *partition.Partitioning, deltas []float64, s Station) (*Assignment, error) {
	if len(deltas) != len(p.Regions) {
		return nil, fmt.Errorf("basestation: %d deltas for %d regions", len(deltas), len(p.Regions))
	}
	a := &Assignment{}
	minDelta := math.Inf(1)
	for i, r := range p.Regions {
		if deltas[i] < minDelta {
			minDelta = deltas[i]
		}
		if s.coverageIntersects(r.Area) {
			a.Regions = append(a.Regions, r.Area)
			a.Deltas = append(a.Deltas, deltas[i])
		}
	}
	if math.IsInf(minDelta, 1) {
		minDelta = 0
	}
	a.DefaultDelta = minDelta
	return a, nil
}

// Deployment binds a station set to per-station assignments.
type Deployment struct {
	Stations    []Station
	Assignments []*Assignment
}

// NewDeployment computes the assignment of every station for the given
// partitioning and throttlers.
func NewDeployment(stations []Station, p *partition.Partitioning, deltas []float64) (*Deployment, error) {
	d := &Deployment{Stations: stations}
	for _, s := range stations {
		a, err := Subset(p, deltas, s)
		if err != nil {
			return nil, err
		}
		d.Assignments = append(d.Assignments, a)
	}
	return d, nil
}

// MeanRegionsPerStation returns the average number of shedding regions a
// station must broadcast — the paper's Table 3 metric.
func (d *Deployment) MeanRegionsPerStation() float64 {
	if len(d.Assignments) == 0 {
		return 0
	}
	total := 0
	for _, a := range d.Assignments {
		total += len(a.Regions)
	}
	return float64(total) / float64(len(d.Assignments))
}

// MeanBroadcastBytes returns the average broadcast payload per station.
func (d *Deployment) MeanBroadcastBytes() float64 {
	if len(d.Assignments) == 0 {
		return 0
	}
	total := 0
	for _, a := range d.Assignments {
		total += a.BroadcastBytes()
	}
	return float64(total) / float64(len(d.Assignments))
}

// Package admission implements health-driven admission control above
// THROTLOOP: a deterministic, hysteresis-damped controller that samples
// system-health signals once per control tick — input queue/ring
// occupancy, goroutine census, Evaluate p99 latency, and GC pause — and
// walks a four-state degradation ladder (healthy → warning → shed →
// critical). THROTLOOP sheds by *modeled inaccuracy*; this layer sheds by
// *system health*, composing with the control plane instead of replacing
// it.
//
// Each rung takes one concrete, reversible action through an existing
// seam:
//
//   - warning tightens the effective throttle fraction handed to the
//     control plane (Plane.SetZClamp ∘ Controller.ClampZ);
//   - shed additionally switches queue admission to oldest-first bulk
//     rejection ahead of the ingest rings (AdmitN) and defers
//     debt-triggered index compaction (Actions.SetCompactionDeferred);
//   - critical forces z to the floor and answers Evaluate from prediction
//     only (Actions.SetDegradedEval), degrading accuracy instead of
//     availability.
//
// # Determinism contract
//
// The ladder walk is a pure function of the signal sequence fed to
// Observe: no wall clock, no randomness, one rung of movement per tick at
// most. Escalation requires EscalateAfter consecutive ticks whose signals
// demand a higher rung; stepping down requires RecoverAfter consecutive
// ticks calm even under the deflated exit thresholds (enter × ExitRatio),
// so the ladder cannot flap around a threshold. Every Observe journals
// the full signal vector and the resulting state via internal/telemetry
// on model time, so a seeded run reproduces its ladder byte-for-byte.
//
// Observe, ClampZ, and View are safe to call concurrently with AdmitN
// (ingest producers); Observe itself is single-caller (the owner's
// control tick), like an engine drive loop.
package admission

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"lira/internal/telemetry"
)

// State is a rung of the degradation ladder, ordered by severity.
type State int32

// The ladder rungs, in escalation order.
const (
	// Healthy takes no action: admission is transparent.
	Healthy State = iota
	// Warning tightens the effective throttle fraction (ClampZ).
	Warning
	// Shed additionally pre-rejects ingest oldest-first ahead of the
	// rings (AdmitN) and defers index compaction.
	Shed
	// Critical forces z to the floor and switches the engine to
	// prediction-only evaluation.
	Critical
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Warning:
		return "warning"
	case Shed:
		return "shed"
	case Critical:
		return "critical"
	}
	return fmt.Sprintf("State(%d)", int32(s))
}

// Signals is one per-tick health-signal vector.
type Signals struct {
	// QueueFrac is the input queue/ring occupancy in [0, 1], sampled
	// before the tick's drain (the backlog the previous tick left).
	QueueFrac float64 `json:"queue_frac"`
	// Goroutines is the process goroutine census.
	Goroutines float64 `json:"goroutines"`
	// EvalP99 is the p99 Evaluate latency in seconds, read from the
	// telemetry histogram (Histogram.Quantile), not scraped.
	EvalP99 float64 `json:"eval_p99"`
	// GCPause is the most recent GC stop-the-world pause in seconds.
	GCPause float64 `json:"gc_pause"`
}

// Thresholds holds per-signal enter thresholds for the three elevated
// rungs, indexed Warning-1, Shed-1, Critical-1. A signal at or above its
// rung-i threshold demands rung i+1. Non-positive or +Inf entries disable
// that rung for that signal.
type Thresholds struct {
	QueueFrac  [3]float64
	Goroutines [3]float64
	EvalP99    [3]float64
	GCPause    [3]float64
}

// DefaultThresholds returns production-shaped defaults: queue occupancy
// is the primary ladder driver; the process-health signals (goroutines,
// p99, GC pause) catch degradation the queue cannot see.
func DefaultThresholds() Thresholds {
	return Thresholds{
		QueueFrac:  [3]float64{0.50, 0.80, 0.95},
		Goroutines: [3]float64{2000, 5000, 10000},
		EvalP99:    [3]float64{0.050, 0.200, 0.500},
		GCPause:    [3]float64{0.010, 0.050, 0.200},
	}
}

// zero reports whether t is the zero value (caller wants defaults).
func (t Thresholds) zero() bool { return t == Thresholds{} }

// demand returns the highest rung (0..3) the signal vector demands under
// thresholds scaled by scale (1 for entry, ExitRatio for the sticky exit
// check).
func (t Thresholds) demand(sig Signals, scale float64) State {
	d := Healthy
	for rung := 2; rung >= 0; rung-- {
		if over(sig.QueueFrac, t.QueueFrac[rung], scale) ||
			over(sig.Goroutines, t.Goroutines[rung], scale) ||
			over(sig.EvalP99, t.EvalP99[rung], scale) ||
			over(sig.GCPause, t.GCPause[rung], scale) {
			d = State(rung + 1)
			break
		}
	}
	return d
}

func over(v, threshold, scale float64) bool {
	if threshold <= 0 || math.IsInf(threshold, 1) {
		return false // disabled
	}
	return v >= threshold*scale
}

// Actions is the engine seam the shed and critical rungs act through.
// Both evaluation engines implement it; every call is reversible.
type Actions interface {
	// SetCompactionDeferred defers debt-triggered index compaction while
	// set (a no-op on engines that rebuild in full each round).
	SetCompactionDeferred(on bool)
	// SetDegradedEval switches Evaluate to prediction-only refresh of the
	// previous results while set (no index maintenance, no fragment
	// scans; accuracy degrades, availability does not).
	SetDegradedEval(on bool)
}

// Config parameterizes a Controller.
type Config struct {
	// Thresholds are the rung-entry thresholds; the zero value selects
	// DefaultThresholds.
	Thresholds Thresholds
	// ExitRatio deflates the entry thresholds for the step-down check
	// (hysteresis band): a rung is left only when every signal sits below
	// enter × ExitRatio. Zero selects 0.8; values are clamped to (0, 1].
	ExitRatio float64
	// EscalateAfter is how many consecutive ticks must demand a higher
	// rung before the ladder steps up one. Zero selects 2.
	EscalateAfter int
	// RecoverAfter is how many consecutive calm ticks must pass before
	// the ladder steps down one. Zero selects 10.
	RecoverAfter int

	// ZWarn and ZShed cap the effective throttle fraction at the warning
	// and shed rungs; ZFloor is the forced fraction at critical. Zeros
	// select 0.75, 0.40, and 0.05.
	ZWarn, ZShed, ZFloor float64

	// ShedAdmit and CriticalAdmit are the ingest fractions admitted ahead
	// of the rings at the shed and critical rungs (oldest-first bulk
	// rejection keeps the newest admitted·n records of every batch).
	// Zeros select 0.5 and 0.25.
	ShedAdmit, CriticalAdmit float64

	// Actions receives the shed/critical engine actions; nil disables
	// them (the ladder still walks and journals).
	Actions Actions
	// Telemetry, when non-nil, receives the admission metrics and one
	// journal record per Observe. Passive: decisions are identical
	// without it.
	Telemetry *telemetry.Hub
}

func (c *Config) fillDefaults() {
	if c.Thresholds.zero() {
		c.Thresholds = DefaultThresholds()
	}
	if c.ExitRatio <= 0 || c.ExitRatio > 1 {
		c.ExitRatio = 0.8
	}
	if c.EscalateAfter <= 0 {
		c.EscalateAfter = 2
	}
	if c.RecoverAfter <= 0 {
		c.RecoverAfter = 10
	}
	if c.ZWarn <= 0 || c.ZWarn > 1 {
		c.ZWarn = 0.75
	}
	if c.ZShed <= 0 || c.ZShed > 1 {
		c.ZShed = 0.40
	}
	if c.ZFloor <= 0 || c.ZFloor > 1 {
		c.ZFloor = 0.05
	}
	if c.ShedAdmit <= 0 || c.ShedAdmit > 1 {
		c.ShedAdmit = 0.5
	}
	if c.CriticalAdmit <= 0 || c.CriticalAdmit > 1 {
		c.CriticalAdmit = 0.25
	}
}

// admitScale is the fixed-point denominator of the pre-ring admission
// accumulator: fractions quantize to 1/64ths so AdmitN stays integer
// arithmetic over a running total (deterministic, allocation-free).
const admitScale = 64

// Controller walks the degradation ladder. Build one with New.
type Controller struct {
	cfg Config
	tel *admTelemetry

	// state mirrors the current rung for lock-free readers (AdmitN,
	// ClampZ); admitNum is the current admitted fraction numerator over
	// admitScale (admitScale ⇒ admit everything, fast path).
	state    atomic.Int32
	admitNum atomic.Int64
	offered  atomic.Int64 // cumulative records offered to AdmitN
	admitted atomic.Int64 // cumulative records admitted by AdmitN

	transitions atomic.Int64

	// mu guards the tick-sequential fields against View readers; Observe
	// is single-caller.
	mu           sync.Mutex
	up, down     int
	ticksInState int
	last         Signals
}

// admTelemetry holds pre-resolved metric pointers (one registry lookup at
// construction). Nil when no hub is configured.
type admTelemetry struct {
	hub *telemetry.Hub

	state       *telemetry.Gauge   // lira_admission_state
	transitions *telemetry.Counter // lira_admission_transitions_total
	preShed     *telemetry.Counter // lira_admission_preshed_total
	queueFrac   *telemetry.Gauge   // lira_admission_queue_frac
	goroutines  *telemetry.Gauge   // lira_admission_goroutines
	evalP99     *telemetry.Gauge   // lira_admission_eval_p99_seconds
	gcPause     *telemetry.Gauge   // lira_admission_gc_pause_seconds
}

func newAdmTelemetry(hub *telemetry.Hub) *admTelemetry {
	if hub == nil {
		return nil
	}
	r := hub.Registry
	return &admTelemetry{
		hub:         hub,
		state:       r.Gauge("lira_admission_state"),
		transitions: r.Counter("lira_admission_transitions_total"),
		preShed:     r.Counter("lira_admission_preshed_total"),
		queueFrac:   r.Gauge("lira_admission_queue_frac"),
		goroutines:  r.Gauge("lira_admission_goroutines"),
		evalP99:     r.Gauge("lira_admission_eval_p99_seconds"),
		gcPause:     r.Gauge("lira_admission_gc_pause_seconds"),
	}
}

// New validates cfg and returns a controller in the Healthy state.
func New(cfg Config) (*Controller, error) {
	cfg.fillDefaults()
	if cfg.ZFloor > cfg.ZShed || cfg.ZShed > cfg.ZWarn {
		return nil, fmt.Errorf("admission: z ladder not monotone: floor %.3f ≤ shed %.3f ≤ warn %.3f required",
			cfg.ZFloor, cfg.ZShed, cfg.ZWarn)
	}
	c := &Controller{cfg: cfg, tel: newAdmTelemetry(cfg.Telemetry)}
	c.admitNum.Store(admitScale)
	return c, nil
}

// State returns the current rung.
func (c *Controller) State() State { return State(c.state.Load()) }

// Observe feeds one control tick's signal vector, walks the ladder at
// most one rung, applies the rung's engine actions on transitions, and
// returns the resulting state. Single-caller.
func (c *Controller) Observe(sig Signals) State {
	cur := State(c.state.Load())
	enter := c.cfg.Thresholds.demand(sig, 1)
	exit := c.cfg.Thresholds.demand(sig, c.cfg.ExitRatio)

	c.mu.Lock()
	next := cur
	switch {
	case enter > cur:
		c.down = 0
		if c.up++; c.up >= c.cfg.EscalateAfter {
			next, c.up = cur+1, 0
		}
	case exit < cur:
		c.up = 0
		if c.down++; c.down >= c.cfg.RecoverAfter {
			next, c.down = cur-1, 0
		}
	default:
		c.up, c.down = 0, 0
	}
	if next != cur {
		c.ticksInState = 0
	} else {
		c.ticksInState++
	}
	c.last = sig
	c.mu.Unlock()

	if next != cur {
		c.transition(cur, next)
	}
	c.journal(sig, cur, next, enter)
	return next
}

// transition publishes the new rung and applies its engine actions.
func (c *Controller) transition(from, to State) {
	c.state.Store(int32(to))
	switch {
	case to >= Critical:
		c.admitNum.Store(int64(math.Round(c.cfg.CriticalAdmit * admitScale)))
	case to >= Shed:
		c.admitNum.Store(int64(math.Round(c.cfg.ShedAdmit * admitScale)))
	default:
		c.admitNum.Store(admitScale)
	}
	c.transitions.Add(1)
	if a := c.cfg.Actions; a != nil {
		if (from >= Shed) != (to >= Shed) {
			a.SetCompactionDeferred(to >= Shed)
		}
		if (from >= Critical) != (to >= Critical) {
			a.SetDegradedEval(to >= Critical)
		}
	}
}

// journal emits the per-tick record and refreshes the signal gauges.
func (c *Controller) journal(sig Signals, from, to State, demanded State) {
	if c.tel == nil {
		return
	}
	c.tel.state.Set(float64(to))
	c.tel.queueFrac.Set(sig.QueueFrac)
	c.tel.goroutines.Set(sig.Goroutines)
	c.tel.evalP99.Set(sig.EvalP99)
	c.tel.gcPause.Set(sig.GCPause)
	ev := &telemetry.AdmissionEvent{
		State:      to.String(),
		Demanded:   demanded.String(),
		QueueFrac:  sig.QueueFrac,
		Goroutines: sig.Goroutines,
		EvalP99:    sig.EvalP99,
		GCPause:    sig.GCPause,
		ZCap:       c.ClampZ(1),
	}
	if from != to {
		ev.From = from.String()
		c.tel.transitions.Inc()
		// Rung transitions are rare and load-bearing: emit a span so a
		// trace shows exactly where the ladder moved amid the evaluate
		// and adapt spans around it. Observe is single-caller (the
		// background tick), so span creation order stays deterministic.
		c.tel.hub.Spans().Start("rung_transition", "admission").
			Str("from", from.String()).Str("to", to.String()).
			Num("queue_frac", sig.QueueFrac).Num("eval_p99", sig.EvalP99).End()
	}
	c.tel.hub.Record(telemetry.Record{Kind: telemetry.KindAdmission, Admission: ev})
}

// ClampZ tightens a throttle fraction per the current rung: warning and
// shed cap it (min), critical forces the floor. Install it on the control
// plane with Plane.SetZClamp. Safe for concurrent use.
func (c *Controller) ClampZ(z float64) float64 {
	switch State(c.state.Load()) {
	case Warning:
		return math.Min(z, c.cfg.ZWarn)
	case Shed:
		return math.Min(z, c.cfg.ZShed)
	case Critical:
		return c.cfg.ZFloor
	}
	return z
}

// AdmitN is the pre-ring admission gate: offered a batch of n records in
// arrival order, it returns how many of the newest to admit (the caller
// enqueues the suffix — oldest-first bulk rejection). Below the shed rung
// every record is admitted. The admitted count tracks the configured
// fraction exactly over the cumulative offered total (fixed-point
// accumulator, no randomness), so it is deterministic for a serialized
// offer sequence and allocation-free always. Safe for concurrent
// producers.
func (c *Controller) AdmitN(n int) int {
	if n <= 0 {
		return 0
	}
	num := c.admitNum.Load()
	if num >= admitScale {
		return n
	}
	total := c.offered.Add(int64(n))
	keep := int(total*num/admitScale - (total-int64(n))*num/admitScale)
	if rejected := n - keep; rejected > 0 {
		if c.tel != nil {
			c.tel.preShed.Add(int64(rejected))
		}
	}
	c.admitted.Add(int64(keep))
	return keep
}

// PreShed returns the cumulative count of records rejected ahead of the
// rings by AdmitN.
func (c *Controller) PreShed() int64 { return c.offered.Load() - c.admitted.Load() }

// View is a point-in-time snapshot of the ladder for introspection
// endpoints (/debug/lira).
type View struct {
	State        string  `json:"state"`
	StateCode    int     `json:"state_code"`
	TicksInState int     `json:"ticks_in_state"`
	Transitions  int64   `json:"transitions"`
	PreShed      int64   `json:"pre_shed"`
	ZCap         float64 `json:"z_cap"`
	Signals      Signals `json:"signals"`
}

// View snapshots the controller. Safe to call concurrently with Observe.
func (c *Controller) View() View {
	c.mu.Lock()
	ticks, last := c.ticksInState, c.last
	c.mu.Unlock()
	st := State(c.state.Load())
	return View{
		State:        st.String(),
		StateCode:    int(st),
		TicksInState: ticks,
		Transitions:  c.transitions.Load(),
		PreShed:      c.PreShed(),
		ZCap:         c.ClampZ(1),
		Signals:      last,
	}
}

// Transitions returns the number of rung changes since construction.
func (c *Controller) Transitions() int64 { return c.transitions.Load() }

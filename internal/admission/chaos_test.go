package admission

import (
	"encoding/json"
	"testing"

	"lira/internal/rng"
	"lira/internal/telemetry"
)

// chaosTrace synthesizes the health-signal sequence of a combined
// overload + partition incident, deterministically from seed: load ramps
// into sustained overload (queue saturating, p99 inflating), a partition
// mid-incident spikes goroutines and stalls the queue at full, then the
// partition heals and load subsides to calm. Jitter comes from the
// seeded generator only, so a seed pins the whole trace.
func chaosTrace(seed uint64, ticks int) []Signals {
	r := rng.New(seed)
	trace := make([]Signals, ticks)
	ramp, hold, heal := ticks/4, ticks/2, 3*ticks/4
	for t := range trace {
		var s Signals
		switch {
		case t < ramp: // calm baseline
			s.QueueFrac = r.Range(0.05, 0.25)
			s.Goroutines = r.Range(20, 60)
			s.EvalP99 = r.Range(0.001, 0.010)
			s.GCPause = r.Range(0, 0.002)
		case t < hold: // overload ramp: queue and p99 climb together
			frac := float64(t-ramp) / float64(hold-ramp)
			s.QueueFrac = 0.3 + 0.7*frac + r.Range(-0.02, 0.02)
			s.Goroutines = 50 + 400*frac
			s.EvalP99 = 0.010 + 0.3*frac
			s.GCPause = r.Range(0, 0.01)
		case t < heal: // partition on top: stalled full queue, conn pileup
			s.QueueFrac = r.Range(0.96, 1.0)
			s.Goroutines = r.Range(3000, 12000)
			s.EvalP99 = r.Range(0.4, 0.9)
			s.GCPause = r.Range(0.01, 0.08)
		default: // healed and drained
			s.QueueFrac = r.Range(0.0, 0.15)
			s.Goroutines = r.Range(20, 60)
			s.EvalP99 = r.Range(0.001, 0.008)
			s.GCPause = r.Range(0, 0.002)
		}
		trace[t] = s
	}
	return trace
}

// runChaos feeds one trace through a fresh controller on a model-time
// clock and returns the state walk plus the marshaled journal.
func runChaos(t *testing.T, trace []Signals) ([]State, []byte) {
	t.Helper()
	hub := telemetry.NewHub(4 * len(trace))
	tick := 0.0
	hub.SetClock(func() float64 { return tick })
	cfg := Config{EscalateAfter: 2, RecoverAfter: 5, Telemetry: hub, Actions: &fakeActions{}}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	walk := make([]State, len(trace))
	for i, sig := range trace {
		tick = float64(i)
		walk[i] = c.Observe(sig)
		// A little pre-ring traffic so the preshed counter moves too; the
		// offered count is tick-determined, hence reproducible.
		c.AdmitN(1 + i%7)
	}
	j, err := json.Marshal(hub.Journal.Tail(0))
	if err != nil {
		t.Fatal(err)
	}
	return walk, j
}

// TestChaosLadderDeterministicAndBounded drives the ladder through a
// seeded overload + partition incident, three seeds, two runs each:
//
//   - the two runs of a seed produce byte-identical journals (the
//     reproducibility contract);
//   - escalation during the incident is monotone — the walk never steps
//     down while the incident phases are still demanding;
//   - the incident reaches at least the shed rung;
//   - after the trace goes calm the ladder recovers to healthy within
//     the hysteresis bound (3 rungs × RecoverAfter ticks plus slack) and
//     stays there.
func TestChaosLadderDeterministicAndBounded(t *testing.T) {
	const ticks = 120
	for _, seed := range []uint64{1, 42, 20260808} {
		trace := chaosTrace(seed, ticks)
		walk1, j1 := runChaos(t, trace)
		_, j2 := runChaos(t, trace)
		if string(j1) != string(j2) {
			t.Fatalf("seed %d: journals differ between identical runs", seed)
		}

		heal := 3 * ticks / 4
		peak := Healthy
		for i := 0; i < heal; i++ {
			if walk1[i] > peak {
				peak = walk1[i]
			}
			if walk1[i] < peak && i < heal {
				// The overload phases only ever demand more: any step-down
				// before the heal point is a hysteresis bug.
				t.Fatalf("seed %d: non-monotone escalation at tick %d: %v after peak %v", seed, i, walk1[i], peak)
			}
		}
		if peak < Shed {
			t.Fatalf("seed %d: incident peaked at %v, want at least shed", seed, peak)
		}

		// Bounded recovery: ladder home and stable before the trace ends.
		recoverBound := heal + 3*5 + 10 // 3 rungs × RecoverAfter + slack
		if recoverBound >= ticks {
			t.Fatalf("trace too short for the recovery bound")
		}
		for i := recoverBound; i < ticks; i++ {
			if walk1[i] != Healthy {
				t.Fatalf("seed %d: tick %d still %v, want healthy by %d", seed, i, walk1[i], recoverBound)
			}
		}
	}
}

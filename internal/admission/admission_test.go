package admission

import (
	"sync"
	"testing"

	"lira/internal/telemetry"
)

// calm is a signal vector demanding no rung at all.
var calm = Signals{}

// overload demands the critical rung under the default thresholds.
var overload = Signals{QueueFrac: 0.99}

// fastCfg is a ladder that escalates after 1 demanding tick and recovers
// after 2 calm ones — small counts keep the walks in tests readable.
func fastCfg() Config {
	return Config{EscalateAfter: 1, RecoverAfter: 2}
}

func TestNewValidatesZLadder(t *testing.T) {
	if _, err := New(Config{ZWarn: 0.3, ZShed: 0.5, ZFloor: 0.1}); err == nil {
		t.Fatalf("New accepted a non-monotone z ladder (shed above warn)")
	}
	if _, err := New(Config{ZWarn: 0.8, ZShed: 0.5, ZFloor: 0.6}); err == nil {
		t.Fatalf("New accepted a non-monotone z ladder (floor above shed)")
	}
	c, err := New(Config{})
	if err != nil {
		t.Fatalf("New(zero config): %v", err)
	}
	if got := c.State(); got != Healthy {
		t.Fatalf("fresh controller state = %v, want healthy", got)
	}
}

// TestEscalationOneRungPerTick walks the ladder under sustained critical
// demand: movement is one rung per tick at most, gated by EscalateAfter.
func TestEscalationOneRungPerTick(t *testing.T) {
	c, err := New(Config{EscalateAfter: 2, RecoverAfter: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := []State{
		Healthy, Warning, // ticks 1-2: second demanding tick steps up
		Warning, Shed,
		Shed, Critical,
		Critical, Critical, // saturated: no rung above critical
	}
	for i, w := range want {
		if got := c.Observe(overload); got != w {
			t.Fatalf("tick %d: state = %v, want %v", i+1, got, w)
		}
	}
	if got := c.Transitions(); got != 3 {
		t.Fatalf("transitions = %d, want 3", got)
	}
}

// TestRecoveryIsDamped checks the step-down path: RecoverAfter calm
// ticks per rung, one rung at a time, monotone all the way home.
func TestRecoveryIsDamped(t *testing.T) {
	c, err := New(Config{EscalateAfter: 1, RecoverAfter: 3})
	if err != nil {
		t.Fatal(err)
	}
	for c.State() != Critical {
		c.Observe(overload)
	}
	states := []State{}
	for i := 0; i < 9; i++ {
		states = append(states, c.Observe(calm))
	}
	want := []State{Critical, Critical, Shed, Shed, Shed, Warning, Warning, Warning, Healthy}
	for i, w := range want {
		if states[i] != w {
			t.Fatalf("calm tick %d: state = %v, want %v (walk %v)", i+1, states[i], w, states)
		}
	}
}

// TestHysteresisBand pins the sticky exit: a signal below the warning
// enter threshold but above enter×ExitRatio neither escalates nor
// recovers — the ladder holds its rung instead of flapping.
func TestHysteresisBand(t *testing.T) {
	c, err := New(Config{EscalateAfter: 1, RecoverAfter: 1, ExitRatio: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	c.Observe(Signals{QueueFrac: 0.60}) // ≥ 0.50: demands warning
	if got := c.State(); got != Warning {
		t.Fatalf("state after demand = %v, want warning", got)
	}
	// 0.45 < 0.50 (no entry demand) but ≥ 0.40 = 0.50×0.8 (not calm).
	for i := 0; i < 50; i++ {
		if got := c.Observe(Signals{QueueFrac: 0.45}); got != Warning {
			t.Fatalf("in-band tick %d: state = %v, want warning held", i+1, got)
		}
	}
	// An in-band tick must also break a recovery streak: calm, in-band,
	// calm may not step down a RecoverAfter=2 ladder on that last tick.
	c2, _ := New(Config{EscalateAfter: 1, RecoverAfter: 2, ExitRatio: 0.8})
	c2.Observe(Signals{QueueFrac: 0.60})
	c2.Observe(calm)                     // down = 1
	c2.Observe(Signals{QueueFrac: 0.45}) // in-band: resets the streak
	if got := c2.Observe(calm); got != Warning {
		t.Fatalf("recovery streak survived an in-band tick: state = %v, want warning", got)
	}
	if got := c2.Observe(calm); got != Healthy {
		t.Fatalf("two consecutive calm ticks: state = %v, want healthy", got)
	}
}

func TestClampZPerRung(t *testing.T) {
	c, err := New(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if got := c.ClampZ(0.9); got != 0.9 {
		t.Fatalf("healthy clamp(0.9) = %v, want pass-through", got)
	}
	c.Observe(Signals{QueueFrac: 0.60}) // → warning
	if got := c.ClampZ(0.9); got != 0.75 {
		t.Fatalf("warning clamp(0.9) = %v, want 0.75", got)
	}
	if got := c.ClampZ(0.5); got != 0.5 {
		t.Fatalf("warning clamp(0.5) = %v, want pass-through below cap", got)
	}
	c.Observe(Signals{QueueFrac: 0.85}) // → shed
	if got := c.ClampZ(0.9); got != 0.40 {
		t.Fatalf("shed clamp(0.9) = %v, want 0.40", got)
	}
	c.Observe(overload) // → critical
	if got := c.ClampZ(0.9); got != 0.05 {
		t.Fatalf("critical clamp(0.9) = %v, want the 0.05 floor", got)
	}
	if got := c.ClampZ(0.01); got != 0.05 {
		t.Fatalf("critical clamp(0.01) = %v, want the floor to force 0.05", got)
	}
}

// TestAdmitNHealthyFastPath: below the shed rung every record is
// admitted and nothing is counted.
func TestAdmitNHealthyFastPath(t *testing.T) {
	c, err := New(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 7, 1000} {
		if got := c.AdmitN(n); got != n {
			t.Fatalf("healthy AdmitN(%d) = %d, want all admitted", n, got)
		}
	}
	if got := c.PreShed(); got != 0 {
		t.Fatalf("healthy PreShed = %d, want 0", got)
	}
}

// TestAdmitNTracksFractionExactly: at the shed rung with admit fraction
// 0.5, the cumulative admitted count equals ⌊offered/2⌋ regardless of
// how arrivals are batched, and the result sequence is deterministic.
func TestAdmitNTracksFractionExactly(t *testing.T) {
	mk := func() *Controller {
		c, err := New(fastCfg())
		if err != nil {
			t.Fatal(err)
		}
		c.Observe(Signals{QueueFrac: 0.85}) // warning
		c.Observe(Signals{QueueFrac: 0.85}) // shed (ShedAdmit 0.5)
		return c
	}
	batches := []int{1, 1, 3, 64, 7, 128, 1, 5, 2, 33}
	c1, c2 := mk(), mk()
	offered, admitted := 0, 0
	for i, n := range batches {
		a1, a2 := c1.AdmitN(n), c2.AdmitN(n)
		if a1 != a2 {
			t.Fatalf("batch %d: AdmitN nondeterministic: %d vs %d", i, a1, a2)
		}
		if a1 < 0 || a1 > n {
			t.Fatalf("batch %d: AdmitN(%d) = %d out of range", i, n, a1)
		}
		offered += n
		admitted += a1
		if want := offered / 2; admitted != want {
			t.Fatalf("after batch %d: admitted %d of %d, want exactly %d", i, admitted, offered, want)
		}
	}
	if got := c1.PreShed(); got != int64(offered-admitted) {
		t.Fatalf("PreShed = %d, want %d", got, offered-admitted)
	}
}

// TestAdmitNConcurrentConservation: concurrent producers never lose or
// double-count records — offered-admitted accounting stays conserved and
// every per-call result is within [0, n].
func TestAdmitNConcurrentConservation(t *testing.T) {
	c, err := New(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	c.Observe(Signals{QueueFrac: 0.85})
	c.Observe(Signals{QueueFrac: 0.85}) // shed: 0.5 admitted
	const producers, per = 8, 1000
	var wg sync.WaitGroup
	admitted := make([]int, producers)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				got := c.AdmitN(3)
				if got < 0 || got > 3 {
					panic("AdmitN out of range")
				}
				admitted[p] += got
			}
		}(p)
	}
	wg.Wait()
	total := 0
	for _, a := range admitted {
		total += a
	}
	offered := producers * per * 3
	if want := offered / 2; total != want {
		t.Fatalf("concurrent admitted = %d of %d, want exactly %d", total, offered, want)
	}
	if got := c.PreShed(); got != int64(offered-total) {
		t.Fatalf("PreShed = %d, want %d", got, offered-total)
	}
}

// fakeActions records the engine-action sequence the ladder fires.
type fakeActions struct {
	mu    sync.Mutex
	calls []string
}

func (f *fakeActions) SetCompactionDeferred(on bool) { f.record("compact", on) }
func (f *fakeActions) SetDegradedEval(on bool)       { f.record("degraded", on) }
func (f *fakeActions) record(what string, on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if on {
		f.calls = append(f.calls, what+"=on")
	} else {
		f.calls = append(f.calls, what+"=off")
	}
}
func (f *fakeActions) seq() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.calls...)
}

// TestActionsFireAtBoundaries: compaction deferral toggles at the shed
// boundary, degraded eval at the critical boundary — once each way, not
// on every tick.
func TestActionsFireAtBoundaries(t *testing.T) {
	fa := &fakeActions{}
	cfg := fastCfg()
	cfg.Actions = fa
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		c.Observe(overload) // → warning → shed → critical, then hold
	}
	for c.State() != Healthy {
		c.Observe(calm)
	}
	want := []string{"compact=on", "degraded=on", "degraded=off", "compact=off"}
	got := fa.seq()
	if len(got) != len(want) {
		t.Fatalf("action sequence %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("action sequence %v, want %v", got, want)
		}
	}
}

// TestJournalAndView: every Observe journals one admission record on the
// hub clock; transitions carry From; the View mirrors the ladder.
func TestJournalAndView(t *testing.T) {
	hub := telemetry.NewHub(64)
	tick := 0.0
	hub.SetClock(func() float64 { return tick })
	cfg := fastCfg()
	cfg.Telemetry = hub
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tick = 1
	c.Observe(overload) // healthy → warning
	tick = 2
	c.Observe(calm)

	recs := hub.Journal.Tail(0)
	if len(recs) != 2 {
		t.Fatalf("journal has %d records, want 2", len(recs))
	}
	first := recs[0]
	if first.Kind != telemetry.KindAdmission || first.Admission == nil {
		t.Fatalf("first record = %+v, want an admission record", first)
	}
	if first.Tick != 1 {
		t.Fatalf("first record tick = %v, want model time 1", first.Tick)
	}
	if first.Admission.From != "healthy" || first.Admission.State != "warning" {
		t.Fatalf("transition record = %+v, want healthy→warning", first.Admission)
	}
	if first.Admission.Demanded != "critical" {
		t.Fatalf("demanded = %q, want critical (queue 0.99)", first.Admission.Demanded)
	}
	if second := recs[1]; second.Admission.From != "" {
		t.Fatalf("steady-state record carries From = %q, want empty", second.Admission.From)
	}

	v := c.View()
	if v.State != "warning" || v.StateCode != int(Warning) {
		t.Fatalf("view state = %q/%d, want warning/%d", v.State, v.StateCode, int(Warning))
	}
	if v.ZCap != 0.75 {
		t.Fatalf("view z cap = %v, want 0.75", v.ZCap)
	}
	if v.Transitions != 1 {
		t.Fatalf("view transitions = %d, want 1", v.Transitions)
	}
	if v.Signals != calm {
		t.Fatalf("view signals = %+v, want the last observed vector", v.Signals)
	}
}

// TestDisabledThresholds: non-positive and +Inf thresholds never demand.
func TestDisabledThresholds(t *testing.T) {
	cfg := fastCfg()
	cfg.Thresholds = Thresholds{QueueFrac: [3]float64{0.5, 0.8, 0.95}}
	// Goroutines/EvalP99/GCPause all zero ⇒ disabled.
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if got := c.Observe(Signals{Goroutines: 1e9, EvalP99: 1e9, GCPause: 1e9}); got != Healthy {
			t.Fatalf("disabled signals escalated to %v", got)
		}
	}
}

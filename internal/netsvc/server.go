// Package netsvc deploys the LIRA architecture over TCP: a server process
// hosting layer 1 (the mobile CQ server) and the logical layer-2 base
// stations, and client runtimes for layer-3 mobile nodes and for query
// subscribers. Messages use the wire package's binary formats, so the
// broadcast sizes match the paper's §4.3.2 accounting.
//
// The server drives an Engine — the unsharded cqserver.Server, or the
// spatially sharded shard.Server when ServerConfig.Shards > 1; both
// produce byte-identical query results, so sharding is purely a
// concurrency knob. Periodic work — draining the input queue(s),
// refreshing statistics, re-running the adaptation, evaluating queries —
// happens on one background loop under the server mutex. Connection
// goroutines funnel decoded messages through the same mutex, with one
// exception: in sharded mode position updates enqueue onto the engine's
// lock-free rings without taking the mutex at all, so ingest scales with
// connections instead of serializing on the evaluator.
//
// The layer is built for lossy, partition-prone links (the network the
// paper's mobile CQ system actually runs over): connections carry read
// deadlines kept alive by client heartbeats, a panic in one connection
// handler is isolated to that connection, input-queue overflow sheds
// oldest-first into the same drop accounting THROTLOOP watches instead of
// growing without bound, clients reconnect with exponential backoff and
// deterministic jitter, and a disconnected node degrades to the
// conservative fallback threshold Δ⊢. Every one of those events is
// counted in metrics.NetCounters — degradation here is visible, never
// silent. See DESIGN.md's "Failure model" section.
package netsvc

import (
	"context"
	"net"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"lira/internal/admission"
	"lira/internal/basestation"
	"lira/internal/cqserver"
	"lira/internal/engine"
	"lira/internal/geo"
	"lira/internal/metrics"
	"lira/internal/slo"
	"lira/internal/spans"
	"lira/internal/telemetry"
	"lira/internal/wire"
)

// Clock returns the current simulation time in seconds. Deployments use
// wall clock; tests inject accelerated clocks.
type Clock func() float64

// wallBase pins WallClock's origin once at process start. Advancing via
// time.Since rides Go's monotonic clock, so an NTP step (or any
// wall-clock jump) can never move simulation time backwards through
// deadline or adaptation-period math; the Unix-epoch offset keeps
// separate processes (lirad, liranode) on one timebase.
var wallBase = time.Now()
var wallBaseUnix = float64(wallBase.UnixNano()) / 1e9

// WallClock is the default clock: Unix seconds with sub-second
// precision, advanced monotonically from a fixed origin.
func WallClock() float64 { return wallBaseUnix + time.Since(wallBase).Seconds() }

// defaultReadTimeout is the server's per-connection silence bound. It is
// deliberately several multiples of the clients' default heartbeat
// cadence, so only a genuinely dead link trips it.
const defaultReadTimeout = 30 * time.Second

// ServerConfig parameterizes a network server.
type ServerConfig struct {
	// Core configures the embedded mobile CQ server.
	Core cqserver.Config
	// Shards selects the evaluation engine via engine.New (see
	// internal/engine): values above 1 deploy the spatially sharded
	// shard.Server with that many shard cells and a lock-free ingest
	// path; 0 and 1 deploy the unsharded cqserver.Server. Query results
	// are byte-identical either way.
	Shards int
	// Stations is the base-station layout. Empty selects a single
	// station covering the whole space.
	Stations []basestation.Station
	// Z is the throttle fraction used at each adaptation.
	Z float64
	// AdaptEvery is the adaptation period; zero disables periodic
	// adaptation (Adapt can still be called manually).
	AdaptEvery time.Duration
	// EvalEvery is the continual-query evaluation period; zero disables
	// pushes (queries are still answered once at registration).
	EvalEvery time.Duration
	// DrainPerTick bounds queue draining per background tick; zero means
	// drain fully.
	DrainPerTick int
	// ReadTimeout is the per-connection read deadline: a connection
	// silent for this long is dropped (clients heartbeat at a faster
	// cadence, so only dead links trip it). Zero selects 30s; negative
	// disables deadlines.
	ReadTimeout time.Duration
	// Counters receives degradation accounting; nil allocates a private
	// set (inspect it via Server.Counters).
	Counters *metrics.NetCounters
	// Clock supplies simulation time; nil selects WallClock.
	Clock Clock
	// Telemetry, when non-nil, receives wire-frame counters and a journal
	// record for every degradation event, and is propagated into the
	// embedded CQ server (unless Core.Telemetry is already set). The hub's
	// net-counter bridge is bound to Counters and its clock defaults to
	// the server's Clock.
	Telemetry *telemetry.Hub
	// Admission, when non-nil, enables the health-driven admission
	// controller: once per background tick the server samples queue
	// occupancy (pre-drain), the goroutine census, Evaluate p99, and the
	// last GC pause, and walks the degradation ladder. The controller's
	// Actions and Telemetry default to the server's engine and hub; its
	// z clamp is installed on the engine's control plane.
	Admission *admission.Config
	// AdmissionSample, when non-nil, replaces the built-in health-signal
	// sampler (deterministic chaos tests inject signal traces).
	AdmissionSample func() admission.Signals
	// SLO, when non-nil, enables the burn-rate tracker: once per
	// background tick the server samples each target's indicator and
	// feeds the multi-window windows. Target names select the indicator:
	// "eval_p99" (Evaluate p99 seconds), "inaccuracy" (shed fraction of
	// offered records — the ledger's lost-report proxy for result
	// inaccuracy), "rung" (admission-ladder state ordinal), "queue_frac"
	// (input-queue occupancy), "gc_pause" (last GC pause seconds);
	// unknown names sample 0. The tracker's Telemetry defaults to the
	// server's hub.
	SLO *slo.Config
}

// Server hosts the CQ server and base stations behind a TCP listener.
type Server struct {
	cfg      ServerConfig
	ln       net.Listener
	counters *metrics.NetCounters
	tel      *netTelemetry

	// eng is the evaluation engine; lockFreeIngest marks its ingest path
	// safe for concurrent producers (sharded mode), letting update frames
	// skip the server mutex entirely.
	eng            Engine
	lockFreeIngest bool

	// adm is the degradation ladder (nil unless ServerConfig.Admission is
	// set). Its lock-free methods (AdmitN, ClampZ) gate the ingest paths
	// and the adaptation; Observe runs on the background tick.
	adm *admission.Controller

	// offered/invalid feed the record-conservation ledger (ledger.go):
	// offered counts every update record entering ingest/ingestBatch,
	// invalid counts the out-of-range ids discarded at the trust
	// boundary. Always counted (two uncontended atomics per record) so
	// Ledger works with or without telemetry.
	offered atomic.Int64
	invalid atomic.Int64

	// led holds the lira_ledger_* gauges (nil without a hub); slotr is
	// the optional SLO burn-rate tracker with sloVals its pooled per-tick
	// sample buffer (guarded by mu).
	led     *ledgerTelemetry
	slotr   *slo.Tracker
	sloVals []float64

	mu          sync.Mutex
	deployment  *basestation.Deployment
	frames      [][]byte // cached per-station assignment frames
	nodeConns   map[uint32]*srvConn
	nodeStation map[uint32]int
	queryRegs   []queryReg // registration order, parallel to core queries
	lastAdapt   *cqserver.Adaptation
	closed      bool

	// obsPos/obsSpd are the pooled statistics-observation buffers: one
	// snapshot per background tick reuses them instead of allocating two
	// population-sized slices per tick. Guarded by mu.
	obsPos []geo.Point
	obsSpd []float64

	wg   sync.WaitGroup
	done chan struct{}
}

// netTelemetry holds the deployment layer's pre-resolved metric pointers
// (one registry lookup at startup, one atomic per frame afterwards). Nil
// when no Hub is configured.
type netTelemetry struct {
	hub *telemetry.Hub

	readHello  *telemetry.Counter // lira_frames_read_hello_total
	readUpdate *telemetry.Counter // lira_frames_read_update_total
	readBatch  *telemetry.Counter // lira_frames_read_update_batch_total
	readQuery  *telemetry.Counter // lira_frames_read_query_total
	readPing   *telemetry.Counter // lira_frames_read_ping_total
	readPong   *telemetry.Counter // lira_frames_read_pong_total
	readBad    *telemetry.Counter // lira_frames_read_bad_total

	sentAssignment *telemetry.Counter // lira_frames_sent_assignment_total
	sentResult     *telemetry.Counter // lira_frames_sent_result_total

	connectedNodes *telemetry.Gauge // lira_connected_nodes

	batchSize     *telemetry.Histogram // lira_ingest_batch_size
	decodeSeconds *telemetry.Histogram // lira_batch_decode_seconds
	gcPause       *telemetry.Gauge     // lira_gc_pause_seconds

	// evalSeconds is the engines' Evaluate-latency histogram (shared by
	// registry name); the admission sampler reads its p99 in-process.
	evalSeconds *telemetry.Histogram // lira_evaluate_seconds
}

func newNetTelemetry(hub *telemetry.Hub) *netTelemetry {
	if hub == nil {
		return nil
	}
	r := hub.Registry
	return &netTelemetry{
		hub:            hub,
		readHello:      r.Counter("lira_frames_read_hello_total"),
		readUpdate:     r.Counter("lira_frames_read_update_total"),
		readBatch:      r.Counter("lira_frames_read_update_batch_total"),
		readQuery:      r.Counter("lira_frames_read_query_total"),
		readPing:       r.Counter("lira_frames_read_ping_total"),
		readPong:       r.Counter("lira_frames_read_pong_total"),
		readBad:        r.Counter("lira_frames_read_bad_total"),
		sentAssignment: r.Counter("lira_frames_sent_assignment_total"),
		sentResult:     r.Counter("lira_frames_sent_result_total"),
		connectedNodes: r.Gauge("lira_connected_nodes"),
		batchSize:      r.Histogram("lira_ingest_batch_size", []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}),
		decodeSeconds:  r.Histogram("lira_batch_decode_seconds", nil),
		gcPause:        r.Gauge("lira_gc_pause_seconds"),
		evalSeconds:    r.Histogram("lira_evaluate_seconds", nil),
	}
}

// spans returns the hub's span tracer (nil without a hub or tracer);
// the returned tracer and the Ctx values it hands out are nil-safe, so
// call sites chain t.spans().Start(...) unconditionally.
func (t *netTelemetry) spans() *spans.Tracer {
	if t == nil {
		return nil
	}
	return t.hub.Spans()
}

// recordNet appends one degradation record to the journal (no-op without
// a hub).
func (t *netTelemetry) recordNet(event, peer string, node int64, detail string) {
	if t == nil {
		return
	}
	t.hub.Record(telemetry.Record{
		Kind: telemetry.KindNet,
		Net:  &telemetry.NetEvent{Event: event, Peer: peer, Node: node, Detail: detail},
	})
}

// queryReg ties one registered continual query to the connection that
// owns it and the id the client chose for it. Result frames carry the
// client's id, so a reconnecting subscriber that re-registers under its
// original ids resumes seamlessly; when the owning connection drops, its
// registrations are removed so abandoned queries stop consuming
// evaluation work.
type queryReg struct {
	owner    *srvConn
	clientID uint32
	rect     geo.Rect
}

type srvConn struct {
	c  net.Conn
	mu sync.Mutex // serializes frame writes
}

func (sc *srvConn) send(frame []byte) error {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return wire.WriteFrame(sc.c, frame)
}

// Listen starts a server on addr (e.g. "127.0.0.1:0").
func Listen(addr string, cfg ServerConfig) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s, err := Serve(ln, cfg)
	if err != nil {
		ln.Close()
		return nil, err
	}
	return s, nil
}

// Serve starts a server on an existing listener. Chaos tests use it to
// interpose a fault-injecting listener; Listen is the plain-TCP wrapper.
func Serve(ln net.Listener, cfg ServerConfig) (*Server, error) {
	if cfg.Z <= 0 || cfg.Z > 1 {
		cfg.Z = 1
	}
	if cfg.Clock == nil {
		cfg.Clock = WallClock
	}
	if cfg.ReadTimeout == 0 {
		cfg.ReadTimeout = defaultReadTimeout
	}
	if cfg.Counters == nil {
		cfg.Counters = &metrics.NetCounters{}
	}
	if cfg.Telemetry != nil {
		clock := cfg.Clock
		cfg.Telemetry.EnsureClock(func() float64 { return clock() })
		cfg.Telemetry.BindNetCounters(cfg.Counters)
		if cfg.Core.Telemetry == nil {
			cfg.Core.Telemetry = cfg.Telemetry
		}
	}
	eng, err := engine.New(cfg.Core, cfg.Shards)
	if err != nil {
		return nil, err
	}
	if len(cfg.Stations) == 0 {
		space := cfg.Core.Space
		cfg.Stations = []basestation.Station{{
			ID:     0,
			Center: space.Center(),
			Radius: space.Width() + space.Height(),
		}}
	}
	s := &Server{
		cfg:            cfg,
		ln:             ln,
		counters:       cfg.Counters,
		tel:            newNetTelemetry(cfg.Telemetry),
		eng:            eng,
		lockFreeIngest: eng.ConcurrentIngest(),
		nodeConns:      make(map[uint32]*srvConn),
		nodeStation:    make(map[uint32]int),
		done:           make(chan struct{}),
	}
	if cfg.Admission != nil {
		ac := *cfg.Admission
		if ac.Actions == nil {
			ac.Actions = eng
		}
		if ac.Telemetry == nil {
			ac.Telemetry = cfg.Telemetry
		}
		adm, err := admission.New(ac)
		if err != nil {
			return nil, err
		}
		s.adm = adm
		// The ladder's z cap applies inside the control plane, so manual
		// Adapt calls, the periodic re-adaptation, and AdaptAuto all spend
		// the health-clamped budget — and journals record the z actually
		// used.
		eng.ControlPlane().SetZClamp(adm.ClampZ)
	}
	s.led = newLedgerTelemetry(cfg.Telemetry)
	if cfg.SLO != nil {
		sc := *cfg.SLO
		if sc.Telemetry == nil {
			sc.Telemetry = cfg.Telemetry
		}
		tr, err := slo.New(sc)
		if err != nil {
			return nil, err
		}
		s.slotr = tr
		s.sloVals = make([]float64, len(sc.Targets))
	}
	if err := s.adaptLocked(); err != nil {
		return nil, err
	}
	s.wg.Add(2)
	go s.acceptLoop()
	go s.backgroundLoop()
	return s, nil
}

// Addr returns the listener address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Counters exposes the server's degradation counters.
func (s *Server) Counters() *metrics.NetCounters { return s.counters }

// Close stops the server, disconnects every client, and drains the
// in-flight frames still queued: updates already accepted are applied to
// the motion table before Close returns, so a graceful shutdown loses
// nothing it acknowledged.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.done)
	conns := make([]*srvConn, 0, len(s.nodeConns))
	seen := map[*srvConn]bool{}
	for _, c := range s.nodeConns {
		if !seen[c] {
			conns = append(conns, c)
			seen[c] = true
		}
	}
	for _, r := range s.queryRegs {
		if !seen[r.owner] {
			conns = append(conns, r.owner)
			seen[r.owner] = true
		}
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.c.Close()
	}
	s.wg.Wait()
	// All connection goroutines and the background loop are gone: drain
	// whatever the input queue still holds.
	s.eng.Drain(-1)
	return err
}

// Core exposes the evaluation engine for inspection (tests, metrics).
// Callers must not mutate it concurrently with a running server.
func (s *Server) Core() Engine { return s.eng }

// Sharded returns the shard count the server was deployed with: 1 for
// the unsharded engine, K for the sharded one.
func (s *Server) Sharded() int {
	if s.cfg.Shards > 1 {
		return s.cfg.Shards
	}
	return 1
}

// Adapt re-runs the LIRA adaptation at the configured throttle fraction
// and broadcasts fresh assignments to every connected node.
func (s *Server) Adapt() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.adaptLocked()
}

func (s *Server) adaptLocked() error {
	ad, err := s.eng.Adapt(s.cfg.Z)
	if err != nil {
		return err
	}
	deploy, err := basestation.NewDeployment(s.cfg.Stations, ad.Partitioning, ad.Deltas)
	if err != nil {
		return err
	}
	s.lastAdapt = ad
	s.deployment = deploy
	s.frames = make([][]byte, len(deploy.Assignments))
	for i, a := range deploy.Assignments {
		s.frames[i] = assignmentFrame(uint32(i), a)
	}
	// Rebroadcast to camped nodes.
	for id, st := range s.nodeStation {
		if conn, ok := s.nodeConns[id]; ok && st >= 0 && st < len(s.frames) {
			frame := s.frames[st]
			if s.tel != nil {
				s.tel.sentAssignment.Inc()
			}
			go conn.send(frame) // off the lock; per-conn mutex serializes
		}
	}
	return nil
}

func assignmentFrame(station uint32, a *basestation.Assignment) []byte {
	wa := wire.Assignment{Station: station, DefaultDelta: a.DefaultDelta}
	for i, r := range a.Regions {
		wa.Entries = append(wa.Entries, wire.EntryFromRect(r, a.Deltas[i]))
	}
	return wire.AppendAssignment(nil, wa)
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go s.handleConn(&srvConn{c: c})
	}
}

func (s *Server) handleConn(sc *srvConn) {
	var nodeID uint32
	hasNode := false
	detail := "read" // why the connection ended, for the journal
	// Per-connection isolation: a panic while handling one client's
	// frames (a decode edge case, a handler bug) closes that connection
	// only — the server, its other connections, and the background loop
	// keep running.
	defer func() {
		event := "disconnect"
		if r := recover(); r != nil {
			s.counters.Panics.Add(1)
			event, detail = "panic", "recovered"
		}
		sc.c.Close()
		s.dropConn(sc, nodeID, hasNode)
		peer, node := "conn", int64(-1)
		if hasNode {
			peer, node = "node", int64(nodeID)
		}
		s.tel.recordNet(event, peer, node, detail)
		s.wg.Done()
	}()
	// One FrameReader and one batch scratch per connection: the read loop's
	// steady state (update and batch frames from a camped node) touches no
	// allocator at all — headers, payloads, and decoded columns all live in
	// connection-owned buffers grown once to their high-water size.
	fr := wire.NewFrameReader(sc.c)
	var batch wire.UpdateBatch
	for {
		if s.cfg.ReadTimeout > 0 {
			sc.c.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		}
		typ, payload, err := fr.Next()
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				s.counters.DeadlineTrips.Add(1)
				detail = "deadline"
			}
			return
		}
		switch typ {
		case wire.TypeHello:
			h, err := wire.DecodeHello(payload)
			if err != nil {
				detail = "decode"
				return
			}
			if s.tel != nil {
				s.tel.readHello.Inc()
			}
			nodeID, hasNode = h.Node, true
			s.registerNode(sc, h)
		case wire.TypeUpdate:
			u, err := wire.DecodeUpdate(payload)
			if err != nil {
				detail = "decode"
				return
			}
			if s.tel != nil {
				s.tel.readUpdate.Inc()
			}
			s.ingest(sc, u)
		case wire.TypeUpdateBatch:
			root := s.tel.spans().Start("update_batch", "netsvc")
			var start time.Time
			if s.tel != nil {
				start = time.Now()
			}
			sp := root.Child("decode", "netsvc")
			err := wire.DecodeUpdateBatchInto(&batch, payload)
			sp.End()
			if err != nil {
				root.Str("error", "decode").End()
				detail = "decode"
				return
			}
			if s.tel != nil {
				s.tel.decodeSeconds.Observe(time.Since(start).Seconds())
				s.tel.readBatch.Inc()
				s.tel.batchSize.Observe(float64(batch.Len()))
			}
			s.ingestBatch(sc, &batch, root)
			root.Num("records", float64(batch.Len())).End()
		case wire.TypeQuery:
			q, err := wire.DecodeQuery(payload)
			if err != nil {
				detail = "decode"
				return
			}
			if s.tel != nil {
				s.tel.readQuery.Inc()
			}
			s.registerQuery(sc, q)
		case wire.TypePing:
			p, err := wire.DecodePing(payload)
			if err != nil {
				detail = "decode"
				return
			}
			if s.tel != nil {
				s.tel.readPing.Inc()
			}
			sc.send(wire.AppendPong(nil, wire.Pong{Token: p.Token}))
		case wire.TypePong:
			// Tolerated: keeps the read deadline fresh.
			if s.tel != nil {
				s.tel.readPong.Inc()
			}
		default:
			if s.tel != nil {
				s.tel.readBad.Inc()
			}
			detail = "protocol"
			return // protocol violation: drop the connection
		}
	}
}

// dropConn forgets everything a dead connection owned: its node
// registration (unless a reconnect already replaced it) and its query
// registrations, so abandoned queries stop consuming evaluation work.
func (s *Server) dropConn(sc *srvConn, nodeID uint32, hasNode bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if hasNode && s.nodeConns[nodeID] == sc {
		delete(s.nodeConns, nodeID)
		delete(s.nodeStation, nodeID)
		if s.tel != nil {
			s.tel.connectedNodes.Set(float64(len(s.nodeConns)))
		}
	}
	kept := s.queryRegs[:0]
	removed := false
	for _, r := range s.queryRegs {
		if r.owner == sc {
			removed = true
			continue
		}
		kept = append(kept, r)
	}
	s.queryRegs = kept
	if removed {
		s.syncQueriesLocked()
	}
}

// syncQueriesLocked rebuilds the core's query set from the live
// registrations (index-parallel to queryRegs).
func (s *Server) syncQueriesLocked() {
	qs := make([]geo.Rect, len(s.queryRegs))
	for i, r := range s.queryRegs {
		qs[i] = r.rect
	}
	s.eng.RegisterQueries(qs)
}

func (s *Server) registerNode(sc *srvConn, h wire.Hello) {
	if int(h.Node) >= s.cfg.Core.Nodes {
		return // out-of-range id: corrupted or hostile handshake
	}
	s.mu.Lock()
	s.nodeConns[h.Node] = sc
	st := basestation.StationFor(s.cfg.Stations, h.Pos)
	s.nodeStation[h.Node] = st
	var frame []byte
	if st >= 0 && st < len(s.frames) {
		frame = s.frames[st]
	}
	if s.tel != nil {
		s.tel.connectedNodes.Set(float64(len(s.nodeConns)))
	}
	s.mu.Unlock()
	// Capability ack: a v2 Hello advertising batch support. New clients
	// switch their flusher to vectored UpdateBatch frames on seeing it;
	// old clients ignore unsolicited Hello frames (their read loop's
	// default case), so the handshake is invisible to them — and an old
	// server never sends one, so a new client talking to it stays on
	// per-update frames. See DESIGN.md §5g.
	sc.send(wire.AppendHello(nil, wire.Hello{
		Node: h.Node, Pos: h.Pos,
		Version: wire.HelloV2, Flags: wire.HelloFlagBatch,
	}))
	if frame != nil {
		if s.tel != nil {
			s.tel.sentAssignment.Inc()
		}
		sc.send(frame)
	}
}

// ingestBatch admits every record of a decoded batch frame. Each record
// passes the same trust-boundary id check and shed-oldest admission as a
// standalone update frame — a batch of n records counts exactly n
// arrivals, so the λ estimate THROTLOOP adapts against is independent of
// how clients choose to frame their updates. Hand-off checks for all
// records share one mutex hold (instead of n), and hand-off frames are
// collected lazily: a batch from a camped, in-coverage node — the steady
// state — allocates nothing here.
func (s *Server) ingestBatch(sc *srvConn, b *wire.UpdateBatch, root spans.Ctx) {
	n := b.Len()
	// Conservation ledger: every record of the batch is offered, whatever
	// its fate (pre-shed, invalid id, ring shed, applied, queued).
	s.offered.Add(int64(n))
	// Degradation ladder: at the shed and critical rungs only a fraction
	// of offered records is admitted, oldest-first — the batch's leading
	// (stalest) records are rejected before they touch the rings, and the
	// freshest suffix survives. Pre-shed records never count as queue
	// arrivals, so λ measures the load the system actually accepted.
	off := 0
	if s.adm != nil {
		sp := root.Child("admit", "netsvc")
		admit := s.adm.AdmitN(n)
		sp.Num("offered", float64(n)).Num("admitted", float64(admit)).End()
		if admit == 0 {
			return
		}
		off = n - admit
	}
	// Trust boundary: scan the id column once. A batch of in-range ids —
	// the steady-state case — is admitted through the vectored columnar
	// path; a corrupt id forces per-record admission so that only the bad
	// records are discarded. Either way each admitted record counts
	// exactly one arrival (the λ single-count contract).
	vectored := true
	for i := off; i < n; i++ {
		if int(b.Node[i]) >= s.cfg.Core.Nodes {
			vectored = false
			break
		}
	}
	ingest := func() {
		sp := root.Child("ingest", "netsvc")
		shed := 0
		invalid := 0
		if vectored {
			shed = s.eng.IngestShedOldestColumns(b.Node[off:], b.X[off:], b.Y[off:], b.VX[off:], b.VY[off:], b.Time[off:])
		} else {
			for i := off; i < n; i++ {
				u := b.Update(i)
				if int(u.Node) >= s.cfg.Core.Nodes {
					invalid++
					continue
				}
				if s.eng.IngestShedOldest(cqserver.Update{Node: int(u.Node), Report: u.Report}) {
					shed++
				}
			}
		}
		if invalid > 0 {
			s.invalid.Add(int64(invalid))
		}
		if shed > 0 {
			s.counters.ShedFrames.Add(int64(shed))
		}
		sp.Num("shed", float64(shed)).Num("invalid", float64(invalid)).End()
	}
	// Sharded engine: records go straight onto the lock-free rings before
	// the mutex, so concurrent connections never serialize on admission
	// (same path as single-update ingest).
	if s.lockFreeIngest {
		ingest()
	}
	var handoffs [][]byte
	s.mu.Lock()
	if !s.lockFreeIngest {
		ingest()
	}
	for i := off; i < n; i++ {
		node := b.Node[i]
		if int(node) >= s.cfg.Core.Nodes {
			continue
		}
		if frame := s.handoffLocked(node, geo.Point{X: b.X[i], Y: b.Y[i]}); frame != nil {
			handoffs = append(handoffs, frame)
		}
	}
	s.mu.Unlock()
	for _, frame := range handoffs {
		if s.tel != nil {
			s.tel.sentAssignment.Inc()
		}
		sc.send(frame)
	}
}

// handoffLocked checks whether a node's report moved it outside its
// station's coverage and, if so, reassigns it and returns the new
// station's subset frame. Callers hold s.mu.
func (s *Server) handoffLocked(node uint32, pos geo.Point) []byte {
	st, known := s.nodeStation[node]
	if !known {
		return nil
	}
	if st >= 0 && s.cfg.Stations[st].Covers(pos) {
		return nil
	}
	if next := basestation.StationFor(s.cfg.Stations, pos); next != st && next >= 0 {
		s.nodeStation[node] = next
		if next < len(s.frames) {
			return s.frames[next]
		}
	}
	return nil
}

func (s *Server) ingest(sc *srvConn, u wire.Update) {
	// Conservation ledger: offered first, whatever the fate.
	s.offered.Add(1)
	// Range-check before the frame reaches the fixed-size motion table:
	// a bit-flipped node id must be discarded here, at the trust
	// boundary, not crash the background drain loop.
	if int(u.Node) >= s.cfg.Core.Nodes {
		s.invalid.Add(1)
		return
	}
	// Degradation ladder: at the shed/critical rungs the controller
	// rejects a deterministic fraction of offered frames before they
	// reach the rings (oldest-first over the arrival sequence).
	if s.adm != nil && s.adm.AdmitN(1) == 0 {
		return
	}
	// Bounded admission with graceful overflow: a saturated queue sheds
	// its oldest report to admit the freshest. The shed counts as a drop
	// in the queue's accounting — the same λ-side signal THROTLOOP's
	// utilization estimate is built from — so sustained overflow shows up
	// as overload, not as an OOM. In sharded mode the enqueue hits the
	// engine's lock-free rings before the mutex, so concurrent
	// connections never serialize on admission; either way each frame
	// counts exactly one arrival (the λ single-count contract).
	if s.lockFreeIngest {
		if s.eng.IngestShedOldest(cqserver.Update{Node: int(u.Node), Report: u.Report}) {
			s.counters.ShedFrames.Add(1)
		}
	}
	s.mu.Lock()
	if !s.lockFreeIngest {
		if s.eng.IngestShedOldest(cqserver.Update{Node: int(u.Node), Report: u.Report}) {
			s.counters.ShedFrames.Add(1)
		}
	}
	// Hand-off check: a node that moved outside its station's coverage
	// gets the new station's subset.
	st, known := s.nodeStation[u.Node]
	var frame []byte
	if known {
		pos := u.Report.Pos
		if st < 0 || !s.cfg.Stations[st].Covers(pos) {
			if next := basestation.StationFor(s.cfg.Stations, pos); next != st && next >= 0 {
				s.nodeStation[u.Node] = next
				if next < len(s.frames) {
					frame = s.frames[next]
				}
			}
		}
	}
	s.mu.Unlock()
	if frame != nil {
		if s.tel != nil {
			s.tel.sentAssignment.Inc()
		}
		sc.send(frame)
	}
}

func (s *Server) registerQuery(sc *srvConn, q wire.Query) {
	s.mu.Lock()
	idx := -1
	for i, r := range s.queryRegs {
		if r.owner == sc && r.clientID == q.ID {
			idx = i // idempotent re-registration: replace the rect
			break
		}
	}
	if idx >= 0 {
		s.queryRegs[idx].rect = q.Rect
	} else {
		idx = len(s.queryRegs)
		s.queryRegs = append(s.queryRegs, queryReg{owner: sc, clientID: q.ID, rect: q.Rect})
	}
	s.syncQueriesLocked()
	now := s.cfg.Clock()
	s.eng.Drain(-1)
	results := s.eng.Evaluate(now)
	frame := resultFrame(q.ID, results[idx])
	s.mu.Unlock()
	if s.tel != nil {
		s.tel.sentResult.Inc()
	}
	sc.send(frame)
}

func resultFrame(id uint32, nodes []int) []byte {
	res := wire.Result{ID: id, Nodes: make([]uint32, len(nodes))}
	for i, n := range nodes {
		res.Nodes[i] = uint32(n)
	}
	return wire.AppendResult(nil, res)
}

func (s *Server) backgroundLoop() {
	defer s.wg.Done()
	// Profiler attribution: the drain/adapt/evaluate loop is the server's
	// hot goroutine; label it once so CPU and goroutine profiles name it
	// (the shard workers carry lira_phase=predict/scan the same way).
	pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
		pprof.Labels("lira_phase", "drain")))
	tick := s.cfg.EvalEvery
	if tick == 0 {
		tick = 100 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	var lastAdapt time.Time
	var mem runtime.MemStats
	ticks := 0
	for {
		select {
		case <-s.done:
			return
		case <-ticker.C:
		}
		// GC-pause visibility: surface the most recent stop-the-world pause
		// on /metrics so a saturation run can correlate latency spikes with
		// collections. ReadMemStats briefly stops the world itself, so it
		// runs on every 10th tick, off the server mutex.
		if ticks++; s.tel != nil && ticks%10 == 1 {
			runtime.ReadMemStats(&mem)
			if mem.NumGC > 0 {
				s.tel.gcPause.Set(float64(mem.PauseNs[(mem.NumGC+255)%256]) / 1e9)
			}
		}
		now := s.cfg.Clock()
		root := s.tel.spans().Start("tick", "netsvc")
		s.mu.Lock()
		// Admission tick: sample health BEFORE draining — pre-drain
		// occupancy is the honest backlog signal (post-drain it is ~0 by
		// construction) — and walk the degradation ladder. A rung change
		// re-runs the adaptation immediately so nodes hear the new clamped
		// z this tick, not an AdaptEvery later. The sample runs under the
		// mutex because the unsharded engine's queue is mutex-guarded.
		rungChanged := false
		if s.adm != nil {
			sp := root.Child("admission_observe", "netsvc")
			before := s.adm.State()
			after := s.adm.Observe(s.sampleSignals())
			rungChanged = after != before
			sp.Num("rung", float64(after)).End()
		}
		limit := s.cfg.DrainPerTick
		if limit == 0 {
			limit = -1
		}
		sp := root.Child("drain", "netsvc")
		drained := s.eng.Drain(limit)
		sp.Num("applied", float64(drained)).End()
		// Refresh the statistics grid from the server's own beliefs (the
		// paper's "explicitly maintained by processing position updates"
		// mode): predicted positions and reported speeds.
		sp = root.Child("stats", "netsvc")
		s.observeStatsLocked(now)
		sp.End()
		if rungChanged || (s.cfg.AdaptEvery > 0 && time.Since(lastAdapt) >= s.cfg.AdaptEvery) {
			lastAdapt = time.Now()
			// adaptLocked's engine Adapt opens its own "adapt" root span
			// (the control plane owns that trace); no child here to avoid
			// double-covering it.
			s.adaptLocked()
		}
		type push struct {
			sc    *srvConn
			frame []byte
		}
		var pushes []push
		if s.cfg.EvalEvery > 0 && len(s.queryRegs) > 0 {
			sp = root.Child("evaluate", "netsvc")
			results := s.eng.Evaluate(now)
			sp.Num("queries", float64(len(results))).End()
			for qi, reg := range s.queryRegs {
				pushes = append(pushes, push{reg.owner, resultFrame(reg.clientID, results[qi])})
			}
		}
		// Conservation ledger + SLO burn windows, both on the coherent
		// under-mutex view of this tick.
		s.ledgerCheckLocked()
		s.observeSLOLocked()
		s.mu.Unlock()
		root.End()
		for _, p := range pushes {
			if s.tel != nil {
				s.tel.sentResult.Inc()
			}
			p.sc.send(p.frame)
		}
	}
}

// sampleSignals assembles the health vector the admission ladder walks
// on: input-queue occupancy (before this tick's drain), the process-wide
// goroutine census, the Evaluate p99 read from the shared latency
// histogram, and the most recent GC pause. Tests override the whole
// sampler via ServerConfig.AdmissionSample for deterministic traces.
// Callers hold s.mu (the unsharded engine's queue is mutex-guarded).
func (s *Server) sampleSignals() admission.Signals {
	if s.cfg.AdmissionSample != nil {
		return s.cfg.AdmissionSample()
	}
	var sig admission.Signals
	if c := s.eng.QueueCap(); c > 0 {
		sig.QueueFrac = float64(s.eng.QueueLen()) / float64(c)
	}
	sig.Goroutines = float64(runtime.NumGoroutine())
	if s.tel != nil {
		sig.EvalP99 = s.tel.evalSeconds.Quantile(0.99)
		sig.GCPause = s.tel.gcPause.Value()
	}
	return sig
}

// Admission exposes the degradation-ladder controller (nil when admission
// control is not configured).
func (s *Server) Admission() *admission.Controller { return s.adm }

// observeSLOLocked samples each configured SLO target's indicator (by
// target name — see ServerConfig.SLO) and feeds the burn-rate windows.
// Runs once per background tick under s.mu; no-op without a tracker.
func (s *Server) observeSLOLocked() {
	if s.slotr == nil {
		return
	}
	for i, t := range s.cfg.SLO.Targets {
		var v float64
		switch t.Name {
		case "eval_p99":
			if s.tel != nil {
				v = s.tel.evalSeconds.Quantile(0.99)
			}
		case "inaccuracy":
			// Lost-report fraction from the conservation ledger: the share
			// of offered records that will never reach the motion table
			// (pre-shed, invalid, or shed from the rings). Reports the
			// engine drops are exactly the ones whose staleness the paper's
			// inaccuracy bound pays for.
			lv := s.ledgerView()
			if lv.Offered > 0 {
				v = float64(lv.Invalid+lv.Preshed+lv.Ringshed) / float64(lv.Offered)
			}
		case "rung":
			if s.adm != nil {
				v = float64(s.adm.State())
			}
		case "queue_frac":
			if c := s.eng.QueueCap(); c > 0 {
				v = float64(s.eng.QueueLen()) / float64(c)
			}
		case "gc_pause":
			if s.tel != nil {
				v = s.tel.gcPause.Value()
			}
		}
		s.sloVals[i] = v
	}
	s.slotr.Observe(s.sloVals)
}

// SLO exposes the burn-rate tracker (nil when no SLOs are configured).
func (s *Server) SLO() *slo.Tracker { return s.slotr }

// RegionView is one shedding region in an Introspection: its area, the
// statistics GRIDREDUCE aggregated for it, and its assigned throttler Δᵢ.
type RegionView struct {
	Area  geo.Rect `json:"area"`
	N     float64  `json:"n"`
	M     float64  `json:"m"`
	S     float64  `json:"s"`
	Delta float64  `json:"delta"`
}

// Introspection is a point-in-time view of the shedding pipeline, shaped
// for the /debug/lira endpoint: the current throttle fraction, the region
// partitioning with its Δᵢ table, and the serving state around it.
type Introspection struct {
	Now            float64             `json:"now"`
	Z              float64             `json:"z"`
	BudgetMet      bool                `json:"budget_met"`
	Regions        []RegionView        `json:"regions"`
	ConnectedNodes int                 `json:"connected_nodes"`
	Queries        int                 `json:"queries"`
	Shards         int                 `json:"shards"`
	QueueLen       int                 `json:"queue_len"`
	QueueCap       int                 `json:"queue_cap"`
	Applied        int64               `json:"updates_applied"`
	Net            metrics.NetSnapshot `json:"net"`
	Admission      *admission.View     `json:"admission,omitempty"`
	Ledger         LedgerView          `json:"ledger"`
	SLO            []slo.View          `json:"slo,omitempty"`
}

// Introspect returns the current pipeline state under the server mutex,
// so the region list and Δᵢ table come from the same adaptation.
func (s *Server) Introspect() Introspection {
	s.mu.Lock()
	defer s.mu.Unlock()
	in := Introspection{
		Now:            s.cfg.Clock(),
		Z:              s.cfg.Z,
		ConnectedNodes: len(s.nodeConns),
		Queries:        len(s.queryRegs),
		Shards:         s.Sharded(),
		QueueLen:       s.eng.QueueLen(),
		QueueCap:       s.eng.QueueCap(),
		Applied:        s.eng.Applied(),
		Net:            s.counters.Snapshot(),
		Ledger:         s.ledgerView(),
		SLO:            s.slotr.Views(),
	}
	if s.adm != nil {
		v := s.adm.View()
		in.Admission = &v
	}
	if ad := s.lastAdapt; ad != nil {
		in.Z = ad.Z
		in.BudgetMet = ad.BudgetMet
		in.Regions = make([]RegionView, len(ad.Partitioning.Regions))
		for i, r := range ad.Partitioning.Regions {
			in.Regions[i] = RegionView{Area: r.Area, N: r.N, M: r.M, S: r.S, Delta: ad.Deltas[i]}
		}
	}
	return in
}

// observeStatsLocked snapshots the motion table into the statistics grid.
// The snapshot buffers are pooled on the server (neither engine retains
// them past the call), so a steady-state tick allocates nothing here.
func (s *Server) observeStatsLocked(now float64) {
	table := s.eng.Table()
	n := table.Len()
	s.obsPos, s.obsSpd = s.obsPos[:0], s.obsSpd[:0]
	for i := 0; i < n; i++ {
		rep, ok := table.Report(i)
		if !ok {
			continue
		}
		s.obsPos = append(s.obsPos, s.cfg.Core.Space.ClampPoint(rep.Predict(now)))
		s.obsSpd = append(s.obsSpd, rep.Vel.Len())
	}
	if len(s.obsPos) > 0 {
		s.eng.ObserveStatistics(s.obsPos, s.obsSpd)
	}
}

// Package netsvc deploys the LIRA architecture over TCP: a server process
// hosting layer 1 (the mobile CQ server) and the logical layer-2 base
// stations, and client runtimes for layer-3 mobile nodes and for query
// subscribers. Messages use the wire package's binary formats, so the
// broadcast sizes match the paper's §4.3.2 accounting.
//
// The server is single-writer over the embedded cqserver.Server: every
// connection goroutine funnels decoded messages through a mutex. Periodic
// work — draining the input queue, refreshing statistics, re-running the
// adaptation, evaluating queries — happens on one background loop.
package netsvc

import (
	"net"
	"sync"
	"time"

	"lira/internal/basestation"
	"lira/internal/cqserver"
	"lira/internal/geo"
	"lira/internal/wire"
)

// Clock returns the current simulation time in seconds. Deployments use
// wall clock; tests inject accelerated clocks.
type Clock func() float64

// WallClock is the default clock: Unix seconds with sub-second precision.
func WallClock() float64 { return float64(time.Now().UnixNano()) / 1e9 }

// ServerConfig parameterizes a network server.
type ServerConfig struct {
	// Core configures the embedded mobile CQ server.
	Core cqserver.Config
	// Stations is the base-station layout. Empty selects a single
	// station covering the whole space.
	Stations []basestation.Station
	// Z is the throttle fraction used at each adaptation.
	Z float64
	// AdaptEvery is the adaptation period; zero disables periodic
	// adaptation (Adapt can still be called manually).
	AdaptEvery time.Duration
	// EvalEvery is the continual-query evaluation period; zero disables
	// pushes (queries are still answered once at registration).
	EvalEvery time.Duration
	// DrainPerTick bounds queue draining per background tick; zero means
	// drain fully.
	DrainPerTick int
	// Clock supplies simulation time; nil selects WallClock.
	Clock Clock
}

// Server hosts the CQ server and base stations behind a TCP listener.
type Server struct {
	cfg ServerConfig
	ln  net.Listener

	mu          sync.Mutex
	core        *cqserver.Server
	deployment  *basestation.Deployment
	frames      [][]byte // cached per-station assignment frames
	nodeConns   map[uint32]*srvConn
	nodeStation map[uint32]int
	queryConns  map[uint32]*srvConn // query id -> owner
	queryIDs    []uint32            // registration order, parallel to core queries
	nextQuery   uint32
	closed      bool

	wg   sync.WaitGroup
	done chan struct{}
}

type srvConn struct {
	c  net.Conn
	mu sync.Mutex // serializes frame writes
}

func (sc *srvConn) send(frame []byte) error {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return wire.WriteFrame(sc.c, frame)
}

// Listen starts a server on addr (e.g. "127.0.0.1:0").
func Listen(addr string, cfg ServerConfig) (*Server, error) {
	core, err := cqserver.New(cfg.Core)
	if err != nil {
		return nil, err
	}
	if cfg.Z <= 0 || cfg.Z > 1 {
		cfg.Z = 1
	}
	if cfg.Clock == nil {
		cfg.Clock = WallClock
	}
	if len(cfg.Stations) == 0 {
		space := cfg.Core.Space
		cfg.Stations = []basestation.Station{{
			ID:     0,
			Center: space.Center(),
			Radius: space.Width() + space.Height(),
		}}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:         cfg,
		ln:          ln,
		core:        core,
		nodeConns:   make(map[uint32]*srvConn),
		nodeStation: make(map[uint32]int),
		queryConns:  make(map[uint32]*srvConn),
		done:        make(chan struct{}),
	}
	if err := s.adaptLocked(); err != nil {
		ln.Close()
		return nil, err
	}
	s.wg.Add(2)
	go s.acceptLoop()
	go s.backgroundLoop()
	return s, nil
}

// Addr returns the listener address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops the server and disconnects every client.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.done)
	conns := make([]*srvConn, 0, len(s.nodeConns))
	for _, c := range s.nodeConns {
		conns = append(conns, c)
	}
	seen := map[*srvConn]bool{}
	for _, c := range s.queryConns {
		if !seen[c] {
			conns = append(conns, c)
			seen[c] = true
		}
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.c.Close()
	}
	s.wg.Wait()
	return err
}

// Core exposes the embedded CQ server for inspection (tests, metrics).
// Callers must not mutate it concurrently with a running server.
func (s *Server) Core() *cqserver.Server { return s.core }

// Adapt re-runs the LIRA adaptation at the configured throttle fraction
// and broadcasts fresh assignments to every connected node.
func (s *Server) Adapt() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.adaptLocked()
}

func (s *Server) adaptLocked() error {
	ad, err := s.core.Adapt(s.cfg.Z)
	if err != nil {
		return err
	}
	deploy, err := basestation.NewDeployment(s.cfg.Stations, ad.Partitioning, ad.Deltas)
	if err != nil {
		return err
	}
	s.deployment = deploy
	s.frames = make([][]byte, len(deploy.Assignments))
	for i, a := range deploy.Assignments {
		s.frames[i] = assignmentFrame(uint32(i), a)
	}
	// Rebroadcast to camped nodes.
	for id, st := range s.nodeStation {
		if conn, ok := s.nodeConns[id]; ok && st >= 0 && st < len(s.frames) {
			frame := s.frames[st]
			go conn.send(frame) // off the lock; per-conn mutex serializes
		}
	}
	return nil
}

func assignmentFrame(station uint32, a *basestation.Assignment) []byte {
	wa := wire.Assignment{Station: station, DefaultDelta: a.DefaultDelta}
	for i, r := range a.Regions {
		wa.Entries = append(wa.Entries, wire.EntryFromRect(r, a.Deltas[i]))
	}
	return wire.AppendAssignment(nil, wa)
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go s.handleConn(&srvConn{c: c})
	}
}

func (s *Server) handleConn(sc *srvConn) {
	defer s.wg.Done()
	defer sc.c.Close()
	var nodeID uint32
	hasNode := false
	for {
		typ, payload, err := wire.ReadFrame(sc.c)
		if err != nil {
			break
		}
		switch typ {
		case wire.TypeHello:
			h, err := wire.DecodeHello(payload)
			if err != nil {
				return
			}
			nodeID, hasNode = h.Node, true
			s.registerNode(sc, h)
		case wire.TypeUpdate:
			u, err := wire.DecodeUpdate(payload)
			if err != nil {
				return
			}
			s.ingest(sc, u)
		case wire.TypeQuery:
			q, err := wire.DecodeQuery(payload)
			if err != nil {
				return
			}
			s.registerQuery(sc, q)
		default:
			return // protocol violation: drop the connection
		}
	}
	if hasNode {
		s.mu.Lock()
		if s.nodeConns[nodeID] == sc {
			delete(s.nodeConns, nodeID)
			delete(s.nodeStation, nodeID)
		}
		s.mu.Unlock()
	}
	s.mu.Lock()
	for id, c := range s.queryConns {
		if c == sc {
			delete(s.queryConns, id)
		}
	}
	s.mu.Unlock()
}

func (s *Server) registerNode(sc *srvConn, h wire.Hello) {
	s.mu.Lock()
	s.nodeConns[h.Node] = sc
	st := basestation.StationFor(s.cfg.Stations, h.Pos)
	s.nodeStation[h.Node] = st
	var frame []byte
	if st >= 0 && st < len(s.frames) {
		frame = s.frames[st]
	}
	s.mu.Unlock()
	if frame != nil {
		sc.send(frame)
	}
}

func (s *Server) ingest(sc *srvConn, u wire.Update) {
	s.mu.Lock()
	s.core.Ingest(cqserver.Update{Node: int(u.Node), Report: u.Report})
	// Hand-off check: a node that moved outside its station's coverage
	// gets the new station's subset.
	st, known := s.nodeStation[u.Node]
	var frame []byte
	if known {
		pos := u.Report.Pos
		if st < 0 || !s.cfg.Stations[st].Covers(pos) {
			if next := basestation.StationFor(s.cfg.Stations, pos); next != st && next >= 0 {
				s.nodeStation[u.Node] = next
				if next < len(s.frames) {
					frame = s.frames[next]
				}
			}
		}
	}
	s.mu.Unlock()
	if frame != nil {
		sc.send(frame)
	}
}

func (s *Server) registerQuery(sc *srvConn, q wire.Query) {
	s.mu.Lock()
	id := s.nextQuery
	s.nextQuery++
	s.queryConns[id] = sc
	s.queryIDs = append(s.queryIDs, id)
	qs := append(append([]geo.Rect(nil), s.core.Queries()...), q.Rect)
	s.core.RegisterQueries(qs)
	now := s.cfg.Clock()
	s.core.Drain(-1)
	results := s.core.Evaluate(now)
	frame := resultFrame(id, results[len(results)-1])
	s.mu.Unlock()
	sc.send(frame)
}

func resultFrame(id uint32, nodes []int) []byte {
	res := wire.Result{ID: id, Nodes: make([]uint32, len(nodes))}
	for i, n := range nodes {
		res.Nodes[i] = uint32(n)
	}
	return wire.AppendResult(nil, res)
}

func (s *Server) backgroundLoop() {
	defer s.wg.Done()
	tick := s.cfg.EvalEvery
	if tick == 0 {
		tick = 100 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	var lastAdapt time.Time
	for {
		select {
		case <-s.done:
			return
		case <-ticker.C:
		}
		now := s.cfg.Clock()
		s.mu.Lock()
		limit := s.cfg.DrainPerTick
		if limit == 0 {
			limit = -1
		}
		s.core.Drain(limit)
		// Refresh the statistics grid from the server's own beliefs (the
		// paper's "explicitly maintained by processing position updates"
		// mode): predicted positions and reported speeds.
		s.observeStatsLocked(now)
		if s.cfg.AdaptEvery > 0 && time.Since(lastAdapt) >= s.cfg.AdaptEvery {
			lastAdapt = time.Now()
			s.adaptLocked()
		}
		type push struct {
			sc    *srvConn
			frame []byte
		}
		var pushes []push
		if s.cfg.EvalEvery > 0 && len(s.queryIDs) > 0 {
			results := s.core.Evaluate(now)
			for qi, id := range s.queryIDs {
				if sc, ok := s.queryConns[id]; ok {
					pushes = append(pushes, push{sc, resultFrame(id, results[qi])})
				}
			}
		}
		s.mu.Unlock()
		for _, p := range pushes {
			p.sc.send(p.frame)
		}
	}
}

// observeStatsLocked snapshots the motion table into the statistics grid.
func (s *Server) observeStatsLocked(now float64) {
	table := s.core.Table()
	n := table.Len()
	var positions []geo.Point
	var speeds []float64
	for i := 0; i < n; i++ {
		rep, ok := table.Report(i)
		if !ok {
			continue
		}
		positions = append(positions, s.cfg.Core.Space.ClampPoint(rep.Predict(now)))
		speeds = append(speeds, rep.Vel.Len())
	}
	if len(positions) > 0 {
		s.core.ObserveStatistics(positions, speeds)
	}
}

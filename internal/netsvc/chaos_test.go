package netsvc

import (
	"fmt"
	"net"
	"runtime"
	"testing"
	"time"

	"lira/internal/basestation"
	"lira/internal/cqserver"
	"lira/internal/faultnet"
	"lira/internal/fmodel"
	"lira/internal/geo"
	"lira/internal/metrics"
	"lira/internal/motion"
	"lira/internal/rng"
	"lira/internal/shard"
	"lira/internal/telemetry"
	"lira/internal/wire"
)

// waitGoroutines polls until the goroutine count returns to at most want,
// failing with a full stack dump on timeout. Leak detection needs the
// retry loop: conn goroutines take a few scheduler rounds to unwind.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			m := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d live, want ≤ %d\n%s", n, want, buf[:m])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestChaosReconnectAndReconverge is the acceptance harness: a real
// server plus a node fleet and a query subscriber, all over a faultnet
// fabric injecting 20% frame loss (plus duplication, corruption, delay,
// and resets), with two forced partitions mid-run. Invariants: every
// client reconnects and reconverges to the live assignment, the query
// stream resumes, degradation is visible in the counters, and no
// goroutines leak after Server.Close. Three distinct seeds run under
// -race; the schedule-determinism half of the acceptance criterion (same
// seed → identical fault schedule) is proven at the faultnet layer by
// TestSameSeedSameSchedule, where frame sequences are controlled.
func TestChaosReconnectAndReconverge(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			chaosRun(t, seed, 1)
		})
	}
}

// TestChaosShardedEngine runs the same acceptance harness against the
// K=4 sharded engine: the lock-free ingest path, ring draining, fragment
// merging, and per-shard telemetry all under fault injection. The
// invariants are identical to the unsharded runs — sharding must be
// invisible to clients even on a faulty network.
func TestChaosShardedEngine(t *testing.T) {
	chaosRun(t, 4, 4)
}

func chaosRun(t *testing.T, seed uint64, shards int) {
	baseline := runtime.NumGoroutine()
	const nodes = 5

	fabric := faultnet.New(seed, faultnet.Config{
		Drop:     0.20,
		Dup:      0.05,
		Corrupt:  0.03,
		Delay:    0.05,
		Reset:    0.02,
		MaxDelay: 2 * time.Millisecond,
		Record:   true,
	})
	counters := &metrics.NetCounters{}
	clk := &fakeClock{}
	hub := telemetry.NewHub(0)

	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s, err := Serve(fabric.WrapListener(raw, "srv"), ServerConfig{
		Core: cqserver.Config{
			Space: space(),
			Nodes: 64,
			L:     13,
			Curve: fmodel.Hyperbolic(5, 100, 19),
		},
		Shards: shards,
		Stations: []basestation.Station{
			{ID: 0, Center: geo.Point{X: 500, Y: 1000}, Radius: 900},
			{ID: 1, Center: geo.Point{X: 1500, Y: 1000}, Radius: 900},
		},
		Z:           0.5,
		EvalEvery:   20 * time.Millisecond,
		ReadTimeout: 400 * time.Millisecond,
		Counters:    counters,
		Clock:       clk.Now,
		Telemetry:   hub,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr().String()

	clientCfg := func(i int) NodeConfig {
		label := fmt.Sprintf("node-%d", i)
		return NodeConfig{
			ID:             uint32(i),
			Pos:            geo.Point{X: 200 + 300*float64(i), Y: 1000},
			FallbackDelta:  5,
			Dialer:         func(a string) (net.Conn, error) { return fabric.Dial(a, label) },
			HeartbeatEvery: 30 * time.Millisecond,
			ReadTimeout:    200 * time.Millisecond,
			WriteTimeout:   500 * time.Millisecond,
			BackoffBase:    10 * time.Millisecond,
			BackoffMax:     80 * time.Millisecond,
			Seed:           seed*1000 + uint64(i),
			Counters:       counters,
		}
	}
	clients := make([]*NodeClient, nodes)
	for i := range clients {
		c, err := DialNodeConfig(addr, clientCfg(i))
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
	}
	q, err := DialQueryConfig(addr, QueryConfig{
		Buffer:         8,
		Dialer:         func(a string) (net.Conn, error) { return fabric.Dial(a, "query") },
		HeartbeatEvery: 30 * time.Millisecond,
		ReadTimeout:    200 * time.Millisecond,
		WriteTimeout:   500 * time.Millisecond,
		BackoffBase:    10 * time.Millisecond,
		BackoffMax:     80 * time.Millisecond,
		Seed:           seed * 7777,
		Counters:       counters,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Register(geo.NewRect(0, 0, 2000, 2000)); err != nil {
		t.Fatal(err)
	}

	// Drive motion through two forced partitions. Zero reported velocity
	// with 20 m hops exceeds every throttler, so every step generates a
	// report — maximal pressure on the faulty links.
	wander := rng.New(seed)
	for step := 0; step < 90; step++ {
		clk.Advance(500)
		for i, c := range clients {
			x := 200 + 300*float64(i) + wander.Range(-50, 50)
			if _, err := c.Observe(geo.Point{X: x, Y: 1000}, geo.Vector{}, clk.Now()); err != nil {
				t.Fatalf("step %d node %d: %v", step, i, err)
			}
		}
		if step == 30 || step == 60 {
			fabric.Partition()
			time.Sleep(100 * time.Millisecond)
			fabric.Heal()
		}
		time.Sleep(3 * time.Millisecond)
	}

	// Reconvergence: after healing, every client must re-announce itself
	// and hold the live assignment again (Station ≥ 0 only happens when
	// an assignment frame survived the faulty link post-reconnect).
	deadline := time.Now().Add(10 * time.Second)
	for _, c := range clients {
		for c.Station() < 0 {
			if time.Now().After(deadline) {
				s.mu.Lock()
				_, hasConn := s.nodeConns[c.cfg.ID]
				st, hasSt := s.nodeStation[c.cfg.ID]
				s.mu.Unlock()
				t.Fatalf("node %d never reconverged to an assignment (reconnects=%d, err=%v, srvConn=%v, srvStation=%d/%v, adaptErr=%v)",
					c.cfg.ID, c.Reconnects(), c.Err(), hasConn, st, hasSt, s.Adapt())
			}
			// Adapt rebroadcasts the live assignment; on a 20%-loss link
			// several deliveries may be needed.
			s.Adapt()
			time.Sleep(20 * time.Millisecond)
		}
	}

	// The query stream must resume: drain anything stale, then require a
	// fresh push.
drainStale:
	for {
		select {
		case <-q.Results():
		default:
			break drainStale
		}
	}
	select {
	case _, ok := <-q.Results():
		if !ok {
			t.Fatalf("query client gave up: %v", q.Err())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no query result after healing")
	}

	// Both partitions severed every live link, so the fleet as a whole
	// must have reconnected at least once per client, and the fabric must
	// have actually injected loss.
	if got := counters.Reconnects.Load(); got < nodes {
		t.Errorf("Reconnects = %d, want ≥ %d", got, nodes)
	}
	if counters.Disconnects.Load() == 0 {
		t.Error("no disconnects recorded through two partitions")
	}
	if st := fabric.Stats(); st.Dropped == 0 || st.Frames == 0 {
		t.Errorf("fault injection inert: %+v", st)
	}

	// Each forced partition severed every live link, so the decision
	// journal must hold at least one server-side disconnect record per
	// partition, with monotone non-decreasing ticks (journal time is the
	// server clock, never the wall clock).
	disconnects := 0
	prevTick := -1.0
	for _, rec := range hub.Journal.Tail(hub.Journal.Len()) {
		if rec.Tick < prevTick {
			t.Errorf("journal tick went backwards: %v -> %v (seq %d)", prevTick, rec.Tick, rec.Seq)
		}
		prevTick = rec.Tick
		if rec.Kind == telemetry.KindNet && rec.Net != nil && rec.Net.Event == "disconnect" {
			disconnects++
		}
	}
	if disconnects < 2 {
		t.Errorf("journal disconnect records = %d, want ≥ 2 (one per forced partition)", disconnects)
	}
	// Every adaptation (startup plus the reconvergence rebroadcasts)
	// journals a GRIDREDUCE and a GREEDYINCREMENT record.
	if hub.Journal.CountKind(telemetry.KindRepartition) == 0 {
		t.Error("no GRIDREDUCE repartition records in the journal")
	}
	if hub.Journal.CountKind(telemetry.KindAssign) == 0 {
		t.Error("no GREEDYINCREMENT assignment records in the journal")
	}

	if in := s.Introspect(); in.Shards != s.Sharded() || in.QueueCap == 0 {
		t.Errorf("introspection engine view wrong: shards=%d cap=%d", in.Shards, in.QueueCap)
	}

	for _, c := range clients {
		c.Close()
	}
	q.Close()
	if err := s.Close(); err != nil {
		t.Errorf("server close: %v", err)
	}
	// Record conservation at quiescence: Close drained the rings, so
	// every offered update must have exactly one fate. A recovered panic
	// mid-ingest may leak an in-flight record (counted offered, never
	// landed), so the zero-balance assertion only binds on panic-free
	// runs — which these are, unless something else broke first.
	if led := s.Ledger(); s.Counters().Panics.Load() == 0 && led.Balance != 0 {
		t.Errorf("conservation ledger unbalanced at quiescence: %+v", led)
	}
	// No goroutine leaks: everything the harness spawned must unwind.
	waitGoroutines(t, baseline+2)
}

// TestLossDegradesGracefully checks the degradation invariant: as
// injected frame loss rises, the server simply knows less (fewer applied
// updates → staler beliefs → larger result inaccuracy) — it never
// crashes, and the degradation is monotone. Reconnection and heartbeats
// are disabled so the only fault in play is loss itself.
func TestLossDegradesGracefully(t *testing.T) {
	const steps, nodes = 60, 4
	applied := make([]int64, 0, 3)
	for _, loss := range []float64{0, 0.5, 0.9} {
		fabric := faultnet.New(42, faultnet.Config{Drop: loss})
		clk := &fakeClock{}
		s := startServer(t, clk.Now, 1)
		addr := s.Addr().String()
		clients := make([]*NodeClient, nodes)
		for i := range clients {
			label := fmt.Sprintf("node-%d", i)
			c, err := DialNodeConfig(addr, NodeConfig{
				ID:               uint32(i),
				Pos:              geo.Point{X: 100 + 100*float64(i), Y: 100},
				FallbackDelta:    5,
				Dialer:           func(a string) (net.Conn, error) { return fabric.Dial(a, label) },
				HeartbeatEvery:   -1,
				ReadTimeout:      -1,
				DisableReconnect: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			clients[i] = c
		}
		for step := 0; step < steps; step++ {
			clk.Advance(1000)
			for i, c := range clients {
				// 20 m hops at zero reported velocity: every step reports.
				p := geo.Point{X: 100 + 100*float64(i) + 20*float64(step%2), Y: 100}
				if _, err := c.Observe(p, geo.Vector{}, clk.Now()); err != nil {
					t.Fatalf("loss=%v step %d: %v", loss, step, err)
				}
			}
		}
		// Let the background loop drain what arrived, then snapshot.
		var got int64
		for stable := 0; stable < 5; {
			time.Sleep(30 * time.Millisecond)
			s.mu.Lock()
			v := s.eng.Applied()
			qlen := s.eng.QueueLen()
			s.mu.Unlock()
			if v == got && qlen == 0 {
				stable++
			} else {
				stable = 0
				got = v
			}
		}
		applied = append(applied, got)
		for _, c := range clients {
			c.Close()
		}
		s.Close()
	}
	t.Logf("applied updates at loss 0/0.5/0.9: %v", applied)
	if !(applied[0] > applied[1] && applied[1] > applied[2]) {
		t.Errorf("applied updates not monotone in loss: %v", applied)
	}
	if applied[2] == 0 {
		t.Error("even at 90%% loss some updates must survive")
	}
}

// TestClientErrSurfacesLinkFailure covers the Err contract: a link
// failure is recorded, visible through Err, and returned by Close —
// distinguishable from a clean shutdown (which returns nil).
func TestClientErrSurfacesLinkFailure(t *testing.T) {
	clk := &fakeClock{}
	s := startServer(t, clk.Now, 1)
	addr := s.Addr().String()

	node, err := DialNodeConfig(addr, NodeConfig{
		ID: 1, Pos: geo.Point{X: 100, Y: 100}, FallbackDelta: 5,
		DisableReconnect: true, HeartbeatEvery: -1, ReadTimeout: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	query, err := DialQueryConfig(addr, QueryConfig{
		DisableReconnect: true, HeartbeatEvery: -1, ReadTimeout: -1,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Clean shutdown first, on a separate healthy pair: Close returns nil.
	clean, err := DialNode(addr, 9, geo.Point{X: 1, Y: 1}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := clean.Close(); err != nil {
		t.Errorf("clean Close = %v, want nil", err)
	}

	// Now kill the server: both clients' links fail.
	s.Close()
	deadline := time.Now().Add(3 * time.Second)
	for node.Err() == nil || query.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatalf("link failure never surfaced: node=%v query=%v", node.Err(), query.Err())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := node.Close(); err == nil {
		t.Error("node Close after link failure = nil, want the link error")
	}
	if err := query.Close(); err == nil {
		t.Error("query Close after link failure = nil, want the link error")
	}
	// The results channel must close when the client gives up.
	for range query.Results() {
	}
}

// TestReconnectRestoresAssignment exercises a single full
// partition→backoff→re-Hello→re-install cycle without other faults.
func TestReconnectRestoresAssignment(t *testing.T) {
	fabric := faultnet.New(7, faultnet.Config{})
	clk := &fakeClock{}
	s := startServer(t, clk.Now, 0.5)
	c, err := DialNodeConfig(s.Addr().String(), NodeConfig{
		ID: 3, Pos: geo.Point{X: 500, Y: 500}, FallbackDelta: 5,
		Dialer:         func(a string) (net.Conn, error) { return fabric.Dial(a, "n3") },
		HeartbeatEvery: 20 * time.Millisecond,
		ReadTimeout:    150 * time.Millisecond,
		BackoffBase:    5 * time.Millisecond,
		BackoffMax:     40 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitStation := func(msg string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for c.Station() < 0 {
			if time.Now().After(deadline) {
				t.Fatalf("%s (reconnects=%d err=%v)", msg, c.Reconnects(), c.Err())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitStation("initial assignment never arrived")

	fabric.Partition()
	// The degraded node must fall back to Δ⊢ (Station −1) once it
	// notices the dead link.
	deadline := time.Now().Add(5 * time.Second)
	for c.Station() >= 0 {
		if time.Now().After(deadline) {
			t.Fatal("client never degraded after partition")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if c.Err() == nil {
		t.Error("degraded client reports nil Err")
	}
	fabric.Heal()
	waitStation("assignment never re-installed after heal")
	if c.Reconnects() == 0 {
		t.Error("no reconnect recorded")
	}
	if c.Err() != nil {
		t.Errorf("healthy reconnected client reports Err = %v", c.Err())
	}
	// The server must rebase the node after resync: the next Observe is
	// a fresh full report, so the motion table knows the node again.
	if _, err := c.Observe(geo.Point{X: 510, Y: 500}, geo.Vector{}, clk.Now()); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		_, ok := s.eng.Table().Report(3)
		s.mu.Unlock()
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never relearned the node after resync")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestQueueOverflowShedsOldestFirst covers the server's overflow path: a
// saturated input queue sheds oldest-first, bumps the overflow counter,
// and the drained survivors are exactly the freshest reports.
func TestQueueOverflowShedsOldestFirst(t *testing.T) {
	clk := &fakeClock{}
	s, err := Listen("127.0.0.1:0", ServerConfig{
		Core: cqserver.Config{
			Space:     space(),
			Nodes:     16,
			L:         13,
			QueueSize: 8,
			Curve:     fmodel.Hyperbolic(5, 100, 19),
		},
		Z:         1,
		EvalEvery: time.Hour, // keep the background loop out of the way
		Clock:     clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for i := 0; i < 12; i++ {
		s.ingest(nil, wire.Update{
			Node:   uint32(i),
			Report: motion.Report{Pos: geo.Point{X: float64(10 * i), Y: 5}, Time: float64(i)},
		})
	}
	if got := s.Counters().ShedFrames.Load(); got != 4 {
		t.Errorf("ShedFrames = %d, want 4", got)
	}
	s.mu.Lock()
	if got := s.eng.Dropped(); got != 4 {
		t.Errorf("queue drop accounting = %d, want 4 (overflow must feed the overload signal)", got)
	}
	s.eng.Drain(-1)
	for i := 0; i < 12; i++ {
		_, ok := s.eng.Table().Report(i)
		if want := i >= 4; ok != want {
			t.Errorf("node %d in table = %v, want %v (oldest-first shedding)", i, ok, want)
		}
	}
	s.mu.Unlock()
}

// TestDrainPerTickBound covers the bounded-drain path: with DrainPerTick
// set, a saturated queue empties across multiple background ticks while
// the loop stays responsive, and every admitted update is eventually
// applied.
func TestDrainPerTickBound(t *testing.T) {
	clk := &fakeClock{}
	s, err := Listen("127.0.0.1:0", ServerConfig{
		Core: cqserver.Config{
			Space:     space(),
			Nodes:     64,
			L:         13,
			QueueSize: 64,
			Curve:     fmodel.Hyperbolic(5, 100, 19),
		},
		Z:            1,
		EvalEvery:    10 * time.Millisecond,
		DrainPerTick: 3,
		Clock:        clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const n = 30
	for i := 0; i < n; i++ {
		s.ingest(nil, wire.Update{
			Node:   uint32(i),
			Report: motion.Report{Pos: geo.Point{X: float64(i), Y: 1}, Time: float64(i)},
		})
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		applied := s.eng.Applied()
		qlen := s.eng.QueueLen()
		s.mu.Unlock()
		if applied == n && qlen == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("bounded drain stalled: applied=%d queued=%d", applied, qlen)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if s.Counters().ShedFrames.Load() != 0 {
		t.Error("no overflow expected below capacity")
	}
}

// TestWallClockMonotone pins the satellite fix: WallClock is computed
// from a fixed origin plus the monotonic clock, so successive readings
// never decrease and stay on the Unix timebase.
func TestWallClockMonotone(t *testing.T) {
	prev := WallClock()
	if prev < 1e9 {
		t.Errorf("WallClock origin %v not on the Unix timebase", prev)
	}
	for i := 0; i < 1000; i++ {
		now := WallClock()
		if now < prev {
			t.Fatalf("WallClock went backwards: %v -> %v", prev, now)
		}
		prev = now
	}
}

// TestShardedOverflowLambdaOnce is the netsvc end of the λ double-count
// audit: update frames funnelled through the lock-free sharded ingest
// path count exactly one arrival each — never one per internal ring hop
// or shed — and overflow sheds surface in both ShedFrames and the
// engine's drop accounting.
func TestShardedOverflowLambdaOnce(t *testing.T) {
	clk := &fakeClock{}
	s, err := Listen("127.0.0.1:0", ServerConfig{
		Core: cqserver.Config{
			Space:     space(),
			Nodes:     16,
			L:         13,
			QueueSize: 8, // 2 per shard ring at K=4
			Curve:     fmodel.Hyperbolic(5, 100, 19),
		},
		Shards:    4,
		Z:         1,
		EvalEvery: time.Hour, // keep the background loop out of the way
		Clock:     clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	sh := s.eng.(*shard.Server)
	const frames = 40
	for i := 0; i < frames; i++ {
		s.ingest(nil, wire.Update{
			Node: uint32(i % 16),
			// x walks the full space, spreading load over all four rings.
			Report: motion.Report{Pos: geo.Point{X: float64(i%16) * 125, Y: 5}, Time: float64(i)},
		})
	}
	if got := sh.Arrived(); got != frames {
		t.Errorf("engine arrivals = %d, want %d (one per ingested frame)", got, frames)
	}
	if got := s.Counters().ShedFrames.Load(); got != sh.Dropped() {
		t.Errorf("ShedFrames = %d but engine dropped = %d", got, sh.Dropped())
	}
	if got := sh.Dropped() + int64(sh.QueueLen()); got != frames {
		t.Errorf("dropped + queued = %d, want %d (conservation)", got, frames)
	}
}

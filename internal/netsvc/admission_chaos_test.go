package netsvc

import (
	"fmt"
	"net"
	"runtime"
	"testing"
	"time"

	"lira/internal/admission"
	"lira/internal/cqserver"
	"lira/internal/faultnet"
	"lira/internal/fmodel"
	"lira/internal/geo"
	"lira/internal/metrics"
	"lira/internal/telemetry"
)

// TestChaosAdmissionOverloadPartition is the degradation-ladder
// acceptance harness: a real server with admission control enabled, a
// node fleet flooding it over a lossy faultnet fabric, and a forced
// partition in the middle of the overload. Invariants:
//
//   - the ladder escalates under the flood (at least to the shed rung)
//     and every journaled transition moves exactly one rung — monotone
//     per-step, never a jump;
//   - the shed rung actually pre-rejects ingest (PreShed grows);
//   - after the flood stops and the partition heals, the ladder steps
//     back down to healthy within a bounded wait, and its actions are
//     unwound (admission transparent again);
//   - no goroutines leak after Server.Close, under -race.
func TestChaosAdmissionOverloadPartition(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			admissionChaosRun(t, seed)
		})
	}
}

func admissionChaosRun(t *testing.T, seed uint64) {
	baseline := runtime.NumGoroutine()
	const nodes = 4

	fabric := faultnet.New(seed, faultnet.Config{
		Drop:     0.05,
		Dup:      0.02,
		MaxDelay: time.Millisecond,
		Record:   true,
	})
	counters := &metrics.NetCounters{}
	clk := &fakeClock{}
	hub := telemetry.NewHub(0)

	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s, err := Serve(fabric.WrapListener(raw, "srv"), ServerConfig{
		Core: cqserver.Config{
			Space:     space(),
			Nodes:     64,
			L:         13,
			QueueSize: 64,
			Curve:     fmodel.Hyperbolic(5, 100, 19),
		},
		Z:            0.8,
		EvalEvery:    5 * time.Millisecond,
		DrainPerTick: 2, // slow consumer: the flood must back the queue up
		ReadTimeout:  500 * time.Millisecond,
		Counters:     counters,
		Clock:        clk.Now,
		Telemetry:    hub,
		Admission: &admission.Config{
			// Queue occupancy is the only live signal: the process-health
			// thresholds are disabled (zero) so a busy test runner cannot
			// sway the walk.
			Thresholds:    admission.Thresholds{QueueFrac: [3]float64{0.30, 0.55, 0.85}},
			EscalateAfter: 1,
			RecoverAfter:  2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	adm := s.Admission()
	if adm == nil {
		t.Fatal("admission controller not wired")
	}
	addr := s.Addr().String()

	clients := make([]*NodeClient, nodes)
	for i := range clients {
		label := fmt.Sprintf("node-%d", i)
		c, err := DialNodeConfig(addr, NodeConfig{
			ID:             uint32(i),
			Pos:            geo.Point{X: 200 + 300*float64(i), Y: 1000},
			FallbackDelta:  5,
			Dialer:         func(a string) (net.Conn, error) { return fabric.Dial(a, label) },
			HeartbeatEvery: 25 * time.Millisecond,
			ReadTimeout:    250 * time.Millisecond,
			WriteTimeout:   500 * time.Millisecond,
			BackoffBase:    5 * time.Millisecond,
			BackoffMax:     40 * time.Millisecond,
			Seed:           seed*1000 + uint64(i),
			Counters:       counters,
		})
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
	}

	// Flood: 20 m hops at zero reported velocity defeat every throttler,
	// so each Observe emits a frame. The drain bound (2/tick) guarantees
	// queue pressure regardless of host speed. Partition mid-flood.
	flood := func(steps int) {
		for step := 0; step < steps; step++ {
			clk.Advance(200)
			for i, c := range clients {
				p := geo.Point{X: 200 + 300*float64(i) + 20*float64(step%2), Y: 1000}
				c.Observe(p, geo.Vector{}, clk.Now()) // send errors expected mid-partition
			}
		}
	}
	escalated := make(chan struct{})
	go func() {
		defer close(escalated)
		deadline := time.Now().Add(15 * time.Second)
		for adm.State() < admission.Shed {
			if time.Now().After(deadline) {
				return
			}
			flood(5)
			time.Sleep(time.Millisecond)
		}
	}()
	<-escalated
	if got := adm.State(); got < admission.Shed {
		t.Fatalf("ladder never reached shed under flood: state=%v view=%+v", got, adm.View())
	}
	// Keep flooding while shed is active until the pre-ring gate provably
	// rejects live traffic — frames need a moment to traverse the client
	// flusher and the fabric (the queue stays saturated throughout, so
	// the ladder cannot step down mid-burst).
	shedDeadline := time.Now().Add(15 * time.Second)
	for adm.PreShed() == 0 && time.Now().Before(shedDeadline) {
		flood(5)
		time.Sleep(2 * time.Millisecond)
	}

	// Partition on top of the overload, keep flooding into the dead
	// links, then heal. The ladder must not thrash downward mid-incident
	// faster than hysteresis allows — that is checked via the journal's
	// one-rung transition invariant below.
	fabric.Partition()
	flood(20)
	fabric.Heal()

	// Shed rung rejected real ingest ahead of the rings.
	if adm.PreShed() == 0 {
		t.Error("shed rung admitted everything: PreShed = 0")
	}

	// Load subsides: stop flooding entirely and let the drain catch up.
	// The ladder must recover to healthy within a bounded wait and its
	// pre-ring gate must be transparent again.
	deadline := time.Now().Add(20 * time.Second)
	for adm.State() != admission.Healthy {
		if time.Now().After(deadline) {
			t.Fatalf("ladder never recovered: view=%+v introspect=%+v", adm.View(), s.Introspect())
		}
		time.Sleep(10 * time.Millisecond)
	}
	preShed := adm.PreShed()
	s.mu.Lock()
	s.eng.Drain(-1)
	s.mu.Unlock()
	if got := adm.AdmitN(5); got != 5 {
		t.Errorf("healthy AdmitN(5) = %d, want transparent admission after recovery", got)
	}
	if got := adm.PreShed(); got != preShed {
		t.Errorf("healthy admission still shedding: PreShed %d -> %d", preShed, got)
	}

	// Journal invariants: at least one admission record per tick that
	// changed state, every transition exactly one rung, and the walk both
	// escalated and recovered (first transition up from healthy, last one
	// down to healthy).
	rank := map[string]int{"healthy": 0, "warning": 1, "shed": 2, "critical": 3}
	var trans []*telemetry.AdmissionEvent
	for _, rec := range hub.Journal.Tail(hub.Journal.Len()) {
		if rec.Kind != telemetry.KindAdmission || rec.Admission == nil {
			continue
		}
		if rec.Admission.From != "" {
			trans = append(trans, rec.Admission)
		}
	}
	if len(trans) < 3 {
		t.Fatalf("admission transitions journaled = %d, want ≥ 3 (escalate to shed and back)", len(trans))
	}
	for i, ev := range trans {
		from, okF := rank[ev.From]
		to, okT := rank[ev.State]
		if !okF || !okT {
			t.Fatalf("transition %d has unknown rungs: %+v", i, ev)
		}
		if d := to - from; d != 1 && d != -1 {
			t.Errorf("transition %d jumps %s→%s: the ladder moves one rung per tick", i, ev.From, ev.State)
		}
	}
	if first := trans[0]; first.From != "healthy" || first.State != "warning" {
		t.Errorf("first transition = %s→%s, want healthy→warning", first.From, first.State)
	}
	if last := trans[len(trans)-1]; last.State != "healthy" {
		t.Errorf("last transition = %s→%s, want a step down to healthy", last.From, last.State)
	}

	// The introspection view must expose the ladder.
	if in := s.Introspect(); in.Admission == nil || in.Admission.State != "healthy" {
		t.Errorf("introspection admission view = %+v, want healthy ladder", in.Admission)
	}

	for _, c := range clients {
		c.Close()
	}
	if err := s.Close(); err != nil {
		t.Errorf("server close: %v", err)
	}
	// Conservation holds through the overload storm: pre-shed, ring-shed,
	// applied, and queued must sum back to offered once Close drains the
	// rings (panic-free runs only; see chaosRun).
	if led := s.Ledger(); s.Counters().Panics.Load() == 0 && led.Balance != 0 {
		t.Errorf("conservation ledger unbalanced after overload chaos: %+v", led)
	}
	waitGoroutines(t, baseline+2)
}

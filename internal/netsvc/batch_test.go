package netsvc

import (
	"net"
	"runtime"
	"testing"
	"time"

	"lira/internal/cqserver"
	"lira/internal/fmodel"
	"lira/internal/geo"
	"lira/internal/motion"
	"lira/internal/telemetry"
	"lira/internal/wire"
)

func coreConfig(nodes int) cqserver.Config {
	return cqserver.Config{
		Space: space(),
		Nodes: nodes,
		L:     13,
		Curve: fmodel.Hyperbolic(5, 100, 19),
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestBatchedUpdateFlow proves the capability handshake and the vectored
// path end to end: a default client against a batch-capable server must
// deliver its reports inside UpdateBatch frames (visible in the frame
// counters) and the server must apply every one of them.
func TestBatchedUpdateFlow(t *testing.T) {
	for _, shards := range []int{1, 4} {
		clk := &fakeClock{}
		hub := telemetry.NewHub(0)
		s, err := Listen("127.0.0.1:0", ServerConfig{
			Core:      coreConfig(64),
			Shards:    shards,
			Z:         1,
			EvalEvery: 10 * time.Millisecond,
			Clock:     clk.Now,
			Telemetry: hub,
		})
		if err != nil {
			t.Fatal(err)
		}
		c, err := DialNode(s.Addr().String(), 1, geo.Point{X: 100, Y: 100}, 5)
		if err != nil {
			t.Fatal(err)
		}
		batches := hub.Registry.Counter("lira_frames_read_update_batch_total")
		// Every observation moves far past the 5-unit threshold, so each
		// generates a report; the flusher ships them within ~5ms. The
		// first few may go out per-update before the capability ack
		// lands — keep observing until a batch frame has been counted.
		x := 100.0
		waitFor(t, "batched updates applied", func() bool {
			x += 50
			clk.Advance(100)
			if _, err := c.Observe(geo.Point{X: x, Y: 100}, geo.Vector{}, clk.Now()); err != nil {
				t.Fatal(err)
			}
			return batches.Value() > 0 && s.Introspect().Applied > 0
		})
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		s.Close()
	}
}

// TestLegacyClientPerUpdateCompat is the old-client half of the
// compatibility matrix: a raw connection speaking the v1 protocol — a
// 12-byte Hello, then standalone Update frames — must keep working
// against the batch-capable server, and the unsolicited capability Hello
// the server now sends must be the only surprise on the read side.
func TestLegacyClientPerUpdateCompat(t *testing.T) {
	clk := &fakeClock{}
	s := startServer(t, clk.Now, 1)
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Drain server-to-client frames like a v1 client: read and ignore
	// anything unexpected (the capability Hello lands here).
	go func() {
		for {
			if _, _, err := wire.ReadFrame(conn); err != nil {
				return
			}
		}
	}()
	hello := wire.AppendHello(nil, wire.Hello{Node: 9, Pos: geo.Point{X: 500, Y: 500}})
	if len(hello) != 17 { // 5-byte header + 12-byte v1 payload
		t.Fatalf("legacy hello frame is %d bytes, want 17", len(hello))
	}
	if err := wire.WriteFrame(conn, hello); err != nil {
		t.Fatal(err)
	}
	up := wire.AppendUpdate(nil, wire.Update{Node: 9, Report: motion.Report{
		Pos: geo.Point{X: 500, Y: 500}, Vel: geo.Vector{X: 10}, Time: clk.Now(),
	}})
	if err := wire.WriteFrame(conn, up); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "legacy update applied", func() bool {
		return s.Introspect().Applied > 0
	})
}

// TestNewClientOldServerFallback is the other half: against a server that
// never advertises batching (a stub speaking only the v1 protocol), the
// client's flusher must drain every report as standalone Update frames —
// no UpdateBatch frame may ever reach the wire.
func TestNewClientOldServerFallback(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type seen struct {
		updates int
		batches int
	}
	got := make(chan seen, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		var s seen
		for {
			typ, _, err := wire.ReadFrame(conn)
			if err != nil {
				got <- s
				return
			}
			switch typ {
			case wire.TypeUpdate:
				s.updates++
			case wire.TypeUpdateBatch:
				s.batches++
			}
			// A v1 server: never acknowledges capabilities, answers nothing.
		}
	}()
	c, err := DialNodeConfig(ln.Addr().String(), NodeConfig{
		ID: 3, Pos: geo.Point{X: 100, Y: 100}, FallbackDelta: 5,
		DisableReconnect: true,
		HeartbeatEvery:   -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	x := 100.0
	for i := 0; i < 20; i++ {
		x += 50
		if _, err := c.Observe(geo.Point{X: x, Y: 100}, geo.Vector{}, float64(i)); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	c.Close()
	s := <-got
	if s.batches != 0 {
		t.Fatalf("client sent %d batch frames to a v1 server", s.batches)
	}
	if s.updates == 0 {
		t.Fatal("no per-update frames reached the v1 server: pending batch never drained")
	}
}

// TestBatchFlusherShutdownNoLeak pins the flusher goroutine's lifecycle:
// dialing starts it, Close reaps it. The goroutine census must return to
// its pre-dial level.
func TestBatchFlusherShutdownNoLeak(t *testing.T) {
	clk := &fakeClock{}
	s := startServer(t, clk.Now, 1)
	time.Sleep(20 * time.Millisecond) // let server goroutines settle
	base := runtime.NumGoroutine()
	c, err := DialNode(s.Addr().String(), 2, geo.Point{X: 200, Y: 200}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Observe(geo.Point{X: 260, Y: 200}, geo.Vector{}, clk.Now()); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, base)
}

package netsvc

import (
	"sync/atomic"
	"testing"
	"time"

	"lira/internal/basestation"
	"lira/internal/cqserver"
	"lira/internal/fmodel"
	"lira/internal/geo"
	"lira/internal/rng"
)

// fakeClock is an accelerated simulation clock shared by the server and
// the test's clients.
type fakeClock struct{ now atomic.Int64 } // milliseconds

func (f *fakeClock) Now() float64     { return float64(f.now.Load()) / 1000 }
func (f *fakeClock) Advance(ms int64) { f.now.Add(ms) }

func space() geo.Rect { return geo.Rect{MinX: 0, MinY: 0, MaxX: 2000, MaxY: 2000} }

func startServer(t *testing.T, clk Clock, z float64) *Server {
	t.Helper()
	s, err := Listen("127.0.0.1:0", ServerConfig{
		Core: cqserver.Config{
			Space: space(),
			Nodes: 64,
			L:     13,
			Curve: fmodel.Hyperbolic(5, 100, 19),
		},
		Z:         z,
		EvalEvery: 20 * time.Millisecond,
		Clock:     clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestHelloDeliversAssignment(t *testing.T) {
	clk := &fakeClock{}
	s := startServer(t, clk.Now, 0.5)
	c, err := DialNode(s.Addr().String(), 1, geo.Point{X: 100, Y: 100}, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	deadline := time.Now().Add(3 * time.Second)
	for c.Station() < 0 {
		if time.Now().After(deadline) {
			t.Fatal("assignment never arrived")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestUpdateFlowAndQuery(t *testing.T) {
	clk := &fakeClock{}
	s := startServer(t, clk.Now, 1) // z=1: no shedding, updates at Δ⊢
	addr := s.Addr().String()

	node, err := DialNode(addr, 7, geo.Point{X: 500, Y: 500}, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	// First observation always transmits.
	if sent, err := node.Observe(geo.Point{X: 500, Y: 500}, geo.Vector{X: 10, Y: 0}, clk.Now()); err != nil || !sent {
		t.Fatalf("first observe: sent=%v err=%v", sent, err)
	}

	q, err := DialQuery(addr, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if _, err := q.Register(geo.NewRect(400, 400, 600, 600)); err != nil {
		t.Fatal(err)
	}

	// The registration reply must eventually include node 7 (the server
	// needs a background tick to drain the queued update first).
	deadline := time.Now().Add(3 * time.Second)
	for {
		select {
		case res, ok := <-q.Results():
			if !ok {
				t.Fatal("results channel closed")
			}
			for _, id := range res.Nodes {
				if id == 7 {
					return
				}
			}
		case <-time.After(50 * time.Millisecond):
		}
		if time.Now().After(deadline) {
			t.Fatal("query result never included node 7")
		}
	}
}

func TestSheddingOverNetwork(t *testing.T) {
	// Two fleets on the same server: a z=1 reference is impossible on one
	// server, so assert the absolute behavior instead — with z=0.4 and a
	// populated statistics grid, nodes in query-free space receive large
	// thresholds and transmit far fewer updates than wander requires at Δ⊢.
	clk := &fakeClock{}
	s := startServer(t, clk.Now, 0.4)
	addr := s.Addr().String()

	// Seed the statistics grid: many phantom nodes in the west, queries
	// in the east.
	r := rng.New(3)
	var pos []geo.Point
	var sp []float64
	for i := 0; i < 64; i++ {
		pos = append(pos, geo.Point{X: r.Range(0, 800), Y: r.Range(0, 2000)})
		sp = append(sp, 10)
	}
	s.Core().ObserveStatistics(pos, sp)
	s.Core().RegisterQueries([]geo.Rect{geo.NewRect(1500, 1500, 1900, 1900)})
	if err := s.Adapt(); err != nil {
		t.Fatal(err)
	}

	node, err := DialNode(addr, 3, geo.Point{X: 400, Y: 1000}, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	deadline := time.Now().Add(3 * time.Second)
	for node.Station() < 0 {
		if time.Now().After(deadline) {
			t.Fatal("assignment never arrived")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Drive a wandering node in the query-free west: speed drifts make
	// dead reckoning at Δ⊢=5 report every few seconds; with the shed
	// threshold it reports rarely.
	x, y := 400.0, 1000.0
	vx := 10.0
	sentCount := 0
	wander := rng.New(9)
	for step := 0; step < 200; step++ {
		clk.Advance(1000)
		vx += wander.Norm(0, 1.5)
		x += vx
		if x < 50 || x > 750 {
			vx = -vx
			x += 2 * vx
		}
		sent, err := node.Observe(geo.Point{X: x, Y: y}, geo.Vector{X: vx, Y: 0}, clk.Now())
		if err != nil {
			t.Fatal(err)
		}
		if sent {
			sentCount++
		}
	}
	// At Δ⊢=5 this trajectory reports ~every 2-4 s (50-100 updates); with
	// region-aware shedding in a query-free zone it must be far sparser.
	if sentCount > 40 {
		t.Errorf("query-free node sent %d updates in 200 s; expected strong suppression", sentCount)
	}
	if sentCount == 0 {
		t.Error("node must still be tracked (Δ is bounded by Δ⊣)")
	}
}

func TestHandoffOverNetwork(t *testing.T) {
	clk := &fakeClock{}
	s, err := Listen("127.0.0.1:0", ServerConfig{
		Core: cqserver.Config{
			Space: space(),
			Nodes: 8,
			L:     13,
			Curve: fmodel.Hyperbolic(5, 100, 19),
		},
		Stations: []basestation.Station{
			{ID: 0, Center: geo.Point{X: 500, Y: 1000}, Radius: 900},
			{ID: 1, Center: geo.Point{X: 1500, Y: 1000}, Radius: 900},
		},
		Z:         0.8,
		EvalEvery: 20 * time.Millisecond,
		Clock:     clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	node, err := DialNode(s.Addr().String(), 2, geo.Point{X: 400, Y: 1000}, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	deadline := time.Now().Add(3 * time.Second)
	for node.Station() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("initial station = %d, want 0", node.Station())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Drive the node east across the coverage boundary. Reporting zero
	// velocity makes each 50 m hop exceed any throttler in [Δ⊢, Δ⊣], so
	// every hop transmits an update and the server's hand-off check runs.
	x := 400.0
	for step := 0; step < 40 && node.Station() != 1; step++ {
		clk.Advance(1000)
		x += 50
		if _, err := node.Observe(geo.Point{X: x, Y: 1000}, geo.Vector{}, clk.Now()); err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	deadline = time.Now().Add(3 * time.Second)
	for node.Station() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("hand-off to station 1 never happened (station=%d)", node.Station())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	clk := &fakeClock{}
	s := startServer(t, clk.Now, 0.5)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestDialNodeValidation(t *testing.T) {
	clk := &fakeClock{}
	s := startServer(t, clk.Now, 0.5)
	if _, err := DialNode(s.Addr().String(), 1, geo.Point{}, 0); err == nil {
		t.Error("zero fallback should be rejected")
	}
}

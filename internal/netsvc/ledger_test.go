package netsvc

import (
	"bytes"
	"encoding/json"
	"net"
	"testing"
	"time"

	"lira/internal/geo"
	"lira/internal/motion"
	"lira/internal/slo"
	"lira/internal/spans"
	"lira/internal/telemetry"
	"lira/internal/wire"
)

// TestLedgerAndSLOOverNetwork drives the full serving stack — raw wire
// frames over TCP, with a span tracer attached and SLOs configured — and
// pins the observability additions end to end: every offered record gets
// exactly one ledger fate (including invalid ids on both the scalar and
// batch paths), the SLO tracker surfaces per-target views through
// Introspect, the lira_ledger_* gauges land on the registry, and the
// tracer captures the netsvc tick and update_batch spans as loadable
// trace-event JSON.
func TestLedgerAndSLOOverNetwork(t *testing.T) {
	clk := &fakeClock{}
	hub := telemetry.NewHub(256)
	tracer := spans.New(spans.Config{Capacity: 4096, Seed: 42})
	hub.SetSpans(tracer)
	s, err := Listen("127.0.0.1:0", ServerConfig{
		Core:      coreConfig(64),
		Z:         1,
		EvalEvery: 5 * time.Millisecond,
		Clock:     clk.Now,
		Telemetry: hub,
		SLO: &slo.Config{
			Targets: []slo.Target{
				{Name: "eval_p99", Bound: 10, Objective: 0.99},
				{Name: "inaccuracy", Bound: 0.5, Objective: 0.9},
				{Name: "rung", Bound: 0, Objective: 0.9},
			},
			Window:      24,
			ShortWindow: 4,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	go func() { // drain server-to-client frames
		for {
			if _, _, err := wire.ReadFrame(conn); err != nil {
				return
			}
		}
	}()
	send := func(frame []byte) {
		t.Helper()
		if err := wire.WriteFrame(conn, frame); err != nil {
			t.Fatal(err)
		}
	}
	send(wire.AppendHello(nil, wire.Hello{Node: 1, Pos: geo.Point{X: 100, Y: 100}}))
	rep := func(x float64) motion.Report {
		return motion.Report{Pos: geo.Point{X: x, Y: 100}, Vel: geo.Vector{X: 1}, Time: clk.Now()}
	}
	// Scalar path: one valid record, one out-of-range id (64 nodes
	// configured, so id 4000 is hostile/corrupt).
	send(wire.AppendUpdate(nil, wire.Update{Node: 1, Report: rep(100)}))
	send(wire.AppendUpdate(nil, wire.Update{Node: 4000, Report: rep(100)}))
	// Batch path: two valid records and one invalid, which forces the
	// per-record admission branch and its invalid accounting.
	var b wire.UpdateBatch
	b.Append(wire.Update{Node: 1, Report: rep(150)})
	b.Append(wire.Update{Node: 4000, Report: rep(150)})
	b.Append(wire.Update{Node: 2, Report: rep(200)})
	send(wire.AppendUpdateBatch(nil, &b))

	// 5 records offered in total; 2 carried invalid ids; the other 3 must
	// reach the motion table.
	waitFor(t, "ledger to settle", func() bool {
		clk.Advance(10)
		led := s.Ledger()
		return led.Offered == 5 && led.Invalid == 2 && led.Applied == 3 && led.Balance == 0
	})

	in := s.Introspect()
	if in.Ledger.Offered != 5 || in.Ledger.Invalid != 2 {
		t.Errorf("introspection ledger = %+v", in.Ledger)
	}
	if len(in.SLO) != 3 || in.SLO[0].Name != "eval_p99" || in.SLO[0].Ticks == 0 {
		t.Errorf("introspection SLO views = %+v", in.SLO)
	}
	for _, v := range in.SLO {
		if v.Alerting {
			t.Errorf("healthy run must not alert: %+v", v)
		}
	}

	// The per-tick gauges mirror the same ledger.
	snap := hub.Registry.Snapshot()
	if got := snap.Counters["lira_ledger_violations_total"]; got != 0 {
		t.Errorf("ledger violations = %d, want 0", got)
	}
	if got := snap.Gauges["lira_ledger_offered"]; got != 5 {
		t.Errorf("lira_ledger_offered gauge = %v, want 5", got)
	}
	if _, ok := snap.Gauges["lira_slo_eval_p99_burn_long"]; !ok {
		t.Error("missing lira_slo_eval_p99_burn_long gauge")
	}

	// Spans: the background tick and the batch frame both traced, and the
	// export is valid trace-event JSON.
	var tick, batch bool
	for _, c := range tracer.ByCategory() {
		if c.Cat == "netsvc" && c.N > 0 {
			tick = true
		}
	}
	for _, sp := range tracer.Snapshot() {
		if sp.Name == "update_batch" {
			batch = true
		}
	}
	if !tick || !batch {
		t.Errorf("expected netsvc tick and update_batch spans (tick=%v batch=%v)", tick, batch)
	}
	var buf bytes.Buffer
	if err := tracer.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("span export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("span export is empty")
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if led := s.Ledger(); led.Balance != 0 {
		t.Errorf("ledger unbalanced after close: %+v", led)
	}
}

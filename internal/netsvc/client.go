package netsvc

import (
	"fmt"
	"net"
	"sync"

	"lira/internal/basestation"
	"lira/internal/geo"
	"lira/internal/mobilenode"
	"lira/internal/wire"
)

// NodeClient is a layer-3 mobile node speaking the wire protocol: it
// receives (and hot-swaps) station assignments, dead-reckons locally with
// the region-dependent threshold, and transmits only the updates the
// model requires.
type NodeClient struct {
	id   uint32
	conn net.Conn

	mu       sync.Mutex
	node     *mobilenode.Node
	fallback float64
	started  bool

	wg     sync.WaitGroup
	closed chan struct{}
}

// DialNode connects a node to the server and announces its position. The
// first assignment arrives asynchronously; until then the node reports at
// the fallback threshold (Δ⊢ — the conservative choice).
func DialNode(addr string, id uint32, pos geo.Point, fallbackDelta float64) (*NodeClient, error) {
	if fallbackDelta <= 0 {
		return nil, fmt.Errorf("netsvc: non-positive fallback threshold %v", fallbackDelta)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &NodeClient{
		id:       id,
		conn:     conn,
		node:     mobilenode.NewNode(int(id)),
		fallback: fallbackDelta,
		closed:   make(chan struct{}),
	}
	if err := wire.WriteFrame(conn, wire.AppendHello(nil, wire.Hello{Node: id, Pos: pos})); err != nil {
		conn.Close()
		return nil, err
	}
	c.wg.Add(1)
	go c.readLoop()
	return c, nil
}

func (c *NodeClient) readLoop() {
	defer c.wg.Done()
	for {
		typ, payload, err := wire.ReadFrame(c.conn)
		if err != nil {
			return
		}
		if typ != wire.TypeAssignment {
			continue // nodes only consume assignments
		}
		wa, err := wire.DecodeAssignment(payload)
		if err != nil {
			return
		}
		a := &basestation.Assignment{DefaultDelta: wa.DefaultDelta}
		for _, e := range wa.Entries {
			a.Regions = append(a.Regions, e.Rect())
			a.Deltas = append(a.Deltas, e.Delta)
		}
		compiled := mobilenode.Compile(a)
		c.mu.Lock()
		c.node.Install(int(wa.Station), compiled)
		c.mu.Unlock()
	}
}

// Observe feeds the node's true state at time t. When dead reckoning
// demands a report, it is transmitted; the result says whether one was
// sent.
func (c *NodeClient) Observe(pos geo.Point, vel geo.Vector, t float64) (sent bool, err error) {
	c.mu.Lock()
	var frame []byte
	if !c.started {
		rep := c.node.Start(pos, vel, t)
		frame = wire.AppendUpdate(nil, wire.Update{Node: c.id, Report: rep})
		c.started = true
	} else if rep, send := c.node.Observe(pos, vel, t, c.fallback); send {
		frame = wire.AppendUpdate(nil, wire.Update{Node: c.id, Report: rep})
	}
	c.mu.Unlock()
	if frame == nil {
		return false, nil
	}
	return true, wire.WriteFrame(c.conn, frame)
}

// Updates returns the number of updates sent so far.
func (c *NodeClient) Updates() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.node.Updates
}

// Station returns the id of the station whose assignment the node holds,
// or -1 before the first assignment arrives.
func (c *NodeClient) Station() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.node.Station()
}

// Close disconnects the node.
func (c *NodeClient) Close() error {
	err := c.conn.Close()
	c.wg.Wait()
	return err
}

// QueryClient subscribes continual range queries and receives pushed
// result sets.
type QueryClient struct {
	conn net.Conn

	mu   sync.Mutex
	next uint32

	results chan wire.Result
	wg      sync.WaitGroup
}

// DialQuery connects a query subscriber. Results arrive on Results() —
// once immediately per Register, then on every server evaluation round.
func DialQuery(addr string, buffer int) (*QueryClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if buffer <= 0 {
		buffer = 16
	}
	c := &QueryClient{conn: conn, results: make(chan wire.Result, buffer)}
	c.wg.Add(1)
	go c.readLoop()
	return c, nil
}

func (c *QueryClient) readLoop() {
	defer c.wg.Done()
	defer close(c.results)
	for {
		typ, payload, err := wire.ReadFrame(c.conn)
		if err != nil {
			return
		}
		if typ != wire.TypeResult {
			continue
		}
		res, err := wire.DecodeResult(payload)
		if err != nil {
			return
		}
		select {
		case c.results <- res:
		default:
			// Subscriber is slow: drop the oldest, keep the freshest.
			select {
			case <-c.results:
			default:
			}
			select {
			case c.results <- res:
			default:
			}
		}
	}
}

// Register subscribes a range query and returns the local sequence number
// of the registration. Result ids are assigned by the server in
// registration order per connection arrival, so with a single query
// client they match.
func (c *QueryClient) Register(r geo.Rect) (uint32, error) {
	c.mu.Lock()
	id := c.next
	c.next++
	c.mu.Unlock()
	return id, wire.WriteFrame(c.conn, wire.AppendQuery(nil, wire.Query{ID: id, Rect: r}))
}

// Results returns the channel of pushed result sets. It is closed when
// the connection drops.
func (c *QueryClient) Results() <-chan wire.Result { return c.results }

// Close disconnects the subscriber.
func (c *QueryClient) Close() error {
	err := c.conn.Close()
	c.wg.Wait()
	return err
}

package netsvc

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime/pprof"
	"sync"
	"time"

	"lira/internal/basestation"
	"lira/internal/geo"
	"lira/internal/metrics"
	"lira/internal/mobilenode"
	"lira/internal/rng"
	"lira/internal/telemetry"
	"lira/internal/wire"
)

// Dialer opens the transport to a server. The default dials TCP; chaos
// tests substitute a faultnet fabric.
type Dialer func(addr string) (net.Conn, error)

func defaultDialer(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }

// ErrClosed is returned by operations on a client after Close.
var ErrClosed = errors.New("netsvc: client closed")

// Client-side fault-tolerance defaults. Heartbeats keep read deadlines
// from tripping on healthy-but-idle links; the backoff bounds how hard a
// reconnecting fleet hammers a recovering server.
const (
	defaultHeartbeat   = 1 * time.Second
	defaultWriteExpiry = 5 * time.Second
	defaultBackoffBase = 50 * time.Millisecond
	defaultBackoffMax  = 2 * time.Second
)

// Client-side batching defaults: a pending batch is flushed when it
// reaches defaultBatchSize records or when defaultBatchFlush elapses,
// whichever comes first. The flush interval bounds the extra latency
// batching adds to any single report.
const (
	defaultBatchSize  = 64
	defaultBatchFlush = 5 * time.Millisecond
)

// linkConfig is the fault-tolerance parameter set shared by both client
// kinds.
type linkConfig struct {
	dialer Dialer
	// heartbeatEvery is the ping cadence; <0 disables heartbeats.
	heartbeatEvery time.Duration
	// readTimeout bounds silence on the link; <0 disables.
	readTimeout time.Duration
	// writeTimeout bounds one frame write; <0 disables.
	writeTimeout time.Duration
	// backoffBase/backoffMax bound the exponential reconnect backoff.
	backoffBase, backoffMax time.Duration
	// maxAttempts bounds consecutive failed reconnect dials before the
	// client gives up; 0 means retry until Close.
	maxAttempts int
	// reconnect is false when the client should die on the first link
	// error (the pre-fault-tolerance behavior, still used by tests that
	// assert on terminal errors).
	reconnect bool
	counters  *metrics.NetCounters
	seed      uint64
	// hub, peer, node identify this link in the telemetry decision
	// journal; hub nil disables journaling.
	hub  *telemetry.Hub
	peer string
	node int64
	// keepalive builds the frames for one heartbeat tick. The default is
	// a bare Ping; clients substitute state-aware keepalives (a node still
	// waiting for its assignment re-announces Hello, a query client
	// periodically re-sends its idempotent registrations) so that state
	// silently lost on a faulty link is re-established without waiting
	// for the next full reconnect.
	keepalive func(token uint32) [][]byte
}

func (lc *linkConfig) fill() {
	if lc.dialer == nil {
		lc.dialer = defaultDialer
	}
	if lc.heartbeatEvery == 0 {
		lc.heartbeatEvery = defaultHeartbeat
	}
	if lc.readTimeout == 0 {
		if lc.heartbeatEvery > 0 {
			lc.readTimeout = 4 * lc.heartbeatEvery
		} else {
			lc.readTimeout = -1 // no heartbeats to keep an idle link alive
		}
	}
	if lc.writeTimeout == 0 {
		lc.writeTimeout = defaultWriteExpiry
	}
	if lc.backoffBase <= 0 {
		lc.backoffBase = defaultBackoffBase
	}
	if lc.backoffMax < lc.backoffBase {
		lc.backoffMax = defaultBackoffMax
	}
	if lc.backoffMax < lc.backoffBase {
		lc.backoffMax = lc.backoffBase
	}
	if lc.counters == nil {
		lc.counters = &metrics.NetCounters{}
	}
	if lc.keepalive == nil {
		lc.keepalive = func(token uint32) [][]byte {
			return [][]byte{wire.AppendPing(nil, wire.Ping{Token: token})}
		}
	}
}

// recordNet journals one degradation event for this link (no-op without
// a hub).
func (lc *linkConfig) recordNet(event, detail string) {
	if lc.hub == nil {
		return
	}
	lc.hub.Record(telemetry.Record{
		Kind: telemetry.KindNet,
		Net:  &telemetry.NetEvent{Event: event, Peer: lc.peer, Node: lc.node, Detail: detail},
	})
}

// backoffDelay returns the delay before reconnect attempt (1-based):
// exponential growth capped at backoffMax, with deterministic jitter in
// the upper half of the window so a fleet sharing a fault does not
// reconnect in lockstep — but a fleet sharing a seed replays the exact
// same schedule.
func (lc *linkConfig) backoffDelay(r *rng.Rand, attempt int) time.Duration {
	d := lc.backoffBase
	for i := 1; i < attempt && d < lc.backoffMax; i++ {
		d *= 2
	}
	if d > lc.backoffMax {
		d = lc.backoffMax
	}
	half := d / 2
	return half + time.Duration(r.Float64()*float64(half))
}

// link is the shared connection state machine: one current transport,
// the most recent link error, and the write path with deadlines.
type link struct {
	cfg linkConfig

	mu         sync.Mutex
	conn       net.Conn
	linkErr    error // most recent link failure; nil while healthy
	closed     bool
	reconnects int64

	wmu      sync.Mutex // serializes frame writes on the current transport
	closedCh chan struct{}
	backoff  *rng.Rand
}

func newLink(cfg linkConfig, conn net.Conn) *link {
	return &link{
		cfg:      cfg,
		conn:     conn,
		closedCh: make(chan struct{}),
		backoff:  rng.New(cfg.seed).Split(0x6c696e6b), // "link"
	}
}

func (l *link) isClosed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.closed
}

// current returns the live transport, or nil while disconnected.
func (l *link) current() net.Conn {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.conn
}

// send writes one frame on the current transport. A write failure closes
// the transport (waking the read loop, which drives reconnection) and is
// returned to the caller.
func (l *link) send(frame []byte) error {
	l.mu.Lock()
	conn := l.conn
	closed := l.closed
	l.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if conn == nil {
		return errDisconnected
	}
	l.wmu.Lock()
	defer l.wmu.Unlock()
	if l.cfg.writeTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(l.cfg.writeTimeout))
	}
	if err := wire.WriteFrame(conn, frame); err != nil {
		conn.Close()
		return err
	}
	return nil
}

var errDisconnected = errors.New("netsvc: link down, reconnecting")

// lost records a link failure and clears the transport. It returns false
// when the client was closed (no reconnection should follow).
func (l *link) lost(err error) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return false
	}
	l.conn = nil
	l.linkErr = err
	return true
}

// reconnect runs the backoff → dial → handshake cycle until it installs
// a fresh transport or the client closes/gives up. handshake re-announces
// the client's state on the new transport before it goes live.
func (l *link) reconnect(addr string, handshake func(net.Conn) error) (net.Conn, bool) {
	for attempt := 1; ; attempt++ {
		if l.cfg.maxAttempts > 0 && attempt > l.cfg.maxAttempts {
			l.mu.Lock()
			l.linkErr = fmt.Errorf("netsvc: gave up after %d reconnect attempts: %w", l.cfg.maxAttempts, l.linkErr)
			l.mu.Unlock()
			l.cfg.recordNet("give-up", "max-attempts")
			return nil, false
		}
		select {
		case <-l.closedCh:
			return nil, false
		case <-time.After(l.cfg.backoffDelay(l.backoff, attempt)):
		}
		conn, err := l.cfg.dialer(addr)
		if err != nil {
			l.lost(err)
			continue
		}
		if err := handshake(conn); err != nil {
			conn.Close()
			l.lost(err)
			continue
		}
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			conn.Close()
			return nil, false
		}
		l.conn = conn
		l.linkErr = nil
		l.reconnects++
		l.mu.Unlock()
		l.cfg.counters.Reconnects.Add(1)
		l.cfg.recordNet("reconnect", "")
		return conn, true
	}
}

// heartbeatLoop pings the server at the configured cadence so both ends'
// read deadlines see traffic on a healthy link. Send failures are left
// to the read loop to diagnose.
func (l *link) heartbeatLoop() {
	if l.cfg.heartbeatEvery <= 0 {
		return
	}
	ticker := time.NewTicker(l.cfg.heartbeatEvery)
	defer ticker.Stop()
	var token uint32
	for {
		select {
		case <-l.closedCh:
			return
		case <-ticker.C:
			token++
			sent := true
			for _, frame := range l.cfg.keepalive(token) {
				if l.send(frame) != nil {
					sent = false
					break
				}
			}
			if sent {
				l.cfg.counters.Heartbeats.Add(1)
			}
		}
	}
}

// armRead sets the read deadline for the next frame; on a read error it
// classifies deadline trips for the counters.
func (l *link) armRead(conn net.Conn) {
	if l.cfg.readTimeout > 0 {
		conn.SetReadDeadline(time.Now().Add(l.cfg.readTimeout))
	}
}

func (l *link) noteReadError(err error) {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		l.cfg.counters.DeadlineTrips.Add(1)
	}
}

// closeLink tears the link down. It returns the transport that must be
// closed by the caller (outside the lock).
func (l *link) closeLink() net.Conn {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	close(l.closedCh)
	conn := l.conn
	l.conn = nil
	return conn
}

// err returns the most recent link error (nil while healthy or after a
// clean close).
func (l *link) err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.linkErr
}

// NodeConfig parameterizes a fault-tolerant mobile-node client.
type NodeConfig struct {
	// ID is the node id announced in the Hello.
	ID uint32
	// Pos is the initial position.
	Pos geo.Point
	// FallbackDelta is Δ⊢: the conservative threshold used before the
	// first assignment arrives and again whenever the link is down.
	FallbackDelta float64
	// Dialer opens the transport; nil dials TCP.
	Dialer Dialer
	// HeartbeatEvery is the ping cadence (0 → 1s, <0 disables).
	HeartbeatEvery time.Duration
	// ReadTimeout bounds silence before the link is declared dead
	// (0 → 4×heartbeat, <0 disables).
	ReadTimeout time.Duration
	// WriteTimeout bounds one frame write (0 → 5s, <0 disables).
	WriteTimeout time.Duration
	// BackoffBase and BackoffMax bound the exponential reconnect backoff
	// (0 → 50ms and 2s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// MaxAttempts bounds consecutive failed reconnect dials before the
	// client records a terminal error; 0 retries until Close.
	MaxAttempts int
	// DisableReconnect makes the first link error terminal.
	DisableReconnect bool
	// BatchSize is the pending-update count that forces a flush (0 → 64).
	// Batching only engages after the server advertises support in its
	// Hello ack; until then (and against pre-batch servers forever) the
	// flusher drains pending reports as per-update frames.
	BatchSize int
	// BatchFlushEvery bounds how long a report may sit in the pending
	// batch before a time-based flush (0 → 5ms, <0 flushes on size only).
	BatchFlushEvery time.Duration
	// DisableBatch restores the pre-batching behavior: every report is
	// written as its own Update frame from Observe.
	DisableBatch bool
	// Seed drives the deterministic backoff jitter; 0 derives one from ID.
	Seed uint64
	// Counters receives degradation accounting; nil allocates a private
	// set (inspect it via Counters).
	Counters *metrics.NetCounters
	// Telemetry, when non-nil, journals this client's link transitions
	// (disconnect, reconnect, give-up).
	Telemetry *telemetry.Hub
}

// NodeClient is a layer-3 mobile node speaking the wire protocol: it
// receives (and hot-swaps) station assignments, dead-reckons locally with
// the region-dependent threshold, and transmits only the updates the
// model requires.
//
// The client survives link failure: it reconnects with exponential
// backoff and deterministic jitter, re-announces its position (Hello) on
// resync — which makes the server re-send the live assignment — and
// forces a fresh full report so the server's motion table rebases. While
// disconnected the node degrades to the conservative fallback threshold
// Δ⊢, exactly its state before the first assignment arrived.
type NodeClient struct {
	cfg  NodeConfig
	addr string
	link *link

	mu      sync.Mutex
	node    *mobilenode.Node
	started bool
	lastPos geo.Point
	lost    int64

	// Batching state (guarded by mu): pending accumulates quantized
	// reports between flushes; batchOK is set by the server's capability
	// Hello ack and cleared on every link loss, so a reconnect through a
	// downgraded proxy — or to an older server — degrades to per-update
	// frames instead of sending frames the peer would drop.
	pending wire.UpdateBatch
	batchOK bool

	// flushMu serializes flushes; frameBuf is the flush-owned encode
	// buffer, reused so a steady-state flush allocates nothing.
	flushMu  sync.Mutex
	frameBuf []byte

	wg sync.WaitGroup
}

// DialNode connects a node to the server with default fault tolerance
// and announces its position. The first assignment arrives
// asynchronously; until then the node reports at the fallback threshold
// (Δ⊢ — the conservative choice).
func DialNode(addr string, id uint32, pos geo.Point, fallbackDelta float64) (*NodeClient, error) {
	return DialNodeConfig(addr, NodeConfig{ID: id, Pos: pos, FallbackDelta: fallbackDelta})
}

// DialNodeConfig connects a node with explicit fault-tolerance
// parameters.
func DialNodeConfig(addr string, cfg NodeConfig) (*NodeClient, error) {
	if cfg.FallbackDelta <= 0 {
		return nil, fmt.Errorf("netsvc: non-positive fallback threshold %v", cfg.FallbackDelta)
	}
	if cfg.Seed == 0 {
		cfg.Seed = uint64(cfg.ID)*0x9e3779b97f4a7c15 + 1
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = defaultBatchSize
	}
	if cfg.BatchSize > wire.MaxBatch {
		cfg.BatchSize = wire.MaxBatch
	}
	if cfg.BatchFlushEvery == 0 {
		cfg.BatchFlushEvery = defaultBatchFlush
	}
	lc := linkConfig{
		dialer:         cfg.Dialer,
		heartbeatEvery: cfg.HeartbeatEvery,
		readTimeout:    cfg.ReadTimeout,
		writeTimeout:   cfg.WriteTimeout,
		backoffBase:    cfg.BackoffBase,
		backoffMax:     cfg.BackoffMax,
		maxAttempts:    cfg.MaxAttempts,
		reconnect:      !cfg.DisableReconnect,
		counters:       cfg.Counters,
		seed:           cfg.Seed,
		hub:            cfg.Telemetry,
		peer:           "node",
		node:           int64(cfg.ID),
	}
	lc.fill()
	conn, err := lc.dialer(addr)
	if err != nil {
		return nil, err
	}
	if err := wire.WriteFrame(conn, wire.AppendHello(nil, wire.Hello{Node: cfg.ID, Pos: cfg.Pos})); err != nil {
		conn.Close()
		return nil, err
	}
	c := &NodeClient{
		cfg:  cfg,
		addr: addr,
		node: mobilenode.NewNode(int(cfg.ID)),
	}
	// State-aware keepalive: while no assignment is installed (the Hello
	// or its answer was lost in transit), each heartbeat re-announces the
	// position instead of pinging, so the server re-learns the node and
	// re-sends the live assignment without waiting for a reconnect.
	lc.keepalive = func(token uint32) [][]byte {
		c.mu.Lock()
		pos := c.lastPos
		station := c.node.Station()
		c.mu.Unlock()
		if station < 0 {
			return [][]byte{wire.AppendHello(nil, wire.Hello{Node: cfg.ID, Pos: pos})}
		}
		return [][]byte{wire.AppendPing(nil, wire.Ping{Token: token})}
	}
	c.link = newLink(lc, conn)
	c.lastPos = cfg.Pos
	c.wg.Add(2)
	go c.run(conn)
	go func() {
		defer c.wg.Done()
		c.link.heartbeatLoop()
	}()
	if !cfg.DisableBatch && cfg.BatchFlushEvery > 0 {
		c.wg.Add(1)
		go c.flushLoop()
	}
	return c, nil
}

// flushLoop is the time-based half of the batching policy: it drains the
// pending batch every BatchFlushEvery so a lone report never waits on the
// size trigger. It exits with the link (Close waits for it), so a stopped
// client leaks no flusher goroutine.
func (c *NodeClient) flushLoop() {
	defer c.wg.Done()
	// Profiler attribution: name the flusher in CPU/goroutine profiles,
	// mirroring the server loops' lira_phase labels.
	pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
		pprof.Labels("lira_phase", "flush")))
	ticker := time.NewTicker(c.cfg.BatchFlushEvery)
	defer ticker.Stop()
	for {
		select {
		case <-c.link.closedCh:
			return
		case <-ticker.C:
			c.flushPending()
		}
	}
}

// flushPending drains the pending batch: one vectored UpdateBatch frame
// when the server advertised batch support, per-update frames otherwise
// (pre-batch servers, or before the capability ack arrives). Either way
// the pending buffer always empties — reports never rot in a client
// whose server speaks the old protocol. A failed batch write loses the
// whole batch; every lost report is counted.
func (c *NodeClient) flushPending() {
	c.flushMu.Lock()
	defer c.flushMu.Unlock()
	c.mu.Lock()
	n := c.pending.Len()
	if n == 0 {
		c.mu.Unlock()
		return
	}
	if c.batchOK {
		c.frameBuf = wire.AppendUpdateBatch(c.frameBuf[:0], &c.pending)
		c.pending.Reset()
		frame := c.frameBuf // flushMu keeps the buffer ours until WriteFrame returns
		c.mu.Unlock()
		if err := c.link.send(frame); err != nil && err != ErrClosed {
			c.link.cfg.counters.LostUpdates.Add(int64(n))
			c.mu.Lock()
			c.lost += int64(n)
			c.mu.Unlock()
		}
		return
	}
	frames := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		frames = append(frames, wire.AppendUpdate(nil, c.pending.Update(i)))
	}
	c.pending.Reset()
	c.mu.Unlock()
	for _, frame := range frames {
		if err := c.link.send(frame); err != nil && err != ErrClosed {
			c.link.cfg.counters.LostUpdates.Add(1)
			c.mu.Lock()
			c.lost++
			c.mu.Unlock()
		}
	}
}

// run owns the connection lifecycle: read until the link fails, degrade,
// reconnect, repeat.
func (c *NodeClient) run(conn net.Conn) {
	defer c.wg.Done()
	for {
		err := c.readLoop(conn)
		conn.Close()
		if !c.link.lost(err) {
			return // closed by user: clean shutdown
		}
		c.link.cfg.counters.Disconnects.Add(1)
		c.link.cfg.recordNet("disconnect", "read")
		// Graceful degradation: revert to Δ⊢ until resync, force a fresh
		// full report on the next Observe after reconnecting, and forget
		// the batch capability — it is renegotiated per connection.
		c.mu.Lock()
		c.node.Drop()
		c.started = false
		c.batchOK = false
		c.mu.Unlock()
		if !c.link.cfg.reconnect {
			return
		}
		next, ok := c.link.reconnect(c.addr, func(nc net.Conn) error {
			c.mu.Lock()
			pos := c.lastPos
			c.mu.Unlock()
			if c.link.cfg.writeTimeout > 0 {
				nc.SetWriteDeadline(time.Now().Add(c.link.cfg.writeTimeout))
			}
			err := wire.WriteFrame(nc, wire.AppendHello(nil, wire.Hello{Node: c.cfg.ID, Pos: pos}))
			nc.SetWriteDeadline(time.Time{})
			return err
		})
		if !ok {
			return
		}
		conn = next
	}
}

// readLoop consumes frames until the link errors. It returns nil only
// when the client was closed.
func (c *NodeClient) readLoop(conn net.Conn) error {
	for {
		c.link.armRead(conn)
		typ, payload, err := wire.ReadFrame(conn)
		if err != nil {
			if c.link.isClosed() {
				return nil
			}
			c.link.noteReadError(err)
			return err
		}
		switch typ {
		case wire.TypeAssignment:
			wa, err := wire.DecodeAssignment(payload)
			if err != nil {
				return err // corrupted stream: resync via reconnect
			}
			a := &basestation.Assignment{DefaultDelta: wa.DefaultDelta}
			for _, e := range wa.Entries {
				a.Regions = append(a.Regions, e.Rect())
				a.Deltas = append(a.Deltas, e.Delta)
			}
			compiled := mobilenode.Compile(a)
			c.mu.Lock()
			c.node.Install(int(wa.Station), compiled)
			c.mu.Unlock()
		case wire.TypeHello:
			// Capability ack: a v2 server advertising batch support. A
			// malformed ack is ignored rather than fatal — the client just
			// stays on per-update frames, which every server accepts.
			if h, err := wire.DecodeHello(payload); err == nil &&
				h.Version >= wire.HelloV2 && h.Flags&wire.HelloFlagBatch != 0 {
				c.mu.Lock()
				c.batchOK = true
				c.mu.Unlock()
			}
		case wire.TypePong:
			// Liveness: the read deadline was refreshed above.
		default:
			// Nodes only consume assignments and pongs.
		}
	}
}

// Observe feeds the node's true state at time t. When dead reckoning
// demands a report, it is transmitted (enqueued onto the pending batch
// in the default batching mode, where it leaves within BatchFlushEvery
// or as soon as BatchSize reports accumulate); the result says whether
// one was generated. While the link is down the report is counted as
// lost and the node keeps dead-reckoning at the fallback threshold —
// reconnection re-announces the position and rebases the server with a
// fresh full report, so the loss is bounded, never silent.
func (c *NodeClient) Observe(pos geo.Point, vel geo.Vector, t float64) (sent bool, err error) {
	if c.link.isClosed() {
		return false, ErrClosed
	}
	c.mu.Lock()
	c.lastPos = pos
	var u wire.Update
	have := false
	if !c.started {
		u = wire.Update{Node: c.cfg.ID, Report: c.node.Start(pos, vel, t)}
		c.started = true
		have = true
	} else if rep, send := c.node.Observe(pos, vel, t, c.cfg.FallbackDelta); send {
		u = wire.Update{Node: c.cfg.ID, Report: rep}
		have = true
	}
	if !have {
		c.mu.Unlock()
		return false, nil
	}
	if !c.cfg.DisableBatch {
		// Batching mode: enqueue (quantizing to the wire's fixed-point
		// grid) and let the size trigger or the flusher transmit. The
		// pending buffer always drains — flushPending falls back to
		// per-update frames when the server never advertised batching.
		c.pending.Append(u)
		full := c.pending.Len() >= c.cfg.BatchSize
		c.mu.Unlock()
		if full {
			c.flushPending()
		}
		return true, nil
	}
	frame := wire.AppendUpdate(nil, u)
	c.mu.Unlock()
	if err := c.link.send(frame); err != nil {
		if err == ErrClosed {
			return true, ErrClosed
		}
		// Link down or write failed: the run loop reconnects; the report
		// itself is lost, which the counters make visible.
		c.link.cfg.counters.LostUpdates.Add(1)
		c.mu.Lock()
		c.lost++
		c.mu.Unlock()
		return true, nil
	}
	return true, nil
}

// Updates returns the number of reports the node has generated so far
// (including any lost to a down link; see LostUpdates).
func (c *NodeClient) Updates() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.node.Updates
}

// LostUpdates returns the number of reports discarded because the link
// was down.
func (c *NodeClient) LostUpdates() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lost
}

// Reconnects returns the number of successful reconnections.
func (c *NodeClient) Reconnects() int64 {
	c.link.mu.Lock()
	defer c.link.mu.Unlock()
	return c.link.reconnects
}

// Station returns the id of the station whose assignment the node holds,
// or -1 before the first assignment arrives and while degraded after a
// link failure.
func (c *NodeClient) Station() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.node.Station()
}

// Counters exposes the degradation counters this client reports into.
func (c *NodeClient) Counters() *metrics.NetCounters { return c.link.cfg.counters }

// Err returns the most recent link error: nil while the link is healthy
// (or cleanly closed), the terminal error after the client gave up
// reconnecting or reconnection is disabled.
func (c *NodeClient) Err() error { return c.link.err() }

// Close disconnects the node. Reports still waiting in the pending batch
// are flushed first — a graceful shutdown loses nothing it accepted. It
// returns the link's terminal error so callers can distinguish clean
// shutdown (nil) from a failed link.
func (c *NodeClient) Close() error {
	if !c.cfg.DisableBatch {
		c.flushPending()
	}
	if conn := c.link.closeLink(); conn != nil {
		conn.Close()
	}
	c.wg.Wait()
	return c.link.err()
}

// QueryConfig parameterizes a fault-tolerant query-subscriber client.
type QueryConfig struct {
	// Buffer is the pushed-result channel depth (0 → 16).
	Buffer int
	// Dialer opens the transport; nil dials TCP.
	Dialer Dialer
	// HeartbeatEvery, ReadTimeout, WriteTimeout, BackoffBase, BackoffMax,
	// MaxAttempts, DisableReconnect, and Seed behave as in NodeConfig.
	HeartbeatEvery   time.Duration
	ReadTimeout      time.Duration
	WriteTimeout     time.Duration
	BackoffBase      time.Duration
	BackoffMax       time.Duration
	MaxAttempts      int
	DisableReconnect bool
	Seed             uint64
	// Counters receives degradation accounting; nil allocates a private
	// set.
	Counters *metrics.NetCounters
	// Telemetry, when non-nil, journals this client's link transitions.
	Telemetry *telemetry.Hub
}

// QueryClient subscribes continual range queries and receives pushed
// result sets. On link failure it reconnects like NodeClient and
// re-registers every query under its original local id, so Results keeps
// delivering under the same ids across reconnections.
type QueryClient struct {
	cfg  QueryConfig
	addr string
	link *link

	mu   sync.Mutex
	regs []geo.Rect // registered rects, indexed by local query id

	results chan wire.Result
	wg      sync.WaitGroup
}

// DialQuery connects a query subscriber with default fault tolerance.
// Results arrive on Results() — once immediately per Register, then on
// every server evaluation round.
func DialQuery(addr string, buffer int) (*QueryClient, error) {
	return DialQueryConfig(addr, QueryConfig{Buffer: buffer})
}

// DialQueryConfig connects a query subscriber with explicit
// fault-tolerance parameters.
func DialQueryConfig(addr string, cfg QueryConfig) (*QueryClient, error) {
	if cfg.Buffer <= 0 {
		cfg.Buffer = 16
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0x71756572 // "quer"
	}
	lc := linkConfig{
		dialer:         cfg.Dialer,
		heartbeatEvery: cfg.HeartbeatEvery,
		readTimeout:    cfg.ReadTimeout,
		writeTimeout:   cfg.WriteTimeout,
		backoffBase:    cfg.BackoffBase,
		backoffMax:     cfg.BackoffMax,
		maxAttempts:    cfg.MaxAttempts,
		reconnect:      !cfg.DisableReconnect,
		counters:       cfg.Counters,
		seed:           cfg.Seed,
		hub:            cfg.Telemetry,
		peer:           "query",
		node:           -1,
	}
	lc.fill()
	conn, err := lc.dialer(addr)
	if err != nil {
		return nil, err
	}
	c := &QueryClient{
		cfg:     cfg,
		addr:    addr,
		results: make(chan wire.Result, cfg.Buffer),
	}
	// State-aware keepalive: every 8th heartbeat re-sends all
	// registrations. The server installs them idempotently per id, so a
	// Register frame silently lost on a faulty link heals within a few
	// heartbeats instead of only on the next reconnect.
	lc.keepalive = func(token uint32) [][]byte {
		frames := [][]byte{wire.AppendPing(nil, wire.Ping{Token: token})}
		if token%8 == 1 {
			c.mu.Lock()
			for id, r := range c.regs {
				frames = append(frames, wire.AppendQuery(nil, wire.Query{ID: uint32(id), Rect: r}))
			}
			c.mu.Unlock()
		}
		return frames
	}
	c.link = newLink(lc, conn)
	c.wg.Add(2)
	go c.run(conn)
	go func() {
		defer c.wg.Done()
		c.link.heartbeatLoop()
	}()
	return c, nil
}

func (c *QueryClient) run(conn net.Conn) {
	defer c.wg.Done()
	defer close(c.results)
	for {
		err := c.readLoop(conn)
		conn.Close()
		if !c.link.lost(err) {
			return
		}
		c.link.cfg.counters.Disconnects.Add(1)
		c.link.cfg.recordNet("disconnect", "read")
		if !c.link.cfg.reconnect {
			return
		}
		next, ok := c.link.reconnect(c.addr, func(nc net.Conn) error {
			// Re-register every query under its original local id so the
			// result stream resumes seamlessly.
			c.mu.Lock()
			regs := append([]geo.Rect(nil), c.regs...)
			c.mu.Unlock()
			if c.link.cfg.writeTimeout > 0 {
				nc.SetWriteDeadline(time.Now().Add(c.link.cfg.writeTimeout))
			}
			defer nc.SetWriteDeadline(time.Time{})
			for id, r := range regs {
				if err := wire.WriteFrame(nc, wire.AppendQuery(nil, wire.Query{ID: uint32(id), Rect: r})); err != nil {
					return err
				}
			}
			return nil
		})
		if !ok {
			return
		}
		conn = next
	}
}

func (c *QueryClient) readLoop(conn net.Conn) error {
	for {
		c.link.armRead(conn)
		typ, payload, err := wire.ReadFrame(conn)
		if err != nil {
			if c.link.isClosed() {
				return nil
			}
			c.link.noteReadError(err)
			return err
		}
		switch typ {
		case wire.TypeResult:
			res, err := wire.DecodeResult(payload)
			if err != nil {
				return err
			}
			select {
			case c.results <- res:
			default:
				// Subscriber is slow: drop the oldest, keep the freshest.
				select {
				case <-c.results:
				default:
				}
				select {
				case c.results <- res:
				default:
				}
			}
		case wire.TypePong:
		default:
		}
	}
}

// Register subscribes a range query and returns its local id. Results
// for the query carry the same id, across reconnections too. While the
// link is down the registration is queued and installed on resync.
func (c *QueryClient) Register(r geo.Rect) (uint32, error) {
	if c.link.isClosed() {
		return 0, ErrClosed
	}
	c.mu.Lock()
	id := uint32(len(c.regs))
	c.regs = append(c.regs, r)
	c.mu.Unlock()
	if err := c.link.send(wire.AppendQuery(nil, wire.Query{ID: id, Rect: r})); err != nil && err != errDisconnected {
		// errDisconnected is benign: the reconnect handshake replays the
		// registration. Other write failures trigger reconnection, which
		// replays it too — the registration itself is never lost.
		if err == ErrClosed {
			return id, ErrClosed
		}
	}
	return id, nil
}

// Results returns the channel of pushed result sets. It is closed when
// the client is closed or gives up reconnecting.
func (c *QueryClient) Results() <-chan wire.Result { return c.results }

// Reconnects returns the number of successful reconnections.
func (c *QueryClient) Reconnects() int64 {
	c.link.mu.Lock()
	defer c.link.mu.Unlock()
	return c.link.reconnects
}

// Counters exposes the degradation counters this client reports into.
func (c *QueryClient) Counters() *metrics.NetCounters { return c.link.cfg.counters }

// Err returns the most recent link error (see NodeClient.Err).
func (c *QueryClient) Err() error { return c.link.err() }

// Close disconnects the subscriber and returns the link's terminal
// error (nil for a clean shutdown).
func (c *QueryClient) Close() error {
	if conn := c.link.closeLink(); conn != nil {
		conn.Close()
	}
	c.wg.Wait()
	return c.link.err()
}

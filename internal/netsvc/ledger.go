package netsvc

// The record-conservation ledger: every position update offered to the
// server must be accounted for by exactly one fate. The identity is
//
//	offered == invalid + preshed + applied + ringshed + queued + in-flight
//
// where offered counts records entering ingest/ingestBatch at the trust
// boundary, invalid counts out-of-range node ids discarded there, preshed
// counts records the admission ladder rejected before the rings,
// applied/ringshed/queued are the engine's own conservation triple
// (Arrived == Applied + Dropped + QueueLen), and in-flight is the balance
// — records past the offered counter but not yet landed in a downstream
// bucket. The parts are read before offered (see Ledger), so the balance
// is never negative on a healthy server: a negative balance means a
// record was double-counted or a fate was invented, and increments
// lira_ledger_violations_total. At quiescence (after Close drains the
// rings) the balance is exactly zero — the property the differential and
// chaos tests pin.

import (
	"lira/internal/telemetry"
)

// ledgerTelemetry holds the ledger's pre-resolved gauges (refreshed once
// per background tick under the server mutex — the unsharded engine's
// queue is not safe to read from a scrape goroutine) and the violation
// counter. Nil when no Hub is configured.
type ledgerTelemetry struct {
	offered    *telemetry.Gauge   // lira_ledger_offered
	invalid    *telemetry.Gauge   // lira_ledger_invalid
	preshed    *telemetry.Gauge   // lira_ledger_preshed
	applied    *telemetry.Gauge   // lira_ledger_applied
	ringshed   *telemetry.Gauge   // lira_ledger_ringshed
	queued     *telemetry.Gauge   // lira_ledger_queued
	balance    *telemetry.Gauge   // lira_ledger_balance
	violations *telemetry.Counter // lira_ledger_violations_total
}

func newLedgerTelemetry(hub *telemetry.Hub) *ledgerTelemetry {
	if hub == nil {
		return nil
	}
	r := hub.Registry
	return &ledgerTelemetry{
		offered:    r.Gauge("lira_ledger_offered"),
		invalid:    r.Gauge("lira_ledger_invalid"),
		preshed:    r.Gauge("lira_ledger_preshed"),
		applied:    r.Gauge("lira_ledger_applied"),
		ringshed:   r.Gauge("lira_ledger_ringshed"),
		queued:     r.Gauge("lira_ledger_queued"),
		balance:    r.Gauge("lira_ledger_balance"),
		violations: r.Counter("lira_ledger_violations_total"),
	}
}

// LedgerView is one observation of the conservation ledger, shaped for
// the /debug/lira endpoint and test assertions.
type LedgerView struct {
	Offered  int64 `json:"offered"`
	Invalid  int64 `json:"invalid"`
	Preshed  int64 `json:"preshed"`
	Applied  int64 `json:"applied"`
	Ringshed int64 `json:"ringshed"`
	Queued   int64 `json:"queued"`
	// Balance is offered minus the sum of the fates: the records still in
	// flight between the trust boundary and a downstream bucket. Never
	// negative on a conserving server; zero at quiescence.
	Balance int64 `json:"balance"`
}

// ledgerView assembles the conservation ledger. Read ordering is the
// correctness argument: every fate bucket is read BEFORE the offered
// counter. A record increments offered first and lands in a bucket later,
// so buckets(T1) <= entries(T1) <= offered(T2) for T1 < T2 — concurrent
// ingest can only make the balance larger, never negative. Callers hold
// s.mu (the unsharded engine's queue is mutex-guarded).
func (s *Server) ledgerView() LedgerView {
	var v LedgerView
	v.Invalid = s.invalid.Load()
	if s.adm != nil {
		v.Preshed = s.adm.PreShed()
	}
	v.Applied = s.eng.Applied()
	v.Ringshed = s.eng.Dropped()
	v.Queued = int64(s.eng.QueueLen())
	v.Offered = s.offered.Load()
	v.Balance = v.Offered - v.Invalid - v.Preshed - v.Applied - v.Ringshed - v.Queued
	return v
}

// ledgerCheckLocked refreshes the lira_ledger_* gauges and flags a
// conservation violation (negative balance) on the violations counter.
// Runs once per background tick under s.mu; no-op without telemetry.
func (s *Server) ledgerCheckLocked() {
	if s.led == nil {
		return
	}
	v := s.ledgerView()
	s.led.offered.Set(float64(v.Offered))
	s.led.invalid.Set(float64(v.Invalid))
	s.led.preshed.Set(float64(v.Preshed))
	s.led.applied.Set(float64(v.Applied))
	s.led.ringshed.Set(float64(v.Ringshed))
	s.led.queued.Set(float64(v.Queued))
	s.led.balance.Set(float64(v.Balance))
	if v.Balance < 0 {
		s.led.violations.Inc()
	}
}

// Ledger returns the conservation ledger under the server mutex. After
// Close (which drains the rings) the balance is exactly zero unless a
// connection handler panicked mid-ingest (see Counters().Panics) — a
// recovered panic between the offered count and the ring can leak an
// in-flight record, which the ledger deliberately surfaces rather than
// hides.
func (s *Server) Ledger() LedgerView {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ledgerView()
}

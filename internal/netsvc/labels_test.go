package netsvc

import (
	"bytes"
	"runtime/pprof"
	"strings"
	"testing"
	"time"

	"lira/internal/geo"
)

// TestPipelineGoroutineLabels pins the profiler attribution of the two
// long-lived pipeline goroutines: the server's drain loop carries
// lira_phase=drain and the node client's batch flusher lira_phase=flush.
// Both labels are persistent (set once at goroutine start, never
// cleared), so a goroutine-profile poll observes them deterministically
// once the goroutines exist.
func TestPipelineGoroutineLabels(t *testing.T) {
	clk := &fakeClock{}
	s := startServer(t, clk.Now, 0.5)
	c, err := DialNode(s.Addr().String(), 1, geo.Point{X: 100, Y: 100}, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	prof := pprof.Lookup("goroutine")
	deadline := time.Now().Add(10 * time.Second)
	for {
		var buf bytes.Buffer
		if err := prof.WriteTo(&buf, 1); err != nil {
			t.Fatal(err)
		}
		out := buf.String()
		haveDrain := strings.Contains(out, `"lira_phase":"drain"`)
		haveFlush := strings.Contains(out, `"lira_phase":"flush"`)
		if haveDrain && haveFlush {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("labels missing after 10s: drain=%v flush=%v", haveDrain, haveFlush)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

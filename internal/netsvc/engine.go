package netsvc

import (
	"lira/internal/engine"
)

// Engine is the CQ evaluation core behind the network layer.
//
// Deprecated: the interface now lives in the neutral internal/engine
// package so engine-generic code (experiments, simulators, benchmarks)
// need not depend on the network layer. This alias is kept for one
// release; use engine.Engine.
type Engine = engine.Engine

package netsvc

import (
	"lira/internal/cqserver"
	"lira/internal/geo"
	"lira/internal/motion"
	"lira/internal/shard"
)

// Engine is the CQ evaluation core behind the network layer: either the
// single-threaded cqserver.Server (ServerConfig.Shards ≤ 1) or the
// spatially sharded shard.Server. Both produce byte-identical query
// results over the same ingest sequence, so the deployment layer treats
// the choice purely as a concurrency/throughput knob.
//
// The method set is the slice of the two servers the deployment layer
// actually drives; anything engine-specific (per-shard state, the raw
// bounded queue) stays behind the concrete types.
type Engine interface {
	// RegisterQueries replaces the registered continuous range queries.
	RegisterQueries(qs []geo.Rect)
	// Queries returns the registered queries.
	Queries() []geo.Rect
	// IngestShedOldest enqueues an update, shedding the oldest on
	// overflow; the flag reports whether a shed happened.
	IngestShedOldest(u cqserver.Update) bool
	// Drain applies up to limit queued updates (negative: all).
	Drain(limit int) int
	// Evaluate re-evaluates every query at time now, ids ascending.
	Evaluate(now float64) [][]int
	// Adapt runs one LIRA adaptation cycle at throttle fraction z.
	Adapt(z float64) (*cqserver.Adaptation, error)
	// ObserveStatistics folds one sampling round into the statistics grid.
	ObserveStatistics(positions []geo.Point, speeds []float64)
	// Table exposes the motion table.
	Table() *motion.Table
	// Applied returns the number of updates integrated so far.
	Applied() int64
	// QueueLen and QueueCap describe the input queue, and Dropped counts
	// updates shed or rejected on overflow (each summed across shards
	// when sharded).
	QueueLen() int
	QueueCap() int
	Dropped() int64
}

// coreEngine adapts the unsharded cqserver.Server to Engine: the only
// impedance is the queue accessors, which Engine flattens so callers
// need not know whether one bounded queue or K rings sit underneath.
type coreEngine struct{ *cqserver.Server }

func (e coreEngine) QueueLen() int  { return e.Queue().Len() }
func (e coreEngine) QueueCap() int  { return e.Queue().Cap() }
func (e coreEngine) Dropped() int64 { return e.Queue().Dropped() }
func (e coreEngine) IngestShedOldest(u cqserver.Update) bool {
	return e.Queue().OfferShedOldest(u)
}

// newEngine builds the engine selected by shards. The sharded engine's
// ingest path is safe for concurrent producers (lock-free rings); the
// unsharded one must be serialized by the caller — Server.ingest uses
// lockFreeIngest to pick the path.
func newEngine(core cqserver.Config, shards int) (Engine, bool, error) {
	if shards > 1 {
		s, err := shard.New(shard.Config{Core: core, Shards: shards})
		if err != nil {
			return nil, false, err
		}
		return s, true, nil
	}
	s, err := cqserver.New(core)
	if err != nil {
		return nil, false, err
	}
	return coreEngine{s}, false, nil
}

// Package fmodel implements the update reduction function f(Δ) of §2.1 and
// its κ-segment non-increasing piece-wise-linear approximation from §3.3.3.
//
// For an inaccuracy threshold Δ ∈ [Δ⊢, Δ⊣], f(Δ) is the number of position
// updates received relative to Δ = Δ⊢ (so f(Δ⊢) = 1 and f is
// non-increasing). The GREEDYINCREMENT optimality guarantee (Theorem 3.1)
// holds exactly for the piece-wise-linear approximation, so the Curve type
// here is the representation the optimizer consumes. A curve is obtained
// either by calibration — replaying a trace sample under κ+1 thresholds and
// counting updates, reproducing the paper's Figure 1 — or from the analytic
// hyperbolic default (update rate ∝ 1/Δ for linear dead reckoning, which
// has the same steep-then-flat shape as Figure 1).
package fmodel

import (
	"fmt"

	"lira/internal/geo"
	"lira/internal/motion"
)

// Curve is a non-increasing piece-wise-linear update reduction function
// over [MinDelta, MaxDelta] with equal-width segments.
type Curve struct {
	minDelta, maxDelta float64
	ys                 []float64 // κ+1 knot values, ys[0] == 1
}

// NewCurve builds a curve from κ+1 knot values sampled at equally spaced
// thresholds from minDelta to maxDelta. The values are normalized so the
// first knot equals 1 and clamped to be non-increasing (measurement noise
// in a calibration run must not produce a locally increasing f, which
// would give a negative shedding rate).
func NewCurve(minDelta, maxDelta float64, knots []float64) (*Curve, error) {
	if !(minDelta > 0) || !(maxDelta > minDelta) {
		return nil, fmt.Errorf("fmodel: invalid threshold range [%v, %v]", minDelta, maxDelta)
	}
	if len(knots) < 2 {
		return nil, fmt.Errorf("fmodel: need at least 2 knots, got %d", len(knots))
	}
	if !(knots[0] > 0) {
		return nil, fmt.Errorf("fmodel: first knot must be positive, got %v", knots[0])
	}
	ys := make([]float64, len(knots))
	for i, k := range knots {
		ys[i] = k / knots[0]
	}
	for i := 1; i < len(ys); i++ {
		if ys[i] > ys[i-1] {
			ys[i] = ys[i-1]
		}
		if ys[i] < 0 {
			ys[i] = 0
		}
	}
	return &Curve{minDelta: minDelta, maxDelta: maxDelta, ys: ys}, nil
}

// Hyperbolic returns the analytic default curve with κ segments:
// f(Δ) = Δ⊢/Δ, the shape of update counts under linear dead reckoning
// when model deviation grows roughly linearly with time.
func Hyperbolic(minDelta, maxDelta float64, segments int) *Curve {
	if segments < 1 {
		segments = 1
	}
	knots := make([]float64, segments+1)
	for i := range knots {
		d := minDelta + (maxDelta-minDelta)*float64(i)/float64(segments)
		knots[i] = minDelta / d
	}
	c, err := NewCurve(minDelta, maxDelta, knots)
	if err != nil {
		panic(err) // impossible: inputs are constructed valid
	}
	return c
}

// MinDelta returns Δ⊢, the ideal position-update resolution.
func (c *Curve) MinDelta() float64 { return c.minDelta }

// MaxDelta returns Δ⊣, the lowest acceptable resolution.
func (c *Curve) MaxDelta() float64 { return c.maxDelta }

// Segments returns κ, the number of linear segments.
func (c *Curve) Segments() int { return len(c.ys) - 1 }

// SegmentWidth returns the paper's increment c_Δ = (Δ⊣ − Δ⊢)/κ for which
// GREEDYINCREMENT is optimal on this curve.
func (c *Curve) SegmentWidth() float64 {
	return (c.maxDelta - c.minDelta) / float64(c.Segments())
}

// Knot returns the i-th knot threshold and value.
func (c *Curve) Knot(i int) (delta, f float64) {
	return c.minDelta + c.SegmentWidth()*float64(i), c.ys[i]
}

func (c *Curve) clamp(delta float64) float64 {
	if delta < c.minDelta {
		return c.minDelta
	}
	if delta > c.maxDelta {
		return c.maxDelta
	}
	return delta
}

// Eval returns f(Δ). Arguments outside [Δ⊢, Δ⊣] are clamped.
func (c *Curve) Eval(delta float64) float64 {
	delta = c.clamp(delta)
	w := c.SegmentWidth()
	t := (delta - c.minDelta) / w
	i := int(t)
	if i >= c.Segments() {
		return c.ys[c.Segments()]
	}
	frac := t - float64(i)
	return c.ys[i] + (c.ys[i+1]-c.ys[i])*frac
}

// Rate returns r(Δ) = −f′(Δ), the decrease rate of the update expenditure
// at Δ (§3.3.2). At interior knots the right-hand slope is used — the
// greedy step is about to move Δ upward, so the slope of the segment it is
// entering is the relevant one. At Δ⊣ the last segment's slope is used.
func (c *Curve) Rate(delta float64) float64 {
	delta = c.clamp(delta)
	w := c.SegmentWidth()
	i := int((delta - c.minDelta) / w)
	if i >= c.Segments() {
		i = c.Segments() - 1
	}
	return (c.ys[i] - c.ys[i+1]) / w
}

// Invert returns the smallest Δ with f(Δ) ≤ target. This is how the
// Uniform Δ baseline picks its single threshold to retain a throttle
// fraction z of updates. Targets above 1 return Δ⊢; targets below
// f(Δ⊣) return Δ⊣.
func (c *Curve) Invert(target float64) float64 {
	if target >= 1 {
		return c.minDelta
	}
	last := c.Segments()
	if target <= c.ys[last] {
		return c.maxDelta
	}
	// Find the first knot with value <= target; interpolate inside the
	// preceding segment. f is non-increasing so a linear scan over κ+1
	// knots is fine (κ is small and fixed).
	w := c.SegmentWidth()
	for i := 1; i <= last; i++ {
		if c.ys[i] <= target {
			span := c.ys[i-1] - c.ys[i]
			frac := 1.0
			if span > 0 {
				frac = (c.ys[i-1] - target) / span
			}
			return c.minDelta + w*(float64(i-1)+frac)
		}
	}
	return c.maxDelta
}

// Resample returns a curve over the same threshold range with the given
// number of equal segments, sampling c piece-wise linearly at the new
// knots. Calibration can thus run at a coarse κ (cheap) while the
// optimizer consumes the fine-grained curve matching the paper's 1 m
// increment.
func Resample(c *Curve, segments int) *Curve {
	if segments < 1 {
		segments = 1
	}
	knots := make([]float64, segments+1)
	for i := range knots {
		d := c.minDelta + (c.maxDelta-c.minDelta)*float64(i)/float64(segments)
		knots[i] = c.Eval(d)
	}
	out, err := NewCurve(c.minDelta, c.maxDelta, knots)
	if err != nil {
		panic(err) // impossible: source curve invariants carry over
	}
	return out
}

// trackSource is the subset of the trace source the calibrator needs.
type trackSource interface {
	N() int
	Positions() []geo.Point
	Velocities() []geo.Vector
	Step(dt float64)
	Reset()
}

// Calibrate measures f(Δ) by replaying a trace under κ+1 thresholds
// simultaneously and counting the updates each threshold generates,
// reproducing the experiment behind the paper's Figure 1. The source is
// Reset before and after use. ticks is the number of dt-second steps to
// replay.
func Calibrate(src trackSource, minDelta, maxDelta float64, segments, ticks int, dt float64) (*Curve, error) {
	if segments < 1 {
		return nil, fmt.Errorf("fmodel: need at least 1 segment")
	}
	if ticks < 1 {
		return nil, fmt.Errorf("fmodel: need at least 1 tick")
	}
	src.Reset()
	n := src.N()
	k := segments + 1
	reckoners := make([][]motion.DeadReckoner, k)
	counts := make([]float64, k)
	thresholds := make([]float64, k)
	for j := 0; j < k; j++ {
		thresholds[j] = minDelta + (maxDelta-minDelta)*float64(j)/float64(segments)
		reckoners[j] = make([]motion.DeadReckoner, n)
	}
	pos, vel := src.Positions(), src.Velocities()
	for j := 0; j < k; j++ {
		for i := 0; i < n; i++ {
			reckoners[j][i].Start(pos[i], vel[i], 0)
		}
		counts[j] += float64(n) // initial reports count as updates
	}
	for tick := 1; tick <= ticks; tick++ {
		src.Step(dt)
		now := float64(tick) * dt
		pos, vel = src.Positions(), src.Velocities()
		for j := 0; j < k; j++ {
			rj := reckoners[j]
			for i := 0; i < n; i++ {
				if _, send := rj[i].Observe(pos[i], vel[i], now, thresholds[j]); send {
					counts[j]++
				}
			}
		}
	}
	src.Reset()
	return NewCurve(minDelta, maxDelta, counts)
}

package fmodel

import (
	"math"
	"testing"
	"testing/quick"

	"lira/internal/roadnet"
	"lira/internal/trace"
)

func TestNewCurveValidation(t *testing.T) {
	if _, err := NewCurve(0, 100, []float64{1, 0.5}); err == nil {
		t.Error("minDelta=0 should be rejected")
	}
	if _, err := NewCurve(5, 5, []float64{1, 0.5}); err == nil {
		t.Error("empty range should be rejected")
	}
	if _, err := NewCurve(5, 100, []float64{1}); err == nil {
		t.Error("single knot should be rejected")
	}
	if _, err := NewCurve(5, 100, []float64{0, 1}); err == nil {
		t.Error("non-positive first knot should be rejected")
	}
}

func TestNewCurveNormalizesAndMonotonizes(t *testing.T) {
	c, err := NewCurve(5, 100, []float64{200, 100, 120, 50, -10})
	if err != nil {
		t.Fatal(err)
	}
	if c.Eval(5) != 1 {
		t.Errorf("f(Δ⊢) = %v, want 1", c.Eval(5))
	}
	// The 120 bump must have been clamped down to 100/200=0.5 and the
	// negative tail clamped to 0.
	if got, _ := knotValue(c, 2); got != 0.5 {
		t.Errorf("bumped knot = %v, want 0.5", got)
	}
	if got, _ := knotValue(c, 4); got != 0 {
		t.Errorf("negative knot = %v, want 0", got)
	}
}

func knotValue(c *Curve, i int) (float64, float64) {
	d, f := c.Knot(i)
	return f, d
}

func TestHyperbolicShape(t *testing.T) {
	c := Hyperbolic(5, 100, 95)
	if c.Eval(5) != 1 {
		t.Errorf("f(5) = %v, want 1", c.Eval(5))
	}
	if got := c.Eval(100); math.Abs(got-0.05) > 1e-9 {
		t.Errorf("f(100) = %v, want 0.05", got)
	}
	if got := c.Eval(10); math.Abs(got-0.5) > 0.01 {
		t.Errorf("f(10) = %v, want ~0.5", got)
	}
	// Steep early, flat late: the paper's Figure 1 shape.
	early := c.Rate(6)
	late := c.Rate(90)
	if early < 10*late {
		t.Errorf("early rate %v should dwarf late rate %v", early, late)
	}
}

func TestEvalClamping(t *testing.T) {
	c := Hyperbolic(5, 100, 19)
	if c.Eval(1) != c.Eval(5) {
		t.Error("Eval below Δ⊢ should clamp")
	}
	if c.Eval(500) != c.Eval(100) {
		t.Error("Eval above Δ⊣ should clamp")
	}
}

func TestSegmentWidthMatchesIncrement(t *testing.T) {
	c := Hyperbolic(5, 100, 95)
	if got := c.SegmentWidth(); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("SegmentWidth = %v, want 1 (the paper's c_Δ default)", got)
	}
	if c.Segments() != 95 {
		t.Errorf("Segments = %d", c.Segments())
	}
	if c.MinDelta() != 5 || c.MaxDelta() != 100 {
		t.Errorf("range = [%v, %v]", c.MinDelta(), c.MaxDelta())
	}
}

func TestRatePositiveEverywhere(t *testing.T) {
	c := Hyperbolic(5, 100, 95)
	for d := 5.0; d <= 100; d += 0.5 {
		if c.Rate(d) <= 0 {
			t.Fatalf("Rate(%v) = %v, want > 0 for strictly decreasing f", d, c.Rate(d))
		}
	}
}

func TestRateIsNegativeSlope(t *testing.T) {
	c := Hyperbolic(5, 100, 19)
	w := c.SegmentWidth()
	for i := 0; i < c.Segments(); i++ {
		dl, fl := c.Knot(i)
		_, fr := c.Knot(i + 1)
		slope := (fl - fr) / w
		mid := dl + w/2
		if math.Abs(c.Rate(mid)-slope) > 1e-12 {
			t.Fatalf("Rate at segment %d = %v, want %v", i, c.Rate(mid), slope)
		}
	}
}

func TestInvertRoundTrip(t *testing.T) {
	c := Hyperbolic(5, 100, 95)
	for _, z := range []float64{0.9, 0.75, 0.5, 0.3, 0.1} {
		d := c.Invert(z)
		if got := c.Eval(d); math.Abs(got-z) > 1e-9 {
			t.Errorf("Eval(Invert(%v)) = %v", z, got)
		}
	}
	if c.Invert(1.5) != 5 {
		t.Error("Invert above 1 should return Δ⊢")
	}
	if c.Invert(0.001) != 100 {
		t.Error("Invert below f(Δ⊣) should return Δ⊣")
	}
}

// Property: Eval is non-increasing for any curve built from any knots.
func TestEvalMonotoneProperty(t *testing.T) {
	f := func(raw []uint8, a, b uint8) bool {
		if len(raw) < 2 {
			return true
		}
		knots := make([]float64, len(raw))
		for i, v := range raw {
			knots[i] = float64(v) + 1
		}
		c, err := NewCurve(5, 100, knots)
		if err != nil {
			return false
		}
		d1 := 5 + float64(a)/255.0*95
		d2 := 5 + float64(b)/255.0*95
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		return c.Eval(d1) >= c.Eval(d2)-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCalibrateOnTrace(t *testing.T) {
	netCfg := roadnet.DefaultConfig()
	netCfg.Side = 4000
	netCfg.GridStep = 250
	net := roadnet.Generate(netCfg)
	src := trace.NewSource(net, trace.Config{N: 300, Seed: 11})
	c, err := Calibrate(src, 5, 100, 19, 120, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Eval(5) != 1 {
		t.Errorf("calibrated f(Δ⊢) = %v, want 1", c.Eval(5))
	}
	// Real road traces must show substantial reduction at Δ⊣.
	tail := c.Eval(100)
	if tail >= 0.5 {
		t.Errorf("calibrated f(Δ⊣) = %v, want well below 0.5", tail)
	}
	// Figure 1's key qualitative claim: the reduction rate is much more
	// pronounced near Δ⊢ than near Δ⊣.
	if c.Rate(7) < 2*c.Rate(95) {
		t.Errorf("calibrated curve not steep-then-flat: r(7)=%v r(95)=%v", c.Rate(7), c.Rate(95))
	}
	// The source must be reusable afterwards (Reset contract).
	if src.Tick() != 0 {
		t.Errorf("source not reset after calibration: tick %d", src.Tick())
	}
}

func TestCalibrateValidation(t *testing.T) {
	netCfg := roadnet.DefaultConfig()
	netCfg.Side = 2000
	netCfg.GridStep = 250
	net := roadnet.Generate(netCfg)
	src := trace.NewSource(net, trace.Config{N: 10, Seed: 1})
	if _, err := Calibrate(src, 5, 100, 0, 10, 1); err == nil {
		t.Error("zero segments should error")
	}
	if _, err := Calibrate(src, 5, 100, 4, 0, 1); err == nil {
		t.Error("zero ticks should error")
	}
}

func TestResample(t *testing.T) {
	c := Hyperbolic(5, 100, 19)
	fine := Resample(c, 95)
	if fine.Segments() != 95 {
		t.Fatalf("Segments = %d", fine.Segments())
	}
	// The resampled curve interpolates the original at every new knot.
	for i := 0; i <= 95; i += 5 {
		d, v := fine.Knot(i)
		if math.Abs(v-c.Eval(d)) > 1e-12 {
			t.Errorf("knot at Δ=%v: %v vs %v", d, v, c.Eval(d))
		}
	}
	if got := Resample(c, 0).Segments(); got != 1 {
		t.Errorf("degenerate resample segments = %d", got)
	}
}

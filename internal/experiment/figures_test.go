package experiment

import (
	"strings"
	"testing"

	"lira/internal/roadnet"
	"lira/internal/workload"
)

// tinyEnv and tinySweep make the figure smoke tests fast: the point here
// is plumbing, not fidelity (fidelity is cmd/lirabench's job).
func tinyEnv(t *testing.T) *Env {
	t.Helper()
	netCfg := roadnet.DefaultConfig()
	netCfg.Side = 4000
	netCfg.GridStep = 400
	netCfg.Centers = 2
	netCfg.CenterRadius = 900
	env, err := NewEnv(EnvConfig{
		Net:        netCfg,
		Nodes:      500,
		CalibNodes: 200,
		CalibTicks: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func tinySweep() Sweep {
	base := DefaultRunConfig()
	base.L = 22
	base.WarmupTicks = 40
	base.DurationTicks = 150
	base.EvalEvery = 30
	sw := QuickSweep(base)
	sw.Zs = []float64{0.75, 0.4}
	sw.Ls = []int{13, 49}
	sw.Fairness = []float64{10, 95}
	sw.FairnessZs = []float64{0.5}
	sw.Ws = []float64{500, 1500}
	sw.CostLs = []int{13, 49}
	sw.CostAlphas = []int{32}
	sw.Radii = []float64{800, 1600}
	return sw
}

func TestFigure1(t *testing.T) {
	env := tinyEnv(t)
	f := Figure1(env)
	if len(f.Rows) < 5 {
		t.Fatalf("fig1 rows = %d", len(f.Rows))
	}
	if f.Rows[0][1] != 1 {
		t.Errorf("f(Δ⊢) = %v, want 1", f.Rows[0][1])
	}
	last := f.Rows[len(f.Rows)-1]
	if last[1] >= f.Rows[0][1] {
		t.Error("f must decrease toward Δ⊣")
	}
}

func TestFigure3(t *testing.T) {
	env := tinyEnv(t)
	cfg := DefaultRunConfig()
	cfg.L = 22
	cfg.WarmupTicks = 40
	f, p, err := Figure3(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p == nil || len(p.Regions) == 0 {
		t.Fatal("no partitioning")
	}
	total := 0.0
	for _, row := range f.Rows {
		total += row[1]
	}
	if int(total) != len(p.Regions) {
		t.Errorf("histogram sums to %v, regions %d", total, len(p.Regions))
	}
	if len(f.Rows) < 2 {
		t.Error("expected a non-uniform size distribution (≥2 distinct sizes)")
	}
}

func TestFigures4and5Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep")
	}
	env := tinyEnv(t)
	sw := tinySweep()
	f4, f5, err := Figures4and5(env, sw)
	if err != nil {
		t.Fatal(err)
	}
	if len(f4.Rows) != len(sw.Zs) || len(f5.Rows) != len(sw.Zs) {
		t.Fatalf("row counts: %d/%d", len(f4.Rows), len(f5.Rows))
	}
	for _, row := range f4.Rows {
		if len(row) != len(f4.Columns) {
			t.Fatalf("ragged row: %v", row)
		}
		// Random Drop must be the worst strategy on position error.
		if !(row[1] > row[4]) {
			t.Errorf("z=%v: random drop E^P %v not above lira %v", row[0], row[1], row[4])
		}
	}
}

func TestFigure14AndTable3(t *testing.T) {
	env := tinyEnv(t)
	sw := tinySweep()
	f14, err := Figure14(env, sw)
	if err != nil {
		t.Fatal(err)
	}
	if len(f14.Rows) != len(sw.CostLs) {
		t.Fatalf("fig14 rows = %d", len(f14.Rows))
	}
	for _, row := range f14.Rows {
		for _, ms := range row[1:] {
			if ms < 0 {
				t.Errorf("negative cost %v", ms)
			}
			if ms > 5000 {
				t.Errorf("configuration cost %v ms is implausibly slow", ms)
			}
		}
	}
	t3, err := Table3(env, sw)
	if err != nil {
		t.Fatal(err)
	}
	if len(t3.Rows) != len(sw.Radii) {
		t.Fatalf("table3 rows = %d", len(t3.Rows))
	}
	// Regions per station must grow with radius.
	prev := 0.0
	for _, row := range t3.Rows {
		if row[1] < prev {
			t.Errorf("regions per station fell from %v to %v as radius grew", prev, row[1])
		}
		prev = row[1]
		if row[2] != row[1]*16 {
			t.Errorf("bytes %v != regions %v × 16", row[2], row[1])
		}
	}
}

func TestRenderOutput(t *testing.T) {
	env := tinyEnv(t)
	f := Figure1(env)
	var b strings.Builder
	f.Render(&b)
	out := b.String()
	if !strings.Contains(out, "fig1") || !strings.Contains(out, "delta_m") {
		t.Errorf("render output missing header: %q", out)
	}
	if !strings.Contains(out, "note:") {
		t.Error("render output missing notes")
	}
}

// TestAllFigureSweepsSmoke exercises every remaining figure entry point
// at minimum scale; trend assertions live in the dedicated tests and the
// benchmark suite — this guards the plumbing.
func TestAllFigureSweepsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweeps")
	}
	env := tinyEnv(t)
	sw := tinySweep()
	sw.Repeats = 1

	f6, err := Figure6or7(env, sw, workload.Inverse)
	if err != nil || f6.ID != "fig6" || len(f6.Rows) != len(sw.Zs) {
		t.Fatalf("fig6: %v", err)
	}
	f7, err := Figure6or7(env, sw, workload.Random)
	if err != nil || f7.ID != "fig7" {
		t.Fatalf("fig7: %v", err)
	}
	f8, err := Figure8(env, sw)
	if err != nil || len(f8.Rows) != len(sw.Ls) {
		t.Fatalf("fig8: %v", err)
	}
	f9, err := Figure9(env, sw)
	if err != nil || len(f9.Rows) != len(sw.Ls) {
		t.Fatalf("fig9: %v", err)
	}
	f10, err := Figure10(env, sw)
	if err != nil || len(f10.Rows) != len(sw.Fairness) {
		t.Fatalf("fig10: %v", err)
	}
	// Uniform Δ ignores Δ⇔: its columns must be constant.
	for _, row := range f10.Rows {
		if row[2] != f10.Rows[0][2] || row[4] != f10.Rows[0][4] {
			t.Errorf("uniform fairness columns vary: %v", row)
		}
	}
	f11, err := Figure11(env, sw)
	if err != nil || len(f11.Rows) != len(sw.Fairness) {
		t.Fatalf("fig11: %v", err)
	}
	f12, err := Figure12(env, sw)
	if err != nil || len(f12.Rows) != len(sw.Ls) {
		t.Fatalf("fig12: %v", err)
	}
	f13, err := Figure13(env, sw)
	if err != nil || len(f13.Rows) != len(sw.Ws) {
		t.Fatalf("fig13: %v", err)
	}
	// Figure 13's trend (E^C falls as w grows) is asserted at the scale
	// cmd/lirabench runs; at this tiny scale allow generous noise.
	first, last := f13.Rows[0], f13.Rows[len(f13.Rows)-1]
	if last[2] > first[2]*2 {
		t.Errorf("E^C should not grow materially with w: %v -> %v", first[2], last[2])
	}
	if DefaultSweep().Repeats < 1 {
		t.Error("default sweep must average relative comparisons")
	}
}

func TestRunAvgContainmentAverages(t *testing.T) {
	env := tinyEnv(t)
	cfg := tinySweep().Base
	cfg.DurationTicks = 120
	a, err := runAvgContainment(env, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runAvgContainment(env, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a < 0 || b < 0 {
		t.Errorf("negative errors: %v %v", a, b)
	}
	// repeats<1 behaves as 1
	c, err := runAvgContainment(env, cfg, 0)
	if err != nil || c != a {
		t.Errorf("repeats=0 should equal repeats=1: %v vs %v (%v)", c, a, err)
	}
}

// TestFigureShardsPropagation is the -expshards plumbing guard: every
// figure driver copies sw.Base into each job, so setting Base.Shards
// must reach every run, and — because the sharded engine is
// differentially byte-identical to the unsharded one — the rendered
// figure must not change by a single byte.
func TestFigureShardsPropagation(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep")
	}
	env := tinyEnv(t)
	render := func(shards int) string {
		sw := tinySweep()
		sw.Ws = sw.Ws[:1]
		sw.Base.Shards = shards // what cmd/lirabench -expshards sets
		f, err := Figure13(env, sw)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		var b strings.Builder
		f.Render(&b)
		return b.String()
	}
	un, sh := render(1), render(4)
	if un != sh {
		t.Fatalf("figure differs across engines:\nshards=1:\n%s\nshards=4:\n%s", un, sh)
	}
}

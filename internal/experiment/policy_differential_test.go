package experiment

import (
	"reflect"
	"testing"

	"lira/internal/shedding"
)

// stripWallClock zeroes the only non-deterministic Result field so two
// runs can be compared byte-for-byte.
func stripWallClock(r *Result) *Result {
	c := *r
	c.ConfigElapsed = 0
	return &c
}

// TestPolicyPathMatchesLegacyStrategy is the refactor's differential
// suite: for every legacy strategy, a run configured by registry policy
// name must be byte-identical (modulo wall-clock) to one configured by
// the Strategy enum — across seeds and across both evaluation engines,
// with mid-run re-adaptation exercised.
func TestPolicyPathMatchesLegacyStrategy(t *testing.T) {
	if testing.Short() {
		t.Skip("full-run differential; skipped in -short")
	}
	env := tinyEnv(t)
	base := DefaultRunConfig()
	base.L = 22
	base.WarmupTicks = 40
	base.DurationTicks = 90
	base.EvalEvery = 30
	base.ReAdaptEvery = 45
	for _, kind := range shedding.Kinds() {
		name, ok := shedding.PolicyNameForKind(kind)
		if !ok {
			t.Fatalf("kind %v has no registry policy", kind)
		}
		for _, seed := range []uint64{3, 7, 1009} {
			for _, shards := range []int{1, 4} {
				legacy := base
				legacy.Strategy = kind
				legacy.Seed = seed
				legacy.Shards = shards
				lres, err := Run(env, legacy)
				if err != nil {
					t.Fatalf("%v seed=%d shards=%d legacy: %v", kind, seed, shards, err)
				}
				byName := legacy
				byName.Policy = name
				pres, err := Run(env, byName)
				if err != nil {
					t.Fatalf("%v seed=%d shards=%d policy: %v", kind, seed, shards, err)
				}
				if !reflect.DeepEqual(stripWallClock(lres), stripWallClock(pres)) {
					t.Errorf("%v seed=%d shards=%d: policy %q diverged from legacy strategy\nlegacy: %+v\npolicy: %+v",
						kind, seed, shards, name, stripWallClock(lres), stripWallClock(pres))
				}
			}
		}
	}
}

// TestWorkloadRunDeterminism pins scenario-driven runs: same config →
// byte-identical Result, and the Result is labeled with the workload and
// policy that produced it.
func TestWorkloadRunDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full-run differential; skipped in -short")
	}
	env := tinyEnv(t)
	cfg := DefaultRunConfig()
	cfg.L = 22
	cfg.WarmupTicks = 20
	cfg.DurationTicks = 60
	cfg.EvalEvery = 20
	cfg.Policy = "hysteresis"
	cfg.Workload = "flash-crowd"
	cfg.ReAdaptEvery = 30
	a, err := Run(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripWallClock(a), stripWallClock(b)) {
		t.Error("workload-driven run is not deterministic")
	}
	if a.Workload != "flash-crowd" || a.Policy != "hysteresis" {
		t.Errorf("result labels: workload=%q policy=%q", a.Workload, a.Policy)
	}
	if a.Strategy != -1 {
		t.Errorf("post-paper policy should carry Strategy -1, got %v", a.Strategy)
	}
	if a.ReferenceUpdates == 0 || a.AdmittedUpdates == 0 {
		t.Error("scenario traffic produced no updates")
	}
}

package experiment

import (
	"reflect"
	"testing"
)

// TestMeasureGrid pins the measured comparison: full cell grid in
// deterministic order, rel-to-lira columns anchored at 1, and parallel
// execution byte-identical to serial.
func TestMeasureGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("full-run grid; skipped in -short")
	}
	env := tinyEnv(t)
	base := DefaultRunConfig()
	base.L = 22
	base.WarmupTicks = 20
	base.DurationTicks = 60
	base.EvalEvery = 20
	cfg := MeasuredConfig{
		Base:      base,
		Zs:        []float64{0.6},
		Policies:  []string{"random-drop", "single-delta", "lira", "hysteresis"},
		Workloads: []string{"", "blackout"},
		Parallel:  1,
	}
	serial, err := Measure(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantCells := len(cfg.Workloads) * len(cfg.Zs) * len(cfg.Policies)
	if len(serial.Cells) != wantCells {
		t.Fatalf("cells = %d, want %d", len(serial.Cells), wantCells)
	}
	for _, w := range cfg.Workloads {
		lira, ok := serial.Cell(w, 0.6, "lira")
		if !ok {
			t.Fatalf("missing lira cell for workload %q", w)
		}
		if lira.EC > 0 && lira.RelECLira != 1 {
			t.Errorf("lira rel_ec = %v, want 1", lira.RelECLira)
		}
		rd, ok := serial.Cell(w, 0.6, "random-drop")
		if !ok || rd.AchievedFraction <= 0 {
			t.Errorf("workload %q: random-drop cell missing or empty: %+v", w, rd)
		}
	}
	cfg.Parallel = 4
	par, err := Measure(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Error("parallel measured grid diverged from serial")
	}
}

package experiment

import (
	"bytes"
	"fmt"
	"testing"

	"lira/internal/shedding"
	"lira/internal/spans"
	"lira/internal/telemetry"
)

// TestSpanExportByteIdentical pins the tracing determinism contract at
// the level users consume it: a full simulated run with a span tracer
// attached, repeated under the same seed, must export byte-identical
// Chrome trace-event JSON — same ids, same model-time timestamps, same
// ordering — across three seeds and both engines. Any wall-clock or
// iteration-order leak into the tracer shows up here as a one-byte diff.
func TestSpanExportByteIdentical(t *testing.T) {
	env := testEnv(t)
	for _, shards := range []int{1, 4} {
		for _, seed := range []uint64{1, 2, 3} {
			t.Run(fmt.Sprintf("K%d_seed%d", shards, seed), func(t *testing.T) {
				export := func() []byte {
					cfg := smallRun(shedding.Lira, 0.5)
					cfg.DurationTicks = 150
					cfg.Shards = shards
					cfg.Seed = seed
					hub := telemetry.NewHub(0)
					tracer := spans.New(spans.Config{Seed: seed})
					hub.SetSpans(tracer)
					cfg.Telemetry = hub
					if _, err := Run(env, cfg); err != nil {
						t.Fatal(err)
					}
					var buf bytes.Buffer
					if err := tracer.WriteJSON(&buf); err != nil {
						t.Fatal(err)
					}
					if tracer.Len() == 0 {
						t.Fatal("run produced no spans")
					}
					return buf.Bytes()
				}
				a, b := export(), export()
				if !bytes.Equal(a, b) {
					t.Fatalf("span exports differ between identical runs (%d vs %d bytes)", len(a), len(b))
				}
			})
		}
	}
}

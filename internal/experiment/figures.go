package experiment

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"

	"lira/internal/basestation"
	"lira/internal/controlplane"
	"lira/internal/fmodel"
	"lira/internal/partition"
	"lira/internal/shedding"
	"lira/internal/statgrid"
	"lira/internal/telemetry"
	"lira/internal/workload"
)

// Figure is one reproduced table or figure: labeled columns and numeric
// rows, plus free-form notes comparing against the paper.
type Figure struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]float64
	Notes   []string
}

// Render writes the figure as an aligned text table.
func (f *Figure) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Title)
	cells := make([]string, len(f.Columns))
	widths := make([]int, len(f.Columns))
	for i, c := range f.Columns {
		widths[i] = len(c)
	}
	rendered := make([][]string, len(f.Rows))
	for ri, row := range f.Rows {
		rendered[ri] = make([]string, len(row))
		for ci, v := range row {
			s := formatCell(v)
			rendered[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	for i, c := range f.Columns {
		cells[i] = pad(c, widths[i])
	}
	fmt.Fprintln(w, strings.Join(cells, "  "))
	for _, row := range rendered {
		for i, s := range row {
			if i < len(widths) {
				row[i] = pad(s, widths[i])
			}
		}
		fmt.Fprintln(w, strings.Join(row, "  "))
	}
	for _, n := range f.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func formatCell(v float64) string {
	switch {
	case v == float64(int64(v)) && v < 1e7 && v > -1e7:
		return fmt.Sprintf("%d", int64(v))
	case v >= 100 || v <= -100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Sweep bundles the swept parameter values so callers can trade fidelity
// for runtime (benchmarks use short sweeps; cmd/lirabench the full ones).
type Sweep struct {
	// Base is the run configuration every point starts from.
	Base RunConfig
	// Zs is the throttle-fraction sweep (Figures 4–7).
	Zs []float64
	// Ls is the shedding-region-count sweep (Figures 8, 9, 12).
	Ls []int
	// Fairness is the Δ⇔ sweep in meters (Figures 10, 11).
	Fairness []float64
	// FairnessZs is the z set of Figure 11.
	FairnessZs []float64
	// MOverNs is the query-to-node ratio set of Figure 12.
	MOverNs []float64
	// Ws is the query side-length sweep of Figure 13.
	Ws []float64
	// CostLs and CostAlphas drive Figure 14.
	CostLs     []int
	CostAlphas []int
	// Radii is the base-station coverage radius sweep of Table 3, in
	// meters.
	Radii []float64
	// Repeats averages the noise-sensitive relative comparisons
	// (Figures 8 and 12) over this many differently-seeded runs per
	// point. Zero means one run.
	Repeats int
	// Parallel bounds the number of worker goroutines the figure sweeps
	// use to execute independent runs concurrently (each worker on a
	// private Env fork). Zero or negative selects GOMAXPROCS; 1 forces
	// serial execution. Results are byte-identical at any setting.
	Parallel int
}

// DefaultSweep mirrors the paper's parameter ranges.
func DefaultSweep() Sweep {
	return Sweep{
		Base:       DefaultRunConfig(),
		Zs:         []float64{0.9, 0.75, 0.6, 0.5, 0.4, 0.3, 0.25},
		Ls:         []int{13, 49, 100, 250, 520},
		Fairness:   []float64{5, 10, 25, 50, 95},
		FairnessZs: []float64{0.3, 0.5, 0.75, 0.9},
		MOverNs:    []float64{0.01, 0.1},
		Ws:         []float64{250, 500, 1000, 2000, 4000},
		CostLs:     []int{13, 49, 100, 250, 520, 1000},
		CostAlphas: []int{64, 128, 256},
		Radii:      []float64{1000, 2000, 3000, 4000, 5000},
		Repeats:    3,
	}
}

// runAvgContainment averages the mean containment error over
// max(1, repeats) differently-seeded runs of cfg.
func runAvgContainment(env *Env, cfg RunConfig, repeats int) (float64, error) {
	avgs, err := runGridContainment(env, 1, repeatSeeds(cfg, repeats), repeats)
	if err != nil {
		return 0, err
	}
	return avgs[0], nil
}

// QuickSweep is a trimmed sweep for tests and benchmarks.
func QuickSweep(base RunConfig) Sweep {
	return Sweep{
		Base:       base,
		Zs:         []float64{0.75, 0.5, 0.3},
		Ls:         []int{13, 49, 100},
		Fairness:   []float64{10, 50, 95},
		FairnessZs: []float64{0.5, 0.75},
		MOverNs:    []float64{0.01, 0.1},
		Ws:         []float64{500, 1000, 2000},
		CostLs:     []int{13, 49, 250},
		CostAlphas: []int{64, 128},
		Radii:      []float64{1000, 2000, 4000},
	}
}

// Figure1 reproduces the update-reduction curve f(Δ): the measured number
// of position updates relative to Δ⊢, as Δ grows toward Δ⊣.
func Figure1(env *Env) *Figure {
	f := &Figure{
		ID:      "fig1",
		Title:   "Reduction in location updates vs inaccuracy threshold",
		Columns: []string{"delta_m", "f(delta)"},
		Notes: []string{
			"paper: steep decrease near Δ⊢=5m flattening toward Δ⊣=100m",
		},
	}
	c := env.Curve
	for i := 0; i <= c.Segments(); i += maxInt(1, c.Segments()/19) {
		d, v := c.Knot(i)
		f.Rows = append(f.Rows, []float64{d, v})
	}
	return f
}

// Figure3 reproduces the (α,l)-partitioning illustration as summary
// statistics: the distribution of shedding-region sizes produced by
// GRIDREDUCE versus the uniform l-partitioning.
func Figure3(env *Env, cfg RunConfig) (*Figure, *partition.Partitioning, error) {
	cfg.fillDefaults()
	grid, err := warmedGrid(env, cfg, cfg.Alpha)
	if err != nil {
		return nil, nil, err
	}
	p, err := controlplane.LiraPolicy{}.Partition(grid, cfg.Z,
		controlplane.Env{L: cfg.L, Curve: env.Curve})
	if err != nil {
		return nil, nil, err
	}
	// Histogram of region side lengths as powers of the cell size.
	sizes := map[int]int{}
	for _, r := range p.Regions {
		span := int(r.Area.Width() / (env.Space.Width() / float64(grid.Alpha())))
		sizes[span]++
	}
	f := &Figure{
		ID:      "fig3",
		Title:   "(α,l)-partitioning: region side (in grid cells) histogram",
		Columns: []string{"side_cells", "regions"},
		Notes: []string{
			"non-uniform sizes confirm region-aware drill-down (uniform l-partitioning has a single size)",
			fmt.Sprintf("l=%d regions over α=%d grid", len(p.Regions), grid.Alpha()),
		},
	}
	for span := 1; span <= grid.Alpha(); span *= 2 {
		if n, ok := sizes[span]; ok {
			f.Rows = append(f.Rows, []float64{float64(span), float64(n)})
		}
	}
	return f, p, nil
}

// strategyLabels order the per-strategy columns of Figures 4–7. The
// order is shedding.Kinds() — itself a view of the canonical policy
// registry — so the figures, the enum, and the registry share one
// comparison order instead of three hand-maintained copies.
var strategyLabels = shedding.Kinds()

// Figures4and5 reproduces the throttle-fraction sweep under the
// Proportional query distribution: mean position error (Figure 4) and mean
// containment error (Figure 5) for all four strategies, absolute and
// relative to LIRA.
func Figures4and5(env *Env, sw Sweep) (*Figure, *Figure, error) {
	fig4 := &Figure{
		ID:    "fig4",
		Title: "Mean position error vs throttle fraction (proportional queries)",
		Columns: []string{"z",
			"EP_rdrop_m", "EP_unif_m", "EP_lgrid_m", "EP_lira_m",
			"rel_rdrop", "rel_unif", "rel_lgrid"},
		Notes: []string{"paper: Random Drop ≫ Uniform Δ > Lira-Grid > LIRA across the entire z range"},
	}
	fig5 := &Figure{
		ID:    "fig5",
		Title: "Mean containment error vs throttle fraction (proportional queries)",
		Columns: []string{"z",
			"EC_rdrop", "EC_unif", "EC_lgrid", "EC_lira",
			"rel_rdrop", "rel_unif", "rel_lgrid"},
		Notes: []string{"paper: same ordering as Figure 4; relative errors → 1 as z approaches the Δ⊣ convergence point"},
	}
	jobs := make([]RunConfig, 0, len(sw.Zs)*len(strategyLabels))
	for _, z := range sw.Zs {
		for _, k := range strategyLabels {
			cfg := sw.Base
			cfg.Strategy = k
			cfg.Z = z
			jobs = append(jobs, cfg)
		}
	}
	results, err := runGrid(env, sw.Parallel, jobs)
	if err != nil {
		return nil, nil, err
	}
	for zi, z := range sw.Zs {
		var ep, ec [4]float64
		for i := range strategyLabels {
			res := results[zi*len(strategyLabels)+i]
			ep[i] = res.Metrics.MeanPosition
			ec[i] = res.Metrics.MeanContainment
		}
		fig4.Rows = append(fig4.Rows, []float64{z, ep[0], ep[1], ep[2], ep[3],
			rel(ep[0], ep[3]), rel(ep[1], ep[3]), rel(ep[2], ep[3])})
		fig5.Rows = append(fig5.Rows, []float64{z, ec[0], ec[1], ec[2], ec[3],
			rel(ec[0], ec[3]), rel(ec[1], ec[3]), rel(ec[2], ec[3])})
	}
	return fig4, fig5, nil
}

// Figure6or7 reproduces the containment-error sweep for the Inverse
// (Figure 6) or Random (Figure 7) query distribution.
func Figure6or7(env *Env, sw Sweep, dist workload.Distribution) (*Figure, error) {
	id := "fig6"
	if dist == workload.Random {
		id = "fig7"
	}
	f := &Figure{
		ID:    id,
		Title: fmt.Sprintf("Mean containment error vs throttle fraction (%v queries)", dist),
		Columns: []string{"z",
			"EC_rdrop", "EC_unif", "EC_lgrid", "EC_lira",
			"rel_rdrop", "rel_unif", "rel_lgrid"},
		Notes: []string{"paper: same ordering as Figure 5 with slightly smaller relative gaps"},
	}
	jobs := make([]RunConfig, 0, len(sw.Zs)*len(strategyLabels))
	for _, z := range sw.Zs {
		for _, k := range strategyLabels {
			cfg := sw.Base
			cfg.Strategy = k
			cfg.Z = z
			cfg.QueryDist = dist
			jobs = append(jobs, cfg)
		}
	}
	results, err := runGrid(env, sw.Parallel, jobs)
	if err != nil {
		return nil, err
	}
	for zi, z := range sw.Zs {
		var ec [4]float64
		for i := range strategyLabels {
			ec[i] = results[zi*len(strategyLabels)+i].Metrics.MeanContainment
		}
		f.Rows = append(f.Rows, []float64{z, ec[0], ec[1], ec[2], ec[3],
			rel(ec[0], ec[3]), rel(ec[1], ec[3]), rel(ec[2], ec[3])})
	}
	return f, nil
}

// Figure8 reproduces the Lira-Grid-vs-LIRA relative containment error as a
// function of the number of shedding regions, per query distribution.
func Figure8(env *Env, sw Sweep) (*Figure, error) {
	f := &Figure{
		ID:      "fig8",
		Title:   "Relative E^C of Lira-Grid w.r.t. LIRA vs number of shedding regions",
		Columns: []string{"l", "rel_proportional", "rel_inverse", "rel_random"},
		Notes:   []string{"paper: up to ~1.35, shrinking as l grows large enough for the uniform grid to catch up"},
	}
	dists := []workload.Distribution{workload.Proportional, workload.Inverse, workload.Random}
	kinds := []shedding.Kind{shedding.LiraGrid, shedding.Lira}
	var jobs []RunConfig
	for _, l := range sw.Ls {
		for _, d := range dists {
			for _, k := range kinds {
				cfg := sw.Base
				cfg.Strategy = k
				cfg.L = l
				cfg.Alpha = 0
				cfg.QueryDist = d
				jobs = append(jobs, repeatSeeds(cfg, sw.Repeats)...)
			}
		}
	}
	avgs, err := runGridContainment(env, sw.Parallel, jobs, sw.Repeats)
	if err != nil {
		return nil, err
	}
	gi := 0
	for _, l := range sw.Ls {
		row := []float64{float64(l)}
		for range dists {
			row = append(row, rel(avgs[gi], avgs[gi+1]))
			gi += 2
		}
		f.Rows = append(f.Rows, row)
	}
	return f, nil
}

// Figure9 reproduces LIRA's containment error as a function of the number
// of shedding regions, for several throttle fractions.
func Figure9(env *Env, sw Sweep) (*Figure, error) {
	zs := sw.FairnessZs
	f := &Figure{
		ID:      "fig9",
		Title:   "E^C of LIRA vs number of shedding regions",
		Columns: append([]string{"l"}, zLabels(zs)...),
		Notes:   []string{"paper: error decreases then stabilizes with l; reduction more pronounced at larger z"},
	}
	var jobs []RunConfig
	for _, l := range sw.Ls {
		for _, z := range zs {
			cfg := sw.Base
			cfg.Strategy = shedding.Lira
			cfg.L = l
			cfg.Alpha = 0
			cfg.Z = z
			jobs = append(jobs, cfg)
		}
	}
	results, err := runGrid(env, sw.Parallel, jobs)
	if err != nil {
		return nil, err
	}
	for li, l := range sw.Ls {
		row := []float64{float64(l)}
		for zi := range zs {
			row = append(row, results[li*len(zs)+zi].Metrics.MeanContainment)
		}
		f.Rows = append(f.Rows, row)
	}
	return f, nil
}

// Figure10 reproduces the fairness study at z = 0.75: standard deviation
// and coefficient of variation of containment error for LIRA vs Uniform Δ
// as the fairness threshold Δ⇔ varies.
func Figure10(env *Env, sw Sweep) (*Figure, error) {
	f := &Figure{
		ID:      "fig10",
		Title:   "Fairness in query result accuracy (z = 0.75)",
		Columns: []string{"fairness_m", "Dev_lira", "Dev_unif", "Cov_lira", "Cov_unif"},
		Notes: []string{
			"paper: D^C of LIRA decreases with Δ⇔ and stays below Uniform Δ; C^C of LIRA increases (Uniform Δ is more fair relative to its own mean)",
		},
	}
	// Uniform Δ ignores the fairness threshold: one run suffices; it rides
	// along as job 0 of the grid.
	ucfg := sw.Base
	ucfg.Strategy = shedding.UniformDelta
	ucfg.Z = 0.75
	jobs := []RunConfig{ucfg}
	for _, fair := range sw.Fairness {
		cfg := sw.Base
		cfg.Strategy = shedding.Lira
		cfg.Z = 0.75
		cfg.Fairness = fair
		jobs = append(jobs, cfg)
	}
	results, err := runGrid(env, sw.Parallel, jobs)
	if err != nil {
		return nil, err
	}
	ures := results[0]
	for fi, fair := range sw.Fairness {
		res := results[1+fi]
		f.Rows = append(f.Rows, []float64{fair,
			res.Metrics.StdDevContainment, ures.Metrics.StdDevContainment,
			res.Metrics.CovContainment, ures.Metrics.CovContainment})
	}
	return f, nil
}

// Figure11 reproduces LIRA's position error as a function of the fairness
// threshold, for several throttle fractions.
func Figure11(env *Env, sw Sweep) (*Figure, error) {
	zs := sw.FairnessZs
	f := &Figure{
		ID:      "fig11",
		Title:   "E^P of LIRA vs fairness threshold",
		Columns: append([]string{"fairness_m"}, zLabels(zs)...),
		Notes:   []string{"paper: error marginally sensitive to Δ⇔ at extreme z, more sensitive in between"},
	}
	var jobs []RunConfig
	for _, fair := range sw.Fairness {
		for _, z := range zs {
			cfg := sw.Base
			cfg.Strategy = shedding.Lira
			cfg.Z = z
			cfg.Fairness = fair
			jobs = append(jobs, cfg)
		}
	}
	results, err := runGrid(env, sw.Parallel, jobs)
	if err != nil {
		return nil, err
	}
	for fi, fair := range sw.Fairness {
		row := []float64{fair}
		for zi := range zs {
			row = append(row, results[fi*len(zs)+zi].Metrics.MeanPosition)
		}
		f.Rows = append(f.Rows, row)
	}
	return f, nil
}

// Figure12 reproduces the Uniform-Δ-vs-LIRA relative containment error for
// different query-to-node ratios, as a function of l.
func Figure12(env *Env, sw Sweep) (*Figure, error) {
	f := &Figure{
		ID:      "fig12",
		Title:   "Relative E^C of Uniform Δ w.r.t. LIRA vs l, per m/n",
		Columns: append([]string{"l"}, monLabels(sw.MOverNs)...),
		Notes:   []string{"paper: an order of magnitude larger for m/n=0.01 than m/n=0.1; still ≈2x at m/n=0.1"},
	}
	kinds := []shedding.Kind{shedding.UniformDelta, shedding.Lira}
	var jobs []RunConfig
	for _, l := range sw.Ls {
		for _, mon := range sw.MOverNs {
			for _, k := range kinds {
				cfg := sw.Base
				cfg.Strategy = k
				cfg.L = l
				cfg.Alpha = 0
				cfg.MOverN = mon
				cfg.QueryCount = 0
				jobs = append(jobs, repeatSeeds(cfg, sw.Repeats)...)
			}
		}
	}
	avgs, err := runGridContainment(env, sw.Parallel, jobs, sw.Repeats)
	if err != nil {
		return nil, err
	}
	gi := 0
	for _, l := range sw.Ls {
		row := []float64{float64(l)}
		for range sw.MOverNs {
			row = append(row, rel(avgs[gi], avgs[gi+1]))
			gi += 2
		}
		f.Rows = append(f.Rows, row)
	}
	return f, nil
}

// Figure13 reproduces the query side-length sweep: position and
// containment error of LIRA as w grows.
func Figure13(env *Env, sw Sweep) (*Figure, error) {
	f := &Figure{
		ID:      "fig13",
		Title:   "Impact of query side length on E^P and E^C (z = 0.5)",
		Columns: []string{"w_m", "EP_m", "EC"},
		Notes:   []string{"paper: E^P increases with w while E^C decreases (set-based metric, larger result sets)"},
	}
	jobs := make([]RunConfig, 0, len(sw.Ws))
	for _, w := range sw.Ws {
		cfg := sw.Base
		cfg.Strategy = shedding.Lira
		cfg.QuerySide = w
		jobs = append(jobs, cfg)
	}
	results, err := runGrid(env, sw.Parallel, jobs)
	if err != nil {
		return nil, err
	}
	for wi, w := range sw.Ws {
		res := results[wi]
		f.Rows = append(f.Rows, []float64{w, res.Metrics.MeanPosition, res.Metrics.MeanContainment})
	}
	return f, nil
}

// Figure14 reproduces the server-side configuration cost: wall-clock time
// of GRIDREDUCE + GREEDYINCREMENT (plus the O(1) THROTLOOP step) as a
// function of l, for several statistics-grid resolutions.
func Figure14(env *Env, sw Sweep) (*Figure, error) {
	f := &Figure{
		ID:      "fig14",
		Title:   "Server-side cost of configuring LIRA (ms)",
		Columns: append([]string{"l"}, alphaLabels(sw.CostAlphas)...),
		Notes: []string{
			"paper: ~40 ms at l=250, α=128 on 2004-era hardware; growth is O(l·log l + α²)",
		},
	}
	cfg := sw.Base
	cfg.fillDefaults()
	grids := make(map[int]*statgrid.Grid)
	for _, alpha := range sw.CostAlphas {
		g, err := warmedGrid(env, cfg, alpha)
		if err != nil {
			return nil, err
		}
		grids[alpha] = g
	}
	for _, l := range sw.CostLs {
		row := []float64{float64(l)}
		for _, alpha := range sw.CostAlphas {
			elapsed, err := configCost(grids[alpha], env.Curve, l, cfg)
			if err != nil {
				return nil, err
			}
			row = append(row, float64(elapsed.Microseconds())/1000)
		}
		f.Rows = append(f.Rows, row)
	}
	return f, nil
}

// configCost times one GRIDREDUCE + GREEDYINCREMENT cycle (one stateless
// control-plane evaluation), repeating short cycles for a stable
// measurement.
func configCost(g *statgrid.Grid, curve *fmodel.Curve, l int, cfg RunConfig) (time.Duration, error) {
	const reps = 5
	env := controlplane.Env{L: l, Curve: curve, Fairness: cfg.Fairness, UseSpeed: cfg.UseSpeed}
	start := time.Now()
	for i := 0; i < reps; i++ {
		if _, err := controlplane.Evaluate(controlplane.LiraPolicy{}, g, cfg.Z, env); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / reps, nil
}

// Table3 reproduces the messaging-cost table: the mean number of shedding
// regions (and broadcast bytes) per base station as a function of the
// coverage radius, plus the density-aware placement headline.
func Table3(env *Env, sw Sweep) (*Figure, error) {
	cfg := sw.Base
	cfg.fillDefaults()
	grid, err := warmedGrid(env, cfg, cfg.Alpha)
	if err != nil {
		return nil, err
	}
	plan, err := controlplane.Evaluate(controlplane.LiraPolicy{}, grid, cfg.Z,
		controlplane.Env{L: cfg.L, Curve: env.Curve, Fairness: cfg.Fairness, UseSpeed: cfg.UseSpeed})
	if err != nil {
		return nil, err
	}
	p, res := plan.Partitioning, plan.Result
	f := &Figure{
		ID:      "table3",
		Title:   "Number of shedding regions per base station",
		Columns: []string{"radius_m", "regions_per_station", "broadcast_bytes"},
		Notes: []string{
			"paper: 3.1 regions at 1 km up to 78.5 at 5 km; density-dependent placement ≈41 regions, 656 bytes",
		},
	}
	for _, radius := range sw.Radii {
		stations, err := basestation.PlaceUniform(env.Space, radius)
		if err != nil {
			return nil, err
		}
		d, err := basestation.NewDeployment(stations, p, res.Deltas)
		if err != nil {
			return nil, err
		}
		f.Rows = append(f.Rows, []float64{radius, d.MeanRegionsPerStation(), d.MeanBroadcastBytes()})
	}
	// Density-aware placement headline.
	env.Src.Reset()
	for t := 0; t < cfg.WarmupTicks; t++ {
		env.Src.Step(env.Cfg.Dt)
	}
	stations, err := basestation.PlaceDensityAware(env.Space, env.Src.Positions(),
		env.Cfg.Nodes/25+1, env.Space.Width()/40, env.Space.Width())
	if err != nil {
		return nil, err
	}
	d, err := basestation.NewDeployment(stations, p, res.Deltas)
	if err != nil {
		return nil, err
	}
	f.Notes = append(f.Notes, fmt.Sprintf(
		"density-aware placement: %d stations, %.1f regions/station, %.0f broadcast bytes/station",
		len(stations), d.MeanRegionsPerStation(), d.MeanBroadcastBytes()))
	return f, nil
}

// warmedGrid builds a statistics grid of the given alpha from a warmup
// replay of the env's trace, with the run's query census.
func warmedGrid(env *Env, cfg RunConfig, alpha int) (*statgrid.Grid, error) {
	if alpha <= 0 {
		alpha = partition.AlphaFor(cfg.L, 10)
	}
	g := statgrid.New(env.Space, alpha)
	src := env.Src
	src.Reset()
	n := env.Cfg.Nodes
	speeds := make([]float64, n)
	for tick := 0; tick < cfg.WarmupTicks; tick++ {
		src.Step(env.Cfg.Dt)
		if tick%cfg.StatSampleEvery == 0 {
			vel := src.Velocities()
			for i := range speeds {
				speeds[i] = vel[i].Len()
			}
			g.Observe(src.Positions(), speeds)
		}
	}
	count := cfg.QueryCount
	if count <= 0 {
		count = int(cfg.MOverN * float64(n))
		if count < 1 {
			count = 1
		}
	}
	queries, err := workload.GenerateQueries(env.Space, src.Positions(), workload.QueryConfig{
		Count:        count,
		SideLength:   cfg.QuerySide,
		Distribution: cfg.QueryDist,
		Seed:         cfg.Seed ^ 0x5eed,
	})
	if err != nil {
		return nil, err
	}
	g.SetQueries(queries)
	return g, nil
}

func rel(x, base float64) float64 {
	if base == 0 {
		if x == 0 {
			return 1
		}
		return float64(int64(1) << 40) // sentinel for "x / 0"
	}
	return x / base
}

func zLabels(zs []float64) []string {
	out := make([]string, len(zs))
	for i, z := range zs {
		out[i] = fmt.Sprintf("z=%.2f", z)
	}
	return out
}

func monLabels(mons []float64) []string {
	out := make([]string, len(mons))
	for i, m := range mons {
		out[i] = fmt.Sprintf("m/n=%.2f", m)
	}
	return out
}

func alphaLabels(alphas []int) []string {
	out := make([]string, len(alphas))
	for i, a := range alphas {
		out[i] = fmt.Sprintf("alpha=%d", a)
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// WarmedGrid exposes the harness's statistics-grid construction for
// analysis tools: a grid of the given alpha (0 → the paper's rule from
// cfg.L) built from a warmup replay with the run's query census.
func WarmedGrid(env *Env, cfg RunConfig, alpha int) (*statgrid.Grid, error) {
	cfg.fillDefaults()
	return warmedGrid(env, cfg, alpha)
}

// SeriesFigure renders telemetry period series as a figure: one tick
// column followed by one column per named series, rows joined on tick
// (series sampled on the same cadence align exactly; a series missing a
// tick leaves NaN in its cell). Unknown names are skipped.
func SeriesFigure(id, title string, hub *telemetry.Hub, names []string) *Figure {
	f := &Figure{ID: id, Title: title, Columns: []string{"tick"}}
	if hub == nil {
		return f
	}
	snap := hub.Registry.Snapshot()
	var ticks []float64
	seen := map[float64]bool{}
	cols := make([]map[float64]float64, 0, len(names))
	for _, name := range names {
		pts, ok := snap.Series[name]
		if !ok {
			continue
		}
		f.Columns = append(f.Columns, name)
		byTick := make(map[float64]float64, len(pts))
		for _, p := range pts {
			byTick[p.Tick] = p.Value
			if !seen[p.Tick] {
				seen[p.Tick] = true
				ticks = append(ticks, p.Tick)
			}
		}
		cols = append(cols, byTick)
	}
	sort.Float64s(ticks)
	for _, t := range ticks {
		row := make([]float64, 1+len(cols))
		row[0] = t
		for ci, byTick := range cols {
			if v, ok := byTick[t]; ok {
				row[1+ci] = v
			} else {
				row[1+ci] = math.NaN()
			}
		}
		f.Rows = append(f.Rows, row)
	}
	return f
}

// Package experiment is the end-to-end harness behind every figure and
// table of the paper's evaluation (§4).
//
// A run simulates the full three-layer system twice over the same
// trajectories: a *reference* system in which every node dead-reckons at
// the ideal threshold Δ⊢ (the paper's definition of correct results R*(q)
// and correct positions p*(o)), and a *candidate* system operating under
// one of the four shedding strategies. Registered range CQs are evaluated
// periodically against both systems and the §4.1 accuracy metrics are
// accumulated from the differences.
package experiment

import (
	"fmt"
	"time"

	"lira/internal/basestation"
	"lira/internal/controlplane"
	"lira/internal/cqserver"
	"lira/internal/engine"
	"lira/internal/fmodel"
	"lira/internal/geo"
	"lira/internal/metrics"
	"lira/internal/mobilenode"
	"lira/internal/motion"
	"lira/internal/rng"
	"lira/internal/roadnet"
	"lira/internal/shedding"
	"lira/internal/telemetry"
	"lira/internal/trace"
	"lira/internal/workload"
)

// EnvConfig parameterizes the shared environment: the road network, the
// mobile-node trace, and the calibrated update reduction function.
type EnvConfig struct {
	// Net configures the synthetic road network.
	Net roadnet.Config
	// Nodes is the number of mobile nodes n.
	Nodes int
	// TraceSeed drives car placement and routing.
	TraceSeed uint64
	// MinDelta and MaxDelta are Δ⊢ and Δ⊣ in meters.
	MinDelta, MaxDelta float64
	// CalibSegments is the κ used while measuring f(Δ); CalibTicks and
	// CalibNodes bound the calibration replay. Zero values select
	// defaults.
	CalibSegments, CalibTicks, CalibNodes int
	// Segments is the κ of the resampled curve handed to the optimizer;
	// the default 95 gives the paper's c_Δ = 1 m.
	Segments int
	// Dt is the tick length in seconds.
	Dt float64
}

// DefaultEnvConfig returns the paper-scale environment: ≈200 km², 10 000
// nodes, Δ ∈ [5 m, 100 m], c_Δ = 1 m.
func DefaultEnvConfig() EnvConfig {
	return EnvConfig{
		Net:           roadnet.DefaultConfig(),
		Nodes:         10000,
		TraceSeed:     2,
		MinDelta:      5,
		MaxDelta:      100,
		CalibSegments: 19,
		CalibTicks:    240,
		CalibNodes:    2000,
		Segments:      95,
		Dt:            1,
	}
}

func (c *EnvConfig) fillDefaults() {
	d := DefaultEnvConfig()
	if c.Nodes <= 0 {
		c.Nodes = d.Nodes
	}
	if c.MinDelta <= 0 {
		c.MinDelta = d.MinDelta
	}
	if c.MaxDelta <= c.MinDelta {
		c.MaxDelta = d.MaxDelta
	}
	if c.CalibSegments <= 0 {
		c.CalibSegments = d.CalibSegments
	}
	if c.CalibTicks <= 0 {
		c.CalibTicks = d.CalibTicks
	}
	if c.CalibNodes <= 0 {
		c.CalibNodes = d.CalibNodes
	}
	if c.Segments <= 0 {
		c.Segments = d.Segments
	}
	if c.Dt <= 0 {
		c.Dt = d.Dt
	}
}

// Env is a shared experiment environment. Build one Env per parameter
// sweep and run many strategies against it; the expensive pieces (network
// generation, f calibration) amortize across runs.
type Env struct {
	Cfg   EnvConfig
	Net   *roadnet.Network
	Src   *trace.Source
	Curve *fmodel.Curve
	Space geo.Rect
}

// NewEnv generates the road network, the trace source, and the calibrated
// update reduction function.
func NewEnv(cfg EnvConfig) (*Env, error) {
	cfg.fillDefaults()
	net := roadnet.Generate(cfg.Net)
	src := trace.NewSource(net, trace.Config{N: cfg.Nodes, Seed: cfg.TraceSeed})

	calibNodes := cfg.CalibNodes
	if calibNodes > cfg.Nodes {
		calibNodes = cfg.Nodes
	}
	calibSrc := trace.NewSource(net, trace.Config{N: calibNodes, Seed: cfg.TraceSeed})
	coarse, err := fmodel.Calibrate(calibSrc, cfg.MinDelta, cfg.MaxDelta,
		cfg.CalibSegments, cfg.CalibTicks, cfg.Dt)
	if err != nil {
		return nil, fmt.Errorf("experiment: calibrating f(Δ): %w", err)
	}
	return &Env{
		Cfg:   cfg,
		Net:   net,
		Src:   src,
		Curve: fmodel.Resample(coarse, cfg.Segments),
		Space: net.Space,
	}, nil
}

// RunConfig parameterizes one simulation run against an Env.
type RunConfig struct {
	// Strategy selects the shedding strategy by its legacy enum. It is
	// the Kind-shaped view of Policy: when Policy is empty, the strategy
	// resolves through the canonical registry to the policy that backs
	// it. Ignored when Policy is set.
	Strategy shedding.Kind
	// Policy, when non-empty, selects any canonical-registry policy by
	// name (controlplane.RegisteredNames lists them) — including
	// post-paper policies like "hysteresis" that have no Strategy enum
	// value. One fresh instance is constructed per run, so a stateful
	// policy's damping spans the run's re-adaptations but never leaks
	// across runs.
	Policy string
	// Workload, when non-empty, replaces the Env's road-network trace
	// with the named internal/workload catalog scenario as the motion
	// source: the same three-layer simulation, reference system, and
	// measured metrics, driven by the scenario's overload trajectory.
	// Requires Dt = 1 (scenario ticks are one second). The scenario seed
	// is derived from Seed, so repeats sweep it like everything else.
	Workload string
	// WorkloadRate is the scenario's baseline aggregate report rate in
	// updates per tick; 0 selects nodes/10. Only meaningful with
	// Workload.
	WorkloadRate float64
	// Z is the throttle fraction.
	Z float64
	// L is the number of shedding regions; Alpha the statistics-grid
	// resolution (0 selects the paper's rule from L).
	L, Alpha int
	// Fairness is Δ⇔ in meters (0 selects the unconstrained case).
	Fairness float64
	// UseSpeed enables the §3.1.2 speed factor.
	UseSpeed bool
	// QueryCount is m; when 0 it is derived as MOverN × nodes.
	QueryCount int
	// MOverN is the m/n ratio of Table 2.
	MOverN float64
	// QuerySide is w in meters; QueryDist the placement distribution.
	QuerySide float64
	QueryDist workload.Distribution
	// WarmupTicks precede measurement: statistics gathering and strategy
	// configuration happen at the end of warmup.
	WarmupTicks int
	// DurationTicks is the measured interval; queries are evaluated every
	// EvalEvery ticks and statistics sampled every StatSampleEvery ticks.
	DurationTicks, EvalEvery, StatSampleEvery int
	// HandoffEvery is how often (in ticks) nodes check their base-station
	// coverage.
	HandoffEvery int
	// ReAdaptEvery re-runs the strategy configuration with refreshed
	// statistics every given number of measurement ticks and rebroadcasts
	// the assignments; 0 keeps the single warmup-time configuration.
	ReAdaptEvery int
	// ProtectQueries enables the query-protective drill-down extension
	// for the Lira strategy; 0 is the paper's exact algorithm.
	ProtectQueries float64
	// Shards selects the candidate evaluation engine via engine.New:
	// values above 1 run the spatially sharded engine with that many
	// shard cells; 0 and 1 run the unsharded server. Query results are
	// byte-identical either way, so sharding never changes a Result —
	// it exercises the same simulation through the concurrent engine.
	Shards int
	// StationRadius selects uniform station placement with that coverage
	// radius; 0 selects the density-aware placement.
	StationRadius float64
	// Seed drives run-local randomness (query placement, admission).
	Seed uint64
	// Telemetry, when non-nil, is attached to the candidate server (never
	// the Δ⊢ reference) and receives per-evaluation-period series sampled
	// at simulation ticks. The hub's clock is set to the run's tick time,
	// so journals and series reproduce under a fixed seed. Telemetry is
	// passive: the run's Result is identical with or without it.
	Telemetry *telemetry.Hub
}

// DefaultRunConfig returns the paper's Table 2 defaults.
func DefaultRunConfig() RunConfig {
	return RunConfig{
		Strategy:        shedding.Lira,
		Z:               0.5,
		L:               250,
		Alpha:           0, // → 128 via the paper's rule
		Fairness:        50,
		UseSpeed:        true,
		MOverN:          0.01,
		QuerySide:       1000,
		QueryDist:       workload.Proportional,
		WarmupTicks:     90,
		DurationTicks:   900,
		EvalEvery:       30,
		StatSampleEvery: 10,
		HandoffEvery:    10,
		Seed:            7,
	}
}

func (c *RunConfig) fillDefaults() {
	d := DefaultRunConfig()
	if c.Z == 0 {
		c.Z = d.Z
	}
	if c.L <= 0 {
		c.L = d.L
	}
	if c.MOverN <= 0 && c.QueryCount <= 0 {
		c.MOverN = d.MOverN
	}
	if c.QuerySide <= 0 {
		c.QuerySide = d.QuerySide
	}
	if c.WarmupTicks <= 0 {
		c.WarmupTicks = d.WarmupTicks
	}
	if c.DurationTicks <= 0 {
		c.DurationTicks = d.DurationTicks
	}
	if c.EvalEvery <= 0 {
		c.EvalEvery = d.EvalEvery
	}
	if c.StatSampleEvery <= 0 {
		c.StatSampleEvery = d.StatSampleEvery
	}
	if c.HandoffEvery <= 0 {
		c.HandoffEvery = d.HandoffEvery
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
}

// Result summarizes one run.
type Result struct {
	Strategy shedding.Kind
	// Policy is the registry name of the policy the run enacted (set
	// whether the run was configured by Policy or by Strategy).
	Policy string
	// Workload names the catalog scenario that drove motion, or "" for
	// the Env's road-network trace.
	Workload string
	Z        float64

	// Metrics holds the §4.1 accuracy metrics against the Δ⊢ reference.
	Metrics metrics.Summary
	// PerQueryContainment holds the per-query mean containment errors
	// (NaN for queries that never had a non-empty correct result), in
	// query-generation order. Queries regenerate deterministically from
	// the same RunConfig.
	PerQueryContainment []float64

	// ReferenceUpdates counts updates the Δ⊢ reference generated during
	// measurement; SentUpdates those the shedding nodes transmitted; and
	// AdmittedUpdates those the candidate server integrated. For the
	// source-actuated strategies Sent == Admitted; for RandomDrop the gap
	// is wasted wireless bandwidth.
	ReferenceUpdates, SentUpdates, AdmittedUpdates int64
	// AchievedFraction is Admitted/Reference — how closely the realized
	// shedding matched the throttle fraction.
	AchievedFraction float64

	// ConfigElapsed is the strategy-configuration cost (the paper's
	// "server side cost").
	ConfigElapsed time.Duration
	// BudgetMet mirrors the optimizer's feasibility flag.
	BudgetMet bool

	// Base-station layer accounting (Table 3).
	Stations                 int
	RegionsPerStation        float64
	BroadcastBytesPerStation float64
	Handoffs                 int64
}

// traffic is the motion-source slice of the simulation: the Env's
// road-network trace by default, or a workload.Traffic scenario adapter
// when RunConfig.Workload names one.
type traffic interface {
	Reset()
	Step(dt float64)
	Positions() []geo.Point
	Velocities() []geo.Vector
}

// policyFor resolves the run's shedding policy: by registry name when
// cfg.Policy is set, through the legacy Strategy enum otherwise. The
// instance is fresh — private to the run.
func policyFor(cfg RunConfig) (controlplane.Policy, error) {
	if cfg.Policy != "" {
		pol, ok := controlplane.NewPolicy(cfg.Policy)
		if !ok {
			return nil, fmt.Errorf("experiment: unknown policy %q (registry: %v)",
				cfg.Policy, controlplane.RegisteredNames())
		}
		return pol, nil
	}
	pol, ok := shedding.PolicyForKind(cfg.Strategy)
	if !ok {
		return nil, fmt.Errorf("experiment: unknown strategy %v", cfg.Strategy)
	}
	return pol, nil
}

// Run executes one simulation against env. The env's trace source is
// Reset; runs against one Env are sequential, never concurrent. To execute
// runs in parallel, give each goroutine its own Env.Fork — every other
// piece of run state (servers, stations, nodes, collectors, RNG streams)
// is already private to the run.
func Run(env *Env, cfg RunConfig) (*Result, error) {
	cfg.fillDefaults()
	n := env.Cfg.Nodes
	if cfg.QueryCount <= 0 {
		cfg.QueryCount = int(cfg.MOverN * float64(n))
		if cfg.QueryCount < 1 {
			cfg.QueryCount = 1
		}
	}
	pol, err := policyFor(cfg)
	if err != nil {
		return nil, err
	}
	runRng := rng.New(cfg.Seed)
	admitRng := runRng.Split(1)

	// Candidate engine (owns the statistics grid and adaptation); the
	// reference server only evaluates queries over its own motion table.
	// Telemetry observes the candidate only — the reference models an
	// infinitely provisioned system nobody needs to debug. The candidate
	// runs whichever engine cfg.Shards selects; the reference stays
	// unsharded (both engines evaluate byte-identically, so the cheaper
	// one serves as ground truth either way).
	mk := func(hub *telemetry.Hub, shards int) (engine.Engine, error) {
		return engine.New(cqserver.Config{
			Space:          env.Space,
			Nodes:          n,
			Alpha:          cfg.Alpha,
			L:              cfg.L,
			Curve:          env.Curve,
			Fairness:       cfg.Fairness,
			UseSpeed:       cfg.UseSpeed,
			ProtectQueries: cfg.ProtectQueries,
			Telemetry:      hub,
		}, shards)
	}
	srvCand, err := mk(cfg.Telemetry, cfg.Shards)
	if err != nil {
		return nil, err
	}
	srvRef, err := mk(nil, 1)
	if err != nil {
		return nil, err
	}

	var src traffic = env.Src
	if cfg.Workload != "" {
		if env.Cfg.Dt != 1 {
			return nil, fmt.Errorf("experiment: workload %q needs Dt = 1, env has %v",
				cfg.Workload, env.Cfg.Dt)
		}
		rate := cfg.WorkloadRate
		if rate <= 0 {
			rate = float64(n) / 10
		}
		tr, err := workload.NewTraffic(cfg.Workload, env.Space, n, rate, cfg.Seed^0x117a)
		if err != nil {
			return nil, err
		}
		src = tr
	}
	src.Reset()
	dt := env.Cfg.Dt
	minDelta := env.Cfg.MinDelta

	// Simulation time; the telemetry clock reads this variable, so every
	// journal record and series point is stamped with tick time.
	var now float64
	var serSent, serAdmitted, serRef, serContain *telemetry.Series
	if cfg.Telemetry != nil {
		cfg.Telemetry.SetClock(func() float64 { return now })
		r := cfg.Telemetry.Registry
		serSent = r.Series("sim_sent_updates", 0)
		serAdmitted = r.Series("sim_admitted_updates", 0)
		serRef = r.Series("sim_reference_updates", 0)
		serContain = r.Series("sim_containment_mean", 0)
	}

	speeds := make([]float64, n)
	snapshotSpeeds := func() {
		vel := src.Velocities()
		for i := range speeds {
			speeds[i] = vel[i].Len()
		}
	}

	// Warmup: move the cars and gather statistics.
	for tick := 0; tick < cfg.WarmupTicks; tick++ {
		src.Step(dt)
		now = float64(tick+1) * dt
		if tick%cfg.StatSampleEvery == 0 {
			snapshotSpeeds()
			srvCand.ObserveStatistics(src.Positions(), speeds)
		}
	}

	// Queries from the warmed node distribution.
	queries, err := workload.GenerateQueries(env.Space, src.Positions(), workload.QueryConfig{
		Count:        cfg.QueryCount,
		SideLength:   cfg.QuerySide,
		Distribution: cfg.QueryDist,
		Seed:         cfg.Seed ^ 0x5eed,
	})
	if err != nil {
		return nil, err
	}
	srvCand.RegisterQueries(queries)
	srvRef.RegisterQueries(queries)

	// Configure the shedding policy. The same instance serves every
	// re-adaptation below, so stateful policies damp across them.
	shedOpts := shedding.Options{
		L:        cfg.L,
		Curve:    env.Curve,
		Fairness: cfg.Fairness,
		UseSpeed: cfg.UseSpeed,
	}
	out, err := shedding.ConfigurePolicy(pol, srvCand, cfg.Z, shedOpts)
	if err != nil {
		return nil, err
	}

	// Base-station layer: place stations, compute per-station subsets,
	// compile node-side indexes.
	var stations []basestation.Station
	if cfg.StationRadius > 0 {
		stations, err = basestation.PlaceUniform(env.Space, cfg.StationRadius)
	} else {
		target := n/25 + 1
		stations, err = basestation.PlaceDensityAware(env.Space, src.Positions(), target,
			env.Space.Width()/40, env.Space.Width())
	}
	if err != nil {
		return nil, err
	}
	deploy, err := basestation.NewDeployment(stations, out.Partitioning, out.Deltas)
	if err != nil {
		return nil, err
	}
	compiled := make([]*mobilenode.Compiled, len(deploy.Assignments))
	for i, a := range deploy.Assignments {
		compiled[i] = mobilenode.Compile(a)
	}

	// Mobile nodes and reference reckoners.
	nodes := make([]*mobilenode.Node, n)
	refReck := make([]motion.DeadReckoner, n)
	now = float64(cfg.WarmupTicks) * dt
	pos, vel := src.Positions(), src.Velocities()
	res := &Result{
		Strategy:                 out.Kind,
		Policy:                   out.Policy,
		Workload:                 cfg.Workload,
		Z:                        cfg.Z,
		ConfigElapsed:            out.Elapsed,
		BudgetMet:                out.BudgetMet,
		Stations:                 len(stations),
		RegionsPerStation:        deploy.MeanRegionsPerStation(),
		BroadcastBytesPerStation: deploy.MeanBroadcastBytes(),
	}
	for i := 0; i < n; i++ {
		nodes[i] = mobilenode.NewNode(i)
		if st := basestation.StationFor(stations, pos[i]); st >= 0 {
			nodes[i].Install(st, compiled[st])
		}
		rep := nodes[i].Start(pos[i], vel[i], now)
		res.SentUpdates++
		res.ReferenceUpdates++
		srvRef.Apply(cqserver.Update{Node: i, Report: refReck[i].Start(pos[i], vel[i], now)})
		if out.AdmitProbability >= 1 || admitRng.Bool(out.AdmitProbability) {
			srvCand.Apply(cqserver.Update{Node: i, Report: rep})
			res.AdmittedUpdates++
		}
	}

	collector := metrics.NewCollector(len(queries))

	// Measured interval.
	for tick := 1; tick <= cfg.DurationTicks; tick++ {
		src.Step(dt)
		now = float64(cfg.WarmupTicks+tick) * dt
		pos, vel = src.Positions(), src.Velocities()

		// Keep the statistics fresh during measurement so periodic
		// re-adaptation (and post-run analysis) see current densities.
		if tick%cfg.StatSampleEvery == 0 {
			snapshotSpeeds()
			srvCand.ObserveStatistics(pos, speeds)
		}
		if cfg.ReAdaptEvery > 0 && tick%cfg.ReAdaptEvery == 0 {
			out, err = shedding.ConfigurePolicy(pol, srvCand, cfg.Z, shedOpts)
			if err != nil {
				return nil, err
			}
			deploy, err = basestation.NewDeployment(stations, out.Partitioning, out.Deltas)
			if err != nil {
				return nil, err
			}
			for i, a := range deploy.Assignments {
				compiled[i] = mobilenode.Compile(a)
			}
			// Stations rebroadcast: every camped node refreshes its
			// stored subset.
			for _, nd := range nodes {
				if st := nd.Station(); st >= 0 {
					nd.Install(st, compiled[st])
				}
			}
			res.ConfigElapsed += out.Elapsed
		}

		handoff := tick%cfg.HandoffEvery == 0
		for i := 0; i < n; i++ {
			// Reference system: Δ⊢ everywhere.
			if rep, send := refReck[i].Observe(pos[i], vel[i], now, minDelta); send {
				srvRef.Apply(cqserver.Update{Node: i, Report: rep})
				res.ReferenceUpdates++
			}
			// Candidate system: region-dependent Δ with hand-offs.
			nd := nodes[i]
			if handoff {
				cur := nd.Station()
				if cur < 0 || !stations[cur].Covers(pos[i]) {
					if st := basestation.StationFor(stations, pos[i]); st >= 0 {
						nd.Install(st, compiled[st])
					}
				}
			}
			if rep, send := nd.Observe(pos[i], vel[i], now, minDelta); send {
				res.SentUpdates++
				if out.AdmitProbability >= 1 || admitRng.Bool(out.AdmitProbability) {
					srvCand.Apply(cqserver.Update{Node: i, Report: rep})
					res.AdmittedUpdates++
				}
			}
		}

		if tick%cfg.EvalEvery == 0 {
			refResults := srvRef.Evaluate(now)
			candResults := srvCand.Evaluate(now)
			roundCE, roundN := 0.0, 0
			for q := range queries {
				if ce, ok := metrics.ContainmentError(candResults[q], refResults[q]); ok {
					collector.RecordContainment(q, ce)
					roundCE += ce
					roundN++
				}
				pe, ok := metrics.PositionError(candResults[q],
					func(id int) (geo.Point, bool) { return srvCand.PredictedPosition(id, now) },
					func(id int) (geo.Point, bool) { return srvRef.PredictedPosition(id, now) },
				)
				if ok {
					collector.RecordPosition(q, pe)
				}
			}
			if cfg.Telemetry != nil {
				serSent.Append(now, float64(res.SentUpdates))
				serAdmitted.Append(now, float64(res.AdmittedUpdates))
				serRef.Append(now, float64(res.ReferenceUpdates))
				if roundN > 0 {
					serContain.Append(now, roundCE/float64(roundN))
				}
			}
		}
	}

	for _, nd := range nodes {
		res.Handoffs += nd.Handoffs
	}
	res.Metrics = collector.Summary()
	res.PerQueryContainment = collector.PerQueryContainment()
	if res.ReferenceUpdates > 0 {
		res.AchievedFraction = float64(res.AdmittedUpdates) / float64(res.ReferenceUpdates)
	}
	return res, nil
}

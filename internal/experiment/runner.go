package experiment

import (
	"runtime"
	"sync"
	"sync/atomic"

	"lira/internal/trace"
)

// Fork returns an Env that shares the immutable environment pieces — the
// road network and the calibrated f(Δ) curve — but owns a private trace
// source. Trajectories are a pure function of (network, trace config), so
// the fork replays exactly the trajectories of the original; forks of one
// Env can therefore run simulations concurrently with bit-identical
// results.
func (e *Env) Fork() *Env {
	f := *e
	f.Src = trace.NewSource(e.Net, e.Src.Config())
	return &f
}

// workersFor resolves a Sweep.Parallel-style knob to a worker count for n
// independent runs: values ≤ 0 select GOMAXPROCS, and the result never
// exceeds n.
func workersFor(parallel, n int) int {
	w := parallel
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// runGrid executes every configuration against env and returns the results
// in input order. With more than one worker, runs execute concurrently on
// Env forks; each Run owns all of its mutable state (servers, nodes,
// collectors) and draws run-local randomness from its RunConfig seed, so
// results are byte-identical to the serial order regardless of scheduling.
//
// On error, the error of the lowest-indexed failing configuration is
// returned, matching what serial execution would have reported first.
func runGrid(env *Env, parallel int, cfgs []RunConfig) ([]*Result, error) {
	out := make([]*Result, len(cfgs))
	workers := workersFor(parallel, len(cfgs))
	if workers <= 1 {
		for i, cfg := range cfgs {
			res, err := Run(env, cfg)
			if err != nil {
				return nil, err
			}
			out[i] = res
		}
		return out, nil
	}
	errs := make([]error, len(cfgs))
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			fork := env.Fork()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cfgs) || failed.Load() {
					return
				}
				res, err := Run(fork, cfgs[i])
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				out[i] = res
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// runGridContainment is runGrid specialized to the figures that only need
// the mean containment error, averaged over repeat groups: cfgs is laid
// out as groups of `repeats` consecutive differently-seeded runs and the
// returned slice holds one group average per group, in group order. The
// averaging order matches runAvgContainment exactly.
func runGridContainment(env *Env, parallel int, cfgs []RunConfig, repeats int) ([]float64, error) {
	if repeats < 1 {
		repeats = 1
	}
	results, err := runGrid(env, parallel, cfgs)
	if err != nil {
		return nil, err
	}
	out := make([]float64, 0, len(results)/repeats)
	for g := 0; g+repeats <= len(results); g += repeats {
		total := 0.0
		for r := 0; r < repeats; r++ {
			total += results[g+r].Metrics.MeanContainment
		}
		out = append(out, total/float64(repeats))
	}
	return out, nil
}

// repeatSeeds expands cfg into max(1, repeats) configurations whose seeds
// are staggered exactly as runAvgContainment staggers them.
func repeatSeeds(cfg RunConfig, repeats int) []RunConfig {
	if repeats < 1 {
		repeats = 1
	}
	cfg.fillDefaults()
	out := make([]RunConfig, repeats)
	for r := range out {
		c := cfg
		c.Seed = cfg.Seed + uint64(r)*1009
		out[r] = c
	}
	return out
}

package experiment

import (
	"math"
	"testing"

	"lira/internal/roadnet"
	"lira/internal/shedding"
	"lira/internal/workload"
)

// testEnv builds a small but heterogeneous environment shared by the
// integration tests in this file.
func testEnv(t *testing.T) *Env {
	t.Helper()
	netCfg := roadnet.DefaultConfig()
	netCfg.Side = 6000
	netCfg.GridStep = 300
	netCfg.Centers = 2
	netCfg.CenterRadius = 1200
	env, err := NewEnv(EnvConfig{
		Net:        netCfg,
		Nodes:      1500,
		CalibNodes: 400,
		CalibTicks: 120,
	})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func smallRun(strategy shedding.Kind, z float64) RunConfig {
	cfg := DefaultRunConfig()
	cfg.Strategy = strategy
	cfg.Z = z
	cfg.L = 49
	cfg.WarmupTicks = 60
	cfg.DurationTicks = 420
	cfg.EvalEvery = 30
	return cfg
}

func TestEnvDefaults(t *testing.T) {
	env := testEnv(t)
	if env.Curve == nil || env.Net == nil || env.Src == nil {
		t.Fatal("env incomplete")
	}
	if env.Curve.Segments() != 95 {
		t.Errorf("curve segments = %d, want 95 (c_Δ = 1 m)", env.Curve.Segments())
	}
	if env.Curve.Eval(env.Cfg.MinDelta) != 1 {
		t.Error("curve not normalized")
	}
}

func TestRunLiraBasics(t *testing.T) {
	env := testEnv(t)
	res, err := Run(env, smallRun(shedding.Lira, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if res.ReferenceUpdates == 0 || res.SentUpdates == 0 {
		t.Fatalf("no updates flowed: %+v", res)
	}
	if !res.BudgetMet {
		t.Error("z=0.5 should be feasible")
	}
	// Lira is source-actuated: nothing sent is wasted.
	if res.SentUpdates != res.AdmittedUpdates {
		t.Errorf("lira sent %d != admitted %d", res.SentUpdates, res.AdmittedUpdates)
	}
	// The realized update volume must be in the neighborhood of the
	// budget: far below the reference, not wildly below z.
	if res.AchievedFraction > 0.8 || res.AchievedFraction < 0.1 {
		t.Errorf("achieved fraction %v implausible for z=0.5", res.AchievedFraction)
	}
	if res.Metrics.ContainmentSamples == 0 || res.Metrics.PositionSamples == 0 {
		t.Error("no metric samples collected")
	}
	if res.Stations == 0 || res.RegionsPerStation <= 0 {
		t.Errorf("base-station accounting missing: %+v", res)
	}
	if res.RegionsPerStation > float64(49) {
		t.Errorf("regions per station %v exceeds total regions", res.RegionsPerStation)
	}
}

func TestRunRandomDropWastesBandwidth(t *testing.T) {
	env := testEnv(t)
	res, err := Run(env, smallRun(shedding.RandomDrop, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	// Nodes report at Δ⊢, the server admits about half.
	if res.SentUpdates <= res.AdmittedUpdates {
		t.Errorf("random drop should discard sent updates: sent=%d admitted=%d",
			res.SentUpdates, res.AdmittedUpdates)
	}
	ratio := float64(res.AdmittedUpdates) / float64(res.SentUpdates)
	if math.Abs(ratio-0.5) > 0.05 {
		t.Errorf("admission ratio %v, want ≈0.5", ratio)
	}
}

// TestStrategyOrdering is the headline reproduction: at the default
// throttle fraction, error grows in the order
// Lira ≤ Lira-Grid ≤ Uniform Δ ≤ Random Drop (Figures 4–5).
func TestStrategyOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run")
	}
	env := testEnv(t)
	errs := map[shedding.Kind]float64{}
	pos := map[shedding.Kind]float64{}
	for _, k := range shedding.Kinds() {
		res, err := Run(env, smallRun(k, 0.5))
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		errs[k] = res.Metrics.MeanContainment
		pos[k] = res.Metrics.MeanPosition
		t.Logf("%-14v E^C=%.4f E^P=%.2fm achieved=%.3f", k,
			res.Metrics.MeanContainment, res.Metrics.MeanPosition, res.AchievedFraction)
	}
	if !(errs[shedding.Lira] <= errs[shedding.UniformDelta]) {
		t.Errorf("Lira E^C %v should not exceed Uniform Δ %v",
			errs[shedding.Lira], errs[shedding.UniformDelta])
	}
	if !(errs[shedding.UniformDelta] < errs[shedding.RandomDrop]) {
		t.Errorf("Uniform Δ E^C %v should be below Random Drop %v",
			errs[shedding.UniformDelta], errs[shedding.RandomDrop])
	}
	if !(errs[shedding.LiraGrid] <= errs[shedding.UniformDelta]*1.05) {
		t.Errorf("Lira-Grid E^C %v should not exceed Uniform Δ %v",
			errs[shedding.LiraGrid], errs[shedding.UniformDelta])
	}
	if !(pos[shedding.Lira] < pos[shedding.RandomDrop]) {
		t.Errorf("Lira E^P %v should be below Random Drop %v",
			pos[shedding.Lira], pos[shedding.RandomDrop])
	}
}

func TestErrorGrowsAsZShrinks(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run")
	}
	env := testEnv(t)
	prev := -1.0
	for _, z := range []float64{0.75, 0.5, 0.3} {
		res, err := Run(env, smallRun(shedding.Lira, z))
		if err != nil {
			t.Fatal(err)
		}
		if res.Metrics.MeanPosition < prev*0.8 {
			t.Errorf("z=%v: E^P %v fell well below the error at the larger z (%v)",
				z, res.Metrics.MeanPosition, prev)
		}
		prev = res.Metrics.MeanPosition
	}
}

func TestAchievedFractionTracksZ(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run")
	}
	env := testEnv(t)
	for _, z := range []float64{0.75, 0.5} {
		res, err := Run(env, smallRun(shedding.Lira, z))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.AchievedFraction-z) > 0.3 {
			t.Errorf("z=%v: achieved fraction %v too far from budget", z, res.AchievedFraction)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	env := testEnv(t)
	cfg := smallRun(shedding.Lira, 0.5)
	cfg.DurationTicks = 200
	a, err := Run(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Metrics.MeanContainment != b.Metrics.MeanContainment ||
		a.SentUpdates != b.SentUpdates ||
		a.ReferenceUpdates != b.ReferenceUpdates {
		t.Errorf("identical runs diverged: %+v vs %+v", a, b)
	}
}

func TestRunWithUniformStations(t *testing.T) {
	env := testEnv(t)
	cfg := smallRun(shedding.Lira, 0.5)
	cfg.DurationTicks = 200
	cfg.StationRadius = 1500
	res, err := Run(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stations == 0 {
		t.Error("uniform placement produced no stations")
	}
	if res.BroadcastBytesPerStation != res.RegionsPerStation*16 {
		t.Errorf("broadcast bytes %v inconsistent with regions %v",
			res.BroadcastBytesPerStation, res.RegionsPerStation)
	}
}

func TestRunInverseAndRandomDistributions(t *testing.T) {
	env := testEnv(t)
	for _, d := range []workload.Distribution{workload.Inverse, workload.Random} {
		cfg := smallRun(shedding.Lira, 0.5)
		cfg.DurationTicks = 200
		cfg.QueryDist = d
		res, err := Run(env, cfg)
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if res.Metrics.ContainmentSamples == 0 {
			t.Errorf("%v: no samples", d)
		}
	}
}

func TestHandoffsHappen(t *testing.T) {
	env := testEnv(t)
	cfg := smallRun(shedding.Lira, 0.5)
	cfg.StationRadius = 800 // many small cells force hand-offs
	res, err := Run(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Handoffs == 0 {
		t.Error("expected hand-offs with small cells and an 7-minute run")
	}
}

// TestDistributedCQMimicry covers the paper's §5 observation: setting the
// maximum inaccuracy bound Δ⊣ to a very large value makes LIRA mimic
// distributed CQ systems, which only receive updates that can affect a
// query result — query-free areas are essentially silent.
func TestDistributedCQMimicry(t *testing.T) {
	netCfg := roadnet.DefaultConfig()
	netCfg.Side = 6000
	netCfg.GridStep = 300
	env, err := NewEnv(EnvConfig{
		Net:        netCfg,
		Nodes:      1500,
		CalibNodes: 400,
		CalibTicks: 120,
		MaxDelta:   2000, // Δ⊣ ≫ normal: nodes in query-free regions go quiet
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallRun(shedding.Lira, 0.25)
	cfg.Fairness = 1995 // unconstrained for the enlarged range
	res, err := Run(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The realized update volume must be far below the Δ⊣=100m regime.
	if res.AchievedFraction > 0.35 {
		t.Errorf("achieved fraction %v, want deep shedding with Δ⊣=2000", res.AchievedFraction)
	}
	if res.Metrics.ContainmentSamples == 0 {
		t.Error("queries still need answers")
	}
}

// TestSpeedFactorAblation verifies the §3.1.2 extension is wired through:
// the speed-weighted budget produces a different (and budget-respecting)
// assignment than the unweighted one on a speed-heterogeneous world.
func TestSpeedFactorAblation(t *testing.T) {
	env := testEnv(t)
	on := smallRun(shedding.Lira, 0.5)
	on.UseSpeed = true
	off := smallRun(shedding.Lira, 0.5)
	off.UseSpeed = false
	resOn, err := Run(env, on)
	if err != nil {
		t.Fatal(err)
	}
	resOff, err := Run(env, off)
	if err != nil {
		t.Fatal(err)
	}
	// Both must meet the budget; the achieved fractions should be close
	// to z either way (the speed factor refines, not distorts).
	for _, r := range []*Result{resOn, resOff} {
		if !r.BudgetMet {
			t.Errorf("budget not met: %+v", r)
		}
		if r.AchievedFraction < 0.2 || r.AchievedFraction > 0.8 {
			t.Errorf("achieved fraction %v far from z=0.5", r.AchievedFraction)
		}
	}
}

package experiment

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"lira/internal/workload"
)

// goldenSweep is a fixed micro-sweep for the figure-regression golden: it
// must never track tinySweep or QuickSweep — the golden pins the rendered
// bytes of every paper figure across refactors of the harness, so its
// parameters are frozen here.
func goldenSweep() Sweep {
	base := DefaultRunConfig()
	base.L = 22
	base.WarmupTicks = 40
	base.DurationTicks = 120
	base.EvalEvery = 30
	return Sweep{
		Base:       base,
		Zs:         []float64{0.75, 0.4},
		Ls:         []int{13, 49},
		Fairness:   []float64{10, 95},
		FairnessZs: []float64{0.5},
		MOverNs:    []float64{0.01, 0.1},
		Ws:         []float64{500, 1500},
		Radii:      []float64{800, 1600},
		Repeats:    2,
	}
}

// renderGoldenFigures produces the rendered bytes of every deterministic
// paper figure (Figure 14 is excluded: its rows are wall-clock
// measurements; its structure is covered by TestFigure14Structure).
func renderGoldenFigures(t *testing.T, env *Env, sw Sweep) []byte {
	t.Helper()
	var buf bytes.Buffer
	Figure1(env).Render(&buf)
	f3, _, err := Figure3(env, sw.Base)
	if err != nil {
		t.Fatal(err)
	}
	f3.Render(&buf)
	f4, f5, err := Figures4and5(env, sw)
	if err != nil {
		t.Fatal(err)
	}
	f4.Render(&buf)
	f5.Render(&buf)
	for _, dist := range []workload.Distribution{workload.Inverse, workload.Random} {
		f, err := Figure6or7(env, sw, dist)
		if err != nil {
			t.Fatal(err)
		}
		f.Render(&buf)
	}
	for _, gen := range []func(*Env, Sweep) (*Figure, error){
		Figure8, Figure9, Figure10, Figure11, Figure12, Figure13, Table3,
	} {
		f, err := gen(env, sw)
		if err != nil {
			t.Fatal(err)
		}
		f.Render(&buf)
	}
	return buf.Bytes()
}

// TestFiguresGolden pins the rendered output of Figures 1–13 and Table 3
// byte-for-byte against testdata/figures_golden.txt. The golden was
// generated before the harness moved onto the controlplane.Policy axis,
// so a diff here means a refactor changed what the paper figures report.
// Regenerate deliberately with UPDATE_FIGURES_GOLDEN=1.
func TestFiguresGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure sweep; skipped with -short")
	}
	env := tinyEnv(t)
	got := renderGoldenFigures(t, env, goldenSweep())
	path := filepath.Join("testdata", "figures_golden.txt")
	if os.Getenv("UPDATE_FIGURES_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with UPDATE_FIGURES_GOLDEN=1 to generate): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("figure output diverged from golden (%d vs %d bytes).\n"+
			"If the change is intentional, regenerate with UPDATE_FIGURES_GOLDEN=1.\n--- got ---\n%s",
			len(got), len(want), got)
	}
}

// TestFigure14Structure covers the one figure the golden excludes: the
// configuration-cost table's shape is deterministic even though its cells
// are wall-clock milliseconds.
func TestFigure14Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep; skipped with -short")
	}
	env := tinyEnv(t)
	sw := goldenSweep()
	sw.CostLs = []int{13, 49}
	sw.CostAlphas = []int{32}
	f, err := Figure14(env, sw)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rows) != len(sw.CostLs) {
		t.Fatalf("fig14 rows = %d, want %d", len(f.Rows), len(sw.CostLs))
	}
	for i, l := range sw.CostLs {
		if f.Rows[i][0] != float64(l) {
			t.Errorf("row %d: l = %v, want %d", i, f.Rows[i][0], l)
		}
	}
}

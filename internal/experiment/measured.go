package experiment

import (
	"fmt"

	"lira/internal/controlplane"
)

// MeasuredConfig parameterizes a MeasuredComparison: the cross product
// of workloads × throttle fractions × policies, each cell one full
// reference-vs-candidate simulation.
type MeasuredConfig struct {
	// Base is the per-run template; Policy, Workload, and Z are
	// overridden per cell (everything else — duration, L, seed, query
	// shape — applies to every cell).
	Base RunConfig
	// Zs are the throttle fractions to measure at. Empty selects the
	// Base Z alone.
	Zs []float64
	// Policies are registry names; empty selects every registered policy
	// in comparison order.
	Policies []string
	// Workloads name the traffic sources: "" is the Env's road-network
	// trace, anything else a workload catalog scenario. Empty selects
	// {"" , "flash-crowd"} — the paper's trace plus one named overload.
	Workloads []string
	// Parallel is the worker count for the grid (≤0 selects GOMAXPROCS).
	Parallel int
}

// MeasuredCell is one (workload, z, policy) measurement: the §4.1
// accuracy metrics of a full simulated run, not the optimizer's modeled
// objective.
type MeasuredCell struct {
	// Workload is "" for the road-network trace, else the scenario name.
	Workload string  `json:"workload"`
	Policy   string  `json:"policy"`
	Z        float64 `json:"z"`
	// EC and EP are the measured mean containment and position errors
	// against the Δ⊢ reference.
	EC float64 `json:"ec"`
	EP float64 `json:"ep_m"`
	// RelECLira and RelEPLira are this cell's errors relative to the
	// lira policy's at the same (workload, z); 1 for lira itself, 0 when
	// lira's error is 0.
	RelECLira float64 `json:"rel_ec_lira"`
	RelEPLira float64 `json:"rel_ep_lira"`
	// AchievedFraction is admitted/reference update volume — how closely
	// the realized shedding matched z.
	AchievedFraction float64 `json:"achieved_fraction"`
	// BudgetMet mirrors the optimizer's feasibility flag.
	BudgetMet bool `json:"budget_met"`
}

// MeasuredComparison holds the full measured grid, cells ordered
// workload-major, then z, then policy — the deterministic order the
// cells were run in.
type MeasuredComparison struct {
	Workloads []string       `json:"workloads"`
	Policies  []string       `json:"policies"`
	Zs        []float64      `json:"zs"`
	Cells     []MeasuredCell `json:"cells"`
}

// Measure runs the full measured comparison: for every workload, every
// z, and every policy, one complete reference-vs-candidate simulation
// (Run), with the measured E^C/E^P recorded per cell. Cells are
// byte-deterministic per Base.Seed and independent of Parallel.
func Measure(env *Env, cfg MeasuredConfig) (*MeasuredComparison, error) {
	if len(cfg.Zs) == 0 {
		base := cfg.Base
		base.fillDefaults()
		cfg.Zs = []float64{base.Z}
	}
	if len(cfg.Policies) == 0 {
		cfg.Policies = controlplane.RegisteredNames()
	}
	for _, name := range cfg.Policies {
		if _, ok := controlplane.NewPolicy(name); !ok {
			return nil, fmt.Errorf("experiment: unknown policy %q in measured comparison", name)
		}
	}
	if len(cfg.Workloads) == 0 {
		cfg.Workloads = []string{"", "flash-crowd"}
	}
	jobs := make([]RunConfig, 0, len(cfg.Workloads)*len(cfg.Zs)*len(cfg.Policies))
	for _, w := range cfg.Workloads {
		for _, z := range cfg.Zs {
			for _, pol := range cfg.Policies {
				c := cfg.Base
				c.Workload = w
				c.Z = z
				c.Policy = pol
				jobs = append(jobs, c)
			}
		}
	}
	results, err := runGrid(env, cfg.Parallel, jobs)
	if err != nil {
		return nil, err
	}
	mc := &MeasuredComparison{
		Workloads: cfg.Workloads,
		Policies:  cfg.Policies,
		Zs:        cfg.Zs,
		Cells:     make([]MeasuredCell, len(results)),
	}
	for i, res := range results {
		mc.Cells[i] = MeasuredCell{
			Workload:         jobs[i].Workload,
			Policy:           jobs[i].Policy,
			Z:                jobs[i].Z,
			EC:               res.Metrics.MeanContainment,
			EP:               res.Metrics.MeanPosition,
			AchievedFraction: res.AchievedFraction,
			BudgetMet:        res.BudgetMet,
		}
	}
	// Relative-to-lira columns, per (workload, z) group.
	for i := range mc.Cells {
		c := &mc.Cells[i]
		if lira, ok := mc.Cell(c.Workload, c.Z, "lira"); ok {
			c.RelECLira = rel(c.EC, lira.EC)
			c.RelEPLira = rel(c.EP, lira.EP)
		}
	}
	return mc, nil
}

// Cell returns the cell at (workload, z, policy).
func (m *MeasuredComparison) Cell(workload string, z float64, policy string) (MeasuredCell, bool) {
	for _, c := range m.Cells {
		if c.Workload == workload && c.Z == z && c.Policy == policy {
			return c, true
		}
	}
	return MeasuredCell{}, false
}

// LiraBeatsBaselines reports whether lira's measured containment error
// is no worse than every region-oblivious baseline's (random-drop and
// single-delta) at every measured (workload, z) — the paper's §4
// headline, checked on measurements instead of the model.
func (m *MeasuredComparison) LiraBeatsBaselines() bool {
	for _, w := range m.Workloads {
		for _, z := range m.Zs {
			lira, ok := m.Cell(w, z, "lira")
			if !ok {
				return false
			}
			for _, base := range []string{"random-drop", "single-delta"} {
				if b, ok := m.Cell(w, z, base); ok && lira.EC > b.EC {
					return false
				}
			}
		}
	}
	return true
}

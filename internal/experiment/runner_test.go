package experiment

import (
	"strings"
	"testing"

	"lira/internal/shedding"
)

func renderAll(t *testing.T, figs ...*Figure) string {
	t.Helper()
	var b strings.Builder
	for _, f := range figs {
		f.Render(&b)
	}
	return b.String()
}

// TestForkReplaysIdenticalTrajectories is the contract the parallel runner
// rests on: a fork's private trace source replays the env's trajectories
// exactly.
func TestForkReplaysIdenticalTrajectories(t *testing.T) {
	env := tinyEnv(t)
	fork := env.Fork()
	if fork.Src == env.Src {
		t.Fatal("fork shares the trace source")
	}
	if fork.Net != env.Net || fork.Curve != env.Curve {
		t.Error("fork must share the immutable network and curve")
	}
	env.Src.Reset()
	for tick := 0; tick < 50; tick++ {
		env.Src.Step(1)
		fork.Src.Step(1)
		a, b := env.Src.Positions(), fork.Src.Positions()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("tick %d node %d: %v vs %v", tick, i, a[i], b[i])
			}
		}
	}
}

// TestRunGridParallelMatchesSerial runs the same job list serially and
// with four workers: every result must be identical, in input order.
func TestRunGridParallelMatchesSerial(t *testing.T) {
	env := tinyEnv(t)
	base := tinySweep().Base
	base.DurationTicks = 90
	var jobs []RunConfig
	for _, z := range []float64{0.75, 0.5, 0.4, 0.3} {
		cfg := base
		cfg.Z = z
		jobs = append(jobs, cfg)
	}
	serial, err := runGrid(env, 1, jobs)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := runGrid(env, 4, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(parallel) != len(jobs) {
		t.Fatalf("parallel returned %d results for %d jobs", len(parallel), len(jobs))
	}
	for i := range serial {
		a, b := serial[i], parallel[i]
		if a.Z != b.Z {
			t.Fatalf("job %d out of order: z=%v vs %v", i, a.Z, b.Z)
		}
		if a.Metrics != b.Metrics ||
			a.SentUpdates != b.SentUpdates ||
			a.AdmittedUpdates != b.AdmittedUpdates ||
			a.ReferenceUpdates != b.ReferenceUpdates ||
			a.Handoffs != b.Handoffs {
			t.Errorf("job %d diverged between serial and parallel execution:\n%+v\nvs\n%+v", i, a, b)
		}
	}
}

// TestRunGridPropagatesError places a failing configuration mid-grid and
// requires runGrid (serial and parallel) to report it.
func TestRunGridPropagatesError(t *testing.T) {
	env := tinyEnv(t)
	good := tinySweep().Base
	good.DurationTicks = 60
	bad := good
	bad.Z = -1 // rejected by shedding.Configure
	jobs := []RunConfig{good, bad, good}
	if _, err := runGrid(env, 1, jobs); err == nil {
		t.Error("serial runGrid swallowed the error")
	}
	if _, err := runGrid(env, 4, jobs); err == nil {
		t.Error("parallel runGrid swallowed the error")
	}
}

// TestParallelFiguresMatchSerial is the differential determinism test the
// tentpole is judged by: Figures4and5 (and the repeat-averaged Figure 8)
// rendered from a serial sweep and from a 4-worker sweep must be
// byte-identical.
func TestParallelFiguresMatchSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep")
	}
	env := tinyEnv(t)
	sw := tinySweep()
	sw.Repeats = 2

	sw.Parallel = 1
	f4s, f5s, err := Figures4and5(env, sw)
	if err != nil {
		t.Fatal(err)
	}
	f8s, err := Figure8(env, sw)
	if err != nil {
		t.Fatal(err)
	}
	serial := renderAll(t, f4s, f5s, f8s)

	sw.Parallel = 4
	f4p, f5p, err := Figures4and5(env, sw)
	if err != nil {
		t.Fatal(err)
	}
	f8p, err := Figure8(env, sw)
	if err != nil {
		t.Fatal(err)
	}
	parallel := renderAll(t, f4p, f5p, f8p)

	if serial != parallel {
		t.Fatalf("parallel sweep output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

// TestRepeatSeedsStagger pins the seed schedule shared by
// runAvgContainment and the parallel figure paths.
func TestRepeatSeedsStagger(t *testing.T) {
	cfg := DefaultRunConfig()
	cfg.Strategy = shedding.Lira
	out := repeatSeeds(cfg, 3)
	if len(out) != 3 {
		t.Fatalf("len = %d", len(out))
	}
	for r, c := range out {
		if want := cfg.Seed + uint64(r)*1009; c.Seed != want {
			t.Errorf("repeat %d seed = %d, want %d", r, c.Seed, want)
		}
	}
	if got := repeatSeeds(cfg, 0); len(got) != 1 || got[0].Seed != cfg.Seed {
		t.Errorf("repeats=0 should yield the base seed once: %+v", got)
	}
}

func TestWorkersFor(t *testing.T) {
	if w := workersFor(1, 100); w != 1 {
		t.Errorf("parallel=1 -> %d workers", w)
	}
	if w := workersFor(8, 3); w != 3 {
		t.Errorf("workers must not exceed job count: %d", w)
	}
	if w := workersFor(0, 100); w < 1 {
		t.Errorf("GOMAXPROCS default must be at least 1: %d", w)
	}
}

package par

import (
	"runtime"
	"sync"
	"testing"
)

func TestChunks(t *testing.T) {
	cases := []struct{ n, chunk, want int }{
		{0, 10, 0},
		{-3, 10, 0},
		{1, 10, 1},
		{10, 10, 1},
		{11, 10, 2},
		{25, 10, 3},
		{7, 0, 1}, // chunk<=0 means one shard
	}
	for _, c := range cases {
		if got := Chunks(c.n, c.chunk); got != c.want {
			t.Errorf("Chunks(%d, %d) = %d, want %d", c.n, c.chunk, got, c.want)
		}
	}
}

func TestWorkersBounds(t *testing.T) {
	if w := Workers(0); w != 1 {
		t.Errorf("Workers(0) = %d, want 1", w)
	}
	if w := Workers(1); w != 1 {
		t.Errorf("Workers(1) = %d, want 1", w)
	}
	if w := Workers(1 << 20); w > runtime.GOMAXPROCS(0) {
		t.Errorf("Workers exceeds GOMAXPROCS: %d", w)
	}
}

// TestForChunksCoversEveryIndexOnce is the core decomposition invariant:
// the union of [lo, hi) ranges is exactly [0, n), shard indexes are dense,
// and shard boundaries are the fixed s·chunk grid.
func TestForChunksCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 5, 64, 100, 1001} {
		for _, chunk := range []int{1, 7, 64, 4096} {
			var mu sync.Mutex
			seen := make([]int, n)
			shards := map[int]bool{}
			ForChunks(n, chunk, func(shard, lo, hi int) {
				if lo != shard*chunk {
					t.Errorf("n=%d chunk=%d shard %d: lo=%d, want %d", n, chunk, shard, lo, shard*chunk)
				}
				mu.Lock()
				shards[shard] = true
				for i := lo; i < hi; i++ {
					seen[i]++
				}
				mu.Unlock()
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("n=%d chunk=%d: index %d visited %d times", n, chunk, i, c)
				}
			}
			if len(shards) != Chunks(n, chunk) {
				t.Errorf("n=%d chunk=%d: %d shards ran, want %d", n, chunk, len(shards), Chunks(n, chunk))
			}
		}
	}
}

// TestForChunksDeterministicFold verifies the documented usage: per-shard
// float partials merged in shard order are bit-identical across worker
// counts.
func TestForChunksDeterministicFold(t *testing.T) {
	const n, chunk = 10000, 1024
	vals := make([]float64, n)
	r := uint64(0x9e3779b97f4a7c15)
	for i := range vals {
		r = r*6364136223846793005 + 1442695040888963407
		vals[i] = float64(r>>11) / (1 << 53)
	}
	fold := func() float64 {
		partial := make([]float64, Chunks(n, chunk))
		ForChunks(n, chunk, func(shard, lo, hi int) {
			s := 0.0
			for i := lo; i < hi; i++ {
				s += vals[i]
			}
			partial[shard] = s
		})
		total := 0.0
		for _, p := range partial {
			total += p
		}
		return total
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	runtime.GOMAXPROCS(1)
	serial := fold()
	runtime.GOMAXPROCS(8)
	parallel := fold()
	if serial != parallel {
		t.Fatalf("fold not deterministic across worker counts: %x vs %x", serial, parallel)
	}
}

// Package par provides the deterministic-parallelism helpers shared by the
// simulator's hot paths (sweep execution, query evaluation, statistics
// folds).
//
// # Determinism contract
//
// Every helper fixes the work decomposition — chunk boundaries and shard
// count — as a pure function of the input size, never of the worker count
// or GOMAXPROCS. Callers that reduce floating-point partials merge them in
// shard order. Under that discipline a computation produces bit-identical
// results at any level of parallelism, including fully serial execution:
// parallelism only changes *when* a shard runs, never *what* it computes or
// the order in which partials combine.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers returns the number of worker goroutines to use for n independent
// work items: min(GOMAXPROCS, n), at least 1.
func Workers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Chunks returns the number of fixed-size chunks ForChunks will decompose
// [0, n) into: ⌈n/chunk⌉. It depends only on n and chunk.
func Chunks(n, chunk int) int {
	if n <= 0 {
		return 0
	}
	if chunk <= 0 {
		chunk = n
	}
	return (n + chunk - 1) / chunk
}

// ForChunks partitions [0, n) into ⌈n/chunk⌉ contiguous chunks of size
// chunk (the last one ragged) and invokes fn(shard, lo, hi) once per chunk,
// concurrently when more than one worker is available. Shard s covers
// [s·chunk, min((s+1)·chunk, n)).
//
// The decomposition depends only on n and chunk, so per-shard work — and
// any shard-indexed partial a caller accumulates — is identical regardless
// of scheduling. fn must not touch state shared across shards except
// through its own shard slot.
func ForChunks(n, chunk int, fn func(shard, lo, hi int)) {
	shards := Chunks(n, chunk)
	if shards == 0 {
		return
	}
	if chunk <= 0 {
		chunk = n
	}
	if shards == 1 {
		fn(0, 0, n)
		return
	}
	workers := Workers(shards)
	if workers == 1 {
		for s := 0; s < shards; s++ {
			lo := s * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			fn(s, lo, hi)
		}
		return
	}
	forChunksParallel(n, chunk, shards, workers, fn)
}

// forChunksParallel is ForChunks' goroutine fan-out, split into its own
// function so the serial fast path allocates nothing: the worker closure
// captures (and the compiler heap-moves) its surrounding locals, and
// keeping them out of ForChunks keeps single-worker calls — the steady
// state of every K=1 deployment and GOMAXPROCS=1 gate — off the heap.
func forChunksParallel(n, chunk, shards, workers int, fn func(shard, lo, hi int)) {
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				s := int(next.Add(1)) - 1
				if s >= shards {
					return
				}
				lo := s * chunk
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				fn(s, lo, hi)
			}
		}()
	}
	wg.Wait()
}

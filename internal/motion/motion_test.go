package motion

import (
	"math"
	"testing"
	"testing/quick"

	"lira/internal/geo"
)

func TestReportPredict(t *testing.T) {
	r := Report{Pos: geo.Point{X: 10, Y: 20}, Vel: geo.Vector{X: 2, Y: -1}, Time: 5}
	got := r.Predict(8)
	want := geo.Point{X: 16, Y: 17}
	if got != want {
		t.Errorf("Predict = %v, want %v", got, want)
	}
	if r.Predict(5) != r.Pos {
		t.Error("Predict at report time should be the reported position")
	}
}

func TestDeadReckonerSuppression(t *testing.T) {
	var d DeadReckoner
	rep := d.Start(geo.Point{X: 0, Y: 0}, geo.Vector{X: 10, Y: 0}, 0)
	if rep.Pos != (geo.Point{X: 0, Y: 0}) {
		t.Fatalf("Start report = %v", rep)
	}
	// Node moves exactly as predicted: never reports.
	for tt := 1.0; tt <= 10; tt++ {
		actual := geo.Point{X: 10 * tt, Y: 0}
		if _, send := d.Observe(actual, geo.Vector{X: 10, Y: 0}, tt, 5); send {
			t.Fatalf("perfectly predicted node reported at t=%v", tt)
		}
	}
	// Node deviates beyond Δ: must report and refresh the model.
	actual := geo.Point{X: 110, Y: 20}
	rep, send := d.Observe(actual, geo.Vector{X: 0, Y: 10}, 11, 5)
	if !send {
		t.Fatal("deviating node did not report")
	}
	if rep.Pos != actual || rep.Vel != (geo.Vector{X: 0, Y: 10}) {
		t.Errorf("refreshed report = %+v", rep)
	}
	if d.Last().Time != 11 {
		t.Errorf("Last().Time = %v, want 11", d.Last().Time)
	}
}

func TestDeviationBoundary(t *testing.T) {
	var d DeadReckoner
	d.Start(geo.Point{X: 0, Y: 0}, geo.Vector{X: 0, Y: 0}, 0)
	// Deviation exactly equal to Δ is suppressed (strict > in the paper:
	// "deviates ... by more than Δ").
	if _, send := d.Observe(geo.Point{X: 5, Y: 0}, geo.Vector{}, 1, 5); send {
		t.Error("deviation == Δ should be suppressed")
	}
	if _, send := d.Observe(geo.Point{X: 5.001, Y: 0}, geo.Vector{}, 1, 5); !send {
		t.Error("deviation > Δ should trigger a report")
	}
}

func TestSmallerDeltaMoreUpdates(t *testing.T) {
	// Property: along any trajectory, a smaller threshold never produces
	// fewer updates (monotonicity that underlies f being non-increasing).
	f := func(seed int64) bool {
		walk := func(delta float64) int {
			var d DeadReckoner
			x, y := 0.0, 0.0
			vx, vy := 1.0, 0.0
			d.Start(geo.Point{X: x, Y: y}, geo.Vector{X: vx, Y: vy}, 0)
			updates := 0
			s := uint64(seed)
			next := func() float64 {
				s = s*6364136223846793005 + 1442695040888963407
				return float64(s>>40) / float64(1<<24)
			}
			for tt := 1.0; tt <= 200; tt++ {
				vx += (next() - 0.5) * 2
				vy += (next() - 0.5) * 2
				x += vx
				y += vy
				if _, send := d.Observe(geo.Point{X: x, Y: y}, geo.Vector{X: vx, Y: vy}, tt, delta); send {
					updates++
				}
			}
			return updates
		}
		return walk(2) >= walk(8) && walk(8) >= walk(32)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTable(t *testing.T) {
	tab := NewTable(3)
	if tab.Len() != 3 {
		t.Fatalf("Len = %d", tab.Len())
	}
	if tab.Known(0) {
		t.Error("fresh table should know nothing")
	}
	if _, ok := tab.Predict(0, 1); ok {
		t.Error("Predict before any report should report false")
	}
	if _, ok := tab.Report(0); ok {
		t.Error("Report before any report should report false")
	}
	rep := Report{Pos: geo.Point{X: 1, Y: 2}, Vel: geo.Vector{X: 3, Y: 4}, Time: 10}
	tab.Apply(1, rep)
	if !tab.Known(1) || tab.Known(2) {
		t.Error("Known flags wrong after Apply")
	}
	p, ok := tab.Predict(1, 12)
	if !ok {
		t.Fatal("Predict failed after Apply")
	}
	want := geo.Point{X: 7, Y: 10}
	if math.Abs(p.X-want.X) > 1e-12 || math.Abs(p.Y-want.Y) > 1e-12 {
		t.Errorf("Predict = %v, want %v", p, want)
	}
	got, ok := tab.Report(1)
	if !ok || got != rep {
		t.Errorf("Report = (%+v, %v)", got, ok)
	}
}

// Package motion implements the linear motion model (dead reckoning) that
// actuates update suppression at the mobile-node side.
//
// A mobile node reports (position, velocity) pairs. Between reports, both
// the node and the server extrapolate the position linearly. The node
// re-reports only when the extrapolated position deviates from its actual
// position by more than the inaccuracy threshold Δ — which, under LIRA, is
// the update throttler of the shedding region the node is currently in.
// The particular motion model is explicitly "not of importance" to the
// paper (§2.1); linear dead reckoning is the one the paper adopts and the
// one built here.
package motion

import "lira/internal/geo"

// Report is the motion-model parameter set a mobile node transmits to the
// server: the node's position and velocity at the report time.
type Report struct {
	Pos  geo.Point
	Vel  geo.Vector
	Time float64 // seconds since simulation start
}

// Predict returns the dead-reckoned position at time t.
func (r Report) Predict(t float64) geo.Point {
	return r.Pos.Add(r.Vel.Scale(t - r.Time))
}

// DeadReckoner tracks one node's last report and decides when a new report
// is due. The zero value is unusable; start each node with Start.
type DeadReckoner struct {
	last Report
}

// Start initializes the reckoner with the node's first report and returns
// that report (the first position of a node is always transmitted).
func (d *DeadReckoner) Start(pos geo.Point, vel geo.Vector, t float64) Report {
	d.last = Report{Pos: pos, Vel: vel, Time: t}
	return d.last
}

// Last returns the most recent report.
func (d *DeadReckoner) Last() Report { return d.last }

// Deviation returns the distance between the dead-reckoned prediction and
// the actual position at time t.
func (d *DeadReckoner) Deviation(actual geo.Point, t float64) float64 {
	return d.last.Predict(t).Dist(actual)
}

// Observe checks the node's actual state against the model with threshold
// delta. When the deviation exceeds delta it refreshes the model and
// returns the new report with send=true; otherwise send is false and the
// update is suppressed.
func (d *DeadReckoner) Observe(pos geo.Point, vel geo.Vector, t, delta float64) (rep Report, send bool) {
	if d.Deviation(pos, t) <= delta {
		return Report{}, false
	}
	d.last = Report{Pos: pos, Vel: vel, Time: t}
	return d.last, true
}

// Table is the server-side motion table: the last known report per node,
// from which query-time positions are predicted. Index is the node id.
//
// Storage is structure-of-arrays: one dense column per report field,
// indexed by node id. The prediction sweep — the hottest loop in the
// server — reads x, vx, y, vy, time as five contiguous streams instead
// of striding through 40-byte report structs, which keeps the loop
// cache-dense and trivially vectorizable. Columns exposes the raw
// slices for such loops; the per-id accessors below stay the API for
// everything that is not a bulk sweep.
type Table struct {
	px, py []float64 // report position
	vx, vy []float64 // report velocity
	rt     []float64 // report time
	known  []bool
}

// NewTable returns a table for n nodes with no reports yet.
func NewTable(n int) *Table {
	return &Table{
		px: make([]float64, n), py: make([]float64, n),
		vx: make([]float64, n), vy: make([]float64, n),
		rt: make([]float64, n), known: make([]bool, n),
	}
}

// Len returns the table capacity (number of node slots).
func (t *Table) Len() int { return len(t.known) }

// Apply installs a report for node id.
func (t *Table) Apply(id int, rep Report) {
	t.px[id], t.py[id] = rep.Pos.X, rep.Pos.Y
	t.vx[id], t.vy[id] = rep.Vel.X, rep.Vel.Y
	t.rt[id] = rep.Time
	t.known[id] = true
}

// Known reports whether node id has ever reported.
func (t *Table) Known(id int) bool { return t.known[id] }

// Predict returns the server's belief about node id's position at time
// now. The second result is false when the node has never reported.
func (t *Table) Predict(id int, now float64) (geo.Point, bool) {
	if !t.known[id] {
		return geo.Point{}, false
	}
	dt := now - t.rt[id]
	return geo.Point{X: t.px[id] + t.vx[id]*dt, Y: t.py[id] + t.vy[id]*dt}, true
}

// Report returns the stored report for node id. The second result is false
// when the node has never reported.
func (t *Table) Report(id int) (Report, bool) {
	if !t.known[id] {
		return Report{}, false
	}
	return Report{
		Pos:  geo.Point{X: t.px[id], Y: t.py[id]},
		Vel:  geo.Vector{X: t.vx[id], Y: t.vy[id]},
		Time: t.rt[id],
	}, true
}

// Columns is a read view of the table's column slices, handed to bulk
// prediction sweeps. The slices alias the table: Apply calls between a
// Columns call and its use are visible, and callers must not mutate.
type Columns struct {
	X, Y, VX, VY, Time []float64
	Known              []bool
}

// Columns exposes the table's structure-of-arrays storage.
func (t *Table) Columns() Columns {
	return Columns{X: t.px, Y: t.py, VX: t.vx, VY: t.vy, Time: t.rt, Known: t.known}
}

// Predict dead-reckons slot i at time now without a known check; the
// caller is expected to have consulted Known. The arithmetic is exactly
// Report.Predict's, so column sweeps are bit-identical to the per-id
// path.
func (c Columns) Predict(i int, now float64) geo.Point {
	dt := now - c.Time[i]
	return geo.Point{X: c.X[i] + c.VX[i]*dt, Y: c.Y[i] + c.VY[i]*dt}
}

package shedding

import (
	"math"
	"testing"

	"lira/internal/controlplane"
	"lira/internal/cqserver"
	"lira/internal/fmodel"
	"lira/internal/geo"
	"lira/internal/rng"
)

func testServer(t *testing.T) (*cqserver.Server, *fmodel.Curve) {
	t.Helper()
	curve := fmodel.Hyperbolic(5, 100, 95)
	s, err := cqserver.New(cqserver.Config{
		Space: geo.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000},
		Nodes: 200,
		L:     13,
		Curve: curve,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	pos := make([]geo.Point, 200)
	sp := make([]float64, 200)
	for i := range pos {
		pos[i] = geo.Point{X: r.Range(0, 700), Y: r.Range(0, 700)}
		sp[i] = 12
	}
	s.ObserveStatistics(pos, sp)
	s.RegisterQueries([]geo.Rect{geo.NewRect(100, 100, 400, 400)})
	return s, curve
}

func opts(curve *fmodel.Curve) Options {
	return Options{L: 13, Curve: curve, Fairness: 95, UseSpeed: true}
}

func TestConfigureValidation(t *testing.T) {
	s, curve := testServer(t)
	if _, err := Configure(Lira, s, 1.5, opts(curve)); err == nil {
		t.Error("z out of range should error")
	}
	o := opts(curve)
	o.Curve = nil
	if _, err := Configure(UniformDelta, s, 0.5, o); err == nil {
		t.Error("nil curve should error")
	}
	if _, err := Configure(Kind(42), s, 0.5, opts(curve)); err == nil {
		t.Error("unknown kind should error")
	}
}

func TestConfigureLira(t *testing.T) {
	s, curve := testServer(t)
	out, err := Configure(Lira, s, 0.5, opts(curve))
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != Lira || out.AdmitProbability != 1 {
		t.Errorf("outcome: %+v", out)
	}
	if len(out.Partitioning.Regions) != 13 || len(out.Deltas) != 13 {
		t.Errorf("regions/deltas = %d/%d", len(out.Partitioning.Regions), len(out.Deltas))
	}
	if !out.BudgetMet {
		t.Error("z=0.5 budget should be met")
	}
}

func TestConfigureLiraGrid(t *testing.T) {
	s, curve := testServer(t)
	out, err := Configure(LiraGrid, s, 0.5, opts(curve))
	if err != nil {
		t.Fatal(err)
	}
	// ⌊√13⌋² = 9 uniform regions.
	if len(out.Partitioning.Regions) != 9 {
		t.Errorf("LiraGrid regions = %d, want 9", len(out.Partitioning.Regions))
	}
	area := out.Partitioning.Regions[0].Area.Area()
	for _, r := range out.Partitioning.Regions {
		if math.Abs(r.Area.Area()-area) > 1e-6 {
			t.Error("LiraGrid regions must be equal-sized")
		}
	}
}

func TestConfigureUniformDelta(t *testing.T) {
	s, curve := testServer(t)
	out, err := Configure(UniformDelta, s, 0.5, opts(curve))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Deltas) != 1 {
		t.Fatalf("uniform deltas = %v", out.Deltas)
	}
	if got := curve.Eval(out.Deltas[0]); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("f(Δ_uniform) = %v, want 0.5", got)
	}
	if out.AdmitProbability != 1 || !out.BudgetMet {
		t.Errorf("outcome: %+v", out)
	}
}

func TestConfigureRandomDrop(t *testing.T) {
	s, curve := testServer(t)
	out, err := Configure(RandomDrop, s, 0.3, opts(curve))
	if err != nil {
		t.Fatal(err)
	}
	if out.AdmitProbability != 0.3 {
		t.Errorf("AdmitProbability = %v, want 0.3", out.AdmitProbability)
	}
	if out.Deltas[0] != 5 {
		t.Errorf("RandomDrop Δ = %v, want Δ⊢", out.Deltas[0])
	}
	if !out.BudgetMet {
		t.Error("RandomDrop always meets its budget")
	}
}

// TestKindsMatchRegistry pins the derivation of the legacy enum from the
// canonical controlplane registry: the registry rows carrying a
// LegacyKind produce exactly the paper's comparison order, every kind
// resolves to a policy whose instance is constructible, and the
// engine-enactable Policies() view is the non-AdmitProber registry tail.
// If the registry and the enum ever drift, this fails.
func TestKindsMatchRegistry(t *testing.T) {
	want := []Kind{RandomDrop, UniformDelta, LiraGrid, Lira}
	got := Kinds()
	if len(got) != len(want) {
		t.Fatalf("Kinds() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Kinds()[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	wantPolicy := map[Kind]string{
		RandomDrop: "random-drop", UniformDelta: "single-delta",
		LiraGrid: "uniform-grid", Lira: "lira",
	}
	for k, name := range wantPolicy {
		got, ok := PolicyNameForKind(k)
		if !ok || got != name {
			t.Errorf("PolicyNameForKind(%v) = %q,%v, want %q", k, got, ok, name)
		}
		pol, ok := PolicyForKind(k)
		if !ok || pol.Name() != name {
			t.Errorf("PolicyForKind(%v) constructs %v", k, pol)
		}
	}
	if _, ok := PolicyNameForKind(Kind(42)); ok {
		t.Error("unknown kind must not resolve")
	}
	// The enactable-policy view must be the registry minus AdmitProbers,
	// in registry order.
	var wantNames []string
	for _, reg := range controlplane.Registered() {
		if _, server := reg.New().(controlplane.AdmitProber); !server {
			wantNames = append(wantNames, reg.Name)
		}
	}
	pols := controlplane.Policies()
	if len(pols) != len(wantNames) {
		t.Fatalf("Policies() has %d entries, want %d", len(pols), len(wantNames))
	}
	for i, p := range pols {
		if p.Name() != wantNames[i] {
			t.Errorf("Policies()[%d] = %q, want %q", i, p.Name(), wantNames[i])
		}
	}
}

// TestConfigurePolicyMatchesConfigure pins the adapter: for every legacy
// kind, ConfigurePolicy over the registry policy produces the same
// outcome values as Configure over the enum.
func TestConfigurePolicyMatchesConfigure(t *testing.T) {
	for _, k := range Kinds() {
		s, curve := testServer(t)
		legacy, err := Configure(k, s, 0.5, opts(curve))
		if err != nil {
			t.Fatal(err)
		}
		s2, _ := testServer(t)
		pol, _ := PolicyForKind(k)
		byPol, err := ConfigurePolicy(pol, s2, 0.5, opts(curve))
		if err != nil {
			t.Fatal(err)
		}
		if byPol.Kind != k || byPol.Policy != pol.Name() || legacy.Policy != pol.Name() {
			t.Errorf("%v: kind/policy labels diverged: %+v vs %+v", k, legacy, byPol)
		}
		if len(legacy.Deltas) != len(byPol.Deltas) {
			t.Fatalf("%v: delta counts diverged", k)
		}
		for i := range legacy.Deltas {
			if legacy.Deltas[i] != byPol.Deltas[i] {
				t.Errorf("%v: Δ[%d] diverged: %v vs %v", k, i, legacy.Deltas[i], byPol.Deltas[i])
			}
		}
		if legacy.AdmitProbability != byPol.AdmitProbability || legacy.BudgetMet != byPol.BudgetMet {
			t.Errorf("%v: outcome diverged: %+v vs %+v", k, legacy, byPol)
		}
	}
}

func TestKindsAndStrings(t *testing.T) {
	ks := Kinds()
	if len(ks) != 4 {
		t.Fatalf("Kinds = %v", ks)
	}
	names := map[Kind]string{
		Lira: "lira", LiraGrid: "lira-grid",
		UniformDelta: "uniform-delta", RandomDrop: "random-drop",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind should still print")
	}
}

// Package shedding defines the update load-shedding strategies compared in
// the paper's evaluation (§4.2):
//
//   - Lira — the full system: GRIDREDUCE (α,l)-partitioning plus
//     GREEDYINCREMENT throttler setting.
//   - LiraGrid — the ablation without GRIDREDUCE: a uniform
//     l-partitioning, still with GREEDYINCREMENT.
//   - UniformDelta — one space-wide inaccuracy threshold chosen so the
//     modeled update volume meets the throttle fraction.
//   - RandomDrop — no source-side throttling at all: every node reports
//     at Δ⊢ and the server randomly admits a z fraction.
package shedding

import (
	"fmt"
	"time"

	"lira/internal/cqserver"
	"lira/internal/fmodel"
	"lira/internal/partition"
	"lira/internal/throttler"
)

// Kind identifies a strategy.
type Kind int

const (
	// Lira is the full region-aware load shedder.
	Lira Kind = iota
	// LiraGrid replaces GRIDREDUCE with a uniform l-partitioning.
	LiraGrid
	// UniformDelta uses a single system-wide inaccuracy threshold.
	UniformDelta
	// RandomDrop drops excess updates at the server, uniformly at random.
	RandomDrop
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Lira:
		return "lira"
	case LiraGrid:
		return "lira-grid"
	case UniformDelta:
		return "uniform-delta"
	case RandomDrop:
		return "random-drop"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Kinds lists every strategy in the paper's comparison order.
func Kinds() []Kind { return []Kind{RandomDrop, UniformDelta, LiraGrid, Lira} }

// Options carries the strategy parameters that do not live on the server.
type Options struct {
	// L is the region count for LiraGrid.
	L int
	// Curve is the update reduction function.
	Curve *fmodel.Curve
	// Fairness is Δ⇔ for the GREEDYINCREMENT-based strategies.
	Fairness float64
	// UseSpeed enables the §3.1.2 speed factor.
	UseSpeed bool
}

// Outcome is a configured shedding policy, ready for distribution to the
// base-station layer.
type Outcome struct {
	Kind Kind
	Z    float64
	// Partitioning and Deltas define the region-dependent inaccuracy
	// thresholds. For RandomDrop and UniformDelta the partitioning is a
	// single space-wide region.
	Partitioning *partition.Partitioning
	Deltas       []float64
	// AdmitProbability is the server-side random admission probability:
	// 1 for the source-actuated strategies, z for RandomDrop.
	AdmitProbability float64
	// BudgetMet reports whether the modeled expenditure reached the
	// budget (always true for RandomDrop, which drops exactly enough).
	BudgetMet bool
	// Elapsed is the configuration cost (partitioning plus throttler
	// setting).
	Elapsed time.Duration
}

// Configure computes the shedding policy of the given kind at throttle
// fraction z using the server's statistics grid.
func Configure(kind Kind, s *cqserver.Server, z float64, opts Options) (*Outcome, error) {
	if z < 0 || z > 1 {
		return nil, fmt.Errorf("shedding: throttle fraction %v outside [0,1]", z)
	}
	if opts.Curve == nil {
		return nil, fmt.Errorf("shedding: nil curve")
	}
	start := time.Now()
	out := &Outcome{Kind: kind, Z: z, AdmitProbability: 1}
	switch kind {
	case Lira:
		ad, err := s.Adapt(z)
		if err != nil {
			return nil, err
		}
		out.Partitioning = ad.Partitioning
		out.Deltas = ad.Deltas
		out.BudgetMet = ad.BudgetMet
		out.Elapsed = ad.Elapsed

	case LiraGrid:
		p, err := partition.Uniform(s.Grid(), opts.L)
		if err != nil {
			return nil, err
		}
		res, err := throttler.SetThrottlers(p.Stats(), opts.Curve, throttler.Options{
			Z:        z,
			Fairness: opts.Fairness,
			UseSpeed: opts.UseSpeed,
		})
		if err != nil {
			return nil, err
		}
		out.Partitioning = p
		out.Deltas = res.Deltas
		out.BudgetMet = res.BudgetMet
		out.Elapsed = time.Since(start)

	case UniformDelta:
		delta := opts.Curve.Invert(z)
		out.Partitioning = partition.Single(s.Grid())
		out.Deltas = []float64{delta}
		out.BudgetMet = opts.Curve.Eval(delta) <= z+1e-9
		out.Elapsed = time.Since(start)

	case RandomDrop:
		out.Partitioning = partition.Single(s.Grid())
		out.Deltas = []float64{opts.Curve.MinDelta()}
		out.AdmitProbability = z
		out.BudgetMet = true
		out.Elapsed = time.Since(start)

	default:
		return nil, fmt.Errorf("shedding: unknown kind %v", kind)
	}
	return out, nil
}

// Package shedding defines the update load-shedding strategies compared in
// the paper's evaluation (§4.2):
//
//   - Lira — the full system: GRIDREDUCE (α,l)-partitioning plus
//     GREEDYINCREMENT throttler setting.
//   - LiraGrid — the ablation without GRIDREDUCE: a uniform
//     l-partitioning, still with GREEDYINCREMENT.
//   - UniformDelta — one space-wide inaccuracy threshold chosen so the
//     modeled update volume meets the throttle fraction.
//   - RandomDrop — no source-side throttling at all: every node reports
//     at Δ⊢ and the server randomly admits a z fraction.
//
// The throttler-based strategies are thin wrappers over the control
// plane's pluggable policies (internal/controlplane): Lira runs the
// engine's own adaptation (LiraPolicy through its Plane, stepping
// telemetry), LiraGrid evaluates UniformGridPolicy statelessly, and
// UniformDelta evaluates SingleDeltaPolicy. RandomDrop is the one
// strategy with no source-side policy at all — it sheds at the server —
// so it stays special-cased here.
package shedding

import (
	"fmt"
	"time"

	"lira/internal/controlplane"
	"lira/internal/fmodel"
	"lira/internal/partition"
	"lira/internal/statgrid"
)

// Kind identifies a strategy.
type Kind int

const (
	// Lira is the full region-aware load shedder.
	Lira Kind = iota
	// LiraGrid replaces GRIDREDUCE with a uniform l-partitioning.
	LiraGrid
	// UniformDelta uses a single system-wide inaccuracy threshold.
	UniformDelta
	// RandomDrop drops excess updates at the server, uniformly at random.
	RandomDrop
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Lira:
		return "lira"
	case LiraGrid:
		return "lira-grid"
	case UniformDelta:
		return "uniform-delta"
	case RandomDrop:
		return "random-drop"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Kinds lists every strategy in the paper's comparison order.
func Kinds() []Kind { return []Kind{RandomDrop, UniformDelta, LiraGrid, Lira} }

// Options carries the strategy parameters that do not live on the server.
type Options struct {
	// L is the region count for LiraGrid.
	L int
	// Curve is the update reduction function.
	Curve *fmodel.Curve
	// Fairness is Δ⇔ for the GREEDYINCREMENT-based strategies.
	Fairness float64
	// UseSpeed enables the §3.1.2 speed factor.
	UseSpeed bool
}

// Target is the slice of an engine Configure needs: the Lira strategy
// runs the engine's own adaptation, the rest read the statistics grid.
// Both engine.Engine implementations satisfy it.
type Target interface {
	Adapt(z float64) (*controlplane.Adaptation, error)
	StatsGrid() *statgrid.Grid
}

// Outcome is a configured shedding policy, ready for distribution to the
// base-station layer.
type Outcome struct {
	Kind Kind
	Z    float64
	// Partitioning and Deltas define the region-dependent inaccuracy
	// thresholds. For RandomDrop and UniformDelta the partitioning is a
	// single space-wide region.
	Partitioning *partition.Partitioning
	Deltas       []float64
	// AdmitProbability is the server-side random admission probability:
	// 1 for the source-actuated strategies, z for RandomDrop.
	AdmitProbability float64
	// BudgetMet reports whether the modeled expenditure reached the
	// budget (always true for RandomDrop, which drops exactly enough).
	BudgetMet bool
	// Elapsed is the configuration cost (partitioning plus throttler
	// setting).
	Elapsed time.Duration
}

// Configure computes the shedding policy of the given kind at throttle
// fraction z using the target engine's statistics grid.
func Configure(kind Kind, t Target, z float64, opts Options) (*Outcome, error) {
	if z < 0 || z > 1 {
		return nil, fmt.Errorf("shedding: throttle fraction %v outside [0,1]", z)
	}
	if opts.Curve == nil {
		return nil, fmt.Errorf("shedding: nil curve")
	}
	start := time.Now()
	out := &Outcome{Kind: kind, Z: z, AdmitProbability: 1}
	env := controlplane.Env{
		L: opts.L, Curve: opts.Curve, Fairness: opts.Fairness, UseSpeed: opts.UseSpeed,
	}
	switch kind {
	case Lira:
		ad, err := t.Adapt(z)
		if err != nil {
			return nil, err
		}
		out.Partitioning = ad.Partitioning
		out.Deltas = ad.Deltas
		out.BudgetMet = ad.BudgetMet
		out.Elapsed = ad.Elapsed

	case LiraGrid:
		plan, err := controlplane.Evaluate(controlplane.UniformGridPolicy{}, t.StatsGrid(), z, env)
		if err != nil {
			return nil, err
		}
		out.Partitioning = plan.Partitioning
		out.Deltas = plan.Result.Deltas
		out.BudgetMet = plan.Result.BudgetMet
		out.Elapsed = time.Since(start)

	case UniformDelta:
		plan, err := controlplane.Evaluate(controlplane.SingleDeltaPolicy{}, t.StatsGrid(), z, env)
		if err != nil {
			return nil, err
		}
		out.Partitioning = plan.Partitioning
		out.Deltas = plan.Result.Deltas
		out.BudgetMet = plan.Result.BudgetMet
		out.Elapsed = time.Since(start)

	case RandomDrop:
		out.Partitioning = partition.Single(t.StatsGrid())
		out.Deltas = []float64{opts.Curve.MinDelta()}
		out.AdmitProbability = z
		out.BudgetMet = true
		out.Elapsed = time.Since(start)

	default:
		return nil, fmt.Errorf("shedding: unknown kind %v", kind)
	}
	return out, nil
}
